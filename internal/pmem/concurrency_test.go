package pmem

import (
	"math/rand"
	"sync"
	"testing"
)

// TestDCASConcurrentConsistency hammers a (pointer, index)-style pair
// with DCAS from several goroutines: every successful DCAS must have
// observed a coherent pair, and the final pair must reflect exactly
// the successful operations.
func TestDCASConcurrentConsistency(t *testing.T) {
	h := New(Config{Bytes: 1 << 20, MaxThreads: 8})
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 0)
	h.Store(0, a+8, 1000)

	const workers = 4
	const attempts = 20000
	var succ [workers]uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				v0, v1 := h.LoadPair(tid, a)
				// The invariant v1 == v0 + 1000 can only be observed
				// torn by LoadPair; DCAS re-validates both words, so
				// a torn read merely fails the DCAS.
				if h.DCAS(tid, a, v0, v1, v0+1, v1+1) {
					succ[tid]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, s := range succ {
		total += s
	}
	v0, v1 := h.LoadPair(0, a)
	if v0 != total || v1 != total+1000 {
		t.Fatalf("final pair (%d,%d) inconsistent with %d successful DCASes", v0, v1, total)
	}
}

// TestConcurrentFlushFenceStress runs mixed stores/flushes/fences from
// several threads in crash mode and then materializes a crash; the
// run must be panic-free and every fenced value must survive.
func TestConcurrentFlushFenceStress(t *testing.T) {
	h := New(Config{Bytes: 1 << 20, Mode: ModeCrash, MaxThreads: 8})
	base := h.AllocRaw(0, 8*CacheLineBytes, CacheLineBytes)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			// Each thread owns one line and persists a counter on it;
			// all threads also hammer a shared line without fencing.
			own := base + Addr(tid)*CacheLineBytes
			shared := base + 7*CacheLineBytes
			for i := uint64(1); i <= 500; i++ {
				h.Store(tid, own, i)
				h.Flush(tid, own)
				h.Fence(tid)
				h.Store(tid, shared, i)
				if i%16 == 0 {
					h.Flush(tid, shared)
				}
			}
		}(w)
	}
	wg.Wait()
	h.CrashNow()
	h.FinalizeCrash(newTestRand(3))
	for w := 0; w < workers; w++ {
		own := base + Addr(w)*CacheLineBytes
		if got := h.RawImg(own); got != 500 {
			t.Fatalf("thread %d fenced counter = %d, want 500", w, got)
		}
	}
}

// TestPostFlushChargeIsPerLine verifies that invalidation is tracked
// at line granularity: flushing one word invalidates its whole line
// and only that line.
func TestPostFlushChargeIsPerLine(t *testing.T) {
	h := New(Config{Bytes: 1 << 20})
	a := h.AllocRaw(0, 2*CacheLineBytes, CacheLineBytes)
	h.Store(0, a, 1)
	h.Store(0, a+CacheLineBytes, 2)
	h.Flush(0, a+8) // flush via a different word of line 0
	h.Fence(0)
	_ = h.Load(0, a+24)             // same line: must be charged
	_ = h.Load(0, a+CacheLineBytes) // other line: must not
	if got := h.StatsOf(0).PostFlushAccesses; got != 1 {
		t.Fatalf("post-flush accesses = %d, want 1", got)
	}
}

// TestClearLineStateSuppressesCharge models allocator recycling.
func TestClearLineStateSuppressesCharge(t *testing.T) {
	h := New(Config{Bytes: 1 << 20})
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 1)
	h.Flush(0, a)
	h.Fence(0)
	h.ClearLineState(a)
	h.Store(0, a, 2)
	if got := h.StatsOf(0).PostFlushAccesses; got != 0 {
		t.Fatalf("post-flush accesses after ClearLineState = %d, want 0", got)
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
