package pmem

// Stats counts the simulated memory events of one thread (or, via
// TotalStats, of all threads). The counters of interest for the
// paper's analysis are Fences (blocking persist operations), Flushes,
// NTStores and PostFlushAccesses (accesses to explicitly flushed
// content, the quantity the second amendment drives to zero).
type Stats struct {
	Loads             uint64
	Stores            uint64
	CASes             uint64
	DCASes            uint64
	Flushes           uint64
	Fences            uint64
	NTStores          uint64
	PostFlushAccesses uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.CASes += o.CASes
	s.DCASes += o.DCASes
	s.Flushes += o.Flushes
	s.Fences += o.Fences
	s.NTStores += o.NTStores
	s.PostFlushAccesses += o.PostFlushAccesses
}

// Sub returns s - o field-wise; useful for deltas around a measured
// region.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Loads:             s.Loads - o.Loads,
		Stores:            s.Stores - o.Stores,
		CASes:             s.CASes - o.CASes,
		DCASes:            s.DCASes - o.DCASes,
		Flushes:           s.Flushes - o.Flushes,
		Fences:            s.Fences - o.Fences,
		NTStores:          s.NTStores - o.NTStores,
		PostFlushAccesses: s.PostFlushAccesses - o.PostFlushAccesses,
	}
}

// StatsOf returns a snapshot of tid's counters. The snapshot is exact
// when the owning goroutine is quiescent.
func (h *Heap) StatsOf(tid int) Stats { return h.threads[tid].stats }

// TotalStats sums the counters of all threads. Call it while the heap
// is quiescent for an exact result.
func (h *Heap) TotalStats() Stats {
	var t Stats
	for i := range h.threads {
		t.Add(h.threads[i].stats)
	}
	return t
}

// ResetStats zeroes all per-thread counters. Call only while the heap
// is quiescent.
func (h *Heap) ResetStats() {
	for i := range h.threads {
		h.threads[i].stats = Stats{}
	}
}
