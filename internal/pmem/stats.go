package pmem

// Statistics quiescence contract
//
// Every statistics counter in this package is a plain per-thread
// integer bumped by the owning goroutine with no synchronization —
// that is what keeps accounting free on the simulated access path.
// The single contract for every reader (StatsOf, TotalStats, DeltaOf,
// ResetStats, on Heap and HeapSet alike) follows from that: a
// snapshot is EXACT when the threads it covers are quiescent — no
// goroutine is inside a simulated memory operation, and the caller
// happens-after their last one (a Wait on them suffices). Read while
// threads are running, a snapshot is a benign torn view: useful for
// progress monitoring, wrong for assertions. Tests and benchmarks
// must only assert on counters across a quiescent point.

// Stats counts the simulated memory events of one thread (or, via
// TotalStats, of all threads). The counters of interest for the
// paper's analysis are Fences (blocking persist operations), Flushes,
// NTStores and PostFlushAccesses (accesses to explicitly flushed
// content, the quantity the second amendment drives to zero).
type Stats struct {
	Loads             uint64
	Stores            uint64
	CASes             uint64
	DCASes            uint64
	Flushes           uint64
	Fences            uint64
	NTStores          uint64
	PostFlushAccesses uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.CASes += o.CASes
	s.DCASes += o.DCASes
	s.Flushes += o.Flushes
	s.Fences += o.Fences
	s.NTStores += o.NTStores
	s.PostFlushAccesses += o.PostFlushAccesses
}

// Sub returns s - o field-wise; useful for deltas around a measured
// region.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Loads:             s.Loads - o.Loads,
		Stores:            s.Stores - o.Stores,
		CASes:             s.CASes - o.CASes,
		DCASes:            s.DCASes - o.DCASes,
		Flushes:           s.Flushes - o.Flushes,
		Fences:            s.Fences - o.Fences,
		NTStores:          s.NTStores - o.NTStores,
		PostFlushAccesses: s.PostFlushAccesses - o.PostFlushAccesses,
	}
}

// StatsOf returns a snapshot of tid's counters (see the quiescence
// contract above).
func (h *Heap) StatsOf(tid int) Stats { return h.threads[tid].stats }

// TotalStats sums the counters of all threads.
func (h *Heap) TotalStats() Stats {
	var t Stats
	for i := range h.threads {
		t.Add(h.threads[i].stats)
	}
	return t
}

// ResetStats zeroes all per-thread counters.
func (h *Heap) ResetStats() {
	for i := range h.threads {
		h.threads[i].stats = Stats{}
	}
}

// StatsDelta brackets a measured region: capture it with DeltaOf (or
// TotalDelta) before the region, run the workload, then read Delta
// across a quiescent point for the events the region cost. It replaces
// the before/after Sub dance measurement code otherwise hand-rolls.
type StatsDelta struct {
	read func() Stats
	base Stats
}

// Delta returns the events counted since the delta was captured.
func (d StatsDelta) Delta() Stats { return d.read().Sub(d.base) }

// DeltaOf starts measuring tid's events on this heap from now.
func (h *Heap) DeltaOf(tid int) StatsDelta {
	read := func() Stats { return h.StatsOf(tid) }
	return StatsDelta{read: read, base: read()}
}

// TotalDelta starts measuring all threads' events on this heap from
// now.
func (h *Heap) TotalDelta() StatsDelta {
	return StatsDelta{read: h.TotalStats, base: h.TotalStats()}
}

// DeltaOf starts measuring tid's events across all member heaps from
// now.
func (s *HeapSet) DeltaOf(tid int) StatsDelta {
	read := func() Stats { return s.StatsOf(tid) }
	return StatsDelta{read: read, base: read()}
}

// TotalDelta starts measuring all threads' events across all member
// heaps from now.
func (s *HeapSet) TotalDelta() StatsDelta {
	return StatsDelta{read: s.TotalStats, base: s.TotalStats()}
}
