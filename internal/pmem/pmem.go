// Package pmem simulates byte-addressable non-volatile main memory
// (NVRAM) with the persistence semantics assumed by "Durable Queues:
// The Second Amendment" (Sela & Petrank, SPAA 2021).
//
// The simulator maintains two copies of memory:
//
//   - the working view ("mem"), which models the cache-coherent state
//     that running threads observe, and
//   - the NVRAM image ("img"), which models what survives a
//     full-system crash.
//
// Threads interact with the heap through Load/Store/CAS/DCAS (ordinary
// cached accesses), Flush (an asynchronous cache-line write-back such
// as CLWB, which on Cascade Lake also invalidates the line), Fence (an
// SFENCE that blocks until previously issued flushes and non-temporal
// stores are durable) and NTStore (a movnti-style non-temporal store
// that bypasses the cache).
//
// The simulator implements the paper's Assumption 1: a cache line is
// evicted to memory atomically, so after a crash the NVRAM content of
// each line reflects a prefix of the stores performed on that line.
// In ModeCrash every store is journalled per line; at crash time each
// line's durable content is chosen as a random prefix that is at least
// the prefix guaranteed by the last completed fence covering the line.
//
// The simulator also implements the paper's central performance
// observation: flushing a line invalidates it, so the next ordinary
// access to that line misses the cache and pays the (high) NVRAM read
// latency. Those events are counted as "post-flush accesses" and are
// charged according to the configured LatencyModel.
package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Addr is a byte offset into the simulated persistent heap.
// The zero Addr plays the role of a nil pointer; no allocation is ever
// placed at offset 0.
type Addr uint64

// Memory geometry constants. One queue node per cache line is the
// layout used throughout this repository (the paper's footnote 3).
const (
	CacheLineBytes = 64
	WordBytes      = 8
	WordsPerLine   = CacheLineBytes / WordBytes
)

// NumRootSlots is the number of cache-line-sized persistent root slots
// available through RootAddr on a full heap. Recovery procedures
// locate all durable state starting from these slots. Multi-structure
// systems (e.g. internal/broker) carve the slot space into per-shard
// windows with View.
const NumRootSlots = 1022

const (
	magicWord  = 0x447572515632  // "DurQV2"
	brkAddr    = Addr(8)         // persistent heap break (byte offset)
	dataStart  = Addr(1024 * 64) // first allocatable byte
	lockShards = 1024
	lineValid  = uint32(1) // flag bit: line was flushed and invalidated
)

// Mode selects the simulation fidelity.
type Mode int

const (
	// ModePerf is the fast path used for benchmarking: no store
	// journalling, crashes are not allowed.
	ModePerf Mode = iota
	// ModeCrash journals every store per cache line so that a crash
	// can be materialized with per-line prefix semantics. Slower.
	ModeCrash
)

// Config parameterizes a Heap.
type Config struct {
	// Bytes is the size of the persistent heap. Default 64 MiB.
	Bytes int64
	// Mode selects ModePerf (default) or ModeCrash.
	Mode Mode
	// MaxThreads bounds the thread ids that may be passed to heap
	// operations. Default 64.
	MaxThreads int
	// Latency configures the injected delays. The zero value injects
	// no delays (counting still happens).
	Latency LatencyModel
	// FlushRetainsLine, when true, models a platform whose flush
	// instruction writes the line back without invalidating it (the
	// Ice Lake behaviour the paper conjectures about). Default false
	// models Cascade Lake: every flush invalidates the line.
	FlushRetainsLine bool
}

type pendingFlush struct {
	line int
	upTo int
	gen  uint64
}

type logEntry struct {
	off uint8 // word offset within the line (0..7)
	n   uint8 // number of words written atomically (1 or 2)
	v   [2]uint64
}

type lineLog struct {
	entries   []logEntry
	persisted int    // prefix guaranteed durable by a completed fence
	gen       uint64 // bumped whenever the journal is truncated
}

// threadCtx is per-thread simulator state. Each context is owned by a
// single goroutine; padding avoids false sharing between contexts.
type threadCtx struct {
	stats   Stats
	pending []pendingFlush // ModeCrash: flushes issued since last fence
	// drainedBy is the wall-clock instant (nanoseconds on the package
	// monotonic clock) at which this thread's write-pending queue will
	// have drained every line flushed or NT-stored since the last
	// fence. Lines drain in the background at one line per
	// DrainNsPerLine from the moment they are issued; a Fence pays only
	// the residual wait. Maintained only when DrainNsPerLine > 0.
	drainedBy int64
	_         [64]byte
}

// Heap is a simulated persistent memory arena.
//
// All exported methods taking a tid are safe for concurrent use as
// long as each tid is used by at most one goroutine at a time.
//
// A Heap value is a lightweight header over shared simulator state: it
// pairs the state with a root-slot window [rootBase, rootBase+rootSlots).
// New returns a header spanning the whole slot space; View derives
// headers with narrower windows so that several independent durable
// structures — each written against the package-queues convention of
// absolute slots 0..k — can coexist on one heap without colliding.
type Heap struct {
	*heapState
	rootBase  int
	rootSlots int
}

// heapState is the shared simulator state behind one or more Heap
// headers. It is never copied after construction (it holds mutexes and
// atomics); headers share it by pointer.
type heapState struct {
	cfg   Config
	lat   LatencyModel
	mem   []uint64
	img   []uint64
	flags []atomic.Uint32
	lines int

	threads []threadCtx
	allocMu sync.Mutex

	locks [lockShards]sync.Mutex
	logs  []lineLog // ModeCrash only

	crashed  atomic.Bool
	accessNo atomic.Int64
	crashAt  atomic.Int64 // 0 = no scheduled crash

	// crashGroup lists the sibling states of a HeapSet this heap
	// belongs to (nil for a lone heap). A crash on any member marks
	// every member crashed — the set shares one power supply. Set by
	// NewSetOf before concurrent activity begins.
	crashGroup []*heapState

	// viewMu guards views, the windows claimed by View. Each claim
	// records its parent window so that sibling views of the same
	// parent are rejected when they overlap (narrowing an existing
	// view remains legal).
	viewMu sync.Mutex
	views  []viewClaim

	// postFlushHook, when set, observes every access to a flushed
	// line (see SetPostFlushHook).
	postFlushHook func(tid int, a Addr)
}

// viewClaim records one window handed out by View, in absolute slot
// coordinates, together with the extent of the parent window it was
// derived from.
type viewClaim struct {
	parentBase, parentEnd int
	base, end             int
}

// New creates a heap. It panics on invalid configuration; a simulated
// memory that cannot be constructed is unusable, so this mirrors the
// "panic during initialization" convention.
func New(cfg Config) *Heap {
	if cfg.Bytes == 0 {
		cfg.Bytes = 64 << 20
	}
	if cfg.Bytes < int64(dataStart)+CacheLineBytes {
		panic(fmt.Sprintf("pmem: heap of %d bytes is too small", cfg.Bytes))
	}
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = 64
	}
	cfg.Bytes = (cfg.Bytes + CacheLineBytes - 1) &^ (CacheLineBytes - 1)
	words := int(cfg.Bytes / WordBytes)
	h := &Heap{
		heapState: &heapState{
			cfg:     cfg,
			lat:     cfg.Latency,
			mem:     make([]uint64, words),
			img:     make([]uint64, words),
			flags:   make([]atomic.Uint32, words/WordsPerLine),
			lines:   words / WordsPerLine,
			threads: make([]threadCtx, cfg.MaxThreads),
		},
		rootSlots: NumRootSlots,
	}
	if cfg.Mode == ModeCrash {
		h.logs = make([]lineLog, h.lines)
	}
	h.mem[0], h.img[0] = magicWord, magicWord
	h.mem[1], h.img[1] = uint64(dataStart), uint64(dataStart)
	return h
}

// Bytes reports the heap size in bytes.
func (h *Heap) Bytes() int64 { return h.cfg.Bytes }

// Mode reports the simulation mode.
func (h *Heap) Mode() Mode { return h.cfg.Mode }

// MaxThreads reports the configured thread-id bound.
func (h *Heap) MaxThreads() int { return h.cfg.MaxThreads }

// RootAddr returns the address of persistent root slot i, resolved
// within this header's root-slot window. Each slot occupies a full
// private cache line so that flushing one root never invalidates
// another.
func (h *Heap) RootAddr(slot int) Addr {
	if slot < 0 || slot >= h.rootSlots {
		panic(fmt.Sprintf("pmem: root slot %d out of range [0,%d)", slot, h.rootSlots))
	}
	return Addr((1 + h.rootBase + slot) * CacheLineBytes)
}

// RootSlots reports how many root slots this header's window exposes
// (NumRootSlots for a heap returned by New).
func (h *Heap) RootSlots() int { return h.rootSlots }

// RootBase reports the absolute slot index this header's window starts
// at (0 for a heap returned by New). Durable catalogs record it so
// recovery can re-derive the same window.
func (h *Heap) RootBase() int { return h.rootBase }

// View returns a heap header sharing all simulated memory and
// statistics with h but exposing only the root-slot window
// [baseSlot, baseSlot+slots) of h's own window, re-indexed from zero.
// A durable structure built against absolute slots 0..slots-1 (the
// package-queues convention) runs unmodified inside a view, so many
// such structures can share one heap; recovery re-creates the same
// views from recorded bases. Views compose: v.View(b, s) narrows v.
//
// View rejects bad windows with a panic: out-of-range windows, and
// windows that overlap a view previously derived from the same parent
// window — a silently aliased base would let one durable structure
// scribble over another's root slots. (Narrowing an existing view is
// always legal: the child is checked only against its own siblings.)
// Restart clears the claims, so recovery re-derives the same windows
// after a crash without conflict.
func (h *Heap) View(baseSlot, slots int) *Heap {
	if baseSlot < 0 || slots <= 0 || baseSlot+slots > h.rootSlots {
		panic(fmt.Sprintf("pmem: view [%d,%d) outside root-slot window [0,%d)",
			baseSlot, baseSlot+slots, h.rootSlots))
	}
	claim := viewClaim{
		parentBase: h.rootBase,
		parentEnd:  h.rootBase + h.rootSlots,
		base:       h.rootBase + baseSlot,
		end:        h.rootBase + baseSlot + slots,
	}
	h.viewMu.Lock()
	for _, c := range h.views {
		if c.parentBase == claim.parentBase && c.parentEnd == claim.parentEnd &&
			claim.base < c.end && c.base < claim.end {
			h.viewMu.Unlock()
			panic(fmt.Sprintf(
				"pmem: view [%d,%d) overlaps existing view [%d,%d) of the same window — root slots would alias another structure",
				claim.base, claim.end, c.base, c.end))
		}
	}
	h.views = append(h.views, claim)
	h.viewMu.Unlock()
	return &Heap{heapState: h.heapState, rootBase: h.rootBase + baseSlot, rootSlots: slots}
}

// ReleaseView returns v's window — previously derived from h by View —
// to h, so the same slots can be claimed by a later View without a
// Restart. This is the primitive behind durable-structure retirement
// (e.g. broker.DeleteTopic): the caller guarantees the structure
// inside the window is dead — no goroutine will access the heap
// through v again — before releasing, exactly as a free() caller
// guarantees no dangling use. Releasing a window that was not claimed
// by View on h panics: it would mask a double-release bug.
func (h *Heap) ReleaseView(v *Heap) {
	claim := viewClaim{
		parentBase: h.rootBase,
		parentEnd:  h.rootBase + h.rootSlots,
		base:       v.rootBase,
		end:        v.rootBase + v.rootSlots,
	}
	h.viewMu.Lock()
	defer h.viewMu.Unlock()
	for i, c := range h.views {
		if c == claim {
			h.views = append(h.views[:i], h.views[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("pmem: ReleaseView of window [%d,%d) not claimed from parent [%d,%d) — double release or wrong parent",
		claim.base, claim.end, claim.parentBase, claim.parentEnd))
}

func (h *Heap) lock(line int) *sync.Mutex {
	return &h.locks[line&(lockShards-1)]
}

// touch performs the crash check and the cache-miss accounting shared
// by all ordinary (cached) accesses.
func (h *Heap) touch(tid int, a Addr) {
	if h.cfg.Mode == ModeCrash {
		h.crashCheck()
	}
	line := int(a / CacheLineBytes)
	if h.flags[line].Load()&lineValid != 0 {
		h.flags[line].Store(0)
		h.threads[tid].stats.PostFlushAccesses++
		if h.postFlushHook != nil {
			h.postFlushHook(tid, a)
		}
		h.delay(h.lat.NVMReadNs)
	}
}

// SetPostFlushHook installs an observer invoked on every access to an
// explicitly flushed cache line — the event the paper's design
// guideline says to avoid. Algorithm developers use it to attribute
// guideline violations to concrete addresses (see the queues tests
// for usage). Set it before concurrent activity begins; the hook runs
// on the accessing goroutine.
func (h *Heap) SetPostFlushHook(fn func(tid int, a Addr)) { h.postFlushHook = fn }

// Load returns the current (cache-coherent) value of the word at a.
func (h *Heap) Load(tid int, a Addr) uint64 {
	h.touch(tid, a)
	h.threads[tid].stats.Loads++
	return atomic.LoadUint64(&h.mem[a/WordBytes])
}

// Store writes v to the word at a, as an ordinary cached store.
func (h *Heap) Store(tid int, a Addr, v uint64) {
	h.touch(tid, a)
	h.threads[tid].stats.Stores++
	w := a / WordBytes
	if h.cfg.Mode == ModeCrash {
		line := int(a / CacheLineBytes)
		mu := h.lock(line)
		mu.Lock()
		atomic.StoreUint64(&h.mem[w], v)
		lg := &h.logs[line]
		lg.entries = append(lg.entries, logEntry{off: uint8((a / WordBytes) % WordsPerLine), n: 1, v: [2]uint64{v}})
		mu.Unlock()
		return
	}
	atomic.StoreUint64(&h.mem[w], v)
}

// CAS atomically compares-and-swaps the word at a.
func (h *Heap) CAS(tid int, a Addr, old, new uint64) bool {
	h.touch(tid, a)
	h.threads[tid].stats.CASes++
	w := a / WordBytes
	if h.cfg.Mode == ModeCrash {
		line := int(a / CacheLineBytes)
		mu := h.lock(line)
		mu.Lock()
		ok := atomic.LoadUint64(&h.mem[w]) == old
		if ok {
			atomic.StoreUint64(&h.mem[w], new)
			lg := &h.logs[line]
			lg.entries = append(lg.entries, logEntry{off: uint8((a / WordBytes) % WordsPerLine), n: 1, v: [2]uint64{new}})
		}
		mu.Unlock()
		return ok
	}
	return atomic.CompareAndSwapUint64(&h.mem[w], old, new)
}

// DCAS is a double-width (16-byte) compare-and-swap over the adjacent
// words at a and a+8; a must be 16-byte aligned so both words share a
// cache line. Go has no 128-bit CAS, so DCAS serializes through a
// sharded lock; the words it manages must only ever be written through
// DCAS (concurrent Load is fine and may observe a torn pair, exactly
// as a pair of 64-bit loads would on x86).
func (h *Heap) DCAS(tid int, a Addr, old0, old1, new0, new1 uint64) bool {
	if a%16 != 0 {
		panic("pmem: DCAS address must be 16-byte aligned")
	}
	h.touch(tid, a)
	h.threads[tid].stats.DCASes++
	w := a / WordBytes
	line := int(a / CacheLineBytes)
	mu := h.lock(line)
	mu.Lock()
	ok := atomic.LoadUint64(&h.mem[w]) == old0 && atomic.LoadUint64(&h.mem[w+1]) == old1
	if ok {
		atomic.StoreUint64(&h.mem[w], new0)
		atomic.StoreUint64(&h.mem[w+1], new1)
		if h.cfg.Mode == ModeCrash {
			lg := &h.logs[line]
			lg.entries = append(lg.entries, logEntry{off: uint8((a / WordBytes) % WordsPerLine), n: 2, v: [2]uint64{new0, new1}})
		}
	}
	mu.Unlock()
	return ok
}

// LoadPair reads the two adjacent words at a and a+8. The pair may be
// torn with respect to a concurrent DCAS, as on real hardware.
func (h *Heap) LoadPair(tid int, a Addr) (uint64, uint64) {
	h.touch(tid, a)
	h.threads[tid].stats.Loads += 2
	w := a / WordBytes
	return atomic.LoadUint64(&h.mem[w]), atomic.LoadUint64(&h.mem[w+1])
}

// Flush issues an asynchronous write-back (CLWB-style) of the cache
// line containing a. Durability is only guaranteed after a subsequent
// Fence by the same thread. Unless the heap was configured with
// FlushRetainsLine, the line is invalidated: the next ordinary access
// to it pays the NVRAM read latency and is counted as a post-flush
// access.
func (h *Heap) Flush(tid int, a Addr) {
	if h.cfg.Mode == ModeCrash {
		h.crashCheck()
	}
	line := int(a / CacheLineBytes)
	ts := &h.threads[tid]
	ts.stats.Flushes++
	if !h.cfg.FlushRetainsLine {
		h.flags[line].Store(lineValid)
	}
	if h.cfg.Mode == ModeCrash {
		mu := h.lock(line)
		mu.Lock()
		upTo := len(h.logs[line].entries)
		gen := h.logs[line].gen
		mu.Unlock()
		ts.pending = append(ts.pending, pendingFlush{line: line, upTo: upTo, gen: gen})
	}
	ts.queueLine(h.heapState)
	h.delay(h.lat.FlushNs)
}

// queueLine models one cache line entering the calling thread's
// write-pending queue: the line becomes durable DrainNsPerLine after
// the queue's previous tail (drain bandwidth is one line at a time,
// and begins at issue, not at the fence). Only the owning goroutine
// touches drainedBy, so no synchronization is needed.
func (ts *threadCtx) queueLine(h *heapState) {
	if h.lat.DrainNsPerLine == 0 {
		return
	}
	now := monotonicNs()
	if ts.drainedBy < now {
		ts.drainedBy = now
	}
	ts.drainedBy += h.lat.DrainNsPerLine
}

// Fence is a store fence (SFENCE): it blocks until every Flush and
// NTStore previously issued by this thread is durable in the NVRAM
// image.
//
// Latency: the write-pending queue drains in the background from the
// moment each line is issued (see LatencyModel.DrainNsPerLine), so the
// fence pays FenceNs plus only the *residual* drain — zero if enough
// wall time has passed since the last flushed line. This is what makes
// pipelined persists (issue the next window before fencing the
// previous one) pay off in wall-clock time while the fence *count*
// stays exactly the same.
func (h *Heap) Fence(tid int) {
	if h.cfg.Mode == ModeCrash {
		h.crashCheck()
	}
	ts := &h.threads[tid]
	ts.stats.Fences++
	if h.cfg.Mode == ModeCrash {
		for _, p := range ts.pending {
			mu := h.lock(p.line)
			mu.Lock()
			lg := &h.logs[p.line]
			// A generation mismatch means another thread's fence
			// already truncated the journal past this flush point;
			// there is nothing left to guarantee.
			if p.gen == lg.gen {
				if p.upTo > lg.persisted {
					lg.persisted = p.upTo
				}
				if lg.persisted == len(lg.entries) && lg.persisted > 0 {
					h.applyEntries(p.line, lg.entries)
					lg.entries = lg.entries[:0]
					lg.persisted = 0
					lg.gen++
				}
			}
			mu.Unlock()
		}
		ts.pending = ts.pending[:0]
	}
	d := h.lat.FenceNs
	if h.lat.DrainNsPerLine > 0 {
		if resid := ts.drainedBy - monotonicNs(); resid > 0 {
			d += resid
		}
		ts.drainedBy = 0
	}
	h.delay(d)
}

// Persist is the convenience pairing of Flush and Fence used when a
// single location must become durable immediately.
func (h *Heap) Persist(tid int, a Addr) {
	h.Flush(tid, a)
	h.Fence(tid)
}

// NTStore performs a non-temporal store (movnti-style): the value is
// written back toward memory bypassing the cache. It neither loads the
// line into the cache nor clears or sets its invalidation state, so it
// never causes a post-flush access. Durability is guaranteed only
// after a subsequent Fence by the same thread.
func (h *Heap) NTStore(tid int, a Addr, v uint64) {
	if h.cfg.Mode == ModeCrash {
		h.crashCheck()
	}
	ts := &h.threads[tid]
	ts.stats.NTStores++
	w := a / WordBytes
	if h.cfg.Mode == ModeCrash {
		line := int(a / CacheLineBytes)
		mu := h.lock(line)
		mu.Lock()
		atomic.StoreUint64(&h.mem[w], v)
		lg := &h.logs[line]
		lg.entries = append(lg.entries, logEntry{off: uint8((a / WordBytes) % WordsPerLine), n: 1, v: [2]uint64{v}})
		ts.pending = append(ts.pending, pendingFlush{line: line, upTo: len(lg.entries), gen: lg.gen})
		mu.Unlock()
	} else {
		atomic.StoreUint64(&h.mem[w], v)
	}
	ts.queueLine(h.heapState)
	h.delay(h.lat.NTStoreNs)
}

func (h *Heap) applyEntries(line int, entries []logEntry) {
	base := line * WordsPerLine
	for _, e := range entries {
		h.img[base+int(e.off)] = e.v[0]
		if e.n == 2 {
			h.img[base+int(e.off)+1] = e.v[1]
		}
	}
}

// AllocRaw carves size bytes (aligned to align, a power of two ≥ 8)
// out of the heap's bump region. The heap break itself is persisted so
// that allocations made before a crash are never handed out again
// after recovery. AllocRaw is intended for rare, large allocations
// (allocator areas, registries, logs); per-node allocation goes
// through package ssmem.
func (h *Heap) AllocRaw(tid int, size, align int64) Addr {
	if align < WordBytes || align&(align-1) != 0 {
		panic("pmem: AllocRaw alignment must be a power of two >= 8")
	}
	h.allocMu.Lock()
	defer h.allocMu.Unlock()
	brk := int64(h.Load(tid, brkAddr))
	a := (brk + align - 1) &^ (align - 1)
	end := a + size
	if end > h.cfg.Bytes {
		panic(fmt.Sprintf("pmem: out of simulated persistent memory (%d + %d > %d)", a, size, h.cfg.Bytes))
	}
	h.Store(tid, brkAddr, uint64(end))
	h.Persist(tid, brkAddr)
	return Addr(a)
}

// InitRange zeroes a freshly allocated range in both the working view
// and the NVRAM image, modelling the paper's area initialization:
// zero the area, issue asynchronous flushes for the whole area, and
// one SFENCE. The range must not be concurrently accessed.
func (h *Heap) InitRange(tid int, a Addr, size int64) {
	if a%CacheLineBytes != 0 || size%CacheLineBytes != 0 {
		panic("pmem: InitRange range must be cache-line aligned")
	}
	ts := &h.threads[tid]
	firstLine := int(a / CacheLineBytes)
	nLines := int(size / CacheLineBytes)
	for line := firstLine; line < firstLine+nLines; line++ {
		if h.cfg.Mode == ModeCrash {
			mu := h.lock(line)
			mu.Lock()
			lg := &h.logs[line]
			lg.entries = lg.entries[:0]
			lg.persisted = 0
			lg.gen++
			h.zeroLine(line)
			mu.Unlock()
		} else {
			h.zeroLine(line)
		}
		h.flags[line].Store(0)
	}
	ts.stats.Flushes += uint64(nLines)
	ts.stats.Fences++
	h.delay(h.lat.FenceNs + h.lat.DrainNsPerLine*int64(nLines))
}

func (h *Heap) zeroLine(line int) {
	base := line * WordsPerLine
	for w := base; w < base+WordsPerLine; w++ {
		atomic.StoreUint64(&h.mem[w], 0)
		h.img[w] = 0
	}
}

// ClearLineState resets the cache-simulation state of the line
// containing a, without any charge or event counting. Allocators call
// it when recycling a node: the write-miss a fresh allocation incurs
// on real hardware is an ordinary cold miss that every algorithm pays
// (including volatile ones), not an algorithmic access to flushed
// content in the paper's sense.
func (h *Heap) ClearLineState(a Addr) {
	h.flags[a/CacheLineBytes].Store(0)
}

// RawImg reads a word directly from the NVRAM image, bypassing the
// simulation (no charges, no crash checks). Intended for tests and
// debugging tools only.
func (h *Heap) RawImg(a Addr) uint64 { return h.img[a/WordBytes] }

// RawMem reads a word directly from the working view, bypassing the
// simulation. Intended for tests and debugging tools only.
func (h *Heap) RawMem(a Addr) uint64 { return atomic.LoadUint64(&h.mem[a/WordBytes]) }
