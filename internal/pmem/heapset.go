package pmem

import "math/rand"

// HeapSet is an ordered set of independent heaps standing in for
// distinct NVRAM persistence domains — NUMA sockets or DIMM sets. Each
// member heap keeps its own root-slot space, statistics, journal and
// latency model (heaps may be constructed with different Configs, so a
// set can model asymmetric-NUMA topologies where one domain is slower
// than another), and its own crash schedule: ScheduleCrashAtAccess on
// one member arms a crash that fires on that heap's activity.
//
// The set shares one power supply: when any member crashes — via a
// scheduled access, CrashNow on the member, or CrashNow on the set —
// every member is marked crashed, so each thread observes the failure
// at its next simulated access on whichever heap it touches. This is
// the whole-system crash model multi-heap structures (internal/broker)
// recover from: FinalizeCrash and Restart apply per-line prefix
// semantics to every member.
//
// Fences remain per-thread *per-heap*: an SFENCE on one heap says
// nothing about NTStores or flushes outstanding on another. Structures
// spanning a set must fence every domain they wrote (see
// broker.Consumer.PollBatch), which is exactly why shard-placement
// affinity matters for fence cost.
type HeapSet struct {
	heaps []*Heap
}

// NewSetOf assembles a set from existing heaps, which must be distinct
// (two headers over the same simulator state would crash twice and
// alias root slots). Call before concurrent activity begins: it links
// the members' crash propagation. The same heaps may be re-wrapped
// later (e.g. by a recovery procedure) while the system is quiescent.
func NewSetOf(heaps ...*Heap) *HeapSet {
	if len(heaps) == 0 {
		panic("pmem: NewSetOf requires at least one heap")
	}
	group := make([]*heapState, len(heaps))
	for i, h := range heaps {
		for j := 0; j < i; j++ {
			if heaps[j].heapState == h.heapState {
				panic("pmem: duplicate heap in set")
			}
		}
		group[i] = h.heapState
	}
	for _, h := range heaps {
		h.crashGroup = group
	}
	return &HeapSet{heaps: append([]*Heap(nil), heaps...)}
}

// NewSet creates n fresh heaps with the same configuration and
// assembles them into a set. For asymmetric topologies build the heaps
// individually and use NewSetOf.
func NewSet(n int, cfg Config) *HeapSet {
	heaps := make([]*Heap, n)
	for i := range heaps {
		heaps[i] = New(cfg)
	}
	return NewSetOf(heaps...)
}

// Len reports the number of member heaps.
func (s *HeapSet) Len() int { return len(s.heaps) }

// Heap returns member i.
func (s *HeapSet) Heap(i int) *Heap { return s.heaps[i] }

// Heaps returns the members in order (a copy).
func (s *HeapSet) Heaps() []*Heap { return append([]*Heap(nil), s.heaps...) }

// Crashed reports whether any member has crashed (propagation marks
// all members, so after any crash this is true for the whole set).
func (s *HeapSet) Crashed() bool {
	for _, h := range s.heaps {
		if h.Crashed() {
			return true
		}
	}
	return false
}

// CrashNow pulls the plug on the whole set: every member is marked
// crashed and every subsequent simulated access on any member panics
// with the crash signal (catch it with Protect). ModeCrash only.
func (s *HeapSet) CrashNow() {
	for _, h := range s.heaps {
		if !h.Crashed() {
			h.CrashNow()
		}
	}
}

// FinalizeCrash materializes every member's NVRAM image at the crash
// point (see Heap.FinalizeCrash). Members that had not observed the
// crash yet are crashed first — the power loss hits all domains
// together. Must be called after all worker goroutines have stopped.
func (s *HeapSet) FinalizeCrash(rng *rand.Rand) {
	for _, h := range s.heaps {
		if !h.Crashed() {
			h.CrashNow()
		}
		h.FinalizeCrash(rng)
	}
}

// Restart reboots every member: working views are reloaded from the
// NVRAM images and all volatile simulator state is discarded.
func (s *HeapSet) Restart() {
	for _, h := range s.heaps {
		h.Restart()
	}
}

// TotalStats sums the event counters of all threads across all member
// heaps (see the quiescence contract in stats.go).
func (s *HeapSet) TotalStats() Stats {
	var t Stats
	for _, h := range s.heaps {
		t.Add(h.TotalStats())
	}
	return t
}

// StatsOf sums tid's counters across all member heaps (a thread that
// operates on several domains accumulates events on each).
func (s *HeapSet) StatsOf(tid int) Stats {
	var t Stats
	for _, h := range s.heaps {
		t.Add(h.StatsOf(tid))
	}
	return t
}

// ResetStats zeroes every member's per-thread counters.
func (s *HeapSet) ResetStats() {
	for _, h := range s.heaps {
		h.ResetStats()
	}
}
