package pmem

import (
	"math/rand"
	"testing"
)

func newCrashSet(t testing.TB, n int) *HeapSet {
	t.Helper()
	return NewSet(n, Config{Bytes: 1 << 20, Mode: ModeCrash, MaxThreads: 8})
}

func TestHeapSetIndependentState(t *testing.T) {
	s := newCrashSet(t, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Allocations and root slots are fully independent per member.
	addrs := make([]Addr, s.Len())
	for i := 0; i < s.Len(); i++ {
		h := s.Heap(i)
		addrs[i] = h.AllocRaw(0, 64, 64)
		h.Store(0, addrs[i], uint64(100+i))
		h.Persist(0, addrs[i])
		h.Store(0, h.RootAddr(0), uint64(i))
	}
	for i := 0; i < s.Len(); i++ {
		h := s.Heap(i)
		if got := h.Load(0, addrs[i]); got != uint64(100+i) {
			t.Fatalf("heap %d: Load = %d, want %d", i, got, 100+i)
		}
		if got := h.Load(0, h.RootAddr(0)); got != uint64(i) {
			t.Fatalf("heap %d: root slot 0 = %d, want %d", i, got, i)
		}
	}
	// Stats accumulate per heap; the set sums them.
	one := s.Heap(0).TotalStats()
	if one.Fences == 0 {
		t.Fatal("heap 0 recorded no fences")
	}
	if tot := s.TotalStats(); tot.Fences < 3*one.Fences {
		t.Fatalf("set TotalStats.Fences = %d, want >= %d", tot.Fences, 3*one.Fences)
	}
}

// TestHeapSetCrashPropagates pins the shared-power-supply model: a
// crash scheduled on (or injected into) one member downs every member,
// so a thread working on another heap observes the crash at its next
// access there.
func TestHeapSetCrashPropagates(t *testing.T) {
	s := newCrashSet(t, 2)
	a0 := s.Heap(0).AllocRaw(0, 64, 64)
	a1 := s.Heap(1).AllocRaw(0, 64, 64)

	s.Heap(1).ScheduleCrashAtAccess(3)
	crashed := Protect(func() {
		for i := 0; i < 100; i++ {
			s.Heap(1).Store(0, a1, uint64(i))
		}
	})
	if !crashed {
		t.Fatal("scheduled crash on heap 1 never fired")
	}
	if !s.Heap(0).Crashed() || !s.Crashed() {
		t.Fatal("crash on heap 1 did not propagate to heap 0")
	}
	if !Protect(func() { s.Heap(0).Store(1, a0, 7) }) {
		t.Fatal("access on heap 0 after the set crashed did not panic")
	}

	s.FinalizeCrash(rand.New(rand.NewSource(1)))
	s.Restart()
	if s.Crashed() {
		t.Fatal("set still crashed after Restart")
	}
	// Both members are usable again.
	s.Heap(0).Store(0, a0, 1)
	s.Heap(1).Store(0, a1, 2)
}

// TestHeapSetDurabilityPerMember: fenced values on every member
// survive the whole-set crash; unfenced ones may not (minimal-prefix
// rng: they must not).
func TestHeapSetDurabilityPerMember(t *testing.T) {
	s := newCrashSet(t, 2)
	var addrs [2]Addr
	for i := 0; i < 2; i++ {
		h := s.Heap(i)
		addrs[i] = h.AllocRaw(0, 64, 64)
		h.Store(0, addrs[i], uint64(10+i))
		h.Persist(0, addrs[i])
		h.Store(0, addrs[i]+8, 99) // never flushed
	}
	s.CrashNow()
	s.FinalizeCrash(rand.New(zeroSource{}))
	s.Restart()
	for i := 0; i < 2; i++ {
		h := s.Heap(i)
		if got := h.Load(0, addrs[i]); got != uint64(10+i) {
			t.Fatalf("heap %d: persisted value = %d, want %d", i, got, 10+i)
		}
		if got := h.Load(0, addrs[i]+8); got != 0 {
			t.Fatalf("heap %d: unfenced store survived: %d", i, got)
		}
	}
}

// TestHeapSetFencesArePerHeap documents the property multi-heap
// structures must respect: a fence on one member does not cover
// NTStores outstanding on another.
func TestHeapSetFencesArePerHeap(t *testing.T) {
	s := newCrashSet(t, 2)
	a0 := s.Heap(0).AllocRaw(0, 64, 64)
	a1 := s.Heap(1).AllocRaw(0, 64, 64)
	s.Heap(0).NTStore(0, a0, 5)
	s.Heap(1).NTStore(0, a1, 6)
	s.Heap(0).Fence(0) // covers heap 0 only
	s.CrashNow()
	s.FinalizeCrash(rand.New(zeroSource{}))
	if got := s.Heap(0).RawImg(a0); got != 5 {
		t.Fatalf("fenced NTStore on heap 0 lost: %d", got)
	}
	if got := s.Heap(1).RawImg(a1); got != 0 {
		t.Fatalf("unfenced NTStore on heap 1 survived the minimal prefix: %d", got)
	}
}

func TestHeapSetRejectsDuplicates(t *testing.T) {
	h := New(Config{Bytes: 1 << 20})
	defer func() {
		if recover() == nil {
			t.Fatal("NewSetOf with a duplicate heap did not panic")
		}
	}()
	NewSetOf(h, h.View(0, 8)) // same simulator state twice
}
