package pmem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func nowNs() int64 { return time.Now().UnixNano() }

func newCrashHeap(t testing.TB) *Heap {
	t.Helper()
	return New(Config{Bytes: 1 << 20, Mode: ModeCrash, MaxThreads: 8})
}

func newPerfHeap(t testing.TB) *Heap {
	t.Helper()
	return New(Config{Bytes: 1 << 20, Mode: ModePerf, MaxThreads: 8})
}

func TestRootSlotsAreLineDisjoint(t *testing.T) {
	h := newPerfHeap(t)
	seen := map[Addr]bool{}
	for i := 0; i < NumRootSlots; i++ {
		a := h.RootAddr(i)
		if a%CacheLineBytes != 0 {
			t.Fatalf("root slot %d not line aligned: %d", i, a)
		}
		if a < CacheLineBytes {
			t.Fatalf("root slot %d overlaps heap metadata", i)
		}
		if Addr(a)+CacheLineBytes > dataStart {
			t.Fatalf("root slot %d overlaps data region", i)
		}
		if seen[a] {
			t.Fatalf("duplicate root slot address %d", a)
		}
		seen[a] = true
	}
}

func TestRootAddrPanicsOutOfRange(t *testing.T) {
	h := newPerfHeap(t)
	for _, slot := range []int{-1, NumRootSlots} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RootAddr(%d) did not panic", slot)
				}
			}()
			h.RootAddr(slot)
		}()
	}
}

func TestViewRemapsRootSlots(t *testing.T) {
	h := newPerfHeap(t)
	v := h.View(8, 4)
	if got := v.RootSlots(); got != 4 {
		t.Fatalf("view RootSlots = %d, want 4", got)
	}
	if got := v.RootBase(); got != 8 {
		t.Fatalf("view RootBase = %d, want 8", got)
	}
	for i := 0; i < 4; i++ {
		if v.RootAddr(i) != h.RootAddr(8+i) {
			t.Fatalf("view slot %d maps to %d, want %d", i, v.RootAddr(i), h.RootAddr(8+i))
		}
	}
	// Views compose and share memory.
	vv := v.View(1, 2)
	if vv.RootAddr(0) != h.RootAddr(9) {
		t.Fatalf("nested view slot 0 maps to %d, want %d", vv.RootAddr(0), h.RootAddr(9))
	}
	vv.Store(0, vv.RootAddr(0), 7)
	if got := h.Load(0, h.RootAddr(9)); got != 7 {
		t.Fatalf("store through view not visible through parent: got %d", got)
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 0}, {8, NumRootSlots}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("View(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			h.View(bad[0], bad[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RootAddr(4) on a 4-slot view did not panic")
			}
		}()
		v.RootAddr(4)
	}()
}

// TestViewRejectsOverlap is the aliasing regression test: a view whose
// window overlaps one previously derived from the same parent must be
// rejected — a bad base would silently alias another structure's root
// slots. Disjoint siblings, nested narrowing, and re-derivation after
// Restart all remain legal.
func TestViewRejectsOverlap(t *testing.T) {
	h := New(Config{Bytes: 1 << 20, Mode: ModeCrash, MaxThreads: 2})
	h.View(0, 8)
	h.View(8, 8) // disjoint sibling: fine
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("exact duplicate", func() { h.View(0, 8) })
	mustPanic("partial overlap", func() { h.View(4, 8) })
	mustPanic("containing window", func() { h.View(0, 16) })
	// Narrowing an existing view is not a sibling conflict.
	v := h.View(16, 8)
	v.View(0, 4)
	v.View(4, 4)
	mustPanic("overlap within the nested window", func() { v.View(2, 4) })
	// After a restart, recovery re-derives the same windows.
	h.CrashNow()
	h.FinalizeCrash(rand.New(zeroSource{}))
	h.Restart()
	h.View(0, 8)
	h.View(8, 8)
}

func TestStoreLoadRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModePerf, ModeCrash} {
		h := New(Config{Bytes: 1 << 20, Mode: mode})
		a := h.AllocRaw(0, 64, 64)
		h.Store(0, a, 12345)
		h.Store(0, a+8, 67890)
		if got := h.Load(0, a); got != 12345 {
			t.Fatalf("mode %v: Load = %d, want 12345", mode, got)
		}
		if got := h.Load(0, a+8); got != 67890 {
			t.Fatalf("mode %v: Load = %d, want 67890", mode, got)
		}
	}
}

func TestCASSemantics(t *testing.T) {
	for _, mode := range []Mode{ModePerf, ModeCrash} {
		h := New(Config{Bytes: 1 << 20, Mode: mode})
		a := h.AllocRaw(0, 64, 64)
		h.Store(0, a, 1)
		if h.CAS(0, a, 2, 3) {
			t.Fatalf("mode %v: CAS with wrong expected succeeded", mode)
		}
		if !h.CAS(0, a, 1, 2) {
			t.Fatalf("mode %v: CAS with right expected failed", mode)
		}
		if got := h.Load(0, a); got != 2 {
			t.Fatalf("mode %v: after CAS Load = %d, want 2", mode, got)
		}
	}
}

func TestDCASSemantics(t *testing.T) {
	for _, mode := range []Mode{ModePerf, ModeCrash} {
		h := New(Config{Bytes: 1 << 20, Mode: mode})
		a := h.AllocRaw(0, 64, 64)
		h.Store(0, a, 10)
		h.Store(0, a+8, 20)
		if h.DCAS(0, a, 10, 99, 11, 21) {
			t.Fatalf("mode %v: DCAS with wrong pair succeeded", mode)
		}
		if !h.DCAS(0, a, 10, 20, 11, 21) {
			t.Fatalf("mode %v: DCAS with right pair failed", mode)
		}
		v0, v1 := h.LoadPair(0, a)
		if v0 != 11 || v1 != 21 {
			t.Fatalf("mode %v: LoadPair = (%d,%d), want (11,21)", mode, v0, v1)
		}
	}
}

func TestDCASRequires16ByteAlignment(t *testing.T) {
	h := newPerfHeap(t)
	a := h.AllocRaw(0, 64, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("DCAS on 8-byte-aligned address did not panic")
		}
	}()
	h.DCAS(0, a+8, 0, 0, 1, 1)
}

func TestFlushInvalidatesAndAccessCharges(t *testing.T) {
	h := newPerfHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 7)
	before := h.StatsOf(0)
	h.Flush(0, a)
	h.Fence(0)
	// First access after the flush is a post-flush access.
	_ = h.Load(0, a)
	mid := h.StatsOf(0)
	if got := mid.PostFlushAccesses - before.PostFlushAccesses; got != 1 {
		t.Fatalf("post-flush accesses after flushed load = %d, want 1", got)
	}
	// The line is back in the cache: further accesses are free.
	_ = h.Load(0, a)
	h.Store(0, a+8, 1)
	after := h.StatsOf(0)
	if got := after.PostFlushAccesses - mid.PostFlushAccesses; got != 0 {
		t.Fatalf("extra post-flush accesses on cached line = %d, want 0", got)
	}
}

func TestFlushRetainsLineMode(t *testing.T) {
	h := New(Config{Bytes: 1 << 20, FlushRetainsLine: true})
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 7)
	h.Flush(0, a)
	h.Fence(0)
	_ = h.Load(0, a)
	if got := h.StatsOf(0).PostFlushAccesses; got != 0 {
		t.Fatalf("post-flush accesses with FlushRetainsLine = %d, want 0", got)
	}
}

func TestNTStoreDoesNotTouchCacheState(t *testing.T) {
	h := newPerfHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 1)
	h.Flush(0, a)
	h.Fence(0)
	// NTStore to the invalidated line: no post-flush access, and the
	// line stays invalidated for ordinary accesses.
	h.NTStore(0, a, 2)
	if got := h.StatsOf(0).PostFlushAccesses; got != 0 {
		t.Fatalf("NTStore charged a post-flush access: %d", got)
	}
	_ = h.Load(0, a)
	if got := h.StatsOf(0).PostFlushAccesses; got != 1 {
		t.Fatalf("load after NTStore on invalidated line: post-flush = %d, want 1", got)
	}
	if got := h.Load(0, a); got != 2 {
		t.Fatalf("NTStore value not visible: got %d, want 2", got)
	}
}

func TestPersistMakesValueDurable(t *testing.T) {
	h := newCrashHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 42)
	h.Persist(0, a)
	if got := h.RawImg(a); got != 42 {
		t.Fatalf("img after Persist = %d, want 42", got)
	}
}

func TestNTStoreDurableAfterFence(t *testing.T) {
	h := newCrashHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.NTStore(0, a, 99)
	h.Fence(0)
	if got := h.RawImg(a); got != 99 {
		t.Fatalf("img after NTStore+Fence = %d, want 99", got)
	}
}

func TestUnfencedStoreMayBeLost(t *testing.T) {
	// With an rng that always picks the minimal prefix, an unflushed
	// store must not appear in the image.
	h := newCrashHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 5)
	h.Persist(0, a)
	h.Store(0, a, 6) // not flushed
	h.CrashNow()
	h.FinalizeCrash(rand.New(zeroSource{}))
	if got := h.RawImg(a); got != 5 {
		t.Fatalf("img = %d, want the fenced value 5", got)
	}
	h.Restart()
	if got := h.Load(0, a); got != 5 {
		t.Fatalf("post-restart load = %d, want 5", got)
	}
}

// zeroSource drives math/rand to always return the minimum.
type zeroSource struct{}

func (zeroSource) Int63() int64 { return 0 }
func (zeroSource) Seed(int64)   {}

func TestCrashPrefixSemantics(t *testing.T) {
	// Property: after a crash, each cache line's image content equals
	// the replay of some prefix of the stores to that line, and that
	// prefix covers at least the last fenced flush.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newCrashHeap(t)
		const nLines = 3
		base := h.AllocRaw(0, nLines*CacheLineBytes, CacheLineBytes)
		type st struct {
			w Addr
			v uint64
		}
		history := make([][]st, nLines)
		guaranteed := make([]int, nLines)
		flushedAt := make([]int, nLines) // pending flush coverage
		for i := range flushedAt {
			flushedAt[i] = -1
		}
		nOps := 30 + rng.Intn(60)
		for i := 0; i < nOps; i++ {
			line := rng.Intn(nLines)
			a := base + Addr(line*CacheLineBytes)
			switch rng.Intn(4) {
			case 0, 1: // store
				w := a + Addr(rng.Intn(WordsPerLine))*WordBytes
				v := rng.Uint64()
				h.Store(0, w, v)
				history[line] = append(history[line], st{w, v})
			case 2: // flush
				h.Flush(0, a)
				flushedAt[line] = len(history[line])
			case 3: // fence
				h.Fence(0)
				for l := range flushedAt {
					if flushedAt[l] >= 0 {
						if flushedAt[l] > guaranteed[l] {
							guaranteed[l] = flushedAt[l]
						}
						flushedAt[l] = -1
					}
				}
			}
		}
		h.CrashNow()
		h.FinalizeCrash(rng)
		// For each line, the image must equal replay of a prefix k,
		// guaranteed[line] <= k <= len(history[line]).
		for line := 0; line < nLines; line++ {
			a := base + Addr(line*CacheLineBytes)
			found := false
			for k := guaranteed[line]; k <= len(history[line]); k++ {
				var want [WordsPerLine]uint64
				for _, s := range history[line][:k] {
					want[(s.w-a)/WordBytes] = s.v
				}
				match := true
				for w := 0; w < WordsPerLine; w++ {
					if h.RawImg(a+Addr(w*WordBytes)) != want[w] {
						match = false
						break
					}
				}
				if match {
					found = true
					break
				}
			}
			if !found {
				t.Logf("seed %d line %d: image is not a valid store prefix >= %d", seed, line, guaranteed[line])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDCASIsAtomicAtCrash(t *testing.T) {
	// A DCAS's two words must never be split by the crash prefix.
	for seed := int64(0); seed < 50; seed++ {
		h := newCrashHeap(t)
		a := h.AllocRaw(0, 64, 64) // 64-aligned => 16-aligned
		h.Store(0, a, 1)
		h.Store(0, a+8, 100)
		if !h.DCAS(0, a, 1, 100, 2, 200) {
			t.Fatal("setup DCAS failed")
		}
		h.CrashNow()
		h.FinalizeCrash(rand.New(rand.NewSource(seed)))
		v0, v1 := h.RawImg(a), h.RawImg(a+8)
		okOld := v0 == 1 && v1 == 100
		okNew := v0 == 2 && v1 == 200
		okZero := v0 == 0 && v1 == 0 // nothing evicted
		okPart1 := v0 == 1 && v1 == 0
		okPart2 := v0 == 0 && v1 == 100
		if !okOld && !okNew && !okZero && !okPart1 && !okPart2 {
			t.Fatalf("seed %d: torn DCAS in image: (%d,%d)", seed, v0, v1)
		}
	}
}

func TestProtectCatchesCrashOnly(t *testing.T) {
	h := newCrashHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.CrashNow()
	crashed := Protect(func() { h.Store(0, a, 1) })
	if !crashed {
		t.Fatal("Protect did not report the crash")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Protect swallowed a non-crash panic")
		}
	}()
	Protect(func() { panic("boom") })
}

func TestScheduleCrashAtAccess(t *testing.T) {
	h := newCrashHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.ScheduleCrashAtAccess(5)
	n := 0
	crashed := Protect(func() {
		for i := 0; i < 100; i++ {
			h.Store(0, a, uint64(i))
			n++
		}
	})
	if !crashed {
		t.Fatal("scheduled crash never fired")
	}
	if n != 4 {
		t.Fatalf("crash fired after %d completed stores, want 4", n)
	}
}

func TestRestartReloadsImage(t *testing.T) {
	h := newCrashHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 11)
	h.Persist(0, a)
	h.Store(0, a, 22) // volatile only
	h.CrashNow()
	h.FinalizeCrash(rand.New(zeroSource{}))
	h.Restart()
	if got := h.Load(0, a); got != 11 {
		t.Fatalf("after restart Load = %d, want 11", got)
	}
	if h.Crashed() {
		t.Fatal("heap still marked crashed after Restart")
	}
}

func TestAllocRawSurvivesCrash(t *testing.T) {
	h := newCrashHeap(t)
	a1 := h.AllocRaw(0, 128, 64)
	h.CrashNow()
	h.FinalizeCrash(rand.New(zeroSource{}))
	h.Restart()
	a2 := h.AllocRaw(0, 128, 64)
	if a2 < a1+128 {
		t.Fatalf("post-crash allocation %d overlaps pre-crash allocation %d", a2, a1)
	}
}

func TestAllocRawAlignmentAndExhaustion(t *testing.T) {
	h := New(Config{Bytes: 1 << 20})
	a := h.AllocRaw(0, 100, 256)
	if a%256 != 0 {
		t.Fatalf("allocation not 256-aligned: %d", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausting the heap did not panic")
		}
	}()
	h.AllocRaw(0, 64<<20, 64)
}

func TestInitRangeZeroesBothViews(t *testing.T) {
	h := newCrashHeap(t)
	a := h.AllocRaw(0, 2*CacheLineBytes, CacheLineBytes)
	h.Store(0, a, 9)
	h.Persist(0, a)
	h.InitRange(0, a, 2*CacheLineBytes)
	if h.Load(0, a) != 0 || h.RawImg(a) != 0 {
		t.Fatal("InitRange left nonzero content")
	}
	// Post-InitRange stores then crash: prefix starts from zeroed base.
	h.Store(0, a, 3)
	h.CrashNow()
	h.FinalizeCrash(rand.New(zeroSource{}))
	if got := h.RawImg(a); got != 0 {
		t.Fatalf("img = %d, want 0 (store after InitRange unfenced)", got)
	}
}

func TestStatsCounting(t *testing.T) {
	h := newPerfHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.ResetStats()
	h.Store(1, a, 1)
	_ = h.Load(1, a)
	h.CAS(1, a, 1, 2)
	h.Flush(1, a)
	h.Fence(1)
	h.NTStore(1, a+8, 3)
	s := h.StatsOf(1)
	if s.Stores != 1 || s.Loads != 1 || s.CASes != 1 || s.Flushes != 1 || s.Fences != 1 || s.NTStores != 1 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	tot := h.TotalStats()
	if tot.Stores != 1 {
		t.Fatalf("TotalStats.Stores = %d, want 1", tot.Stores)
	}
}

func TestConcurrentFenceTruncationRace(t *testing.T) {
	// Regression test for the generation logic: thread 0 flushes,
	// thread 1 flushes+fences (truncating the journal), new stores
	// arrive, then thread 0 fences. The new stores must not become
	// guaranteed-durable, and nothing may panic.
	h := newCrashHeap(t)
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 1)
	h.Flush(0, a) // thread 0 flush covers store 1
	h.Store(1, a+8, 2)
	h.Flush(1, a)
	h.Fence(1) // truncates the line journal
	h.Store(1, a+16, 3)
	h.Fence(0) // stale pending entry: must be a no-op
	h.CrashNow()
	h.FinalizeCrash(rand.New(zeroSource{}))
	if got := h.RawImg(a + 16); got != 0 {
		t.Fatalf("store after truncation leaked into guaranteed image: %d", got)
	}
	if h.RawImg(a) != 1 || h.RawImg(a+8) != 2 {
		t.Fatalf("fenced values lost: (%d,%d)", h.RawImg(a), h.RawImg(a+8))
	}
}

func TestLatencyModelInjectsDelay(t *testing.T) {
	h := New(Config{Bytes: 1 << 20, Latency: LatencyModel{FenceNs: 200_000}})
	a := h.AllocRaw(0, 64, 64)
	h.Store(0, a, 1)
	h.Flush(0, a)
	start := nowNs()
	h.Fence(0)
	if el := nowNs() - start; el < 50_000 {
		t.Fatalf("fence with 200us model returned in %dns", el)
	}
}

func BenchmarkStoreFlushFence(b *testing.B) {
	h := New(Config{Bytes: 1 << 20, Latency: DefaultLatency()})
	a := h.AllocRaw(0, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Store(0, a, uint64(i))
		h.Flush(0, a)
		h.Fence(0)
	}
}

func BenchmarkLoadCached(b *testing.B) {
	h := New(Config{Bytes: 1 << 20, Latency: DefaultLatency()})
	a := h.AllocRaw(0, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Load(0, a)
	}
}
