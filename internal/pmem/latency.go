package pmem

import (
	"sync"
	"time"
)

// LatencyModel configures the delays injected by the simulator so that
// wall-clock throughput reflects the relative costs measured on real
// NVRAM platforms. All fields are in nanoseconds; a zero field injects
// no delay for that event (event counting is unaffected).
type LatencyModel struct {
	// NVMReadNs is charged when an ordinary access touches a line
	// that a previous flush invalidated (the paper's "access to
	// flushed content"): the line must be re-read from NVRAM, whose
	// read latency is roughly 3x DRAM.
	NVMReadNs int64
	// FenceNs is the fixed cost of an SFENCE that must wait for
	// earlier flushes to reach the persistence domain.
	FenceNs int64
	// FlushNs is the issue cost of an asynchronous CLWB.
	FlushNs int64
	// NTStoreNs is the issue cost of a movnti non-temporal store.
	NTStoreNs int64
	// DrainNsPerLine models write-pending-queue drain bandwidth: each
	// line flushed or NT-stored becomes durable DrainNsPerLine after
	// the previous queued line (or after its own issue, whichever is
	// later). The drain proceeds in the background — a Fence pays only
	// the residual wait for lines not yet drained, so work performed
	// between the last store and the fence (issuing the next batch,
	// application processing) genuinely overlaps the drain. Zero
	// disables drain modelling; fences then cost FenceNs alone.
	DrainNsPerLine int64
}

// DefaultLatency returns the model used for the paper-shaped
// benchmarks. The constants follow published Optane DC measurements
// (random read ~300ns; persist ~100-200ns) — see EXPERIMENTS.md.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		NVMReadNs:      300,
		FenceNs:        120,
		FlushNs:        20,
		NTStoreNs:      10,
		DrainNsPerLine: 25,
	}
}

// ZeroLatency returns a model that injects no delays. Counting of
// fences, flushes and post-flush accesses still happens; correctness
// tests use this model for speed.
func ZeroLatency() LatencyModel { return LatencyModel{} }

// SetLatency replaces the heap's latency model. Call only while the
// heap is quiescent (harnesses use it to prefill queues at full speed
// before switching the measured model on).
func (h *Heap) SetLatency(m LatencyModel) { h.lat = m }

func (h *Heap) delay(ns int64) {
	if ns > 0 {
		spinFor(ns)
	}
}

// monotonicEpoch anchors the package clock used by the background
// write-pending-queue drain model. time.Since on a fixed anchor reads
// the runtime's monotonic clock, so the values are strictly
// non-decreasing and immune to wall-clock steps.
var monotonicEpoch = time.Now()

// monotonicNs returns nanoseconds since the package clock's epoch.
func monotonicNs() int64 { return int64(time.Since(monotonicEpoch)) }

var (
	calOnce        sync.Once
	spinItersPerNs float64
)

// spinKernel runs n xorshift64 steps. The generator never reaches
// zero from a nonzero seed, which the caller exploits to keep the
// loop from being optimized away without sharing a sink variable
// across threads.
//
//go:noinline
func spinKernel(n int64) uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	for i := int64(0); i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

func calibrate() {
	const probe = 1 << 21
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		if spinKernel(probe) == 0 {
			panic("pmem: xorshift64 reached zero")
		}
		if el := time.Since(t0); el < best {
			best = el
		}
	}
	spinItersPerNs = float64(probe) / float64(best.Nanoseconds())
}

// spinFor busy-loops for approximately ns nanoseconds without any
// shared-memory traffic and without syscalls.
func spinFor(ns int64) {
	calOnce.Do(calibrate)
	n := int64(float64(ns) * spinItersPerNs)
	if n < 1 {
		n = 1
	}
	if spinKernel(n) == 0 {
		panic("pmem: xorshift64 reached zero")
	}
}
