package pmem

import "math/rand"

// crashSignal is the panic payload used to stop a thread at a
// simulated crash. It is deliberately an unexported type so that
// Protect cannot be fooled by arbitrary panics.
type crashSignal struct{}

func (crashSignal) Error() string { return "pmem: simulated full-system crash" }

// Protect runs f and reports whether it was interrupted by a simulated
// crash. Any other panic is re-raised. Worker goroutines in crash
// tests wrap their operation loops in Protect.
func Protect(f func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	f()
	return false
}

// ScheduleCrashAtAccess arms a crash that fires when n further
// simulated memory accesses (counted across all threads) have
// occurred. Only meaningful in ModeCrash. n <= 0 disarms.
func (h *Heap) ScheduleCrashAtAccess(n int64) {
	if n <= 0 {
		h.crashAt.Store(0)
		return
	}
	h.crashAt.Store(h.accessNo.Load() + n)
}

// CrashNow marks the system as crashed: every subsequent simulated
// access by any thread panics with the crash signal (catch it with
// Protect). If the heap belongs to a HeapSet, the crash propagates to
// every member — the set shares one power supply. Only meaningful in
// ModeCrash.
func (h *Heap) CrashNow() {
	if h.cfg.Mode != ModeCrash {
		panic("pmem: CrashNow requires ModeCrash")
	}
	h.triggerCrash()
}

// triggerCrash marks this heap and every sibling in its crash group as
// crashed. Idempotent; safe from multiple threads.
func (h *heapState) triggerCrash() {
	h.crashed.Store(true)
	for _, s := range h.crashGroup {
		s.crashed.Store(true)
	}
}

// Crashed reports whether a crash has been triggered and not yet
// cleared by Restart.
func (h *Heap) Crashed() bool { return h.crashed.Load() }

func (h *Heap) crashCheck() {
	if h.crashed.Load() {
		panic(crashSignal{})
	}
	if at := h.crashAt.Load(); at > 0 && h.accessNo.Add(1) >= at {
		h.triggerCrash()
		panic(crashSignal{})
	}
}

// FinalizeCrash materializes the NVRAM image at the crash point: for
// every journalled cache line, a durable prefix of its stores is
// chosen uniformly at random between the prefix guaranteed by fences
// and the full store sequence (modelling unpredictable implicit cache
// evictions under Assumption 1), and applied to the image. Must be
// called after all worker goroutines have observed the crash and
// stopped.
func (h *Heap) FinalizeCrash(rng *rand.Rand) {
	if h.cfg.Mode != ModeCrash {
		panic("pmem: FinalizeCrash requires ModeCrash")
	}
	if !h.crashed.Load() {
		panic("pmem: FinalizeCrash called before a crash was triggered")
	}
	for line := range h.logs {
		lg := &h.logs[line]
		if len(lg.entries) == 0 {
			continue
		}
		k := lg.persisted
		if n := len(lg.entries) - k; n > 0 {
			k += rng.Intn(n + 1)
		}
		h.applyEntries(line, lg.entries[:k])
		lg.entries = lg.entries[:0]
		lg.persisted = 0
		lg.gen++
	}
}

// AccessCount reports how many crash-checked simulated accesses have
// occurred since the last Restart while a crash was armed. Exhaustive
// crash-point tests use it to enumerate injection points.
func (h *Heap) AccessCount() int64 { return h.accessNo.Load() }

// Restart models rebooting after a crash (or simply reopening the
// persistent heap): the working view is reloaded from the NVRAM
// image, all volatile simulator state (cache flags, pending flushes,
// the crash flag, and the root-slot windows claimed by View) is
// discarded, and new threads may run. Statistics are preserved across
// restarts.
func (h *Heap) Restart() {
	copy(h.mem, h.img)
	for i := range h.flags {
		h.flags[i].Store(0)
	}
	for i := range h.threads {
		h.threads[i].pending = h.threads[i].pending[:0]
		h.threads[i].drainedBy = 0
	}
	if h.cfg.Mode == ModeCrash {
		for line := range h.logs {
			h.logs[line].entries = h.logs[line].entries[:0]
			h.logs[line].persisted = 0
		}
	}
	h.viewMu.Lock()
	h.views = nil
	h.viewMu.Unlock()
	h.crashed.Store(false)
	h.accessNo.Store(0)
	h.crashAt.Store(0)
}
