package dheap

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newHeap(mode pmem.Mode, threads int) *pmem.Heap {
	return pmem.New(pmem.Config{Bytes: 32 << 20, Mode: mode, MaxThreads: threads})
}

func payloadFor(key uint64, n int) []byte {
	p := make([]byte, n)
	binary.LittleEndian.PutUint64(p, key)
	for i := 8; i < n; i++ {
		p[i] = byte(key>>uint(i%8)*8) ^ byte(i)
	}
	return p
}

func drainAll(q *Q, tid int) (payloads [][]byte, keys []uint64) {
	for {
		ps, ks := q.PopReadyBatch(tid, ^uint64(0), 64)
		if len(ps) == 0 {
			return payloads, keys
		}
		payloads = append(payloads, ps...)
		keys = append(keys, ks...)
	}
}

func TestPushPopOrder(t *testing.T) {
	h := newHeap(0, 2)
	q := New(h, Config{Threads: 2, MaxPayload: 8, Capacity: 256})
	rng := rand.New(rand.NewSource(7))
	var want []uint64
	for i := 0; i < 200; i++ {
		key := uint64(rng.Intn(50))
		want = append(want, key)
		if err := q.Push(i%2, key, payloadFor(key, 8)); err != nil {
			t.Fatal(err)
		}
	}
	_, got := drainAll(q, 0)
	if len(got) != len(want) {
		t.Fatalf("popped %d entries, pushed %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("pop order violated at %d: %d after %d", i, got[i], got[i-1])
		}
	}
}

// Equal keys must pop in publish (seq) order: the comparator is
// (key, seq), making delay topics FIFO within a deadline.
func TestEqualKeysFIFO(t *testing.T) {
	h := newHeap(0, 1)
	q := New(h, Config{Threads: 1, MaxPayload: 16, Capacity: 64})
	for i := 0; i < 20; i++ {
		p := make([]byte, 16)
		binary.LittleEndian.PutUint64(p, uint64(i))
		if err := q.Push(0, 42, p); err != nil {
			t.Fatal(err)
		}
	}
	ps, _ := drainAll(q, 0)
	for i, p := range ps {
		if got := binary.LittleEndian.Uint64(p); got != uint64(i) {
			t.Fatalf("equal-key pop %d returned publish ordinal %d", i, got)
		}
	}
}

func TestReadyGating(t *testing.T) {
	h := newHeap(0, 1)
	q := New(h, Config{Threads: 1, Capacity: 64})
	for _, key := range []uint64{30, 10, 20} {
		if err := q.Push(0, key, payloadFor(key, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := q.PopReady(0, 9); ok {
		t.Fatal("popped an entry before its key was ready")
	}
	if got := q.ReadyDepth(25); got != 2 {
		t.Fatalf("ReadyDepth(25) = %d, want 2", got)
	}
	if min, ok := q.MinKey(); !ok || min != 10 {
		t.Fatalf("MinKey = %d,%v, want 10,true", min, ok)
	}
	_, key, ok := q.PopReady(0, 15)
	if !ok || key != 10 {
		t.Fatalf("PopReady(15) = %d,%v, want 10,true", key, ok)
	}
	if _, key, ok = q.PopReady(0, 15); ok {
		t.Fatalf("PopReady(15) delivered key %d past the gate", key)
	}
	ps, ks := q.PopReadyBatch(0, ^uint64(0), 8)
	if len(ps) != 2 || ks[0] != 20 || ks[1] != 30 {
		t.Fatalf("final drain = %v, want [20 30]", ks)
	}
	if q.Depth() != 0 {
		t.Fatalf("Depth = %d after drain", q.Depth())
	}
}

func TestErrFullAllOrNothing(t *testing.T) {
	h := newHeap(0, 2)
	q := New(h, Config{Threads: 2, Capacity: 4})
	keys := []uint64{1, 2, 3}
	ps := [][]byte{payloadFor(1, 8), payloadFor(2, 8), payloadFor(3, 8)}
	if err := q.PushBatch(0, keys, ps); err != nil {
		t.Fatal(err)
	}
	// 1 slot left in tid 0's arena: a 3-entry batch must fail whole.
	if err := q.PushBatch(0, keys, ps); err == nil {
		t.Fatal("over-capacity PushBatch succeeded")
	} else if !errorsIs(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if q.Depth() != 3 {
		t.Fatalf("failed batch published %d entries (all-or-nothing broken)", q.Depth()-3)
	}
	// The other thread's arena is unaffected.
	if err := q.PushBatch(1, keys, ps); err != nil {
		t.Fatalf("tid 1 push after tid 0 ErrFull: %v", err)
	}
	// Draining frees the slots again.
	drainAll(q, 0)
	if err := q.PushBatch(0, keys, ps); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestFenceAccounting pins the package's durability budget: publish =
// one fence per batch however deep the sifts, pop-min = one fence per
// ready batch plus one NTStore per entry, empty pops and every gauge
// = zero persist instructions.
func TestFenceAccounting(t *testing.T) {
	h := newHeap(0, 1)
	q := New(h, Config{Threads: 1, MaxPayload: 8, Capacity: 256})
	rng := rand.New(rand.NewSource(3))

	const batch = 64
	keys := make([]uint64, batch)
	ps := make([][]byte, batch)
	for i := range keys {
		keys[i] = uint64(rng.Intn(1000)) // random keys: real sift work
		ps[i] = payloadFor(keys[i], 8)
	}
	d := h.DeltaOf(0)
	if err := q.PushBatch(0, keys, ps); err != nil {
		t.Fatal(err)
	}
	if s := d.Delta(); s.Fences != 1 {
		t.Fatalf("publish batch of %d cost %d fences, want 1", batch, s.Fences)
	} else if want := uint64(batch * 7); s.NTStores != want {
		t.Fatalf("publish batch of %d cost %d NTStores, want %d", batch, s.NTStores, want)
	}

	d = h.DeltaOf(0)
	ps2, _ := q.PopReadyBatch(0, ^uint64(0), 16)
	if s := d.Delta(); s.Fences != 1 {
		t.Fatalf("pop batch cost %d fences, want 1", s.Fences)
	} else if s.NTStores != uint64(len(ps2)) {
		t.Fatalf("pop batch of %d cost %d NTStores, want one per entry", len(ps2), s.NTStores)
	}

	// Gauges and not-ready pops persist nothing.
	d = h.DeltaOf(0)
	q.Depth()
	q.ReadyDepth(10)
	q.MinKey()
	if _, _, ok := q.PopReady(0, 0); ok {
		t.Fatal("PopReady(0) delivered")
	}
	if s := d.Delta(); s.Fences != 0 || s.NTStores != 0 || s.Flushes != 0 {
		t.Fatalf("gauges/empty pop persisted: %+v", s)
	}
}

// TestRecover round-trips a mixed live/consumed state through a clean
// crash: live entries recover exactly once in heap order, consumed
// entries never resurrect, and the seq counter resumes past
// everything so later publishes keep FIFO-within-key.
func TestRecover(t *testing.T) {
	h := newHeap(pmem.ModeCrash, 2)
	q := New(h, Config{Threads: 2, MaxPayload: 40, Capacity: 64})
	consumed := map[uint64]bool{}
	for i := 0; i < 40; i++ {
		key := uint64(i % 10)
		if err := q.Push(i%2, key, payloadFor(uint64(i)+100, 40)); err != nil {
			t.Fatal(err)
		}
	}
	ps, _ := q.PopReadyBatch(0, ^uint64(0), 15)
	for _, p := range ps {
		consumed[binary.LittleEndian.Uint64(p)] = true
	}
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(1)))
	h.Restart()

	r, err := Recover(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth() != 25 {
		t.Fatalf("recovered depth %d, want 25", r.Depth())
	}
	// New publishes after recovery must sort after recovered entries
	// of the same key (seq continuity).
	if err := r.Push(0, 0, payloadFor(999, 40)); err != nil {
		t.Fatal(err)
	}
	rps, rks := drainAll(r, 1)
	seen := map[uint64]bool{}
	for i, p := range rps {
		id := binary.LittleEndian.Uint64(p)
		if consumed[id] {
			t.Fatalf("consumed entry %d resurrected", id)
		}
		if seen[id] {
			t.Fatalf("entry %d recovered twice", id)
		}
		seen[id] = true
		if i > 0 && rks[i] < rks[i-1] {
			t.Fatalf("recovered pop order violated at %d", i)
		}
		if want := payloadFor(id, 40); string(p) != string(want) {
			t.Fatalf("entry %d payload corrupted across recovery", id)
		}
	}
	if len(rps) != 26 {
		t.Fatalf("drained %d entries, want 26", len(rps))
	}
	// The key-0 entries: recovered ones (ids 100,110,120,130 minus
	// consumed) must precede the post-recovery 999.
	last0 := -1
	for i, k := range rks {
		if k == 0 {
			last0 = i
		}
	}
	if got := binary.LittleEndian.Uint64(rps[last0]); got != 999 {
		t.Fatalf("post-recovery publish popped before recovered same-key entries (last key-0 id %d)", got)
	}
}

// TestRecoverFullArenaBackpressure crashes with every slot of the
// arena holding a live entry and requires Recover to leave the free
// list empty: a Push into the recovered full arena must refuse with
// ErrFull rather than claim (and overwrite) a live slot, and every
// recovered entry must survive a second crash intact.
func TestRecoverFullArenaBackpressure(t *testing.T) {
	h := newHeap(pmem.ModeCrash, 1)
	q := New(h, Config{Threads: 1, MaxPayload: 8, Capacity: 4})
	for i := uint64(1); i <= 4; i++ {
		if err := q.Push(0, i, payloadFor(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(2)))
	h.Restart()
	r, err := Recover(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth() != 4 {
		t.Fatalf("recovered depth %d, want 4", r.Depth())
	}
	if err := r.Push(0, 9, payloadFor(9, 8)); !errorsIs(err, ErrFull) {
		t.Fatalf("Push into fully-live recovered arena = %v, want ErrFull", err)
	}
	// Second crash without consuming anything: all four live entries
	// must come back a second time, unduplicated and uncorrupted.
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(3)))
	h.Restart()
	r2, err := Recover(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps, ks := drainAll(r2, 0)
	if len(ps) != 4 {
		t.Fatalf("second recovery drained %d entries, want 4", len(ps))
	}
	seen := map[uint64]bool{}
	for i, p := range ps {
		id := binary.LittleEndian.Uint64(p)
		if id != ks[i] || id < 1 || id > 4 || seen[id] {
			t.Fatalf("second recovery pop %d: key %d payload id %d", i, ks[i], id)
		}
		seen[id] = true
		if string(p) != string(payloadFor(id, 8)) {
			t.Fatalf("entry %d corrupted across double recovery", id)
		}
	}
	// Draining freed all four slots: exactly capacity pushes fit again.
	for i := uint64(10); i < 14; i++ {
		if err := r2.Push(0, i, payloadFor(i, 8)); err != nil {
			t.Fatalf("push %d after drain: %v", i, err)
		}
	}
	if err := r2.Push(0, 14, payloadFor(14, 8)); !errorsIs(err, ErrFull) {
		t.Fatalf("over-capacity push after drain = %v, want ErrFull", err)
	}
}

// TestRecoverPartialConsumeFreeList pins the free-list census after a
// mixed recovery: with 2 of 6 entries consumed before the crash,
// exactly 2 slots (the consumed ones) are claimable afterwards.
func TestRecoverPartialConsumeFreeList(t *testing.T) {
	h := newHeap(pmem.ModeCrash, 1)
	q := New(h, Config{Threads: 1, MaxPayload: 8, Capacity: 6})
	for i := uint64(1); i <= 6; i++ {
		if err := q.Push(0, i, payloadFor(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if ps, _ := q.PopReadyBatch(0, ^uint64(0), 2); len(ps) != 2 {
		t.Fatalf("popped %d, want 2", len(ps))
	}
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(5)))
	h.Restart()
	r, err := Recover(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth() != 4 {
		t.Fatalf("recovered depth %d, want 4", r.Depth())
	}
	for i := uint64(20); i < 22; i++ {
		if err := r.Push(0, i, payloadFor(i, 8)); err != nil {
			t.Fatalf("push into consumed slot: %v", err)
		}
	}
	if err := r.Push(0, 22, payloadFor(22, 8)); !errorsIs(err, ErrFull) {
		t.Fatalf("push past consumed-slot budget = %v, want ErrFull", err)
	}
	// Nothing recovered was overwritten by the two reuse pushes.
	ps, _ := drainAll(r, 0)
	got := map[uint64]bool{}
	for _, p := range ps {
		got[binary.LittleEndian.Uint64(p)] = true
	}
	for _, id := range []uint64{3, 4, 5, 6, 20, 21} {
		if !got[id] {
			t.Fatalf("entry %d lost (drained ids %v)", id, got)
		}
	}
	if len(ps) != 6 {
		t.Fatalf("drained %d entries, want 6", len(ps))
	}
}

// TestTornPublishTruncated is the satellite torn-tail coverage: crash
// at every access offset inside a publish (between its NTStores and
// its fence) and require recovery to either keep the entry whole or
// truncate it entirely — never a torn half-entry — while previously
// fenced entries survive untouched. MaxPayload 40 forces a two-line
// entry so the sweep crosses a payload-line/header-line boundary.
func TestTornPublishTruncated(t *testing.T) {
	sawLost, sawKept := false, false
	for off := int64(1); ; off++ {
		h := newHeap(pmem.ModeCrash, 1)
		q := New(h, Config{Threads: 1, MaxPayload: 40, Capacity: 16})
		for i := uint64(1); i <= 3; i++ {
			if err := q.Push(0, i, payloadFor(i, 40)); err != nil {
				t.Fatal(err)
			}
		}
		h.ScheduleCrashAtAccess(h.AccessCount() + off)
		crashed := pmem.Protect(func() {
			if err := q.Push(0, 7, payloadFor(7, 40)); err != nil {
				t.Fatal(err)
			}
		})
		if !crashed {
			h.CrashNow()
		}
		h.FinalizeCrash(rand.New(rand.NewSource(off)))
		h.Restart()
		r, err := Recover(h, 1)
		if err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		ps, ks := drainAll(r, 0)
		want := map[uint64]bool{1: true, 2: true, 3: true}
		got7 := 0
		for i, p := range ps {
			id := binary.LittleEndian.Uint64(p)
			if id == 7 {
				got7++
				if ks[i] != 7 || string(p) != string(payloadFor(7, 40)) {
					t.Fatalf("off %d: torn entry recovered corrupted (key %d)", off, ks[i])
				}
				continue
			}
			if !want[id] {
				t.Fatalf("off %d: unexpected or duplicate entry %d", off, id)
			}
			delete(want, id)
			if string(p) != string(payloadFor(id, 40)) {
				t.Fatalf("off %d: fenced entry %d corrupted by neighbour's torn publish", off, id)
			}
		}
		if len(want) != 0 {
			t.Fatalf("off %d: fenced entries lost: %v", off, want)
		}
		if got7 > 1 {
			t.Fatalf("off %d: torn entry duplicated", off)
		}
		sawLost = sawLost || got7 == 0
		sawKept = sawKept || got7 == 1
		if !crashed {
			break // swept past the whole publish
		}
	}
	if !sawLost || !sawKept {
		t.Fatalf("sweep did not cover both outcomes (lost=%v kept=%v)", sawLost, sawKept)
	}
}

// TestConsumedSlotNoResurrection reuses one slot (capacity 1) and
// crashes at every offset inside the reusing publish: the previously
// consumed entry must never come back live, because its stale state
// word still equals its own seq while any new occupant carries a
// strictly larger seq.
func TestConsumedSlotNoResurrection(t *testing.T) {
	for off := int64(1); ; off++ {
		h := newHeap(pmem.ModeCrash, 1)
		q := New(h, Config{Threads: 1, MaxPayload: 8, Capacity: 1})
		if err := q.Push(0, 5, payloadFor(5, 8)); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := q.PopReady(0, ^uint64(0)); !ok {
			t.Fatal("pop failed")
		}
		h.ScheduleCrashAtAccess(h.AccessCount() + off)
		crashed := pmem.Protect(func() {
			if err := q.Push(0, 9, payloadFor(9, 8)); err != nil {
				t.Fatal(err)
			}
		})
		if !crashed {
			h.CrashNow()
		}
		h.FinalizeCrash(rand.New(rand.NewSource(off * 17)))
		h.Restart()
		r, err := Recover(h, 1)
		if err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		ps, _ := drainAll(r, 0)
		for _, p := range ps {
			if id := binary.LittleEndian.Uint64(p); id == 5 {
				t.Fatalf("off %d: consumed entry resurrected after slot reuse", off)
			}
		}
		if len(ps) > 1 {
			t.Fatalf("off %d: %d entries from a 1-slot arena", off, len(ps))
		}
		if !crashed {
			break
		}
	}
}

// TestCrashFuzz drives concurrent pushers and poppers into a randomly
// scheduled crash and audits delivered-or-recovered-exactly-once with
// the documented loss allowance (one in-flight pop batch per popper).
func TestCrashFuzz(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	const (
		pushers  = 2
		poppers  = 2
		perTid   = 400
		popBatch = 8
	)
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h := newHeap(pmem.ModeCrash, pushers+poppers)
			q := New(h, Config{Threads: pushers + poppers, MaxPayload: 16, Capacity: perTid + 8})
			rng := rand.New(rand.NewSource(seed))
			h.ScheduleCrashAtAccess(h.AccessCount() + int64(rng.Intn(12000)) + 500)

			acked := make([][]bool, pushers) // fenced publishes
			delivered := make(chan []byte, 2*pushers*perTid)
			done := make(chan struct{})
			for p := 0; p < pushers; p++ {
				acked[p] = make([]bool, perTid)
			}
			var wg, pwg sync.WaitGroup
			for p := 0; p < pushers; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					prng := rand.New(rand.NewSource(seed*100 + int64(p)))
					for i := 0; i < perTid; i++ {
						payload := make([]byte, 16)
						binary.LittleEndian.PutUint64(payload, uint64(p))
						binary.LittleEndian.PutUint64(payload[8:], uint64(i))
						key := uint64(prng.Intn(64))
						var err error
						if pmem.Protect(func() { err = q.Push(p, key, payload) }) {
							return
						}
						if err != nil {
							i-- // ErrFull: retry
							continue
						}
						acked[p][i] = true
					}
				}()
			}
			for c := 0; c < poppers; c++ {
				tid := pushers + c
				pwg.Add(1)
				go func() {
					defer pwg.Done()
					for {
						var ps [][]byte
						if pmem.Protect(func() { ps, _ = q.PopReadyBatch(tid, ^uint64(0), popBatch) }) {
							return
						}
						for _, p := range ps {
							delivered <- p
						}
						select {
						case <-done:
							if len(ps) == 0 {
								return
							}
						default:
						}
					}
				}()
			}
			wg.Wait()
			close(done)
			pwg.Wait()
			if !h.Crashed() {
				h.CrashNow()
			}
			close(delivered)
			h.FinalizeCrash(rand.New(rand.NewSource(seed * 31)))
			h.Restart()
			r, err := Recover(h, pushers+poppers)
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[[2]uint64]int)
			for p := range delivered {
				counts[[2]uint64{binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:])}]++
			}
			rps, _ := drainAll(r, 0)
			for _, p := range rps {
				counts[[2]uint64{binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:])}]++
			}
			lost := 0
			for p := 0; p < pushers; p++ {
				for i := 0; i < perTid; i++ {
					n := counts[[2]uint64{uint64(p), uint64(i)}]
					if n > 1 {
						t.Fatalf("seed %d: message %d/%d seen %d times", seed, p, i, n)
					}
					if acked[p][i] && n == 0 {
						lost++
					}
					if !acked[p][i] && n > 1 {
						t.Fatalf("seed %d: unacked message %d/%d seen %d times", seed, p, i, n)
					}
				}
			}
			if allow := poppers * popBatch; lost > allow {
				t.Fatalf("seed %d: lost %d acked messages, allowance %d", seed, lost, allow)
			}
		})
	}
}
