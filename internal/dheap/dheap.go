// Package dheap is a durable priority queue over simulated NVRAM,
// extending the paper's discipline — per-thread non-temporal stores
// plus one blocking fence, with order reconstructed at recovery —
// from FIFO order to heap order.
//
// The durable state is deliberately NOT a heap. It is a checksummed
// per-thread *entry log*: a fixed arena of entry slots per thread
// inside one pmem region. A publish claims a free slot from the
// publishing thread's arena, NTStores the entry (seq, key, payload,
// checksum) and issues a single fence — one fence per batch when
// batched, exactly like the queues' EnqueueBatch. A pop-min marks the
// entry consumed with one NTStore of the entry's own seq into the
// entry's state word and covers a whole ready batch with one fence.
// The comparator order — the min-heap on (key, seq) — lives purely in
// DRAM and is rebuilt at recovery by replaying live entries, so
// sift-up/sift-down cost zero persist instructions and pop-min stays
// O(1) fences.
//
// Soundness of the intent-log scheme:
//
//   - A publish is visible (inserted into the volatile heap) only
//     after its fence, so any entry a consumer can observe is already
//     durable: delivered messages survive the crash as consumed, not
//     as duplicates.
//   - The entry checksum covers seq, key, len and every payload word
//     but NOT the state word. A crash between the publish NTStores
//     and the fence leaves a torn entry whose checksum cannot match;
//     recovery treats it as dead and truncates it from the log —
//     the same torn-tail discipline as the broker's catalog log.
//   - The state word is written only by pop, and only ever with the
//     entry's own seq. Recovery classifies a checksum-valid entry as
//     consumed iff state == seq. Because seqs are globally unique and
//     monotone (recovery resumes from max over every seq AND state
//     word observed, +1), a stale state word left by a previous
//     occupant of the slot can never equal the new occupant's seq —
//     consumed entries cannot resurrect, and live entries cannot be
//     silently swallowed.
//   - Pop returns payloads only after the consume fence, so a
//     returned message is durably consumed. A crash between the
//     consume NTStore and its fence may lose that message (consumed
//     durably, never returned) — bounded by the pop batch size, the
//     same loss window the broker's DequeueBatch already documents.
//
// Delay topics and priority topics are the same structure with
// different keys: a deadline gates readiness (PopReady delivers only
// key <= now), a priority is always ready (now = ^uint64(0)).
package dheap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
)

// dheapMagic brands the region header and salts entry checksums.
const dheapMagic uint64 = 0x4448656170_31 // "DHeap1"

const (
	inlinePayload = 3 * pmem.WordBytes // payload bytes carried in the entry's header line
	slotRegion    = 0                  // root slot anchoring the region base address
)

// ErrFull reports that the publishing thread's entry arena has no
// free slot: the caller must drain (pop) or retry — backpressure,
// not data loss.
var ErrFull = errors.New("dheap: thread entry arena full")

// Config sizes a new durable heap.
type Config struct {
	// Threads is the number of worker threads (tids) that may touch
	// the heap. Each gets its own entry arena.
	Threads int
	// MaxPayload is the largest payload in bytes. 0 means 8 (one
	// word), matching the fixed-size queues.
	MaxPayload int
	// Capacity is the number of entry slots per thread arena.
	// Defaults to 1024.
	Capacity int
	// InitTid is the thread id used for initialization persists.
	InitTid int
}

func (c *Config) norm() {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 8
	}
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
}

// item is one live entry mirrored in the volatile min-heap.
type item struct {
	key, seq uint64
	tid, idx int32
	payload  []byte
}

// Q is a durable priority queue. All methods are safe for concurrent
// use; the volatile index is guarded by one mutex (the durable writes
// themselves are per-thread and need no locking).
type Q struct {
	h      *pmem.Heap
	region pmem.Addr

	threads    int
	cap        int
	stride     int // lines per entry
	maxPayload int

	seq atomic.Uint64 // last issued seq; next = Add(1)

	mu   sync.Mutex
	heap []item    // volatile min-heap on (key, seq)
	free [][]int32 // per-tid free slot indices
}

// strideFor returns the number of cache lines one entry occupies.
func strideFor(maxPayload int) int {
	extra := maxPayload - inlinePayload
	if extra < 0 {
		extra = 0
	}
	return 1 + (extra+pmem.CacheLineBytes-1)/pmem.CacheLineBytes
}

// payloadWords is the number of checksummed payload words per entry.
func (q *Q) payloadWords() int {
	return 3 + pmem.WordsPerLine*(q.stride-1)
}

// New formats a durable heap in view's region and anchors it at root
// slot 0 under the ordered-persist discipline: the region is
// initialized and its header made durable before the anchor store, so
// a crash mid-format recovers as "never existed" (the caller's
// catalog record is what commits the topic).
func New(view *pmem.Heap, cfg Config) *Q {
	cfg.norm()
	q := &Q{
		h:          view,
		threads:    cfg.Threads,
		cap:        cfg.Capacity,
		stride:     strideFor(cfg.MaxPayload),
		maxPayload: cfg.MaxPayload,
	}
	tid := cfg.InitTid
	size := int64(1+q.threads*q.cap*q.stride) * pmem.CacheLineBytes
	q.region = view.AllocRaw(tid, size, pmem.CacheLineBytes)
	view.InitRange(tid, q.region, size)

	hw := [8]uint64{dheapMagic, uint64(q.threads), uint64(q.cap), uint64(q.stride), uint64(q.maxPayload), 0, 0, 0}
	hw[7] = headerSum(hw)
	for i, w := range hw {
		view.NTStore(tid, q.region+pmem.Addr(i*pmem.WordBytes), w)
	}
	view.Fence(tid)
	view.Store(tid, view.RootAddr(slotRegion), uint64(q.region))
	view.Persist(tid, view.RootAddr(slotRegion))

	q.initVolatile()
	return q
}

// Recover rebuilds a durable heap from view's region after a crash:
// it replays every entry slot, classifies each as live (checksum
// valid, state != seq), consumed (checksum valid, state == seq) or
// dead (torn or virgin — truncated from the log), re-inserts live
// entries into a fresh volatile min-heap, and resumes the seq counter
// past every seq and state word ever observed.
func Recover(view *pmem.Heap, threads int) (*Q, error) {
	const tid = 0
	region := pmem.Addr(view.Load(tid, view.RootAddr(slotRegion)))
	if region == 0 {
		return nil, errors.New("dheap: recover: no region anchored")
	}
	var hw [8]uint64
	for i := range hw {
		hw[i] = view.Load(tid, region+pmem.Addr(i*pmem.WordBytes))
	}
	if hw[0] != dheapMagic || hw[7] != headerSum(hw) {
		return nil, fmt.Errorf("dheap: recover: bad region header at %#x", uint64(region))
	}
	q := &Q{
		h:          view,
		region:     region,
		threads:    int(hw[1]),
		cap:        int(hw[2]),
		stride:     int(hw[3]),
		maxPayload: int(hw[4]),
	}
	if q.threads <= 0 || q.cap <= 0 || q.stride != strideFor(q.maxPayload) {
		return nil, fmt.Errorf("dheap: recover: inconsistent region header at %#x", uint64(region))
	}
	if q.threads < threads {
		return nil, fmt.Errorf("dheap: recover: region sized for %d threads, need %d", q.threads, threads)
	}
	// Free lists start EMPTY: only slots the scan below classifies as
	// dead or consumed are freed. Pre-filling (initVolatile) would
	// leave live entries' slots claimable and a later Push could
	// silently overwrite a durably-published message.
	q.emptyFreeLists()

	var maxSeq uint64
	pw := q.payloadWords()
	words := make([]uint64, pw)
	for t := 0; t < q.threads; t++ {
		// Live entries per arena, in slot order; consumed/dead slots
		// go back to the free list.
		for idx := 0; idx < q.cap; idx++ {
			base := q.entryAddr(int32(t), int32(idx))
			seq := view.Load(tid, base)
			key := view.Load(tid, base+1*pmem.WordBytes)
			length := view.Load(tid, base+2*pmem.WordBytes)
			state := view.Load(tid, base+3*pmem.WordBytes)
			sum := view.Load(tid, base+7*pmem.WordBytes)
			if seq > maxSeq {
				maxSeq = seq
			}
			if state > maxSeq {
				maxSeq = state
			}
			q.loadPayloadWords(tid, base, words)
			valid := seq != 0 && length <= uint64(q.maxPayload) &&
				sum == entrySum(seq, key, length, words)
			if !valid || state == seq {
				// Torn (crash between NTStore and fence), virgin, or
				// durably consumed: the slot is free.
				q.free[t] = append(q.free[t], int32(idx))
				continue
			}
			q.heapPush(item{key: key, seq: seq, tid: int32(t), idx: int32(idx),
				payload: wordsToBytes(words, int(length))})
		}
	}
	q.seq.Store(maxSeq)
	return q, nil
}

// initVolatile builds the fresh-format volatile state: every slot of
// every arena sits on its thread's free list.
func (q *Q) initVolatile() {
	q.emptyFreeLists()
	for t := range q.free {
		// LIFO free list: append in reverse so slot 0 pops first.
		for idx := q.cap - 1; idx >= 0; idx-- {
			q.free[t] = append(q.free[t], int32(idx))
		}
	}
}

// emptyFreeLists allocates empty per-thread free lists.
func (q *Q) emptyFreeLists() {
	q.free = make([][]int32, q.threads)
	for t := range q.free {
		q.free[t] = make([]int32, 0, q.cap)
	}
}

// entryAddr returns the address of entry (tid, idx)'s header line.
func (q *Q) entryAddr(tid, idx int32) pmem.Addr {
	line := 1 + (int(tid)*q.cap+int(idx))*q.stride
	return q.region + pmem.Addr(line*pmem.CacheLineBytes)
}

// loadPayloadWords reads the entry's checksummed payload words
// (inline words 4..6 of the header line, then every word of the
// overflow lines) into dst, which must have length payloadWords().
func (q *Q) loadPayloadWords(tid int, base pmem.Addr, dst []uint64) {
	dst[0] = q.h.Load(tid, base+4*pmem.WordBytes)
	dst[1] = q.h.Load(tid, base+5*pmem.WordBytes)
	dst[2] = q.h.Load(tid, base+6*pmem.WordBytes)
	for i := 3; i < len(dst); i++ {
		// Overflow words start at the second line of the entry.
		off := pmem.Addr((pmem.WordsPerLine + (i - 3)) * pmem.WordBytes)
		dst[i] = q.h.Load(tid, base+off)
	}
}

// Capacity returns the per-thread arena capacity in entries.
func (q *Q) Capacity() int { return q.cap }

// MaxPayload returns the largest payload the heap accepts.
func (q *Q) MaxPayload() int { return q.maxPayload }

// Push publishes one entry. One fence.
func (q *Q) Push(tid int, key uint64, payload []byte) error {
	return q.PushBatch(tid, []uint64{key}, [][]byte{payload})
}

// PushBatch publishes len(keys) entries under a single fence
// (durability amortized like EnqueueBatch). The batch is
// all-or-nothing with respect to ErrFull: either every entry gets a
// slot or none is published. Entries become visible to PopReady only
// after the fence, so anything observable is durable.
func (q *Q) PushBatch(tid int, keys []uint64, payloads [][]byte) error {
	if len(keys) != len(payloads) {
		panic("dheap: PushBatch keys/payloads length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	for _, p := range payloads {
		if len(p) > q.maxPayload {
			panic(fmt.Sprintf("dheap: payload %d bytes exceeds MaxPayload %d", len(p), q.maxPayload))
		}
	}
	slots, err := q.takeSlots(tid, len(keys))
	if err != nil {
		return err
	}
	staged := make([]item, len(keys))
	for i, key := range keys {
		seq := q.seq.Add(1)
		q.writeEntry(tid, slots[i], seq, key, payloads[i])
		staged[i] = item{key: key, seq: seq, tid: int32(tid), idx: slots[i],
			payload: append([]byte(nil), payloads[i]...)}
	}
	q.h.Fence(tid) // one blocking persist for the whole batch
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, it := range staged {
		q.heapPush(it)
	}
	return nil
}

// takeSlots claims n free slots from tid's arena, all-or-nothing.
func (q *Q) takeSlots(tid, n int) ([]int32, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	fl := q.free[tid]
	if len(fl) < n {
		return nil, fmt.Errorf("%w: tid %d needs %d slots, %d free (capacity %d)",
			ErrFull, tid, n, len(fl), q.cap)
	}
	slots := append([]int32(nil), fl[len(fl)-n:]...)
	q.free[tid] = fl[:len(fl)-n]
	return slots, nil
}

// writeEntry NTStores one entry without fencing. The full payload
// capacity is written (zero-padded) so the checksum always covers a
// deterministic word set; the state word (w3) is skipped — it belongs
// to pop, and excluding it from both write and checksum is what lets
// a consume mark survive independently of the entry body.
func (q *Q) writeEntry(tid int, idx int32, seq, key uint64, payload []byte) {
	base := q.entryAddr(int32(tid), idx)
	words := make([]uint64, q.payloadWords())
	bytesToWords(payload, words)
	// Overflow payload lines first, then the header line with the
	// checksum as its last word: within each cache line the simulator
	// crash-truncates to a prefix of the stores issued, so a header
	// line whose checksum landed implies the whole header landed.
	for i := 3; i < len(words); i++ {
		off := pmem.Addr((pmem.WordsPerLine + (i - 3)) * pmem.WordBytes)
		q.h.NTStore(tid, base+off, words[i])
	}
	q.h.NTStore(tid, base, seq)
	q.h.NTStore(tid, base+1*pmem.WordBytes, key)
	q.h.NTStore(tid, base+2*pmem.WordBytes, uint64(len(payload)))
	q.h.NTStore(tid, base+4*pmem.WordBytes, words[0])
	q.h.NTStore(tid, base+5*pmem.WordBytes, words[1])
	q.h.NTStore(tid, base+6*pmem.WordBytes, words[2])
	q.h.NTStore(tid, base+7*pmem.WordBytes, entrySum(seq, key, uint64(len(payload)), words))
}

// PopReady pops the minimum entry with key <= maxKey. One fence when
// a message is delivered; zero persists when nothing is ready.
func (q *Q) PopReady(tid int, maxKey uint64) (payload []byte, key uint64, ok bool) {
	ps, ks := q.PopReadyBatch(tid, maxKey, 1)
	if len(ps) == 0 {
		return nil, 0, false
	}
	return ps[0], ks[0], true
}

// PopReadyBatch pops up to max entries in (key, seq) order, all with
// key <= maxKey, marking each consumed with one NTStore and covering
// the whole batch with a single fence. Payloads are returned only
// after that fence — a returned message is durably consumed — and
// slots are recycled only after it too, so a torn consume can lose at
// most one in-flight batch, never duplicate it. An empty pop performs
// zero persist instructions.
func (q *Q) PopReadyBatch(tid int, maxKey uint64, max int) (payloads [][]byte, keys []uint64) {
	if max <= 0 {
		return nil, nil
	}
	q.mu.Lock()
	var popped []item
	for len(popped) < max && len(q.heap) > 0 && q.heap[0].key <= maxKey {
		popped = append(popped, q.heapPop())
	}
	q.mu.Unlock()
	if len(popped) == 0 {
		return nil, nil
	}
	for _, it := range popped {
		// Consume mark: the entry's own seq into its state word.
		q.h.NTStore(tid, q.entryAddr(it.tid, it.idx)+3*pmem.WordBytes, it.seq)
	}
	q.h.Fence(tid) // one blocking persist for the whole ready batch
	q.mu.Lock()
	for _, it := range popped {
		q.free[it.tid] = append(q.free[it.tid], it.idx)
	}
	q.mu.Unlock()
	payloads = make([][]byte, len(popped))
	keys = make([]uint64, len(popped))
	for i, it := range popped {
		payloads[i] = it.payload
		keys[i] = it.key
	}
	return payloads, keys
}

// Depth returns the number of live (published, unconsumed) entries.
func (q *Q) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// ReadyDepth returns the number of live entries with key <= maxKey —
// for delay topics, how many messages are deliverable right now.
func (q *Q) ReadyDepth(maxKey uint64) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, it := range q.heap {
		if it.key <= maxKey {
			n++
		}
	}
	return n
}

// MinKey returns the smallest live key (the next deadline for a delay
// topic) and whether the heap is non-empty.
func (q *Q) MinKey() (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].key, true
}

// --- volatile min-heap on (key, seq); zero persists by construction ---

func itemLess(a, b item) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func (q *Q) heapPush(it item) {
	q.heap = append(q.heap, it)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Q) heapPop() item {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && itemLess(q.heap[l], q.heap[small]) {
			small = l
		}
		if r < last && itemLess(q.heap[r], q.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.heap[i], q.heap[small] = q.heap[small], q.heap[i]
		i = small
	}
	return top
}

// --- checksums and byte/word packing ---

func mix(s, w uint64) uint64 {
	s ^= w
	s *= 0x9e3779b97f4a7c15
	s ^= s >> 29
	return s
}

func headerSum(hw [8]uint64) uint64 {
	s := dheapMagic
	for _, w := range hw[:7] {
		s = mix(s, w)
	}
	if s == 0 {
		s = dheapMagic
	}
	return s
}

// entrySum covers seq, key, len and every payload word — but not the
// state word, which pop owns.
func entrySum(seq, key, length uint64, payload []uint64) uint64 {
	s := mix(mix(mix(dheapMagic, seq), key), length)
	for _, w := range payload {
		s = mix(s, w)
	}
	if s == 0 {
		s = dheapMagic
	}
	return s
}

func bytesToWords(b []byte, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, c := range b {
		dst[i/8] |= uint64(c) << (8 * (i % 8))
	}
}

func wordsToBytes(words []uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(words[i/8] >> (8 * (i % 8)))
	}
	return b
}
