package queues

import (
	"fmt"
	"sort"

	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// UnlinkedQ is the first-amendment queue of Section 5.1 (Figure 1):
// a durably linearizable lock-free queue executing exactly one
// blocking persist operation (flush + SFENCE) per operation, meeting
// the lower bound of Cohen et al.
//
// The queue does not persist node links. Each node carries an index
// (its position in enqueue order) and a linked flag; recovery scans
// the allocator's designated areas, resurrects nodes that are marked
// linked with an index greater than the persisted head index, and
// rebuilds the list in index order. The head holds a (pointer, index)
// pair updated together with a double-width CAS; dequeues persist the
// head's index so recovery knows the consecutive prefix of dequeued
// nodes (Observation 2).
//
// Node layout: [item, next, linked, index].
type UnlinkedQ struct {
	h            *pmem.Heap
	pool         *ssmem.Pool
	headA        pmem.Addr // (pointer, index) pair; 16-byte aligned
	tailA        pmem.Addr
	nodeToRetire []paddedAddr
}

const (
	uqLinked = offW2
	uqIndex  = offW3
)

// NewUnlinkedQ creates an empty UnlinkedQ.
func NewUnlinkedQ(h *pmem.Heap, threads int) *UnlinkedQ {
	q := &UnlinkedQ{
		h:            h,
		pool:         newNodePool(h, threads),
		headA:        h.RootAddr(slotHead),
		tailA:        h.RootAddr(slotTail),
		nodeToRetire: make([]paddedAddr, threads),
	}
	dummy := q.pool.Alloc(0) // fresh slot: zero item/next/linked/index
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.headA+8, 0) // head index
	h.Store(0, q.tailA, uint64(dummy))
	h.Flush(0, q.headA)
	h.Fence(0)
	return q
}

// Enqueue appends v (Figure 1, lines 20-34). One fence per call.
func (q *UnlinkedQ) Enqueue(tid int, v uint64) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	n := q.pool.Alloc(tid) // line 21
	h.Store(tid, n+offItem, v)
	h.Store(tid, n+offNext, 0)
	// Unset linked before assigning the index: a reused node might
	// still be marked linked, and a fresh index in that state could
	// make recovery resurrect it prematurely (line 24 discussion).
	h.Store(tid, n+uqLinked, 0)
	for {
		tail := pmem.Addr(h.Load(tid, q.tailA)) // line 26
		if next := h.Load(tid, tail+offNext); next == 0 {
			// Reading tail's index touches a line its enqueuer
			// flushed: this is one of the post-flush accesses the
			// second amendment removes.
			h.Store(tid, n+uqIndex, h.Load(tid, tail+uqIndex)+1) // line 28
			if h.CAS(tid, tail+offNext, 0, uint64(n)) {          // line 29
				h.Store(tid, n+uqLinked, 1) // line 30
				h.Flush(tid, n)             // line 31
				h.Fence(tid)
				h.CAS(tid, q.tailA, uint64(tail), uint64(n)) // line 32
				return
			}
		} else {
			h.CAS(tid, q.tailA, uint64(tail), next) // line 34
		}
	}
}

// Dequeue removes the oldest item (Figure 1, lines 6-19). One fence
// per call, including failing dequeues (line 11).
func (q *UnlinkedQ) Dequeue(tid int) (uint64, bool) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for {
		hptr, hidx := h.LoadPair(tid, q.headA)       // line 8
		next := h.Load(tid, pmem.Addr(hptr)+offNext) // line 9
		if next == 0 {
			h.Flush(tid, q.headA) // line 11: persist prior emptying dequeues
			h.Fence(tid)
			return 0, false
		}
		nidx := h.Load(tid, pmem.Addr(next)+uqIndex)
		if h.DCAS(tid, q.headA, hptr, hidx, next, nidx) { // line 13
			v := h.Load(tid, pmem.Addr(next)+offItem) // line 14
			h.Flush(tid, q.headA)                     // line 15
			h.Fence(tid)
			if r := q.nodeToRetire[tid].v; r != 0 { // lines 16-17
				q.pool.Retire(tid, r)
			}
			q.nodeToRetire[tid].v = pmem.Addr(hptr) // line 18
			return v, true
		}
	}
}

// RecoverUnlinkedQ rebuilds the queue after a crash (Section 5.1.3).
// The persisted head index is left unmodified; a fresh dummy with that
// index is allocated; every node in the designated areas that is
// marked linked with an index greater than the head index is
// resurrected; the survivors are sorted by index (indices may be
// nonconsecutive, Observation 1) and relinked. All other nodes return
// to the allocator. Free and previously reclaimed nodes are ignored
// thanks to their zero or stale index or their unset linked flag.
func RecoverUnlinkedQ(h *pmem.Heap, threads int) *UnlinkedQ {
	headA := h.RootAddr(slotHead)
	headIdx := h.Load(0, headA+8)

	type rec struct {
		addr pmem.Addr
		idx  uint64
	}
	var live []rec
	pool := recoverNodePool(h, threads, func(a pmem.Addr) bool {
		if h.Load(0, a+uqLinked) == 1 && h.Load(0, a+uqIndex) > headIdx {
			live = append(live, rec{a, h.Load(0, a+uqIndex)})
			return true
		}
		return false
	})
	sort.Slice(live, func(i, j int) bool { return live[i].idx < live[j].idx })
	for i := 1; i < len(live); i++ {
		if live[i].idx == live[i-1].idx {
			panic(fmt.Sprintf("unlinkedq recovery: duplicate index %d", live[i].idx))
		}
	}

	q := &UnlinkedQ{
		h:            h,
		pool:         pool,
		headA:        headA,
		tailA:        h.RootAddr(slotTail),
		nodeToRetire: make([]paddedAddr, threads),
	}
	dummy := pool.Alloc(0)
	h.Store(0, dummy+offItem, 0)
	h.Store(0, dummy+uqLinked, 0)
	h.Store(0, dummy+uqIndex, headIdx)
	// Relink survivors in index order; links are volatile state.
	prev := dummy
	for _, r := range live {
		h.Store(0, prev+offNext, uint64(r.addr))
		prev = r.addr
	}
	h.Store(0, prev+offNext, 0)
	h.Store(0, headA, uint64(dummy))
	h.Store(0, headA+8, headIdx)
	h.Store(0, q.tailA, uint64(prev))
	return q
}
