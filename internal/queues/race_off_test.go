//go:build !race

package queues

const raceEnabled = false
