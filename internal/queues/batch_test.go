package queues

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// TestOptUnlinkedEnqueueBatchOneFence verifies the amortized publish
// path: a whole batch rides exactly one blocking persist, while the
// per-message path pays one fence each.
func TestOptUnlinkedEnqueueBatchOneFence(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 2})
	q := NewOptUnlinkedQ(h, 1)
	for i := 0; i < 100; i++ { // warm the pool past area creation
		q.Enqueue(0, uint64(i))
	}
	const n = 64
	batch := make([]uint64, n)
	for i := range batch {
		batch[i] = uint64(1000 + i)
	}
	before := h.TotalStats()
	q.EnqueueBatch(0, batch)
	d := h.TotalStats().Sub(before)
	if d.Fences != 1 {
		t.Fatalf("EnqueueBatch of %d issued %d fences, want 1", n, d.Fences)
	}
	if d.Flushes != n {
		t.Fatalf("EnqueueBatch of %d issued %d flushes, want %d", n, d.Flushes, n)
	}
	for i := 0; i < 100; i++ {
		if v, ok := q.Dequeue(0); !ok || v != uint64(i) {
			t.Fatalf("dequeue %d = %d,%v", i, v, ok)
		}
	}
	for i := 0; i < n; i++ {
		if v, ok := q.Dequeue(0); !ok || v != batch[i] {
			t.Fatalf("batch dequeue %d = %d,%v, want %d", i, v, ok, batch[i])
		}
	}
}

// TestOptUnlinkedEnqueueBatchDurable crashes immediately after an
// acknowledged batch and checks every batch element survives recovery
// in order.
func TestOptUnlinkedEnqueueBatchDurable(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	q := NewOptUnlinkedQ(h, 1)
	batch := []uint64{11, 22, 33, 44, 55}
	q.EnqueueBatch(0, batch)
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(1)))
	h.Restart()
	r := RecoverOptUnlinkedQ(h, 1)
	for i, want := range batch {
		if v, ok := r.Dequeue(0); !ok || v != want {
			t.Fatalf("recovered dequeue %d = %d,%v, want %d", i, v, ok, want)
		}
	}
	if _, ok := r.Dequeue(0); ok {
		t.Fatal("recovered queue has extra elements")
	}
}
