package queues

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// TestOptUnlinkedEnqueueBatchOneFence verifies the amortized publish
// path: a whole batch rides exactly one blocking persist, while the
// per-message path pays one fence each.
func TestOptUnlinkedEnqueueBatchOneFence(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 2})
	q := NewOptUnlinkedQ(h, 1)
	for i := 0; i < 100; i++ { // warm the pool past area creation
		q.Enqueue(0, uint64(i))
	}
	const n = 64
	batch := make([]uint64, n)
	for i := range batch {
		batch[i] = uint64(1000 + i)
	}
	before := h.TotalStats()
	q.EnqueueBatch(0, batch)
	d := h.TotalStats().Sub(before)
	if d.Fences != 1 {
		t.Fatalf("EnqueueBatch of %d issued %d fences, want 1", n, d.Fences)
	}
	if d.Flushes != n {
		t.Fatalf("EnqueueBatch of %d issued %d flushes, want %d", n, d.Flushes, n)
	}
	for i := 0; i < 100; i++ {
		if v, ok := q.Dequeue(0); !ok || v != uint64(i) {
			t.Fatalf("dequeue %d = %d,%v", i, v, ok)
		}
	}
	for i := 0; i < n; i++ {
		if v, ok := q.Dequeue(0); !ok || v != batch[i] {
			t.Fatalf("batch dequeue %d = %d,%v, want %d", i, v, ok, batch[i])
		}
	}
}

// TestOptUnlinkedEnqueueBatchUnfencedPipeline pins the pipelined
// publish primitive: EnqueueBatchUnfenced issues the batch's stores
// and flushes with zero fences, a later caller-side Fence acknowledges
// every window issued before it, and the issue/fence split never
// changes the total fence count — N windows cost N fences however the
// fences are interleaved with the issues.
func TestOptUnlinkedEnqueueBatchUnfencedPipeline(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 2})
	q := NewOptUnlinkedQ(h, 1)
	for i := 0; i < 100; i++ { // warm the pool past area creation
		q.Enqueue(0, uint64(i))
	}
	for i := 0; i < 100; i++ {
		q.Dequeue(0)
	}
	const windows, wsize = 8, 8
	mk := func(w int) []uint64 {
		vs := make([]uint64, wsize)
		for i := range vs {
			vs[i] = uint64(1000 + w*wsize + i)
		}
		return vs
	}

	before := h.TotalStats()
	q.EnqueueBatchUnfenced(0, mk(0))
	d := h.TotalStats().Sub(before)
	if d.Fences != 0 {
		t.Fatalf("EnqueueBatchUnfenced issued %d fences, want 0 (issue phase only)", d.Fences)
	}
	if d.Flushes != wsize {
		t.Fatalf("EnqueueBatchUnfenced issued %d flushes, want %d", d.Flushes, wsize)
	}
	// Pipelined schedule: issue window w+1, then fence (covering w and
	// w+1's already-issued lines per the per-thread ordering argument).
	before = h.TotalStats()
	for w := 1; w < windows; w++ {
		q.EnqueueBatchUnfenced(0, mk(w))
		h.Fence(0)
	}
	h.Fence(0) // covers the final window
	d = h.TotalStats().Sub(before)
	if d.Fences != windows {
		t.Fatalf("pipelined schedule paid %d fences for %d windows, want equal (count parity)",
			d.Fences, windows)
	}
	for i := 0; i < windows*wsize; i++ {
		if v, ok := q.Dequeue(0); !ok || v != uint64(1000+i) {
			t.Fatalf("dequeue %d = %d,%v, want %d", i, v, ok, 1000+i)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue not empty after draining all windows")
	}
}

// TestOptUnlinkedDequeueBatchOneFence verifies the amortized consume
// path: a whole dequeue batch rides exactly one blocking persist and
// one NTStore (of the final head index), preserves FIFO, and keeps the
// second amendment's zero-post-flush-access property.
func TestOptUnlinkedDequeueBatchOneFence(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 2})
	q := NewOptUnlinkedQ(h, 1)
	for i := 0; i < 200; i++ { // warm the pool past area creation
		q.Enqueue(0, uint64(i))
		q.Dequeue(0)
	}
	const n = 64
	for i := 0; i < 2*n; i++ {
		q.Enqueue(0, uint64(1000+i))
	}
	before := h.TotalStats()
	got := q.DequeueBatch(0, n)
	d := h.TotalStats().Sub(before)
	if len(got) != n {
		t.Fatalf("DequeueBatch returned %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(1000+i) {
			t.Fatalf("item %d = %d, want %d", i, v, 1000+i)
		}
	}
	if d.Fences != 1 {
		t.Fatalf("DequeueBatch of %d issued %d fences, want 1", n, d.Fences)
	}
	if d.NTStores != 1 {
		t.Fatalf("DequeueBatch of %d issued %d NTStores, want 1", n, d.NTStores)
	}
	if d.PostFlushAccesses != 0 {
		t.Fatalf("DequeueBatch made %d post-flush accesses, want 0", d.PostFlushAccesses)
	}
	// A batch larger than the backlog returns what is there.
	if rest := q.DequeueBatch(0, 10*n); len(rest) != n {
		t.Fatalf("short DequeueBatch returned %d items, want %d", len(rest), n)
	}
	if got := q.DequeueBatch(0, 8); len(got) != 0 {
		t.Fatalf("DequeueBatch on empty returned %d items", len(got))
	}
}

// TestOptUnlinkedEmptyPollElision pins the idle-consumer optimization:
// once a thread has persisted the head index it observed, repeated
// failing dequeues at that index issue no persist instructions at all,
// and the elision re-arms after the index moves.
func TestOptUnlinkedEmptyPollElision(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 2})
	q := NewOptUnlinkedQ(h, 2)
	q.Enqueue(0, 1)
	if _, ok := q.Dequeue(0); !ok {
		t.Fatal("dequeue failed")
	}
	before := h.TotalStats()
	for i := 0; i < 100; i++ {
		if _, ok := q.Dequeue(0); ok {
			t.Fatal("queue should be empty")
		}
	}
	if d := h.TotalStats().Sub(before); d.Fences != 0 || d.NTStores != 0 {
		t.Fatalf("100 elided empty polls issued %d fences, %d NTStores; want 0, 0", d.Fences, d.NTStores)
	}
	// Another thread's dequeue moves the head; the first failing poll
	// must persist the new observation (it is not durable for tid 0),
	// and only then elide again.
	q.Enqueue(0, 2)
	if _, ok := q.Dequeue(1); !ok {
		t.Fatal("dequeue failed")
	}
	before = h.TotalStats()
	for i := 0; i < 100; i++ {
		if _, ok := q.Dequeue(0); ok {
			t.Fatal("queue should be empty")
		}
	}
	if d := h.TotalStats().Sub(before); d.Fences != 1 {
		t.Fatalf("empty polls after a foreign dequeue issued %d fences, want exactly 1", d.Fences)
	}
	// Batch polls elide the same way.
	before = h.TotalStats()
	for i := 0; i < 100; i++ {
		if vs := q.DequeueBatch(0, 8); len(vs) != 0 {
			t.Fatal("queue should be empty")
		}
	}
	if d := h.TotalStats().Sub(before); d.Fences != 0 || d.NTStores != 0 {
		t.Fatalf("100 elided empty batch polls issued %d fences, %d NTStores; want 0, 0", d.Fences, d.NTStores)
	}
}

// TestOptUnlinkedDequeueBatchCrash fuzzes the crash window of the
// amortized consume path: items returned by a completed DequeueBatch
// are acknowledged (never recovered again); a crash mid-batch may cost
// at most the unacknowledged window; recovery always yields a
// contiguous FIFO suffix.
func TestOptUnlinkedDequeueBatchCrash(t *testing.T) {
	const n, window = 120, 8
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		h := pmem.New(pmem.Config{Bytes: 32 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
		q := NewOptUnlinkedQ(h, 1)
		for i := 1; i <= n; i++ {
			q.Enqueue(0, uint64(i))
		}
		rng := rand.New(rand.NewSource(seed))
		h.ScheduleCrashAtAccess(h.AccessCount() + int64(rng.Intn(400)) + 1)
		var acked []uint64
		for {
			var vs []uint64
			if pmem.Protect(func() { vs = q.DequeueBatch(0, window) }) {
				break // crash mid-batch: the window is unacknowledged
			}
			acked = append(acked, vs...)
			if len(vs) == 0 {
				h.CrashNow()
				break
			}
		}
		h.FinalizeCrash(rand.New(rand.NewSource(seed * 13)))
		h.Restart()
		r := RecoverOptUnlinkedQ(h, 1)
		recovered := drain(r, 0)
		// Acknowledged items must never reappear.
		ackedSet := map[uint64]bool{}
		for _, v := range acked {
			ackedSet[v] = true
		}
		for _, v := range recovered {
			if ackedSet[v] {
				t.Fatalf("seed %d: acknowledged item %d recovered again", seed, v)
			}
		}
		// Recovery yields a contiguous suffix 1..n minus a prefix.
		for i, v := range recovered {
			if want := n - len(recovered) + i + 1; v != uint64(want) {
				t.Fatalf("seed %d: recovered[%d] = %d, want %d (suffix broken)", seed, i, v, want)
			}
		}
		// At most one unacknowledged window may vanish (its final
		// NTStore can land without the fence).
		if lost := n - len(acked) - len(recovered); lost < 0 || lost > window {
			t.Fatalf("seed %d: %d items lost, allowance %d (acked %d, recovered %d)",
				seed, lost, window, len(acked), len(recovered))
		}
	}
}

// TestOptUnlinkedEnqueueBatchDurable crashes immediately after an
// acknowledged batch and checks every batch element survives recovery
// in order.
func TestOptUnlinkedEnqueueBatchDurable(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	q := NewOptUnlinkedQ(h, 1)
	batch := []uint64{11, 22, 33, 44, 55}
	q.EnqueueBatch(0, batch)
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(1)))
	h.Restart()
	r := RecoverOptUnlinkedQ(h, 1)
	for i, want := range batch {
		if v, ok := r.Dequeue(0); !ok || v != want {
			t.Fatalf("recovered dequeue %d = %d,%v, want %d", i, v, ok, want)
		}
	}
	if _, ok := r.Dequeue(0); ok {
		t.Fatal("recovered queue has extra elements")
	}
}
