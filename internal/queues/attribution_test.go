package queues

import (
	"testing"

	"repro/internal/pmem"
)

// TestPostFlushAttribution demonstrates the SetPostFlushHook
// observability facility and pins *where* the first-amendment queues
// violate the guideline: UnlinkedQ's violations land on the head line
// and on node lines (the tail's index read); OptUnlinkedQ produces no
// events at all.
func TestPostFlushAttribution(t *testing.T) {
	run := func(name string) map[string]int {
		h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 2})
		headLine := h.RootAddr(slotHead) / pmem.CacheLineBytes
		in, _ := Lookup(name)
		q := in.New(h, 1)
		// Attribute operation-path accesses only: construction-time
		// allocator bootstrap (heap break, area registry) also
		// touches flushed lines, but only O(1) times per area, not
		// per operation.
		regions := map[string]int{}
		h.SetPostFlushHook(func(tid int, a pmem.Addr) {
			if a/pmem.CacheLineBytes == headLine {
				regions["head"]++
			} else {
				regions["node"]++
			}
		})
		for i := uint64(1); i <= 100; i++ {
			q.Enqueue(0, i)
		}
		for i := 0; i < 100; i++ {
			q.Dequeue(0)
		}
		return regions
	}

	uq := run("unlinked")
	if uq["head"] == 0 {
		t.Error("unlinked: expected post-flush accesses on the head line (dequeues re-read the flushed head)")
	}
	if uq["node"] == 0 {
		t.Error("unlinked: expected post-flush accesses on node lines (enqueues read the flushed tail's index)")
	}
	ou := run("opt-unlinked")
	if len(ou) != 0 {
		t.Errorf("opt-unlinked: expected no post-flush events, got %v", ou)
	}
}

// TestQtestRealTimeOrderViaRegistry exercises the strengthened
// concurrent checker (incl. real-time dequeue ordering) on the core
// queues.
func TestQtestRealTimeOrderViaRegistry(t *testing.T) {
	// qtest imports queues; calling it from here would be an import
	// cycle in the other direction, so the core queues get the
	// real-time check through the harness-level suites (ptm, onll,
	// and TestConcurrentNoDupNoLoss). This test instead validates the
	// stamp invariant directly on one queue: single-threaded, every
	// dequeue is real-time ordered by construction.
	in, _ := Lookup("opt-linked")
	q := in.New(perfHeap(t, 1), 1)
	for i := uint64(1); i <= 50; i++ {
		q.Enqueue(0, i)
	}
	last := uint64(0)
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		if v <= last {
			t.Fatalf("out of order: %d after %d", v, last)
		}
		last = v
	}
}
