// Package queues implements the durable lock-free FIFO queues of
// "Durable Queues: The Second Amendment" (Sela & Petrank, SPAA 2021)
// on the simulated NVRAM substrate of package pmem:
//
//   - MSQ           — the volatile Michael-Scott queue (Section 3.1),
//     the base algorithm all durable variants amend.
//   - DurableMSQ    — the thinned Friedman et al. durable queue used
//     as the paper's state-of-the-art baseline (Section 10).
//   - IzraelevitzQ  — MSQ put through the Izraelevitz et al. generic
//     transform (persist after every shared access).
//   - NVTraverseQ   — the NVTraverse variant of the same transform
//     (no blocking fence after flushes that follow reads or CAS).
//   - UnlinkedQ     — first amendment, Figure 1: one fence per
//     operation, links not persisted, recovery by indexed scan.
//   - LinkedQ       — first amendment, Figure 3: one fence per
//     operation, persisted links, validity flags, backward links.
//   - OptUnlinkedQ  — second amendment, Figure 4: one fence per
//     operation and zero accesses to flushed content.
//   - OptLinkedQ    — second amendment, Figures 5-6.
//
// All queues share the same root-slot convention on the heap so that
// recovery can locate them after a crash: slot 0 holds the queue head
// line, slot 1 the tail line, slot 2 anchors the node pool, slot 3
// anchors per-thread persistent local data (where used).
package queues

import (
	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// Queue is the operation interface shared by every implementation.
// tid identifies the calling thread (0 <= tid < the threads value the
// queue was created with); each tid must be driven by at most one
// goroutine at a time.
type Queue interface {
	// Enqueue appends v to the queue.
	Enqueue(tid int, v uint64)
	// Dequeue removes and returns the oldest item. ok is false if the
	// queue was observed empty (a "failing dequeue" in paper terms).
	Dequeue(tid int) (v uint64, ok bool)
}

// Root-slot convention shared by all queues in this package.
const (
	slotHead  = 0 // head line (pointer, and index where applicable)
	slotTail  = 1 // tail line
	slotPool  = 2 // ssmem pool registry anchor
	slotLocal = 3 // per-thread persistent local data base address
	slotAck   = 4 // per-thread acked-index lines (ack-mode queues only)
)

// Node field offsets; every node occupies exactly one cache line
// (the paper's footnote 3), so a single Flush persists a whole node.
const (
	offItem  = pmem.Addr(0)
	offNext  = pmem.Addr(8)
	offW2    = pmem.Addr(16) // linked / pred, depending on the queue
	offW3    = pmem.Addr(24) // index / initialized, depending on the queue
	nodeSize = pmem.CacheLineBytes
)

// Info describes a queue implementation for harnesses and tools.
type Info struct {
	Name    string
	Durable bool
	// Ablation marks design-study variants (e.g. linked-naive, whose
	// whole-prefix flushing is deliberately O(queue length) per
	// enqueue); sweeps over unbounded workloads skip them by default.
	Ablation bool
	// New creates a fresh queue on an empty heap.
	New func(h *pmem.Heap, threads int) Queue
	// Recover reconstructs the queue from a restarted heap. Nil for
	// volatile queues.
	Recover func(h *pmem.Heap, threads int) Queue
}

// All returns the queue implementations in this package, core queues
// first. PTM-backed queues live in package ptm and are composed by the
// harness.
func All() []Info {
	return []Info{
		{Name: "opt-unlinked", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewOptUnlinkedQ(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverOptUnlinkedQ(h, n) }},
		{Name: "opt-linked", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewOptLinkedQ(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverOptLinkedQ(h, n) }},
		// The ack-mode OptUnlinkedQ behind the plain Queue interface:
		// Dequeue leases the item and acknowledges it immediately (one
		// fence), so every generic durability audit applies; the broker
		// splits the lease from the acknowledgment instead.
		{Name: "opt-unlinked-acked", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewOptUnlinkedQAcked(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverOptUnlinkedQAcked(h, n) }},
		{Name: "unlinked", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewUnlinkedQ(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverUnlinkedQ(h, n) }},
		{Name: "unlinked-nodcas", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewUnlinkedQNoDCAS(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverUnlinkedQNoDCAS(h, n) }},
		{Name: "linked", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewLinkedQ(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverLinkedQ(h, n) }},
		{Name: "durable-msq", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewDurableMSQ(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverDurableMSQ(h, n) }},
		{Name: "durable-msq-full", Durable: true,
			New: func(h *pmem.Heap, n int) Queue { return NewDurableMSQFull(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue {
				q, _ := RecoverDurableMSQFull(h, n)
				return q
			}},
		{Name: "izraelevitz", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewIzraelevitzQ(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverIzraelevitzQ(h, n) }},
		{Name: "nvtraverse", Durable: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewNVTraverseQ(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverNVTraverseQ(h, n) }},
		{Name: "msq", Durable: false,
			New: func(h *pmem.Heap, n int) Queue { return NewMSQ(h, n) }},
		{Name: "linked-naive", Durable: true, Ablation: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewLinkedQNaive(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverLinkedQ(h, n) }},
		{Name: "opt-unlinked-plainstore", Durable: true, Ablation: true,
			New:     func(h *pmem.Heap, n int) Queue { return NewOptUnlinkedQPlainStore(h, n) },
			Recover: func(h *pmem.Heap, n int) Queue { return RecoverOptUnlinkedQ(h, n) }},
	}
}

// Lookup finds a queue implementation by name.
func Lookup(name string) (Info, bool) {
	for _, in := range All() {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

func newNodePool(h *pmem.Heap, threads int) *ssmem.Pool {
	return newNodePoolAs(h, threads, 0)
}

// newNodePoolAs charges the pool's construction persists to tid, for
// queues created while other threads are running (see
// NewOptUnlinkedQAs).
func newNodePoolAs(h *pmem.Heap, threads, tid int) *ssmem.Pool {
	return ssmem.NewPool(h, ssmem.Config{
		SlotBytes:    nodeSize,
		SlotsPerArea: 4096,
		Threads:      threads,
		RootSlot:     slotPool,
		InitTid:      tid,
	})
}

func recoverNodePool(h *pmem.Heap, threads int, live func(pmem.Addr) bool) *ssmem.Pool {
	return ssmem.RecoverPool(h, ssmem.Config{
		SlotBytes:    nodeSize,
		SlotsPerArea: 4096,
		Threads:      threads,
		RootSlot:     slotPool,
	}, live)
}

// paddedAddr is a per-thread pmem address slot on its own cache line,
// used for the volatile nodeToRetire arrays the paper keeps per
// thread ("its cells do not share cache lines to avoid false
// sharing").
type paddedAddr struct {
	v pmem.Addr
	_ [56]byte
}
