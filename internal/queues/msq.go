package queues

import (
	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// MSQ is the classic volatile Michael-Scott lock-free FIFO queue
// (Section 3.1), implemented on the simulated heap but issuing no
// persist instructions. It is not durable; it serves as the
// non-persistent performance reference and as the base the durable
// queues amend.
//
// Node layout: [item, next, -, -]. The queue is a singly linked list
// with a dummy head node; Head points at the dummy, Tail at the last
// node (possibly lagging by one).
type MSQ struct {
	h     *pmem.Heap
	pool  *ssmem.Pool
	headA pmem.Addr
	tailA pmem.Addr
	// nodeToRetire delays reclamation of the previous dummy by one
	// successful dequeue per thread, mirroring the durable queues'
	// reclamation discipline.
	nodeToRetire []paddedAddr
}

// NewMSQ creates an empty volatile MSQ for the given thread count.
func NewMSQ(h *pmem.Heap, threads int) *MSQ {
	q := &MSQ{
		h:            h,
		pool:         newNodePool(h, threads),
		headA:        h.RootAddr(slotHead),
		tailA:        h.RootAddr(slotTail),
		nodeToRetire: make([]paddedAddr, threads),
	}
	dummy := q.pool.Alloc(0)
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.tailA, uint64(dummy))
	return q
}

// Enqueue appends v.
func (q *MSQ) Enqueue(tid int, v uint64) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	n := q.pool.Alloc(tid)
	h.Store(tid, n+offItem, v)
	h.Store(tid, n+offNext, 0)
	for {
		tail := pmem.Addr(h.Load(tid, q.tailA))
		next := h.Load(tid, tail+offNext)
		if next == 0 {
			if h.CAS(tid, tail+offNext, 0, uint64(n)) {
				h.CAS(tid, q.tailA, uint64(tail), uint64(n))
				return
			}
		} else {
			h.CAS(tid, q.tailA, uint64(tail), next)
		}
	}
}

// Dequeue removes the oldest item.
func (q *MSQ) Dequeue(tid int) (uint64, bool) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for {
		head := pmem.Addr(h.Load(tid, q.headA))
		next := h.Load(tid, head+offNext)
		if next == 0 {
			return 0, false
		}
		if h.CAS(tid, q.headA, uint64(head), next) {
			v := h.Load(tid, pmem.Addr(next)+offItem)
			if r := q.nodeToRetire[tid].v; r != 0 {
				q.pool.Retire(tid, r)
			}
			q.nodeToRetire[tid].v = head
			return v, true
		}
	}
}
