package queues

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func perfHeap(tb testing.TB, threads int) *pmem.Heap {
	tb.Helper()
	return pmem.New(pmem.Config{Bytes: 32 << 20, Mode: pmem.ModePerf, MaxThreads: threads + 1})
}

func crashHeap(tb testing.TB, threads int) *pmem.Heap {
	tb.Helper()
	return pmem.New(pmem.Config{Bytes: 32 << 20, Mode: pmem.ModeCrash, MaxThreads: threads + 1})
}

func drain(q Queue, tid int) []uint64 {
	var out []uint64
	for {
		v, ok := q.Dequeue(tid)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func durableQueues() []Info {
	var out []Info
	for _, in := range All() {
		if in.Durable {
			out = append(out, in)
		}
	}
	return out
}

func TestFIFOOrderSingleThread(t *testing.T) {
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) {
			q := in.New(perfHeap(t, 1), 1)
			const n = 500
			for i := uint64(1); i <= n; i++ {
				q.Enqueue(0, i)
			}
			for i := uint64(1); i <= n; i++ {
				v, ok := q.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
				}
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("queue should be empty")
			}
		})
	}
}

func TestEmptyDequeue(t *testing.T) {
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) {
			q := in.New(perfHeap(t, 1), 1)
			for i := 0; i < 5; i++ {
				if v, ok := q.Dequeue(0); ok {
					t.Fatalf("empty dequeue returned (%d,true)", v)
				}
			}
			q.Enqueue(0, 7)
			if v, ok := q.Dequeue(0); !ok || v != 7 {
				t.Fatalf("got (%d,%v), want (7,true)", v, ok)
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("queue should be empty again")
			}
		})
	}
}

func TestSequentialSemanticsVsModel(t *testing.T) {
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				q := in.New(perfHeap(t, 1), 1)
				var model []uint64
				next := uint64(1)
				for op := 0; op < 3000; op++ {
					if rng.Intn(2) == 0 {
						q.Enqueue(0, next)
						model = append(model, next)
						next++
					} else {
						v, ok := q.Dequeue(0)
						if len(model) == 0 {
							if ok {
								t.Fatalf("seed %d op %d: dequeue on empty returned %d", seed, op, v)
							}
						} else {
							if !ok || v != model[0] {
								t.Fatalf("seed %d op %d: got (%d,%v), want (%d,true)", seed, op, v, ok, model[0])
							}
							model = model[1:]
						}
					}
				}
				got := drain(q, 0)
				if len(got) != len(model) {
					t.Fatalf("seed %d: drained %d items, model has %d", seed, len(got), len(model))
				}
				for i := range got {
					if got[i] != model[i] {
						t.Fatalf("seed %d: drain[%d] = %d, want %d", seed, i, got[i], model[i])
					}
				}
			}
		})
	}
}

// TestConcurrentNoDupNoLoss runs all queues under concurrency with
// unique values and verifies exactness of the delivered multiset plus
// per-enqueuer FIFO order.
func TestConcurrentNoDupNoLoss(t *testing.T) {
	const threads = 4
	const opsPer = 3000
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) {
			h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: threads + 1})
			q := in.New(h, threads)
			type result struct {
				enqueued []uint64
				dequeued []uint64
			}
			results := make([]result, threads)
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(tid)))
					seq := uint64(1)
					r := &results[tid]
					for i := 0; i < opsPer; i++ {
						if rng.Intn(2) == 0 {
							v := uint64(tid)<<32 | seq
							seq++
							q.Enqueue(tid, v)
							r.enqueued = append(r.enqueued, v)
						} else if v, ok := q.Dequeue(tid); ok {
							r.dequeued = append(r.dequeued, v)
						}
					}
				}(tid)
			}
			wg.Wait()
			remaining := drain(q, 0)

			enq := map[uint64]bool{}
			for _, r := range results {
				for _, v := range r.enqueued {
					if enq[v] {
						t.Fatalf("duplicate enqueue bookkeeping for %d", v)
					}
					enq[v] = true
				}
			}
			out := map[uint64]bool{}
			record := func(v uint64) {
				if !enq[v] {
					t.Fatalf("phantom value dequeued: %d", v)
				}
				if out[v] {
					t.Fatalf("value dequeued twice: %d", v)
				}
				out[v] = true
			}
			for _, r := range results {
				for _, v := range r.dequeued {
					record(v)
				}
			}
			for _, v := range remaining {
				record(v)
			}
			if len(out) != len(enq) {
				t.Fatalf("lost values: enqueued %d, accounted %d", len(enq), len(out))
			}
			// Per-enqueuer FIFO: the remaining items of each enqueuer
			// must be the strictly increasing suffix of its sequence.
			lastSeq := make(map[uint64]uint64) // tid -> last seq seen in drain
			for _, v := range remaining {
				tid := v >> 32
				seq := v & 0xffffffff
				if seq <= lastSeq[tid] {
					t.Fatalf("drain order violates enqueuer %d FIFO: seq %d after %d", tid, seq, lastSeq[tid])
				}
				lastSeq[tid] = seq
			}
		})
	}
}

// opStats measures per-operation persist statistics in steady state
// (after a warmup that ensures no new allocator areas are created
// during measurement).
func opStats(tb testing.TB, in Info) (enq, deq, emptyDeq pmem.Stats) {
	tb.Helper()
	h := perfHeap(tb, 1)
	q := in.New(h, 1)
	for i := 0; i < 300; i++ {
		q.Enqueue(0, uint64(i))
	}
	for i := 0; i < 300; i++ {
		q.Dequeue(0)
	}
	q.Dequeue(0)

	const n = 100
	base := h.TotalStats()
	for i := 0; i < n; i++ {
		q.Enqueue(0, uint64(i))
	}
	s1 := h.TotalStats()
	for i := 0; i < n; i++ {
		if _, ok := q.Dequeue(0); !ok {
			tb.Fatal("unexpected empty queue")
		}
	}
	s2 := h.TotalStats()
	for i := 0; i < n; i++ {
		if _, ok := q.Dequeue(0); ok {
			tb.Fatal("queue should be empty")
		}
	}
	s3 := h.TotalStats()
	enq = s1.Sub(base)
	deq = s2.Sub(s1)
	emptyDeq = s3.Sub(s2)
	return enq, deq, emptyDeq
}

// TestOneFencePerOperation verifies the paper's headline claim for all
// four novel queues: exactly one blocking persist (SFENCE) per
// operation — enqueue, successful dequeue and failing dequeue alike —
// meeting the lower bound of Cohen et al. OptUnlinkedQ goes below the
// bound on repeated failing dequeues: its empty-poll fence elision
// skips the persist when the observed head index is already durable
// from this thread's previous persist, so the whole empty phase (which
// follows a successful, persisted dequeue) costs zero fences.
func TestOneFencePerOperation(t *testing.T) {
	for _, name := range []string{"unlinked", "unlinked-nodcas", "linked", "opt-unlinked", "opt-linked", "opt-unlinked-acked"} {
		in, _ := Lookup(name)
		t.Run(name, func(t *testing.T) {
			enq, deq, empty := opStats(t, in)
			if enq.Fences != 100 {
				t.Errorf("enqueue fences = %d per 100 ops, want exactly 100", enq.Fences)
			}
			// On the acked queue a Dequeue is a lease (zero persist
			// instructions) plus an immediate acknowledgment (one NTStore
			// of the acked index, one fence) — still exactly one blocking
			// persist per successful dequeue.
			if deq.Fences != 100 {
				t.Errorf("dequeue fences = %d per 100 ops, want exactly 100", deq.Fences)
			}
			wantEmpty := uint64(100)
			switch name {
			case "opt-unlinked":
				wantEmpty = 0 // elision: the observed index is already durable
			case "opt-unlinked-acked":
				// A failing leased dequeue issues nothing at all: emptiness
				// is durable exactly when the emptying dequeues are acked,
				// which the preceding (acknowledged) dequeues already made
				// so.
				wantEmpty = 0
			}
			if empty.Fences != wantEmpty {
				t.Errorf("failing dequeue fences = %d per 100 ops, want exactly %d", empty.Fences, wantEmpty)
			}
		})
	}
}

// TestZeroPostFlushAccesses verifies the second-amendment claim: the
// optimized queues never touch a cache line after it was explicitly
// flushed.
func TestZeroPostFlushAccesses(t *testing.T) {
	for _, name := range []string{"opt-unlinked", "opt-linked", "opt-unlinked-acked"} {
		in, _ := Lookup(name)
		t.Run(name, func(t *testing.T) {
			enq, deq, empty := opStats(t, in)
			if n := enq.PostFlushAccesses + deq.PostFlushAccesses + empty.PostFlushAccesses; n != 0 {
				t.Errorf("post-flush accesses = %d, want 0 (enq %d, deq %d, empty %d)",
					n, enq.PostFlushAccesses, deq.PostFlushAccesses, empty.PostFlushAccesses)
			}
		})
	}
}

// TestFirstAmendmentAccessesFlushedContent documents why UnlinkedQ and
// LinkedQ underperform despite minimal fences: they do access flushed
// lines (head reads, tail index reads, backward-walk reads).
func TestFirstAmendmentAccessesFlushedContent(t *testing.T) {
	for _, name := range []string{"unlinked", "linked", "durable-msq", "izraelevitz", "nvtraverse"} {
		in, _ := Lookup(name)
		t.Run(name, func(t *testing.T) {
			enq, deq, _ := opStats(t, in)
			if enq.PostFlushAccesses+deq.PostFlushAccesses == 0 {
				t.Errorf("%s shows zero post-flush accesses; expected some", name)
			}
		})
	}
}

// TestDurableMSQFenceCounts pins the baseline's cost: two fences per
// enqueue, one per dequeue — more blocking persists than the paper's
// queues, as Section 10 states.
func TestDurableMSQFenceCounts(t *testing.T) {
	in, _ := Lookup("durable-msq")
	enq, deq, empty := opStats(t, in)
	if enq.Fences != 200 {
		t.Errorf("enqueue fences = %d per 100 ops, want 200", enq.Fences)
	}
	if deq.Fences != 100 {
		t.Errorf("dequeue fences = %d per 100 ops, want 100", deq.Fences)
	}
	if empty.Fences != 100 {
		t.Errorf("failing dequeue fences = %d per 100 ops, want 100", empty.Fences)
	}
}

// TestTransformsUseMoreFences sanity-checks that the generic
// transforms pay far more fences than the tailor-made queues.
func TestTransformsUseMoreFences(t *testing.T) {
	izr, _ := Lookup("izraelevitz")
	nvt, _ := Lookup("nvtraverse")
	izrEnq, izrDeq, _ := opStats(t, izr)
	nvtEnq, _, _ := opStats(t, nvt)
	if izrEnq.Fences < 400 {
		t.Errorf("IzraelevitzQ enqueue fences = %d per 100 ops, expected >= 400", izrEnq.Fences)
	}
	if izrDeq.Fences < 300 {
		t.Errorf("IzraelevitzQ dequeue fences = %d per 100 ops, expected >= 300", izrDeq.Fences)
	}
	if nvtEnq.Fences >= izrEnq.Fences {
		t.Errorf("NVTraverseQ should fence less than IzraelevitzQ: %d vs %d", nvtEnq.Fences, izrEnq.Fences)
	}
	if nvtEnq.Fences < 100 {
		t.Errorf("NVTraverseQ enqueue fences = %d per 100 ops, expected >= 100", nvtEnq.Fences)
	}
}

// TestVolatileMSQNoPersists confirms the volatile reference issues no
// persist instructions at all.
func TestVolatileMSQNoPersists(t *testing.T) {
	in, _ := Lookup("msq")
	enq, deq, empty := opStats(t, in)
	total := enq.Fences + deq.Fences + empty.Fences + enq.Flushes + deq.Flushes + empty.Flushes
	if total != 0 {
		t.Errorf("volatile MSQ issued %d persist instructions", total)
	}
}

// quiescentCrashRecoverDrain runs a workload, crashes at a quiescent
// point, recovers, and returns the drained queue contents.
func quiescentCrashRecoverDrain(t *testing.T, in Info, seed int64, pre func(q Queue)) []uint64 {
	t.Helper()
	h := crashHeap(t, 2)
	q := in.New(h, 2)
	pre(q)
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(seed)))
	h.Restart()
	rq := in.Recover(h, 2)
	return drain(rq, 0)
}

// TestRecoveryQuiescent: after a crash at a quiescent point, recovery
// must restore exactly the completed state, for every durable queue
// and several randomized eviction patterns.
func TestRecoveryQuiescent(t *testing.T) {
	for _, in := range durableQueues() {
		t.Run(in.Name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				var model []uint64
				got := quiescentCrashRecoverDrain(t, in, seed, func(q Queue) {
					rng := rand.New(rand.NewSource(seed * 77))
					next := uint64(1)
					for op := 0; op < 400; op++ {
						if rng.Intn(3) < 2 {
							q.Enqueue(op%2, next)
							model = append(model, next)
							next++
						} else if _, ok := q.Dequeue(op % 2); ok {
							model = model[1:]
						}
					}
				})
				if len(got) != len(model) {
					t.Fatalf("seed %d: recovered %d items, want %d", seed, len(got), len(model))
				}
				for i := range got {
					if got[i] != model[i] {
						t.Fatalf("seed %d: item %d = %d, want %d", seed, i, got[i], model[i])
					}
				}
			}
		})
	}
}

// TestRecoveryEmptyQueue: recovery of a never-used and of a fully
// drained queue must produce an empty, usable queue.
func TestRecoveryEmptyQueue(t *testing.T) {
	for _, in := range durableQueues() {
		t.Run(in.Name, func(t *testing.T) {
			for _, prep := range []func(Queue){
				func(Queue) {},
				func(q Queue) {
					for i := uint64(1); i <= 50; i++ {
						q.Enqueue(0, i)
					}
					for i := 0; i < 50; i++ {
						q.Dequeue(1)
					}
					q.Dequeue(0) // failing dequeue persists the emptiness
				},
			} {
				h := crashHeap(t, 2)
				q := in.New(h, 2)
				prep(q)
				h.CrashNow()
				h.FinalizeCrash(rand.New(rand.NewSource(5)))
				h.Restart()
				rq := in.Recover(h, 2)
				if v, ok := rq.Dequeue(0); ok {
					t.Fatalf("recovered queue not empty: got %d", v)
				}
				rq.Enqueue(0, 99)
				if v, ok := rq.Dequeue(1); !ok || v != 99 {
					t.Fatalf("recovered queue unusable: got (%d,%v)", v, ok)
				}
			}
		})
	}
}

// TestRecoveryRepeatedCrashCycles exercises multiple crash/recover
// rounds with continued operation between them, including node reuse
// of recovered free lists.
func TestRecoveryRepeatedCrashCycles(t *testing.T) {
	for _, in := range durableQueues() {
		t.Run(in.Name, func(t *testing.T) {
			h := crashHeap(t, 2)
			q := in.New(h, 2)
			var model []uint64
			next := uint64(1)
			rng := rand.New(rand.NewSource(42))
			for cycle := 0; cycle < 5; cycle++ {
				for op := 0; op < 200; op++ {
					if rng.Intn(3) < 2 {
						q.Enqueue(op%2, next)
						model = append(model, next)
						next++
					} else if _, ok := q.Dequeue(op % 2); ok {
						model = model[1:]
					}
				}
				h.CrashNow()
				h.FinalizeCrash(rand.New(rand.NewSource(int64(cycle))))
				h.Restart()
				q = in.Recover(h, 2)
				// Spot-check the head without draining.
				if len(model) > 0 {
					v, ok := q.Dequeue(0)
					if !ok || v != model[0] {
						t.Fatalf("cycle %d: head = (%d,%v), want (%d,true)", cycle, v, ok, model[0])
					}
					model = model[1:]
				}
			}
			got := drain(q, 1)
			if len(got) != len(model) {
				t.Fatalf("final drain: %d items, want %d", len(got), len(model))
			}
			for i := range got {
				if got[i] != model[i] {
					t.Fatalf("final drain[%d] = %d, want %d", i, got[i], model[i])
				}
			}
		})
	}
}

// TestRecoveryWithLargeQueue stresses recovery's scan/sort path with a
// queue big enough to span several allocator areas.
func TestRecoveryWithLargeQueue(t *testing.T) {
	for _, in := range durableQueues() {
		t.Run(in.Name, func(t *testing.T) {
			h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 3})
			q := in.New(h, 2)
			n := uint64(10000)
			if raceEnabled {
				n = 2000
			}
			for i := uint64(1); i <= n; i++ {
				q.Enqueue(0, i)
			}
			for i := uint64(1); i <= n/2; i++ {
				if v, ok := q.Dequeue(1); !ok || v != i {
					t.Fatalf("dequeue %d: (%d,%v)", i, v, ok)
				}
			}
			h.CrashNow()
			h.FinalizeCrash(rand.New(rand.NewSource(9)))
			h.Restart()
			rq := in.Recover(h, 2)
			for i := uint64(n/2 + 1); i <= n; i++ {
				if v, ok := rq.Dequeue(0); !ok || v != i {
					t.Fatalf("post-recovery dequeue: got (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := rq.Dequeue(0); ok {
				t.Fatal("queue should be empty after full drain")
			}
		})
	}
}
