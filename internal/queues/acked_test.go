package queues

import (
	"math/rand"
	"testing"
)

// TestAckedLeaseRedelivery pins the ack-mode contract at queue level:
// leased-but-unacknowledged items are redelivered by recovery exactly
// once, acknowledged items never reappear, and the backlog survives
// untouched.
func TestAckedLeaseRedelivery(t *testing.T) {
	h := crashHeap(t, 2)
	q := NewOptUnlinkedQAcked(h, 2)
	for i := uint64(1); i <= 20; i++ {
		q.Enqueue(0, i)
	}
	// Lease the first 10 items, acknowledge only the first 6.
	vs, idxs := q.DequeueLeased(1, 10)
	if len(vs) != 10 {
		t.Fatalf("leased %d items, want 10", len(vs))
	}
	for i, v := range vs {
		if v != uint64(i+1) || idxs[i] != uint64(i+1) {
			t.Fatalf("leased item %d = (%d,%d), want (%d,%d)", i, v, idxs[i], i+1, i+1)
		}
	}
	q.AckTo(1, idxs[5])
	if got := q.AckedTo(); got != 6 {
		t.Fatalf("AckedTo = %d, want 6", got)
	}
	if uv, ui := q.Unacked(); len(uv) != 4 || uv[0] != 7 || ui[0] != 7 {
		t.Fatalf("Unacked = %v at %v, want items 7..10", uv, ui)
	}

	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(1)))
	h.Restart()
	rq := RecoverOptUnlinkedQAcked(h, 2)

	// Items 7..20 must come back in order: the unacked leased suffix
	// (7..10) redelivered, the backlog (11..20) intact, 1..6 gone.
	for want := uint64(7); want <= 20; want++ {
		v, ok := rq.Dequeue(0)
		if !ok || v != want {
			t.Fatalf("recovered dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := rq.Dequeue(0); ok {
		t.Fatal("recovered queue should be empty after the redelivered suffix")
	}
}

// TestAckedFenceAccounting pins the amortized ack cost: a leased
// dequeue batch issues zero persist instructions, an acknowledgment of
// the whole batch exactly one NTStore plus one fence, and a redundant
// acknowledgment nothing at all.
func TestAckedFenceAccounting(t *testing.T) {
	h := perfHeap(t, 1)
	q := NewOptUnlinkedQAcked(h, 1)
	for i := 0; i < 300; i++ { // warm the pool past area creation
		q.Enqueue(0, uint64(i))
		q.Dequeue(0)
	}
	const n = 64
	for i := 0; i < n; i++ {
		q.Enqueue(0, uint64(1000+i))
	}

	before := h.TotalStats()
	vs, idxs := q.DequeueLeased(0, n)
	d := h.TotalStats().Sub(before)
	if len(vs) != n {
		t.Fatalf("leased %d items, want %d", len(vs), n)
	}
	if d.Fences != 0 || d.NTStores != 0 || d.Flushes != 0 {
		t.Fatalf("leased dequeue of %d issued fences=%d ntstores=%d flushes=%d, want 0/0/0",
			n, d.Fences, d.NTStores, d.Flushes)
	}

	before = h.TotalStats()
	q.AckTo(0, idxs[n-1])
	d = h.TotalStats().Sub(before)
	if d.Fences != 1 || d.NTStores != 1 {
		t.Fatalf("ack of a %d-item batch issued fences=%d ntstores=%d, want 1/1", n, d.Fences, d.NTStores)
	}

	before = h.TotalStats()
	q.AckTo(0, idxs[n-1]) // redundant: already durably acked
	q.AckTo(0, idxs[0])
	d = h.TotalStats().Sub(before)
	if d.Fences != 0 || d.NTStores != 0 {
		t.Fatalf("redundant acks issued fences=%d ntstores=%d, want 0/0", d.Fences, d.NTStores)
	}

	// Failing leased dequeues are entirely free.
	before = h.TotalStats()
	for i := 0; i < 100; i++ {
		if vs, _ := q.DequeueLeased(0, 8); len(vs) != 0 {
			t.Fatal("queue should be empty")
		}
	}
	d = h.TotalStats().Sub(before)
	if d.Fences != 0 || d.NTStores != 0 || d.Flushes != 0 {
		t.Fatalf("100 empty leased dequeues issued fences=%d ntstores=%d flushes=%d, want 0/0/0",
			d.Fences, d.NTStores, d.Flushes)
	}
}

// TestAckedRecoveryModeGuard: recovering a queue with the wrong mode
// variant must be refused loudly, never silently mis-scan (plain
// recovery would take the never-written head lines as the frontier and
// resurrect acknowledged items).
func TestAckedRecoveryModeGuard(t *testing.T) {
	h := crashHeap(t, 2)
	q := NewOptUnlinkedQAcked(h, 2)
	q.Enqueue(0, 1)
	q.Dequeue(0)
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(2)))
	h.Restart()
	mustPanic(t, "plain recovery of an acked queue", func() { RecoverOptUnlinkedQ(h, 2) })

	h2 := crashHeap(t, 2)
	q2 := NewOptUnlinkedQ(h2, 2)
	q2.Enqueue(0, 1)
	h2.CrashNow()
	h2.FinalizeCrash(rand.New(rand.NewSource(3)))
	h2.Restart()
	mustPanic(t, "acked recovery of a plain queue", func() { RecoverOptUnlinkedQAcked(h2, 2) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestAckedUnfencedMonotone: within one unfenced window, an
// out-of-order (lower) ack must not overwrite a higher NTStored ack
// index — CompleteAck promotes and retires to the higher index, so a
// regressed line would let recovery resurrect acknowledged items.
func TestAckedUnfencedMonotone(t *testing.T) {
	h := crashHeap(t, 1)
	q := NewOptUnlinkedQAcked(h, 1)
	for i := uint64(1); i <= 12; i++ {
		q.Enqueue(0, i)
	}
	_, idxs := q.DequeueLeased(0, 12)
	q.AckToUnfenced(0, idxs[11])
	q.AckToUnfenced(0, idxs[10]) // lower: must not regress the line
	h.Fence(0)
	q.CompleteAck(0)
	if got := q.AckedTo(); got != 12 {
		t.Fatalf("AckedTo = %d, want 12", got)
	}
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(9)))
	h.Restart()
	rq := RecoverOptUnlinkedQAcked(h, 1)
	if v, ok := rq.Dequeue(0); ok {
		t.Fatalf("acknowledged item %d resurrected after out-of-order unfenced ack", v)
	}
}
