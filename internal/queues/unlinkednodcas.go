package queues

import (
	"fmt"
	"sort"

	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// UnlinkedQNoDCAS is the double-width-CAS-free alternative the paper
// describes in Section 5.1.2 for platforms without cmpxchg16b: the
// head is a plain pointer advanced with a single CAS, and instead of
// persisting a global (pointer, index) pair, each dequeuing thread
// copies the new head's index into its own persistent local index and
// persists that; recovery restores the head index as the maximum
// across the per-thread local indices. (The paper notes this handling
// "is actually required and applied in the second amendment" — it is
// the same per-thread head index OptUnlinkedQ uses, but with ordinary
// stores and flushes rather than movnti, and with the node fields
// still read from the flushed Persistent lines.)
//
// Still one blocking persist per operation. Node layout is identical
// to UnlinkedQ: [item, next, linked, index].
type UnlinkedQNoDCAS struct {
	h            *pmem.Heap
	pool         *ssmem.Pool
	headA        pmem.Addr // pointer only
	tailA        pmem.Addr
	localBase    pmem.Addr // one persistent line per thread: head index
	nodeToRetire []paddedAddr
}

// NewUnlinkedQNoDCAS creates an empty queue.
func NewUnlinkedQNoDCAS(h *pmem.Heap, threads int) *UnlinkedQNoDCAS {
	q := &UnlinkedQNoDCAS{
		h:            h,
		pool:         newNodePool(h, threads),
		headA:        h.RootAddr(slotHead),
		tailA:        h.RootAddr(slotTail),
		nodeToRetire: make([]paddedAddr, threads),
	}
	size := int64(threads) * pmem.CacheLineBytes
	q.localBase = h.AllocRaw(0, size, pmem.CacheLineBytes)
	h.InitRange(0, q.localBase, size)
	h.Store(0, h.RootAddr(slotLocal), uint64(q.localBase))
	h.Persist(0, h.RootAddr(slotLocal))

	dummy := q.pool.Alloc(0)
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.tailA, uint64(dummy))
	h.Flush(0, q.headA)
	h.Fence(0)
	return q
}

func (q *UnlinkedQNoDCAS) localIdxAddr(tid int) pmem.Addr {
	return q.localBase + pmem.Addr(tid)*pmem.CacheLineBytes
}

// persistLocalHeadIdx records idx in tid's persistent local index
// with an ordinary store + flush (the store pays the NVRAM read
// penalty once the line was flushed — exactly the cost Section 6.3's
// non-temporal writes remove).
func (q *UnlinkedQNoDCAS) persistLocalHeadIdx(tid int, idx uint64) {
	a := q.localIdxAddr(tid)
	q.h.Store(tid, a, idx)
	q.h.Flush(tid, a)
	q.h.Fence(tid)
}

// Enqueue appends v; identical to UnlinkedQ's enqueue.
func (q *UnlinkedQNoDCAS) Enqueue(tid int, v uint64) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	n := q.pool.Alloc(tid)
	h.Store(tid, n+offItem, v)
	h.Store(tid, n+offNext, 0)
	h.Store(tid, n+uqLinked, 0)
	for {
		tail := pmem.Addr(h.Load(tid, q.tailA))
		if next := h.Load(tid, tail+offNext); next == 0 {
			h.Store(tid, n+uqIndex, h.Load(tid, tail+uqIndex)+1)
			if h.CAS(tid, tail+offNext, 0, uint64(n)) {
				h.Store(tid, n+uqLinked, 1)
				h.Flush(tid, n)
				h.Fence(tid)
				h.CAS(tid, q.tailA, uint64(tail), uint64(n))
				return
			}
		} else {
			h.CAS(tid, q.tailA, uint64(tail), next)
		}
	}
}

// Dequeue removes the oldest item, persisting the dequeue through the
// thread's local head index.
func (q *UnlinkedQNoDCAS) Dequeue(tid int) (uint64, bool) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for {
		head := pmem.Addr(h.Load(tid, q.headA))
		next := h.Load(tid, head+offNext)
		if next == 0 {
			// Persist emptiness: the current head's index covers all
			// prior dequeues.
			q.persistLocalHeadIdx(tid, h.Load(tid, head+uqIndex))
			return 0, false
		}
		if h.CAS(tid, q.headA, uint64(head), next) {
			v := h.Load(tid, pmem.Addr(next)+offItem)
			// The new dummy's index is valid in the coherent view
			// (its enqueuer wrote it before linking); persisting it
			// into our own slot avoids the stale-NVRAM-index problem
			// that forces UnlinkedQ's double-width CAS.
			q.persistLocalHeadIdx(tid, h.Load(tid, pmem.Addr(next)+uqIndex))
			if r := q.nodeToRetire[tid].v; r != 0 {
				q.pool.Retire(tid, r)
			}
			q.nodeToRetire[tid].v = head
			return v, true
		}
	}
}

// RecoverUnlinkedQNoDCAS rebuilds the queue after a crash: the head
// index is the maximum across the per-thread local indices; the rest
// mirrors UnlinkedQ's recovery.
func RecoverUnlinkedQNoDCAS(h *pmem.Heap, threads int) *UnlinkedQNoDCAS {
	localBase := pmem.Addr(h.Load(0, h.RootAddr(slotLocal)))
	var headIdx uint64
	for t := 0; t < threads; t++ {
		if v := h.Load(0, localBase+pmem.Addr(t)*pmem.CacheLineBytes); v > headIdx {
			headIdx = v
		}
	}
	type rec struct {
		addr pmem.Addr
		idx  uint64
	}
	var live []rec
	pool := recoverNodePool(h, threads, func(a pmem.Addr) bool {
		if h.Load(0, a+uqLinked) == 1 && h.Load(0, a+uqIndex) > headIdx {
			live = append(live, rec{a, h.Load(0, a+uqIndex)})
			return true
		}
		return false
	})
	sort.Slice(live, func(i, j int) bool { return live[i].idx < live[j].idx })
	for i := 1; i < len(live); i++ {
		if live[i].idx == live[i-1].idx {
			panic(fmt.Sprintf("unlinkednodcas recovery: duplicate index %d", live[i].idx))
		}
	}
	q := &UnlinkedQNoDCAS{
		h:            h,
		pool:         pool,
		headA:        h.RootAddr(slotHead),
		tailA:        h.RootAddr(slotTail),
		localBase:    localBase,
		nodeToRetire: make([]paddedAddr, threads),
	}
	dummy := pool.Alloc(0)
	h.Store(0, dummy+offItem, 0)
	h.Store(0, dummy+uqLinked, 0)
	h.Store(0, dummy+uqIndex, headIdx)
	prev := dummy
	for _, r := range live {
		h.Store(0, prev+offNext, uint64(r.addr))
		prev = r.addr
	}
	h.Store(0, prev+offNext, 0)
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.tailA, uint64(prev))
	return q
}
