package queues

import (
	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// LinkedQ is the first-amendment queue of Section 5.2 and Appendix A
// (Figure 3): one blocking persist per operation, with persisted
// links.
//
// A node's initialized flag tells recovery whether the node's content
// is valid in NVRAM; Assumption 1 (in-line store order is preserved)
// guarantees the flag is only durable after the data it vouches for.
// Backward links (pred) let an enqueuer persist exactly the suffix of
// nodes that might not yet be durable; a node whose pred is NULL marks
// a fully persisted prefix. Dequeued dummies are recycled through the
// per-thread nodeToPersistAndRetire cell so that their initialized
// flag is persistently cleared by piggybacking on the next successful
// dequeue's fence — keeping every operation at a single fence.
//
// Node layout: [item, next, pred, initialized].
type LinkedQ struct {
	h     *pmem.Heap
	pool  *ssmem.Pool
	headA pmem.Addr
	tailA pmem.Addr
	// nodeToPersistAndRetire delays reclamation of the previous dummy
	// until its cleared initialized flag has been covered by a fence.
	nodeToPersistAndRetire []paddedAddr
	// naiveFlush disables the backward-link suffix optimisation: the
	// enqueuer flushes every node from the head to the new node
	// (the "naive" strategy Appendix A describes and rejects).
	// Used by the linked-naive ablation.
	naiveFlush bool
}

const (
	lqPred = offW2
	lqInit = offW3
)

// NewLinkedQ creates an empty LinkedQ.
func NewLinkedQ(h *pmem.Heap, threads int) *LinkedQ {
	q := &LinkedQ{
		h:                      h,
		pool:                   newNodePool(h, threads),
		headA:                  h.RootAddr(slotHead),
		tailA:                  h.RootAddr(slotTail),
		nodeToPersistAndRetire: make([]paddedAddr, threads),
	}
	dummy := q.pool.Alloc(0)
	h.Store(0, dummy+lqInit, 1)
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.tailA, uint64(dummy))
	h.Flush(0, dummy)
	h.Flush(0, q.headA)
	h.Fence(0)
	return q
}

// NewLinkedQNaive creates a LinkedQ that flushes the whole list prefix
// on every enqueue instead of walking backward links (ablation).
func NewLinkedQNaive(h *pmem.Heap, threads int) *LinkedQ {
	q := NewLinkedQ(h, threads)
	q.naiveFlush = true
	return q
}

// flushNotPersistedSuffix implements Figure 3 lines 59-63: flush the
// new node and walk pred links backward, flushing every node until a
// NULL pred proves the remaining prefix is already durable. Note the
// faithful post-flush read of pred: the walk reads each node's pred
// after flushing that node's line.
func (q *LinkedQ) flushNotPersistedSuffix(tid int, n pmem.Addr) {
	h := q.h
	for {
		h.Flush(tid, n)
		n = pmem.Addr(h.Load(tid, n+lqPred))
		if n == 0 {
			return
		}
	}
}

// flushWholePrefix is the naive alternative: flush every node from the
// current head to the new node.
func (q *LinkedQ) flushWholePrefix(tid int, newNode pmem.Addr) {
	h := q.h
	cur := pmem.Addr(h.Load(tid, q.headA))
	for cur != 0 {
		h.Flush(tid, cur)
		if cur == newNode {
			return
		}
		cur = pmem.Addr(h.Load(tid, cur+offNext))
	}
}

// Enqueue appends v (Figure 3, lines 64-80). One fence per call.
func (q *LinkedQ) Enqueue(tid int, v uint64) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	n := q.pool.Alloc(tid) // allocated with initialized persistently unset
	h.Store(tid, n+offItem, v)
	h.Store(tid, n+offNext, 0)
	h.Store(tid, n+lqInit, 1) // after the data; Assumption 1 orders them
	for {
		tail := pmem.Addr(h.Load(tid, q.tailA))
		if next := h.Load(tid, tail+offNext); next == 0 {
			h.Store(tid, n+lqPred, uint64(tail))        // line 72
			if h.CAS(tid, tail+offNext, 0, uint64(n)) { // line 73
				if q.naiveFlush {
					q.flushWholePrefix(tid, n)
				} else {
					q.flushNotPersistedSuffix(tid, n) // line 74
				}
				h.Fence(tid)                                 // line 75
				h.CAS(tid, q.tailA, uint64(tail), uint64(n)) // line 76
				// All nodes preceding n are now persistent; cut the
				// backward link so later enqueues stop here (line 78).
				h.Store(tid, n+lqPred, 0)
				return
			}
		} else {
			h.CAS(tid, q.tailA, uint64(tail), next) // line 80
		}
	}
}

// Dequeue removes the oldest item (Figure 3, lines 40-58). One fence
// per call, including failing dequeues.
func (q *LinkedQ) Dequeue(tid int) (uint64, bool) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for {
		head := pmem.Addr(h.Load(tid, q.headA))
		next := h.Load(tid, head+offNext)
		if next == 0 {
			h.Flush(tid, q.headA) // line 45
			h.Fence(tid)
			return 0, false
		}
		if h.CAS(tid, q.headA, uint64(head), next) { // line 47
			v := h.Load(tid, pmem.Addr(next)+offItem) // line 48
			if r := q.nodeToPersistAndRetire[tid].v; r != 0 {
				h.Flush(tid, r+lqInit) // line 50: piggybacked persist
			}
			h.Flush(tid, q.headA) // line 51
			h.Fence(tid)          // line 52: the operation's single fence
			// Disconnect the new dummy's backward link so enqueue
			// walks never reach the node we are about to recycle
			// (line 53). This store touches the line we just flushed.
			h.Store(tid, pmem.Addr(next)+lqPred, 0)
			if r := q.nodeToPersistAndRetire[tid].v; r != 0 {
				q.pool.Retire(tid, r) // line 55
			}
			h.Store(tid, head+lqInit, 0)           // line 56
			q.nodeToPersistAndRetire[tid].v = head // line 57
			return v, true
		}
	}
}

// RecoverLinkedQ rebuilds the queue after a crash (Appendix A.3): it
// resurrects every node reachable from the persisted head through a
// path of consecutive initialized nodes. If the walk stops at an
// uninitialized node, the preceding node becomes the tail and its next
// pointer is cleared and flushed. Reclaimed nodes with a set
// initialized flag get the flag cleared and flushed so they can be
// reused safely; a single fence at the end covers all recovery
// flushes.
func RecoverLinkedQ(h *pmem.Heap, threads int) *LinkedQ {
	headA := h.RootAddr(slotHead)
	tailA := h.RootAddr(slotTail)
	head := pmem.Addr(h.Load(0, headA))

	reach := map[pmem.Addr]bool{}
	var tail pmem.Addr
	if h.Load(0, head+lqInit) == 0 {
		// Step 1: a crash interrupted a previous recovery between
		// clearing flags; reset the dummy. next before initialized,
		// relying on Assumption 1 for crash-during-recovery safety.
		h.Store(0, head+offNext, 0)
		h.Store(0, head+lqInit, 1)
		h.Flush(0, head)
		reach[head] = true
		tail = head
	} else {
		reach[head] = true
		cur := head
		for {
			next := pmem.Addr(h.Load(0, cur+offNext))
			if next == 0 {
				tail = cur
				break
			}
			if h.Load(0, next+lqInit) == 0 {
				// Step 2b: truncate before the stale node.
				h.Store(0, cur+offNext, 0)
				h.Flush(0, cur)
				tail = cur
				break
			}
			reach[next] = true
			cur = next
		}
	}
	h.Store(0, tail+lqPred, 0)
	h.Store(0, tailA, uint64(tail))

	pool := recoverNodePool(h, threads, func(a pmem.Addr) bool {
		if reach[a] {
			return true
		}
		if h.Load(0, a+lqInit) == 1 {
			h.Store(0, a+lqInit, 0)
			h.Flush(0, a)
		}
		return false
	})
	h.Fence(0)
	return &LinkedQ{
		h:                      h,
		pool:                   pool,
		headA:                  headA,
		tailA:                  tailA,
		nodeToPersistAndRetire: make([]paddedAddr, threads),
	}
}
