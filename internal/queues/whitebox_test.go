package queues

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

// TestRecoveryIdempotent: recovering, crashing again with no
// intervening operations, and recovering again must yield the same
// state (recovery must not damage its own durable input).
func TestRecoveryIdempotent(t *testing.T) {
	for _, in := range durableQueues() {
		t.Run(in.Name, func(t *testing.T) {
			h := crashHeap(t, 2)
			q := in.New(h, 2)
			for i := uint64(1); i <= 30; i++ {
				q.Enqueue(0, i)
			}
			for i := 0; i < 10; i++ {
				q.Dequeue(1)
			}
			for round := 0; round < 3; round++ {
				h.CrashNow()
				h.FinalizeCrash(rand.New(rand.NewSource(int64(round))))
				h.Restart()
				in.Recover(h, 2)
				// No operations: the durable state must be stable
				// across repeated crash/recover rounds.
			}
			h.CrashNow()
			h.FinalizeCrash(rand.New(rand.NewSource(99)))
			h.Restart()
			rq := in.Recover(h, 2)
			got := drain(rq, 0)
			if len(got) != 20 {
				t.Fatalf("recovered %d items, want 20", len(got))
			}
			for i, v := range got {
				if v != uint64(i+11) {
					t.Fatalf("item %d = %d, want %d", i, v, i+11)
				}
			}
		})
	}
}

// TestFailingDequeuePersistsEmptiness: the paper's Observation about
// failing dequeues — after a completed failing dequeue, a crash must
// recover an EMPTY queue even if the dequeues that emptied it were
// pending at other threads... here single-threaded: dequeues that
// emptied the queue complete, then only the failing dequeue's fence
// may cover them.
func TestFailingDequeuePersistsEmptiness(t *testing.T) {
	for _, in := range durableQueues() {
		t.Run(in.Name, func(t *testing.T) {
			h := crashHeap(t, 2)
			q := in.New(h, 2)
			q.Enqueue(0, 1)
			q.Enqueue(0, 2)
			if _, ok := q.Dequeue(0); !ok {
				t.Fatal("dequeue failed")
			}
			if _, ok := q.Dequeue(0); !ok {
				t.Fatal("dequeue failed")
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("queue should be empty")
			}
			h.CrashNow()
			h.FinalizeCrash(rand.New(zeroSourceQ{})) // minimal eviction
			h.Restart()
			rq := in.Recover(h, 2)
			if v, ok := rq.Dequeue(0); ok {
				t.Fatalf("emptiness lost: recovered %d", v)
			}
		})
	}
}

type zeroSourceQ struct{}

func (zeroSourceQ) Int63() int64 { return 0 }
func (zeroSourceQ) Seed(int64)   {}

// TestSingleItemRecovery exercises the dummy-node boundary: recovery
// of queues holding exactly one item.
func TestSingleItemRecovery(t *testing.T) {
	for _, in := range durableQueues() {
		t.Run(in.Name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				h := crashHeap(t, 2)
				q := in.New(h, 2)
				q.Enqueue(0, 7)
				h.CrashNow()
				h.FinalizeCrash(rand.New(rand.NewSource(seed)))
				h.Restart()
				rq := in.Recover(h, 2)
				v, ok := rq.Dequeue(0)
				if !ok || v != 7 {
					t.Fatalf("seed %d: got (%d,%v), want (7,true)", seed, v, ok)
				}
				if _, ok := rq.Dequeue(0); ok {
					t.Fatal("queue should be empty")
				}
			}
		})
	}
}

// TestZeroAndDuplicateValues: queues must carry the zero value and
// repeated values faithfully.
func TestZeroAndDuplicateValues(t *testing.T) {
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) {
			q := in.New(perfHeap(t, 1), 1)
			q.Enqueue(0, 0)
			q.Enqueue(0, 5)
			q.Enqueue(0, 5)
			q.Enqueue(0, 0)
			want := []uint64{0, 5, 5, 0}
			for i, w := range want {
				v, ok := q.Dequeue(0)
				if !ok || v != w {
					t.Fatalf("dequeue %d: got (%d,%v), want (%d,true)", i, v, ok, w)
				}
			}
		})
	}
}

// TestCorrectnessWithFlushRetainsLine: the no-invalidation ablation
// changes performance accounting only, never semantics.
func TestCorrectnessWithFlushRetainsLine(t *testing.T) {
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) {
			h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 2, FlushRetainsLine: true})
			q := in.New(h, 1)
			for i := uint64(1); i <= 200; i++ {
				q.Enqueue(0, i)
			}
			for i := uint64(1); i <= 200; i++ {
				v, ok := q.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("got (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if h.TotalStats().PostFlushAccesses != 0 {
				t.Fatal("retain mode must record zero post-flush accesses")
			}
		})
	}
}

// TestOptQueueNTStoreAccounting pins the Section 6.3 mechanics: the
// optimized queues write their per-thread persistent locals only with
// non-temporal stores.
func TestOptQueueNTStoreAccounting(t *testing.T) {
	ou, _ := Lookup("opt-unlinked")
	_, deq, empty := opStats(t, ou)
	// Failing dequeues issue zero NTStores: the empty-poll elision skips
	// the local-index write entirely once the index is durable.
	if deq.NTStores != 100 || empty.NTStores != 0 {
		t.Errorf("opt-unlinked NTStores per 100 deq/empty = %d/%d, want 100/0", deq.NTStores, empty.NTStores)
	}
	ol, _ := Lookup("opt-linked")
	enq, deq2, _ := opStats(t, ol)
	if enq.NTStores != 200 { // lastEnqueues cell: pointer + index words
		t.Errorf("opt-linked enqueue NTStores per 100 ops = %d, want 200", enq.NTStores)
	}
	if deq2.NTStores != 100 {
		t.Errorf("opt-linked dequeue NTStores per 100 ops = %d, want 100", deq2.NTStores)
	}
	// The plain-store ablation pays post-flush accesses instead.
	ps, _ := Lookup("opt-unlinked-plainstore")
	_, deqPS, _ := opStats(t, ps)
	if deqPS.PostFlushAccesses == 0 {
		t.Error("plain-store ablation shows no post-flush accesses; expected some")
	}
}

// TestQuickCrashRecoveryProperty is the randomized (testing/quick)
// counterpart of the exhaustive crash-point tests: a random script,
// crash point and eviction seed must always recover to the completed
// prefix ± the pending operation.
func TestQuickCrashRecoveryProperty(t *testing.T) {
	for _, name := range []string{"unlinked", "linked", "opt-unlinked", "opt-linked"} {
		in, _ := Lookup(name)
		t.Run(name, func(t *testing.T) {
			prop := func(scriptSeed int64, crashAt uint16, evictSeed int64) bool {
				rng := rand.New(rand.NewSource(scriptSeed))
				h := crashHeap(t, 2)
				q := in.New(h, 1)
				var model []uint64
				var pendingEnq *uint64
				pendingDeq := false
				h.ScheduleCrashAtAccess(int64(crashAt%700) + 1)
				next := uint64(1)
				for op := 0; op < 40; op++ {
					enq := rng.Intn(3) < 2
					v := next
					crashed := pmem.Protect(func() {
						if enq {
							q.Enqueue(0, v)
						} else {
							q.Dequeue(0)
						}
					})
					if crashed {
						if enq {
							pendingEnq = &v
						} else {
							pendingDeq = true
						}
						break
					}
					if enq {
						model = append(model, v)
						next++
					} else if len(model) > 0 {
						model = model[1:]
					}
				}
				if !h.Crashed() {
					h.CrashNow()
					pendingEnq, pendingDeq = nil, false
				}
				h.FinalizeCrash(rand.New(rand.NewSource(evictSeed)))
				h.Restart()
				rq := in.Recover(h, 1)
				got := drain(rq, 0)
				if sliceEq(got, model) {
					return true
				}
				alt := append([]uint64(nil), model...)
				if pendingEnq != nil {
					alt = append(alt, *pendingEnq)
				} else if pendingDeq && len(alt) > 0 {
					alt = alt[1:]
				}
				if (pendingEnq != nil || pendingDeq) && sliceEq(got, alt) {
					return true
				}
				t.Logf("script %d crash %d evict %d: got %v, want %v (or %v)", scriptSeed, crashAt, evictSeed, got, model, alt)
				return false
			}
			count := 120
			if raceEnabled {
				count = 25
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: count}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func sliceEq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHeavyChurnReuse forces many node recycles through the EBR
// allocator and re-checks FIFO integrity (guards the linked/unlinked
// flag-reset invariants on reuse).
func TestHeavyChurnReuse(t *testing.T) {
	for _, in := range durableQueues() {
		t.Run(in.Name, func(t *testing.T) {
			h := pmem.New(pmem.Config{Bytes: 16 << 20, MaxThreads: 2})
			q := in.New(h, 1)
			next, expect := uint64(1), uint64(1)
			for round := 0; round < 200; round++ {
				for i := 0; i < 50; i++ {
					q.Enqueue(0, next)
					next++
				}
				for i := 0; i < 50; i++ {
					v, ok := q.Dequeue(0)
					if !ok || v != expect {
						t.Fatalf("round %d: got (%d,%v), want (%d,true)", round, v, ok, expect)
					}
					expect++
				}
			}
		})
	}
}
