package queues

import (
	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// TransformQ implements the two automatically transformed baselines of
// Section 10:
//
//   - IzraelevitzQ: MSQ with a flush and a fence after each access to
//     global memory (the Izraelevitz et al. transform that makes any
//     lock-free structure durably linearizable).
//   - NVTraverseQ: the NVTraverse variant. MSQ has an empty traversal
//     phase, so the only difference is that no blocking fence is
//     issued after a flush that follows a read or a CAS; writes keep
//     their fences, and a single fence before returning ensures the
//     completed operation is durable.
//
// Both flush the head, the tail's cache line and node lines on every
// operation, so both suffer heavily from post-flush accesses — which
// is why the paper finds their performance nearly identical despite
// the different fence counts.
type TransformQ struct {
	h            *pmem.Heap
	pool         *ssmem.Pool
	headA        pmem.Addr
	tailA        pmem.Addr
	nodeToRetire []paddedAddr
	// fenceAfterRead distinguishes IzraelevitzQ (true) from
	// NVTraverseQ (false).
	fenceAfterRead bool
}

// NewIzraelevitzQ creates an empty IzraelevitzQ.
func NewIzraelevitzQ(h *pmem.Heap, threads int) *TransformQ {
	return newTransformQ(h, threads, true)
}

// NewNVTraverseQ creates an empty NVTraverseQ.
func NewNVTraverseQ(h *pmem.Heap, threads int) *TransformQ {
	return newTransformQ(h, threads, false)
}

func newTransformQ(h *pmem.Heap, threads int, fenceAfterRead bool) *TransformQ {
	q := &TransformQ{
		h:              h,
		pool:           newNodePool(h, threads),
		headA:          h.RootAddr(slotHead),
		tailA:          h.RootAddr(slotTail),
		nodeToRetire:   make([]paddedAddr, threads),
		fenceAfterRead: fenceAfterRead,
	}
	dummy := q.pool.Alloc(0)
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.tailA, uint64(dummy))
	h.Flush(0, dummy)
	h.Flush(0, q.headA)
	h.Fence(0)
	return q
}

// RecoverIzraelevitzQ rebuilds an IzraelevitzQ from the NVRAM image.
// Every access was persisted, so recovery is the persisted-chain walk.
func RecoverIzraelevitzQ(h *pmem.Heap, threads int) *TransformQ {
	q := recoverTransformQ(h, threads)
	q.fenceAfterRead = true
	return q
}

// RecoverNVTraverseQ rebuilds an NVTraverseQ from the NVRAM image.
func RecoverNVTraverseQ(h *pmem.Heap, threads int) *TransformQ {
	return recoverTransformQ(h, threads)
}

func recoverTransformQ(h *pmem.Heap, threads int) *TransformQ {
	headA := h.RootAddr(slotHead)
	head := pmem.Addr(h.Load(0, headA))
	reach := map[pmem.Addr]bool{}
	cur := head
	for {
		reach[cur] = true
		next := pmem.Addr(h.Load(0, cur+offNext))
		if next == 0 {
			break
		}
		cur = next
	}
	pool := recoverNodePool(h, threads, func(a pmem.Addr) bool { return reach[a] })
	h.Store(0, h.RootAddr(slotTail), uint64(cur))
	return &TransformQ{
		h:            h,
		pool:         pool,
		headA:        headA,
		tailA:        h.RootAddr(slotTail),
		nodeToRetire: make([]paddedAddr, threads),
	}
}

// loadP is the transformed shared-memory load.
func (q *TransformQ) loadP(tid int, a pmem.Addr) uint64 {
	v := q.h.Load(tid, a)
	q.h.Flush(tid, a)
	if q.fenceAfterRead {
		q.h.Fence(tid)
	}
	return v
}

// storeP is the transformed shared-memory store.
func (q *TransformQ) storeP(tid int, a pmem.Addr, v uint64) {
	q.h.Store(tid, a, v)
	q.h.Flush(tid, a)
	q.h.Fence(tid)
}

// casP is the transformed CAS.
func (q *TransformQ) casP(tid int, a pmem.Addr, old, new uint64) bool {
	ok := q.h.CAS(tid, a, old, new)
	q.h.Flush(tid, a)
	if q.fenceAfterRead {
		q.h.Fence(tid)
	}
	return ok
}

// Enqueue appends v under the transform.
func (q *TransformQ) Enqueue(tid int, v uint64) {
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	n := q.pool.Alloc(tid)
	q.storeP(tid, n+offItem, v)
	q.storeP(tid, n+offNext, 0)
	for {
		tail := pmem.Addr(q.loadP(tid, q.tailA))
		next := q.loadP(tid, tail+offNext)
		if next == 0 {
			if q.casP(tid, tail+offNext, 0, uint64(n)) {
				q.casP(tid, q.tailA, uint64(tail), uint64(n))
				if !q.fenceAfterRead {
					q.h.Fence(tid) // NVTraverse: persist before returning
				}
				return
			}
		} else {
			q.casP(tid, q.tailA, uint64(tail), next)
		}
	}
}

// Dequeue removes the oldest item under the transform.
func (q *TransformQ) Dequeue(tid int) (uint64, bool) {
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for {
		head := pmem.Addr(q.loadP(tid, q.headA))
		next := q.loadP(tid, head+offNext)
		if next == 0 {
			q.h.Fence(tid) // ensure prior flushes (head) are durable
			return 0, false
		}
		if q.casP(tid, q.headA, uint64(head), next) {
			v := q.loadP(tid, pmem.Addr(next)+offItem)
			q.h.Fence(tid) // persist the head advance before returning
			if r := q.nodeToRetire[tid].v; r != 0 {
				q.pool.Retire(tid, r)
			}
			q.nodeToRetire[tid].v = head
			return v, true
		}
	}
}
