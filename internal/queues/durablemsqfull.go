package queues

import (
	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// DurableMSQFull is the original Friedman et al. durable queue
// *including* the mechanism the paper strips out of DurableMSQ for a
// level comparison: detectable execution — after a crash each thread
// can learn the outcome of the dequeue that was pending when the
// system died (Section 10: "It contains a mechanism for retrieving
// previously obtained results after a crash ... The extra mechanism
// can be easily added to the versions we propose (with the
// corresponding additional cost)").
//
// Protocol. Each thread owns a persistent result cell
// [state|seq, value] on a private cache line, written only by its
// owner. A dequeue (with per-thread sequence number seq):
//
//  1. persists cell = (pending, seq)                       — fence 1
//  2. claims the removed node by CAS-ing its claim word to
//     (seq, tid), then persists the claim together with
//     cell = (done, seq, value)                            — fence 2
//  3. advances and persists the head                       — fence 3
//
// Helping threads persist an observed claim before moving the head
// past it. Because operations are EBR-protected, a claimed node
// cannot be recycled while its claimer has not completed, so recovery
// can always resolve a (pending, seq) cell by scanning for the
// matching stamped claim: found — the dequeue linearized and its
// result is the node's item; absent — it never took effect.
//
// Cost: two fences per enqueue, three per successful dequeue, two per
// failing dequeue — which is exactly why the paper benchmarks the
// thinned DurableMSQ instead.
//
// Node layout: [item, next, claim, -]; claim = seq<<8 | tid+1.
type DurableMSQFull struct {
	h            *pmem.Heap
	pool         *ssmem.Pool
	headA        pmem.Addr
	tailA        pmem.Addr
	localBase    pmem.Addr
	deqSeq       []uint64 // volatile per-thread dequeue counters
	nodeToRetire []paddedAddr
}

const fqClaim = offW2

// Result-cell states (low byte of the cell's first word; the rest is
// the operation sequence number).
const (
	fqStateNever   = 0
	fqStatePending = 1
	fqStateDone    = 2
	fqStateEmpty   = 3
)

// NewDurableMSQFull creates an empty queue.
func NewDurableMSQFull(h *pmem.Heap, threads int) *DurableMSQFull {
	q := &DurableMSQFull{
		h:            h,
		pool:         newNodePool(h, threads),
		headA:        h.RootAddr(slotHead),
		tailA:        h.RootAddr(slotTail),
		deqSeq:       make([]uint64, threads),
		nodeToRetire: make([]paddedAddr, threads),
	}
	size := int64(threads) * pmem.CacheLineBytes
	q.localBase = h.AllocRaw(0, size, pmem.CacheLineBytes)
	h.InitRange(0, q.localBase, size)
	h.Store(0, h.RootAddr(slotLocal), uint64(q.localBase))
	h.Persist(0, h.RootAddr(slotLocal))

	dummy := q.pool.Alloc(0)
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.tailA, uint64(dummy))
	h.Flush(0, dummy)
	h.Flush(0, q.headA)
	h.Fence(0)
	return q
}

func (q *DurableMSQFull) cellAddr(tid int) pmem.Addr {
	return q.localBase + pmem.Addr(tid)*pmem.CacheLineBytes
}

// DequeueOutcome is the recovered outcome of a thread's most recent
// dequeue.
type DequeueOutcome struct {
	// State is one of "none", "pending-not-linearized", "value",
	// "empty".
	State string
	Value uint64
}

// RecoveredResults maps a thread id to the outcome of its most recent
// dequeue as reconstructed by recovery — the "previously obtained
// results" of Friedman et al.
type RecoveredResults map[int]DequeueOutcome

// RecoverDurableMSQFull rebuilds the queue and reports the recovered
// dequeue results.
func RecoverDurableMSQFull(h *pmem.Heap, threads int) (*DurableMSQFull, RecoveredResults) {
	headA := h.RootAddr(slotHead)
	localBase := pmem.Addr(h.Load(0, h.RootAddr(slotLocal)))
	cellAddr := func(t int) pmem.Addr { return localBase + pmem.Addr(t)*pmem.CacheLineBytes }

	results := RecoveredResults{}
	deqSeq := make([]uint64, threads)
	// pendingSeq[t] set if t's cell says its last dequeue was cut
	// before its claim (if any) was recorded in the cell.
	pendingClaim := map[uint64]int{} // stamped claim word -> tid
	for t := 0; t < threads; t++ {
		w := h.Load(0, cellAddr(t))
		seq := w >> 8
		deqSeq[t] = seq
		switch w & 0xff {
		case fqStateNever:
			results[t] = DequeueOutcome{State: "none"}
		case fqStatePending:
			// Resolved below by the claim scan.
			pendingClaim[seq<<8|uint64(t)+1] = t
			results[t] = DequeueOutcome{State: "pending-not-linearized"}
		case fqStateDone:
			results[t] = DequeueOutcome{State: "value", Value: h.Load(0, cellAddr(t)+8)}
		case fqStateEmpty:
			results[t] = DequeueOutcome{State: "empty"}
		}
	}

	// Skip the durable claimed prefix: claimed nodes were removed by
	// dequeues that are linearized (their claims are durable).
	cur := pmem.Addr(h.Load(0, headA))
	for {
		next := pmem.Addr(h.Load(0, cur+offNext))
		if next == 0 || h.Load(0, next+fqClaim) == 0 {
			break
		}
		cur = next
	}
	newHead := cur
	reach := map[pmem.Addr]bool{}
	for {
		reach[cur] = true
		next := pmem.Addr(h.Load(0, cur+offNext))
		if next == 0 {
			break
		}
		cur = next
	}
	pool := recoverNodePool(h, threads, func(a pmem.Addr) bool {
		if c := h.Load(0, a+fqClaim); c != 0 {
			if t, ok := pendingClaim[c]; ok {
				// The pending dequeue did claim: report its result.
				results[t] = DequeueOutcome{State: "value", Value: h.Load(0, a+offItem)}
				delete(pendingClaim, c)
			}
		}
		return reach[a]
	})
	h.Store(0, headA, uint64(newHead))
	h.Persist(0, headA)
	h.Store(0, h.RootAddr(slotTail), uint64(cur))
	return &DurableMSQFull{
		h:            h,
		pool:         pool,
		headA:        headA,
		tailA:        h.RootAddr(slotTail),
		localBase:    localBase,
		deqSeq:       deqSeq,
		nodeToRetire: make([]paddedAddr, threads),
	}, results
}

// Enqueue appends v; the new node is created unclaimed and persisted
// before it can become reachable.
func (q *DurableMSQFull) Enqueue(tid int, v uint64) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	n := q.pool.Alloc(tid)
	h.Store(tid, n+offItem, v)
	h.Store(tid, n+offNext, 0)
	h.Store(tid, n+fqClaim, 0)
	h.Flush(tid, n)
	h.Fence(tid)
	for {
		tail := pmem.Addr(h.Load(tid, q.tailA))
		next := h.Load(tid, tail+offNext)
		if next == 0 {
			if h.CAS(tid, tail+offNext, 0, uint64(n)) {
				h.Flush(tid, tail+offNext)
				h.Fence(tid)
				h.CAS(tid, q.tailA, uint64(tail), uint64(n))
				return
			}
		} else {
			h.Flush(tid, tail+offNext)
			h.Fence(tid)
			h.CAS(tid, q.tailA, uint64(tail), next)
		}
	}
}

// Dequeue removes the oldest item with a detectable, recoverable
// result.
func (q *DurableMSQFull) Dequeue(tid int) (uint64, bool) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	cell := q.cellAddr(tid)
	q.deqSeq[tid]++
	seq := q.deqSeq[tid]
	h.Store(tid, cell, seq<<8|fqStatePending)
	h.Flush(tid, cell)
	h.Fence(tid) // fence 1: the pending marker
	for {
		head := pmem.Addr(h.Load(tid, q.headA))
		next := h.Load(tid, head+offNext)
		if next == 0 {
			h.Store(tid, cell, seq<<8|fqStateEmpty)
			h.Flush(tid, cell)
			h.Flush(tid, q.headA)
			h.Fence(tid) // fence 2
			return 0, false
		}
		nAddr := pmem.Addr(next)
		claim := h.Load(tid, nAddr+fqClaim)
		if claim == 0 && h.CAS(tid, nAddr+fqClaim, 0, seq<<8|uint64(tid)+1) {
			v := h.Load(tid, nAddr+offItem)
			h.Store(tid, cell+8, v) // value before the sealing state word
			h.Store(tid, cell, seq<<8|fqStateDone)
			h.Flush(tid, nAddr)
			h.Flush(tid, cell)
			h.Fence(tid) // fence 2: claim + result durable together
			h.CAS(tid, q.headA, uint64(head), next)
			h.Flush(tid, q.headA)
			h.Fence(tid) // fence 3
			if r := q.nodeToRetire[tid].v; r != 0 {
				q.pool.Retire(tid, r)
			}
			q.nodeToRetire[tid].v = head
			return v, true
		}
		// The first node is claimed: persist the claim and help
		// advance the head past it.
		h.Flush(tid, nAddr)
		h.Fence(tid)
		h.CAS(tid, q.headA, uint64(head), next)
	}
}
