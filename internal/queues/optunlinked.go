package queues

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// OptUnlinkedQ is the second-amendment queue of Section 6.1 and
// Appendix B (Figure 4): one blocking persist per operation and zero
// accesses to explicitly flushed content.
//
// Every logical node is split in two. The Persistent part
// [item, index, linked] lives in simulated NVRAM, is flushed exactly
// once by its enqueuer, and is never read again except by recovery.
// The Volatile part (a Go object, standing in for the DRAM copy) holds
// duplicated item/index plus the next link and a pointer to the
// Persistent part, and serves all normal-path reads. The global head
// index of UnlinkedQ becomes a per-thread head index written with
// non-temporal stores (Section 6.3), so dequeues never touch a flushed
// line either.
type OptUnlinkedQ struct {
	h    *pmem.Heap
	pool *ssmem.Pool
	head atomic.Pointer[ouNode]
	tail atomic.Pointer[ouNode]
	// localBase anchors one persistent cache line per thread holding
	// that thread's head index; recovery takes the maximum.
	localBase pmem.Addr
	per       []ouThread
	// plainStoreLocal replaces the movnti write of the local head
	// index with an ordinary store + flush (the pre-Section-6.3
	// design); ablation only.
	plainStoreLocal bool
}

// ouNode is the Volatile half of a node.
type ouNode struct {
	item  uint64
	index uint64
	next  atomic.Pointer[ouNode]
	pnode pmem.Addr
}

type ouThread struct {
	nodeToRetire *ouNode
	// pendingRetire accumulates the nodes unlinked by an unfenced batch
	// dequeue; they are handed to the allocator only by CompleteBatch,
	// after the caller's fence made the covering head index durable (a
	// slot reused and overwritten before that fence could lose a message
	// whose dequeue never became durable).
	pendingRetire []*ouNode
	// lastPersisted is the head index this thread most recently made
	// durable (NTStore + completed fence) in its local line. A failing
	// dequeue that observes the same index again elides its persist:
	// re-persisting an already-durable value cannot change what recovery
	// sees, so the empty response stays durably linearized for free.
	lastPersisted uint64
	// pendingIdx is the head index NTStored by an unfenced batch dequeue
	// but not yet covered by a fence; promoted to lastPersisted by
	// CompleteBatch.
	pendingIdx   uint64
	pendingDirty bool
	_            [15]byte
}

// Persistent node layout.
const (
	ouItem   = pmem.Addr(0)
	ouIndex  = pmem.Addr(8)
	ouLinked = pmem.Addr(16)
)

// NewOptUnlinkedQ creates an empty OptUnlinkedQ.
func NewOptUnlinkedQ(h *pmem.Heap, threads int) *OptUnlinkedQ {
	q := &OptUnlinkedQ{
		h:    h,
		pool: newNodePool(h, threads),
		per:  make([]ouThread, threads),
	}
	q.localBase = h.AllocRaw(0, int64(threads)*pmem.CacheLineBytes, pmem.CacheLineBytes)
	h.InitRange(0, q.localBase, int64(threads)*pmem.CacheLineBytes)
	h.Store(0, h.RootAddr(slotLocal), uint64(q.localBase))
	h.Persist(0, h.RootAddr(slotLocal))

	pn := q.pool.Alloc(0) // fresh slot: zero index, unset linked
	dummy := &ouNode{pnode: pn}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// NewOptUnlinkedQPlainStore is the Section 6.3 ablation: local head
// indices are written with ordinary stores plus flushes instead of
// non-temporal stores, reintroducing writes to flushed lines.
func NewOptUnlinkedQPlainStore(h *pmem.Heap, threads int) *OptUnlinkedQ {
	q := NewOptUnlinkedQ(h, threads)
	q.plainStoreLocal = true
	return q
}

func (q *OptUnlinkedQ) localHeadIdxAddr(tid int) pmem.Addr {
	return q.localBase + pmem.Addr(tid)*pmem.CacheLineBytes
}

// writeLocalHeadIdx issues the (asynchronous) write of idx into tid's
// persistent local line; a subsequent Fence by the same thread makes
// it durable.
func (q *OptUnlinkedQ) writeLocalHeadIdx(tid int, idx uint64) {
	a := q.localHeadIdxAddr(tid)
	if q.plainStoreLocal {
		q.h.Store(tid, a, idx) // pays NVM read latency once flushed
		q.h.Flush(tid, a)
	} else {
		q.h.NTStore(tid, a, idx) // movnti: bypasses the cache entirely
	}
}

// enqueueOne runs the enqueue protocol of Figure 4 (lines 107-121) up
// to but not including the blocking fence: allocate, write item and
// index, link via CAS, set the linked flag and issue the asynchronous
// flush. It returns the tail observed at link time and the new node so
// the caller can order its fence and tail advance; EnqueueBatch (which
// Enqueue wraps) advances immediately and rides one fence for the
// whole batch.
func (q *OptUnlinkedQ) enqueueOne(tid int, v uint64) (tail, vn *ouNode) {
	h := q.h
	pn := q.pool.Alloc(tid)
	vn = &ouNode{item: v, pnode: pn}
	h.Store(tid, pn+ouItem, v)   // line 112
	h.Store(tid, pn+ouLinked, 0) // line 113
	for {
		tail = q.tail.Load()
		if next := tail.next.Load(); next == nil {
			idx := tail.index + 1                  // volatile read (line 117)
			h.Store(tid, pn+ouIndex, idx)          // Persistent copy
			vn.index = idx                         // Volatile copy (line 118)
			if tail.next.CompareAndSwap(nil, vn) { // line 119
				h.Store(tid, pn+ouLinked, 1) // line 120
				h.Flush(tid, pn)             // line 121
				return tail, vn
			}
		} else {
			q.tail.CompareAndSwap(tail, next) // line 124
		}
	}
}

// Enqueue appends v (Figure 4, lines 107-124): the one-element batch.
// One fence, zero post-flush accesses: the tail's index is read from
// the Volatile object, never from the flushed Persistent line.
func (q *OptUnlinkedQ) Enqueue(tid int, v uint64) {
	q.EnqueueBatch(tid, []uint64{v})
}

// EnqueueBatch appends vs in order, riding a single fence for the
// whole batch: every node is written, linked and asynchronously
// flushed exactly as in Enqueue, but the blocking SFENCE is issued
// once at the end. This amortization is sound because the algorithm
// already tolerates an enqueuer whose node is linked but not yet
// durable — any helper may advance the tail past it and append (and
// fence) later nodes; recovery sorts surviving nodes by index and
// accepts gaps, dropping exactly the unacknowledged enqueues. The
// batch is acknowledged as a whole when EnqueueBatch returns: at that
// point all of its nodes are durable.
func (q *OptUnlinkedQ) EnqueueBatch(tid int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for _, v := range vs {
		tail, vn := q.enqueueOne(tid, v)
		q.tail.CompareAndSwap(tail, vn)
	}
	q.h.Fence(tid) // the batch's single blocking persist
}

// dequeueOne runs the dequeue protocol of Figure 4 (lines 90-99) up to
// but not including the blocking persist: CAS the head past the oldest
// node. On success it returns the node holding the dequeued item (now
// the queue's dummy) and the unlinked previous head, whose retirement
// the caller must defer until a covering head index is durable. On an
// empty observation ok is false and taken is the observed head, whose
// index the caller persists (or elides) to durably linearize the empty
// response.
func (q *OptUnlinkedQ) dequeueOne(tid int) (taken, old *ouNode, ok bool) {
	for {
		head := q.head.Load()
		next := head.next.Load()
		if next == nil {
			return head, nil, false
		}
		if q.head.CompareAndSwap(head, next) {
			return next, head, true
		}
	}
}

// retireAfterPersist hands old to the deferred-retirement cell (Figure
// 4, lines 102-105), releasing the previously deferred node. Call only
// after a fence covering old's dequeue.
func (q *OptUnlinkedQ) retireAfterPersist(tid int, old *ouNode) {
	if r := q.per[tid].nodeToRetire; r != nil {
		q.pool.Retire(tid, r.pnode)
	}
	q.per[tid].nodeToRetire = old
}

// Dequeue removes the oldest item (Figure 4, lines 90-106): the
// one-element batch dequeue, so the fence accounting — one NTStore +
// one fence on success, full elision on an already-durable empty
// observation — lives in DequeueBatchUnfenced alone. One fence, zero
// post-flush accesses.
func (q *OptUnlinkedQ) Dequeue(tid int) (uint64, bool) {
	vs := q.DequeueBatch(tid, 1)
	if len(vs) == 0 {
		return 0, false
	}
	return vs[0], true
}

// DequeueBatch removes up to max items in FIFO order, riding a single
// blocking persist for the whole batch: every dequeue CASes the head
// exactly as in Dequeue, but only the final head index is written to
// this thread's local line (one NTStore) and fenced once. The
// amortization is sound because the per-thread head index is monotone
// — recovery takes the maximum over all local lines, so persisting the
// last index covers every earlier one. The batch is acknowledged as a
// whole when DequeueBatch returns, exactly dual to EnqueueBatch: a
// crash mid-batch redelivers (or, if the unfenced NTStore happened to
// land, consumes) only items of the unacknowledged window. An empty
// result means the queue was observed empty.
func (q *OptUnlinkedQ) DequeueBatch(tid, max int) []uint64 {
	vs, dirty := q.DequeueBatchUnfenced(tid, max)
	if dirty {
		q.h.Fence(tid) // the batch's single blocking persist
		q.CompleteBatch(tid)
	}
	return vs
}

// DequeueBatchUnfenced is DequeueBatch with the blocking persist left
// to the caller, so several queues sharing one heap can ride a single
// fence (package broker drains many shards per poll this way; a fence
// is per-thread and covers all of that thread's outstanding NTStores
// regardless of which line they target). It performs the CASes and the
// one NTStore of the final head index, but neither fences nor retires.
// dirty reports whether an NTStore is outstanding; if so the caller
// must issue a Fence for tid on the same heap and then call
// CompleteBatch before treating the items (or the empty observation)
// as durable. No other operation may run on this queue with this tid
// in between.
func (q *OptUnlinkedQ) DequeueBatchUnfenced(tid, max int) (vs []uint64, dirty bool) {
	if max <= 0 {
		return nil, q.per[tid].pendingDirty
	}
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	t := &q.per[tid]
	var last *ouNode
	for len(vs) < max {
		taken, old, ok := q.dequeueOne(tid)
		if !ok {
			if last == nil {
				// Pure empty observation: persist the observed index
				// unless it is already durable or already NTStored.
				if taken.index > t.lastPersisted && !(t.pendingDirty && taken.index <= t.pendingIdx) {
					q.writeLocalHeadIdx(tid, taken.index)
					t.pendingIdx = taken.index
					t.pendingDirty = true
				}
				return nil, t.pendingDirty
			}
			break
		}
		vs = append(vs, taken.item)
		t.pendingRetire = append(t.pendingRetire, old)
		last = taken
	}
	q.writeLocalHeadIdx(tid, last.index) // one NTStore covers the batch
	t.pendingIdx = last.index
	t.pendingDirty = true
	return vs, true
}

// CompleteBatch finishes an unfenced batch dequeue after the caller's
// fence: it promotes the pending head index to lastPersisted and
// retires the unlinked nodes in one sweep (keeping the newest in the
// deferred cell, as in Dequeue).
func (q *OptUnlinkedQ) CompleteBatch(tid int) {
	t := &q.per[tid]
	if t.pendingDirty {
		t.lastPersisted = t.pendingIdx
		t.pendingDirty = false
	}
	for _, old := range t.pendingRetire {
		q.retireAfterPersist(tid, old)
	}
	t.pendingRetire = t.pendingRetire[:0]
}

// RecoverOptUnlinkedQ rebuilds the queue after a crash (Section 6.1).
// The head index is the maximum of the per-thread head indices; every
// Persistent object marked linked with a larger index is resurrected;
// matching Volatile objects are materialized and chained in index
// order.
func RecoverOptUnlinkedQ(h *pmem.Heap, threads int) *OptUnlinkedQ {
	localBase := pmem.Addr(h.Load(0, h.RootAddr(slotLocal)))
	perThread := make([]ouThread, threads)
	var headIdx uint64
	for t := 0; t < threads; t++ {
		v := h.Load(0, localBase+pmem.Addr(t)*pmem.CacheLineBytes)
		// Seed the elision cache with what this thread provably
		// persisted before the crash; its next failing dequeue at a
		// higher index will persist again.
		perThread[t].lastPersisted = v
		if v > headIdx {
			headIdx = v
		}
	}
	type rec struct {
		addr pmem.Addr
		idx  uint64
	}
	var live []rec
	pool := recoverNodePool(h, threads, func(a pmem.Addr) bool {
		if h.Load(0, a+ouLinked) == 1 && h.Load(0, a+ouIndex) > headIdx {
			live = append(live, rec{a, h.Load(0, a+ouIndex)})
			return true
		}
		return false
	})
	sort.Slice(live, func(i, j int) bool { return live[i].idx < live[j].idx })
	for i := 1; i < len(live); i++ {
		if live[i].idx == live[i-1].idx {
			panic(fmt.Sprintf("optunlinkedq recovery: duplicate index %d", live[i].idx))
		}
	}

	q := &OptUnlinkedQ{h: h, pool: pool, localBase: localBase, per: perThread}
	dummyPn := pool.Alloc(0)
	h.Store(0, dummyPn+ouLinked, 0)
	h.Store(0, dummyPn+ouIndex, headIdx)
	dummy := &ouNode{index: headIdx, pnode: dummyPn}
	prev := dummy
	for _, r := range live {
		vn := &ouNode{
			item:  h.Load(0, r.addr+ouItem),
			index: r.idx,
			pnode: r.addr,
		}
		prev.next.Store(vn)
		prev = vn
	}
	q.head.Store(dummy)
	q.tail.Store(prev)
	return q
}
