package queues

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// OptUnlinkedQ is the second-amendment queue of Section 6.1 and
// Appendix B (Figure 4): one blocking persist per operation and zero
// accesses to explicitly flushed content.
//
// Every logical node is split in two. The Persistent part
// [item, index, linked] lives in simulated NVRAM, is flushed exactly
// once by its enqueuer, and is never read again except by recovery.
// The Volatile part (a Go object, standing in for the DRAM copy) holds
// duplicated item/index plus the next link and a pointer to the
// Persistent part, and serves all normal-path reads. The global head
// index of UnlinkedQ becomes a per-thread head index written with
// non-temporal stores (Section 6.3), so dequeues never touch a flushed
// line either.
type OptUnlinkedQ struct {
	h    *pmem.Heap
	pool *ssmem.Pool
	head atomic.Pointer[ouNode]
	tail atomic.Pointer[ouNode]
	// localBase anchors one persistent cache line per thread holding
	// that thread's head index; recovery takes the maximum.
	localBase pmem.Addr
	per       []ouThread
	// plainStoreLocal replaces the movnti write of the local head
	// index with an ordinary store + flush (the pre-Section-6.3
	// design); ablation only.
	plainStoreLocal bool

	// Ack mode (NewOptUnlinkedQAcked): dequeues become leases. A leased
	// dequeue issues no persist instructions at all; the dequeued node
	// stays durable until AckTo covers its index, and recovery
	// resurrects everything beyond the maximum per-thread *acked* index
	// (the ackBase lines) instead of everything beyond the dequeued
	// frontier — so unacknowledged items are redelivered after a crash
	// and acknowledged items never reappear.
	acked   bool
	ackBase pmem.Addr
	// ackMu guards the in-flight list and the ack frontier. It is
	// uncontended under the one-consumer-per-queue discipline package
	// broker maintains, but keeps concurrent dequeuers (the generic
	// harnesses drive them) coherent.
	ackMu      sync.Mutex
	inflight   []*ouNode // dequeued, unacknowledged; retired only once covered by a durable ack
	ackDurable uint64    // highest acked index covered by a completed fence
}

// ouNode is the Volatile half of a node.
type ouNode struct {
	item  uint64
	index uint64
	next  atomic.Pointer[ouNode]
	pnode pmem.Addr
}

// ouThread keeps one thread's hot dequeue/ack state; the field order
// (uint64s before the bools) plus the tail padding keep the struct at
// exactly one cache line, so adjacent per-thread entries never share a
// line (false sharing would skew the persist-cost measurements).
type ouThread struct {
	nodeToRetire *ouNode
	// pendingRetire accumulates the nodes unlinked by an unfenced batch
	// dequeue; they are handed to the allocator only by CompleteBatch,
	// after the caller's fence made the covering head index durable (a
	// slot reused and overwritten before that fence could lose a message
	// whose dequeue never became durable).
	pendingRetire []*ouNode
	// lastPersisted is the head index this thread most recently made
	// durable (NTStore + completed fence) in its local line. A failing
	// dequeue that observes the same index again elides its persist:
	// re-persisting an already-durable value cannot change what recovery
	// sees, so the empty response stays durably linearized for free.
	lastPersisted uint64
	// pendingIdx is the head index NTStored by an unfenced batch dequeue
	// but not yet covered by a fence; promoted to lastPersisted by
	// CompleteBatch.
	pendingIdx uint64
	// pendingAckIdx is the acked index NTStored into this thread's ack
	// line by an unfenced AckToUnfenced but not yet covered by a fence;
	// promoted (and its in-flight nodes retired) by CompleteAck.
	pendingAckIdx   uint64
	pendingDirty    bool
	pendingAckDirty bool
	_               [6]byte
}

// Persistent node layout.
const (
	ouItem   = pmem.Addr(0)
	ouIndex  = pmem.Addr(8)
	ouLinked = pmem.Addr(16)
)

// NewOptUnlinkedQ creates an empty OptUnlinkedQ.
func NewOptUnlinkedQ(h *pmem.Heap, threads int) *OptUnlinkedQ {
	return NewOptUnlinkedQAs(h, threads, 0)
}

// NewOptUnlinkedQAs creates an empty OptUnlinkedQ, charging the
// construction persists (local-line region, pool registry, dummy node)
// to tid instead of thread 0. Fences are per-thread: a queue created
// while other threads run — a broker topic created on a live system —
// must construct under a tid owned by the constructing goroutine, or
// its fences would race another goroutine's pending-persist state.
func NewOptUnlinkedQAs(h *pmem.Heap, threads, tid int) *OptUnlinkedQ {
	q := &OptUnlinkedQ{
		h:    h,
		pool: newNodePoolAs(h, threads, tid),
		per:  make([]ouThread, threads),
	}
	q.localBase = h.AllocRaw(tid, int64(threads)*pmem.CacheLineBytes, pmem.CacheLineBytes)
	h.InitRange(tid, q.localBase, int64(threads)*pmem.CacheLineBytes)
	h.Store(tid, h.RootAddr(slotLocal), uint64(q.localBase))
	h.Persist(tid, h.RootAddr(slotLocal))

	pn := q.pool.Alloc(tid) // fresh slot: zero index, unset linked
	dummy := &ouNode{pnode: pn}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// NewOptUnlinkedQPlainStore is the Section 6.3 ablation: local head
// indices are written with ordinary stores plus flushes instead of
// non-temporal stores, reintroducing writes to flushed lines.
func NewOptUnlinkedQPlainStore(h *pmem.Heap, threads int) *OptUnlinkedQ {
	q := NewOptUnlinkedQ(h, threads)
	q.plainStoreLocal = true
	return q
}

// NewOptUnlinkedQAcked creates an empty queue in acknowledgment mode:
// a dequeue only leases its item (DequeueLeased, no persist
// instructions at all — durability of the delivery is the caller's
// concern, e.g. a broker lease record), and the item stays in NVRAM
// until an AckTo covering its index is durable. Recovery takes the
// maximum of the per-thread acked indices as the consumption frontier,
// exactly as the plain queue takes the maximum head index, so
// unacknowledged items are redelivered and acknowledged items never
// reappear. Dequeue/DequeueBatch remain usable and acknowledge
// immediately (lease + ack in one step, one fence).
func NewOptUnlinkedQAcked(h *pmem.Heap, threads int) *OptUnlinkedQ {
	return NewOptUnlinkedQAckedAs(h, threads, 0)
}

// NewOptUnlinkedQAckedAs is NewOptUnlinkedQAcked charging construction
// persists to tid (see NewOptUnlinkedQAs).
func NewOptUnlinkedQAckedAs(h *pmem.Heap, threads, tid int) *OptUnlinkedQ {
	q := NewOptUnlinkedQAs(h, threads, tid)
	q.acked = true
	size := int64(threads) * pmem.CacheLineBytes
	q.ackBase = h.AllocRaw(tid, size, pmem.CacheLineBytes)
	h.InitRange(tid, q.ackBase, size)
	h.Store(tid, h.RootAddr(slotAck), uint64(q.ackBase))
	h.Persist(tid, h.RootAddr(slotAck))
	return q
}

// Acked reports whether the queue is in acknowledgment mode.
func (q *OptUnlinkedQ) Acked() bool { return q.acked }

// DequeueLeased removes up to max items without issuing a single
// persist instruction: the dequeued nodes stay durable in NVRAM and
// will be resurrected by recovery until an acknowledgment covers them,
// so across a crash the items are redelivered rather than lost. idxs
// are the items' queue indices (contiguous and ascending under the
// one-consumer-per-queue discipline); pass the last one to AckTo once
// the items are processed. Ack mode only.
func (q *OptUnlinkedQ) DequeueLeased(tid, max int) (vs, idxs []uint64) {
	if !q.acked {
		panic("optunlinkedq: DequeueLeased on a queue without ack mode")
	}
	if max <= 0 {
		return nil, nil
	}
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	var takens []*ouNode
	for len(vs) < max {
		taken, _, ok := q.dequeueOne(tid)
		if !ok {
			break
		}
		// The unlinked previous head is not retired here: it entered the
		// in-flight list when it was dequeued itself (or it is the
		// original dummy, which is simply abandoned). Retirement happens
		// in CompleteAck, once a durable ack covers the node's index —
		// only then can a reused slot's stale contents (linked flag and
		// index surviving a crash mid-reuse) be filtered by recovery.
		vs = append(vs, taken.item)
		idxs = append(idxs, taken.index)
		takens = append(takens, taken)
	}
	if len(takens) > 0 {
		q.ackMu.Lock()
		q.inflight = append(q.inflight, takens...)
		q.ackMu.Unlock()
	}
	return vs, idxs
}

func (q *OptUnlinkedQ) ackLineAddr(tid int) pmem.Addr {
	return q.ackBase + pmem.Addr(tid)*pmem.CacheLineBytes
}

// AckToUnfenced acknowledges every dequeued item with index <= idx:
// one NTStore of idx into tid's ack line. dirty reports whether a
// covering Fence (followed by CompleteAck) is still owed; a redundant
// ack — idx already durably acknowledged — issues nothing and costs
// nothing. Sound for the same reason as the head-index amortization:
// per-thread ack indices are monotone and recovery takes the maximum,
// so the last index covers every earlier one.
func (q *OptUnlinkedQ) AckToUnfenced(tid int, idx uint64) (dirty bool) {
	if !q.acked {
		panic("optunlinkedq: AckToUnfenced on a queue without ack mode")
	}
	t := &q.per[tid]
	q.ackMu.Lock()
	redundant := idx <= q.ackDurable
	q.ackMu.Unlock()
	if redundant {
		return t.pendingAckDirty
	}
	// The soundness argument requires the ack line to be monotone: an
	// unfenced window that already NTStored a covering index must not
	// overwrite it with a lower one (CompleteAck would still promote
	// and retire to the higher index, and a crash would then resurrect
	// slots the durable line no longer filters).
	if t.pendingAckDirty && idx <= t.pendingAckIdx {
		return true
	}
	q.h.NTStore(tid, q.ackLineAddr(tid), idx)
	t.pendingAckIdx = idx
	t.pendingAckDirty = true
	return true
}

// CompleteAck finishes an unfenced acknowledgment after the caller's
// fence: it promotes the acked frontier and retires every in-flight
// node the now-durable ack covers. Slot reuse strictly after the
// covering fence keeps recovery sound: a crash while a reused slot is
// half-written can at worst resurrect the slot's stale contents, whose
// index is <= the durable acked frontier and is therefore filtered.
func (q *OptUnlinkedQ) CompleteAck(tid int) {
	t := &q.per[tid]
	if !t.pendingAckDirty {
		return
	}
	t.pendingAckDirty = false
	q.ackMu.Lock()
	if t.pendingAckIdx > q.ackDurable {
		q.ackDurable = t.pendingAckIdx
	}
	live := q.inflight[:0]
	for _, n := range q.inflight {
		if n.index <= q.ackDurable {
			q.pool.Retire(tid, n.pnode)
		} else {
			live = append(live, n)
		}
	}
	q.inflight = live
	q.ackMu.Unlock()
}

// AckTo is the fenced form of AckToUnfenced: one NTStore plus one
// blocking persist acknowledges the whole batch of items up to idx
// (zero of either when the ack is redundant).
func (q *OptUnlinkedQ) AckTo(tid int, idx uint64) {
	if q.AckToUnfenced(tid, idx) {
		q.h.Fence(tid)
	}
	q.CompleteAck(tid)
}

// AckedTo reports the durably acknowledged index frontier.
func (q *OptUnlinkedQ) AckedTo() uint64 {
	q.ackMu.Lock()
	defer q.ackMu.Unlock()
	return q.ackDurable
}

// Unacked snapshots the dequeued-but-unacknowledged items in index
// order — the redelivery set a lease takeover hands to a new consumer.
// Call only while no dequeue or ack runs on this queue.
func (q *OptUnlinkedQ) Unacked() (vs, idxs []uint64) {
	q.ackMu.Lock()
	defer q.ackMu.Unlock()
	ns := append([]*ouNode(nil), q.inflight...)
	sort.Slice(ns, func(i, j int) bool { return ns[i].index < ns[j].index })
	for _, n := range ns {
		vs = append(vs, n.item)
		idxs = append(idxs, n.index)
	}
	return vs, idxs
}

func (q *OptUnlinkedQ) localHeadIdxAddr(tid int) pmem.Addr {
	return q.localBase + pmem.Addr(tid)*pmem.CacheLineBytes
}

// writeLocalHeadIdx issues the (asynchronous) write of idx into tid's
// persistent local line; a subsequent Fence by the same thread makes
// it durable.
func (q *OptUnlinkedQ) writeLocalHeadIdx(tid int, idx uint64) {
	a := q.localHeadIdxAddr(tid)
	if q.plainStoreLocal {
		q.h.Store(tid, a, idx) // pays NVM read latency once flushed
		q.h.Flush(tid, a)
	} else {
		q.h.NTStore(tid, a, idx) // movnti: bypasses the cache entirely
	}
}

// enqueueOne runs the enqueue protocol of Figure 4 (lines 107-121) up
// to but not including the blocking fence: allocate, write item and
// index, link via CAS, set the linked flag and issue the asynchronous
// flush. It returns the tail observed at link time and the new node so
// the caller can order its fence and tail advance; EnqueueBatch (which
// Enqueue wraps) advances immediately and rides one fence for the
// whole batch.
func (q *OptUnlinkedQ) enqueueOne(tid int, v uint64) (tail, vn *ouNode) {
	h := q.h
	pn := q.pool.Alloc(tid)
	vn = &ouNode{item: v, pnode: pn}
	h.Store(tid, pn+ouItem, v)   // line 112
	h.Store(tid, pn+ouLinked, 0) // line 113
	for {
		tail = q.tail.Load()
		if next := tail.next.Load(); next == nil {
			idx := tail.index + 1                  // volatile read (line 117)
			h.Store(tid, pn+ouIndex, idx)          // Persistent copy
			vn.index = idx                         // Volatile copy (line 118)
			if tail.next.CompareAndSwap(nil, vn) { // line 119
				h.Store(tid, pn+ouLinked, 1) // line 120
				h.Flush(tid, pn)             // line 121
				return tail, vn
			}
		} else {
			q.tail.CompareAndSwap(tail, next) // line 124
		}
	}
}

// Enqueue appends v (Figure 4, lines 107-124): the one-element batch.
// One fence, zero post-flush accesses: the tail's index is read from
// the Volatile object, never from the flushed Persistent line.
func (q *OptUnlinkedQ) Enqueue(tid int, v uint64) {
	q.EnqueueBatch(tid, []uint64{v})
}

// EnqueueBatch appends vs in order, riding a single fence for the
// whole batch: every node is written, linked and asynchronously
// flushed exactly as in Enqueue, but the blocking SFENCE is issued
// once at the end. This amortization is sound because the algorithm
// already tolerates an enqueuer whose node is linked but not yet
// durable — any helper may advance the tail past it and append (and
// fence) later nodes; recovery sorts surviving nodes by index and
// accepts gaps, dropping exactly the unacknowledged enqueues. The
// batch is acknowledged as a whole when EnqueueBatch returns: at that
// point all of its nodes are durable.
func (q *OptUnlinkedQ) EnqueueBatch(tid int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for _, v := range vs {
		tail, vn := q.enqueueOne(tid, v)
		q.tail.CompareAndSwap(tail, vn)
	}
	q.h.Fence(tid) // the batch's single blocking persist
}

// EnqueueBatchUnfenced is the issue phase of EnqueueBatch alone: every
// node is written, linked and asynchronously flushed, but the blocking
// SFENCE is left to the caller. It is the pipelined-persist primitive:
// a producer may issue window N+1 while window N's flushed lines are
// still draining, then pay one fence covering both the residue and the
// new window's lines.
//
// Soundness is the same per-thread ordering argument as EnqueueBatch's:
// a fence by this thread covers *all* its earlier flushes, so a later
// Fence(tid) durably acknowledges every window issued before it, in
// order. Until that fence, the window's nodes are linked but possibly
// not durable — exactly the state any helper already tolerates, and
// recovery drops such nodes as unacknowledged enqueues (it sorts by
// index and accepts gaps). The caller must therefore not report the
// batch as acknowledged until it has issued a covering Fence on this
// queue's heap with the same tid.
func (q *OptUnlinkedQ) EnqueueBatchUnfenced(tid int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for _, v := range vs {
		tail, vn := q.enqueueOne(tid, v)
		q.tail.CompareAndSwap(tail, vn)
	}
}

// dequeueOne runs the dequeue protocol of Figure 4 (lines 90-99) up to
// but not including the blocking persist: CAS the head past the oldest
// node. On success it returns the node holding the dequeued item (now
// the queue's dummy) and the unlinked previous head, whose retirement
// the caller must defer until a covering head index is durable. On an
// empty observation ok is false and taken is the observed head, whose
// index the caller persists (or elides) to durably linearize the empty
// response.
func (q *OptUnlinkedQ) dequeueOne(tid int) (taken, old *ouNode, ok bool) {
	for {
		head := q.head.Load()
		next := head.next.Load()
		if next == nil {
			return head, nil, false
		}
		if q.head.CompareAndSwap(head, next) {
			return next, head, true
		}
	}
}

// retireAfterPersist hands old to the deferred-retirement cell (Figure
// 4, lines 102-105), releasing the previously deferred node. Call only
// after a fence covering old's dequeue.
func (q *OptUnlinkedQ) retireAfterPersist(tid int, old *ouNode) {
	if r := q.per[tid].nodeToRetire; r != nil {
		q.pool.Retire(tid, r.pnode)
	}
	q.per[tid].nodeToRetire = old
}

// Dequeue removes the oldest item (Figure 4, lines 90-106): the
// one-element batch dequeue, so the fence accounting — one NTStore +
// one fence on success, full elision on an already-durable empty
// observation — lives in DequeueBatchUnfenced alone. One fence, zero
// post-flush accesses.
func (q *OptUnlinkedQ) Dequeue(tid int) (uint64, bool) {
	vs := q.DequeueBatch(tid, 1)
	if len(vs) == 0 {
		return 0, false
	}
	return vs[0], true
}

// DequeueBatch removes up to max items in FIFO order, riding a single
// blocking persist for the whole batch: every dequeue CASes the head
// exactly as in Dequeue, but only the final head index is written to
// this thread's local line (one NTStore) and fenced once. The
// amortization is sound because the per-thread head index is monotone
// — recovery takes the maximum over all local lines, so persisting the
// last index covers every earlier one. The batch is acknowledged as a
// whole when DequeueBatch returns, exactly dual to EnqueueBatch: a
// crash mid-batch redelivers (or, if the unfenced NTStore happened to
// land, consumes) only items of the unacknowledged window. An empty
// result means the queue was observed empty.
func (q *OptUnlinkedQ) DequeueBatch(tid, max int) []uint64 {
	if q.acked {
		// Lease + immediate acknowledgment: the batch is processed the
		// moment it is returned, riding the ack's single fence. An empty
		// observation issues nothing — emptiness is durable exactly when
		// the dequeues that emptied the queue are acknowledged.
		vs, idxs := q.DequeueLeased(tid, max)
		if len(vs) > 0 {
			q.AckTo(tid, idxs[len(idxs)-1])
		}
		return vs
	}
	vs, dirty := q.DequeueBatchUnfenced(tid, max)
	if dirty {
		q.h.Fence(tid) // the batch's single blocking persist
		q.CompleteBatch(tid)
	}
	return vs
}

// DequeueBatchUnfenced is DequeueBatch with the blocking persist left
// to the caller, so several queues sharing one heap can ride a single
// fence (package broker drains many shards per poll this way; a fence
// is per-thread and covers all of that thread's outstanding NTStores
// regardless of which line they target). It performs the CASes and the
// one NTStore of the final head index, but neither fences nor retires.
// dirty reports whether an NTStore is outstanding; if so the caller
// must issue a Fence for tid on the same heap and then call
// CompleteBatch before treating the items (or the empty observation)
// as durable. No other operation may run on this queue with this tid
// in between.
func (q *OptUnlinkedQ) DequeueBatchUnfenced(tid, max int) (vs []uint64, dirty bool) {
	if q.acked {
		panic("optunlinkedq: DequeueBatchUnfenced on an acked queue (use DequeueLeased/AckTo)")
	}
	if max <= 0 {
		return nil, q.per[tid].pendingDirty
	}
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	t := &q.per[tid]
	var last *ouNode
	for len(vs) < max {
		taken, old, ok := q.dequeueOne(tid)
		if !ok {
			if last == nil {
				// Pure empty observation: persist the observed index
				// unless it is already durable or already NTStored.
				if taken.index > t.lastPersisted && !(t.pendingDirty && taken.index <= t.pendingIdx) {
					q.writeLocalHeadIdx(tid, taken.index)
					t.pendingIdx = taken.index
					t.pendingDirty = true
				}
				return nil, t.pendingDirty
			}
			break
		}
		vs = append(vs, taken.item)
		t.pendingRetire = append(t.pendingRetire, old)
		last = taken
	}
	q.writeLocalHeadIdx(tid, last.index) // one NTStore covers the batch
	t.pendingIdx = last.index
	t.pendingDirty = true
	return vs, true
}

// CompleteBatch finishes an unfenced batch dequeue after the caller's
// fence: it promotes the pending head index to lastPersisted and
// retires the unlinked nodes in one sweep (keeping the newest in the
// deferred cell, as in Dequeue).
func (q *OptUnlinkedQ) CompleteBatch(tid int) {
	t := &q.per[tid]
	if t.pendingDirty {
		t.lastPersisted = t.pendingIdx
		t.pendingDirty = false
	}
	for _, old := range t.pendingRetire {
		q.retireAfterPersist(tid, old)
	}
	t.pendingRetire = t.pendingRetire[:0]
}

// RecoverOptUnlinkedQ rebuilds the queue after a crash (Section 6.1).
// The head index is the maximum of the per-thread head indices; every
// Persistent object marked linked with a larger index is resurrected;
// matching Volatile objects are materialized and chained in index
// order.
func RecoverOptUnlinkedQ(h *pmem.Heap, threads int) *OptUnlinkedQ {
	if pmem.Addr(h.Load(0, h.RootAddr(slotAck))) != 0 {
		panic("optunlinkedq: queue was created in ack mode; use RecoverOptUnlinkedQAcked")
	}
	localBase := pmem.Addr(h.Load(0, h.RootAddr(slotLocal)))
	perThread := make([]ouThread, threads)
	var headIdx uint64
	for t := 0; t < threads; t++ {
		v := h.Load(0, localBase+pmem.Addr(t)*pmem.CacheLineBytes)
		// Seed the elision cache with what this thread provably
		// persisted before the crash; its next failing dequeue at a
		// higher index will persist again.
		perThread[t].lastPersisted = v
		if v > headIdx {
			headIdx = v
		}
	}
	return recoverOptUnlinked(h, threads, headIdx, perThread)
}

// RecoverOptUnlinkedQAcked rebuilds an ack-mode queue after a crash.
// The consumption frontier is the maximum of the per-thread *acked*
// indices, so every linked node beyond it — including items that were
// leased out and possibly delivered, but never acknowledged — is
// resurrected for redelivery. Acknowledged items never reappear.
func RecoverOptUnlinkedQAcked(h *pmem.Heap, threads int) *OptUnlinkedQ {
	ackBase := pmem.Addr(h.Load(0, h.RootAddr(slotAck)))
	if ackBase == 0 {
		panic("optunlinkedq: RecoverOptUnlinkedQAcked on a heap holding no ack-mode queue")
	}
	var ackIdx uint64
	for t := 0; t < threads; t++ {
		if v := h.Load(0, ackBase+pmem.Addr(t)*pmem.CacheLineBytes); v > ackIdx {
			ackIdx = v
		}
	}
	q := recoverOptUnlinked(h, threads, ackIdx, make([]ouThread, threads))
	q.acked = true
	q.ackBase = ackBase
	q.ackDurable = ackIdx
	return q
}

// recoverOptUnlinked is the shared recovery body: resurrect every
// linked Persistent object whose index exceeds the given frontier and
// chain the matching Volatile objects in index order.
func recoverOptUnlinked(h *pmem.Heap, threads int, headIdx uint64, perThread []ouThread) *OptUnlinkedQ {
	localBase := pmem.Addr(h.Load(0, h.RootAddr(slotLocal)))
	type rec struct {
		addr pmem.Addr
		idx  uint64
	}
	var live []rec
	pool := recoverNodePool(h, threads, func(a pmem.Addr) bool {
		if h.Load(0, a+ouLinked) == 1 && h.Load(0, a+ouIndex) > headIdx {
			live = append(live, rec{a, h.Load(0, a+ouIndex)})
			return true
		}
		return false
	})
	sort.Slice(live, func(i, j int) bool { return live[i].idx < live[j].idx })
	for i := 1; i < len(live); i++ {
		if live[i].idx == live[i-1].idx {
			panic(fmt.Sprintf("optunlinkedq recovery: duplicate index %d", live[i].idx))
		}
	}

	q := &OptUnlinkedQ{h: h, pool: pool, localBase: localBase, per: perThread}
	dummyPn := pool.Alloc(0)
	h.Store(0, dummyPn+ouLinked, 0)
	h.Store(0, dummyPn+ouIndex, headIdx)
	dummy := &ouNode{index: headIdx, pnode: dummyPn}
	prev := dummy
	for _, r := range live {
		vn := &ouNode{
			item:  h.Load(0, r.addr+ouItem),
			index: r.idx,
			pnode: r.addr,
		}
		prev.next.Store(vn)
		prev = vn
	}
	q.head.Store(dummy)
	q.tail.Store(prev)
	return q
}
