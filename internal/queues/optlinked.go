package queues

import (
	"sort"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// OptLinkedQ is the second-amendment queue of Sections 6.2-6.3 and
// Appendix C (Figures 5-6): one blocking persist per operation and
// zero accesses to explicitly flushed content, with persisted
// backward links.
//
// Recovery walks backward from a recorded tail candidate through the
// Persistent pred links, validating that indices decrease
// consecutively, until it reaches the node succeeding the dummy
// (head index + 1). Tail candidates come from per-thread lastEnqueues
// records: each thread keeps its last and penultimate enqueued node
// (address + index, both carrying a valid bit so a torn non-temporal
// write is detected). The penultimate record is what makes the rare
// all-threads-mid-enqueue crash recoverable (Section 6.2).
//
// Persistent node layout: [item, pred, index]; index is written last
// so, under Assumption 1, a non-stale index proves the whole line is
// non-stale.
type OptLinkedQ struct {
	h    *pmem.Heap
	pool *ssmem.Pool
	head atomic.Pointer[olNode]
	tail atomic.Pointer[olNode]
	// localBase anchors two persistent lines per thread: line 0 holds
	// the head index, line 1 the two lastEnqueues cells. Both are
	// written exclusively with non-temporal stores.
	localBase pmem.Addr
	per       []olThread
}

// olNode is the Volatile half of a node.
type olNode struct {
	item  uint64
	index uint64
	next  atomic.Pointer[olNode]
	pred  atomic.Pointer[olNode]
	pnode pmem.Addr
}

type olThread struct {
	nodeToRetire *olNode
	lastEnqIdx   int    // which lastEnqueues cell the next enqueue writes
	validBit     uint64 // valid bit for the next cell write
	_            [40]byte
}

// Persistent node layout.
const (
	olItem  = pmem.Addr(0)
	olPred  = pmem.Addr(8)
	olIndex = pmem.Addr(16)
)

const (
	olLinesPerThread = 2
	olIdxValidShift  = 63
)

// NewOptLinkedQ creates an empty OptLinkedQ.
func NewOptLinkedQ(h *pmem.Heap, threads int) *OptLinkedQ {
	q := &OptLinkedQ{
		h:    h,
		pool: newNodePool(h, threads),
		per:  make([]olThread, threads),
	}
	size := int64(threads) * olLinesPerThread * pmem.CacheLineBytes
	q.localBase = h.AllocRaw(0, size, pmem.CacheLineBytes)
	h.InitRange(0, q.localBase, size)
	h.Store(0, h.RootAddr(slotLocal), uint64(q.localBase))
	h.Persist(0, h.RootAddr(slotLocal))
	for t := range q.per {
		q.per[t].validBit = 1 // distinguishes first writes from zeroed cells
	}
	pn := q.pool.Alloc(0)
	dummy := &olNode{pnode: pn}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

func (q *OptLinkedQ) headIdxAddr(tid int) pmem.Addr {
	return q.localBase + pmem.Addr(tid*olLinesPerThread)*pmem.CacheLineBytes
}

func (q *OptLinkedQ) cellAddr(tid, cell int) pmem.Addr {
	return q.headIdxAddr(tid) + pmem.CacheLineBytes + pmem.Addr(cell*16)
}

// persistLocalHeadIdx writes tid's head index with movnti and fences.
func (q *OptLinkedQ) persistLocalHeadIdx(tid int, idx uint64) {
	q.h.NTStore(tid, q.headIdxAddr(tid), idx)
	q.h.Fence(tid)
}

// flushNotPersistedSuffix implements Figure 6 lines 153-159: walk the
// Volatile pred chain, flushing each node's Persistent half, until a
// nil pred marks the already-persisted prefix. All reads are from
// Volatile objects — no flushed line is ever accessed.
func (q *OptLinkedQ) flushNotPersistedSuffix(tid int, n *olNode) {
	for {
		pred := n.pred.Load()
		if pred == nil {
			return
		}
		q.h.Flush(tid, n.pnode)
		n = pred
	}
}

// recordLastEnqueue implements Figure 6 lines 164-169: record the
// newly enqueued Persistent node in the thread's alternating
// lastEnqueues cell with matching valid bits in the pointer's LSB and
// the index's MSB, using non-temporal stores.
func (q *OptLinkedQ) recordLastEnqueue(tid int, vn *olNode) {
	ld := &q.per[tid]
	i := ld.lastEnqIdx
	q.h.NTStore(tid, q.cellAddr(tid, i), uint64(vn.pnode)|ld.validBit)
	q.h.NTStore(tid, q.cellAddr(tid, i)+8, vn.index|ld.validBit<<olIdxValidShift)
	ld.validBit ^= uint64(i) // flip the valid bit after writing cell 1
	ld.lastEnqIdx ^= 1
}

// Enqueue appends v (Figure 6, lines 170-191). One fence, zero
// post-flush accesses.
func (q *OptLinkedQ) Enqueue(tid int, v uint64) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	pn := q.pool.Alloc(tid)
	vn := &olNode{item: v, pnode: pn}
	h.Store(tid, pn+olItem, v) // line 175
	for {
		tail := q.tail.Load()
		if next := tail.next.Load(); next == nil {
			vn.pred.Store(tail)                         // line 179
			vn.index = tail.index + 1                   // line 180
			h.Store(tid, pn+olPred, uint64(tail.pnode)) // line 181
			h.Store(tid, pn+olIndex, vn.index)          // line 182: index last
			if tail.next.CompareAndSwap(nil, vn) {      // line 183
				q.tail.CompareAndSwap(tail, vn) // line 184
				q.flushNotPersistedSuffix(tid, vn)
				q.recordLastEnqueue(tid, vn)
				h.Fence(tid) // line 187: the single fence
				// All nodes up to vn are persistent; cut the Volatile
				// backward link so later walks stop here (line 189).
				vn.pred.Store(nil)
				return
			}
		} else {
			q.tail.CompareAndSwap(tail, next) // line 191
		}
	}
}

// Dequeue removes the oldest item (Figure 5, lines 135-152). One
// fence, zero post-flush accesses.
func (q *OptLinkedQ) Dequeue(tid int) (uint64, bool) {
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for {
		head := q.head.Load()
		next := head.next.Load()
		if next == nil {
			q.persistLocalHeadIdx(tid, head.index) // lines 140-141
			return 0, false
		}
		if q.head.CompareAndSwap(head, next) {
			v := next.item
			q.persistLocalHeadIdx(tid, next.index) // lines 145-146
			// Make the old dummy unreachable by backward walks before
			// recycling it (line 147).
			next.pred.Store(nil)
			if r := q.per[tid].nodeToRetire; r != nil {
				q.pool.Retire(tid, r.pnode) // lines 148-150
			}
			q.per[tid].nodeToRetire = head // line 151
			return v, true
		}
	}
}

// olCandidate is one potential recovery tail gathered from a
// lastEnqueues cell.
type olCandidate struct {
	ptr pmem.Addr
	idx uint64
	tid int
	bit uint64 // the cell's valid bit
}

// RecoverOptLinkedQ rebuilds the queue after a crash (Appendix C.3).
func RecoverOptLinkedQ(h *pmem.Heap, threads int) *OptLinkedQ {
	localBase := pmem.Addr(h.Load(0, h.RootAddr(slotLocal)))
	headIdxAddr := func(t int) pmem.Addr {
		return localBase + pmem.Addr(t*olLinesPerThread)*pmem.CacheLineBytes
	}
	cellAddr := func(t, c int) pmem.Addr {
		return headIdxAddr(t) + pmem.CacheLineBytes + pmem.Addr(c*16)
	}

	var headIdx uint64
	for t := 0; t < threads; t++ {
		if v := h.Load(0, headIdxAddr(t)); v > headIdx {
			headIdx = v
		}
	}

	// Gather valid tail candidates: matching valid bits, non-nil
	// pointer, index beyond the recovered head.
	poolCfg := ssmem.Config{SlotBytes: nodeSize, SlotsPerArea: 4096, Threads: threads, RootSlot: slotPool}
	areas := ssmem.Areas(h, poolCfg)
	var cands []olCandidate
	cellOf := map[olCandidate][2]int{} // candidate -> (tid, cell)
	for t := 0; t < threads; t++ {
		for c := 0; c < 2; c++ {
			pw := h.Load(0, cellAddr(t, c))
			iw := h.Load(0, cellAddr(t, c)+8)
			vbP := pw & 1
			vbI := iw >> olIdxValidShift
			ptr := pmem.Addr(pw &^ 1)
			idx := iw &^ (1 << olIdxValidShift)
			if vbP == vbI && ptr != 0 && idx > headIdx {
				cand := olCandidate{ptr: ptr, idx: idx, tid: t, bit: vbP}
				cands = append(cands, cand)
				cellOf[cand] = [2]int{t, c}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].idx > cands[j].idx })

	// Try candidates from the largest index down until a backward
	// walk with consecutive indices reaches headIdx+1.
	var chain []pmem.Addr // tail first
	var chosen *olCandidate
	for ci := range cands {
		c := cands[ci]
		var walk []pmem.Addr
		cur, expect := c.ptr, c.idx
		ok := true
		for {
			if !ssmem.ValidSlot(areas, nodeSize, cur) || h.Load(0, cur+olIndex) != expect {
				ok = false
				break
			}
			walk = append(walk, cur)
			if expect == headIdx+1 {
				break
			}
			cur = pmem.Addr(h.Load(0, cur+olPred))
			expect--
			if cur == 0 {
				ok = false
				break
			}
		}
		if ok {
			chain = walk
			chosen = &cands[ci]
			break
		}
	}

	liveSet := make(map[pmem.Addr]bool, len(chain))
	for _, a := range chain {
		liveSet[a] = true
	}
	pool := ssmem.RecoverPool(h, poolCfg, func(a pmem.Addr) bool {
		if liveSet[a] {
			return true
		}
		// Zero the index of stale mid-enqueue nodes so a future
		// recovery cannot mistake them for part of a chain.
		if h.Load(0, a+olIndex) > headIdx {
			h.Store(0, a+olIndex, 0)
			h.Flush(0, a)
		}
		return false
	})

	q := &OptLinkedQ{h: h, pool: pool, localBase: localBase, per: make([]olThread, threads)}
	dummyPn := pool.Alloc(0)
	h.Store(0, dummyPn+olIndex, headIdx)
	dummy := &olNode{index: headIdx, pnode: dummyPn}
	prev := dummy
	for i := len(chain) - 1; i >= 0; i-- { // chain is tail-first
		a := chain[i]
		vn := &olNode{
			item:  h.Load(0, a+olItem),
			index: h.Load(0, a+olIndex),
			pnode: a,
		}
		prev.next.Store(vn)
		if prev != dummy {
			vn.pred.Store(prev)
		}
		prev = vn
	}
	// The last Volatile object's pred stays nil: everything recovered
	// is persistent, so enqueue walks must stop at the tail.
	prev.pred.Store(nil)
	q.head.Store(dummy)
	q.tail.Store(prev)

	// Reset lastEnqueues cells (Appendix C.3): threads without a valid
	// record of the recovered tail get both cells zeroed, index 0 and
	// valid bit 1. The thread owning the recovered tail keeps that
	// cell; its next write to it must use the opposite valid bit.
	for t := 0; t < threads; t++ {
		ld := &q.per[t]
		if chosen != nil && chosen.tid == t {
			keep := cellOf[*chosen][1]
			other := keep ^ 1
			h.NTStore(0, cellAddr(t, other), 0)
			h.NTStore(0, cellAddr(t, other)+8, 0)
			ld.lastEnqIdx = other
			if keep == 0 {
				ld.validBit = chosen.bit
			} else {
				ld.validBit = chosen.bit ^ 1
			}
			continue
		}
		for c := 0; c < 2; c++ {
			h.NTStore(0, cellAddr(t, c), 0)
			h.NTStore(0, cellAddr(t, c)+8, 0)
		}
		ld.lastEnqIdx = 0
		ld.validBit = 1
	}
	h.Fence(0)
	return q
}
