package queues

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// TestDurableMSQFullFenceCounts pins the cost of the detectable
// version: two fences per enqueue and three per dequeue — the
// "additional cost" Section 10 mentions.
func TestDurableMSQFullFenceCounts(t *testing.T) {
	in, _ := Lookup("durable-msq-full")
	enq, deq, empty := opStats(t, in)
	if enq.Fences != 200 {
		t.Errorf("enqueue fences = %d per 100 ops, want 200", enq.Fences)
	}
	if deq.Fences != 300 {
		t.Errorf("dequeue fences = %d per 100 ops, want 300", deq.Fences)
	}
	if empty.Fences != 200 {
		t.Errorf("failing dequeue fences = %d per 100 ops, want 200", empty.Fences)
	}
}

// TestDurableMSQFullRecoversPendingResult: a dequeue cut by a crash
// after its durable claim must be reported by recovery with the exact
// value it obtained, and that value must not also reappear in the
// queue.
func TestDurableMSQFullRecoversPendingResult(t *testing.T) {
	// Sweep crash points across a single dequeue; at every point the
	// recovery outcome must be consistent: either the dequeue never
	// claimed (value still queued, no result) or it claimed (value
	// gone, result reported).
	for crashAt := int64(1); crashAt < 60; crashAt++ {
		h := pmem.New(pmem.Config{Bytes: 8 << 20, Mode: pmem.ModeCrash, MaxThreads: 3})
		q := NewDurableMSQFull(h, 2)
		q.Enqueue(0, 41)
		q.Enqueue(0, 42)
		h.ScheduleCrashAtAccess(crashAt)
		var returned bool
		crashed := pmem.Protect(func() {
			if v, ok := q.Dequeue(1); !ok || v != 41 {
				t.Fatalf("crashAt %d: dequeue returned (%d,%v)", crashAt, v, ok)
			}
			returned = true
		})
		if !crashed {
			h.CrashNow()
		}
		h.FinalizeCrash(rand.New(rand.NewSource(crashAt)))
		h.Restart()
		rq, results := RecoverDurableMSQFull(h, 2)
		rest := drain(rq, 0)

		res := results[1]
		if returned {
			// Completed dequeue: 41 must be gone, and since the
			// result cell is durable before completion the result
			// must be reported.
			if res.State != "value" || res.Value != 41 {
				t.Fatalf("crashAt %d: completed dequeue result not recovered: %+v", crashAt, res)
			}
			if !sliceEq(rest, []uint64{42}) {
				t.Fatalf("crashAt %d: queue after completed dequeue = %v", crashAt, rest)
			}
			continue
		}
		switch res.State {
		case "value":
			// The dequeue is linearized: value consumed exactly once.
			if res.Value != 41 {
				t.Fatalf("crashAt %d: recovered result = %d, want 41", crashAt, res.Value)
			}
			if !sliceEq(rest, []uint64{42}) {
				t.Fatalf("crashAt %d: value both reported and queued: %v", crashAt, rest)
			}
		case "none", "pending-not-linearized":
			// Not linearized: the value must still be in the queue.
			if !sliceEq(rest, []uint64{41, 42}) {
				t.Fatalf("crashAt %d: state %q but queue = %v", crashAt, res.State, rest)
			}
		default:
			t.Fatalf("crashAt %d: unexpected outcome %+v (queue %v)", crashAt, res, rest)
		}
	}
}

// TestDurableMSQFullResultsPerThread: concurrent claimed dequeues cut
// by a crash are attributed to the right threads.
func TestDurableMSQFullResultsPerThread(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 8 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	q := NewDurableMSQFull(h, 3)
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(0, i*100)
	}
	// Two sequential dequeues by different threads, then crash before
	// any further progress: both results must be recoverable because
	// claims are durable before each dequeue returns.
	a, _ := q.Dequeue(1)
	b, _ := q.Dequeue(2)
	q.Dequeue(0) // and an emptiness probe result... (queue non-empty)
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(5)))
	h.Restart()
	_, results := RecoverDurableMSQFull(h, 3)
	if results[1].State != "value" || results[1].Value != a {
		t.Fatalf("tid1 outcome %+v, want value %d", results[1], a)
	}
	if results[2].State != "value" || results[2].Value != b {
		t.Fatalf("tid2 outcome %+v, want value %d", results[2], b)
	}
	if results[0].State != "value" {
		t.Fatalf("tid0 outcome %+v, want a value", results[0])
	}
}

// TestDurableMSQFullEmptyOutcome: a failing dequeue's outcome is
// recoverable as "empty".
func TestDurableMSQFullEmptyOutcome(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 8 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	q := NewDurableMSQFull(h, 1)
	q.Enqueue(0, 1)
	q.Dequeue(0)
	q.Dequeue(0) // fails: empty
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(6)))
	h.Restart()
	_, results := RecoverDurableMSQFull(h, 1)
	if results[0].State != "empty" {
		t.Fatalf("outcome %+v, want empty", results[0])
	}
}
