//go:build race

package queues

// raceEnabled trims the heaviest randomized tests when the race
// detector (which slows the simulator an order of magnitude) is on;
// coverage breadth is kept, only iteration counts shrink.
const raceEnabled = true
