package queues

import (
	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// DurableMSQ is the paper's baseline: the durable lock-free queue of
// Friedman, Herlihy, Marathe and Petrank (PPoPP 2018) with the
// returned-values mechanism removed, exactly as the paper does for a
// fair comparison ("a thinner version of the original durable queue
// that executes faster, a version we denote DurableMSQ", Section 10).
//
// Persist placement:
//
//   - Enqueue persists the new node before linking it (so any
//     reachable node has durable content), then persists the link
//     after a successful CAS, before advancing the tail: two fences
//     per enqueue. Helping an obstructing enqueue also persists the
//     observed link before advancing the tail, so a node reachable
//     via Tail always sits on a fully persisted chain.
//   - Dequeue persists the head after advancing it (one fence), and a
//     failing dequeue persists the head before returning so that the
//     dequeues that emptied the queue survive.
//
// Recovery simply walks the persisted head's next chain.
type DurableMSQ struct {
	h            *pmem.Heap
	pool         *ssmem.Pool
	headA        pmem.Addr
	tailA        pmem.Addr
	nodeToRetire []paddedAddr
}

// NewDurableMSQ creates an empty DurableMSQ.
func NewDurableMSQ(h *pmem.Heap, threads int) *DurableMSQ {
	q := &DurableMSQ{
		h:            h,
		pool:         newNodePool(h, threads),
		headA:        h.RootAddr(slotHead),
		tailA:        h.RootAddr(slotTail),
		nodeToRetire: make([]paddedAddr, threads),
	}
	dummy := q.pool.Alloc(0)
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.tailA, uint64(dummy))
	h.Flush(0, dummy)
	h.Flush(0, q.headA)
	h.Fence(0)
	return q
}

// RecoverDurableMSQ rebuilds the queue from the NVRAM image after a
// crash: the persisted head is trusted (every completed dequeue
// persisted it before returning) and the persisted next chain is
// walked to its end. Nodes on the chain always carry durable content
// because enqueuers persist a node before linking it.
func RecoverDurableMSQ(h *pmem.Heap, threads int) *DurableMSQ {
	headA := h.RootAddr(slotHead)
	head := pmem.Addr(h.Load(0, headA))
	reach := map[pmem.Addr]bool{}
	cur := head
	for {
		reach[cur] = true
		next := pmem.Addr(h.Load(0, cur+offNext))
		if next == 0 {
			break
		}
		cur = next
	}
	pool := recoverNodePool(h, threads, func(a pmem.Addr) bool { return reach[a] })
	// Clear any stale next pointer beyond the chain end (the word is
	// zero already by construction) and reset the volatile tail.
	h.Store(0, h.RootAddr(slotTail), uint64(cur))
	return &DurableMSQ{
		h:            h,
		pool:         pool,
		headA:        headA,
		tailA:        h.RootAddr(slotTail),
		nodeToRetire: make([]paddedAddr, threads),
	}
}

// Enqueue appends v using two blocking persist operations.
func (q *DurableMSQ) Enqueue(tid int, v uint64) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	n := q.pool.Alloc(tid)
	h.Store(tid, n+offItem, v)
	h.Store(tid, n+offNext, 0)
	h.Flush(tid, n)
	h.Fence(tid) // fence 1: node durable before it can become reachable
	for {
		tail := pmem.Addr(h.Load(tid, q.tailA))
		next := h.Load(tid, tail+offNext)
		if next == 0 {
			if h.CAS(tid, tail+offNext, 0, uint64(n)) {
				h.Flush(tid, tail+offNext)
				h.Fence(tid) // fence 2: link durable before completing
				h.CAS(tid, q.tailA, uint64(tail), uint64(n))
				return
			}
		} else {
			// Help: persist the obstructing link before advancing the
			// tail past it, as in the original algorithm.
			h.Flush(tid, tail+offNext)
			h.Fence(tid)
			h.CAS(tid, q.tailA, uint64(tail), next)
		}
	}
}

// Dequeue removes the oldest item using one blocking persist.
func (q *DurableMSQ) Dequeue(tid int) (uint64, bool) {
	h := q.h
	q.pool.Enter(tid)
	defer q.pool.Exit(tid)
	for {
		head := pmem.Addr(h.Load(tid, q.headA))
		next := h.Load(tid, head+offNext)
		if next == 0 {
			h.Flush(tid, q.headA)
			h.Fence(tid)
			return 0, false
		}
		if h.CAS(tid, q.headA, uint64(head), next) {
			v := h.Load(tid, pmem.Addr(next)+offItem)
			h.Flush(tid, q.headA)
			h.Fence(tid)
			if r := q.nodeToRetire[tid].v; r != 0 {
				q.pool.Retire(tid, r)
			}
			q.nodeToRetire[tid].v = head
			return v, true
		}
	}
}
