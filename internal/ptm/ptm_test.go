package ptm

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/qtest"
)

func TestPTMSemantics(t *testing.T) {
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) { qtest.RunSemantics(t, in) })
	}
}

func TestPTMConcurrent(t *testing.T) {
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) { qtest.RunConcurrent(t, in, 4, 2000) })
	}
}

func TestPTMCrashRecovery(t *testing.T) {
	for _, in := range All() {
		t.Run(in.Name, func(t *testing.T) { qtest.RunCrashRecovery(t, in, 4) })
	}
}

// TestOneFileReplayIdempotent forces a crash between commit and
// in-place apply and checks that recovery replays the committed
// transaction exactly once.
func TestOneFileReplayIdempotent(t *testing.T) {
	// Enumerate crash points across a whole enqueue transaction; for
	// each, recovery must yield either the pre- or post-transaction
	// state, and committed => post.
	for crashAt := int64(1); crashAt < 200; crashAt += 3 {
		h := pmem.New(pmem.Config{Bytes: 16 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
		q := NewOneFileQ(h, 1)
		q.Enqueue(0, 1)
		h.ScheduleCrashAtAccess(crashAt)
		crashed := pmem.Protect(func() { q.Enqueue(0, 2) })
		if !crashed {
			// The whole op completed before the crash point: state
			// must be exactly [1,2].
			h.CrashNow()
		}
		h.FinalizeCrash(rand.New(rand.NewSource(crashAt)))
		h.Restart()
		rq := RecoverOneFileQ(h, 1)
		got := qtest.Drain(rq, 0)
		want2 := len(got) == 2 && got[0] == 1 && got[1] == 2
		want1 := len(got) == 1 && got[0] == 1
		if crashed {
			if !want1 && !want2 {
				t.Fatalf("crashAt %d: recovered %v, want [1] or [1 2]", crashAt, got)
			}
		} else if !want2 {
			t.Fatalf("crashAt %d (completed): recovered %v, want [1 2]", crashAt, got)
		}
	}
}

// TestRedoOptCheckpointCrossing runs enough operations to force ring
// truncation checkpoints and verifies recovery around them.
func TestRedoOptCheckpointCrossing(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 16 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	q := newRedoOptQ(h, 64 /* tiny log to force checkpoints */, 1<<12)
	var model []uint64
	next := uint64(1)
	rng := rand.New(rand.NewSource(3))
	for op := 0; op < 1000; op++ {
		if rng.Intn(3) < 2 {
			q.Enqueue(0, next)
			model = append(model, next)
			next++
		} else if _, ok := q.Dequeue(0); ok {
			model = model[1:]
		}
	}
	if q.snapSeq == 0 {
		t.Fatal("test did not exercise a checkpoint")
	}
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(11)))
	h.Restart()
	rq := RecoverRedoOptQ(h, 1)
	got := qtest.Drain(rq, 0)
	if len(got) != len(model) {
		t.Fatalf("recovered %d items, want %d", len(got), len(model))
	}
	for i := range got {
		if got[i] != model[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], model[i])
		}
	}
}

// TestRedoOptCrashDuringCheckpoint schedules crashes inside the
// checkpoint path and verifies both header generations recover.
func TestRedoOptCrashDuringCheckpoint(t *testing.T) {
	for crashAt := int64(1); crashAt < 600; crashAt += 7 {
		h := pmem.New(pmem.Config{Bytes: 16 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
		q := newRedoOptQ(h, 16, 1<<10)
		var model []uint64
		for i := uint64(1); i <= 10; i++ { // fill below the log cap
			q.Enqueue(0, i)
			model = append(model, i)
		}
		// The next enqueues cross the checkpoint boundary; crash
		// somewhere inside.
		h.ScheduleCrashAtAccess(crashAt)
		completed := uint64(10) // values 1..10 completed before the crash was armed
		pmem.Protect(func() {
			for i := uint64(11); i <= 20; i++ {
				q.Enqueue(0, i)
				completed = i
			}
		})
		if !h.Crashed() {
			h.CrashNow()
		}
		h.FinalizeCrash(rand.New(rand.NewSource(crashAt)))
		h.Restart()
		rq := RecoverRedoOptQ(h, 1)
		got := qtest.Drain(rq, 0)
		// All completed enqueues must survive; the one pending
		// enqueue may or may not.
		wantMin := int(completed) // values 1..completed
		if len(got) < wantMin || len(got) > wantMin+1 {
			t.Fatalf("crashAt %d: recovered %d items, want %d or %d", crashAt, len(got), wantMin, wantMin+1)
		}
		for i, v := range got {
			if v != uint64(i+1) {
				t.Fatalf("crashAt %d: item %d = %d, want %d", crashAt, i, v, i+1)
			}
		}
	}
}
