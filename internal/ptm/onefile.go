// Package ptm provides the two persistent-transactional-memory-backed
// queues the paper compares against (Section 10): OneFileQ and
// RedoOptQ. Both wrap a sequential queue in a PTM engine.
//
// The engines are simplified re-implementations that preserve the
// evaluation-relevant property — per-operation transaction overhead
// (logging, extra persists, serialization) on top of a short queue
// operation — but not the progress guarantees of the originals:
//
//   - OneFile (Ramalhete et al., DSN 2019) is wait-free via helping;
//     our OneFileQ serializes writers with a lock over a redo log that
//     is persisted, committed, and applied in place (3 fences per
//     update transaction).
//   - RedoOpt (Correia et al., EuroSys 2020) is a universal
//     construction with volatile replicas; our RedoOptQ keeps a
//     volatile replica and persists one self-sealing log record per
//     update (1 fence), with snapshot-based log truncation.
//
// DESIGN.md documents these substitutions.
package ptm

import (
	"sync"

	"repro/internal/pmem"
	"repro/internal/queues"
	"repro/internal/ssmem"
)

// Root-slot convention for PTM queues (disjoint from the node-queue
// slots only in meaning; a heap hosts one queue at a time).
const (
	slotHead = 0
	slotTail = 1
	slotPool = 2
	slotTx   = 4
)

// OneFile log geometry.
const (
	ofMaxWrites = 16
	// line 0: commit marker; line 1: txid + count; then entry lines
	// holding (addr, val) pairs, four pairs per line.
	ofCommitOff  = pmem.Addr(0)
	ofTxidOff    = pmem.Addr(64)
	ofCountOff   = pmem.Addr(72)
	ofEntriesOff = pmem.Addr(128)
	ofRegionSize = int64(128 + ofMaxWrites*16)
)

// OneFileQ is a FIFO queue whose every update runs as a redo-logged
// persistent transaction: the write set is persisted to a log, a
// commit record is persisted, and the writes are applied in place and
// persisted — three blocking persists per update. Writers serialize.
type OneFileQ struct {
	h     *pmem.Heap
	pool  *ssmem.Pool
	mu    sync.Mutex
	txA   pmem.Addr
	headA pmem.Addr
	tailA pmem.Addr
	txid  uint64
}

const (
	offItem = pmem.Addr(0)
	offNext = pmem.Addr(8)
)

// NewOneFileQ creates an empty OneFileQ.
func NewOneFileQ(h *pmem.Heap, threads int) *OneFileQ {
	q := &OneFileQ{
		h:     h,
		headA: h.RootAddr(slotHead),
		tailA: h.RootAddr(slotTail),
		pool: ssmem.NewPool(h, ssmem.Config{
			SlotBytes: pmem.CacheLineBytes, SlotsPerArea: 4096,
			Threads: threads, RootSlot: slotPool,
		}),
	}
	size := (ofRegionSize + pmem.CacheLineBytes - 1) &^ (pmem.CacheLineBytes - 1)
	q.txA = h.AllocRaw(0, size, pmem.CacheLineBytes)
	h.InitRange(0, q.txA, size)
	h.Store(0, h.RootAddr(slotTx), uint64(q.txA))
	h.Persist(0, h.RootAddr(slotTx))

	dummy := q.pool.Alloc(0)
	h.Store(0, q.headA, uint64(dummy))
	h.Store(0, q.tailA, uint64(dummy))
	h.Flush(0, dummy)
	h.Flush(0, q.headA)
	h.Flush(0, q.tailA)
	h.Fence(0)
	return q
}

// RecoverOneFileQ reopens the queue after a crash: if the persisted
// log holds a committed-but-possibly-unapplied transaction it is
// replayed (redo entries are absolute, so replay is idempotent), then
// the queue chain is walked to rebuild allocator state.
func RecoverOneFileQ(h *pmem.Heap, threads int) *OneFileQ {
	txA := pmem.Addr(h.Load(0, h.RootAddr(slotTx)))
	commit := h.Load(0, txA+ofCommitOff)
	txid := h.Load(0, txA+ofTxidOff)
	if commit != 0 && commit == txid {
		// The log may still be torn: a crash while transaction T+1
		// was overwriting it can leave commit==txid==T with a mix of
		// T's and T+1's entry words evicted to NVRAM. Every entry's
		// address word carries the owning txid in its high bits and
		// is written before the value word, so validating all tags
		// against the commit marker before applying anything rejects
		// any such mix (in which case T was already fully applied).
		count := h.Load(0, txA+ofCountOff)
		valid := count <= ofMaxWrites
		if valid {
			for i := uint64(0); i < count; i++ {
				w0 := h.Load(0, txA+ofEntriesOff+pmem.Addr(i*16))
				if w0>>32 != commit&0xffffffff {
					valid = false
					break
				}
			}
		}
		if valid {
			for i := uint64(0); i < count; i++ {
				ea := txA + ofEntriesOff + pmem.Addr(i*16)
				addr := pmem.Addr(h.Load(0, ea) & 0xffffffff)
				val := h.Load(0, ea+8)
				h.Store(0, addr, val)
				h.Flush(0, addr)
			}
			h.Fence(0)
		}
	}
	headA := h.RootAddr(slotHead)
	reach := map[pmem.Addr]bool{}
	cur := pmem.Addr(h.Load(0, headA))
	for {
		reach[cur] = true
		next := pmem.Addr(h.Load(0, cur+offNext))
		if next == 0 {
			break
		}
		cur = next
	}
	pool := ssmem.RecoverPool(h, ssmem.Config{
		SlotBytes: pmem.CacheLineBytes, SlotsPerArea: 4096,
		Threads: threads, RootSlot: slotPool,
	}, func(a pmem.Addr) bool { return reach[a] })
	h.Store(0, h.RootAddr(slotTail), uint64(cur))
	return &OneFileQ{
		h: h, pool: pool, txA: txA,
		headA: headA, tailA: h.RootAddr(slotTail),
		txid: commit,
	}
}

// runTx persists and applies one redo-logged transaction. Caller holds
// q.mu.
func (q *OneFileQ) runTx(tid int, writes [][2]uint64) {
	h := q.h
	q.txid++
	h.Store(tid, q.txA+ofTxidOff, q.txid)
	h.Store(tid, q.txA+ofCountOff, uint64(len(writes)))
	for i, w := range writes {
		if w[0] >= 1<<32 {
			panic("onefileq: heap too large for 32-bit redo-log addresses")
		}
		ea := q.txA + ofEntriesOff + pmem.Addr(i*16)
		// Tagged address word first, value word second: under
		// Assumption 1 a durable value word implies a durable tag.
		h.Store(tid, ea, q.txid<<32|w[0])
		h.Store(tid, ea+8, w[1])
	}
	h.Flush(tid, q.txA+ofTxidOff)
	for i := 0; i < len(writes); i += 4 {
		h.Flush(tid, q.txA+ofEntriesOff+pmem.Addr(i*16))
	}
	h.Fence(tid) // fence 1: log durable
	h.Store(tid, q.txA+ofCommitOff, q.txid)
	h.Flush(tid, q.txA+ofCommitOff)
	h.Fence(tid) // fence 2: commit durable
	for _, w := range writes {
		h.Store(tid, pmem.Addr(w[0]), w[1])
		h.Flush(tid, pmem.Addr(w[0]))
	}
	h.Fence(tid) // fence 3: in-place state durable
}

// Enqueue appends v in one persistent transaction.
func (q *OneFileQ) Enqueue(tid int, v uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	h := q.h
	n := q.pool.Alloc(tid)
	tail := pmem.Addr(h.Load(tid, q.tailA))
	q.runTx(tid, [][2]uint64{
		{uint64(n + offItem), v},
		{uint64(n + offNext), 0},
		{uint64(tail + offNext), uint64(n)},
		{uint64(q.tailA), uint64(n)},
	})
}

// Dequeue removes the oldest item in one persistent transaction; an
// empty-queue dequeue is a read-only transaction with no persists.
func (q *OneFileQ) Dequeue(tid int) (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	h := q.h
	head := pmem.Addr(h.Load(tid, q.headA))
	next := pmem.Addr(h.Load(tid, head+offNext))
	if next == 0 {
		return 0, false
	}
	v := h.Load(tid, next+offItem)
	q.runTx(tid, [][2]uint64{
		{uint64(q.headA), uint64(next)},
	})
	q.pool.FreeImmediate(tid, head) // writers serialize; immediate reuse is safe
	return v, true
}

// All returns the PTM-backed queue implementations.
func All() []queues.Info {
	return []queues.Info{
		{Name: "onefile", Durable: true,
			New:     func(h *pmem.Heap, n int) queues.Queue { return NewOneFileQ(h, n) },
			Recover: func(h *pmem.Heap, n int) queues.Queue { return RecoverOneFileQ(h, n) }},
		{Name: "redoopt", Durable: true,
			New:     func(h *pmem.Heap, n int) queues.Queue { return NewRedoOptQ(h, n) },
			Recover: func(h *pmem.Heap, n int) queues.Queue { return RecoverRedoOptQ(h, n) }},
	}
}
