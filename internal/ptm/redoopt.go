package ptm

import (
	"fmt"
	"sync"

	"repro/internal/pmem"
)

// RedoOptQ wraps a volatile sequential queue in a redo-style
// universal construction: each update appends one self-sealing record
// to a persistent operation log plus a persistent log-tail marker
// (RedoOpt's two persists per operation), applies the operation to
// two volatile replicas (RedoOpt keeps dual instances), and returns.
// When the ring log fills, a replica is checkpointed into the
// inactive of two snapshot buffers and the log logically truncates.
// Recovery loads the newest sealed snapshot header and replays the
// log suffix.
//
// Records are 16 bytes: [seq<<2 | code, value]; the header word is
// written after the value word, so under Assumption 1 a record with a
// matching sequence number is guaranteed whole. Stale ring slots fail
// the sequence check, so truncation needs no erasing.
//
// Checkpoint headers alternate between two sealed slots. A crash in
// the middle of a header write can only leave that slot with its
// previous (strictly smaller) seal value, so recovery — which picks
// the slot with the larger seal — never observes a mixed-generation
// header, and the slot it picks refers to the snapshot buffer the
// interrupted checkpoint was not writing.
//
// All operations serialize on a mutex (see the package comment for
// the substitution notes).
type RedoOptQ struct {
	h  *pmem.Heap
	mu sync.Mutex

	metaA pmem.Addr // header line: [snapSeq, activeBuf, itemCount, baseOpSeq]
	tailA pmem.Addr // persistent log-tail marker, on its own line
	logA  pmem.Addr
	bufA  [2]pmem.Addr

	logCap  uint64 // records
	snapCap uint64 // items per snapshot buffer

	seq       uint64 // last appended record sequence
	baseSeq   uint64 // sequence covered by the active snapshot
	snapSeq   uint64
	activeBuf uint64 // snapshot buffer the latest checkpoint used

	// RedoOpt keeps two volatile instances of the object (one being
	// updated, one consistent for readers); both are maintained here
	// to preserve the construction's per-operation work.
	replica  []uint64 // volatile queue replica (head at index 0)
	replica2 []uint64
}

const (
	roOpEnq = 1
	roOpDeq = 2

	// Header slot field offsets (two 32-byte slots share the header
	// line; slot k of checkpoint s is s%2).
	roSlotBytes  = pmem.Addr(32)
	roActiveOff  = pmem.Addr(0)
	roCountOff   = pmem.Addr(8)
	roBaseSeqOff = pmem.Addr(16)
	roSnapSeqOff = pmem.Addr(24) // seal: written last

	roDefaultLog = 1 << 14 // records
)

// NewRedoOptQ creates an empty RedoOptQ. Capacity defaults suit the
// paper's workloads; the snapshot buffers bound the maximum queue
// length (exceeding it panics, as a fixed persistent arena would).
func NewRedoOptQ(h *pmem.Heap, threads int) *RedoOptQ {
	return newRedoOptQ(h, roDefaultLog, minSnapCap(h))
}

// minSnapCap sizes snapshot buffers to a quarter of the heap each:
// the maximum queue length RedoOptQ supports scales with the arena,
// as it would for any PTM whose checkpoints live in the same pool.
func minSnapCap(h *pmem.Heap) uint64 {
	return uint64(h.Bytes()/4) / 8
}

func newRedoOptQ(h *pmem.Heap, logCap, snapCap uint64) *RedoOptQ {
	q := &RedoOptQ{h: h, logCap: logCap, snapCap: snapCap}
	q.metaA = h.AllocRaw(0, pmem.CacheLineBytes, pmem.CacheLineBytes)
	q.tailA = h.AllocRaw(0, pmem.CacheLineBytes, pmem.CacheLineBytes)
	h.InitRange(0, q.tailA, pmem.CacheLineBytes)
	logBytes := int64(logCap * 16)
	q.logA = h.AllocRaw(0, logBytes, pmem.CacheLineBytes)
	bufBytes := (int64(snapCap*8) + pmem.CacheLineBytes - 1) &^ (pmem.CacheLineBytes - 1)
	q.bufA[0] = h.AllocRaw(0, bufBytes, pmem.CacheLineBytes)
	q.bufA[1] = h.AllocRaw(0, bufBytes, pmem.CacheLineBytes)
	h.InitRange(0, q.metaA, pmem.CacheLineBytes)
	h.InitRange(0, q.logA, logBytes)
	// Snapshot buffers need no pre-zeroing: the header's item count
	// bounds what recovery reads.
	h.Store(0, h.RootAddr(slotTx), uint64(q.metaA))
	h.Store(0, h.RootAddr(slotTx)+8, uint64(q.logA))
	h.Store(0, h.RootAddr(slotTx)+16, uint64(q.bufA[0]))
	h.Store(0, h.RootAddr(slotTx)+24, uint64(q.bufA[1]))
	h.Store(0, h.RootAddr(slotTx)+32, logCap)
	h.Store(0, h.RootAddr(slotTx)+40, snapCap)
	h.Store(0, h.RootAddr(slotTx)+48, uint64(q.tailA))
	h.Flush(0, h.RootAddr(slotTx))
	h.Fence(0)
	return q
}

// RecoverRedoOptQ reopens the queue after a crash: load the active
// snapshot, then replay the log records that seal correctly beyond
// the snapshot's base sequence.
func RecoverRedoOptQ(h *pmem.Heap, threads int) *RedoOptQ {
	root := h.RootAddr(slotTx)
	q := &RedoOptQ{
		h:       h,
		metaA:   pmem.Addr(h.Load(0, root)),
		logA:    pmem.Addr(h.Load(0, root+8)),
		bufA:    [2]pmem.Addr{pmem.Addr(h.Load(0, root+16)), pmem.Addr(h.Load(0, root+24))},
		logCap:  h.Load(0, root+32),
		snapCap: h.Load(0, root+40),
		tailA:   pmem.Addr(h.Load(0, root+48)),
	}
	// Pick the header slot with the larger seal; a slot torn by a
	// crashed checkpoint still shows its previous, smaller seal.
	slot := q.metaA
	if h.Load(0, q.metaA+roSlotBytes+roSnapSeqOff) > h.Load(0, q.metaA+roSnapSeqOff) {
		slot = q.metaA + roSlotBytes
	}
	q.snapSeq = h.Load(0, slot+roSnapSeqOff)
	active := h.Load(0, slot+roActiveOff)
	count := h.Load(0, slot+roCountOff)
	q.baseSeq = h.Load(0, slot+roBaseSeqOff)
	q.activeBuf = active
	if count > q.snapCap {
		panic("redooptq recovery: corrupt snapshot count")
	}
	q.replica = make([]uint64, count)
	for i := uint64(0); i < count; i++ {
		q.replica[i] = h.Load(0, q.bufA[active]+pmem.Addr(i*8))
	}
	// Replay sealed records beyond the snapshot.
	seq := q.baseSeq
	for {
		next := seq + 1
		slot := q.logA + pmem.Addr((next%q.logCap)*16)
		hdr := h.Load(0, slot)
		if hdr>>2 != next {
			break
		}
		v := h.Load(0, slot+8)
		switch hdr & 3 {
		case roOpEnq:
			q.replica = append(q.replica, v)
		case roOpDeq:
			if len(q.replica) == 0 {
				panic("redooptq recovery: dequeue replayed on empty replica")
			}
			q.replica = q.replica[1:]
		default:
			panic(fmt.Sprintf("redooptq recovery: bad op code %d", hdr&3))
		}
		seq = next
	}
	q.seq = seq
	q.replica2 = append([]uint64(nil), q.replica...)
	return q
}

// appendRecord persists one update record: value first, sealing
// header word second (same 16-byte slot, same cache line), one flush
// and one fence.
func (q *RedoOptQ) appendRecord(tid int, code, value uint64) {
	if q.seq-q.baseSeq >= q.logCap-1 {
		q.checkpoint(tid)
	}
	q.seq++
	slot := q.logA + pmem.Addr((q.seq%q.logCap)*16)
	q.h.Store(tid, slot+8, value)
	q.h.Store(tid, slot, q.seq<<2|code)
	q.h.Flush(tid, slot)
	q.h.Fence(tid)
	// Advance the persistent log tail (RedoOpt's second persist per
	// operation). The store lands on a line the previous operation
	// flushed — a post-flush access, one reason PTM wrappers lose to
	// the tailor-made queues on invalidating platforms.
	q.h.Store(tid, q.tailA, q.seq)
	q.h.Flush(tid, q.tailA)
	q.h.Fence(tid)
}

// checkpoint dumps the replica into the inactive snapshot buffer and
// flips the header, truncating the log.
func (q *RedoOptQ) checkpoint(tid int) {
	h := q.h
	if uint64(len(q.replica)) > q.snapCap {
		panic("redooptq: queue exceeds snapshot capacity")
	}
	target := q.activeBuf ^ 1
	base := q.bufA[target]
	for i, v := range q.replica {
		h.Store(tid, base+pmem.Addr(i*8), v)
	}
	for off := int64(0); off < int64(len(q.replica)*8); off += pmem.CacheLineBytes {
		h.Flush(tid, base+pmem.Addr(off))
	}
	h.Fence(tid) // snapshot durable before the header flips
	q.snapSeq++
	slot := q.metaA + pmem.Addr(q.snapSeq%2)*roSlotBytes
	h.Store(tid, slot+roActiveOff, target)
	h.Store(tid, slot+roCountOff, uint64(len(q.replica)))
	h.Store(tid, slot+roBaseSeqOff, q.seq)
	h.Store(tid, slot+roSnapSeqOff, q.snapSeq) // sealing word last
	h.Flush(tid, q.metaA)
	h.Fence(tid)
	q.baseSeq = q.seq
	q.activeBuf = target
}

// Enqueue appends v: one log record, then the replica update.
func (q *RedoOptQ) Enqueue(tid int, v uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.appendRecord(tid, roOpEnq, v)
	q.replica = append(q.replica, v)
	q.replica2 = append(q.replica2, v)
}

// Dequeue removes the oldest item; an empty dequeue is read-only.
func (q *RedoOptQ) Dequeue(tid int) (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.replica) == 0 {
		return 0, false
	}
	v := q.replica[0]
	q.appendRecord(tid, roOpDeq, 0)
	q.replica = q.replica[1:]
	q.replica2 = q.replica2[1:]
	return v, true
}
