// Package blobq generalizes the paper's queues to items that span
// multiple cache lines — the extension footnote 3 points at: "The
// method of [Cohen, Friedman, Larus] can be used to generalize the
// algorithms to nodes that span multiple cache lines without adding
// fence operations."
//
// Queue is an OptUnlinkedQ (Section 6.1) whose items are byte
// payloads stored in persistent blobs. A blob occupies a fixed number
// of cache lines; every line carries 56 payload bytes plus an 8-byte
// seal combining a globally unique blob tag with the line number. The
// enqueuer writes the payload lines (data before seal, per line),
// issues asynchronous flushes for all of them, then links the node
// and rides the operation's single fence — no additional blocking
// persist. Recovery accepts a node only if its blob's every seal
// matches the node's tag, so a node whose linked flag was evicted
// early while its payload was not cannot resurrect garbage: under
// durable linearizability such an enqueue was pending and is
// discarded.
//
// Normal-path reads never touch the flushed blob lines: the payload
// also lives in the node's Volatile half (a Go byte slice), so the
// queue retains the second amendment's zero-post-flush-access
// property.
package blobq

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/ssmem"
)

// Blob geometry: per cache line, 56 payload bytes + one seal word.
const (
	lineData = pmem.CacheLineBytes - pmem.WordBytes
	sealOff  = pmem.Addr(lineData)
)

// Persistent node layout (one line): [index, linked, blob, tag, len].
const (
	pnIndex  = pmem.Addr(0)
	pnLinked = pmem.Addr(8)
	pnBlob   = pmem.Addr(16)
	pnTag    = pmem.Addr(24)
	pnLen    = pmem.Addr(32)
)

// Root slots (a heap hosts one queue).
const (
	slotPool     = 2
	slotLocal    = 3
	slotAck      = 4
	slotBlobPool = 6
	slotEpoch    = 7
)

// Config parameterizes a Queue.
type Config struct {
	// Threads is the number of thread ids that may operate.
	Threads int
	// MaxPayload is the largest payload in bytes (rounded up to whole
	// blob lines). Default 240.
	MaxPayload int
	// Acked selects acknowledgment mode: dequeues become leases
	// (DequeueLeased, zero persist instructions), payloads stay durable
	// until AckTo covers them, and recovery redelivers everything
	// beyond the maximum per-thread acked index instead of everything
	// beyond the dequeued frontier. Mirrors queues.NewOptUnlinkedQAcked.
	Acked bool
	// InitTid is the thread id New charges its construction persists
	// to. Default 0 — fine for quiescent construction; a queue created
	// while other threads run (a broker topic created on a live system)
	// must use a tid owned by the constructing goroutine, because
	// fences are per-thread. Mirrors queues.NewOptUnlinkedQAs.
	InitTid int
}

func (c *Config) norm() {
	if c.MaxPayload == 0 {
		c.MaxPayload = 240
	}
}

func (c Config) blobLines() int { return (c.MaxPayload + lineData - 1) / lineData }

// vnode is the Volatile half of a node.
type vnode struct {
	payload []byte
	index   uint64
	next    atomic.Pointer[vnode]
	pnode   pmem.Addr
	blob    pmem.Addr
}

// perThread keeps one thread's hot dequeue/ack state; uint64s precede
// the bools and the tail padding rounds the struct to two full cache
// lines, so adjacent per-thread entries never share a line (false
// sharing would skew the persist-cost measurements).
type perThread struct {
	nodeToRetire *vnode
	tagSeq       uint64
	// pendingRetire / lastPersisted / pendingIdx / pendingDirty mirror
	// queues.OptUnlinkedQ: deferred batch-dequeue state (retires held
	// until the covering fence) and the empty-poll elision cache (skip
	// the NTStore+Fence when the observed head index is already
	// durable).
	pendingRetire []*vnode
	lastPersisted uint64
	pendingIdx    uint64
	// pendingAckIdx/pendingAckDirty mirror queues.OptUnlinkedQ's ack
	// mode: the acked index NTStored by AckToUnfenced but not yet
	// covered by a fence, promoted by CompleteAck.
	pendingAckIdx   uint64
	pendingDirty    bool
	pendingAckDirty bool
	_               [62]byte
}

// blobTag builds a tag that is unique across the heap's lifetime:
// boot incarnations never share tags, so a recycled blob's stale
// seals can never validate a half-written new payload.
func blobTag(epoch uint64, tid int, seq uint64) uint64 {
	return epoch<<40 | uint64(tid+1)<<32 | seq&0xffffffff
}

// Queue is a durable lock-free FIFO of byte payloads with one
// blocking persist per operation and no access to flushed content.
type Queue struct {
	h         *pmem.Heap
	cfg       Config
	nodes     *ssmem.Pool
	blobs     *ssmem.Pool
	head      atomic.Pointer[vnode]
	tail      atomic.Pointer[vnode]
	localBase pmem.Addr
	epoch     uint64 // persistent boot incarnation, salts blob tags
	per       []perThread

	// Ack mode (Config.Acked); see queues.OptUnlinkedQ for the full
	// design discussion — the state here is the exact byte-payload
	// mirror of it.
	ackBase    pmem.Addr
	ackMu      sync.Mutex
	inflight   []*vnode
	ackDurable uint64
}

// New creates an empty payload queue.
func New(h *pmem.Heap, cfg Config) *Queue {
	cfg.norm()
	tid := cfg.InitTid
	q := &Queue{
		h:   h,
		cfg: cfg,
		nodes: ssmem.NewPool(h, ssmem.Config{
			SlotBytes: pmem.CacheLineBytes, SlotsPerArea: 4096,
			Threads: cfg.Threads, RootSlot: slotPool, InitTid: tid,
		}),
		blobs: ssmem.NewPool(h, ssmem.Config{
			SlotBytes: cfg.blobLines() * pmem.CacheLineBytes, SlotsPerArea: 1024,
			Threads: cfg.Threads, RootSlot: slotBlobPool, InitTid: tid,
		}),
		per: make([]perThread, cfg.Threads),
	}
	size := int64(cfg.Threads) * pmem.CacheLineBytes
	q.localBase = h.AllocRaw(tid, size, pmem.CacheLineBytes)
	h.InitRange(tid, q.localBase, size)
	h.Store(tid, h.RootAddr(slotLocal), uint64(q.localBase))
	h.Persist(tid, h.RootAddr(slotLocal))
	q.epoch = 1
	h.Store(tid, h.RootAddr(slotEpoch), q.epoch)
	h.Persist(tid, h.RootAddr(slotEpoch))
	if cfg.Acked {
		q.ackBase = h.AllocRaw(tid, size, pmem.CacheLineBytes)
		h.InitRange(tid, q.ackBase, size)
		h.Store(tid, h.RootAddr(slotAck), uint64(q.ackBase))
		h.Persist(tid, h.RootAddr(slotAck))
	}

	pn := q.nodes.Alloc(tid)
	dummy := &vnode{pnode: pn}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// MaxPayload reports the configured payload capacity in bytes.
func (q *Queue) MaxPayload() int { return q.cfg.blobLines() * lineData }

// writeBlob writes payload into blob lines, data words before the
// sealing word of each line (Assumption 1 orders them in NVRAM), and
// issues asynchronous flushes. The caller's fence covers them.
func (q *Queue) writeBlob(tid int, blob pmem.Addr, tag uint64, payload []byte) {
	h := q.h
	lines := q.cfg.blobLines()
	for l := 0; l < lines; l++ {
		base := blob + pmem.Addr(l*pmem.CacheLineBytes)
		chunk := l * lineData
		for w := 0; w < lineData/pmem.WordBytes; w++ {
			idx := chunk + w*8
			var word uint64
			switch {
			case idx+8 <= len(payload):
				word = binary.LittleEndian.Uint64(payload[idx:])
			case idx < len(payload):
				var tail [8]byte
				copy(tail[:], payload[idx:])
				word = binary.LittleEndian.Uint64(tail[:])
			}
			h.Store(tid, base+pmem.Addr(w*8), word)
		}
		h.Store(tid, base+sealOff, tag<<8|uint64(l)+1)
		h.Flush(tid, base)
	}
}

func readBlob(h *pmem.Heap, blob pmem.Addr, n int) []byte {
	out := make([]byte, n)
	// lineData is a multiple of the word size, so stepping a word at a
	// time never straddles a line boundary.
	for i := 0; i < n; i += pmem.WordBytes {
		l := i / lineData
		off := i % lineData
		w := h.Load(0, blob+pmem.Addr(l*pmem.CacheLineBytes)+pmem.Addr(off))
		if i+8 <= n {
			binary.LittleEndian.PutUint64(out[i:], w)
		} else {
			var tail [8]byte
			binary.LittleEndian.PutUint64(tail[:], w)
			copy(out[i:], tail[:])
		}
	}
	return out
}

func blobSealed(h *pmem.Heap, blob pmem.Addr, tag uint64, lines int) bool {
	for l := 0; l < lines; l++ {
		if h.Load(0, blob+pmem.Addr(l*pmem.CacheLineBytes)+sealOff) != tag<<8|uint64(l)+1 {
			return false
		}
	}
	return true
}

// enqueueOne runs the enqueue protocol up to but not including the
// blocking fence: allocate node and blob, write and asynchronously
// flush the sealed payload lines, link via CAS, set the linked flag
// and flush the node line. It returns the tail observed at link time
// and the new node so the caller can order its fence and tail advance
// (Enqueue fences before advancing; EnqueueBatch advances immediately
// and rides one fence for the whole batch).
func (q *Queue) enqueueOne(tid int, payload []byte) (tail, vn *vnode) {
	if len(payload) > q.MaxPayload() {
		panic(fmt.Sprintf("blobq: payload %d exceeds capacity %d", len(payload), q.MaxPayload()))
	}
	h := q.h
	pn := q.nodes.Alloc(tid)
	blob := q.blobs.Alloc(tid)
	q.per[tid].tagSeq++
	tag := blobTag(q.epoch, tid, q.per[tid].tagSeq)

	vn = &vnode{payload: append([]byte(nil), payload...), pnode: pn, blob: blob}
	h.Store(tid, pn+pnLinked, 0) // before the index, as in UnlinkedQ
	h.Store(tid, pn+pnBlob, uint64(blob))
	h.Store(tid, pn+pnTag, tag)
	h.Store(tid, pn+pnLen, uint64(len(payload)))
	q.writeBlob(tid, blob, tag, payload) // async flushes, no fence
	for {
		tail = q.tail.Load()
		if next := tail.next.Load(); next == nil {
			idx := tail.index + 1
			h.Store(tid, pn+pnIndex, idx)
			vn.index = idx
			if tail.next.CompareAndSwap(nil, vn) {
				h.Store(tid, pn+pnLinked, 1)
				h.Flush(tid, pn)
				return tail, vn
			}
		} else {
			q.tail.CompareAndSwap(tail, next)
		}
	}
}

// Enqueue appends payload (at most MaxPayload bytes): the one-element
// batch. One blocking persist, covering the blob lines and the node
// line together.
func (q *Queue) Enqueue(tid int, payload []byte) {
	q.EnqueueBatch(tid, [][]byte{payload})
}

// EnqueueBatch appends payloads in order with a single blocking
// persist for the whole batch: each node's blob and line are written
// and asynchronously flushed as in Enqueue, and one fence at the end
// makes the entire batch durable. Sound for the same reason as
// OptUnlinkedQ.EnqueueBatch: a linked-but-not-yet-durable node only
// ever costs the crash its own unacknowledged enqueue (recovery
// discards it via the seal check and accepts index gaps).
func (q *Queue) EnqueueBatch(tid int, payloads [][]byte) {
	if len(payloads) == 0 {
		return
	}
	q.nodes.Enter(tid)
	defer q.nodes.Exit(tid)
	for _, payload := range payloads {
		tail, vn := q.enqueueOne(tid, payload)
		q.tail.CompareAndSwap(tail, vn)
	}
	q.h.Fence(tid) // the batch's single blocking persist
}

// EnqueueBatchUnfenced is the issue phase of EnqueueBatch alone —
// every blob is sealed, linked and asynchronously flushed, with the
// blocking SFENCE left to the caller. See the fixed-queue counterpart
// (queues.OptUnlinkedQ.EnqueueBatchUnfenced) for the per-thread
// ordering soundness argument; it transfers verbatim because blob
// recovery likewise sorts surviving sealed nodes by index, accepts
// gaps, and drops unsealed or unfenced suffixes as unacknowledged.
// The caller must issue a covering Fence with the same tid before
// reporting the batch acknowledged.
func (q *Queue) EnqueueBatchUnfenced(tid int, payloads [][]byte) {
	if len(payloads) == 0 {
		return
	}
	q.nodes.Enter(tid)
	defer q.nodes.Exit(tid)
	for _, payload := range payloads {
		tail, vn := q.enqueueOne(tid, payload)
		q.tail.CompareAndSwap(tail, vn)
	}
}

// dequeueOne CASes the head past the oldest node without persisting.
// On success it returns the node holding the payload and the unlinked
// previous head (to retire after a covering persist); on an empty
// observation ok is false and taken is the observed head.
func (q *Queue) dequeueOne(tid int) (taken, old *vnode, ok bool) {
	for {
		head := q.head.Load()
		next := head.next.Load()
		if next == nil {
			return head, nil, false
		}
		if q.head.CompareAndSwap(head, next) {
			return next, head, true
		}
	}
}

// writeLocalHeadIdx issues the asynchronous NTStore of idx into tid's
// local line; durable only after a Fence by the same thread.
func (q *Queue) writeLocalHeadIdx(tid int, idx uint64) {
	q.h.NTStore(tid, q.localBase+pmem.Addr(tid)*pmem.CacheLineBytes, idx)
}

// retireAfterPersist releases the previously deferred node (slot and
// blob) and defers old. Call only after a fence covering old's
// dequeue: a slot reused before its dequeue is durable could lose a
// never-delivered message across a crash.
func (q *Queue) retireAfterPersist(tid int, old *vnode) {
	if r := q.per[tid].nodeToRetire; r != nil {
		q.nodes.Retire(tid, r.pnode)
		if r.blob != 0 {
			q.blobs.Retire(tid, r.blob)
		}
	}
	q.per[tid].nodeToRetire = old
}

// Acked reports whether the queue is in acknowledgment mode.
func (q *Queue) Acked() bool { return q.cfg.Acked }

// DequeueLeased removes up to max payloads without issuing a single
// persist instruction: the dequeued nodes and their blobs stay durable
// and are redelivered by recovery until an acknowledgment covers them.
// idxs are the payloads' queue indices; pass the last one to AckTo
// once the payloads are processed. Ack mode only.
func (q *Queue) DequeueLeased(tid, max int) (ps [][]byte, idxs []uint64) {
	if !q.cfg.Acked {
		panic("blobq: DequeueLeased on a queue without ack mode")
	}
	if max <= 0 {
		return nil, nil
	}
	q.nodes.Enter(tid)
	defer q.nodes.Exit(tid)
	var takens []*vnode
	for len(ps) < max {
		taken, _, ok := q.dequeueOne(tid)
		if !ok {
			break
		}
		ps = append(ps, taken.payload)
		idxs = append(idxs, taken.index)
		takens = append(takens, taken)
	}
	if len(takens) > 0 {
		q.ackMu.Lock()
		q.inflight = append(q.inflight, takens...)
		q.ackMu.Unlock()
	}
	return ps, idxs
}

// AckToUnfenced acknowledges every dequeued payload with index <= idx
// with one NTStore of idx into tid's ack line; redundant acks cost
// nothing. dirty reports whether a covering Fence plus CompleteAck is
// still owed. See queues.OptUnlinkedQ.AckToUnfenced.
func (q *Queue) AckToUnfenced(tid int, idx uint64) (dirty bool) {
	if !q.cfg.Acked {
		panic("blobq: AckToUnfenced on a queue without ack mode")
	}
	t := &q.per[tid]
	q.ackMu.Lock()
	redundant := idx <= q.ackDurable
	q.ackMu.Unlock()
	if redundant {
		return t.pendingAckDirty
	}
	// Keep the ack line monotone within an unfenced window too: a lower
	// ack must not overwrite a higher NTStored index (see
	// queues.OptUnlinkedQ.AckToUnfenced).
	if t.pendingAckDirty && idx <= t.pendingAckIdx {
		return true
	}
	q.h.NTStore(tid, q.ackBase+pmem.Addr(tid)*pmem.CacheLineBytes, idx)
	t.pendingAckIdx = idx
	t.pendingAckDirty = true
	return true
}

// CompleteAck finishes an unfenced acknowledgment after the caller's
// fence: promotes the acked frontier and retires the covered in-flight
// nodes and blobs (their slots may only be reused once the covering
// ack index is durable, so recovery can filter stale contents).
func (q *Queue) CompleteAck(tid int) {
	t := &q.per[tid]
	if !t.pendingAckDirty {
		return
	}
	t.pendingAckDirty = false
	q.ackMu.Lock()
	if t.pendingAckIdx > q.ackDurable {
		q.ackDurable = t.pendingAckIdx
	}
	live := q.inflight[:0]
	for _, n := range q.inflight {
		if n.index <= q.ackDurable {
			q.nodes.Retire(tid, n.pnode)
			if n.blob != 0 {
				q.blobs.Retire(tid, n.blob)
			}
		} else {
			live = append(live, n)
		}
	}
	q.inflight = live
	q.ackMu.Unlock()
}

// AckTo is the fenced form of AckToUnfenced: one NTStore plus one
// blocking persist acknowledges the whole batch up to idx.
func (q *Queue) AckTo(tid int, idx uint64) {
	if q.AckToUnfenced(tid, idx) {
		q.h.Fence(tid)
	}
	q.CompleteAck(tid)
}

// AckedTo reports the durably acknowledged index frontier.
func (q *Queue) AckedTo() uint64 {
	q.ackMu.Lock()
	defer q.ackMu.Unlock()
	return q.ackDurable
}

// Unacked snapshots the dequeued-but-unacknowledged payloads in index
// order — the redelivery set a lease takeover hands to a new consumer.
// Call only while no dequeue or ack runs on this queue.
func (q *Queue) Unacked() (ps [][]byte, idxs []uint64) {
	q.ackMu.Lock()
	defer q.ackMu.Unlock()
	ns := append([]*vnode(nil), q.inflight...)
	sort.Slice(ns, func(i, j int) bool { return ns[i].index < ns[j].index })
	for _, n := range ns {
		ps = append(ps, n.payload)
		idxs = append(idxs, n.index)
	}
	return ps, idxs
}

// Dequeue removes the oldest payload: the one-element batch dequeue,
// so the fence accounting — one NTStore + one fence on success, full
// elision on an already-durable empty observation — lives in
// DequeueBatchUnfenced alone. One blocking persist; the payload is
// served from the Volatile copy, never from flushed lines.
func (q *Queue) Dequeue(tid int) ([]byte, bool) {
	ps := q.DequeueBatch(tid, 1)
	if len(ps) == 0 {
		return nil, false
	}
	return ps[0], true
}

// DequeueBatch removes up to max payloads in FIFO order with a single
// blocking persist for the whole batch: one NTStore of the final head
// index plus one fence, sound because the per-thread head index is
// monotone (recovery takes the maximum, so the last index covers all
// earlier ones). The batch is acknowledged as a whole on return,
// exactly dual to EnqueueBatch.
func (q *Queue) DequeueBatch(tid, max int) [][]byte {
	if q.cfg.Acked {
		// Lease + immediate acknowledgment, riding the ack's single
		// fence (see queues.OptUnlinkedQ.DequeueBatch in ack mode).
		ps, idxs := q.DequeueLeased(tid, max)
		if len(ps) > 0 {
			q.AckTo(tid, idxs[len(idxs)-1])
		}
		return ps
	}
	ps, dirty := q.DequeueBatchUnfenced(tid, max)
	if dirty {
		q.h.Fence(tid) // the batch's single blocking persist
		q.CompleteBatch(tid)
	}
	return ps
}

// DequeueBatchUnfenced is DequeueBatch with the blocking persist left
// to the caller (see queues.OptUnlinkedQ.DequeueBatchUnfenced; package
// broker fences once across many shards). dirty reports an outstanding
// NTStore: the caller must Fence tid on the same heap and then call
// CompleteBatch before treating the result as durable.
func (q *Queue) DequeueBatchUnfenced(tid, max int) (ps [][]byte, dirty bool) {
	if q.cfg.Acked {
		panic("blobq: DequeueBatchUnfenced on an acked queue (use DequeueLeased/AckTo)")
	}
	if max <= 0 {
		return nil, q.per[tid].pendingDirty
	}
	q.nodes.Enter(tid)
	defer q.nodes.Exit(tid)
	t := &q.per[tid]
	var last *vnode
	for len(ps) < max {
		taken, old, ok := q.dequeueOne(tid)
		if !ok {
			if last == nil {
				if taken.index > t.lastPersisted && !(t.pendingDirty && taken.index <= t.pendingIdx) {
					q.writeLocalHeadIdx(tid, taken.index)
					t.pendingIdx = taken.index
					t.pendingDirty = true
				}
				return nil, t.pendingDirty
			}
			break
		}
		ps = append(ps, taken.payload)
		t.pendingRetire = append(t.pendingRetire, old)
		last = taken
	}
	q.writeLocalHeadIdx(tid, last.index) // one NTStore covers the batch
	t.pendingIdx = last.index
	t.pendingDirty = true
	return ps, true
}

// CompleteBatch finishes an unfenced batch dequeue after the caller's
// fence: promotes the pending head index to the elision cache and
// retires the unlinked nodes (and their blobs) in one sweep.
func (q *Queue) CompleteBatch(tid int) {
	t := &q.per[tid]
	if t.pendingDirty {
		t.lastPersisted = t.pendingIdx
		t.pendingDirty = false
	}
	for _, old := range t.pendingRetire {
		q.retireAfterPersist(tid, old)
	}
	t.pendingRetire = t.pendingRetire[:0]
}

// Recover rebuilds the queue after a crash: a node is resurrected
// only if it is linked, beyond the recovered consumption frontier, and
// its blob is fully sealed with the node's tag. The frontier is the
// maximum per-thread head index — or, in ack mode, the maximum
// per-thread *acked* index, so leased-but-unacknowledged payloads are
// redelivered and acknowledged ones never reappear. cfg.Acked must
// match the mode the queue was created with; a mismatch is refused
// rather than silently mis-scanned.
func Recover(h *pmem.Heap, cfg Config) *Queue {
	cfg.norm()
	ackBase := pmem.Addr(h.Load(0, h.RootAddr(slotAck)))
	if cfg.Acked != (ackBase != 0) {
		panic(fmt.Sprintf("blobq: Recover with Acked=%v, but the heap holds an Acked=%v queue",
			cfg.Acked, ackBase != 0))
	}
	localBase := pmem.Addr(h.Load(0, h.RootAddr(slotLocal)))
	perT := make([]perThread, cfg.Threads)
	var headIdx uint64
	if cfg.Acked {
		for t := 0; t < cfg.Threads; t++ {
			if v := h.Load(0, ackBase+pmem.Addr(t)*pmem.CacheLineBytes); v > headIdx {
				headIdx = v
			}
		}
	} else {
		for t := 0; t < cfg.Threads; t++ {
			v := h.Load(0, localBase+pmem.Addr(t)*pmem.CacheLineBytes)
			perT[t].lastPersisted = v // this thread's provably durable index
			if v > headIdx {
				headIdx = v
			}
		}
	}
	blobCfg := ssmem.Config{
		SlotBytes: cfg.blobLines() * pmem.CacheLineBytes, SlotsPerArea: 1024,
		Threads: cfg.Threads, RootSlot: slotBlobPool,
	}
	blobAreas := ssmem.Areas(h, blobCfg)

	// Bump the boot incarnation first so tags minted after this
	// recovery can never collide with pre-crash seals.
	epoch := h.Load(0, h.RootAddr(slotEpoch)) + 1
	h.Store(0, h.RootAddr(slotEpoch), epoch)
	h.Persist(0, h.RootAddr(slotEpoch))

	type rec struct {
		pnode, blob pmem.Addr
		idx, n      uint64
	}
	var live []rec
	liveBlobs := map[pmem.Addr]bool{}
	nodes := ssmem.RecoverPool(h, ssmem.Config{
		SlotBytes: pmem.CacheLineBytes, SlotsPerArea: 4096,
		Threads: cfg.Threads, RootSlot: slotPool,
	}, func(a pmem.Addr) bool {
		if h.Load(0, a+pnLinked) != 1 || h.Load(0, a+pnIndex) <= headIdx {
			return false
		}
		blob := pmem.Addr(h.Load(0, a+pnBlob))
		tag := h.Load(0, a+pnTag)
		n := h.Load(0, a+pnLen)
		if !ssmem.ValidSlot(blobAreas, blobCfg.SlotBytes, blob) ||
			n > uint64(cfg.blobLines()*lineData) ||
			!blobSealed(h, blob, tag, cfg.blobLines()) {
			// Torn enqueue: the node's flag or index was evicted
			// before the payload became durable; the operation was
			// pending and is discarded.
			return false
		}
		live = append(live, rec{pnode: a, blob: blob, idx: h.Load(0, a+pnIndex), n: n})
		liveBlobs[blob] = true
		return true
	})
	blobs := ssmem.RecoverPool(h, blobCfg, func(a pmem.Addr) bool { return liveBlobs[a] })

	sort.Slice(live, func(i, j int) bool { return live[i].idx < live[j].idx })
	q := &Queue{
		h: h, cfg: cfg, nodes: nodes, blobs: blobs,
		localBase: localBase, epoch: epoch, per: perT,
		ackBase: ackBase,
	}
	if cfg.Acked {
		q.ackDurable = headIdx
	}
	dummyPn := nodes.Alloc(0)
	h.Store(0, dummyPn+pnLinked, 0)
	h.Store(0, dummyPn+pnIndex, headIdx)
	dummy := &vnode{index: headIdx, pnode: dummyPn}
	prev := dummy
	for _, r := range live {
		vn := &vnode{
			payload: readBlob(h, r.blob, int(r.n)),
			index:   r.idx,
			pnode:   r.pnode,
			blob:    r.blob,
		}
		prev.next.Store(vn)
		prev = vn
	}
	q.head.Store(dummy)
	q.tail.Store(prev)
	return q
}
