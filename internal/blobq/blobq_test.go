package blobq

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newHeap(mode pmem.Mode) *pmem.Heap {
	return pmem.New(pmem.Config{Bytes: 32 << 20, Mode: mode, MaxThreads: 6})
}

func payloadFor(v uint64, n int) []byte {
	p := make([]byte, n)
	rng := rand.New(rand.NewSource(int64(v)))
	rng.Read(p)
	return p
}

func TestRoundTripSizes(t *testing.T) {
	q := New(newHeap(pmem.ModePerf), Config{Threads: 1, MaxPayload: 240})
	sizes := []int{0, 1, 7, 8, 55, 56, 57, 112, 113, 168, 240}
	for _, n := range sizes {
		q.Enqueue(0, payloadFor(uint64(n), n))
	}
	for _, n := range sizes {
		got, ok := q.Dequeue(0)
		if !ok {
			t.Fatalf("size %d: unexpected empty", n)
		}
		if !bytes.Equal(got, payloadFor(uint64(n), n)) {
			t.Fatalf("size %d: payload mismatch", n)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue should be empty")
	}
}

func TestOversizePayloadPanics(t *testing.T) {
	q := New(newHeap(pmem.ModePerf), Config{Threads: 1, MaxPayload: 100})
	defer func() {
		if recover() == nil {
			t.Fatal("oversize enqueue did not panic")
		}
	}()
	q.Enqueue(0, make([]byte, q.MaxPayload()+1))
}

func TestFIFOAndModel(t *testing.T) {
	q := New(newHeap(pmem.ModePerf), Config{Threads: 1})
	rng := rand.New(rand.NewSource(4))
	var model []uint64
	next := uint64(1)
	for op := 0; op < 2000; op++ {
		if rng.Intn(2) == 0 {
			q.Enqueue(0, payloadFor(next, int(next%200)))
			model = append(model, next)
			next++
		} else {
			p, ok := q.Dequeue(0)
			if len(model) == 0 {
				if ok {
					t.Fatal("dequeue on empty succeeded")
				}
				continue
			}
			want := model[0]
			model = model[1:]
			if !ok || !bytes.Equal(p, payloadFor(want, int(want%200))) {
				t.Fatalf("op %d: payload mismatch for %d", op, want)
			}
		}
	}
}

func TestConcurrentPayloadIntegrity(t *testing.T) {
	const threads, per = 4, 1500
	h := pmem.New(pmem.Config{Bytes: 128 << 20, MaxThreads: threads + 1})
	q := New(h, Config{Threads: threads})
	var wg sync.WaitGroup
	var mu sync.Mutex
	delivered := map[uint64]bool{}
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)))
			seq := uint64(1)
			for i := 0; i < per; i++ {
				if rng.Intn(2) == 0 {
					v := uint64(tid+1)<<32 | seq
					seq++
					q.Enqueue(tid, encodedPayload(v))
				} else if p, ok := q.Dequeue(tid); ok {
					v, err := decodePayload(p)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					if delivered[v] {
						t.Errorf("duplicate payload %x", v)
					}
					delivered[v] = true
					mu.Unlock()
				}
			}
		}(tid)
	}
	wg.Wait()
	for {
		p, ok := q.Dequeue(0)
		if !ok {
			break
		}
		if _, err := decodePayload(p); err != nil {
			t.Fatal(err)
		}
	}
}

// encodedPayload embeds v and a checksum into a variable-length body
// so corruption or cross-wiring of blobs is detectable.
func encodedPayload(v uint64) []byte {
	n := 16 + int(v%150)
	p := make([]byte, n)
	for i := 0; i < 8; i++ {
		p[i] = byte(v >> (8 * i))
	}
	var sum byte
	for i := 16; i < n; i++ {
		p[i] = byte(int(v) + i)
		sum += p[i]
	}
	p[8] = sum
	p[9] = byte(n)
	return p
}

func decodePayload(p []byte) (uint64, error) {
	if len(p) < 16 {
		return 0, fmt.Errorf("payload too short: %d", len(p))
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p[i]) << (8 * i)
	}
	if int(p[9]) != len(p) {
		return v, fmt.Errorf("payload %x: length %d, embedded %d", v, len(p), p[9])
	}
	var sum byte
	for i := 16; i < len(p); i++ {
		if p[i] != byte(int(v)+i) {
			return v, fmt.Errorf("payload %x: corrupt body at %d", v, i)
		}
		sum += p[i]
	}
	if p[8] != sum {
		return v, fmt.Errorf("payload %x: checksum mismatch", v)
	}
	return v, nil
}

// TestOneFenceZeroPostFlush: the generalized queue keeps both of the
// paper's optimal characteristics despite multi-line items.
func TestOneFenceZeroPostFlush(t *testing.T) {
	h := newHeap(pmem.ModePerf)
	q := New(h, Config{Threads: 1})
	for i := uint64(0); i < 200; i++ {
		q.Enqueue(0, payloadFor(i, 100))
	}
	for i := 0; i < 200; i++ {
		q.Dequeue(0)
	}
	base := h.TotalStats()
	const n = 100
	for i := uint64(0); i < n; i++ {
		q.Enqueue(0, payloadFor(i, 100))
	}
	for i := 0; i < n; i++ {
		q.Dequeue(0)
	}
	s := h.TotalStats().Sub(base)
	if s.Fences != 2*n {
		t.Errorf("fences = %d for %d ops, want %d", s.Fences, 2*n, 2*n)
	}
	if s.PostFlushAccesses != 0 {
		t.Errorf("post-flush accesses = %d, want 0", s.PostFlushAccesses)
	}
}

// TestDequeueBatchOneFence verifies the amortized consume path on the
// multi-line payload queue: one blocking persist and one NTStore for a
// whole dequeue batch, payloads byte-exact and FIFO, empty polls
// elided entirely once the head index is durable.
func TestDequeueBatchOneFence(t *testing.T) {
	h := newHeap(pmem.ModePerf)
	q := New(h, Config{Threads: 1, MaxPayload: 120})
	for i := 0; i < 40; i++ { // warm pools past area creation
		q.Enqueue(0, payloadFor(uint64(i), 64))
		q.Dequeue(0)
	}
	const n = 16
	for i := 0; i < n; i++ {
		q.Enqueue(0, payloadFor(uint64(100+i), 100))
	}
	before := h.TotalStats()
	got := q.DequeueBatch(0, n)
	d := h.TotalStats().Sub(before)
	if len(got) != n {
		t.Fatalf("DequeueBatch returned %d payloads, want %d", len(got), n)
	}
	for i, p := range got {
		if !bytes.Equal(p, payloadFor(uint64(100+i), 100)) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
	if d.Fences != 1 || d.NTStores != 1 {
		t.Fatalf("DequeueBatch of %d issued %d fences, %d NTStores; want 1, 1", n, d.Fences, d.NTStores)
	}
	if d.PostFlushAccesses != 0 {
		t.Fatalf("DequeueBatch made %d post-flush accesses, want 0", d.PostFlushAccesses)
	}
	before = h.TotalStats()
	for i := 0; i < 100; i++ {
		if ps := q.DequeueBatch(0, 8); len(ps) != 0 {
			t.Fatal("queue should be empty")
		}
		if _, ok := q.Dequeue(0); ok {
			t.Fatal("queue should be empty")
		}
	}
	if d := h.TotalStats().Sub(before); d.Fences != 0 || d.NTStores != 0 {
		t.Fatalf("elided empty polls issued %d fences, %d NTStores; want 0, 0", d.Fences, d.NTStores)
	}
}

// TestDequeueBatchCrash: a crash mid-DequeueBatch may cost at most the
// unacknowledged window; acknowledged payloads never reappear and
// whatever recovery resurrects is an intact FIFO suffix.
func TestDequeueBatchCrash(t *testing.T) {
	const n, window = 60, 6
	for seed := int64(1); seed <= 5; seed++ {
		h := newHeap(pmem.ModeCrash)
		cfg := Config{Threads: 1}
		q := New(h, cfg)
		for i := 1; i <= n; i++ {
			q.Enqueue(0, encodedPayload(uint64(i)))
		}
		rng := rand.New(rand.NewSource(seed))
		h.ScheduleCrashAtAccess(h.AccessCount() + int64(rng.Intn(600)) + 1)
		acked := map[uint64]bool{}
		nAcked := 0
		for {
			var ps [][]byte
			if pmem.Protect(func() { ps = q.DequeueBatch(0, window) }) {
				break
			}
			for _, p := range ps {
				v, err := decodePayload(p)
				if err != nil {
					t.Fatalf("seed %d: delivered payload corrupt: %v", seed, err)
				}
				acked[v] = true
				nAcked++
			}
			if len(ps) == 0 {
				h.CrashNow()
				break
			}
		}
		h.FinalizeCrash(rand.New(rand.NewSource(seed * 17)))
		h.Restart()
		rq := Recover(h, cfg)
		var recovered []uint64
		for {
			p, ok := rq.Dequeue(0)
			if !ok {
				break
			}
			v, err := decodePayload(p)
			if err != nil {
				t.Fatalf("seed %d: recovered payload corrupt: %v", seed, err)
			}
			if acked[v] {
				t.Fatalf("seed %d: acknowledged payload %d recovered again", seed, v)
			}
			recovered = append(recovered, v)
		}
		for i, v := range recovered {
			if want := n - len(recovered) + i + 1; v != uint64(want) {
				t.Fatalf("seed %d: recovered[%d] = %d, want %d (suffix broken)", seed, i, v, want)
			}
		}
		if lost := n - nAcked - len(recovered); lost < 0 || lost > window {
			t.Fatalf("seed %d: %d payloads lost, allowance %d", seed, lost, window)
		}
	}
}

// TestQuiescentCrashRecovery: payloads survive crashes byte-exact.
func TestQuiescentCrashRecovery(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		h := newHeap(pmem.ModeCrash)
		cfg := Config{Threads: 2}
		q := New(h, cfg)
		var model []uint64
		next := uint64(1)
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 300; op++ {
			if rng.Intn(3) < 2 {
				q.Enqueue(op%2, payloadFor(next, int(next%230)))
				model = append(model, next)
				next++
			} else if _, ok := q.Dequeue(op % 2); ok {
				model = model[1:]
			}
		}
		h.CrashNow()
		h.FinalizeCrash(rand.New(rand.NewSource(seed + 100)))
		h.Restart()
		rq := Recover(h, cfg)
		for i, want := range model {
			p, ok := rq.Dequeue(0)
			if !ok {
				t.Fatalf("seed %d: queue ended at %d, want %d items", seed, i, len(model))
			}
			if !bytes.Equal(p, payloadFor(want, int(want%230))) {
				t.Fatalf("seed %d: item %d payload mismatch", seed, i)
			}
		}
		if _, ok := rq.Dequeue(0); ok {
			t.Fatalf("seed %d: extra items after model", seed)
		}
	}
}

// TestExhaustiveCrashPoints sweeps every memory access of a script
// that recycles blobs across an earlier crash (exercising the
// boot-epoch tag salting) and validates payload integrity of whatever
// recovery resurrects.
func TestExhaustiveCrashPoints(t *testing.T) {
	script := []bool{true, true, false, false, true, true, false, true, false, false}
	// First measure the access count.
	{
		h := newHeap(pmem.ModeCrash)
		q := New(h, Config{Threads: 1})
		h.ScheduleCrashAtAccess(1 << 60)
		runScript(q, script, nil)
		total := h.AccessCount()
		stride := int64(2)
		if testing.Short() {
			stride = 9
		}
		for k := int64(1); k <= total; k += stride {
			testOneCrashPoint(t, script, k)
		}
	}
}

func runScript(q *Queue, script []bool, model *[]uint64) {
	next := uint64(1)
	for _, enq := range script {
		if enq {
			q.Enqueue(0, encodedPayload(next))
			if model != nil {
				*model = append(*model, next)
			}
			next++
		} else {
			if _, ok := q.Dequeue(0); ok && model != nil {
				*model = (*model)[1:]
			}
		}
	}
}

func testOneCrashPoint(t *testing.T, script []bool, k int64) {
	t.Helper()
	h := newHeap(pmem.ModeCrash)
	cfg := Config{Threads: 1}
	q := New(h, cfg)
	h.ScheduleCrashAtAccess(k)
	var model []uint64
	var pendingEnq *uint64
	pendingDeq := false
	next := uint64(1)
	for _, enq := range script {
		enq := enq
		v := next
		crashed := pmem.Protect(func() {
			if enq {
				q.Enqueue(0, encodedPayload(v))
			} else {
				q.Dequeue(0)
			}
		})
		if crashed {
			if enq {
				pendingEnq = &v
			} else {
				pendingDeq = true
			}
			break
		}
		if enq {
			model = append(model, v)
			next++
		} else if len(model) > 0 {
			model = model[1:]
		}
	}
	if !h.Crashed() {
		h.CrashNow()
		pendingEnq, pendingDeq = nil, false
	}
	h.FinalizeCrash(rand.New(rand.NewSource(k)))
	h.Restart()
	rq := Recover(h, cfg)
	var got []uint64
	for {
		p, ok := rq.Dequeue(0)
		if !ok {
			break
		}
		v, err := decodePayload(p)
		if err != nil {
			t.Fatalf("crash %d: corrupt recovered payload: %v", k, err)
		}
		got = append(got, v)
	}
	if eq(got, model) {
		return
	}
	alt := append([]uint64(nil), model...)
	if pendingEnq != nil {
		alt = append(alt, *pendingEnq)
	} else if pendingDeq && len(alt) > 0 {
		alt = alt[1:]
	}
	if (pendingEnq != nil || pendingDeq) && eq(got, alt) {
		return
	}
	t.Fatalf("crash %d: recovered %v, want %v or %v", k, got, model, alt)
}

func eq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMultiCrashWithBlobReuse drives several crash/recover cycles so
// recovered free lists hand out blobs that were sealed in earlier
// incarnations.
func TestMultiCrashWithBlobReuse(t *testing.T) {
	h := newHeap(pmem.ModeCrash)
	cfg := Config{Threads: 2}
	q := New(h, cfg)
	var model []uint64
	next := uint64(1)
	rng := rand.New(rand.NewSource(8))
	for cycle := 0; cycle < 5; cycle++ {
		for op := 0; op < 150; op++ {
			if rng.Intn(2) == 0 {
				q.Enqueue(op%2, encodedPayload(next))
				model = append(model, next)
				next++
			} else if _, ok := q.Dequeue(op % 2); ok {
				model = model[1:]
			}
		}
		h.CrashNow()
		h.FinalizeCrash(rand.New(rand.NewSource(int64(cycle))))
		h.Restart()
		q = Recover(h, cfg)
	}
	for i, want := range model {
		p, ok := q.Dequeue(0)
		if !ok {
			t.Fatalf("ended at %d of %d", i, len(model))
		}
		v, err := decodePayload(p)
		if err != nil || v != want {
			t.Fatalf("item %d: got %d (%v), want %d", i, v, err, want)
		}
	}
}

// TestEnqueueBatchOneFence verifies the amortized batch-publish path:
// one blocking persist for the whole batch, payloads intact, FIFO kept,
// and the batch durable across an immediate crash.
func TestEnqueueBatchOneFence(t *testing.T) {
	h := newHeap(pmem.ModeCrash)
	q := New(h, Config{Threads: 1, MaxPayload: 120})
	for i := 0; i < 40; i++ { // warm pools past area creation
		q.Enqueue(0, payloadFor(uint64(i), 64))
	}
	const n = 16
	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = payloadFor(uint64(100+i), 100)
	}
	before := h.TotalStats()
	q.EnqueueBatch(0, batch)
	if d := h.TotalStats().Sub(before); d.Fences != 1 {
		t.Fatalf("EnqueueBatch of %d issued %d fences, want 1", n, d.Fences)
	}
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(5)))
	h.Restart()
	r := Recover(h, Config{Threads: 1, MaxPayload: 120})
	for i := 0; i < 40; i++ {
		if p, ok := r.Dequeue(0); !ok || !bytes.Equal(p, payloadFor(uint64(i), 64)) {
			t.Fatalf("recovered warmup payload %d mismatch (ok=%v)", i, ok)
		}
	}
	for i := 0; i < n; i++ {
		if p, ok := r.Dequeue(0); !ok || !bytes.Equal(p, batch[i]) {
			t.Fatalf("recovered batch payload %d mismatch (ok=%v)", i, ok)
		}
	}
	if _, ok := r.Dequeue(0); ok {
		t.Fatal("recovered queue has extra elements")
	}
}

// TestAckedLeaseRedelivery pins the ack-mode contract for byte
// payloads: leased-but-unacknowledged payloads are redelivered by
// recovery byte-for-byte exactly once, acknowledged ones never
// reappear.
func TestAckedLeaseRedelivery(t *testing.T) {
	h := newHeap(pmem.ModeCrash)
	cfg := Config{Threads: 2, MaxPayload: 120, Acked: true}
	q := New(h, cfg)
	for i := uint64(1); i <= 20; i++ {
		q.Enqueue(0, payloadFor(i, 9+int(i%100)))
	}
	ps, idxs := q.DequeueLeased(1, 10)
	if len(ps) != 10 {
		t.Fatalf("leased %d payloads, want 10", len(ps))
	}
	q.AckTo(1, idxs[5])
	if got := q.AckedTo(); got != 6 {
		t.Fatalf("AckedTo = %d, want 6", got)
	}

	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(21)))
	h.Restart()
	if !func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		Recover(h, Config{Threads: 2, MaxPayload: 120})
		return
	}() {
		t.Fatal("Recover with Acked=false on an acked queue did not panic")
	}
	rq := Recover(h, cfg)

	// Payloads 7..20 come back in order and intact; 1..6 are gone.
	for want := uint64(7); want <= 20; want++ {
		p, ok := rq.Dequeue(0)
		if !ok || !bytes.Equal(p, payloadFor(want, 9+int(want%100))) {
			t.Fatalf("recovered payload %d missing or corrupted (ok=%v)", want, ok)
		}
	}
	if _, ok := rq.Dequeue(0); ok {
		t.Fatal("recovered queue should be empty")
	}
}

// TestAckedFenceAccounting: leased dequeues are persist-free, an ack
// batch costs one NTStore plus one fence, redundant acks nothing.
func TestAckedFenceAccounting(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	q := New(h, Config{Threads: 1, MaxPayload: 64, Acked: true})
	for i := 0; i < 300; i++ { // warm both pools past area creation
		q.Enqueue(0, payloadFor(uint64(i), 40))
		q.Dequeue(0)
	}
	const n = 32
	for i := 0; i < n; i++ {
		q.Enqueue(0, payloadFor(uint64(1000+i), 40))
	}
	before := h.TotalStats()
	ps, idxs := q.DequeueLeased(0, n)
	d := h.TotalStats().Sub(before)
	if len(ps) != n {
		t.Fatalf("leased %d payloads, want %d", len(ps), n)
	}
	if d.Fences != 0 || d.NTStores != 0 || d.Flushes != 0 {
		t.Fatalf("leased dequeue issued fences=%d ntstores=%d flushes=%d, want 0/0/0",
			d.Fences, d.NTStores, d.Flushes)
	}
	before = h.TotalStats()
	q.AckTo(0, idxs[n-1])
	d = h.TotalStats().Sub(before)
	if d.Fences != 1 || d.NTStores != 1 {
		t.Fatalf("ack batch issued fences=%d ntstores=%d, want 1/1", d.Fences, d.NTStores)
	}
	before = h.TotalStats()
	q.AckTo(0, idxs[n-1])
	d = h.TotalStats().Sub(before)
	if d.Fences != 0 || d.NTStores != 0 {
		t.Fatalf("redundant ack issued fences=%d ntstores=%d, want 0/0", d.Fences, d.NTStores)
	}
}

// TestEnqueueBatchUnfencedPipeline pins the pipelined publish
// primitive for blob payloads: the issue phase costs zero fences, a
// later caller-side Fence acknowledges every window issued before it,
// and the issue/fence split preserves both FIFO content and the total
// fence count.
func TestEnqueueBatchUnfencedPipeline(t *testing.T) {
	h := newHeap(pmem.ModePerf)
	q := New(h, Config{Threads: 1, MaxPayload: 64})
	for i := 0; i < 100; i++ { // warm the node arenas past area creation
		q.Enqueue(0, payloadFor(uint64(i), 24))
	}
	for i := 0; i < 100; i++ {
		q.Dequeue(0)
	}
	const windows, wsize = 6, 5
	mk := func(w int) [][]byte {
		ps := make([][]byte, wsize)
		for i := range ps {
			ps[i] = payloadFor(uint64(1000+w*wsize+i), 33)
		}
		return ps
	}

	before := h.TotalStats()
	q.EnqueueBatchUnfenced(0, mk(0))
	if d := h.TotalStats().Sub(before); d.Fences != 0 {
		t.Fatalf("EnqueueBatchUnfenced issued %d fences, want 0 (issue phase only)", d.Fences)
	}
	before = h.TotalStats()
	for w := 1; w < windows; w++ {
		q.EnqueueBatchUnfenced(0, mk(w))
		h.Fence(0)
	}
	h.Fence(0)
	if d := h.TotalStats().Sub(before); d.Fences != windows {
		t.Fatalf("pipelined schedule paid %d fences for %d windows, want equal (count parity)",
			d.Fences, windows)
	}
	for i := 0; i < windows*wsize; i++ {
		p, ok := q.Dequeue(0)
		if !ok || !bytes.Equal(p, payloadFor(uint64(1000+i), 33)) {
			t.Fatalf("dequeue %d mismatched (ok=%v)", i, ok)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue not empty after draining all windows")
	}
}
