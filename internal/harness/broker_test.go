package harness

import (
	"testing"
	"time"
)

// TestRunBrokerFenceAmortization runs the broker workload briefly at
// batch 1 and batch 16 and checks the core claims: nothing published
// is lost, and the batch path issues measurably fewer producer fences
// per message than the per-message path.
func TestRunBrokerFenceAmortization(t *testing.T) {
	run := func(batch, dbatch int) BrokerResult {
		r, err := RunBroker(BrokerConfig{
			Topics: 2, Shards: 4, Producers: 2, Consumers: 2,
			Batch: batch, DequeueBatch: dbatch, Payload: 0,
			Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Published == 0 {
			t.Fatal("no messages published")
		}
		if r.Delivered != r.Published {
			t.Fatalf("batch %d/%d: delivered %d != published %d", batch, dbatch, r.Delivered, r.Published)
		}
		return r
	}
	perMsg := run(1, 1)
	batched := run(16, 1)
	f1, f16 := perMsg.ProducerFencesPerMsg(), batched.ProducerFencesPerMsg()
	t.Logf("producer fences/msg: batch=1 %.3f, batch=16 %.3f", f1, f16)
	if f1 < 0.99 {
		t.Errorf("per-message path should pay ~1 fence/msg, got %.3f", f1)
	}
	if f16 > f1/4 {
		t.Errorf("batch path should amortize fences (got %.3f vs %.3f per-message)", f16, f1)
	}
}

// TestRunBrokerConsumerAmortization is the consume-side mirror: with
// PollBatch the consumer fences per delivered message drop well below
// the per-message Poll path, and an idle consumer polling only empty
// shards issues (almost) no blocking persists thanks to the empty-poll
// fence elision.
func TestRunBrokerConsumerAmortization(t *testing.T) {
	run := func(dbatch int) BrokerResult {
		r, err := RunBroker(BrokerConfig{
			Topics: 2, Shards: 4, Producers: 2, Consumers: 2,
			Batch: 4, DequeueBatch: dbatch, Payload: 0,
			Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Delivered != r.Published {
			t.Fatalf("dbatch %d: delivered %d != published %d", dbatch, r.Delivered, r.Published)
		}
		return r
	}
	perMsg := run(1)
	batched := run(8)
	c1, c8 := perMsg.ConsumerFencesPerMsg(), batched.ConsumerFencesPerMsg()
	t.Logf("consumer fences/msg: dbatch=1 %.3f, dbatch=8 %.3f; idle fences/poll: %.4f / %.4f",
		c1, c8, perMsg.IdleFencesPerPoll(), batched.IdleFencesPerPoll())
	if c8 > c1/3 {
		t.Errorf("batched consume should amortize fences (got %.3f vs %.3f per-message)", c8, c1)
	}
	// The idle phase polls drained shards 1000 times; elision should
	// make that essentially free (allow a couple of stray persists for
	// indices the consumer had not yet re-observed).
	for _, r := range []BrokerResult{perMsg, batched} {
		if r.IdleFencesPerPoll() > 0.01 {
			t.Errorf("dbatch %d: idle polling paid %.4f fences/poll, want ~0", r.DequeueBatch, r.IdleFencesPerPoll())
		}
	}
}

// TestRunBrokerMultiHeap runs the workload over a 2-heap set, both
// spread (round-robin placement) and affine (block placement +
// heap-affine groups): nothing is lost, per-heap stats cover both
// domains, and round-robin keeps persist traffic roughly balanced.
func TestRunBrokerMultiHeap(t *testing.T) {
	for _, affine := range []bool{false, true} {
		r, err := RunBroker(BrokerConfig{
			Topics: 2, Shards: 4, Heaps: 2, Affine: affine,
			Producers: 2, Consumers: 2,
			Batch: 4, DequeueBatch: 8, Payload: 0,
			Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Delivered != r.Published || r.Published == 0 {
			t.Fatalf("affine=%v: delivered %d / published %d", affine, r.Delivered, r.Published)
		}
		if len(r.PerHeap) != 2 {
			t.Fatalf("affine=%v: PerHeap has %d entries, want 2", affine, len(r.PerHeap))
		}
		for i, s := range r.PerHeap {
			if s.Fences == 0 {
				t.Errorf("affine=%v: heap %d recorded no fences — shards not spread across the set", affine, i)
			}
		}
		// Both layouts put equal shard counts on each domain here, so
		// persist traffic should stay near-balanced; allow generous
		// slack for scheduling skew.
		if imb := r.HeapImbalance(); imb > 1.5 {
			t.Errorf("affine=%v: heap imbalance %.3f, want <= 1.5", affine, imb)
		}
		t.Logf("affine=%v: published %d, imbalance %.3f, cons fences/msg %.4f",
			affine, r.Published, r.HeapImbalance(), r.ConsumerFencesPerMsg())
	}
}

// TestRunBrokerAckMode runs the acknowledged workload: every batch is
// acked (AckFencesPerMsg ~ 1/DequeueBatch), kills cause takeovers and
// the redelivered count surfaces them; nothing acked goes unmeasured.
func TestRunBrokerAckMode(t *testing.T) {
	r, err := RunBroker(BrokerConfig{
		Topics: 2, Shards: 4, Producers: 2, Consumers: 3,
		Batch: 8, DequeueBatch: 8, Ack: true, Kills: 1,
		Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Published == 0 || r.Delivered == 0 {
		t.Fatalf("no traffic: published %d delivered %d", r.Published, r.Delivered)
	}
	if r.Acked == 0 {
		t.Fatal("ack mode ran without acknowledgments")
	}
	if r.AckFences == 0 {
		t.Fatal("acknowledgments measured zero fences")
	}
	af := r.AckFencesPerMsg()
	t.Logf("ack mode: delivered %d, acked %d, ack fences/msg %.4f, redelivered %d (rate %.4f)",
		r.Delivered, r.Acked, af, r.Redelivered, r.RedeliveryRate())
	// One ack fence per 8-message batch, with slack for partial final
	// batches and the killed consumer's unacked windows.
	if af > 0.5 {
		t.Errorf("ack fences per message = %.4f; expected amortized (~1/8)", af)
	}
	// A leased poll's only persists are the lease lines: consumer
	// fences stay amortized too.
	if cf := r.ConsumerFencesPerMsg(); cf > 1.0 {
		t.Errorf("consumer fences per message = %.4f in ack mode; expected ~2/dbatch", cf)
	}
	if r.IdleFencesPerPoll() != 0 {
		t.Errorf("idle acked polls paid %.4f fences/poll, want 0", r.IdleFencesPerPoll())
	}
}

// TestRunBrokerDynTopics runs live administration beside the traffic:
// topics are created mid-run from a dedicated admin thread, their
// fence cost is measured, and the data plane's audit (delivered ==
// published) is unaffected.
func TestRunBrokerDynTopics(t *testing.T) {
	r, err := RunBroker(BrokerConfig{
		Topics: 2, Shards: 2, Heaps: 2, Producers: 2, Consumers: 2,
		Batch: 4, DequeueBatch: 4, DynTopics: 3,
		Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != r.Published || r.Published == 0 {
		t.Fatalf("delivered %d / published %d", r.Delivered, r.Published)
	}
	if r.DynTopics != 3 {
		t.Fatalf("created %d dynamic topics, want 3", r.DynTopics)
	}
	df := r.DynFencesPerCreate()
	if df == 0 {
		t.Fatal("dynamic creations measured zero fences")
	}
	// Catalog protocol = 3 fences; 2 shards of queue init on top. Far
	// below 100 whatever the queue internals cost.
	if df < 3 || df > 100 {
		t.Errorf("dyn fences/create = %.2f, outside the plausible [3,100]", df)
	}
	t.Logf("dyn topics: %d created at %.2f fences/create", r.DynTopics, df)
}

// TestRunBrokerDelTopics runs topic retirement beside the traffic:
// a scratch topic is cycled through create → publish → delete from a
// dedicated thread, the delete cost is pinned, and the slot footprint
// proves the retired windows are recycled — more cycles, same marks.
func TestRunBrokerDelTopics(t *testing.T) {
	run := func(cycles int) BrokerResult {
		r, err := RunBroker(BrokerConfig{
			Topics: 2, Shards: 2, Heaps: 2, Producers: 2, Consumers: 2,
			Batch: 4, DequeueBatch: 4, DelTopics: cycles,
			Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Delivered != r.Published || r.Published == 0 {
			t.Fatalf("delivered %d / published %d", r.Delivered, r.Published)
		}
		if int(r.DelTopics) != cycles {
			t.Fatalf("retired %d topics, want %d", r.DelTopics, cycles)
		}
		return r
	}
	one, four := run(1), run(4)
	df := four.DelFencesPerDelete()
	if df < 2 || df > 3 {
		t.Errorf("del fences/delete = %.2f, outside the pinned [2,3]", df)
	}
	// Reuse proof: three more create→delete cycles of the same shape
	// must not move the high-water marks, and the scratch windows end
	// on the free list both times.
	if four.SlotsUsed != one.SlotsUsed {
		t.Errorf("slot high-water grew with churn: %d used after 4 cycles, %d after 1",
			four.SlotsUsed, one.SlotsUsed)
	}
	if four.SlotsFree == 0 {
		t.Error("no freed windows on the free list after retirement churn")
	}
	t.Logf("del topics: %d cycles at %.2f fences/delete, footprint %d used / %d free",
		four.DelTopics, df, four.SlotsUsed, four.SlotsFree)
}

// TestRunBrokerHeapLatencies: per-heap fence latencies (asymmetric
// NUMA) flow through to the member heaps without disturbing the
// workload audit.
func TestRunBrokerHeapLatencies(t *testing.T) {
	r, err := RunBroker(BrokerConfig{
		Topics: 2, Shards: 2, Heaps: 2, Producers: 2, Consumers: 2,
		Batch: 4, DequeueBatch: 4,
		HeapFenceNs: []int64{50, 800},
		Duration:    150 * time.Millisecond, HeapBytes: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != r.Published || r.Published == 0 {
		t.Fatalf("delivered %d / published %d", r.Delivered, r.Published)
	}
	if len(r.PerHeap) != 2 || r.PerHeap[0].Fences == 0 || r.PerHeap[1].Fences == 0 {
		t.Fatalf("per-heap stats missing: %+v", r.PerHeap)
	}
	t.Logf("asymmetric run: published %d, heap fences %d / %d",
		r.Published, r.PerHeap[0].Fences, r.PerHeap[1].Fences)
}

// TestRunBrokerChurn runs membership churn beside the traffic:
// consumers are stalled mid-window, their shards force-split or
// stolen, and their resurfacing stale acks refused — without the
// delivered/acked audit losing a message.
func TestRunBrokerChurn(t *testing.T) {
	r, err := RunBroker(BrokerConfig{
		Topics: 2, Shards: 4, Producers: 2, Consumers: 3,
		Batch: 8, DequeueBatch: 8, Ack: true, Churn: 4,
		Duration: 200 * time.Millisecond, HeapBytes: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Published == 0 || r.Delivered == 0 || r.Acked == 0 {
		t.Fatalf("no traffic: published %d delivered %d acked %d", r.Published, r.Delivered, r.Acked)
	}
	if r.Churn != 4 {
		t.Fatalf("churn echoed as %d, want 4", r.Churn)
	}
	// Each completed cycle displaces the stalled member's shards one
	// way (Reassign) or the other (Steal and/or Scan); cycles can be
	// skipped when the victim drains first, but a 200ms produce phase
	// has to land at least one.
	if r.Reassigned == 0 && r.Stolen == 0 && r.Scans == 0 {
		t.Fatal("churn ran without a single reassignment, steal or scan")
	}
	// A displaced member's window is redelivered elsewhere and the
	// stale ack refused: every delivery still accounts once, so acked
	// never exceeds published even with the double-counted windows.
	if r.Acked > r.Published {
		t.Fatalf("acked %d > published %d", r.Acked, r.Published)
	}
	t.Logf("churn: published %d, delivered %d, acked %d, fenced acks %d, reassigned %d, stolen %d, scans %d",
		r.Published, r.Delivered, r.Acked, r.FencedAcks, r.Reassigned, r.Stolen, r.Scans)
}

// TestRunBrokerTailIdleAdaptive pins the headline tail-latency claim
// at harness level: with slow arrivals (an idle topic), a fixed
// 8-message publish window makes every message wait for its window to
// fill (p50 >= ~3.5 arrival gaps by construction), while the adaptive
// policy collapses to per-message flushes (p50 ~ one publish call).
// The assertion uses the median: the short run collects only a few
// hundred samples, so p99 is effectively the worst sample and a single
// descheduled goroutine (common under -race) can smear it for either
// mode; the median only moves if the windowing behaviour itself
// changes, which is the regression this test protects against.
// BENCH_broker.json carries the p99 claim at benchmark duration.
func TestRunBrokerTailIdleAdaptive(t *testing.T) {
	run := func(adaptive bool) BrokerResult {
		// Poller consumers: busy-spinning consumers preempt the gapped
		// producers (worst under -race) and smear the sojourn tail the
		// test compares; parked event loops don't.
		r, err := RunBroker(BrokerConfig{
			Topics: 2, Shards: 2, Producers: 2, Consumers: 2,
			Batch: 8, DequeueBatch: 4, Poller: true,
			AdaptiveBatch: adaptive, ProduceGapNs: 300_000,
			Duration: 200 * time.Millisecond, HeapBytes: 256 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Published == 0 || r.Delivered != r.Published {
			t.Fatalf("adaptive=%v: delivered %d / published %d", adaptive, r.Delivered, r.Published)
		}
		if r.PubSojournP50Ns == 0 {
			t.Fatalf("adaptive=%v: no sojourn samples", adaptive)
		}
		return r
	}
	fixed := run(false)
	adaptive := run(true)
	t.Logf("idle sojourn p50: fixed batch=8 %.0fns, adaptive %.0fns (p99 %.0f vs %.0f)",
		fixed.PubSojournP50Ns, adaptive.PubSojournP50Ns,
		fixed.PubSojournP99Ns, adaptive.PubSojournP99Ns)
	if adaptive.PubSojournP50Ns > fixed.PubSojournP50Ns/2 {
		t.Errorf("adaptive idle p50 %.0fns not < half of fixed %.0fns",
			adaptive.PubSojournP50Ns, fixed.PubSojournP50Ns)
	}
}

// TestRunBrokerPipeline: pipelined publishes keep the audit exact
// (the final Flush acknowledges the trailing window) and pay no more
// producer fences per message than the unpipelined batch path.
func TestRunBrokerPipeline(t *testing.T) {
	run := func(pipeline bool) BrokerResult {
		r, err := RunBroker(BrokerConfig{
			Topics: 2, Shards: 4, Producers: 2, Consumers: 2,
			Batch: 8, DequeueBatch: 4, Pipeline: pipeline,
			Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Published == 0 || r.Delivered != r.Published {
			t.Fatalf("pipeline=%v: delivered %d / published %d", pipeline, r.Delivered, r.Published)
		}
		return r
	}
	plain := run(false)
	piped := run(true)
	fp, fpp := plain.ProducerFencesPerMsg(), piped.ProducerFencesPerMsg()
	t.Logf("producer fences/msg: plain %.4f, pipelined %.4f", fp, fpp)
	// Count parity: pipelining moves overlap, not fence count. Allow
	// slack for the differing publish counts of two timed runs.
	if fpp > fp*1.25 {
		t.Errorf("pipelined fences/msg %.4f well above plain %.4f", fpp, fp)
	}
}

// TestRunBrokerPollerMode runs consumers as event loops, acknowledged
// and pipelined: everything published is delivered exactly through the
// pollers (Stop drains to empty), everything delivered is acked, and
// the post-drain idle loops park on the backoff timer.
func TestRunBrokerPollerMode(t *testing.T) {
	r, err := RunBroker(BrokerConfig{
		Topics: 2, Shards: 4, Producers: 2, Consumers: 2,
		Batch: 8, DequeueBatch: 8, Ack: true,
		AdaptiveBatch: true, Pipeline: true, Poller: true,
		Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Published == 0 || r.Delivered != r.Published {
		t.Fatalf("delivered %d / published %d", r.Delivered, r.Published)
	}
	if r.Acked != r.Delivered {
		t.Fatalf("poller acked %d of %d delivered", r.Acked, r.Delivered)
	}
	if !r.Poller || !r.AdaptiveBatch || !r.Pipeline {
		t.Fatalf("mode flags not echoed: %+v", r)
	}
	t.Logf("poller mode: published %d, sleeps %d, wakes %d, cons fences/msg %.4f",
		r.Published, r.PollerSleeps, r.PollerWakes, r.ConsumerFencesPerMsg())
}
