package harness

import (
	"testing"
	"time"
)

// TestRunBrokerFenceAmortization runs the broker workload briefly at
// batch 1 and batch 16 and checks the core claims: nothing published
// is lost, and the batch path issues measurably fewer producer fences
// per message than the per-message path.
func TestRunBrokerFenceAmortization(t *testing.T) {
	run := func(batch int) BrokerResult {
		r, err := RunBroker(BrokerConfig{
			Topics: 2, Shards: 4, Producers: 2, Consumers: 2,
			Batch: batch, Payload: 0,
			Duration: 150 * time.Millisecond, HeapBytes: 256 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Published == 0 {
			t.Fatal("no messages published")
		}
		if r.Delivered != r.Published {
			t.Fatalf("batch %d: delivered %d != published %d", batch, r.Delivered, r.Published)
		}
		return r
	}
	perMsg := run(1)
	batched := run(16)
	f1, f16 := perMsg.ProducerFencesPerMsg(), batched.ProducerFencesPerMsg()
	t.Logf("producer fences/msg: batch=1 %.3f, batch=16 %.3f", f1, f16)
	if f1 < 0.99 {
		t.Errorf("per-message path should pay ~1 fence/msg, got %.3f", f1)
	}
	if f16 > f1/4 {
		t.Errorf("batch path should amortize fences (got %.3f vs %.3f per-message)", f16, f1)
	}
}
