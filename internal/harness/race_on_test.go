//go:build race

package harness

// raceEnabled trims the all-queues harness matrix when the race
// detector (which slows the simulator an order of magnitude) is on.
const raceEnabled = true
