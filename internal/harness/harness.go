// Package harness drives the five workloads of the paper's
// evaluation (Figure 2) over any registered queue and reports
// throughput, ratio-to-baseline and persist statistics.
package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/onll"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/queues"
)

// Workload identifies one Figure 2 panel.
type Workload int

const (
	// WorkloadRandom: each operation is a 50/50 uniform coin flip
	// between enqueue and dequeue (Figure 2, panel 1).
	WorkloadRandom Workload = iota
	// WorkloadPairs: each thread runs enqueue-dequeue pairs (panel 2).
	WorkloadPairs
	// WorkloadEnqOnly: producers only, on an initially empty queue
	// (panel 3).
	WorkloadEnqOnly
	// WorkloadDeqOnly: consumers only, on a prefilled queue (panel 4).
	WorkloadDeqOnly
	// WorkloadProdCons: a quarter of the threads dequeue then
	// enqueue a fixed op count; the rest enqueue then dequeue
	// (panel 5).
	WorkloadProdCons
)

// Name returns the workload's short name.
func (w Workload) Name() string {
	switch w {
	case WorkloadRandom:
		return "random"
	case WorkloadPairs:
		return "pairs"
	case WorkloadEnqOnly:
		return "enq"
	case WorkloadDeqOnly:
		return "deq"
	case WorkloadProdCons:
		return "prodcons"
	}
	return "unknown"
}

// Workloads lists all Figure 2 panels in order.
func Workloads() []Workload {
	return []Workload{WorkloadRandom, WorkloadPairs, WorkloadEnqOnly, WorkloadDeqOnly, WorkloadProdCons}
}

// ParseWorkload resolves a workload name.
func ParseWorkload(s string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name() == s {
			return w, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q", s)
}

// Config parameterizes one measurement.
type Config struct {
	Queue    queues.Info
	Workload Workload
	Threads  int
	// Duration bounds timed workloads (random, pairs, enq, deq).
	Duration time.Duration
	// OpsPerThread is the fixed op count for prodcons (the paper
	// uses 1M enqueues + 1M dequeues per thread).
	OpsPerThread int
	// InitialSize prefills the queue (the paper uses 10 for random/
	// pairs/prodcons and 12M for deq-only).
	InitialSize int
	HeapBytes   int64
	Latency     pmem.LatencyModel
	// FlushRetainsLine models a platform whose flushes keep lines in
	// the cache (the no-invalidation ablation).
	FlushRetainsLine bool
	Seed             int64
}

// Result is one measurement outcome.
type Result struct {
	Queue    string
	Workload string
	Threads  int
	Ops      uint64
	Elapsed  time.Duration
	Stats    pmem.Stats
}

// Mops returns million operations per second.
func (r Result) Mops() float64 {
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// FencesPerOp returns the measured blocking persists per operation.
func (r Result) FencesPerOp() float64 {
	return float64(r.Stats.Fences) / float64(r.Ops)
}

// PostFlushPerOp returns the measured accesses-to-flushed-content per
// operation.
func (r Result) PostFlushPerOp() float64 {
	return float64(r.Stats.PostFlushAccesses) / float64(r.Ops)
}

// AllQueues returns every benchmarkable queue: the package queues
// registry plus the PTM queues. ONLL is excluded (its log space grows
// with every operation, which a timed run would exhaust); it is
// covered by cmd/fencecount and its own tests.
func AllQueues() []queues.Info {
	out := append([]queues.Info{}, queues.All()...)
	out = append(out, ptm.All()...)
	return out
}

// LookupQueue finds a queue by name across all registries, including
// "onll".
func LookupQueue(name string) (queues.Info, bool) {
	if name == "onll" {
		return onll.Info(), true
	}
	for _, in := range AllQueues() {
		if in.Name == name {
			return in, true
		}
	}
	return queues.Info{}, false
}

// Run executes one measurement.
func Run(cfg Config) Result {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 << 20
		if cfg.Workload == WorkloadDeqOnly {
			need := int64(cfg.InitialSize)*80 + (16 << 20)
			if need > cfg.HeapBytes {
				cfg.HeapBytes = need
			}
		}
		if cfg.Workload == WorkloadEnqOnly || cfg.Workload == WorkloadProdCons {
			cfg.HeapBytes = 512 << 20
		}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = 100_000
	}

	h := pmem.New(pmem.Config{
		Bytes:            cfg.HeapBytes,
		Mode:             pmem.ModePerf,
		MaxThreads:       cfg.Threads + 1,
		FlushRetainsLine: cfg.FlushRetainsLine,
	})
	q := cfg.Queue.New(h, cfg.Threads)
	for i := 0; i < cfg.InitialSize; i++ { // prefill at full speed
		q.Enqueue(0, uint64(i)+1)
	}
	h.SetLatency(cfg.Latency)
	h.ResetStats()

	prev := runtime.GOMAXPROCS(0)
	if cfg.Threads > prev {
		runtime.GOMAXPROCS(cfg.Threads)
		defer runtime.GOMAXPROCS(prev)
	}

	var stop atomic.Bool
	var totalOps atomic.Uint64
	var start sync.WaitGroup
	var done sync.WaitGroup
	start.Add(1)

	worker := func(tid int) {
		defer done.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(tid)*7919))
		seq := uint64(1)
		val := func() uint64 { v := uint64(tid+1)<<40 | seq; seq++; return v }
		ops := uint64(0)
		start.Wait()
		switch cfg.Workload {
		case WorkloadRandom:
			for !stop.Load() {
				if rng.Intn(2) == 0 {
					q.Enqueue(tid, val())
				} else {
					q.Dequeue(tid)
				}
				ops++
			}
		case WorkloadPairs:
			for !stop.Load() {
				q.Enqueue(tid, val())
				q.Dequeue(tid)
				ops += 2
			}
		case WorkloadEnqOnly:
			for !stop.Load() {
				q.Enqueue(tid, val())
				ops++
			}
		case WorkloadDeqOnly:
			for !stop.Load() {
				if _, ok := q.Dequeue(tid); !ok {
					break // drained; the paper's run ends before this
				}
				ops++
			}
		case WorkloadProdCons:
			first, second := WorkloadEnqOnly, WorkloadDeqOnly
			if tid < cfg.Threads/4 {
				first, second = second, first
			}
			for _, phase := range []Workload{first, second} {
				for i := 0; i < cfg.OpsPerThread; i++ {
					if phase == WorkloadEnqOnly {
						q.Enqueue(tid, val())
					} else {
						q.Dequeue(tid)
					}
					ops++
				}
			}
		}
		totalOps.Add(ops)
	}

	for tid := 0; tid < cfg.Threads; tid++ {
		done.Add(1)
		go worker(tid)
	}
	begin := time.Now()
	start.Done()
	if cfg.Workload != WorkloadProdCons {
		timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
		defer timer.Stop()
	}
	done.Wait()
	elapsed := time.Since(begin)

	return Result{
		Queue:    cfg.Queue.Name,
		Workload: cfg.Workload.Name(),
		Threads:  cfg.Threads,
		Ops:      totalOps.Load(),
		Elapsed:  elapsed,
		Stats:    h.TotalStats(),
	}
}
