package harness

import (
	"testing"
	"time"

	"repro/internal/pmem"
)

func quickCfg(w Workload, queue string, threads int) Config {
	in, ok := LookupQueue(queue)
	if !ok {
		panic("unknown queue " + queue)
	}
	cfg := Config{
		Queue:        in,
		Workload:     w,
		Threads:      threads,
		Duration:     25 * time.Millisecond,
		OpsPerThread: 500,
		InitialSize:  10,
		HeapBytes:    64 << 20,
		Latency:      pmem.ZeroLatency(),
		Seed:         3,
	}
	if w == WorkloadDeqOnly {
		cfg.InitialSize = 50_000
		if raceEnabled {
			cfg.InitialSize = 10_000
		}
	}
	return cfg
}

func TestRunAllWorkloadsAllQueues(t *testing.T) {
	for _, in := range AllQueues() {
		if raceEnabled {
			// Under the race detector the simulator runs an order of
			// magnitude slower; exercise the harness plumbing on a
			// representative subset (the queues themselves get full
			// race coverage in their own packages).
			switch in.Name {
			case "opt-unlinked", "durable-msq", "msq", "onefile":
			default:
				continue
			}
		}
		for _, w := range Workloads() {
			r := Run(quickCfg(w, in.Name, 2))
			if r.Ops == 0 {
				t.Errorf("%s/%s: zero ops", in.Name, w.Name())
			}
			if r.Elapsed <= 0 {
				t.Errorf("%s/%s: non-positive elapsed", in.Name, w.Name())
			}
		}
	}
}

func TestRunMeasuresFencesPerOp(t *testing.T) {
	// Pairs on opt-unlinked must show exactly 1 fence per op.
	r := Run(quickCfg(WorkloadPairs, "opt-unlinked", 1))
	if f := r.FencesPerOp(); f < 0.99 || f > 1.01 {
		t.Errorf("opt-unlinked pairs fences/op = %.3f, want 1", f)
	}
	if p := r.PostFlushPerOp(); p != 0 {
		t.Errorf("opt-unlinked pairs post-flush/op = %.3f, want 0", p)
	}
	// DurableMSQ pairs: (2 enq + 1 deq) / 2 ops = 1.5 fences/op.
	r = Run(quickCfg(WorkloadPairs, "durable-msq", 1))
	if f := r.FencesPerOp(); f < 1.45 || f > 1.55 {
		t.Errorf("durable-msq pairs fences/op = %.3f, want 1.5", f)
	}
}

func TestSweepAndTables(t *testing.T) {
	base := quickCfg(WorkloadPairs, "durable-msq", 1)
	base.Queue = Config{}.Queue // Sweep fills it
	results, err := Sweep(base, []string{"durable-msq", "opt-unlinked"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(results[0]) != 2 {
		t.Fatalf("unexpected sweep shape %dx%d", len(results), len(results[0]))
	}
	for _, s := range []string{
		ThroughputTable("t", []int{1, 2}, results),
		RatioTable("t", "durable-msq", []int{1, 2}, results),
		StatsTable("t", []int{1, 2}, results),
		CSV(results),
	} {
		if len(s) == 0 {
			t.Fatal("empty table rendering")
		}
	}
}

func TestParseWorkload(t *testing.T) {
	for _, w := range Workloads() {
		got, err := ParseWorkload(w.Name())
		if err != nil || got != w {
			t.Fatalf("ParseWorkload(%q) = %v, %v", w.Name(), got, err)
		}
	}
	if _, err := ParseWorkload("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestLookupQueue(t *testing.T) {
	for _, name := range []string{"opt-unlinked", "onefile", "onll", "msq"} {
		if _, ok := LookupQueue(name); !ok {
			t.Fatalf("LookupQueue(%q) failed", name)
		}
	}
	if _, ok := LookupQueue("bogus"); ok {
		t.Fatal("LookupQueue accepted a bogus name")
	}
}
