package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/broker"
	"repro/internal/obs"
	"repro/internal/pmem"
)

// stallCtl coordinates one churn cycle: the stalled consumer closes
// stalled when it parks holding a delivered-but-unacked window, and
// unparks when the controller closes resume.
type stallCtl struct {
	stalled chan struct{}
	resume  chan struct{}
}

// BrokerConfig parameterizes one broker measurement: a multi-topic
// produce/consume sweep that joins the five Figure-2 panels as the
// harness's system-level workload. Producers publish round-robin
// across topics (and, inside each topic, round-robin across shards);
// consumers form one group covering every topic.
type BrokerConfig struct {
	// Topics is the number of topics (>= 1).
	Topics int
	// Shards is the shard count per topic (>= 1).
	Shards int
	// Heaps is the number of member heaps the broker spans (>= 1, each
	// of HeapBytes). Shards spread across the set per the placement
	// policy; per-heap persist statistics land in PerHeap.
	Heaps int
	// Affine selects heap-affine deployment: block shard placement
	// plus heap-affine consumer assignment, so each consumer's fences
	// stay on one domain. Default is round-robin placement and
	// round-robin shard assignment.
	Affine bool
	// Producers and Consumers are the worker thread counts.
	Producers int
	Consumers int
	// Batch is the number of messages per publish call: 1 measures the
	// per-message path (one fence per message), larger values measure
	// the amortized batch path (one fence per batch).
	Batch int
	// DequeueBatch is the number of messages per consumer poll: 1
	// measures the per-message Poll path (one fence per delivery, plus
	// one per empty scan that moved the head), larger values measure
	// PollBatch (a single fence covering up to DequeueBatch deliveries
	// across all of the member's shards).
	DequeueBatch int
	// Payload is the message size in bytes; 0 selects fixed 8-byte
	// topics on OptUnlinkedQ, > 0 variable-payload topics on blobq.
	Payload int
	// Ack enables acknowledged delivery: topics are created Acked, the
	// group is a leased one (NewGroupAcked) and every consumer
	// acknowledges each poll batch after "processing" it, so the
	// measurement shows the full exactly-once pipeline — lease fence
	// per poll, ack fence per batch (AckFencesPerMsg ~ 1/DequeueBatch).
	Ack bool
	// Kills crashes that many consumers mid-run (cooperatively: the
	// member abandons its unacked window), waits out their leases and
	// adopts their shards into consumer 0 — the adopted redeliveries
	// surface as Redelivered. Requires Ack; at most Consumers-1.
	Kills int
	// Churn runs that many membership-churn cycles spread across the
	// produce phase: each cycle stalls one consumer mid-window (it
	// keeps running but stops acking), then either force-splits its
	// shards across the survivors (Reassign) or expires the leases on
	// the logical clock and lets consumer 0 work-steal them shard by
	// shard before a Scan sweeps up the rest. The stalled member's
	// refused stale-epoch acks surface as FencedAcks. Requires Ack and
	// at least two consumers.
	Churn int
	// AdaptiveBatch replaces the fixed window sizes with AIMD policies:
	// producers publish through a Publisher whose window adapts between
	// 1 and Batch (with an arrival-rate gate, see PublisherConfig), and
	// consumers size each PollBatch drain between 1 and DequeueBatch
	// from the depth the previous drain observed.
	AdaptiveBatch bool
	// Pipeline defers each publish window's fence into the next flush
	// (Publisher pipelining); with Poller+Ack it also selects AckAsync,
	// so ack fences ride into the next wakeup.
	Pipeline bool
	// Poller runs each consumer as a broker.Poller event loop (backoff
	// instead of spinning) rather than a busy poll loop. Incompatible
	// with Kills/Churn (the cooperative stall/kill hooks live in the
	// busy loop); norm() zeroes them.
	Poller bool
	// ProduceGapNs spaces message arrivals: each producer waits this
	// long between minting messages, modelling an idle/low-rate topic.
	// Any non-zero gap routes producers through the Publisher path so
	// buffering delay is part of the measured publish sojourn.
	ProduceGapNs int64
	// DynTopics creates that many extra topics on the live broker,
	// spread across the produce phase, from a dedicated administrator
	// thread running beside the traffic — measuring what live
	// administration costs (DynTopicFences) while the data plane runs.
	DynTopics int
	// DelTopics runs that many create→delete cycles of a scratch topic
	// on the live broker, spread across the produce phase, from a
	// dedicated retirement thread — measuring what topic retirement
	// costs (DelTopicFences, a pinned ≤3-fence tombstone protocol) and,
	// through the post-run SlotsUsed/SlotsFree footprint, that the
	// churned windows are recycled through the free list instead of
	// growing the heaps' high-water marks.
	DelTopics int
	// DelayTopics and PrioTopics create that many heap-backed topics
	// (KindDelay / KindPriority) beside the FIFO ones, driven by a
	// dedicated heap-traffic thread: each cycle durably publishes one
	// Batch-sized window per heap topic (one fence, deadlines / ranks
	// from a logical clock) and pops up to DequeueBatch ready messages
	// per topic (one fence per non-empty batch). The fence deltas land
	// in HeapPubFences/HeapPopFences, so HeapFencesPerPublish ~ 1/Batch
	// and HeapFencesPerPop ~ 1/DequeueBatch are directly visible beside
	// the FIFO columns.
	DelayTopics int
	PrioTopics  int
	// Duration bounds the produce phase. Consumers drain afterwards.
	Duration  time.Duration
	HeapBytes int64
	Latency   pmem.LatencyModel
	// HeapFenceNs, when non-empty, gives each member heap its own
	// SFENCE latency (heap i takes HeapFenceNs[i % len]): the
	// asymmetric-NUMA topology NewSetOf models, where one domain is
	// slower than another. Empty means every heap uses Latency as is.
	HeapFenceNs []int64
	// Observe attaches an obs.Observer to the broker and fills
	// BrokerResult.Latency with the per-op latency snapshot (including
	// the setup-phase CreateTopic calls under the admin op). Off by
	// default so throughput baselines measure the uninstrumented paths.
	Observe bool
}

func (c *BrokerConfig) norm() {
	if c.Topics <= 0 {
		c.Topics = 2
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Heaps <= 0 {
		c.Heaps = 1
	}
	if c.Producers <= 0 {
		c.Producers = 2
	}
	if c.Consumers <= 0 {
		c.Consumers = 2
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.DequeueBatch <= 0 {
		c.DequeueBatch = 1
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.HeapBytes == 0 {
		c.HeapBytes = 512 << 20
	}
	if !c.Ack {
		c.Kills = 0
		c.Churn = 0
	}
	if c.Kills >= c.Consumers {
		c.Kills = c.Consumers - 1
	}
	if c.Kills < 0 {
		c.Kills = 0
	}
	if c.Consumers < 2 || c.Churn < 0 {
		c.Churn = 0
	}
	if c.DynTopics < 0 {
		c.DynTopics = 0
	}
	if c.DelTopics < 0 {
		c.DelTopics = 0
	}
	if c.ProduceGapNs < 0 {
		c.ProduceGapNs = 0
	}
	if c.DelayTopics < 0 {
		c.DelayTopics = 0
	}
	if c.PrioTopics < 0 {
		c.PrioTopics = 0
	}
	if c.Poller {
		c.Kills = 0
		c.Churn = 0
	}
}

// usePublisher reports whether producers go through the Publisher
// path (buffered windows, optional pipelining) instead of direct
// Publish/PublishBatch calls. Any arrival gap forces it: buffering
// delay must be visible in the sojourn measurement for the fixed
// and adaptive policies to be comparable.
func (c *BrokerConfig) usePublisher() bool {
	return c.AdaptiveBatch || c.Pipeline || c.ProduceGapNs > 0
}

// BrokerResult is one broker measurement outcome. Producer and
// Consumer aggregate the persist statistics of the two thread groups
// separately (summed across member heaps), so the batch-publish fence
// amortization is directly visible as Producer.Fences / Published;
// PerHeap splits all traffic by persistence domain instead, exposing
// placement imbalance.
type BrokerResult struct {
	Topics, Shards, Heaps, Producers, Consumers, Batch, DequeueBatch, Payload int
	Affine, Ack                                                               bool
	Kills, Churn                                                              int
	AdaptiveBatch, Pipeline, Poller                                           bool
	ProduceGapNs                                                              int64

	Published uint64
	Delivered uint64
	Elapsed   time.Duration
	Producer  pmem.Stats
	Consumer  pmem.Stats

	// Ack-mode statistics: messages acknowledged, blocking persists
	// spent inside Ack calls, and messages redelivered after a consumer
	// kill + lease takeover.
	Acked       uint64
	AckFences   uint64
	Redelivered uint64

	// Membership-churn statistics: stale-epoch acks refused with
	// ErrFenced, shards moved by forced Reassign splits, shards taken
	// by work-stealing, and expiry scans run (only the churn
	// controller's deliberate ones are counted).
	FencedAcks uint64
	Reassigned uint64
	Stolen     uint64
	Scans      uint64

	// Live-administration statistics: topics created mid-run on the
	// live broker and the blocking persists they cost (catalog
	// protocol plus per-shard queue initialization).
	DynTopics      uint64
	DynTopicFences uint64

	// Topic-retirement statistics: create→delete cycles completed
	// mid-run, the blocking persists the DeleteTopic calls cost, and
	// the slot footprint after the run — SlotsUsed is the high-water
	// sum across heaps, SlotsFree the free-list population. A churn run
	// whose SlotsUsed matches the churn-free baseline proves the
	// retired windows were recycled.
	DelTopics      uint64
	DelTopicFences uint64
	SlotsUsed      int
	SlotsFree      int

	// Heap-topic statistics: messages durably published to and popped
	// from the delay/priority topics by the heap-traffic thread, and
	// the blocking persists those calls cost. The two ratios below are
	// the bench-guarded counters: publishes amortize to ~1/Batch fences
	// per message and pops to ~1/DequeueBatch, with zero persists spent
	// on heap maintenance (sift) by construction.
	DelayTopics   int
	PrioTopics    int
	HeapPublished uint64
	HeapPopped    uint64
	HeapPubFences uint64
	HeapPopFences uint64

	// PerHeap is each member heap's total event counters for the
	// measured phase (all threads).
	PerHeap []pmem.Stats

	// IdlePolls/IdlePollFences measure the post-drain idle phase: one
	// consumer repeatedly polling its (empty) shards. With empty-poll
	// fence elision the fences stay ~0 after the first poll; without
	// it every poll would fence once per owned shard.
	IdlePolls      uint64
	IdlePollFences uint64

	// PubSojournP50Ns/P99Ns/P999Ns are quantiles of the publish
	// *sojourn*: the time from a message's arrival at the producer to
	// its durable acknowledgment, including any wait in a Publisher
	// window and any pipelined one-window acknowledgment lag. This —
	// not the publish-call latency — is the tail a client of an idle
	// topic experiences, and the number adaptive batching attacks.
	// On the direct (non-Publisher) path it degenerates to the
	// publish-call duration.
	PubSojournP50Ns  float64
	PubSojournP99Ns  float64
	PubSojournP999Ns float64

	// Poller-mode statistics: timer sleeps taken after empty sweeps
	// and explicit wakeups, summed over all consumers' loops. Zero
	// outside Poller mode.
	PollerSleeps uint64
	PollerWakes  uint64

	// Latency is the observer snapshot (per-op histograms, topic and
	// group gauges, per-heap persist counters), nil unless
	// BrokerConfig.Observe was set.
	Latency *obs.Snapshot
}

// sojournQuantiles sorts the sample set and fills the sojourn
// quantile fields; no samples leaves them zero.
func (r *BrokerResult) sojournQuantiles(samples []int64) {
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return float64(samples[i])
	}
	r.PubSojournP50Ns = at(0.50)
	r.PubSojournP99Ns = at(0.99)
	r.PubSojournP999Ns = at(0.999)
}

// opQuantiles returns (p50, p99, p999) of one op kind in
// nanoseconds, zeros when latency was not observed or the op recorded
// no samples.
func (r BrokerResult) opQuantiles(op string) (p50, p99, p999 float64) {
	if r.Latency == nil {
		return 0, 0, 0
	}
	o, ok := r.Latency.Op(op)
	if !ok {
		return 0, 0, 0
	}
	return o.P50Ns, o.P99Ns, o.P999Ns
}

// PublishQuantiles returns publish latency (p50, p99, p999) in
// nanoseconds; zeros without Observe.
func (r BrokerResult) PublishQuantiles() (p50, p99, p999 float64) {
	return r.opQuantiles("publish")
}

// PollQuantiles returns non-empty-poll latency (p50, p99, p999) in
// nanoseconds; zeros without Observe.
func (r BrokerResult) PollQuantiles() (p50, p99, p999 float64) {
	return r.opQuantiles("poll")
}

// AckQuantiles returns ack latency (p50, p99, p999) in nanoseconds;
// zeros without Observe or outside ack mode.
func (r BrokerResult) AckQuantiles() (p50, p99, p999 float64) {
	return r.opQuantiles("ack")
}

// Mops returns million completed operations (publishes + deliveries)
// per second.
func (r BrokerResult) Mops() float64 {
	return float64(r.Published+r.Delivered) / r.Elapsed.Seconds() / 1e6
}

// ProducerFencesPerMsg returns blocking persists per published
// message — 1 on the per-message path, ~1/Batch on the batch path.
// 0 when nothing was published.
func (r BrokerResult) ProducerFencesPerMsg() float64 {
	if r.Published == 0 {
		return 0
	}
	return float64(r.Producer.Fences) / float64(r.Published)
}

// ConsumerFencesPerMsg returns blocking persists per delivered
// message — ~1 on the per-message Poll path, dropping toward
// 1/DequeueBatch on the PollBatch path (empty-poll elision keeps
// failing polls from inflating it). 0 when nothing was delivered.
func (r BrokerResult) ConsumerFencesPerMsg() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.Consumer.Fences) / float64(r.Delivered)
}

// AckFencesPerMsg returns blocking persists spent acknowledging, per
// delivered message — ~1/DequeueBatch when every batch is acked as a
// whole, 0 outside ack mode.
func (r BrokerResult) AckFencesPerMsg() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.AckFences) / float64(r.Delivered)
}

// RedeliveryRate returns the fraction of deliveries that were
// redeliveries of a killed consumer's unacked window — 0 without
// kills.
func (r BrokerResult) RedeliveryRate() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.Redelivered) / float64(r.Delivered)
}

// DynFencesPerCreate returns the blocking persists one mid-run
// CreateTopic cost on average — the pinned 3-fence catalog protocol
// plus the per-shard queue initialization. 0 without DynTopics.
func (r BrokerResult) DynFencesPerCreate() float64 {
	if r.DynTopics == 0 {
		return 0
	}
	return float64(r.DynTopicFences) / float64(r.DynTopics)
}

// DelFencesPerDelete returns the blocking persists one mid-run
// DeleteTopic cost on average — the tombstone append plus the commit
// stamp, bounded at 3 even counting an amortized compaction share.
// 0 without DelTopics.
func (r BrokerResult) DelFencesPerDelete() float64 {
	if r.DelTopics == 0 {
		return 0
	}
	return float64(r.DelTopicFences) / float64(r.DelTopics)
}

// HeapFencesPerPublish returns blocking persists per message durably
// published to a delay/priority topic — ~1/Batch, since a whole
// publish batch rides one fence. 0 without heap topics.
func (r BrokerResult) HeapFencesPerPublish() float64 {
	if r.HeapPublished == 0 {
		return 0
	}
	return float64(r.HeapPubFences) / float64(r.HeapPublished)
}

// HeapFencesPerPop returns blocking persists per message durably
// consumed from a delay/priority topic — ~1/DequeueBatch, one fence
// covering each non-empty pop-min batch; empty pops and all heap
// maintenance persist nothing. 0 without heap topics.
func (r BrokerResult) HeapFencesPerPop() float64 {
	if r.HeapPopped == 0 {
		return 0
	}
	return float64(r.HeapPopFences) / float64(r.HeapPopped)
}

// IdleFencesPerPoll returns blocking persists per poll of an idle
// consumer whose shards are all empty — ~0 with empty-poll fence
// elision.
func (r BrokerResult) IdleFencesPerPoll() float64 {
	if r.IdlePolls == 0 {
		return 0
	}
	return float64(r.IdlePollFences) / float64(r.IdlePolls)
}

// HeapImbalance reports how unevenly persist traffic spread across the
// member heaps: the busiest heap's persist-instruction count (fences +
// NTStores) over the per-heap mean. 1.0 is perfectly balanced; H means
// one domain carried everything. 1.0 by definition on a 1-heap set.
func (r BrokerResult) HeapImbalance() float64 {
	if len(r.PerHeap) <= 1 {
		return 1
	}
	var sum, max float64
	for _, s := range r.PerHeap {
		v := float64(s.Fences + s.NTStores)
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(r.PerHeap)))
}

// RunBroker executes one broker measurement.
func RunBroker(cfg BrokerConfig) (BrokerResult, error) {
	cfg.norm()
	threads := cfg.Producers + cfg.Consumers
	adminTid := -1
	if cfg.DynTopics > 0 {
		adminTid = threads // the administrator gets its own thread id
		threads++
	}
	churnTid := -1
	if cfg.Churn > 0 {
		churnTid = threads // so is the churn controller
		threads++
	}
	delTid := -1
	if cfg.DelTopics > 0 {
		delTid = threads // and the topic-retirement thread
		threads++
	}
	heapTid := -1
	if cfg.DelayTopics+cfg.PrioTopics > 0 {
		heapTid = threads // and the delay/priority heap-traffic thread
		threads++
	}
	pcfg := pmem.Config{
		Bytes:      cfg.HeapBytes,
		Mode:       pmem.ModePerf,
		MaxThreads: threads,
		Latency:    cfg.Latency,
	}
	var hs *pmem.HeapSet
	if len(cfg.HeapFenceNs) > 0 {
		// Asymmetric NUMA: every member gets its own fence latency.
		heaps := make([]*pmem.Heap, cfg.Heaps)
		for i := range heaps {
			hc := pcfg
			hc.Latency.FenceNs = cfg.HeapFenceNs[i%len(cfg.HeapFenceNs)]
			heaps[i] = pmem.New(hc)
		}
		hs = pmem.NewSetOf(heaps...)
	} else {
		hs = pmem.NewSet(cfg.Heaps, pcfg)
	}
	// The broker comes up empty (Open) and every topic is created
	// through the live-administration path, exactly as the mid-run
	// DynTopics creations are.
	opts := broker.Options{Threads: threads}
	if cfg.Affine {
		opts.Placement = broker.BlockPlacement
	}
	var o *obs.Observer
	if cfg.Observe {
		o = obs.New(obs.Config{Threads: threads})
		opts.Observer = o
	}
	b, err := broker.Open(hs, opts)
	if err != nil {
		return BrokerResult{}, err
	}
	names := make([]string, cfg.Topics)
	for i := range names {
		names[i] = fmt.Sprintf("topic-%d", i)
		tc := broker.TopicConfig{Name: names[i], Shards: cfg.Shards, MaxPayload: cfg.Payload, Acked: cfg.Ack}
		if _, err := b.CreateTopic(0, tc); err != nil {
			return BrokerResult{}, err
		}
	}
	// Heap-backed topics live beside the FIFO ones but outside the
	// consumer group (heap delivery is its own durable protocol).
	var heapTopics []*broker.Topic
	for i := 0; i < cfg.DelayTopics; i++ {
		t, err := b.CreateTopic(0, broker.TopicConfig{
			Name: fmt.Sprintf("delay-%d", i), Shards: 1,
			MaxPayload: cfg.Payload, Kind: broker.KindDelay,
		})
		if err != nil {
			return BrokerResult{}, err
		}
		heapTopics = append(heapTopics, t)
	}
	for i := 0; i < cfg.PrioTopics; i++ {
		t, err := b.CreateTopic(0, broker.TopicConfig{
			Name: fmt.Sprintf("prio-%d", i), Shards: 1,
			MaxPayload: cfg.Payload, Kind: broker.KindPriority,
		})
		if err != nil {
			return BrokerResult{}, err
		}
		heapTopics = append(heapTopics, t)
	}
	// leaseClock is a logical clock so kills can expire leases
	// instantly instead of sleeping out wall-clock TTLs.
	var leaseClock atomic.Uint64
	const leaseTTL = 16
	if cfg.Ack {
		if _, err := b.CreateAckGroup(0, broker.AckGroupConfig{}); err != nil {
			return BrokerResult{}, err
		}
	}
	var g *broker.Group
	if cfg.Ack {
		g, err = b.NewGroupAcked(names, cfg.Consumers, broker.LeaseConfig{
			TTL: leaseTTL, Now: leaseClock.Load,
		})
	} else if cfg.Affine {
		g, err = b.NewGroupAffine(names, cfg.Consumers)
	} else {
		g, err = b.NewGroup(names, cfg.Consumers)
	}
	if err != nil {
		return BrokerResult{}, err
	}
	hs.ResetStats() // charge setup (catalog, shard creation) to no one

	prev := runtime.GOMAXPROCS(0)
	if threads > prev {
		runtime.GOMAXPROCS(threads)
		defer runtime.GOMAXPROCS(prev)
	}

	var stop atomic.Bool
	var published, delivered atomic.Uint64
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)

	payload := func(seq uint64) []byte {
		if cfg.Payload == 0 {
			return broker.U64(seq)
		}
		p := make([]byte, cfg.Payload)
		copy(p, broker.U64(seq))
		return p
	}

	// Publish-sojourn sampling: every producer records arrival→durable-
	// acknowledgment times into a bounded ring (recent samples win once
	// full); the rings merge into the result quantiles after the run.
	const sojournCap = 1 << 19
	sojourns := make([][]int64, cfg.Producers)

	// adaptiveMaxDelayNs is the Publisher deadline/arrival-rate gate in
	// adaptive mode: arrivals spaced wider than this count as idle (the
	// window shrinks toward per-message flushes) and no buffered message
	// waits longer than this for its window to fill.
	const adaptiveMaxDelayNs = 100_000

	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer producersDone.Done()
			start.Wait()
			seq := uint64(tid) << 40
			var samples []int64
			nsamp := 0
			rec := func(d int64) {
				if len(samples) < sojournCap {
					samples = append(samples, d)
				} else {
					samples[nsamp%sojournCap] = d
				}
				nsamp++
			}
			defer func() { sojourns[tid] = samples }()
			gap := time.Duration(cfg.ProduceGapNs)
			if cfg.usePublisher() {
				// One publisher (and one arrival FIFO — acks are FIFO in
				// publish order) per topic the producer round-robins over.
				pubs := make([]*broker.Publisher, cfg.Topics)
				arr := make([][]int64, cfg.Topics)
				for ti := range pubs {
					pc := broker.PublisherConfig{Pipeline: cfg.Pipeline}
					if cfg.AdaptiveBatch {
						pc.Policy = batch.NewAIMD(1, cfg.Batch)
						pc.MaxDelayNs = adaptiveMaxDelayNs
					} else {
						pc.Policy = batch.Fixed{N: cfg.Batch}
					}
					pubs[ti] = b.Topic(names[ti]).NewPublisher(tid, pc)
				}
				ackN := func(ti, n int, end int64) {
					if n == 0 {
						return
					}
					for _, at := range arr[ti][:n] {
						rec(end - at)
					}
					arr[ti] = arr[ti][n:]
					published.Add(uint64(n))
				}
				for i := uint64(0); !stop.Load(); i++ {
					if gap > 0 {
						time.Sleep(gap)
					}
					ti := int(i % uint64(cfg.Topics))
					seq++
					arr[ti] = append(arr[ti], obs.Now())
					n := pubs[ti].Publish(payload(seq))
					ackN(ti, n, obs.Now())
				}
				for ti := range pubs {
					ackN(ti, pubs[ti].Flush(), obs.Now())
				}
				return
			}
			batch := make([][]byte, cfg.Batch)
			for i := uint64(0); !stop.Load(); i++ {
				t := b.Topic(names[i%uint64(cfg.Topics)])
				if cfg.Batch == 1 {
					seq++
					at := obs.Now()
					t.Publish(tid, payload(seq))
					rec(obs.Now() - at)
					published.Add(1)
					continue
				}
				for j := range batch {
					seq++
					batch[j] = payload(seq)
				}
				at := obs.Now()
				t.PublishBatch(tid, batch)
				d := obs.Now() - at
				for range batch {
					rec(d)
				}
				published.Add(uint64(cfg.Batch))
			}
		}(p)
	}
	var acked, ackFences, redelivered atomic.Uint64
	var fencedAcks, reassigned, stolen, scans atomic.Uint64
	killFlag := make([]atomic.Bool, cfg.Consumers)
	stallOf := make([]atomic.Pointer[stallCtl], cfg.Consumers)
	consDone := make([]chan struct{}, cfg.Consumers)
	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	drainPolicy := func() batch.Policy {
		if cfg.AdaptiveBatch {
			return batch.NewAIMD(1, cfg.DequeueBatch)
		}
		return batch.Fixed{N: cfg.DequeueBatch}
	}
	var pollers []*broker.Poller
	if cfg.Poller {
		// Event-loop mode: each consumer is a Poller. The loops run past
		// the produce phase and are stopped — with a final drain-to-empty
		// sweep — once the producers have finished.
		for c := 0; c < cfg.Consumers; c++ {
			tid := cfg.Producers + c
			pl := broker.NewPoller(broker.PollerConfig{
				Consumer: g.Consumer(c),
				Tid:      tid,
				Policy:   drainPolicy(),
				Ack:      cfg.Ack,
				Pipeline: cfg.Pipeline,
				Handler:  func(ms []broker.Message) { delivered.Add(uint64(len(ms))) },
			})
			pollers = append(pollers, pl)
			wg.Add(1)
			go func() {
				defer wg.Done()
				start.Wait()
				pl.Run()
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-done
			for _, pl := range pollers {
				pl.Stop()
			}
		}()
	}
	if !cfg.Poller {
		for c := 0; c < cfg.Consumers; c++ {
			wg.Add(1)
			consDone[c] = make(chan struct{})
			go func(c int) {
				defer wg.Done()
				defer close(consDone[c])
				tid := cfg.Producers + c
				cons := g.Consumer(c)
				start.Wait()
				drained := false
				pol := drainPolicy()
				poll := func() int {
					if cfg.DequeueBatch == 1 {
						if _, ok := cons.Poll(tid); ok {
							return 1
						}
						return 0
					}
					n := len(cons.PollBatch(tid, pol.Size()))
					pol.Observe(n)
					return n
				}
				for {
					if n := poll(); n > 0 {
						delivered.Add(uint64(n))
						if cfg.Ack {
							if ctl := stallOf[c].Swap(nil); ctl != nil {
								// Stalled by the churn controller: keep the
								// window in flight, unacked, until resumed.
								close(ctl.stalled)
								<-ctl.resume
							}
							if killFlag[c].Load() {
								// Killed mid-batch: the window stays unacked
								// and is redelivered via takeover.
								return
							}
							d := hs.DeltaOf(tid)
							n, err := cons.Ack(tid)
							if errors.Is(err, broker.ErrFenced) {
								// The window was reassigned or stolen while we
								// stalled; it is someone else's now.
								fencedAcks.Add(1)
								continue
							}
							acked.Add(uint64(n))
							ackFences.Add(d.Delta().Fences)
						}
						drained = false
						continue
					}
					if killFlag[c].Load() {
						return
					}
					select {
					case <-done:
						// Exit only on an empty sweep that began after the
						// producers were observed finished; the first empty
						// sweep may predate their last publishes.
						if drained {
							return
						}
						drained = true
					default:
					}
				}
			}(c)
		}
	}
	// The administrator: create DynTopics fresh topics on the live
	// broker, spread across the produce phase, measuring the blocking
	// persists each creation costs while the data plane runs.
	var dynCreated, dynFences atomic.Uint64
	var dynErr error
	var dynErrMu sync.Mutex
	if cfg.DynTopics > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			for d := 0; d < cfg.DynTopics; d++ {
				time.Sleep(cfg.Duration / time.Duration(cfg.DynTopics+1))
				delta := hs.DeltaOf(adminTid)
				_, err := b.CreateTopic(adminTid, broker.TopicConfig{
					Name:   fmt.Sprintf("dyn-%d", d),
					Shards: cfg.Shards, MaxPayload: cfg.Payload,
				})
				if err != nil {
					dynErrMu.Lock()
					dynErr = fmt.Errorf("harness: mid-run CreateTopic %d failed: %w", d, err)
					dynErrMu.Unlock()
					return
				}
				dynFences.Add(delta.Delta().Fences)
				dynCreated.Add(1)
			}
		}()
	}

	// The retirement thread: cycle a scratch topic through create →
	// publish a little → delete, spread across the produce phase. The
	// fence delta brackets only the DeleteTopic call, so the measured
	// cost is the retirement protocol itself; the recycled-window proof
	// comes from the post-run slot footprint.
	var delCycles, delFences atomic.Uint64
	var delErr error
	var delErrMu sync.Mutex
	if cfg.DelTopics > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			scratch := make([][]byte, 4)
			for j := range scratch {
				scratch[j] = payload(uint64(j))
			}
			for d := 0; d < cfg.DelTopics; d++ {
				time.Sleep(cfg.Duration / time.Duration(cfg.DelTopics+1))
				name := fmt.Sprintf("del-%d", d)
				t, err := b.CreateTopic(delTid, broker.TopicConfig{
					Name:   name,
					Shards: cfg.Shards, MaxPayload: cfg.Payload,
				})
				if err == nil {
					t.PublishBatch(delTid, scratch)
					delta := hs.DeltaOf(delTid)
					err = b.DeleteTopic(delTid, name)
					delFences.Add(delta.Delta().Fences)
				}
				if err != nil {
					delErrMu.Lock()
					delErr = fmt.Errorf("harness: retirement cycle %d failed: %w", d, err)
					delErrMu.Unlock()
					return
				}
				delCycles.Add(1)
			}
		}()
	}

	// The heap-traffic thread: each cycle durably publishes one
	// Batch-sized window to every delay/priority topic (deadlines and
	// ranks off a logical clock, one fence per window) and pops the
	// ready backlog in DequeueBatch-sized batches (one fence per
	// non-empty batch), so both amortization ratios are measured on
	// the real broker paths. The produce phase ends with a full drain:
	// every heap-published message is also popped.
	var heapPublished, heapPopped, heapPubFences, heapPopFences atomic.Uint64
	var heapErr error
	var heapErrMu sync.Mutex
	if heapTid >= 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			fail := func(err error) {
				heapErrMu.Lock()
				heapErr = fmt.Errorf("harness: heap-topic traffic failed: %w", err)
				heapErrMu.Unlock()
			}
			clock := uint64(1)
			keys := make([]uint64, cfg.Batch)
			window := make([][]byte, cfg.Batch)
			// pop drains the ready backlog in DequeueBatch-sized batches;
			// draining each cycle keeps the per-thread entry arena bounded
			// at ~one publish window regardless of the Batch/DequeueBatch
			// ratio.
			pop := func(t *broker.Topic) bool {
				for {
					d := hs.DeltaOf(heapTid)
					ps, err := t.DequeueReadyBatch(heapTid, clock, cfg.DequeueBatch)
					if err != nil {
						fail(err)
						return false
					}
					heapPopFences.Add(d.Delta().Fences)
					heapPopped.Add(uint64(len(ps)))
					if len(ps) < cfg.DequeueBatch {
						return true
					}
				}
			}
			for done := false; !done; {
				done = stop.Load()
				for _, t := range heapTopics {
					for j := range window {
						clock++
						keys[j] = clock
						window[j] = payload(clock)
					}
					d := hs.DeltaOf(heapTid)
					var err error
					if t.Kind() == broker.KindDelay {
						err = t.PublishAtBatch(heapTid, window, keys)
					} else {
						err = t.PublishPriorityBatch(heapTid, window, keys)
					}
					if err != nil {
						fail(err)
						return
					}
					heapPubFences.Add(d.Delta().Fences)
					heapPublished.Add(uint64(cfg.Batch))
					if !pop(t) {
						return
					}
				}
			}
			clock = ^uint64(0) // final drain: everything is ready
			for _, t := range heapTopics {
				if !pop(t) {
					return
				}
			}
		}()
	}

	var adoptErr error
	var adoptErrMu sync.Mutex
	if cfg.Kills > 0 {
		// The killer crashes consumers 1..Kills one by one mid-run,
		// expires their leases on the logical clock, and adopts their
		// shards into consumer 0 (kept alive for the idle phase).
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			for victim := 1; victim <= cfg.Kills; victim++ {
				time.Sleep(cfg.Duration / time.Duration(cfg.Kills+2))
				killFlag[victim].Store(true)
				<-consDone[victim]
				leaseClock.Add(leaseTTL + 1)
				select {
				case <-consDone[0]:
					// The adopter already drained and exited (the kill
					// slipped past the produce phase): a takeover now
					// would strand the victim's backlog in a queue no
					// one polls and count phantom redeliveries.
					return
				default:
				}
				moved, err := g.Adopt(cfg.Producers+victim, victim, 0)
				if err != nil {
					// A failed takeover strands the victim's backlog; the
					// measurement is invalid, so surface it.
					adoptErrMu.Lock()
					adoptErr = fmt.Errorf("harness: takeover of consumer %d failed: %w", victim, err)
					adoptErrMu.Unlock()
					return
				}
				redelivered.Add(uint64(moved))
			}
		}()
	}

	var churnErr error
	var churnErrMu sync.Mutex
	if cfg.Churn > 0 {
		// The churn controller: each cycle stalls one member mid-window,
		// displaces its shards (even cycles: forced Reassign split across
		// every survivor; odd cycles: lease expiry + work-stealing into
		// consumer 0, finished by a Scan), then resumes it so its stale
		// ack is refused on the fencing path.
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			fail := func(err error) {
				churnErrMu.Lock()
				churnErr = err
				churnErrMu.Unlock()
			}
			for cycle := 0; cycle < cfg.Churn; cycle++ {
				time.Sleep(cfg.Duration / time.Duration(cfg.Churn+1))
				victim := 1 + cycle%(cfg.Consumers-1)
				ctl := &stallCtl{stalled: make(chan struct{}), resume: make(chan struct{})}
				stallOf[victim].Store(ctl)
				select {
				case <-ctl.stalled:
				case <-consDone[victim]:
					if stallOf[victim].Swap(nil) != nil {
						continue // already drained and gone; skip the cycle
					}
					<-ctl.stalled // grabbed the control at the last moment
				case <-time.After(cfg.Duration):
					if stallOf[victim].Swap(nil) != nil {
						continue // never saw a window in time; skip the cycle
					}
					<-ctl.stalled
				}
				if cycle%2 == 0 {
					targets := make([]int, 0, cfg.Consumers-1)
					for m := 0; m < cfg.Consumers; m++ {
						if m != victim {
							targets = append(targets, m)
						}
					}
					moved := len(g.Consumer(victim).Assigned())
					if _, err := g.Reassign(churnTid, victim, targets, true); err != nil {
						fail(fmt.Errorf("harness: churn cycle %d: forced Reassign of consumer %d failed: %w", cycle, victim, err))
						close(ctl.resume)
						return
					}
					reassigned.Add(uint64(moved))
				} else {
					leaseClock.Add(leaseTTL + 1)
					thief := g.Consumer(0)
					for {
						took, _, err := thief.Steal(churnTid)
						if err != nil {
							fail(fmt.Errorf("harness: churn cycle %d: Steal failed: %w", cycle, err))
							close(ctl.resume)
							return
						}
						if !took {
							break
						}
						stolen.Add(1)
					}
					if _, err := g.Scan(churnTid, leaseClock.Load()); err != nil {
						fail(fmt.Errorf("harness: churn cycle %d: Scan failed: %w", cycle, err))
						close(ctl.resume)
						return
					}
					scans.Add(1)
				}
				close(ctl.resume)
			}
		}()
	}

	begin := time.Now()
	start.Done()
	timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
	defer timer.Stop()
	wg.Wait()
	elapsed := time.Since(begin)
	if adoptErr != nil {
		return BrokerResult{}, adoptErr
	}
	if dynErr != nil {
		return BrokerResult{}, dynErr
	}
	if delErr != nil {
		return BrokerResult{}, delErr
	}
	if heapErr != nil {
		return BrokerResult{}, heapErr
	}
	if churnErr != nil {
		return BrokerResult{}, churnErr
	}

	res := BrokerResult{
		Topics: cfg.Topics, Shards: cfg.Shards, Heaps: cfg.Heaps, Affine: cfg.Affine,
		Ack: cfg.Ack, Kills: cfg.Kills, Churn: cfg.Churn,
		AdaptiveBatch: cfg.AdaptiveBatch, Pipeline: cfg.Pipeline, Poller: cfg.Poller,
		ProduceGapNs: cfg.ProduceGapNs,
		Producers:    cfg.Producers, Consumers: cfg.Consumers,
		Batch: cfg.Batch, DequeueBatch: cfg.DequeueBatch, Payload: cfg.Payload,
		Published: published.Load(), Delivered: delivered.Load(),
		Acked: acked.Load(), AckFences: ackFences.Load(), Redelivered: redelivered.Load(),
		FencedAcks: fencedAcks.Load(), Reassigned: reassigned.Load(),
		Stolen: stolen.Load(), Scans: scans.Load(),
		DynTopics: dynCreated.Load(), DynTopicFences: dynFences.Load(),
		DelTopics: delCycles.Load(), DelTopicFences: delFences.Load(),
		DelayTopics: cfg.DelayTopics, PrioTopics: cfg.PrioTopics,
		HeapPublished: heapPublished.Load(), HeapPopped: heapPopped.Load(),
		HeapPubFences: heapPubFences.Load(), HeapPopFences: heapPopFences.Load(),
		Elapsed: elapsed,
	}
	res.SlotsUsed, res.SlotsFree = b.SlotFootprint()
	var allSojourns []int64
	for _, s := range sojourns {
		allSojourns = append(allSojourns, s...)
	}
	res.sojournQuantiles(allSojourns)
	if cfg.Poller {
		for _, pl := range pollers {
			st := pl.Stats()
			res.PollerSleeps += st.IdleSleeps
			res.PollerWakes += st.Wakes
			if cfg.Ack {
				// The poller acknowledges everything it delivers; its
				// per-call fence split is not tracked separately.
				res.Acked += st.Delivered
			}
		}
	}
	for tid := 0; tid < cfg.Producers; tid++ {
		res.Producer.Add(hs.StatsOf(tid))
	}
	// The administrator's thread id lies beyond the consumer range, so
	// its persist traffic never skews the consumer statistics.
	for tid := cfg.Producers; tid < cfg.Producers+cfg.Consumers; tid++ {
		res.Consumer.Add(hs.StatsOf(tid))
	}
	res.PerHeap = make([]pmem.Stats, cfg.Heaps)
	for i := 0; i < cfg.Heaps; i++ {
		res.PerHeap[i] = hs.Heap(i).TotalStats()
	}

	// Idle phase: with all shards drained, measure the persist cost of
	// polling empty shards (after the consumer stats were snapshotted,
	// so ConsumerFencesPerMsg is unaffected). Empty-poll fence elision
	// makes this ~0.
	const idlePolls = 1000
	idleTid := cfg.Producers
	idleCons := g.Consumer(0)
	idle := hs.DeltaOf(idleTid)
	for i := 0; i < idlePolls; i++ {
		if cfg.DequeueBatch == 1 {
			idleCons.Poll(idleTid)
		} else {
			idleCons.PollBatch(idleTid, cfg.DequeueBatch)
		}
	}
	res.IdlePolls = idlePolls
	res.IdlePollFences = idle.Delta().Fences
	if o != nil {
		snap := o.Snapshot()
		res.Latency = &snap
	}
	return res, nil
}
