package harness

import (
	"fmt"
	"strings"
)

// Sweep runs one workload across queues and thread counts, returning
// results indexed [queue][thread].
func Sweep(base Config, queueNames []string, threadCounts []int) ([][]Result, error) {
	out := make([][]Result, len(queueNames))
	for qi, name := range queueNames {
		in, ok := LookupQueue(name)
		if !ok {
			return nil, fmt.Errorf("unknown queue %q", name)
		}
		out[qi] = make([]Result, len(threadCounts))
		for ti, th := range threadCounts {
			cfg := base
			cfg.Queue = in
			cfg.Threads = th
			out[qi][ti] = Run(cfg)
		}
	}
	return out, nil
}

// ThroughputTable renders a Figure 2 "Million Ops per Second" panel.
func ThroughputTable(title string, threadCounts []int, results [][]Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — Million ops per second\n", title)
	fmt.Fprintf(&b, "%-26s", "queue \\ threads")
	for _, th := range threadCounts {
		fmt.Fprintf(&b, "%10d", th)
	}
	b.WriteByte('\n')
	for _, row := range results {
		fmt.Fprintf(&b, "%-26s", row[0].Queue)
		for _, r := range row {
			fmt.Fprintf(&b, "%10.3f", r.Mops())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RatioTable renders a Figure 2 "Ops per DurableMSQ Ops" panel: the
// throughput of each queue divided by the baseline queue's at the
// same thread count.
func RatioTable(title, baseline string, threadCounts []int, results [][]Result) string {
	var base []Result
	for _, row := range results {
		if row[0].Queue == baseline {
			base = row
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — Ops per %s ops\n", title, baseline)
	fmt.Fprintf(&b, "%-26s", "queue \\ threads")
	for _, th := range threadCounts {
		fmt.Fprintf(&b, "%10d", th)
	}
	b.WriteByte('\n')
	if base == nil {
		fmt.Fprintf(&b, "(baseline %q not in sweep)\n", baseline)
		return b.String()
	}
	for _, row := range results {
		fmt.Fprintf(&b, "%-26s", row[0].Queue)
		for ti, r := range row {
			fmt.Fprintf(&b, "%10.2f", r.Mops()/base[ti].Mops())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StatsTable renders per-op persist statistics (fences and accesses
// to flushed content), the quantities the paper's design rules target.
func StatsTable(title string, threadCounts []int, results [][]Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — fences/op | post-flush accesses/op\n", title)
	fmt.Fprintf(&b, "%-26s", "queue \\ threads")
	for _, th := range threadCounts {
		fmt.Fprintf(&b, "%16d", th)
	}
	b.WriteByte('\n')
	for _, row := range results {
		fmt.Fprintf(&b, "%-26s", row[0].Queue)
		for _, r := range row {
			cell := fmt.Sprintf("%.2f|%.2f", r.FencesPerOp(), r.PostFlushPerOp())
			fmt.Fprintf(&b, "%16s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders results as comma-separated rows with a header.
func CSV(results [][]Result) string {
	var b strings.Builder
	b.WriteString("workload,queue,threads,ops,seconds,mops,fences_per_op,postflush_per_op\n")
	for _, row := range results {
		for _, r := range row {
			fmt.Fprintf(&b, "%s,%s,%d,%d,%.4f,%.4f,%.4f,%.4f\n",
				r.Workload, r.Queue, r.Threads, r.Ops, r.Elapsed.Seconds(),
				r.Mops(), r.FencesPerOp(), r.PostFlushPerOp())
		}
	}
	return b.String()
}
