package harness

import (
	"testing"
	"time"

	"repro/internal/pmem"
)

// TestHeapImbalanceEdgeCases pins the gauge the autoscaler will read
// on its degenerate inputs: a single heap and zero traffic must both
// report exactly 1.0 (balanced by definition), never NaN, Inf or 0.
func TestHeapImbalanceEdgeCases(t *testing.T) {
	// Single heap: 1.0 by definition, whatever the traffic.
	single := BrokerResult{PerHeap: []pmem.Stats{{Fences: 12345, NTStores: 678}}}
	if got := single.HeapImbalance(); got != 1 {
		t.Errorf("single heap imbalance = %v, want 1", got)
	}
	// No per-heap stats at all (a zero BrokerResult).
	if got := (BrokerResult{}).HeapImbalance(); got != 1 {
		t.Errorf("zero result imbalance = %v, want 1", got)
	}
	// Multi-heap, zero traffic: the 0/0 case must come out 1.0.
	quiet := BrokerResult{PerHeap: make([]pmem.Stats, 4)}
	if got := quiet.HeapImbalance(); got != 1 {
		t.Errorf("zero-traffic imbalance = %v, want 1", got)
	}
	// Fully skewed: one of H heaps carried everything → exactly H.
	skew := BrokerResult{PerHeap: []pmem.Stats{{Fences: 100}, {}, {}, {}}}
	if got := skew.HeapImbalance(); got != 4 {
		t.Errorf("fully skewed imbalance = %v, want 4", got)
	}
	// Balanced traffic → exactly 1; mild skew lands strictly between.
	even := BrokerResult{PerHeap: []pmem.Stats{{Fences: 50}, {NTStores: 50}}}
	if got := even.HeapImbalance(); got != 1 {
		t.Errorf("balanced imbalance = %v, want 1", got)
	}
	mild := BrokerResult{PerHeap: []pmem.Stats{{Fences: 60}, {Fences: 40}}}
	if got := mild.HeapImbalance(); got <= 1 || got >= 2 {
		t.Errorf("mild skew imbalance = %v, want in (1,2)", got)
	}
}

// TestHeapImbalanceAllIdleConsumers runs a real measurement with
// producers disabled-in-effect (zero duration stops them after at most
// one publish round) so consumers mostly idle-poll: the gauge must
// stay finite and >= 1 even when some heaps see almost no traffic.
func TestHeapImbalanceAllIdleConsumers(t *testing.T) {
	r, err := RunBroker(BrokerConfig{
		Topics: 1, Shards: 4, Heaps: 2, Producers: 1, Consumers: 2,
		Duration: time.Millisecond, HeapBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	imb := r.HeapImbalance()
	if imb < 1 || imb > float64(r.Heaps) {
		t.Fatalf("imbalance %v outside [1, %d]", imb, r.Heaps)
	}
	if r.IdleFencesPerPoll() > 0.1 {
		t.Fatalf("idle consumers should poll (nearly) fence-free, got %v fences/poll", r.IdleFencesPerPoll())
	}
}

// TestRunBrokerLatency checks the Observe knob end to end: percentile
// fields are populated and ordered for every exercised op kind, and
// off by default.
func TestRunBrokerLatency(t *testing.T) {
	r, err := RunBroker(BrokerConfig{
		Topics: 2, Shards: 4, Producers: 2, Consumers: 2, Ack: true,
		DequeueBatch: 8, Duration: 100 * time.Millisecond,
		HeapBytes: 128 << 20, Observe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency == nil {
		t.Fatal("Observe set but Latency is nil")
	}
	check := func(name string, q func() (float64, float64, float64)) {
		p50, p99, p999 := q()
		if p50 <= 0 || p99 < p50 || p999 < p99 {
			t.Errorf("%s quantiles not positive/monotone: p50=%v p99=%v p999=%v", name, p50, p99, p999)
		}
	}
	check("publish", r.PublishQuantiles)
	check("poll", r.PollQuantiles)
	check("ack", r.AckQuantiles)
	pub, _ := r.Latency.Op("publish")
	if pub.Count != r.Published {
		t.Errorf("publish samples %d != published %d", pub.Count, r.Published)
	}
	if len(r.Latency.Heaps) != r.Heaps {
		t.Errorf("snapshot has %d heap entries, want %d", len(r.Latency.Heaps), r.Heaps)
	}

	off, err := RunBroker(BrokerConfig{
		Topics: 1, Shards: 2, Producers: 1, Consumers: 1,
		Duration: 10 * time.Millisecond, HeapBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if off.Latency != nil {
		t.Fatal("Latency populated without Observe")
	}
	if p50, p99, p999 := off.PublishQuantiles(); p50 != 0 || p99 != 0 || p999 != 0 {
		t.Fatal("quantile accessors must return zeros without Observe")
	}
}
