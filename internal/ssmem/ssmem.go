// Package ssmem is a durable, epoch-based memory manager for
// fixed-size nodes in simulated persistent memory, modelled on the
// ssmem allocator the paper adopts from Zuriel et al. (Section 9).
//
// Nodes are allocated from designated areas: large, cache-line aligned
// regions carved out of the persistent heap, zeroed and persisted on
// creation so that never-used slots are ignored by recovery
// procedures. A persistent area registry lets recovery enumerate every
// slot that was ever handed to the data structure. Each thread owns a
// volatile free list; reclamation is deferred through a three-epoch
// EBR scheme so that a node is only reused once no operation that
// might still reference it is in flight.
package ssmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
)

// Config parameterizes a Pool.
type Config struct {
	// SlotBytes is the node size; it must be a multiple of the cache
	// line size (all queues in this repository use exactly one line
	// per node, per the paper's footnote 3).
	SlotBytes int
	// SlotsPerArea is the number of nodes per designated area
	// (default 4096).
	SlotsPerArea int
	// Threads is the number of thread ids that will use the pool.
	Threads int
	// RootSlot is the pmem root slot that anchors the persistent
	// area registry, so recovery can find it after a crash.
	RootSlot int
	// InitTid is the thread id NewPool charges its construction
	// persists to (registry allocation, root-slot anchor). Default 0 —
	// fine for quiescent construction; a pool created while other
	// threads run (e.g. a broker topic created on a live system) must
	// use a tid owned by the constructing goroutine, because fences are
	// per-thread. Must be in [0, Threads).
	InitTid int
}

const (
	maxAreas       = 4096
	regEntryWords  = 2 // base, slots (slot size is in the pool config)
	retireAdvanceN = 64
	ebrIdle        = ^uint64(0)
)

type ebrSlot struct {
	announce atomic.Uint64
	_        [56]byte
}

type limboBucket struct {
	epoch uint64
	addrs []pmem.Addr
}

type threadState struct {
	free     []pmem.Addr
	areaNext pmem.Addr
	areaEnd  pmem.Addr
	limbo    []limboBucket
	retires  uint64
	_        [40]byte
}

// Pool is a durable fixed-size allocator. Methods taking a tid are
// safe for concurrent use as long as each tid is driven by one
// goroutine at a time.
type Pool struct {
	h       *pmem.Heap
	cfg     Config
	regAddr pmem.Addr
	areaMu  sync.Mutex
	epoch   atomic.Uint64
	slots   []ebrSlot
	per     []threadState
}

func validate(cfg *Config) {
	if cfg.SlotBytes <= 0 || cfg.SlotBytes%pmem.CacheLineBytes != 0 {
		panic(fmt.Sprintf("ssmem: SlotBytes %d must be a positive multiple of %d", cfg.SlotBytes, pmem.CacheLineBytes))
	}
	if cfg.SlotsPerArea == 0 {
		cfg.SlotsPerArea = 4096
	}
	if cfg.Threads <= 0 {
		panic("ssmem: Threads must be positive")
	}
	if cfg.InitTid < 0 || cfg.InitTid >= cfg.Threads {
		panic(fmt.Sprintf("ssmem: InitTid %d out of range [0,%d)", cfg.InitTid, cfg.Threads))
	}
}

// NewPool creates a fresh pool anchored at cfg.RootSlot. The root slot
// must be empty (use RecoverPool after a crash).
func NewPool(h *pmem.Heap, cfg Config) *Pool {
	validate(&cfg)
	p := newPoolCommon(h, cfg)
	tid := cfg.InitTid
	root := h.RootAddr(cfg.RootSlot)
	if h.Load(tid, root) != 0 {
		panic("ssmem: NewPool on a non-empty root slot (did you mean RecoverPool?)")
	}
	regBytes := int64((1 + maxAreas*regEntryWords) * pmem.WordBytes)
	regBytes = (regBytes + pmem.CacheLineBytes - 1) &^ (pmem.CacheLineBytes - 1)
	p.regAddr = h.AllocRaw(tid, regBytes, pmem.CacheLineBytes)
	h.InitRange(tid, p.regAddr, regBytes)
	h.Store(tid, root, uint64(p.regAddr))
	h.Persist(tid, root)
	return p
}

// RecoverPool re-attaches to the pool anchored at cfg.RootSlot after a
// crash and restart. live reports whether a slot is still owned by the
// recovered data structure; every non-live slot is placed back on a
// free list. live is invoked exactly once per slot ever allocated from
// the registry's areas.
func RecoverPool(h *pmem.Heap, cfg Config, live func(pmem.Addr) bool) *Pool {
	validate(&cfg)
	p := newPoolCommon(h, cfg)
	root := h.RootAddr(cfg.RootSlot)
	p.regAddr = pmem.Addr(h.Load(0, root))
	if p.regAddr == 0 {
		panic("ssmem: RecoverPool on an empty root slot")
	}
	next := 0
	p.forEachSlot(func(a pmem.Addr) {
		if !live(a) {
			ts := &p.per[next%cfg.Threads]
			ts.free = append(ts.free, a)
			next++
		}
	})
	return p
}

func newPoolCommon(h *pmem.Heap, cfg Config) *Pool {
	p := &Pool{
		h:     h,
		cfg:   cfg,
		slots: make([]ebrSlot, cfg.Threads),
		per:   make([]threadState, cfg.Threads),
	}
	for i := range p.slots {
		p.slots[i].announce.Store(ebrIdle)
	}
	return p
}

// Heap returns the underlying persistent heap.
func (p *Pool) Heap() *pmem.Heap { return p.h }

// SlotBytes returns the configured node size.
func (p *Pool) SlotBytes() int { return p.cfg.SlotBytes }

// Enter begins an EBR-protected operation for tid. Every data
// structure operation must be bracketed by Enter/Exit so reclaimed
// nodes are not reused while the operation may still reference them.
func (p *Pool) Enter(tid int) {
	p.slots[tid].announce.Store(p.epoch.Load())
}

// Exit ends tid's EBR-protected operation.
func (p *Pool) Exit(tid int) {
	p.slots[tid].announce.Store(ebrIdle)
}

// Alloc returns a node slot for tid. Freshly created areas are zeroed
// and persisted (a single fence per area), so first-time slots are
// persistently zero; reused slots retain their previous contents, as
// on real hardware.
func (p *Pool) Alloc(tid int) pmem.Addr {
	ts := &p.per[tid]
	if n := len(ts.free); n > 0 {
		a := ts.free[n-1]
		ts.free = ts.free[:n-1]
		p.clearSlotState(a)
		return a
	}
	if ts.areaNext < ts.areaEnd {
		a := ts.areaNext
		ts.areaNext += pmem.Addr(p.cfg.SlotBytes)
		return a
	}
	p.newArea(tid)
	a := ts.areaNext
	ts.areaNext += pmem.Addr(p.cfg.SlotBytes)
	return a
}

// clearSlotState resets the cache-simulation state of a recycled
// slot's lines: re-populating a recycled node is an allocation cold
// miss common to all algorithms, not a post-flush access.
func (p *Pool) clearSlotState(a pmem.Addr) {
	for off := 0; off < p.cfg.SlotBytes; off += pmem.CacheLineBytes {
		p.h.ClearLineState(a + pmem.Addr(off))
	}
}

// Retire hands a node to the EBR machinery; it will reappear on tid's
// free list once two epoch advances prove no concurrent operation can
// still hold a reference.
func (p *Pool) Retire(tid int, a pmem.Addr) {
	ts := &p.per[tid]
	e := p.epoch.Load()
	p.drainLimbo(ts, e)
	if n := len(ts.limbo); n == 0 || ts.limbo[n-1].epoch != e {
		ts.limbo = append(ts.limbo, limboBucket{epoch: e})
	}
	b := &ts.limbo[len(ts.limbo)-1]
	b.addrs = append(b.addrs, a)
	ts.retires++
	if ts.retires%retireAdvanceN == 0 {
		p.tryAdvance()
	}
}

// FreeImmediate returns a node straight to tid's free list. Only safe
// when no concurrent operation can reference it (e.g. during
// single-threaded recovery).
func (p *Pool) FreeImmediate(tid int, a pmem.Addr) {
	p.per[tid].free = append(p.per[tid].free, a)
}

func (p *Pool) drainLimbo(ts *threadState, e uint64) {
	for len(ts.limbo) > 0 && ts.limbo[0].epoch+2 <= e {
		ts.free = append(ts.free, ts.limbo[0].addrs...)
		ts.limbo = ts.limbo[1:]
	}
}

func (p *Pool) tryAdvance() {
	e := p.epoch.Load()
	for i := range p.slots {
		a := p.slots[i].announce.Load()
		if a != ebrIdle && a != e {
			return
		}
	}
	p.epoch.CompareAndSwap(e, e+1)
}

func (p *Pool) newArea(tid int) {
	p.areaMu.Lock()
	defer p.areaMu.Unlock()
	size := int64(p.cfg.SlotBytes) * int64(p.cfg.SlotsPerArea)
	base := p.h.AllocRaw(tid, size, pmem.CacheLineBytes)
	p.h.InitRange(tid, base, size)

	count := p.h.Load(tid, p.regAddr)
	if count >= maxAreas {
		panic("ssmem: area registry full")
	}
	entry := p.regAddr + pmem.Addr((1+count*regEntryWords)*pmem.WordBytes)
	p.h.Store(tid, entry, uint64(base))
	p.h.Store(tid, entry+pmem.WordBytes, uint64(p.cfg.SlotsPerArea))
	p.h.Flush(tid, entry)
	p.h.Flush(tid, entry+pmem.WordBytes)
	p.h.Fence(tid)
	p.h.Store(tid, p.regAddr, count+1)
	p.h.Persist(tid, p.regAddr)

	ts := &p.per[tid]
	ts.areaNext = base
	ts.areaEnd = base + pmem.Addr(size)
}

// ForEachSlot invokes fn for every slot in every registered area,
// reading the registry from the (restarted) heap. Intended for
// recovery scans; call only while the pool's heap is quiescent.
func (p *Pool) ForEachSlot(fn func(pmem.Addr)) { p.forEachSlot(fn) }

func (p *Pool) forEachSlot(fn func(pmem.Addr)) {
	count := p.h.Load(0, p.regAddr)
	for i := uint64(0); i < count; i++ {
		entry := p.regAddr + pmem.Addr((1+i*regEntryWords)*pmem.WordBytes)
		base := pmem.Addr(p.h.Load(0, entry))
		slots := p.h.Load(0, entry+pmem.WordBytes)
		for s := uint64(0); s < slots; s++ {
			fn(base + pmem.Addr(s*uint64(p.cfg.SlotBytes)))
		}
	}
}

// AreaCount reports how many designated areas have been registered.
func (p *Pool) AreaCount() int { return int(p.h.Load(0, p.regAddr)) }

// Area describes one registered designated area.
type Area struct {
	Base  pmem.Addr
	Slots int
}

// Areas reads the persistent area registry anchored at cfg.RootSlot
// without constructing a pool. Recovery procedures that must validate
// untrusted node addresses before deciding slot liveness use this to
// break the pool/liveness ordering cycle.
func Areas(h *pmem.Heap, cfg Config) []Area {
	validate(&cfg)
	regAddr := pmem.Addr(h.Load(0, h.RootAddr(cfg.RootSlot)))
	if regAddr == 0 {
		return nil
	}
	count := h.Load(0, regAddr)
	out := make([]Area, 0, count)
	for i := uint64(0); i < count; i++ {
		entry := regAddr + pmem.Addr((1+i*regEntryWords)*pmem.WordBytes)
		out = append(out, Area{
			Base:  pmem.Addr(h.Load(0, entry)),
			Slots: int(h.Load(0, entry+pmem.WordBytes)),
		})
	}
	return out
}

// ValidSlot reports whether a is a properly aligned slot address
// inside one of the areas.
func ValidSlot(areas []Area, slotBytes int, a pmem.Addr) bool {
	for _, ar := range areas {
		end := ar.Base + pmem.Addr(ar.Slots*slotBytes)
		if a >= ar.Base && a < end && (a-ar.Base)%pmem.Addr(slotBytes) == 0 {
			return true
		}
	}
	return false
}

// FreeLen reports the length of tid's free list (excluding limbo).
// Intended for tests.
func (p *Pool) FreeLen(tid int) int { return len(p.per[tid].free) }
