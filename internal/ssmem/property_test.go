package ssmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

// TestQuickAllocRetireNoDoubleHandout drives random alloc/retire
// interleavings (testing/quick over the seed) and asserts the
// fundamental allocator invariant: a slot handed out is never handed
// out again until it was retired and its grace period elapsed.
func TestQuickAllocRetireNoDoubleHandout(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := pmem.New(pmem.Config{Bytes: 8 << 20, MaxThreads: 3})
		p := NewPool(h, Config{SlotBytes: 64, SlotsPerArea: 8, Threads: 2, RootSlot: 0})
		held := map[pmem.Addr]bool{}
		var order []pmem.Addr
		for i := 0; i < 2000; i++ {
			tid := rng.Intn(2)
			p.Enter(tid)
			if len(order) > 0 && rng.Intn(2) == 0 {
				// Retire a random held slot.
				k := rng.Intn(len(order))
				a := order[k]
				order = append(order[:k], order[k+1:]...)
				delete(held, a)
				p.Retire(tid, a)
			} else {
				a := p.Alloc(tid)
				if held[a] {
					t.Logf("seed %d: slot %d double-handed", seed, a)
					return false
				}
				held[a] = true
				order = append(order, a)
			}
			p.Exit(tid)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAreasDisjoint asserts that designated areas never overlap
// each other, the registry, or the root region, across random growth
// patterns.
func TestQuickAreasDisjoint(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := pmem.New(pmem.Config{Bytes: 16 << 20, MaxThreads: 3})
		slots := 4 + rng.Intn(16)
		p := NewPool(h, Config{SlotBytes: 64, SlotsPerArea: slots, Threads: 2, RootSlot: 1})
		n := 50 + rng.Intn(400)
		for i := 0; i < n; i++ {
			p.Alloc(rng.Intn(2))
		}
		areas := Areas(h, Config{SlotBytes: 64, SlotsPerArea: slots, Threads: 2, RootSlot: 1})
		type iv struct{ lo, hi pmem.Addr }
		var ivs []iv
		for _, a := range areas {
			ivs = append(ivs, iv{a.Base, a.Base + pmem.Addr(a.Slots*64)})
		}
		for i := range ivs {
			if ivs[i].lo < h.RootAddr(pmem.NumRootSlots-1) {
				t.Logf("seed %d: area %d overlaps the root region", seed, i)
				return false
			}
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
					t.Logf("seed %d: areas %d and %d overlap", seed, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRecoverPartition asserts that after a crash, RecoverPool
// partitions every slot exactly once between the live set and the
// free lists, for arbitrary live subsets.
func TestQuickRecoverPartition(t *testing.T) {
	prop := func(seed int64, liveMask uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := pmem.New(pmem.Config{Bytes: 8 << 20, Mode: pmem.ModeCrash, MaxThreads: 3})
		cfg := Config{SlotBytes: 64, SlotsPerArea: 8, Threads: 2, RootSlot: 0}
		p := NewPool(h, cfg)
		var all []pmem.Addr
		for i := 0; i < 30+rng.Intn(40); i++ {
			all = append(all, p.Alloc(0))
		}
		live := map[pmem.Addr]bool{}
		for i, a := range all {
			if liveMask>>(uint(i)%64)&1 == 1 {
				live[a] = true
			}
		}
		h.CrashNow()
		h.FinalizeCrash(rng)
		h.Restart()
		seen := map[pmem.Addr]int{}
		rp := RecoverPool(h, cfg, func(a pmem.Addr) bool {
			seen[a]++
			return live[a]
		})
		total := rp.AreaCount() * cfg.SlotsPerArea
		if len(seen) != total {
			t.Logf("seed %d: live() saw %d slots, want %d", seed, len(seen), total)
			return false
		}
		for a, n := range seen {
			if n != 1 {
				t.Logf("seed %d: slot %d visited %d times", seed, a, n)
				return false
			}
		}
		free := rp.FreeLen(0) + rp.FreeLen(1)
		if free != total-len(live) {
			t.Logf("seed %d: free %d, want %d", seed, free, total-len(live))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
