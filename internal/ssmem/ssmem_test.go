package ssmem

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newHeap(t testing.TB, mode pmem.Mode) *pmem.Heap {
	t.Helper()
	return pmem.New(pmem.Config{Bytes: 8 << 20, Mode: mode, MaxThreads: 8})
}

func TestAllocDistinctAlignedZeroed(t *testing.T) {
	h := newHeap(t, pmem.ModePerf)
	p := NewPool(h, Config{SlotBytes: 64, SlotsPerArea: 16, Threads: 2, RootSlot: 0})
	seen := map[pmem.Addr]bool{}
	for i := 0; i < 100; i++ {
		a := p.Alloc(0)
		if a%64 != 0 {
			t.Fatalf("slot %d not line aligned", a)
		}
		if seen[a] {
			t.Fatalf("slot %d allocated twice", a)
		}
		seen[a] = true
		for w := pmem.Addr(0); w < 64; w += 8 {
			if h.Load(0, a+w) != 0 {
				t.Fatalf("fresh slot %d not zeroed at +%d", a, w)
			}
		}
	}
	if p.AreaCount() < 100/16 {
		t.Fatalf("expected multiple areas, got %d", p.AreaCount())
	}
}

func TestRetireReuseAfterEpochs(t *testing.T) {
	h := newHeap(t, pmem.ModePerf)
	p := NewPool(h, Config{SlotBytes: 64, SlotsPerArea: 8, Threads: 1, RootSlot: 0})
	a := p.Alloc(0)
	p.Enter(0)
	p.Retire(0, a)
	p.Exit(0)
	// Cycle enough retire/advance rounds for the limbo to mature.
	for i := 0; i < 10*retireAdvanceN; i++ {
		p.Enter(0)
		b := p.Alloc(0)
		p.Retire(0, b)
		p.Exit(0)
	}
	if p.FreeLen(0) == 0 {
		t.Fatal("nothing was ever reclaimed")
	}
}

func TestEBRBlocksReuseWhileActive(t *testing.T) {
	h := newHeap(t, pmem.ModePerf)
	p := NewPool(h, Config{SlotBytes: 64, SlotsPerArea: 8, Threads: 2, RootSlot: 0})
	victim := p.Alloc(1)

	p.Enter(0) // thread 0 holds an epoch open, as if mid-operation
	p.Enter(1)
	p.Retire(1, victim)
	p.Exit(1)

	// Thread 1 churns; the victim must never be handed out while
	// thread 0 is still inside its operation.
	for i := 0; i < 5*retireAdvanceN; i++ {
		p.Enter(1)
		b := p.Alloc(1)
		if b == victim {
			t.Fatal("victim reused while another thread was active in an older epoch")
		}
		p.Retire(1, b)
		p.Exit(1)
	}
	p.Exit(0)
	// Now reuse must eventually happen.
	reused := false
	for i := 0; i < 20*retireAdvanceN && !reused; i++ {
		p.Enter(1)
		b := p.Alloc(1)
		if b == victim {
			reused = true
		}
		p.Retire(1, b)
		p.Exit(1)
	}
	if !reused {
		t.Fatal("victim never reclaimed after all threads exited")
	}
}

func TestConcurrentAllocNoDoubleHandout(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 8})
	const threads, per = 4, 2000
	p := NewPool(h, Config{SlotBytes: 64, SlotsPerArea: 128, Threads: threads, RootSlot: 0})
	var mu sync.Mutex
	seen := map[pmem.Addr]int{}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			local := make([]pmem.Addr, 0, per)
			for i := 0; i < per; i++ {
				p.Enter(tid)
				local = append(local, p.Alloc(tid))
				p.Exit(tid)
			}
			mu.Lock()
			for _, a := range local {
				seen[a]++
			}
			mu.Unlock()
		}(tid)
	}
	wg.Wait()
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("slot %d handed out %d times", a, n)
		}
	}
	if len(seen) != threads*per {
		t.Fatalf("expected %d distinct slots, got %d", threads*per, len(seen))
	}
}

func TestRecoverPoolRebuildsFreeLists(t *testing.T) {
	h := newHeap(t, pmem.ModeCrash)
	cfg := Config{SlotBytes: 64, SlotsPerArea: 16, Threads: 2, RootSlot: 0}
	p := NewPool(h, cfg)
	liveSet := map[pmem.Addr]bool{}
	for i := 0; i < 40; i++ {
		a := p.Alloc(0)
		if i%3 == 0 {
			liveSet[a] = true // pretend these are still in the structure
		}
	}
	total := p.AreaCount() * cfg.SlotsPerArea

	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(1)))
	h.Restart()

	seen := 0
	rp := RecoverPool(h, cfg, func(a pmem.Addr) bool {
		seen++
		return liveSet[a]
	})
	if seen != total {
		t.Fatalf("live() saw %d slots, want %d", seen, total)
	}
	free := rp.FreeLen(0) + rp.FreeLen(1)
	if free != total-len(liveSet) {
		t.Fatalf("recovered free slots = %d, want %d", free, total-len(liveSet))
	}
	// Recovered free slots must be usable and disjoint from live ones.
	for i := 0; i < free; i++ {
		a := rp.Alloc(i % 2)
		if liveSet[a] {
			t.Fatalf("recovery handed out live slot %d", a)
		}
	}
}

func TestRecoverPoolSurvivesCrashBeforeAnyArea(t *testing.T) {
	h := newHeap(t, pmem.ModeCrash)
	cfg := Config{SlotBytes: 64, SlotsPerArea: 16, Threads: 1, RootSlot: 3}
	NewPool(h, cfg)
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(2)))
	h.Restart()
	rp := RecoverPool(h, cfg, func(pmem.Addr) bool { return false })
	if rp.AreaCount() != 0 {
		t.Fatalf("expected 0 areas, got %d", rp.AreaCount())
	}
	if a := rp.Alloc(0); a == 0 {
		t.Fatal("Alloc after empty recovery returned nil addr")
	}
}

func TestNewPoolPanicsOnUsedRootSlot(t *testing.T) {
	h := newHeap(t, pmem.ModePerf)
	cfg := Config{SlotBytes: 64, Threads: 1, RootSlot: 0}
	NewPool(h, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool on used root slot did not panic")
		}
	}()
	NewPool(h, cfg)
}

func TestFreshSlotsArePersistentlyZero(t *testing.T) {
	// The paper relies on designated areas being zeroed *in NVRAM* so
	// recovery ignores never-used slots even right after a crash.
	h := newHeap(t, pmem.ModeCrash)
	p := NewPool(h, Config{SlotBytes: 64, SlotsPerArea: 8, Threads: 1, RootSlot: 0})
	a := p.Alloc(0)
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(3)))
	for w := pmem.Addr(0); w < 64; w += 8 {
		if h.RawImg(a+w) != 0 {
			t.Fatalf("fresh slot not zero in NVRAM image at +%d", w)
		}
	}
}
