// Package batch provides pluggable batch-size policies for the
// broker's producers and consumers.
//
// Batch size is the central latency/throughput dial of a durable
// queue: a batch of n messages rides one fence, so large batches
// amortize the ordered-persist cost (fences per message ~ 1/n) while
// small batches bound how long a message waits for its covering fence.
// The right size therefore depends on load. A Policy observes how full
// each window actually was and picks the size for the next one; the
// broker threads one policy instance per producer (flush threshold)
// and per consumer (PollBatch drain size).
//
// Policies are deliberately single-owner state machines: each instance
// belongs to exactly one goroutine (the producer or consumer it
// steers), so Size and Observe need no synchronization and cost a few
// arithmetic instructions — nothing on the persist path.
package batch

// Policy picks the batch (or drain) size for the next window and
// learns from how the previous one went. Implementations are not safe
// for concurrent use; give each producer/consumer its own instance.
type Policy interface {
	// Size returns the number of messages the next window should aim
	// for. Always >= 1.
	Size() int
	// Observe reports how many messages the previous window actually
	// carried: a window that filled to Size suggests backlog (grow), a
	// short or empty one suggests idleness (shrink).
	Observe(got int)
}

// Fixed is the trivial policy: every window targets N messages,
// feedback is ignored. It reproduces the pre-adaptive behaviour of the
// -batch / -dbatch knobs and serves as the experimental control.
type Fixed struct{ N int }

// Size returns the fixed target (at least 1).
func (f Fixed) Size() int {
	if f.N < 1 {
		return 1
	}
	return f.N
}

// Observe ignores feedback.
func (Fixed) Observe(int) {}

// AIMD adapts the window size by additive increase, multiplicative
// decrease — TCP's congestion dial pointed at fence amortization
// instead of packet loss. Full windows (got >= size) are evidence of
// backlog: grow linearly toward Max so a loaded queue converges to
// max-sized batches and minimal fences/msg. Short windows are evidence
// of idleness: halve toward Min so an idle queue converges to
// per-message windows and minimal latency. The asymmetry (slow up,
// fast down) keeps the tail short: one quiet window is enough to stop
// holding messages hostage to a big batch.
type AIMD struct {
	Min, Max int // size bounds; Min >= 1
	Step     int // additive increase per full window (default 1)

	size int
}

// NewAIMD returns an AIMD policy bounded to [min, max], starting at
// min (assume idle until the queue proves otherwise).
func NewAIMD(min, max int) *AIMD {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &AIMD{Min: min, Max: max, Step: 1, size: min}
}

// Size returns the current window target.
func (a *AIMD) Size() int {
	if a.size < a.Min {
		a.size = a.Min
	}
	return a.size
}

// Observe applies the AIMD update for a window that carried got
// messages.
func (a *AIMD) Observe(got int) {
	step := a.Step
	if step < 1 {
		step = 1
	}
	if got >= a.Size() {
		a.size += step
		if a.size > a.Max {
			a.size = a.Max
		}
		return
	}
	a.size /= 2
	if a.size < got {
		a.size = got // don't undershoot a load level we just saw
	}
	if a.size < a.Min {
		a.size = a.Min
	}
}
