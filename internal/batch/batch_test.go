package batch

import "testing"

func TestFixedClampsToOne(t *testing.T) {
	if got := (Fixed{N: 0}).Size(); got != 1 {
		t.Fatalf("Fixed{0}.Size() = %d, want 1", got)
	}
	if got := (Fixed{N: 8}).Size(); got != 8 {
		t.Fatalf("Fixed{8}.Size() = %d, want 8", got)
	}
}

// An AIMD policy fed full windows must climb to Max and stay there —
// the loaded regime where fences/msg matters most.
func TestAIMDGrowsToMaxUnderLoad(t *testing.T) {
	p := NewAIMD(1, 64)
	for i := 0; i < 200; i++ {
		p.Observe(p.Size()) // every window fills
	}
	if p.Size() != 64 {
		t.Fatalf("after sustained full windows Size() = %d, want 64", p.Size())
	}
	p.Observe(64)
	if p.Size() != 64 {
		t.Fatalf("Size() exceeded Max: %d", p.Size())
	}
}

// Fed empty windows it must collapse to Min quickly — the idle regime
// where latency matters most. Multiplicative decrease means the
// collapse takes O(log Max) windows, not O(Max).
func TestAIMDShrinksToMinWhenIdle(t *testing.T) {
	p := NewAIMD(1, 64)
	for i := 0; i < 200; i++ {
		p.Observe(p.Size())
	}
	steps := 0
	for p.Size() > 1 {
		p.Observe(0)
		steps++
		if steps > 10 {
			t.Fatalf("AIMD did not collapse to Min within 10 empty windows (stuck at %d)", p.Size())
		}
	}
	if steps > 7 { // log2(64) + slack
		t.Fatalf("collapse took %d windows, want multiplicative (<= 7)", steps)
	}
}

// A short-but-nonzero window must not shrink below the observed load:
// halving 64 -> 32 on a 40-message window would immediately refill.
func TestAIMDDoesNotUndershootObservedLoad(t *testing.T) {
	p := NewAIMD(1, 64)
	for i := 0; i < 200; i++ {
		p.Observe(p.Size())
	}
	p.Observe(40)
	if p.Size() != 40 {
		t.Fatalf("after a 40-message short window Size() = %d, want 40", p.Size())
	}
}

func TestAIMDRespectsBounds(t *testing.T) {
	p := NewAIMD(4, 16)
	if p.Size() != 4 {
		t.Fatalf("fresh policy starts at %d, want Min=4", p.Size())
	}
	for i := 0; i < 100; i++ {
		p.Observe(0)
	}
	if p.Size() != 4 {
		t.Fatalf("Size() fell below Min: %d", p.Size())
	}
	for i := 0; i < 100; i++ {
		p.Observe(p.Size())
	}
	if p.Size() != 16 {
		t.Fatalf("Size() = %d, want Max=16", p.Size())
	}
}
