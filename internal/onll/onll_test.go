package onll

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/qtest"
)

func TestONLLSemantics(t *testing.T)    { qtest.RunSemantics(t, Info()) }
func TestONLLConcurrent(t *testing.T)   { qtest.RunConcurrent(t, Info(), 4, 1500) }
func TestONLLCrashRecover(t *testing.T) { qtest.RunCrashRecovery(t, Info(), 3) }

// TestONLLOneFencePerUpdateZeroPostFlush verifies the Section 2.1
// claim: one fence per update, zero fences per read-only operation,
// zero accesses to flushed content — for the universal construction.
func TestONLLOneFencePerUpdateZeroPostFlush(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, MaxThreads: 2})
	q := NewQueue(h, 1)
	for i := uint64(1); i <= 100; i++ { // warm
		q.Enqueue(0, i)
	}
	base := h.TotalStats()
	const n = 200
	for i := uint64(1); i <= n; i++ {
		q.Enqueue(0, i)
	}
	for i := 0; i < n; i++ {
		if _, ok := q.Dequeue(0); !ok {
			t.Fatal("unexpected empty")
		}
	}
	s := h.TotalStats().Sub(base)
	if s.Fences != 2*n {
		t.Errorf("fences = %d for %d updates, want %d", s.Fences, 2*n, 2*n)
	}
	if s.PostFlushAccesses != 0 {
		t.Errorf("post-flush accesses = %d, want 0", s.PostFlushAccesses)
	}
	// Drain to empty; failing dequeues are read-only: zero fences.
	for i := 0; i < 100; i++ {
		q.Dequeue(0)
	}
	mid := h.TotalStats()
	for i := 0; i < 50; i++ {
		if _, ok := q.Dequeue(0); ok {
			t.Fatal("queue should be empty")
		}
	}
	if d := h.TotalStats().Sub(mid); d.Fences != 0 {
		t.Errorf("failing dequeues issued %d fences, want 0", d.Fences)
	}
}

// TestONLLGenericObject applies the construction to a different
// object (a counter with add/get) to back the "any object" claim.
type counter struct{ v uint64 }

func (c *counter) Apply(code, arg uint64) uint64 {
	if code != 1 {
		panic("counter: unknown update")
	}
	c.v += arg
	return c.v
}
func (c *counter) Query(code, arg uint64) uint64 { return c.v }
func (c *counter) Reset()                        { c.v = 0 }

func TestONLLGenericObject(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 16 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	c := &counter{}
	u := New(h, 1, c, h.Bytes()/4)
	var want uint64
	for i := uint64(1); i <= 50; i++ {
		u.Update(0, 1, i)
		want += i
	}
	if got := u.Query(0, 0, 0); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	h.CrashNow()
	h.FinalizeCrash(newRand(3))
	h.Restart()
	c2 := &counter{}
	Recover(h, 1, c2)
	if c2.v != want {
		t.Fatalf("recovered counter = %d, want %d", c2.v, want)
	}
}

// TestONLLLogExhaustionPanics documents the unbounded-history
// limitation.
func TestONLLLogExhaustionPanics(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 16 << 20, MaxThreads: 2})
	u := New(h, 1, &SeqQueue{}, 10*pmem.CacheLineBytes)
	defer func() {
		if recover() == nil {
			t.Fatal("expected log-exhaustion panic")
		}
	}()
	for i := uint64(0); i < 100; i++ {
		u.Update(0, OpEnq, i)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
