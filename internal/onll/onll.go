// Package onll implements the upper-bound construction of Section 2.1:
// the ONLL universal construction of Cohen, Guerraoui and Zablotchi
// (SPAA 2018) with the paper's proposed modification — log entries
// aligned to cache lines so that no two entries share a line. With
// that modification the construction executes the minimum possible
// number of fences (one per update operation, zero per read-only
// operation) while performing zero accesses to explicitly flushed
// content, for ANY object with a deterministic sequential
// specification.
//
// Like the original (which the paper describes as "intended as a proof
// of existence"), this implementation is not built for speed: the
// per-thread persistent logs grow with the execution (one cache line
// per update) and operations serialize. The paper's four queues exist
// precisely because the practical path needs tailor-made algorithms;
// this package exists to demonstrate that the theoretical optimum the
// second amendment reaches (1 fence, 0 post-flush accesses) is
// attainable universally.
package onll

import (
	"sort"
	"sync"

	"repro/internal/pmem"
	"repro/internal/queues"
)

// Object is a deterministic sequential specification.
type Object interface {
	// Apply executes an update operation and returns its response.
	Apply(code, arg uint64) uint64
	// Query executes a read-only operation.
	Query(code, arg uint64) uint64
	// Reset returns the object to its initial state (used before a
	// recovery replay).
	Reset()
}

// Log entry layout: one 64-byte line per entry. The sequence number
// seals the entry: it is written last, so under Assumption 1 a sealed
// entry is whole.
const (
	entSeq  = pmem.Addr(0)
	entCode = pmem.Addr(8)
	entArg  = pmem.Addr(16)

	slotLog = 5 // heap root slot anchoring the log region
)

// UC is the universal construction: a shared sequential object whose
// updates are made durable through per-thread, cache-line-aligned
// persistent logs.
type UC struct {
	h       *pmem.Heap
	mu      sync.Mutex
	obj     Object
	threads int
	capPer  int // entries per thread
	base    pmem.Addr
	seq     uint64
	nextIdx []int // per-thread next log slot
}

// New creates the construction over obj. budgetBytes bounds the total
// log region (split across threads); exceeding it panics, as ONLL's
// unbounded history would exhaust any real arena.
func New(h *pmem.Heap, threads int, obj Object, budgetBytes int64) *UC {
	capPer := int(budgetBytes / int64(threads) / pmem.CacheLineBytes)
	if capPer < 1 {
		panic("onll: log budget too small")
	}
	u := &UC{h: h, obj: obj, threads: threads, capPer: capPer, nextIdx: make([]int, threads)}
	size := int64(threads*capPer) * pmem.CacheLineBytes
	u.base = h.AllocRaw(0, size, pmem.CacheLineBytes)
	h.InitRange(0, u.base, size)
	h.Store(0, h.RootAddr(slotLog), uint64(u.base))
	h.Store(0, h.RootAddr(slotLog)+8, uint64(threads))
	h.Store(0, h.RootAddr(slotLog)+16, uint64(capPer))
	h.Flush(0, h.RootAddr(slotLog))
	h.Fence(0)
	return u
}

// Recover rebuilds the construction after a crash by replaying the
// union of the per-thread logs in sequence order. A trailing entry
// whose sequence number never became durable is dropped (its operation
// was pending, which durable linearizability allows).
func Recover(h *pmem.Heap, threads int, obj Object) *UC {
	base := pmem.Addr(h.Load(0, h.RootAddr(slotLog)))
	loggedThreads := int(h.Load(0, h.RootAddr(slotLog)+8))
	capPer := int(h.Load(0, h.RootAddr(slotLog)+16))
	type ent struct {
		seq, code, arg uint64
		tid, idx       int
	}
	var ents []ent
	for t := 0; t < loggedThreads; t++ {
		for i := 0; i < capPer; i++ {
			a := base + pmem.Addr((t*capPer+i)*pmem.CacheLineBytes)
			seq := h.Load(0, a+entSeq)
			if seq == 0 {
				break // entries are written in order within a thread
			}
			ents = append(ents, ent{seq, h.Load(0, a+entCode), h.Load(0, a+entArg), t, i})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].seq < ents[j].seq })
	obj.Reset()
	u := &UC{h: h, obj: obj, threads: threads, capPer: capPer, base: base,
		nextIdx: make([]int, max(threads, loggedThreads))}
	expect := uint64(1)
	for _, e := range ents {
		if e.seq != expect {
			break // the missing op (and anything after) was pending
		}
		obj.Apply(e.code, e.arg)
		u.seq = e.seq
		if e.idx+1 > u.nextIdx[e.tid] {
			u.nextIdx[e.tid] = e.idx + 1
		}
		expect++
	}
	return u
}

// Update runs an update operation: apply to the object, write one
// sealed log entry on the thread's next private cache line, flush it
// and issue the operation's single fence. The entry line is never
// accessed again except by recovery, so no access to flushed content
// ever occurs.
func (u *UC) Update(tid int, code, arg uint64) uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	resp := u.obj.Apply(code, arg)
	u.seq++
	if u.nextIdx[tid] >= u.capPer {
		panic("onll: per-thread log exhausted (ONLL history is unbounded by design)")
	}
	a := u.base + pmem.Addr((tid*u.capPer+u.nextIdx[tid])*pmem.CacheLineBytes)
	u.nextIdx[tid]++
	u.h.Store(tid, a+entArg, arg)
	u.h.Store(tid, a+entCode, code)
	u.h.Store(tid, a+entSeq, u.seq) // seal last
	u.h.Flush(tid, a)
	u.h.Fence(tid)
	return resp
}

// Query runs a read-only operation: no fence, no flush (the paper's
// lower bound allows zero for read-only operations).
func (u *UC) Query(tid int, code, arg uint64) uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.obj.Query(code, arg)
}

// ---- Queue instantiation ----

// Op codes for SeqQueue.
const (
	OpEnq     = 1
	OpDeq     = 2
	OpIsEmpty = 3
)

// SeqQueue is a sequential FIFO queue implementing Object.
type SeqQueue struct{ items []uint64 }

// Apply implements Object.
func (s *SeqQueue) Apply(code, arg uint64) uint64 {
	switch code {
	case OpEnq:
		s.items = append(s.items, arg)
		return 0
	case OpDeq:
		// Response encoding: v<<1|1 on success, 0 on empty, so a
		// racing dequeue that finds the queue drained is
		// distinguishable from dequeuing the value 0.
		if len(s.items) == 0 {
			return 0
		}
		v := s.items[0]
		s.items = s.items[1:]
		return v<<1 | 1
	}
	panic("seqqueue: unknown update code")
}

// Query implements Object.
func (s *SeqQueue) Query(code, arg uint64) uint64 {
	if code == OpIsEmpty {
		if len(s.items) == 0 {
			return 1
		}
		return 0
	}
	panic("seqqueue: unknown query code")
}

// Reset implements Object.
func (s *SeqQueue) Reset() { s.items = nil }

// Queue adapts the construction to the queues.Queue interface.
type Queue struct{ uc *UC }

// NewQueue creates an ONLL-backed FIFO queue. The log budget is a
// quarter of the heap.
func NewQueue(h *pmem.Heap, threads int) *Queue {
	return &Queue{uc: New(h, threads, &SeqQueue{}, h.Bytes()/4)}
}

// RecoverQueue reopens an ONLL-backed queue after a crash.
func RecoverQueue(h *pmem.Heap, threads int) *Queue {
	return &Queue{uc: Recover(h, threads, &SeqQueue{})}
}

// Enqueue appends v (one fence).
func (q *Queue) Enqueue(tid int, v uint64) { q.uc.Update(tid, OpEnq, v) }

// Dequeue removes the oldest item. The empty check is a read-only
// operation (zero fences); a successful dequeue is an update (one
// fence). The window between the two is benign: a dequeue that loses
// the race applies to an empty queue as a no-op and reports empty.
func (q *Queue) Dequeue(tid int) (uint64, bool) {
	if q.uc.Query(tid, OpIsEmpty, 0) == 1 {
		return 0, false
	}
	r := q.uc.Update(tid, OpDeq, 0)
	if r == 0 {
		// Lost a race with a concurrent dequeue that drained the
		// queue; the logged no-op replays identically at recovery.
		return 0, false
	}
	return r >> 1, true
}

// Info returns the registry entry for the ONLL queue.
func Info() queues.Info {
	return queues.Info{
		Name:    "onll",
		Durable: true,
		New:     func(h *pmem.Heap, n int) queues.Queue { return NewQueue(h, n) },
		Recover: func(h *pmem.Heap, n int) queues.Queue { return RecoverQueue(h, n) },
	}
}
