package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is one stable, self-contained view of an observer:
// per-op latency summaries, per-topic message gauges, per-group
// per-shard lag, and the per-heap persist counters re-exported from
// pmem.Stats. It marshals to JSON as-is and renders to Prometheus
// text format with WritePrometheus. Exact while the observed broker
// is quiescent; taken live it is a consistent-enough monitoring view
// (counters are read individually, never torn).
type Snapshot struct {
	Ops    []OpSnapshot    `json:"ops"`
	Topics []TopicSnapshot `json:"topics"`
	Groups []GroupSnapshot `json:"groups"`
	Heaps  []HeapSnapshot  `json:"heaps,omitempty"`
}

// OpSnapshot summarizes one operation kind's latency distribution.
type OpSnapshot struct {
	Op     string  `json:"op"`
	Count  uint64  `json:"count"`
	SumNs  uint64  `json:"sum_ns"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
}

// TopicSnapshot is one topic's message gauges.
type TopicSnapshot struct {
	Topic       string `json:"topic"`
	Published   uint64 `json:"published"`
	Delivered   uint64 `json:"delivered"`
	Acked       uint64 `json:"acked"`
	Redelivered uint64 `json:"redelivered"`
	Depth       uint64 `json:"depth"`
}

// GroupSnapshot is one consumer group's lag state plus its
// membership-protocol counters.
type GroupSnapshot struct {
	Group      string     `json:"group"`
	MaxLag     uint64     `json:"max_lag"`
	FencedAcks uint64     `json:"fenced_acks"`
	Reassigned uint64     `json:"reassigned_shards"`
	Stolen     uint64     `json:"stolen_shards"`
	Scans      uint64     `json:"scans"`
	Shards     []ShardLag `json:"shards"`
}

// ShardLag is one shard's lag within a group: the published head
// minus the group's consumption frontier.
type ShardLag struct {
	Topic     string `json:"topic"`
	Shard     int    `json:"shard"`
	Published uint64 `json:"published"`
	Frontier  uint64 `json:"frontier"`
	Lag       uint64 `json:"lag"`
}

// HeapSnapshot re-exports one member heap's persist counters.
type HeapSnapshot struct {
	Heap              int    `json:"heap"`
	Fences            uint64 `json:"fences"`
	NTStores          uint64 `json:"ntstores"`
	Flushes           uint64 `json:"flushes"`
	PostFlushAccesses uint64 `json:"post_flush_accesses"`
}

// Snapshot assembles the current view.
func (o *Observer) Snapshot() Snapshot {
	var s Snapshot
	for op := Op(0); op < NumOps; op++ {
		h := o.OpHist(op)
		s.Ops = append(s.Ops, OpSnapshot{
			Op:     op.String(),
			Count:  h.Count,
			SumNs:  h.SumNs,
			MeanNs: h.MeanNs(),
			P50Ns:  h.Quantile(0.5),
			P99Ns:  h.Quantile(0.99),
			P999Ns: h.Quantile(0.999),
		})
	}
	o.mu.Lock()
	topics := append([]*TopicStats(nil), o.topics...)
	groups := append([]*GroupStats(nil), o.groups...)
	heapStats := o.heapStats
	o.mu.Unlock()
	for _, t := range topics {
		pub, del, ack, redel := t.Counts()
		s.Topics = append(s.Topics, TopicSnapshot{
			Topic: t.name, Published: pub, Delivered: del, Acked: ack,
			Redelivered: redel, Depth: t.Depth(),
		})
	}
	for _, g := range groups {
		gs := GroupSnapshot{Group: g.name}
		gs.FencedAcks, gs.Reassigned, gs.Stolen, gs.Scans = g.Membership()
		g.mu.Lock()
		cursors := append([]*ShardCursor(nil), g.cursors...)
		g.mu.Unlock()
		for _, c := range cursors {
			l := ShardLag{
				Topic:     c.t.name,
				Shard:     int(c.shard),
				Published: c.t.ShardPublished(int(c.shard)),
				Frontier:  c.Frontier(),
			}
			if l.Published > l.Frontier {
				l.Lag = l.Published - l.Frontier
			}
			if l.Lag > gs.MaxLag {
				gs.MaxLag = l.Lag
			}
			gs.Shards = append(gs.Shards, l)
		}
		s.Groups = append(s.Groups, gs)
	}
	if heapStats != nil {
		for i, hs := range heapStats() {
			s.Heaps = append(s.Heaps, HeapSnapshot{
				Heap: i, Fences: hs.Fences, NTStores: hs.NTStores,
				Flushes: hs.Flushes, PostFlushAccesses: hs.PostFlushAccesses,
			})
		}
	}
	return s
}

// Op returns the summary of one operation kind by name.
func (s Snapshot) Op(name string) (OpSnapshot, bool) {
	for _, op := range s.Ops {
		if op.Op == name {
			return op, true
		}
	}
	return OpSnapshot{}, false
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text-based
// exposition format (version 0.0.4): per-op latency summaries in
// seconds, topic message counters, topic depth and group lag gauges,
// and per-heap persist counters. The output passes
// ValidatePrometheus.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	b := bufio.NewWriter(w)
	fmt.Fprintln(b, "# HELP broker_op_latency_seconds Broker operation latency quantiles.")
	fmt.Fprintln(b, "# TYPE broker_op_latency_seconds summary")
	for _, op := range s.Ops {
		for _, q := range []struct {
			q  string
			ns float64
		}{{"0.5", op.P50Ns}, {"0.99", op.P99Ns}, {"0.999", op.P999Ns}} {
			fmt.Fprintf(b, "broker_op_latency_seconds{op=%q,quantile=%q} %g\n", op.Op, q.q, q.ns/1e9)
		}
		fmt.Fprintf(b, "broker_op_latency_seconds_sum{op=%q} %g\n", op.Op, float64(op.SumNs)/1e9)
		fmt.Fprintf(b, "broker_op_latency_seconds_count{op=%q} %d\n", op.Op, op.Count)
	}
	counter := func(name, help string, value func(TopicSnapshot) uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, t := range s.Topics {
			fmt.Fprintf(b, "%s{topic=%q} %d\n", name, t.Topic, value(t))
		}
	}
	counter("broker_topic_published_total", "Messages published per topic.",
		func(t TopicSnapshot) uint64 { return t.Published })
	counter("broker_topic_delivered_total", "Messages delivered per topic (redeliveries included).",
		func(t TopicSnapshot) uint64 { return t.Delivered })
	counter("broker_topic_acked_total", "Messages acknowledged per topic.",
		func(t TopicSnapshot) uint64 { return t.Acked })
	counter("broker_topic_redelivered_total", "Redeliveries per topic.",
		func(t TopicSnapshot) uint64 { return t.Redelivered })
	fmt.Fprintln(b, "# HELP broker_topic_depth Messages published but not yet delivered.")
	fmt.Fprintln(b, "# TYPE broker_topic_depth gauge")
	for _, t := range s.Topics {
		fmt.Fprintf(b, "broker_topic_depth{topic=%q} %d\n", t.Topic, t.Depth)
	}
	fmt.Fprintln(b, "# HELP broker_group_shard_lag Published head minus group frontier per owned shard.")
	fmt.Fprintln(b, "# TYPE broker_group_shard_lag gauge")
	for _, g := range s.Groups {
		for _, l := range g.Shards {
			fmt.Fprintf(b, "broker_group_shard_lag{group=%q,topic=%q,shard=\"%d\"} %d\n",
				g.Group, l.Topic, l.Shard, l.Lag)
		}
	}
	groupCounter := func(name, help string, value func(GroupSnapshot) uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, g := range s.Groups {
			fmt.Fprintf(b, "%s{group=%q} %d\n", name, g.Group, value(g))
		}
	}
	groupCounter("broker_group_fenced_acks_total", "Member ops refused with a stale lease epoch per group.",
		func(g GroupSnapshot) uint64 { return g.FencedAcks })
	groupCounter("broker_group_reassigned_shards_total", "Shards dealt off fenced members per group (Reassign/Scan).",
		func(g GroupSnapshot) uint64 { return g.Reassigned })
	groupCounter("broker_group_stolen_shards_total", "Expired shards claimed by work-stealing members per group.",
		func(g GroupSnapshot) uint64 { return g.Stolen })
	groupCounter("broker_group_scans_total", "Expiry-scanner passes per group.",
		func(g GroupSnapshot) uint64 { return g.Scans })
	heapCounter := func(name, help string, value func(HeapSnapshot) uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, h := range s.Heaps {
			fmt.Fprintf(b, "%s{heap=\"%d\"} %d\n", name, h.Heap, value(h))
		}
	}
	if len(s.Heaps) > 0 {
		heapCounter("broker_heap_fences_total", "Blocking persists (SFENCE) per member heap.",
			func(h HeapSnapshot) uint64 { return h.Fences })
		heapCounter("broker_heap_ntstores_total", "Non-temporal stores per member heap.",
			func(h HeapSnapshot) uint64 { return h.NTStores })
		heapCounter("broker_heap_flushes_total", "Cache-line write-backs (CLWB) per member heap.",
			func(h HeapSnapshot) uint64 { return h.Flushes })
		heapCounter("broker_heap_post_flush_accesses_total", "Accesses to explicitly flushed lines per member heap.",
			func(h HeapSnapshot) uint64 { return h.PostFlushAccesses })
	}
	return b.Flush()
}

// ValidatePrometheus checks that r is syntactically valid Prometheus
// text exposition format: well-formed comment and sample lines, legal
// metric and label names, parseable values, and a TYPE declaration
// preceding every sample family (summaries may emit _sum/_count under
// their base name). It exists so CI can assert cmd/brokerstat's
// output stays scrape-ready without importing a Prometheus client.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parsePromComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				typed[name] = rest
			}
			continue
		}
		name, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := name
		for _, suffix := range []string{"_sum", "_count"} {
			if t, ok := typed[strings.TrimSuffix(name, suffix)]; ok && (t == "summary" || t == "histogram") {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if _, ok := typed[base]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, name)
		}
	}
	return sc.Err()
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parsePromComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("comment must be # HELP or # TYPE, got %q", kind)
	}
	name = fields[2]
	if !validPromName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	if kind == "TYPE" && rest == "" {
		return "", "", "", fmt.Errorf("# TYPE %s missing a type", name)
	}
	return kind, name, rest, nil
}

// parsePromSample validates one sample line and returns the metric
// name.
func parsePromSample(line string) (string, error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if !validPromName(name) {
		return "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parsePromLabels(rest)
		if err != nil {
			return "", fmt.Errorf("sample %q: %w", name, err)
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("sample %q: want value [timestamp], got %q", name, rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", fmt.Errorf("sample %q: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("sample %q: bad timestamp %q", name, fields[1])
		}
	}
	return name, nil
}

// parsePromLabels scans a {name="value",...} label block starting at
// s[0] == '{' and returns the index just past the closing brace.
func parsePromLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) || !validPromName(strings.TrimSuffix(s[i:j], " ")) {
			return 0, fmt.Errorf("bad label name in %q", s)
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
