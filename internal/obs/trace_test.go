package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceWrapKeepsNewest(t *testing.T) {
	o := New(Config{Threads: 2, TraceEvents: 4})
	ts := o.RegisterTopic("orders", 1)
	// Thread 0 records 10 events into a 4-slot ring: only the last 4
	// survive. Thread 1 records 2: both survive.
	for i := 0; i < 10; i++ {
		o.Event(0, OpPublish, ts, 0)
	}
	o.Event(1, OpPoll, ts, 0)
	o.Event(1, OpAck, nil, -1)
	tr := o.Trace()
	if tr.Len() != 12 {
		t.Fatalf("Len = %d, want 12", tr.Len())
	}
	evs := tr.Events()
	if len(evs) != 6 {
		t.Fatalf("surviving events = %d, want 6 (4 wrapped + 2)", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNs < evs[i-1].TimeNs {
			t.Fatalf("events not time-sorted at %d", i)
		}
	}
	var acks int
	for _, e := range evs {
		if e.Op == OpAck {
			acks++
			if e.Topic != -1 || e.Shard != -1 {
				t.Fatalf("unattributed event carries topic=%d shard=%d", e.Topic, e.Shard)
			}
		}
	}
	if acks != 1 {
		t.Fatalf("ack events = %d, want 1", acks)
	}
}

func TestDumpTrace(t *testing.T) {
	o := New(Config{Threads: 1, TraceEvents: 8})
	ts := o.RegisterTopic("orders", 2)
	o.Event(0, OpPublish, ts, 1)
	o.Event(0, OpPoll, nil, -1)
	var buf bytes.Buffer
	o.DumpTrace(&buf, 10)
	out := buf.String()
	if !strings.Contains(out, "publish") || !strings.Contains(out, "orders/1") {
		t.Fatalf("dump missing attributed event:\n%s", out)
	}
	if !strings.Contains(out, "poll") || !strings.Contains(out, "-/-") {
		t.Fatalf("dump missing unattributed event:\n%s", out)
	}

	disabled := New(Config{Threads: 1})
	buf.Reset()
	disabled.DumpTrace(&buf, 10)
	if !strings.Contains(buf.String(), "no event trace") {
		t.Fatalf("disabled trace dump = %q", buf.String())
	}
	if disabled.Trace() != nil {
		t.Fatal("TraceEvents=0 should leave trace nil")
	}
	// Event on a disabled trace is a cheap no-op, not a panic.
	disabled.Event(0, OpPublish, ts, 0)
}
