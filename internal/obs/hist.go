package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram: bucket i
// holds samples whose nanosecond value has bit-length i, so bucket 0
// is {0}, bucket i ≥ 1 covers [2^(i-1), 2^i), and 64 buckets span the
// whole non-negative int64 range. Log bucketing bounds the relative
// quantile error by 2x while keeping the record path a single array
// increment — the HDR-histogram trade at its coarsest, sized so a
// per-thread per-op array costs ~0.5 KiB.
const NumBuckets = 64

// bucketOf maps a latency to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// bucketLo returns the smallest value bucket i holds.
func bucketLo(i int) float64 {
	if i <= 0 {
		return 0
	}
	return float64(uint64(1) << (i - 1))
}

// bucketHi returns the largest value bucket i holds.
func bucketHi(i int) float64 {
	if i <= 0 {
		return 0
	}
	return float64(uint64(1)<<i - 1)
}

// Histogram is one log-bucketed latency histogram. Record is
// lock-free and allocation-free (a fixed array of uncontended atomic
// counters); the intended deployment shards one Histogram per thread
// per op kind, mirroring the per-thread discipline of pmem.Stats, so
// the atomics never bounce between cores. Snapshots may be taken
// concurrently with recording and are mergeable.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// Record adds one sample. Negative latencies (a clock hiccup) clamp
// to zero rather than corrupting a bucket index.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	h.buckets[bucketOf(ns)].Add(1)
}

// Snapshot copies the histogram's counters. Taken concurrently with
// recording it is a consistent-enough view: every sample lands in
// this snapshot or a later one, never nowhere.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a plain-value histogram: bucket counts plus total
// count and sum. Snapshots merge associatively and commutatively
// (they are element-wise sums), so per-thread histograms combine in
// any order into the same aggregate.
type HistSnapshot struct {
	Count   uint64
	SumNs   uint64
	Buckets [NumBuckets]uint64
}

// Merge accumulates o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// MeanNs returns the mean sample in nanoseconds, 0 when empty.
func (s HistSnapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) in nanoseconds. The
// estimate uses the inverse empirical CDF at rank ceil(q·n) and
// interpolates linearly inside the rank's bucket, so it always falls
// within the bucket holding the exact rank-selected sample — a ≤ 2x
// relative error pinned by the package property tests. 0 when empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketLo(i), bucketHi(i)
			frac := (float64(rank-cum) - 0.5) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return bucketHi(NumBuckets - 1)
}
