package obs

import (
	"fmt"
	"io"
	"sort"
)

// The event trace is the elog idiom: one fixed-size ring of small
// fixed records per thread, written by that thread alone, so the
// record path is a lock-free array store plus a counter increment —
// no CAS, no shared cache line, no allocation. The rings are merged
// and time-sorted only when someone asks for the evidence (a
// crash-fuzz audit failure, a debugging session), which is the only
// moment the trace costs anything.

// Event is one trace record.
type Event struct {
	// TimeNs is the Now() timestamp the event was recorded at.
	TimeNs int64
	// Op is the operation kind.
	Op Op
	// Tid is the recording thread.
	Tid int32
	// Topic is the TopicStats registration id, -1 when the event has
	// no topic attribution (resolve names via Observer.DumpTrace).
	Topic int32
	// Shard is the shard index within the topic, -1 when unattributed.
	Shard int32
}

// tracePos is one thread's write cursor, padded so neighbouring
// threads' cursors never share a cache line.
type tracePos struct {
	n uint64
	_ [56]byte
}

// Trace is a fixed-size per-thread ring-buffer event trace. Record
// (via Observer.Event) is safe under the one-goroutine-per-tid rule;
// Events and WriteTo read the rings without synchronization and are
// exact while the recording threads are quiescent — the same contract
// as pmem's statistics, and the natural one for a post-mortem dump.
type Trace struct {
	mask  uint64
	rings [][]Event
	pos   []tracePos
}

// newTrace builds a trace with perThread slots per thread, rounded up
// to a power of two so the ring index is a mask, not a division.
func newTrace(threads, perThread int) *Trace {
	size := 1
	for size < perThread {
		size <<= 1
	}
	t := &Trace{mask: uint64(size - 1), rings: make([][]Event, threads), pos: make([]tracePos, threads)}
	for i := range t.rings {
		t.rings[i] = make([]Event, size)
	}
	return t
}

func (t *Trace) record(tid int, op Op, topic, shard int32) {
	p := &t.pos[tid]
	t.rings[tid][p.n&t.mask] = Event{TimeNs: Now(), Op: op, Tid: int32(tid), Topic: topic, Shard: shard}
	p.n++
}

// Len reports how many events have been recorded in total (including
// ones already overwritten in their rings).
func (t *Trace) Len() uint64 {
	var n uint64
	for i := range t.pos {
		n += t.pos[i].n
	}
	return n
}

// Events merges every thread's surviving ring contents into one
// time-ordered slice. Call while the recording threads are quiescent.
func (t *Trace) Events() []Event {
	var out []Event
	for tid := range t.rings {
		n := t.pos[tid].n
		ring := uint64(len(t.rings[tid]))
		kept := n
		if kept > ring {
			kept = ring
		}
		for i := n - kept; i < n; i++ {
			out = append(out, t.rings[tid][i&t.mask])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeNs < out[j].TimeNs })
	return out
}

// DumpTrace writes the last (at most) last merged trace events to w,
// one line per event with topic ids resolved to names — the
// post-mortem ordering evidence crash-fuzz prints on an audit
// failure. A disabled trace writes a single note. Call while the
// recording threads are quiescent.
func (o *Observer) DumpTrace(w io.Writer, last int) {
	if o.trace == nil {
		fmt.Fprintln(w, "obs: no event trace configured")
		return
	}
	o.mu.Lock()
	names := make([]string, len(o.topics))
	for i, t := range o.topics {
		names[i] = t.name
	}
	o.mu.Unlock()
	evs := o.trace.Events()
	if last > 0 && len(evs) > last {
		evs = evs[len(evs)-last:]
	}
	fmt.Fprintf(w, "obs: last %d of %d trace events (tid op topic/shard @ns):\n", len(evs), o.trace.Len())
	for _, e := range evs {
		topic := "-"
		if e.Topic >= 0 && int(e.Topic) < len(names) {
			topic = names[e.Topic]
		}
		shard := "-"
		if e.Shard >= 0 {
			shard = fmt.Sprintf("%d", e.Shard)
		}
		fmt.Fprintf(w, "  tid %2d %-7s %s/%s @%d\n", e.Tid, e.Op, topic, shard, e.TimeNs)
	}
}
