package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/pmem"
)

// observedFixture builds an observer with a little of everything so
// export paths all have data to render.
func observedFixture() *Observer {
	o := New(Config{Threads: 2, TraceEvents: 16})
	ts := o.RegisterTopic("orders", 2)
	g := o.RegisterGroup()
	c0 := g.AddShard(ts, 0)
	g.AddShard(ts, 1)
	for i := 0; i < 50; i++ {
		start := Now() - int64(1000*(i+1))
		ts.Published(i%2, 1)
		o.Lat(i%2, OpPublish, start)
	}
	ts.Delivered(30)
	ts.Acked(20)
	ts.Redelivered(5)
	c0.Advance(10)
	o.SetHeapStats(func() []pmem.Stats {
		return []pmem.Stats{{Fences: 42, NTStores: 7, Flushes: 3, PostFlushAccesses: 1}}
	})
	return o
}

func TestSnapshotContents(t *testing.T) {
	s := observedFixture().Snapshot()
	pub, ok := s.Op("publish")
	if !ok || pub.Count != 50 {
		t.Fatalf("publish op = %+v ok=%v, want count 50", pub, ok)
	}
	if pub.P50Ns <= 0 || pub.P99Ns < pub.P50Ns || pub.P999Ns < pub.P99Ns {
		t.Fatalf("quantiles not monotone: %+v", pub)
	}
	if _, ok := s.Op("nope"); ok {
		t.Fatal("unknown op reported present")
	}
	if len(s.Topics) != 1 {
		t.Fatalf("topics = %d, want 1", len(s.Topics))
	}
	top := s.Topics[0]
	if top.Published != 50 || top.Delivered != 30 || top.Acked != 20 || top.Redelivered != 5 {
		t.Fatalf("topic counters = %+v", top)
	}
	// depth = published − (delivered − redelivered) = 50 − 25.
	if top.Depth != 25 {
		t.Fatalf("depth = %d, want 25", top.Depth)
	}
	if len(s.Groups) != 1 || len(s.Groups[0].Shards) != 2 {
		t.Fatalf("groups = %+v", s.Groups)
	}
	// Shard 0: 25 published, frontier 10 → lag 15; shard 1: lag 25.
	byShard := map[int]ShardLag{}
	for _, l := range s.Groups[0].Shards {
		byShard[l.Shard] = l
	}
	if byShard[0].Lag != 15 || byShard[1].Lag != 25 {
		t.Fatalf("lags = %+v", byShard)
	}
	if s.Groups[0].MaxLag != 25 {
		t.Fatalf("max lag = %d, want 25", s.Groups[0].MaxLag)
	}
	if len(s.Heaps) != 1 || s.Heaps[0].Fences != 42 || s.Heaps[0].NTStores != 7 {
		t.Fatalf("heaps = %+v", s.Heaps)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	s := observedFixture().Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(back.Ops) != int(NumOps) || back.Topics[0].Published != 50 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	s := observedFixture().Snapshot()
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`broker_op_latency_seconds{op="publish",quantile="0.99"}`,
		`broker_op_latency_seconds_count{op="publish"} 50`,
		`broker_topic_published_total{topic="orders"} 50`,
		`broker_topic_depth{topic="orders"} 25`,
		`broker_group_shard_lag{group="group-0",topic="orders",shard="1"} 25`,
		`broker_heap_fences_total{heap="0"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-rendered output fails validation: %v\n%s", err, out)
	}
	// An observer with no heap provider still renders valid output.
	bare := New(Config{Threads: 1})
	buf.Reset()
	if err := bare.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("bare output fails validation: %v", err)
	}
}

func TestValidatePrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":        "orphan_metric 1\n",
		"bad name":       "# TYPE 9bad counter\n9bad 1\n",
		"bad value":      "# TYPE m counter\nm not-a-number\n",
		"unclosed label": "# TYPE m counter\nm{a=\"x 1\n",
		"bad label name": "# TYPE m counter\nm{9=\"x\"} 1\n",
		"unknown type":   "# TYPE m widget\nm 1\n",
		"bare comment":   "#TYPE m counter\n",
	}
	for name, in := range cases {
		if err := ValidatePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
	// Valid corner cases must pass: timestamps, escaped quotes, blanks.
	good := "# HELP m help text\n# TYPE m gauge\n\nm{a=\"he said \\\"hi\\\"\"} 1.5 1700000000\nm 2\n"
	if err := ValidatePrometheus(strings.NewReader(good)); err != nil {
		t.Errorf("validator rejected valid input: %v", err)
	}
}

func TestRegisterTopicDedupes(t *testing.T) {
	o := New(Config{Threads: 1})
	a := o.RegisterTopic("t", 2)
	a.Published(1, 3)
	b := o.RegisterTopic("t", 4) // recovered broker, more shards
	if a != b {
		t.Fatal("re-registration created a duplicate TopicStats")
	}
	if got := b.ShardPublished(1); got != 3 {
		t.Fatalf("counter lost across re-registration: %d", got)
	}
	if len(o.Snapshot().Topics) != 1 {
		t.Fatal("duplicate topic series in snapshot")
	}
	b.Published(3, 1) // the grown shard is addressable
}
