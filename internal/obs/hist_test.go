package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile computes the inverse empirical CDF on the raw samples
// — the ground truth the histogram estimate must bracket.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileBracketsExactSample is the property test: for random
// sample sets, every estimated quantile must land inside the bucket
// that holds the exact rank-selected sample, i.e. within 2x below or
// above it (the log-bucket resolution bound).
func TestQuantileBracketsExactSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var h Histogram
		n := 1 + rng.Intn(2000)
		samples := make([]int64, n)
		for i := range samples {
			// Mix scales: sub-microsecond to tens of milliseconds.
			samples[i] = rng.Int63n(int64(1) << (4 + rng.Intn(22)))
			h.Record(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Snapshot()
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			exact := exactQuantile(samples, q)
			got := s.Quantile(q)
			lo, hi := bucketLo(bucketOf(exact)), bucketHi(bucketOf(exact))
			if got < lo || got > hi {
				t.Fatalf("trial %d q=%v: estimate %v outside bucket [%v,%v] of exact sample %d",
					trial, q, got, lo, hi, exact)
			}
		}
	}
}

// TestQuantileOnBucketBounds pins estimates for samples placed exactly
// on bucket boundaries, where off-by-one bucket selection would show.
func TestQuantileOnBucketBounds(t *testing.T) {
	var h Histogram
	// 10 samples at 1<<10, 10 samples at 1<<20.
	for i := 0; i < 10; i++ {
		h.Record(1 << 10)
		h.Record(1 << 20)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < bucketLo(11) || got > bucketHi(11) {
		t.Fatalf("p50 = %v, want within bucket of 1<<10 [%v,%v]", got, bucketLo(11), bucketHi(11))
	}
	if got := s.Quantile(0.99); got < bucketLo(21) || got > bucketHi(21) {
		t.Fatalf("p99 = %v, want within bucket of 1<<20 [%v,%v]", got, bucketLo(21), bucketHi(21))
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	if got := empty.MeanNs(); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
	var h Histogram
	h.Record(-5) // clamps to 0
	h.Record(0)
	s := h.Snapshot()
	if s.Count != 2 || s.Buckets[0] != 2 {
		t.Fatalf("negative/zero samples: count=%d bucket0=%d, want 2,2", s.Count, s.Buckets[0])
	}
	if got := s.Quantile(1); got != 0 {
		t.Fatalf("all-zero p100 = %v, want 0", got)
	}
}

// TestMergeAssociative checks that per-thread snapshots merge to the
// same aggregate regardless of grouping and order.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	parts := make([]HistSnapshot, 5)
	for i := range parts {
		var h Histogram
		for j := 0; j < 100+rng.Intn(400); j++ {
			h.Record(rng.Int63n(1 << 24))
		}
		parts[i] = h.Snapshot()
	}
	// Left fold.
	var left HistSnapshot
	for _, p := range parts {
		left.Merge(p)
	}
	// Right-grouped, reversed order.
	var right HistSnapshot
	for i := len(parts) - 1; i >= 0; i-- {
		var pair HistSnapshot
		pair.Merge(parts[i])
		pair.Merge(right)
		right = pair
	}
	if left != right {
		t.Fatal("merge result depends on grouping/order")
	}
	if got := left.Quantile(0.5); got != right.Quantile(0.5) {
		t.Fatalf("quantiles diverge after equal merges: %v vs %v", got, left.Quantile(0.5))
	}
}

// TestHistogramRace hammers one histogram from many goroutines while
// snapshots are taken concurrently; run under -race this pins the
// lock-free record path as data-race-free even off the per-tid
// sharding discipline.
func TestHistogramRace(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Record(rng.Int63n(1 << 20))
				if i%512 == 0 {
					_ = h.Snapshot().Quantile(0.99)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Fatalf("lost samples: count = %d, want %d", got, workers*perWorker)
	}
}

// TestObserverRace drives every Observer record path (latency, trace,
// topic counters, cursor advance) from per-tid goroutines while a
// snapshotter scrapes concurrently; meaningful under -race.
func TestObserverRace(t *testing.T) {
	const threads = 6
	o := New(Config{Threads: threads, TraceEvents: 64})
	ts := o.RegisterTopic("t", threads)
	g := o.RegisterGroup()
	cursors := make([]*ShardCursor, threads)
	for i := range cursors {
		cursors[i] = g.AddShard(ts, i)
	}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				start := Now()
				ts.Published(tid, 1)
				o.Lat(tid, OpPublish, start)
				o.Event(tid, OpPublish, ts, tid)
				ts.Delivered(1)
				cursors[tid].Advance(1)
				o.Lat(tid, OpPoll, start)
			}
		}(tid)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := o.Snapshot()
			if len(s.Ops) != int(NumOps) {
				t.Errorf("snapshot has %d ops, want %d", len(s.Ops), NumOps)
				return
			}
			_ = g.MaxLag()
		}
	}()
	wg.Wait()
	<-done
	s := o.Snapshot()
	pub, _ := s.Op("publish")
	if pub.Count != threads*3000 {
		t.Fatalf("publish count = %d, want %d", pub.Count, threads*3000)
	}
	if lag := g.MaxLag(); lag != 0 {
		t.Fatalf("quiescent lag = %d, want 0", lag)
	}
}

// TestRecordPathAllocFree pins the zero-allocation budget of every
// record-path operation.
func TestRecordPathAllocFree(t *testing.T) {
	o := New(Config{Threads: 1, TraceEvents: 32})
	ts := o.RegisterTopic("t", 2)
	g := o.RegisterGroup()
	c := g.AddShard(ts, 0)
	for name, fn := range map[string]func(){
		"Lat":       func() { o.Lat(0, OpPublish, Now()) },
		"Event":     func() { o.Event(0, OpPoll, ts, 1) },
		"Published": func() { ts.Published(1, 1) },
		"Delivered": func() { ts.Delivered(1) },
		"Advance":   func() { c.Advance(1) },
		"Record":    func() { o.hists[OpAck][0].Record(123) },
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}
