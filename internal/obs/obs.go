// Package obs is the broker's observability layer: per-thread
// latency histograms, topic/group gauges, and a lock-free event
// trace, all designed so that measurement never perturbs what the
// paper's cost model measures.
//
// The discipline mirrors pmem.Stats: state is sharded per thread (or
// held in uncontended atomics), the record path takes no locks,
// performs no allocations, and — critically for this repository —
// issues no persist instructions: an enabled observer adds zero
// fences, zero NTStores and zero flushes to any broker operation
// (pinned by internal/broker's TestObserverZeroPersistCost). With no
// observer configured the cost is one predictable nil-check branch
// per instrumentation site.
//
// Three kinds of state:
//
//   - Histograms (hist.go): per-thread, allocation-free, log-bucketed
//     latency histograms per operation kind, with mergeable snapshots
//     and Quantile estimation — the tail-latency measurement the
//     ROADMAP's percentile program starts from.
//   - Gauges: TopicStats counts published/delivered/acked/redelivered
//     messages per topic, plus a per-shard published head and
//     consumption frontier; GroupStats exposes the shards a consumer
//     group owns, so Lag = published head − frontier is readable at
//     any time and reads the shard's actual remaining backlog even
//     for a group that bound the shard mid-life. Lag and imbalance
//     are the autoscaling signal the elastic-groups ROADMAP item
//     consumes.
//   - Trace (trace.go): fixed-size per-thread rings of small fixed
//     event records (op kind, tid, topic, shard, timestamp), dumped
//     on demand or on crash-fuzz audit failure for post-mortem
//     ordering evidence.
//
// Export (export.go): Snapshot() returns a stable struct renderable
// as JSON or Prometheus text format (see cmd/brokerstat).
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
)

// Op is a broker operation kind, the unit of latency attribution.
type Op uint8

const (
	OpPublish Op = iota
	OpPoll
	OpAck
	OpAdmin
	// OpScan covers membership-protocol events: expiry scans,
	// reassignments, and fenced (refused) member ops.
	OpScan
	NumOps
)

func (op Op) String() string {
	switch op {
	case OpPublish:
		return "publish"
	case OpPoll:
		return "poll"
	case OpAck:
		return "ack"
	case OpAdmin:
		return "admin"
	case OpScan:
		return "scan"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// epoch anchors Now; only differences of Now values are meaningful.
var epoch = time.Now()

// Now returns a monotonic timestamp in nanoseconds. It allocates
// nothing and takes no locks, so it is safe on the record path.
func Now() int64 { return int64(time.Since(epoch)) }

// Config parameterizes an Observer.
type Config struct {
	// Threads bounds the thread ids that may record into the observer;
	// it must cover every tid the observed broker admits.
	Threads int
	// TraceEvents, when positive, enables the event trace with that
	// many record slots per thread (rounded up to a power of two).
	// Zero disables tracing.
	TraceEvents int
}

// Observer is one broker's observability state. Record methods are
// safe for concurrent use under the usual one-goroutine-per-tid rule;
// registration and snapshotting take an internal mutex and may run
// concurrently with recording.
type Observer struct {
	threads int
	hists   [NumOps][]Histogram
	trace   *Trace

	mu     sync.Mutex
	topics []*TopicStats
	groups []*GroupStats

	// heapStats, when set (the broker wires it at Open), feeds the
	// per-heap persist counters into snapshots. Exact while the heap
	// set is quiescent, like pmem's own stats.
	heapStats func() []pmem.Stats
}

// New creates an observer. It panics on a non-positive thread bound,
// mirroring pmem.New's construction convention.
func New(cfg Config) *Observer {
	if cfg.Threads <= 0 {
		panic("obs: Config.Threads must be positive")
	}
	o := &Observer{threads: cfg.Threads}
	for op := range o.hists {
		o.hists[op] = make([]Histogram, cfg.Threads)
	}
	if cfg.TraceEvents > 0 {
		o.trace = newTrace(cfg.Threads, cfg.TraceEvents)
	}
	return o
}

// Threads reports the configured thread-id bound.
func (o *Observer) Threads() int { return o.threads }

// Lat records one completed operation of the given kind: the latency
// is Now() − startNs, recorded into tid's own histogram. No locks, no
// allocations, no persist instructions.
func (o *Observer) Lat(tid int, op Op, startNs int64) {
	o.hists[op][tid].Record(Now() - startNs)
}

// Event appends one record to tid's trace ring (a no-op when tracing
// is disabled). topic may be nil and shard negative when the event has
// no shard attribution.
func (o *Observer) Event(tid int, op Op, topic *TopicStats, shard int) {
	if o.trace == nil {
		return
	}
	ti := int32(-1)
	if topic != nil {
		ti = topic.id
	}
	o.trace.record(tid, op, ti, int32(shard))
}

// Trace returns the event trace, nil when disabled.
func (o *Observer) Trace() *Trace { return o.trace }

// OpHist merges the per-thread histograms of one operation kind into
// a single snapshot. Counts recorded concurrently with the merge land
// in this snapshot or the next, never nowhere.
func (o *Observer) OpHist(op Op) HistSnapshot {
	var s HistSnapshot
	for i := range o.hists[op] {
		s.Merge(o.hists[op][i].Snapshot())
	}
	return s
}

// SetHeapStats installs the provider of per-heap persist counters
// included in snapshots; the broker wires the heap set's stats here.
func (o *Observer) SetHeapStats(fn func() []pmem.Stats) {
	o.mu.Lock()
	o.heapStats = fn
	o.mu.Unlock()
}

// TopicStats is one topic's gauge state. Counter methods are atomic
// and may be called from any goroutine.
type TopicStats struct {
	id   int32
	name string

	pubN   atomic.Uint64
	delN   atomic.Uint64
	ackN   atomic.Uint64
	redelN atomic.Uint64

	shardPub []atomic.Uint64
	shardDel []atomic.Uint64
}

// RegisterTopic returns the topic's gauge state, creating it on first
// registration. Re-registering a name (a broker recovered into the
// same observer) returns the existing state so counters span the
// process lifetime; the shard array grows if the topic does.
func (o *Observer) RegisterTopic(name string, shards int) *TopicStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	grow := func(old []atomic.Uint64) []atomic.Uint64 {
		grown := make([]atomic.Uint64, shards)
		for i := range old {
			grown[i].Store(old[i].Load())
		}
		return grown
	}
	for _, t := range o.topics {
		if t.name == name {
			if len(t.shardPub) < shards {
				t.shardPub = grow(t.shardPub)
				t.shardDel = grow(t.shardDel)
			}
			return t
		}
	}
	t := &TopicStats{
		id: int32(len(o.topics)), name: name,
		shardPub: make([]atomic.Uint64, shards),
		shardDel: make([]atomic.Uint64, shards),
	}
	o.topics = append(o.topics, t)
	return t
}

// Name returns the topic name.
func (t *TopicStats) Name() string { return t.name }

// Published counts n messages published to the given shard.
func (t *TopicStats) Published(shard, n int) {
	t.pubN.Add(uint64(n))
	t.shardPub[shard].Add(uint64(n))
}

// Delivered counts n messages handed to the application (first
// deliveries and redeliveries alike).
func (t *TopicStats) Delivered(n int) { t.delN.Add(uint64(n)) }

// Acked counts n messages durably acknowledged through Consumer.Ack.
func (t *TopicStats) Acked(n int) { t.ackN.Add(uint64(n)) }

// Redelivered counts n deliveries that re-served a message (after a
// Nack or a lease takeover).
func (t *TopicStats) Redelivered(n int) { t.redelN.Add(uint64(n)) }

// Counts returns the four message counters.
func (t *TopicStats) Counts() (published, delivered, acked, redelivered uint64) {
	return t.pubN.Load(), t.delN.Load(), t.ackN.Load(), t.redelN.Load()
}

// ShardPublished returns the number of messages published to one
// shard — the published head the lag gauge subtracts a frontier from.
func (t *TopicStats) ShardPublished(shard int) uint64 { return t.shardPub[shard].Load() }

// Depth estimates the messages published but not yet delivered for
// the first time: published − (delivered − redelivered), clamped at
// zero (concurrent reads of independent counters may transiently
// disagree).
func (t *TopicStats) Depth() uint64 {
	pub, del, _, redel := t.Counts()
	first := del - redel
	if pub < first {
		return 0
	}
	return pub - first
}

// GroupStats is one consumer group's gauge state: a consumption
// frontier per owned shard, registered as the group subscribes, plus
// the membership-protocol counters (fenced ops, reassigned and stolen
// shards, expiry scans).
type GroupStats struct {
	name string

	fencedN     atomic.Uint64
	reassignedN atomic.Uint64
	stolenN     atomic.Uint64
	scanN       atomic.Uint64

	mu      sync.Mutex
	cursors []*ShardCursor
}

// RegisterGroup creates gauge state for one consumer group. Groups
// are transient (a recovered broker binds fresh ones), so every call
// creates a new entry, named group-N in registration order.
func (o *Observer) RegisterGroup() *GroupStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	g := &GroupStats{name: fmt.Sprintf("group-%d", len(o.groups))}
	o.groups = append(o.groups, g)
	return g
}

// Name returns the group's registration name.
func (g *GroupStats) Name() string { return g.name }

// AddShard registers one owned shard and returns its frontier cursor.
// Called at group creation and from Group.Subscribe; safe against
// concurrent snapshots.
func (g *GroupStats) AddShard(t *TopicStats, shard int) *ShardCursor {
	c := &ShardCursor{t: t, shard: int32(shard)}
	g.mu.Lock()
	g.cursors = append(g.cursors, c)
	g.mu.Unlock()
	return c
}

// Fenced counts n member ops refused with a stale epoch (ErrFenced).
func (g *GroupStats) Fenced(n int) { g.fencedN.Add(uint64(n)) }

// Reassigned counts n shards dealt off a fenced member by
// Reassign/Scan.
func (g *GroupStats) Reassigned(n int) { g.reassignedN.Add(uint64(n)) }

// Stolen counts n shards claimed one at a time by Consumer.Steal.
func (g *GroupStats) Stolen(n int) { g.stolenN.Add(uint64(n)) }

// Scanned counts n expiry-scanner passes (Group.Scan), expiring or
// not.
func (g *GroupStats) Scanned(n int) { g.scanN.Add(uint64(n)) }

// Membership returns the membership-protocol counters: ops refused
// as fenced, shards reassigned, shards stolen, and scan passes.
func (g *GroupStats) Membership() (fenced, reassigned, stolen, scans uint64) {
	return g.fencedN.Load(), g.reassignedN.Load(), g.stolenN.Load(), g.scanN.Load()
}

// MaxLag returns the largest per-shard lag across the group's shards
// — the scalar form of the autoscaling signal.
func (g *GroupStats) MaxLag() uint64 {
	g.mu.Lock()
	cs := g.cursors
	g.mu.Unlock()
	var max uint64
	for _, c := range cs {
		if l := c.Lag(); l > max {
			max = l
		}
	}
	return max
}

// ShardCursor is one shard's consumption frontier as seen by a group.
// The frontier itself — the count of messages removed from the shard's
// queue by fresh deliveries — lives on the TopicStats, shared across
// group incarnations: consumption is destructive in this broker, so a
// group that binds a shard mid-life (a recovered broker's drain group)
// inherits what previous owners consumed and its lag reads the actual
// remaining backlog, not a re-count of messages long gone.
type ShardCursor struct {
	t     *TopicStats
	shard int32
}

// Advance moves the frontier past n newly consumed messages.
// Redeliveries do not advance it: the frontier counts distinct
// messages, so lag never undercounts a backlog that is merely being
// re-served.
func (c *ShardCursor) Advance(n int) { c.t.shardDel[c.shard].Add(uint64(n)) }

// Frontier returns the shard's consumption frontier: the number of
// messages delivered out of the shard for the first time.
func (c *ShardCursor) Frontier() uint64 { return c.t.shardDel[c.shard].Load() }

// Lag returns the shard's published head minus the consumption
// frontier, clamped at zero (the two counters are read independently):
// the number of published messages no group has consumed yet.
func (c *ShardCursor) Lag() uint64 {
	pub := c.t.shardPub[c.shard].Load()
	f := c.t.shardDel[c.shard].Load()
	if pub < f {
		return 0
	}
	return pub - f
}
