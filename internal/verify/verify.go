// Package verify provides durable-linearizability testing machinery
// for the queues: exhaustive single-thread crash-point enumeration,
// randomized concurrent crash fuzzing with history checking, and
// crash-during-recovery injection.
//
// The checks encode the obligations of durable linearizability
// (Izraelevitz et al.) for FIFO queues:
//
//  1. No value is ever delivered twice (pre-crash dequeues and the
//     post-recovery drain combined).
//  2. No phantom values: everything delivered was (at least) the
//     argument of a started enqueue.
//  3. No completed enqueue is lost, except that a value may have been
//     consumed by a dequeue that was pending at a crash (a pending
//     operation may be linearized); the number of such silently
//     vanished values is bounded by the number of pending dequeues.
//  4. Per-enqueuer FIFO: among one thread's completed enqueues, the
//     removed values form a prefix of its enqueue order, and the
//     surviving values drain in enqueue order.
package verify

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/pmem"
	"repro/internal/queues"
)

// ScriptOp is one step of a deterministic single-thread script.
type ScriptOp struct {
	Enq bool
	V   uint64
}

// Script builds a deterministic mixed script of n operations with
// unique values.
func Script(n int, seed int64) []ScriptOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]ScriptOp, n)
	v := uint64(1)
	for i := range ops {
		if rng.Intn(3) < 2 {
			ops[i] = ScriptOp{Enq: true, V: v}
			v++
		} else {
			ops[i] = ScriptOp{Enq: false}
		}
	}
	return ops
}

func crashHeap() *pmem.Heap {
	return pmem.New(pmem.Config{Bytes: 4 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
}

// CountScriptAccesses runs the script crash-free and reports how many
// crash-checked accesses it performs (the number of distinct crash
// points ExhaustiveCrashPoints can enumerate).
func CountScriptAccesses(in queues.Info, script []ScriptOp) int64 {
	h := crashHeap()
	q := in.New(h, 1)
	h.ScheduleCrashAtAccess(1 << 60)
	for _, op := range script {
		if op.Enq {
			q.Enqueue(0, op.V)
		} else {
			q.Dequeue(0)
		}
	}
	return h.AccessCount()
}

// ExhaustiveResult summarizes an ExhaustiveCrashPoints run.
type ExhaustiveResult struct {
	Points  int // crash points exercised
	Crashed int // runs in which the crash actually fired
}

// ExhaustiveCrashPoints crashes a single-thread script at every
// stride-th simulated memory access, with several randomized eviction
// seeds per point, and checks that recovery yields exactly the state
// of the completed prefix, with the single pending operation
// optionally applied. It returns a summary or an error describing the
// first violation.
func ExhaustiveCrashPoints(in queues.Info, script []ScriptOp, stride int64, seeds int64) (ExhaustiveResult, error) {
	total := CountScriptAccesses(in, script)
	res := ExhaustiveResult{}
	for k := int64(1); k <= total; k += stride {
		for seed := int64(0); seed < seeds; seed++ {
			res.Points++
			crashed, err := runOneCrashPoint(in, script, k, seed)
			if err != nil {
				return res, fmt.Errorf("crash point %d seed %d: %w", k, seed, err)
			}
			if crashed {
				res.Crashed++
			}
		}
	}
	return res, nil
}

func runOneCrashPoint(in queues.Info, script []ScriptOp, k, seed int64) (bool, error) {
	h := crashHeap()
	q := in.New(h, 1)
	h.ScheduleCrashAtAccess(k)

	var model []uint64 // state after completed ops
	var pendingEnq *uint64
	pendingDeq := false
	crashed := false
	for _, op := range script {
		op := op
		c := pmem.Protect(func() {
			if op.Enq {
				q.Enqueue(0, op.V)
			} else {
				q.Dequeue(0)
			}
		})
		if c {
			crashed = true
			if op.Enq {
				pendingEnq = &op.V
			} else {
				pendingDeq = true
			}
			break
		}
		if op.Enq {
			model = append(model, op.V)
		} else if len(model) > 0 {
			model = model[1:]
		}
	}
	if !crashed {
		h.CrashNow() // quiescent crash: only state A is allowed
	}
	h.FinalizeCrash(rand.New(rand.NewSource(seed)))
	h.Restart()

	rq := in.Recover(h, 1)
	got := drain(rq, 0)

	// Allowed states: the completed prefix (A), or A with the pending
	// operation applied (B).
	if eq(got, model) {
		check := postRecoverySanity(rq)
		return crashed, check
	}
	if crashed {
		b := append([]uint64(nil), model...)
		if pendingEnq != nil {
			b = append(b, *pendingEnq)
		} else if pendingDeq && len(b) > 0 {
			b = b[1:]
		}
		if eq(got, b) {
			return crashed, postRecoverySanity(rq)
		}
	}
	return crashed, fmt.Errorf("recovered %v; allowed completed-state %v (pendingEnq=%v pendingDeq=%v)",
		got, model, pendingEnq != nil, pendingDeq)
}

// postRecoverySanity verifies a recovered queue remains usable.
func postRecoverySanity(q queues.Queue) error {
	q.Enqueue(0, 0xdead)
	v, ok := q.Dequeue(0)
	if !ok || v != 0xdead {
		return fmt.Errorf("recovered queue unusable: got (%d,%v)", v, ok)
	}
	return nil
}

func drain(q queues.Queue, tid int) []uint64 {
	var out []uint64
	for {
		v, ok := q.Dequeue(tid)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func eq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzConfig parameterizes ConcurrentCrashFuzz.
type FuzzConfig struct {
	Threads      int
	OpsPerThread int
	Rounds       int
	Seed         int64
	// RecoveryCrashes injects this many additional crashes during
	// each recovery before letting it complete.
	RecoveryCrashes int
}

// threadLog is one worker's history.
type threadLog struct {
	enqDone    []uint64
	deqDone    []uint64
	pendingEnq *uint64
	pendingDeq bool
}

// ConcurrentCrashFuzz runs concurrent workloads that are cut by a
// crash at a random access, recovers (optionally crashing again during
// recovery), drains, and applies the durable-linearizability checks.
func ConcurrentCrashFuzz(in queues.Info, cfg FuzzConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	for round := 0; round < cfg.Rounds; round++ {
		if err := fuzzRound(in, cfg, rng, round); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
	}
	return nil
}

func fuzzRound(in queues.Info, cfg FuzzConfig, rng *rand.Rand, round int) error {
	h := pmem.New(pmem.Config{Bytes: 32 << 20, Mode: pmem.ModeCrash, MaxThreads: cfg.Threads + 1})
	q := in.New(h, cfg.Threads)

	// Arm the crash somewhere inside the expected access volume.
	approx := int64(cfg.Threads*cfg.OpsPerThread) * 15
	h.ScheduleCrashAtAccess(1 + rng.Int63n(approx))

	logs := make([]threadLog, cfg.Threads)
	var wg sync.WaitGroup
	for tid := 0; tid < cfg.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(int64(round)<<16 | int64(tid)))
			lg := &logs[tid]
			seq := uint64(1)
			for i := 0; i < cfg.OpsPerThread; i++ {
				if lrng.Intn(2) == 0 {
					v := uint64(tid+1)<<40 | seq
					seq++
					if pmem.Protect(func() { q.Enqueue(tid, v) }) {
						lg.pendingEnq = &v
						return
					}
					lg.enqDone = append(lg.enqDone, v)
				} else {
					var v uint64
					var ok bool
					if pmem.Protect(func() { v, ok = q.Dequeue(tid) }) {
						lg.pendingDeq = true
						return
					}
					if ok {
						lg.deqDone = append(lg.deqDone, v)
					}
				}
			}
		}(tid)
	}
	wg.Wait()
	if !h.Crashed() {
		h.CrashNow()
	}
	h.FinalizeCrash(rng)
	h.Restart()

	// Recover, optionally crashing during recovery itself.
	for rc := 0; rc < cfg.RecoveryCrashes; rc++ {
		h.ScheduleCrashAtAccess(1 + rng.Int63n(200))
		if !pmem.Protect(func() { in.Recover(h, cfg.Threads) }) {
			break // recovery completed before the injected point
		}
		if !h.Crashed() {
			h.CrashNow()
		}
		h.FinalizeCrash(rng)
		h.Restart()
	}
	h.ScheduleCrashAtAccess(0)
	rq := in.Recover(h, cfg.Threads)
	drained := drain(rq, 0)
	return CheckHistory(logs, drained)
}

// CheckHistory applies the durable-linearizability checks to a set of
// per-thread histories and the post-recovery drain.
func CheckHistory(logs []threadLog, drained []uint64) error {
	started := map[uint64]bool{}
	for _, lg := range logs {
		for _, v := range lg.enqDone {
			started[v] = true
		}
		if lg.pendingEnq != nil {
			started[*lg.pendingEnq] = true
		}
	}
	delivered := map[uint64]bool{}
	deliver := func(v uint64, where string) error {
		if !started[v] {
			return fmt.Errorf("phantom value %#x in %s", v, where)
		}
		if delivered[v] {
			return fmt.Errorf("value %#x delivered twice (%s)", v, where)
		}
		delivered[v] = true
		return nil
	}
	for _, lg := range logs {
		for _, v := range lg.deqDone {
			if err := deliver(v, "pre-crash dequeue"); err != nil {
				return err
			}
		}
	}
	inDrain := map[uint64]int{}
	for i, v := range drained {
		if err := deliver(v, "drain"); err != nil {
			return err
		}
		inDrain[v] = i
	}

	// Rule 3: completed enqueues may vanish only into pending
	// dequeues.
	pendingDeqs := 0
	for _, lg := range logs {
		if lg.pendingDeq {
			pendingDeqs++
		}
	}
	missing := 0
	for _, lg := range logs {
		for _, v := range lg.enqDone {
			if !delivered[v] {
				missing++
			}
		}
	}
	if missing > pendingDeqs {
		return fmt.Errorf("%d completed enqueues missing but only %d dequeues were pending", missing, pendingDeqs)
	}

	// Rule 4: per-enqueuer prefix/order. A thread's completed enqueue
	// values must be removed (delivered pre-crash or vanished) in a
	// prefix, and the surviving ones must appear in the drain in
	// order. The pending enqueue, if it survived, must drain last.
	for t, lg := range logs {
		seq := append([]uint64(nil), lg.enqDone...)
		if lg.pendingEnq != nil {
			seq = append(seq, *lg.pendingEnq)
		}
		lastDrainPos := -1
		surviving := false
		for i, v := range seq {
			pos, inQ := inDrain[v]
			if inQ {
				surviving = true
				if pos <= lastDrainPos {
					return fmt.Errorf("thread %d: value %#x drains out of order", t, v)
				}
				lastDrainPos = pos
				continue
			}
			// Removed. If an earlier value of this thread survived,
			// FIFO is broken — unless this is the pending enqueue,
			// which is allowed to have never been linearized.
			if surviving && i < len(lg.enqDone) {
				return fmt.Errorf("thread %d: completed enqueue %#x removed after a later value survived", t, v)
			}
		}
	}
	return nil
}
