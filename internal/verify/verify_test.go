package verify

import (
	"testing"

	"repro/internal/onll"
	"repro/internal/ptm"
	"repro/internal/queues"
)

func coreQueues(t *testing.T) []queues.Info {
	t.Helper()
	var out []queues.Info
	for _, name := range []string{"unlinked", "linked", "opt-unlinked", "opt-linked"} {
		in, ok := queues.Lookup(name)
		if !ok {
			t.Fatalf("missing queue %s", name)
		}
		out = append(out, in)
	}
	return out
}

func otherDurable(t *testing.T) []queues.Info {
	t.Helper()
	var out []queues.Info
	for _, in := range queues.All() {
		switch in.Name {
		case "unlinked", "linked", "opt-unlinked", "opt-linked", "msq":
			continue
		}
		out = append(out, in)
	}
	out = append(out, ptm.All()...)
	out = append(out, onll.Info())
	return out
}

// TestExhaustiveCrashPointsCore enumerates every memory-access crash
// point of a mixed script for the paper's four queues, with two
// eviction randomizations each.
func TestExhaustiveCrashPointsCore(t *testing.T) {
	script := Script(12, 1)
	stride := int64(1)
	if testing.Short() {
		stride = 5
	}
	for _, in := range coreQueues(t) {
		t.Run(in.Name, func(t *testing.T) {
			res, err := ExhaustiveCrashPoints(in, script, stride, 2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Crashed == 0 {
				t.Fatal("no crash point actually fired")
			}
			t.Logf("%d crash points exercised (%d fired)", res.Points, res.Crashed)
		})
	}
}

// TestExhaustiveCrashPointsOthers covers the baselines, ablations,
// PTM queues and ONLL with a coarser stride.
func TestExhaustiveCrashPointsOthers(t *testing.T) {
	script := Script(12, 2)
	stride := int64(3)
	if testing.Short() {
		stride = 11
	}
	for _, in := range otherDurable(t) {
		t.Run(in.Name, func(t *testing.T) {
			res, err := ExhaustiveCrashPoints(in, script, stride, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Crashed == 0 {
				t.Fatal("no crash point actually fired")
			}
		})
	}
}

// TestExhaustiveCrashPointsDeqHeavy uses a dequeue-heavy script so
// head persistence and node recycling are crossed by crashes.
func TestExhaustiveCrashPointsDeqHeavy(t *testing.T) {
	script := []ScriptOp{
		{Enq: true, V: 1}, {Enq: true, V: 2}, {Enq: true, V: 3}, {Enq: true, V: 4},
		{}, {}, {}, {}, {}, // dequeues incl. one failing
		{Enq: true, V: 5}, {}, {},
	}
	stride := int64(2)
	if testing.Short() {
		stride = 7
	}
	for _, in := range coreQueues(t) {
		t.Run(in.Name, func(t *testing.T) {
			if _, err := ExhaustiveCrashPoints(in, script, stride, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentCrashFuzz cuts concurrent executions with random
// crashes and checks durable linearizability of what survives.
func TestConcurrentCrashFuzz(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	all := append(coreQueues(t), otherDurable(t)...)
	for _, in := range all {
		t.Run(in.Name, func(t *testing.T) {
			err := ConcurrentCrashFuzz(in, FuzzConfig{
				Threads: 3, OpsPerThread: 400, Rounds: rounds, Seed: 1234,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentCrashFuzzWithRecoveryCrashes additionally crashes the
// recovery procedure itself before letting it complete.
func TestConcurrentCrashFuzzWithRecoveryCrashes(t *testing.T) {
	rounds := 4
	if testing.Short() {
		rounds = 1
	}
	for _, in := range coreQueues(t) {
		t.Run(in.Name, func(t *testing.T) {
			err := ConcurrentCrashFuzz(in, FuzzConfig{
				Threads: 3, OpsPerThread: 300, Rounds: rounds, Seed: 77,
				RecoveryCrashes: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// ---- negative tests: the checker must catch fabricated violations ----

func u(v uint64) *uint64 { return &v }

func TestCheckHistoryCatchesDuplicates(t *testing.T) {
	logs := []threadLog{{enqDone: []uint64{1, 2}, deqDone: []uint64{1}}}
	if err := CheckHistory(logs, []uint64{1, 2}); err == nil {
		t.Fatal("duplicate delivery not detected")
	}
}

func TestCheckHistoryCatchesPhantom(t *testing.T) {
	logs := []threadLog{{enqDone: []uint64{1}}}
	if err := CheckHistory(logs, []uint64{1, 99}); err == nil {
		t.Fatal("phantom value not detected")
	}
}

func TestCheckHistoryCatchesLoss(t *testing.T) {
	logs := []threadLog{{enqDone: []uint64{1, 2, 3}}}
	if err := CheckHistory(logs, []uint64{1, 3}); err == nil {
		t.Fatal("lost completed enqueue not detected")
	}
}

func TestCheckHistoryAllowsPendingDequeueLoss(t *testing.T) {
	logs := []threadLog{
		{enqDone: []uint64{1, 2, 3}},
		{pendingDeq: true},
	}
	if err := CheckHistory(logs, []uint64{2, 3}); err != nil {
		t.Fatalf("prefix loss with a pending dequeue should be legal: %v", err)
	}
}

func TestCheckHistoryCatchesFIFOViolation(t *testing.T) {
	// Value 2 removed while the earlier value 1 survived.
	logs := []threadLog{
		{enqDone: []uint64{1, 2}, deqDone: []uint64{2}},
	}
	if err := CheckHistory(logs, []uint64{1}); err == nil {
		t.Fatal("FIFO violation not detected")
	}
}

func TestCheckHistoryCatchesDrainOrderViolation(t *testing.T) {
	logs := []threadLog{{enqDone: []uint64{1, 2}}}
	if err := CheckHistory(logs, []uint64{2, 1}); err == nil {
		t.Fatal("drain order violation not detected")
	}
}

func TestCheckHistoryAllowsDroppedPendingEnqueue(t *testing.T) {
	logs := []threadLog{{enqDone: []uint64{1}, pendingEnq: u(2)}}
	if err := CheckHistory(logs, []uint64{1}); err != nil {
		t.Fatalf("dropped pending enqueue should be legal: %v", err)
	}
}

func TestCheckHistoryAllowsAppliedPendingEnqueue(t *testing.T) {
	logs := []threadLog{{enqDone: []uint64{1}, pendingEnq: u(2)}}
	if err := CheckHistory(logs, []uint64{1, 2}); err != nil {
		t.Fatalf("applied pending enqueue should be legal: %v", err)
	}
}
