// Package qtest is a reusable conformance suite for Queue
// implementations: sequential semantics against a model, concurrent
// no-duplication/no-loss/FIFO accounting, and quiescent
// crash-recovery exactness for durable queues.
package qtest

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pmem"
	"repro/internal/queues"
)

// HeapBytes is the heap size used by the suite.
const HeapBytes = 64 << 20

// Drain dequeues until empty and returns the items in order.
func Drain(q queues.Queue, tid int) []uint64 {
	var out []uint64
	for {
		v, ok := q.Dequeue(tid)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// RunSemantics checks single-threaded behaviour against a slice model.
func RunSemantics(t *testing.T, in queues.Info) {
	t.Helper()
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := pmem.New(pmem.Config{Bytes: HeapBytes, MaxThreads: 2})
		q := in.New(h, 1)
		var model []uint64
		next := uint64(1)
		for op := 0; op < 2000; op++ {
			if rng.Intn(2) == 0 {
				q.Enqueue(0, next)
				model = append(model, next)
				next++
			} else {
				v, ok := q.Dequeue(0)
				switch {
				case len(model) == 0 && ok:
					t.Fatalf("seed %d: dequeue on empty returned %d", seed, v)
				case len(model) > 0 && (!ok || v != model[0]):
					t.Fatalf("seed %d: got (%d,%v), want (%d,true)", seed, v, ok, model[0])
				case len(model) > 0:
					model = model[1:]
				}
			}
		}
		got := Drain(q, 0)
		if len(got) != len(model) {
			t.Fatalf("seed %d: drained %d, want %d", seed, len(got), len(model))
		}
		for i := range got {
			if got[i] != model[i] {
				t.Fatalf("seed %d: drain[%d]=%d want %d", seed, i, got[i], model[i])
			}
		}
	}
}

// deqEvent records one successful dequeue with real-time stamps taken
// from a shared atomic clock: begin before the operation's invocation
// and end after its response.
type deqEvent struct {
	begin, end uint64
	value      uint64
}

// RunConcurrent checks no-duplication, no-loss, per-enqueuer FIFO and
// real-time dequeue ordering under concurrency.
func RunConcurrent(t *testing.T, in queues.Info, threads, opsPer int) {
	t.Helper()
	h := pmem.New(pmem.Config{Bytes: HeapBytes, MaxThreads: threads + 1})
	q := in.New(h, threads)
	enqueued := make([][]uint64, threads)
	dequeued := make([][]deqEvent, threads)
	var clock atomic.Uint64
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid) + 99))
			seq := uint64(1)
			for i := 0; i < opsPer; i++ {
				if rng.Intn(2) == 0 {
					v := uint64(tid)<<32 | seq
					seq++
					q.Enqueue(tid, v)
					enqueued[tid] = append(enqueued[tid], v)
				} else {
					begin := clock.Add(1)
					if v, ok := q.Dequeue(tid); ok {
						dequeued[tid] = append(dequeued[tid], deqEvent{begin: begin, end: clock.Add(1), value: v})
					}
				}
			}
		}(tid)
	}
	wg.Wait()
	remaining := Drain(q, 0)

	all := map[uint64]bool{}
	for _, es := range enqueued {
		for _, v := range es {
			all[v] = true
		}
	}
	seen := map[uint64]bool{}
	check := func(v uint64) {
		if !all[v] {
			t.Fatalf("phantom value %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	for _, ds := range dequeued {
		for _, d := range ds {
			check(d.value)
		}
	}
	lastSeq := map[uint64]uint64{}
	for _, v := range remaining {
		check(v)
		tid, seq := v>>32, v&0xffffffff
		if seq <= lastSeq[tid] {
			t.Fatalf("FIFO violation for enqueuer %d: seq %d after %d", tid, seq, lastSeq[tid])
		}
		lastSeq[tid] = seq
	}
	if len(seen) != len(all) {
		t.Fatalf("lost values: %d enqueued, %d accounted", len(all), len(seen))
	}
	checkRealTimeOrder(t, dequeued)
}

// checkRealTimeOrder verifies a linearizability consequence that the
// drain checks cannot see: if two completed dequeues returned values
// of the same enqueuer and one finished strictly before the other
// began, the earlier dequeue must have returned the earlier-enqueued
// value (same-thread enqueues are real-time ordered, and FIFO dequeues
// respect enqueue linearization order).
func checkRealTimeOrder(t *testing.T, dequeued [][]deqEvent) {
	t.Helper()
	byEnq := map[uint64][]deqEvent{}
	for _, ds := range dequeued {
		for _, d := range ds {
			byEnq[d.value>>32] = append(byEnq[d.value>>32], d)
		}
	}
	for enq, evs := range byEnq {
		byEnd := append([]deqEvent(nil), evs...)
		sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].end < byEnd[j].end })
		byBegin := append([]deqEvent(nil), evs...)
		sort.Slice(byBegin, func(i, j int) bool { return byBegin[i].begin < byBegin[j].begin })
		i := 0
		var maxSeqEnded uint64
		for _, d := range byBegin {
			for i < len(byEnd) && byEnd[i].end < d.begin {
				if s := byEnd[i].value & 0xffffffff; s > maxSeqEnded {
					maxSeqEnded = s
				}
				i++
			}
			if s := d.value & 0xffffffff; maxSeqEnded > s {
				t.Fatalf("real-time order violation for enqueuer %d: a dequeue of seq <= %d began after a dequeue of seq %d completed", enq, s, maxSeqEnded)
			}
		}
	}
}

// RunCrashRecovery drives a durable queue through crash/recover
// cycles at quiescent points and demands exact state reconstruction.
func RunCrashRecovery(t *testing.T, in queues.Info, cycles int) {
	t.Helper()
	if in.Recover == nil {
		t.Fatal("queue is not durable")
	}
	h := pmem.New(pmem.Config{Bytes: HeapBytes, Mode: pmem.ModeCrash, MaxThreads: 3})
	q := in.New(h, 2)
	var model []uint64
	next := uint64(1)
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < cycles; c++ {
		for op := 0; op < 300; op++ {
			if rng.Intn(3) < 2 {
				q.Enqueue(op%2, next)
				model = append(model, next)
				next++
			} else if _, ok := q.Dequeue(op % 2); ok {
				model = model[1:]
			}
		}
		h.CrashNow()
		h.FinalizeCrash(rand.New(rand.NewSource(int64(c))))
		h.Restart()
		q = in.Recover(h, 2)
	}
	got := Drain(q, 0)
	if len(got) != len(model) {
		t.Fatalf("drained %d items, want %d", len(got), len(model))
	}
	for i := range got {
		if got[i] != model[i] {
			t.Fatalf("drain[%d]=%d want %d", i, got[i], model[i])
		}
	}
}
