package broker

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

// twoTopics is the reference deployment used across the tests:
// 2 topics × 4 shards, one fixed-width and one variable-payload.
func twoTopics() []TopicConfig {
	return []TopicConfig{
		{Name: "events", Shards: 4},                // fixed 8-byte payloads
		{Name: "jobs", Shards: 4, MaxPayload: 100}, // variable payloads
	}
}

// blobPayload embeds id in a deterministic variable-length payload so
// the audit can both identify and integrity-check delivered bytes.
func blobPayload(id uint64) []byte {
	n := 9 + int(id%80)
	p := make([]byte, n)
	copy(p, U64(id))
	for i := 8; i < n; i++ {
		p[i] = byte(id>>(8*uint(i%8)) ^ uint64(i))
	}
	return p
}

func TestPublishConsumeMultiTopic(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 4})
	b, err := New(h, Config{Topics: twoTopics(), Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	events, jobs := b.Topic("events"), b.Topic("jobs")
	if events == nil || jobs == nil || b.Topic("nope") != nil {
		t.Fatal("topic lookup broken")
	}
	const n = 400
	for i := uint64(0); i < n; i++ {
		events.Publish(0, U64(i))
		jobs.PublishKey(1, U64(i%7), blobPayload(i))
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The two members partition the 8 shards without overlap.
	owned := map[ShardRef]bool{}
	for i := 0; i < g.Size(); i++ {
		for _, r := range g.Consumer(i).Assigned() {
			if owned[r] {
				t.Fatalf("shard %v assigned twice", r)
			}
			owned[r] = true
		}
	}
	if len(owned) != 8 {
		t.Fatalf("assigned %d shards, want 8", len(owned))
	}
	gotEvents := map[uint64]bool{}
	lastByKeyShard := map[string]uint64{}
	total := 0
	for i := 0; i < g.Size(); i++ {
		c := g.Consumer(i)
		for {
			m, ok := c.Poll(i + 1)
			if !ok {
				break
			}
			total++
			id := AsU64(m.Payload[:8])
			switch m.Topic {
			case "events":
				if gotEvents[id] {
					t.Fatalf("event %d delivered twice", id)
				}
				gotEvents[id] = true
			case "jobs":
				if !bytes.Equal(m.Payload, blobPayload(id)) {
					t.Fatalf("job %d payload corrupted", id)
				}
				// PublishKey ordering: per key, ids ascend.
				k := fmt.Sprintf("%d/%d", id%7, m.Shard)
				if last, seen := lastByKeyShard[k]; seen && id <= last {
					t.Fatalf("key %d out of order: %d after %d", id%7, id, last)
				}
				lastByKeyShard[k] = id
			}
		}
	}
	if total != 2*n || len(gotEvents) != n {
		t.Fatalf("delivered %d messages (%d events), want %d (%d)", total, len(gotEvents), 2*n, n)
	}
}

func TestCatalogRecoverRoundTrip(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b, err := New(h, Config{Topics: twoTopics(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(h, Config{Topics: twoTopics(), Threads: 2}); err == nil {
		t.Fatal("second New on the same window should fail")
	}
	b.Topic("events").Publish(0, U64(42))
	b.Topic("jobs").Publish(0, blobPayload(7))
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(2)))
	h.Restart()
	r, err := Recover(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range twoTopics() {
		got := r.Topics()[i]
		if got.Name() != tc.Name || got.Shards() != tc.Shards {
			t.Fatalf("recovered topic %d = %s/%d, want %s/%d",
				i, got.Name(), got.Shards(), tc.Name, tc.Shards)
		}
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 42 {
		t.Fatalf("recovered event = %v,%v", p, ok)
	}
	found := false
	for s := 0; s < r.Topic("jobs").Shards(); s++ {
		if p, ok := r.Topic("jobs").DequeueShard(0, s); ok {
			if !bytes.Equal(p, blobPayload(7)) {
				t.Fatal("recovered job payload corrupted")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("acknowledged job lost across crash")
	}
}

func TestRecoverThreadBound(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b, err := New(h, Config{Topics: twoTopics(), Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Topic("events").Publish(2, U64(9))
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(4)))
	h.Restart()
	// A mismatched bound would silently mis-scan the per-thread
	// head-index regions; it must be rejected instead.
	if _, err := Recover(h, 2); err == nil {
		t.Fatal("Recover with a mismatched thread bound should fail")
	}
	// 0 adopts the recorded bound.
	r, err := Recover(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads() != 3 {
		t.Fatalf("adopted thread bound = %d, want 3", r.Threads())
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 9 {
		t.Fatalf("recovered event = %v,%v", p, ok)
	}
}

func TestRecoverWithoutBroker(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	if _, err := Recover(h, 1); err == nil {
		t.Fatal("Recover on an empty heap should fail")
	}
}

// TestBrokerCrashFuzz is the whole-broker durability audit: concurrent
// producers (mixing per-message, batch and keyed publishes) and a
// consumer group run until a crash at a random memory access; the
// broker is recovered from its catalog alone and audited — every
// acknowledged publish across all topics and shards is delivered or
// recovered exactly once, and per-shard per-producer FIFO holds.
func TestBrokerCrashFuzz(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { brokerCrashRound(t, seed) })
	}
}

func brokerCrashRound(t *testing.T, seed int64) {
	const (
		producers   = 3
		consumers   = 2
		perProducer = 3000
		threads     = producers + consumers
	)
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := New(h, Config{Topics: twoTopics(), Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, consumers)
	if err != nil {
		t.Fatal(err)
	}
	crashRng := rand.New(rand.NewSource(seed))
	h.ScheduleCrashAtAccess(int64(crashRng.Intn(1_000_000)) + 100_000)

	acked := make([][]uint64, producers)
	delivered := make([]map[uint64]ShardRef, consumers)
	redelivered := make([]int, consumers) // same id polled twice by one consumer
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			rng := rand.New(rand.NewSource(seed*997 + int64(p)))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			// Each iteration publishes ids in increasing order before
			// minting the next, so every shard sees any one producer's
			// messages with ascending ids — the FIFO the audit checks.
			for m := uint64(1); m <= perProducer; {
				id := uint64(p+1)<<32 | m
				switch rng.Intn(4) {
				case 0: // fixed-topic publish
					if pmem.Protect(func() { events.Publish(p, U64(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					m++
				case 1: // keyed publish
					if pmem.Protect(func() { jobs.PublishKey(p, U64(id%5), blobPayload(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					m++
				default: // batch of consecutive ids, acked as a whole
					var batch [][]byte
					var ids []uint64
					for len(batch) < 8 && m <= perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, blobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return
					}
					acked[p] = append(acked[p], ids...)
				}
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		delivered[c] = map[uint64]ShardRef{}
		go func(c int) {
			defer wg.Done()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				var m Message
				var ok bool
				if pmem.Protect(func() { m, ok = cons.Poll(tid) }) {
					return // crash mid-poll
				}
				if ok {
					id := AsU64(m.Payload[:8])
					if _, dup := delivered[c][id]; dup {
						redelivered[c]++
					}
					delivered[c][id] = ShardRef{Topic: m.Topic, Shard: m.Shard}
					idle = false
					continue
				}
				select {
				case <-done:
					if idle {
						return // producers finished and two empty sweeps
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	if !h.Crashed() {
		h.CrashNow() // traffic finished first; crash at quiescence
	}
	h.FinalizeCrash(rand.New(rand.NewSource(seed * 31)))
	h.Restart()

	r, err := Recover(h, threads)
	if err != nil {
		t.Fatal(err)
	}

	// Drain the recovered backlog per shard, checking per-producer
	// FIFO and collecting ids.
	seen := map[uint64]string{}
	for c := range delivered {
		if redelivered[c] > 0 {
			t.Fatalf("consumer %d saw %d re-deliveries", c, redelivered[c])
		}
		for id := range delivered[c] {
			if _, dup := seen[id]; dup {
				t.Fatalf("message %#x delivered twice", id)
			}
			seen[id] = "delivered"
		}
	}
	recoveredCount := 0
	for _, topic := range r.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			lastPerProducer := map[uint64]uint64{}
			for {
				p, ok := topic.DequeueShard(0, s)
				if !ok {
					break
				}
				id := AsU64(p[:8])
				if topic.Name() == "jobs" && !bytes.Equal(p, blobPayload(id)) {
					t.Fatalf("recovered payload for %#x corrupted", id)
				}
				if _, dup := seen[id]; dup {
					t.Fatalf("message %#x both %s and recovered", id, seen[id])
				}
				seen[id] = "recovered"
				prod, m := id>>32, id&0xffffffff
				if last := lastPerProducer[prod]; m <= last {
					t.Fatalf("shard %s/%d: producer %d out of order (%d after %d)",
						topic.Name(), s, prod, m, last)
				}
				lastPerProducer[prod] = m
				recoveredCount++
			}
		}
	}
	lost := 0
	totalAcked := 0
	for p := range acked {
		totalAcked += len(acked[p])
		for _, id := range acked[p] {
			if _, ok := seen[id]; !ok {
				lost++
			}
		}
	}
	t.Logf("seed %d: acked %d, delivered %d, recovered backlog %d, in-flight losses %d",
		seed, totalAcked, len(seen)-recoveredCount, recoveredCount, lost)
	// Each consumer may have one dequeue whose persist completed just
	// before the crash cut off the delivery record.
	if lost > consumers {
		t.Fatalf("%d acknowledged messages lost (allowance %d)", lost, consumers)
	}
}
