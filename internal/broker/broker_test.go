package broker

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/batch"
	"repro/internal/pmem"
)

// twoTopics is the reference deployment used across the tests:
// 2 topics × 4 shards, one fixed-width and one variable-payload.
func twoTopics() []TopicConfig {
	return []TopicConfig{
		{Name: "events", Shards: 4},                // fixed 8-byte payloads
		{Name: "jobs", Shards: 4, MaxPayload: 100}, // variable payloads
	}
}

// blobPayload embeds id in a deterministic variable-length payload so
// the audit can both identify and integrity-check delivered bytes.
func blobPayload(id uint64) []byte {
	n := 9 + int(id%80)
	p := make([]byte, n)
	copy(p, U64(id))
	for i := 8; i < n; i++ {
		p[i] = byte(id>>(8*uint(i%8)) ^ uint64(i))
	}
	return p
}

func TestPublishConsumeMultiTopic(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 4})
	b, err := New(h, Config{Topics: twoTopics(), Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	events, jobs := b.Topic("events"), b.Topic("jobs")
	if events == nil || jobs == nil || b.Topic("nope") != nil {
		t.Fatal("topic lookup broken")
	}
	const n = 400
	for i := uint64(0); i < n; i++ {
		events.Publish(0, U64(i))
		jobs.PublishKey(1, U64(i%7), blobPayload(i))
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The two members partition the 8 shards without overlap.
	owned := map[ShardRef]bool{}
	for i := 0; i < g.Size(); i++ {
		for _, r := range g.Consumer(i).Assigned() {
			if owned[r] {
				t.Fatalf("shard %v assigned twice", r)
			}
			owned[r] = true
		}
	}
	if len(owned) != 8 {
		t.Fatalf("assigned %d shards, want 8", len(owned))
	}
	gotEvents := map[uint64]bool{}
	lastByKeyShard := map[string]uint64{}
	total := 0
	for i := 0; i < g.Size(); i++ {
		c := g.Consumer(i)
		for {
			m, ok := c.Poll(i + 1)
			if !ok {
				break
			}
			total++
			id := AsU64(m.Payload[:8])
			switch m.Topic {
			case "events":
				if gotEvents[id] {
					t.Fatalf("event %d delivered twice", id)
				}
				gotEvents[id] = true
			case "jobs":
				if !bytes.Equal(m.Payload, blobPayload(id)) {
					t.Fatalf("job %d payload corrupted", id)
				}
				// PublishKey ordering: per key, ids ascend.
				k := fmt.Sprintf("%d/%d", id%7, m.Shard)
				if last, seen := lastByKeyShard[k]; seen && id <= last {
					t.Fatalf("key %d out of order: %d after %d", id%7, id, last)
				}
				lastByKeyShard[k] = id
			}
		}
	}
	if total != 2*n || len(gotEvents) != n {
		t.Fatalf("delivered %d messages (%d events), want %d (%d)", total, len(gotEvents), 2*n, n)
	}
}

// TestPollFairnessAfterIdle pins the round-robin cursor across idle
// periods: an all-empty scan must leave the cursor where it was, not
// reset it to shard 0 (which would permanently bias delivery toward
// low-numbered shards after any idle period).
func TestPollFairnessAfterIdle(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: []TopicConfig{{Name: "events", Shards: 3}}, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroup([]string{"events"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)
	events := b.Topic("events")
	events.Publish(0, U64(1)) // round-robin: lands on shard 0
	if m, ok := c.Poll(0); !ok || AsU64(m.Payload) != 1 {
		t.Fatalf("poll = %v,%v", m, ok)
	}
	// Idle: two all-empty scans. The cursor must stay on shard 1.
	for i := 0; i < 2; i++ {
		if _, ok := c.Poll(0); ok {
			t.Fatal("queue should be empty")
		}
	}
	// One message per shard (the topic's rr cursor is at 1).
	events.Publish(0, U64(2)) // shard 1
	events.Publish(0, U64(3)) // shard 2
	events.Publish(0, U64(4)) // shard 0
	m, ok := c.Poll(0)
	if !ok || m.Shard != 1 || AsU64(m.Payload) != 2 {
		t.Fatalf("first post-idle poll = shard %d payload %d, want shard 1 payload 2 (cursor was reset)",
			m.Shard, AsU64(m.Payload))
	}
}

// TestPollBatchSingleFenceAcrossShards pins the tentpole claim: one
// PollBatch draining several shards issues one NTStore per shard but
// rides a single blocking persist for the whole poll, and subsequent
// all-empty polls are persist-free.
func TestPollBatchSingleFenceAcrossShards(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: []TopicConfig{{Name: "events", Shards: 4}}, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroup([]string{"events"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)
	events := b.Topic("events")
	const n = 16
	for i := uint64(0); i < n; i++ {
		events.Publish(0, U64(i)) // 4 messages per shard round-robin
	}
	before := h.TotalStats()
	ms := c.PollBatch(0, n)
	d := h.TotalStats().Sub(before)
	if len(ms) != n {
		t.Fatalf("PollBatch delivered %d messages, want %d", len(ms), n)
	}
	got := map[uint64]bool{}
	for _, m := range ms {
		id := AsU64(m.Payload)
		if got[id] {
			t.Fatalf("message %d delivered twice", id)
		}
		got[id] = true
	}
	if len(got) != n {
		t.Fatalf("delivered %d distinct messages, want %d", len(got), n)
	}
	if d.Fences != 1 {
		t.Fatalf("PollBatch across 4 shards issued %d fences, want 1", d.Fences)
	}
	if d.NTStores != 4 {
		t.Fatalf("PollBatch across 4 shards issued %d NTStores, want 4 (one per shard)", d.NTStores)
	}
	// Idle polls elide every persist.
	before = h.TotalStats()
	for i := 0; i < 100; i++ {
		if ms := c.PollBatch(0, n); len(ms) != 0 {
			t.Fatal("queue should be empty")
		}
	}
	if d := h.TotalStats().Sub(before); d.Fences != 0 || d.NTStores != 0 {
		t.Fatalf("100 idle polls issued %d fences, %d NTStores; want 0, 0", d.Fences, d.NTStores)
	}
}

// TestPollBatchNoStarvation: a shard that fills a whole poll batch
// must not pin the cursor — the next poll starts at the following
// shard, so a continuously hot shard cannot starve its siblings.
func TestPollBatchNoStarvation(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: []TopicConfig{{Name: "events", Shards: 2}}, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroup([]string{"events"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)
	events := b.Topic("events")
	for i := uint64(0); i < 10; i++ {
		events.Publish(0, U64(i)) // round-robin: evens → shard 0, odds → shard 1
	}
	// First poll fills entirely from shard 0.
	for _, m := range c.PollBatch(0, 5) {
		if m.Shard != 0 {
			t.Fatalf("first poll delivered from shard %d, want 0", m.Shard)
		}
	}
	// Keep shard 0 hot (the topic's rr cursor is back at shard 0).
	for i := uint64(10); i < 20; i++ {
		events.Publish(0, U64(i))
	}
	// The next poll must serve shard 1's backlog, not shard 0 again.
	ms := c.PollBatch(0, 5)
	if len(ms) != 5 {
		t.Fatalf("second poll delivered %d messages, want 5", len(ms))
	}
	for i, m := range ms {
		if m.Shard != 1 {
			t.Fatalf("second poll message %d came from shard %d: hot shard 0 starved shard 1", i, m.Shard)
		}
	}
}

// TestPollBatchMixedTopics drains a fixed-width and a blob topic
// through one consumer's PollBatch and audits payload integrity.
func TestPollBatchMixedTopics(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: twoTopics(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
		b.Topic("jobs").Publish(0, blobPayload(i))
	}
	c := g.Consumer(0)
	gotEvents, gotJobs := map[uint64]bool{}, map[uint64]bool{}
	for {
		ms := c.PollBatch(1, 7)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			id := AsU64(m.Payload[:8])
			switch m.Topic {
			case "events":
				if gotEvents[id] {
					t.Fatalf("event %d delivered twice", id)
				}
				gotEvents[id] = true
			case "jobs":
				if !bytes.Equal(m.Payload, blobPayload(id)) {
					t.Fatalf("job %d payload corrupted", id)
				}
				if gotJobs[id] {
					t.Fatalf("job %d delivered twice", id)
				}
				gotJobs[id] = true
			}
		}
	}
	if len(gotEvents) != n || len(gotJobs) != n {
		t.Fatalf("delivered %d events, %d jobs; want %d each", len(gotEvents), len(gotJobs), n)
	}
}

func TestCatalogRecoverRoundTrip(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b, err := New(h, Config{Topics: twoTopics(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(h, Config{Topics: twoTopics(), Threads: 2}); err == nil {
		t.Fatal("second New on the same window should fail")
	}
	b.Topic("events").Publish(0, U64(42))
	b.Topic("jobs").Publish(0, blobPayload(7))
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(2)))
	h.Restart()
	r, err := Recover(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range twoTopics() {
		got := r.Topics()[i]
		if got.Name() != tc.Name || got.Shards() != tc.Shards {
			t.Fatalf("recovered topic %d = %s/%d, want %s/%d",
				i, got.Name(), got.Shards(), tc.Name, tc.Shards)
		}
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 42 {
		t.Fatalf("recovered event = %v,%v", p, ok)
	}
	found := false
	for s := 0; s < r.Topic("jobs").Shards(); s++ {
		if p, ok := r.Topic("jobs").DequeueShard(0, s); ok {
			if !bytes.Equal(p, blobPayload(7)) {
				t.Fatal("recovered job payload corrupted")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("acknowledged job lost across crash")
	}
}

func TestRecoverThreadBound(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b, err := New(h, Config{Topics: twoTopics(), Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Topic("events").Publish(2, U64(9))
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(4)))
	h.Restart()
	// A mismatched bound would silently mis-scan the per-thread
	// head-index regions; it must be rejected instead.
	if _, err := Recover(h, 2); err == nil {
		t.Fatal("Recover with a mismatched thread bound should fail")
	}
	// 0 adopts the recorded bound.
	r, err := Recover(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads() != 3 {
		t.Fatalf("adopted thread bound = %d, want 3", r.Threads())
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 9 {
		t.Fatalf("recovered event = %v,%v", p, ok)
	}
}

func TestRecoverWithoutBroker(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	if _, err := Recover(h, 1); err == nil {
		t.Fatal("Recover on an empty heap should fail")
	}
}

// TestBrokerCrashFuzz is the whole-broker durability audit: concurrent
// producers (mixing per-message, batch and keyed publishes) and a
// consumer group run until a crash at a random memory access; the
// broker is recovered from its catalog alone and audited — every
// acknowledged publish across all topics and shards is delivered or
// recovered exactly once, and per-shard per-producer FIFO holds.
func TestBrokerCrashFuzz(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { brokerCrashRound(t, seed, 1, 1) })
	}
}

// TestBrokerCrashFuzzBatched is the same audit with batched consumers
// (PollBatch): a batch is acknowledged as a whole when PollBatch
// returns, so a crash mid-poll may redeliver — or, for a window whose
// NTStore landed without its fence, consume — only messages of the
// unacknowledged batch window; acknowledged deliveries never reappear
// and the loss allowance grows from 1 to the poll batch size per
// consumer.
func TestBrokerCrashFuzzBatched(t *testing.T) {
	seeds := []int64{4, 5, 6}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { brokerCrashRound(t, seed, 8, 1) })
	}
}

// TestBrokerCrashFuzzMultiHeap runs the same audit on a broker
// spanning several heaps, with the crash scheduled on the accesses of
// a single randomly chosen member (the set shares one power supply,
// so one domain's failure downs them all): every acknowledged publish
// must be delivered or recovered exactly once across the whole set.
func TestBrokerCrashFuzzMultiHeap(t *testing.T) {
	seeds := []int64{7, 8, 9}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("heaps=2/seed=%d", seed), func(t *testing.T) { brokerCrashRound(t, seed, 8, 2) })
	}
	if !testing.Short() {
		t.Run("heaps=3/seed=10", func(t *testing.T) { brokerCrashRound(t, 10, 1, 3) })
	}
}

func brokerCrashRound(t *testing.T, seed int64, dequeueBatch, heaps int) {
	const (
		producers   = 3
		consumers   = 2
		perProducer = 3000
		threads     = producers + consumers
	)
	hs := pmem.NewSet(heaps, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := NewSet(hs, Config{Topics: twoTopics(), Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, consumers)
	if err != nil {
		t.Fatal(err)
	}
	crashRng := rand.New(rand.NewSource(seed))
	// Arm the crash on one member's access stream; when it fires, the
	// whole set goes down together. The window is sized to the
	// workload's actual per-heap access count (~100k/heaps for 9000
	// messages) so the crash usually lands mid-traffic rather than at
	// quiescence.
	hs.Heap(crashRng.Intn(heaps)).ScheduleCrashAtAccess((20_000 + int64(crashRng.Intn(140_000))) / int64(heaps))

	acked := make([][]uint64, producers)
	delivered := make([]map[uint64]ShardRef, consumers)
	redelivered := make([]int, consumers) // same id polled twice by one consumer
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup
	// Gate all workers on one signal so consumers race producers from
	// the first access — without it the crash (which fires within tens
	// of thousands of accesses) usually lands before the consumer
	// goroutines are even scheduled and the delivered-side audit is
	// vacuous.
	var start sync.WaitGroup
	start.Add(1)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			start.Wait()
			rng := rand.New(rand.NewSource(seed*997 + int64(p)))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			// The pipelined arm: windows issue unfenced and acknowledge
			// one flush late, so `issued` tracks ids whose covering fence
			// is still owed. A crash discards them (they were never
			// acknowledged; whatever landed durably is recovered, which
			// the audit allows).
			pub := events.NewPublisher(p, PublisherConfig{
				Policy: batch.NewAIMD(1, 8), Pipeline: true,
			})
			var issued []uint64
			ackN := func(n int) {
				acked[p] = append(acked[p], issued[:n]...)
				issued = issued[n:]
			}
			// Each iteration publishes ids in increasing order before
			// minting the next, so every shard sees any one producer's
			// messages with ascending ids — the FIFO the audit checks.
			for m := uint64(1); m <= perProducer; {
				// Yield between publishes so consumers interleave even
				// on a single-P runtime; the crash window is far shorter
				// than a preemption quantum.
				runtime.Gosched()
				id := uint64(p+1)<<32 | m
				switch rng.Intn(5) {
				case 0: // fixed-topic publish (after draining the pipeline:
					// a buffered window holds earlier ids, and publishing id
					// directly before they land would break per-shard FIFO)
					n := 0
					if pmem.Protect(func() { n = pub.Flush(); events.Publish(p, U64(id)) }) {
						return
					}
					ackN(n)
					acked[p] = append(acked[p], id)
					m++
				case 1: // keyed publish
					if pmem.Protect(func() { jobs.PublishKey(p, U64(id%5), blobPayload(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					m++
				case 2: // pipelined adaptive burst, acked one window late
					for burst := 0; burst < 8 && m <= perProducer; burst++ {
						id := uint64(p+1)<<32 | m
						n := 0
						if pmem.Protect(func() { n = pub.Publish(U64(id)) }) {
							return
						}
						issued = append(issued, id)
						ackN(n)
						m++
					}
				default: // batch of consecutive ids, acked as a whole
					var batch [][]byte
					var ids []uint64
					for len(batch) < 8 && m <= perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, blobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return
					}
					acked[p] = append(acked[p], ids...)
				}
			}
			// Drain the pipeline: after Flush every issued id is durably
			// acknowledged.
			n := 0
			if pmem.Protect(func() { n = pub.Flush() }) {
				return
			}
			ackN(n)
			if len(issued) != 0 {
				panic(fmt.Sprintf("publisher Flush left %d ids unacknowledged", len(issued)))
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		delivered[c] = map[uint64]ShardRef{}
		go func(c int) {
			defer wg.Done()
			start.Wait()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				runtime.Gosched()
				var ms []Message
				if pmem.Protect(func() {
					if dequeueBatch == 1 {
						if m, ok := cons.Poll(tid); ok {
							ms = []Message{m}
						}
					} else {
						ms = cons.PollBatch(tid, dequeueBatch)
					}
				}) {
					return // crash mid-poll: the whole window is unacknowledged
				}
				if len(ms) > 0 {
					for _, m := range ms {
						id := AsU64(m.Payload[:8])
						if _, dup := delivered[c][id]; dup {
							redelivered[c]++
						}
						delivered[c][id] = ShardRef{Topic: m.Topic, Shard: m.Shard}
					}
					idle = false
					continue
				}
				select {
				case <-done:
					if idle {
						return // producers finished and two empty sweeps
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	start.Done()
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow() // traffic finished first; crash at quiescence
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(seed * 31)))
	hs.Restart()

	r, err := RecoverSet(hs, threads)
	if err != nil {
		t.Fatal(err)
	}

	// Drain the recovered backlog per shard, checking per-producer
	// FIFO and collecting ids.
	seen := map[uint64]string{}
	for c := range delivered {
		if redelivered[c] > 0 {
			t.Fatalf("consumer %d saw %d re-deliveries", c, redelivered[c])
		}
		for id := range delivered[c] {
			if _, dup := seen[id]; dup {
				t.Fatalf("message %#x delivered twice", id)
			}
			seen[id] = "delivered"
		}
	}
	recoveredCount := 0
	for _, topic := range r.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			lastPerProducer := map[uint64]uint64{}
			for {
				p, ok := topic.DequeueShard(0, s)
				if !ok {
					break
				}
				id := AsU64(p[:8])
				if topic.Name() == "jobs" && !bytes.Equal(p, blobPayload(id)) {
					t.Fatalf("recovered payload for %#x corrupted", id)
				}
				if _, dup := seen[id]; dup {
					t.Fatalf("message %#x both %s and recovered", id, seen[id])
				}
				seen[id] = "recovered"
				prod, m := id>>32, id&0xffffffff
				if last := lastPerProducer[prod]; m <= last {
					t.Fatalf("shard %s/%d: producer %d out of order (%d after %d)",
						topic.Name(), s, prod, m, last)
				}
				lastPerProducer[prod] = m
				recoveredCount++
			}
		}
	}
	lost := 0
	totalAcked := 0
	for p := range acked {
		totalAcked += len(acked[p])
		for _, id := range acked[p] {
			if _, ok := seen[id]; !ok {
				lost++
			}
		}
	}
	t.Logf("seed %d: acked %d, delivered %d, recovered backlog %d, in-flight losses %d",
		seed, totalAcked, len(seen)-recoveredCount, recoveredCount, lost)
	// Each consumer may have one unacknowledged poll window whose
	// persists completed just before the crash cut off the delivery
	// record: 1 message on the Poll path, up to the poll batch size on
	// the PollBatch path (the window's final NTStores can land without
	// the batch's fence).
	if allowance := consumers * dequeueBatch; lost > allowance {
		t.Fatalf("%d acknowledged messages lost (allowance %d)", lost, allowance)
	}
}

// TestMultiHeapPlacementSpread pins the two built-in policies: global
// round-robin deals consecutive shards across the set, block placement
// keeps each topic's shards in contiguous per-heap runs.
func TestMultiHeapPlacementSpread(t *testing.T) {
	mk := func(p PlacementPolicy) *Broker {
		hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
		b, err := NewSet(hs, Config{Topics: twoTopics(), Threads: 1, Placement: p})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	rr := mk(nil) // default: round-robin
	for _, topic := range rr.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			if want := s % 2; topic.HeapOf(s) != want {
				t.Fatalf("round-robin: %s shard %d on heap %d, want %d",
					topic.Name(), s, topic.HeapOf(s), want)
			}
		}
	}
	bl := mk(BlockPlacement)
	for _, topic := range bl.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			if want := s * 2 / topic.Shards(); topic.HeapOf(s) != want {
				t.Fatalf("block: %s shard %d on heap %d, want %d",
					topic.Name(), s, topic.HeapOf(s), want)
			}
		}
	}
}

// TestMultiHeapRecoverRoundTrip crashes a 2-heap broker mid-state and
// recovers it from the catalog plus stamps alone: topics, placements
// and messages on both domains survive.
func TestMultiHeapRecoverRoundTrip(t *testing.T) {
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b, err := NewSet(hs, Config{Topics: twoTopics(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin placement: events shards alternate heaps. Publish one
	// message per shard on both topics so both domains hold state.
	for i := uint64(0); i < 8; i++ {
		b.Topic("events").Publish(0, U64(i))
		b.Topic("jobs").Publish(0, blobPayload(i))
	}
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(5)))
	hs.Restart()
	r, err := RecoverSet(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Heaps() != 2 {
		t.Fatalf("recovered broker spans %d heaps, want 2", r.Heaps())
	}
	for ti, topic := range r.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			if got, want := topic.HeapOf(s), b.Topics()[ti].HeapOf(s); got != want {
				t.Fatalf("recovered %s shard %d on heap %d, want %d", topic.Name(), s, got, want)
			}
		}
	}
	gotEvents, gotJobs := map[uint64]bool{}, 0
	for _, topic := range r.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			for {
				p, ok := topic.DequeueShard(0, s)
				if !ok {
					break
				}
				if topic.Name() == "events" {
					gotEvents[AsU64(p)] = true
				} else {
					id := AsU64(p[:8])
					if !bytes.Equal(p, blobPayload(id)) {
						t.Fatalf("job %d corrupted across multi-heap recovery", id)
					}
					gotJobs++
				}
			}
		}
	}
	if len(gotEvents) != 8 || gotJobs != 8 {
		t.Fatalf("recovered %d events, %d jobs; want 8 each", len(gotEvents), gotJobs)
	}
}

// TestRecoverHeapSetMismatch: recovery on a set that does not match
// the catalog — missing heaps, a blank heap spliced in, or members in
// the wrong order — must error, never silently drop or mis-scan
// shards.
func TestRecoverHeapSetMismatch(t *testing.T) {
	cfg := pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4}
	h0, h1, h2 := pmem.New(cfg), pmem.New(cfg), pmem.New(cfg)
	hs := pmem.NewSetOf(h0, h1, h2)
	b, err := NewSet(hs, Config{Topics: twoTopics(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	b.Topic("events").Publish(0, U64(1))
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(6)))
	hs.Restart()

	if _, err := RecoverSet(pmem.NewSetOf(h0), 2); err == nil {
		t.Fatal("Recover with 1 of 3 catalogued heaps should fail")
	}
	if _, err := RecoverSet(pmem.NewSetOf(h0, h1), 2); err == nil {
		t.Fatal("Recover with 2 of 3 catalogued heaps should fail")
	}
	blank := pmem.New(cfg)
	if _, err := RecoverSet(pmem.NewSetOf(h0, h1, blank), 2); err == nil {
		t.Fatal("Recover with a blank heap replacing a member should fail")
	}
	if _, err := RecoverSet(pmem.NewSetOf(h0, h2, h1), 2); err == nil {
		t.Fatal("Recover with members out of order should fail")
	}
	// A foreign heap carrying another broker's stamp must be rejected.
	foreign := pmem.NewSet(2, cfg)
	if _, err := NewSet(foreign, Config{Topics: []TopicConfig{{Name: "x", Shards: 1}}, Threads: 1}); err != nil {
		t.Fatal(err)
	}
	foreign.CrashNow()
	foreign.FinalizeCrash(rand.New(rand.NewSource(7)))
	foreign.Restart()
	if _, err := RecoverSet(pmem.NewSetOf(h0, h1, foreign.Heap(1)), 2); err == nil {
		t.Fatal("Recover with another broker's heap spliced in should fail")
	}
	// The correct set still recovers, with the message intact.
	r, err := RecoverSet(pmem.NewSetOf(h0, h1, h2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 1 {
		t.Fatalf("recovered event = %v,%v", p, ok)
	}
}

// TestNewSetRejectsOccupiedMembers: NewSet must refuse any set whose
// members carry durable broker state — in any position, not just heap
// 0 — instead of silently overwriting another broker's catalog, stamp
// or shards.
func TestNewSetRejectsOccupiedMembers(t *testing.T) {
	cfg := pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4}
	topics := []TopicConfig{{Name: "events", Shards: 2}}
	old := pmem.NewSet(2, cfg)
	if _, err := NewSet(old, Config{Topics: topics, Threads: 2}); err != nil {
		t.Fatal(err)
	}
	old.CrashNow()
	old.FinalizeCrash(rand.New(rand.NewSource(8)))
	old.Restart()

	fresh := func() *pmem.Heap { return pmem.New(cfg) }
	// A former anchor heap (full catalog) spliced into a non-anchor
	// position of a new set.
	if _, err := NewSet(pmem.NewSetOf(fresh(), old.Heap(0)), Config{Topics: topics, Threads: 2}); err == nil {
		t.Fatal("NewSet over a heap hosting a catalog (non-anchor position) should fail")
	}
	// A former member heap (stamp) likewise.
	if _, err := NewSet(pmem.NewSetOf(fresh(), old.Heap(1)), Config{Topics: topics, Threads: 2}); err == nil {
		t.Fatal("NewSet over a heap carrying a membership stamp should fail")
	}
	// Anchor position still guarded too.
	if _, err := NewSet(pmem.NewSetOf(old.Heap(0), fresh()), Config{Topics: topics, Threads: 2}); err == nil {
		t.Fatal("NewSet over an anchor heap hosting a catalog should fail")
	}
	// The untouched old set remains recoverable.
	if _, err := RecoverSet(pmem.NewSetOf(old.Heap(0), old.Heap(1)), 2); err != nil {
		t.Fatal(err)
	}
}

// TestAffineGroupFencesOneDomain: with block placement and an affine
// group, each member's shards live on one heap, Domains reports it,
// and a PollBatch draining several shards pays exactly one SFENCE.
func TestAffineGroupFencesOneDomain(t *testing.T) {
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, MaxThreads: 4})
	b, err := NewSet(hs, Config{
		Topics:    []TopicConfig{{Name: "events", Shards: 4}},
		Threads:   2,
		Placement: BlockPlacement,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroupAffine([]string{"events"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Size(); i++ {
		if d := g.Consumer(i).Domains(); len(d) != 1 || d[0] != i {
			t.Fatalf("affine consumer %d spans domains %v, want [%d]", i, d, i)
		}
	}
	const n = 16
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i)) // 4 per shard round-robin
	}
	for i := 0; i < g.Size(); i++ {
		before := hs.TotalStats()
		ms := g.Consumer(i).PollBatch(1, n)
		d := hs.TotalStats().Sub(before)
		if len(ms) != n/2 {
			t.Fatalf("consumer %d drained %d messages, want %d", i, len(ms), n/2)
		}
		if d.Fences != 1 {
			t.Fatalf("affine consumer %d paid %d fences for a multi-shard poll, want 1", i, d.Fences)
		}
	}
	// Contrast: a round-robin-assigned group over round-robin placement
	// owns shards on both domains and pays one fence per domain.
	hs2 := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, MaxThreads: 4})
	b2, err := NewSet(hs2, Config{Topics: []TopicConfig{{Name: "events", Shards: 4}}, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := b2.NewGroup([]string{"events"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := g2.Consumer(0).Domains(); len(d) != 2 {
		t.Fatalf("spread consumer spans domains %v, want both", d)
	}
	for i := uint64(0); i < n; i++ {
		b2.Topic("events").Publish(0, U64(i))
	}
	before := hs2.TotalStats()
	if ms := g2.Consumer(0).PollBatch(1, n); len(ms) != n {
		t.Fatalf("spread consumer drained %d messages, want %d", len(ms), n)
	}
	if d := hs2.TotalStats().Sub(before); d.Fences != 2 {
		t.Fatalf("spread consumer paid %d fences, want 2 (one per domain)", d.Fences)
	}
}
