package broker

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pmem"
)

// twoAckedTopics mirrors twoTopics with acknowledgment required on
// both: one fixed-width topic, one variable-payload topic.
func twoAckedTopics() []TopicConfig {
	return []TopicConfig{
		{Name: "events", Shards: 4, Acked: true},
		{Name: "jobs", Shards: 4, MaxPayload: 100, Acked: true},
	}
}

// logicalClock is a deterministic lease clock for tests.
type logicalClock struct{ v atomic.Uint64 }

func (c *logicalClock) Now() uint64      { return c.v.Load() }
func (c *logicalClock) Advance(d uint64) { c.v.Add(d) }

func newAckedBroker(t *testing.T, heaps, threads int, mode pmem.Mode) (*pmem.HeapSet, *Broker) {
	t.Helper()
	hs := pmem.NewSet(heaps, pmem.Config{Bytes: 64 << 20, Mode: mode, MaxThreads: threads})
	b, err := NewSet(hs, Config{Topics: twoAckedTopics(), Threads: threads, AckGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	return hs, b
}

// TestAckedDeliverAckRedeliver is the basic acked-group contract on a
// live broker: polled messages stay redeliverable until acked, Nack
// requeues them in order, Ack consumes them for good.
func TestAckedDeliverAckRedeliver(t *testing.T) {
	_, b := newAckedBroker(t, 1, 2, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.RecoveredLeases()) != 0 {
		t.Fatalf("fresh bind recovered %d leases, want 0", len(g.RecoveredLeases()))
	}
	const n = 40
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
		b.Topic("jobs").Publish(0, blobPayload(i))
	}
	c := g.Consumer(0)
	first := c.PollBatch(1, 2*n)
	if len(first) != 2*n {
		t.Fatalf("delivered %d, want %d", len(first), 2*n)
	}
	// Nack: everything comes back, same multiset, per-shard order kept.
	if got, _ := c.Nack(1); got != 2*n {
		t.Fatalf("Nack requeued %d, want %d", got, 2*n)
	}
	second := c.PollBatch(1, 2*n)
	if len(second) != 2*n {
		t.Fatalf("redelivered %d, want %d", len(second), 2*n)
	}
	type sk struct {
		topic string
		shard int
	}
	perShard1, perShard2 := map[sk][]uint64{}, map[sk][]uint64{}
	for i := range first {
		k1 := sk{first[i].Topic, first[i].Shard}
		perShard1[k1] = append(perShard1[k1], AsU64(first[i].Payload[:8]))
		k2 := sk{second[i].Topic, second[i].Shard}
		perShard2[k2] = append(perShard2[k2], AsU64(second[i].Payload[:8]))
	}
	for k, v1 := range perShard1 {
		v2 := perShard2[k]
		if len(v1) != len(v2) {
			t.Fatalf("shard %v redelivered %d of %d", k, len(v2), len(v1))
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("shard %v redelivery out of order at %d: %d vs %d", k, i, v2[i], v1[i])
			}
		}
	}
	if got, _ := c.Ack(1); got != 2*n {
		t.Fatalf("Ack acknowledged %d, want %d", got, 2*n)
	}
	if got, _ := c.Ack(1); got != 0 {
		t.Fatalf("second Ack acknowledged %d, want 0", got)
	}
	if ms := c.PollBatch(1, 8); len(ms) != 0 {
		t.Fatalf("acked messages reappeared: %d", len(ms))
	}
}

// TestAckFenceAccounting pins the tentpole cost model on one domain:
// a leased poll batch across several shards = 1 fence (the lease
// record's) and zero NTStores; an ack batch = 1 fence; a redundant ack
// = 0; a lease renewal = 1 fence the first time and 0 once the
// deadline is durable; a nack = 1 fence; redelivery and idle polls are
// persist-free.
func TestAckFenceAccounting(t *testing.T) {
	hs, b := newAckedBroker(t, 1, 2, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 1, LeaseConfig{TTL: 100, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)
	const n = 16 // 4 per shard
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}

	before := hs.TotalStats()
	ms := c.PollBatch(1, n)
	d := hs.TotalStats().Sub(before)
	if len(ms) != n {
		t.Fatalf("delivered %d, want %d", len(ms), n)
	}
	if d.Fences != 1 {
		t.Fatalf("leased poll across 4 shards = %d fences, want 1", d.Fences)
	}
	if d.NTStores != 0 {
		t.Fatalf("leased poll issued %d NTStores, want 0 (dequeues persist nothing)", d.NTStores)
	}
	if d.Flushes != 4 {
		t.Fatalf("leased poll issued %d flushes, want 4 (one lease line per shard)", d.Flushes)
	}

	before = hs.TotalStats()
	if got, _ := c.Ack(1); got != n {
		t.Fatalf("Ack acknowledged %d, want %d", got, n)
	}
	d = hs.TotalStats().Sub(before)
	if d.Fences != 1 || d.NTStores != 4 {
		t.Fatalf("ack batch = %d fences, %d NTStores; want 1 fence, 4 NTStores (one ack line per shard)",
			d.Fences, d.NTStores)
	}

	before = hs.TotalStats()
	c.Ack(1) // nothing new
	d = hs.TotalStats().Sub(before)
	if d.Fences != 0 || d.NTStores != 0 {
		t.Fatalf("redundant ack = %d fences, %d NTStores; want 0, 0", d.Fences, d.NTStores)
	}

	// Renewal: with an unacked window, moving the deadline costs one
	// fence; repeating it against the durable deadline costs nothing.
	for i := uint64(0); i < 4; i++ {
		b.Topic("events").Publish(0, U64(100+i))
	}
	c.PollBatch(1, 4) // leases with deadline now+100
	clk.Advance(50)
	deadline := clk.Now() + 100
	before = hs.TotalStats()
	c.Renew(1, deadline)
	d = hs.TotalStats().Sub(before)
	if d.Fences != 1 {
		t.Fatalf("first renewal = %d fences, want 1", d.Fences)
	}
	before = hs.TotalStats()
	c.Renew(1, deadline)
	c.Renew(1, deadline-10)
	d = hs.TotalStats().Sub(before)
	if d.Fences != 0 || d.Flushes != 0 {
		t.Fatalf("renewal at an already-durable deadline = %d fences, %d flushes; want 0, 0", d.Fences, d.Flushes)
	}

	before = hs.TotalStats()
	if got, _ := c.Nack(1); got != 4 {
		t.Fatalf("Nack requeued %d, want 4", got)
	}
	d = hs.TotalStats().Sub(before)
	if d.Fences != 1 {
		t.Fatalf("nack = %d fences, want 1", d.Fences)
	}

	// Redelivery of the nacked window is served from the pending queue:
	// no new lease, no persists at all.
	before = hs.TotalStats()
	if ms := c.PollBatch(1, 4); len(ms) != 4 {
		t.Fatal("nacked window not redelivered")
	}
	d = hs.TotalStats().Sub(before)
	if d.Fences != 0 || d.NTStores != 0 || d.Flushes != 0 {
		t.Fatalf("redelivery poll = %d fences, %d NTStores, %d flushes; want 0/0/0", d.Fences, d.NTStores, d.Flushes)
	}
	c.Ack(1)

	// Idle acked polls are persist-free.
	before = hs.TotalStats()
	for i := 0; i < 100; i++ {
		if ms := c.PollBatch(1, 8); len(ms) != 0 {
			t.Fatal("queue should be empty")
		}
	}
	d = hs.TotalStats().Sub(before)
	if d.Fences != 0 || d.NTStores != 0 || d.Flushes != 0 {
		t.Fatalf("100 idle polls = %d fences, %d NTStores, %d flushes; want 0/0/0", d.Fences, d.NTStores, d.Flushes)
	}
}

// TestLeaseTakeover pins Adopt: refusal while the lease is unexpired,
// exactly the unacked suffix redelivered to the adopter, acked
// messages gone for good, shard ownership moved.
func TestLeaseTakeover(t *testing.T) {
	_, b := newAckedBroker(t, 1, 3, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 2, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	victim, survivor := g.Consumer(1), g.Consumer(0)
	// The victim drains its two shards: first batch acked, second left
	// in flight.
	ackedMsgs := victim.PollBatch(2, 4)
	if len(ackedMsgs) != 4 {
		t.Fatalf("victim polled %d, want 4", len(ackedMsgs))
	}
	victim.Ack(2)
	inflight := victim.PollBatch(2, 4)
	if len(inflight) != 4 {
		t.Fatalf("victim polled %d in-flight, want 4", len(inflight))
	}

	if _, err := g.Adopt(2, 1, 0); err == nil {
		t.Fatal("Adopt succeeded while the victim's lease is unexpired")
	}
	clk.Advance(100)
	moved, err := g.Adopt(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4 {
		t.Fatalf("Adopt moved %d redeliveries, want 4", moved)
	}
	if len(victim.Assigned()) != 0 || len(survivor.Assigned()) != 4 {
		t.Fatalf("ownership after adopt: victim %d shards, survivor %d; want 0 and 4",
			len(victim.Assigned()), len(survivor.Assigned()))
	}

	want := map[uint64]bool{}
	for _, m := range inflight {
		want[AsU64(m.Payload)] = true
	}
	for _, m := range ackedMsgs {
		want[AsU64(m.Payload)] = false // acked: must never reappear
	}
	got := map[uint64]int{}
	for {
		ms := survivor.PollBatch(1, 8)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			got[AsU64(m.Payload)]++
		}
		survivor.Ack(1)
	}
	for id, redeliver := range want {
		if redeliver && got[id] != 1 {
			t.Fatalf("unacked message %d delivered %d times after takeover, want 1", id, got[id])
		}
		if !redeliver && got[id] != 0 {
			t.Fatalf("acked message %d redelivered after takeover", id)
		}
	}
	if len(got) != n-4 {
		t.Fatalf("survivor saw %d distinct messages, want %d", len(got), n-4)
	}
}

// TestAckedRecoveryExactlyOnce is the deterministic whole-broker leg:
// acked messages never reappear across a crash, delivered-but-unacked
// messages are redelivered exactly once, and the fresh group binding
// surfaces the previous incarnation's lease records.
func TestAckedRecoveryExactlyOnce(t *testing.T) {
	_, b := newAckedBroker(t, 2, 2, pmem.ModeCrash)
	hs := b.HeapSet()
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := uint64(1); i <= n; i++ {
		b.Topic("events").Publish(0, U64(i))
		b.Topic("jobs").Publish(0, blobPayload(n+i)) // disjoint id spaces
	}
	c := g.Consumer(0)
	acked := map[uint64]string{}
	ms := c.PollBatch(1, 50)
	for _, m := range ms {
		acked[AsU64(m.Payload[:8])] = m.Topic
	}
	c.Ack(1)
	inflight := map[uint64]bool{}
	for _, m := range c.PollBatch(1, 30) {
		inflight[AsU64(m.Payload[:8])] = true
	}
	// No ack for the second window: the crash hits with 30 in flight.
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(31)))
	hs.Restart()

	r, err := RecoverSet(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	clk2 := &logicalClock{}
	g2, err := r.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 10, Now: clk2.Now})
	if err != nil {
		t.Fatal(err)
	}
	// The stale in-flight windows surface as recovered lease records.
	if len(g2.RecoveredLeases()) == 0 {
		t.Fatal("no lease records recovered despite an in-flight window at the crash")
	}
	for _, rl := range g2.RecoveredLeases() {
		if rl.Lease.Active && rl.Lease.Owner != 0 {
			t.Fatalf("recovered lease %v names owner %d, want 0", rl.Shard, rl.Lease.Owner)
		}
	}
	seen := map[uint64]int{}
	c2 := g2.Consumer(0)
	for {
		ms := c2.PollBatch(1, 16)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			id := AsU64(m.Payload[:8])
			if m.Topic == "jobs" && !bytes.Equal(m.Payload, blobPayload(id)) {
				t.Fatalf("message %d corrupted across recovery", id)
			}
			seen[id]++
		}
		c2.Ack(1)
	}
	for id := range acked {
		if seen[id] > 0 {
			t.Fatalf("acked message %d redelivered after the crash", id)
		}
	}
	for id := range inflight {
		if seen[id] != 1 {
			t.Fatalf("in-flight message %d redelivered %d times, want exactly 1", id, seen[id])
		}
	}
	// Everything published is either acked before the crash or drained
	// after it — exactly once, no allowance.
	if total := len(acked) + len(seen); total != 2*n {
		t.Fatalf("processed %d distinct messages, want %d", total, 2*n)
	}
}

// TestBrokerCrashFuzzConsumerCrash is the consumer-crash fuzz tier:
// concurrent producers and an acked consumer group run while a killer
// repeatedly crashes a random consumer mid-batch (after delivery,
// before acknowledgment), waits out its lease, and adopts its shards
// into a survivor; partway through, a full-system crash downs the
// whole heap set. The broker is recovered, a fresh group binds the
// lease region, and the audit demands exactly-once processing: no
// message is ever acknowledged twice (no acked message is redelivered,
// by takeover or by recovery), and every acknowledged publish is
// processed exactly once, up to the window-sized observer gap of acks
// whose fence completed just before the crash cut off the record.
func TestBrokerCrashFuzzConsumerCrash(t *testing.T) {
	seeds := []int64{41, 42, 43}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { consumerCrashRound(t, seed) })
	}
}

func consumerCrashRound(t *testing.T, seed int64) {
	const (
		producers   = 2
		consumers   = 3
		perProducer = 2000
		window      = 8
		heaps       = 2
		threads     = producers + consumers
	)
	hs := pmem.NewSet(heaps, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := NewSet(hs, Config{Topics: twoAckedTopics(), Threads: threads, AckGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, consumers, LeaseConfig{TTL: 5, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	// The window matches this workload's real access volume (~4000
	// messages ≈ 90k accesses across the set, counting lease and ack
	// traffic), so the crash usually lands mid-traffic — with kills and
	// takeovers already behind it — rather than at quiescence.
	crashRng := rand.New(rand.NewSource(seed))
	hs.Heap(crashRng.Intn(heaps)).ScheduleCrashAtAccess((10_000 + int64(crashRng.Intn(60_000))) / int64(heaps))

	acked := make([][]uint64, producers)
	processed := make([]map[uint64]bool, consumers) // acked-and-recorded, per consumer
	var killFlag [consumers]atomic.Bool
	var consumerDone [consumers]chan struct{}
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			start.Wait()
			rng := rand.New(rand.NewSource(seed*887 + int64(p)))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			for m := uint64(1); m <= perProducer; {
				runtime.Gosched()
				id := uint64(p+1)<<32 | m
				switch rng.Intn(3) {
				case 0:
					if pmem.Protect(func() { events.Publish(p, U64(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					m++
				default:
					var batch [][]byte
					var ids []uint64
					for len(batch) < 6 && m <= perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, blobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return
					}
					acked[p] = append(acked[p], ids...)
				}
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		processed[c] = map[uint64]bool{}
		consumerDone[c] = make(chan struct{})
		go func(c int) {
			defer wg.Done()
			defer close(consumerDone[c])
			start.Wait()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				runtime.Gosched()
				var ms []Message
				if pmem.Protect(func() { ms = cons.PollBatch(tid, window) }) {
					return // full-system crash mid-poll
				}
				if len(ms) > 0 {
					idle = false
					for _, m := range ms {
						id := AsU64(m.Payload[:8])
						if m.Topic == "jobs" && !bytes.Equal(m.Payload, blobPayload(id)) {
							t.Errorf("consumer %d: payload of %#x corrupted", c, id)
						}
					}
					// "Crash" mid-batch: delivered, never acknowledged —
					// the window must be redelivered via takeover.
					if killFlag[c].Load() {
						return
					}
					if pmem.Protect(func() { cons.Ack(tid) }) {
						return // crash mid-ack: the ack may or may not be durable
					}
					// Only now is the batch processed for the audit.
					for _, m := range ms {
						processed[c][AsU64(m.Payload[:8])] = true
					}
					continue
				}
				select {
				case <-done:
					if killFlag[c].Load() {
						return
					}
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}

	// The killer: crash consumers 1 and 2 mid-run, wait out their
	// leases, adopt their shards into consumer 0.
	wg.Add(1)
	go func() {
		defer wg.Done()
		start.Wait()
		for victim := 1; victim < consumers; victim++ {
			time.Sleep(time.Duration(1+crashRng.Intn(3)) * time.Millisecond)
			killFlag[victim].Store(true)
			<-consumerDone[victim]
			clk.Advance(1000) // let the victim's leases expire
			vTid := producers + victim
			var aerr error
			if pmem.Protect(func() { _, aerr = g.Adopt(vTid, victim, 0) }) {
				return // full-system crash during takeover
			}
			if aerr != nil {
				t.Errorf("Adopt(%d -> 0): %v", victim, aerr)
				return
			}
		}
	}()

	start.Done()
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow() // traffic finished first; crash at quiescence
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(seed * 17)))
	hs.Restart()

	r, err := RecoverSet(hs, threads)
	if err != nil {
		t.Fatal(err)
	}
	clk2 := &logicalClock{}
	g2, err := r.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 5, Now: clk2.Now})
	if err != nil {
		t.Fatal(err)
	}

	// Exactly-once audit. "Processed" = acknowledged: once pre-crash
	// (recorded after Ack returned) or once in the post-crash drain.
	seen := map[uint64]string{}
	for c := range processed {
		for id := range processed[c] {
			if prev, dup := seen[id]; dup {
				t.Fatalf("message %#x acknowledged twice (%s and consumer %d)", id, prev, c)
			}
			seen[id] = fmt.Sprintf("consumer %d", c)
		}
	}
	c2 := g2.Consumer(0)
	drained := 0
	for {
		ms := c2.PollBatch(0, 16)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			id := AsU64(m.Payload[:8])
			if m.Topic == "jobs" && !bytes.Equal(m.Payload, blobPayload(id)) {
				t.Fatalf("recovered payload of %#x corrupted", id)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("message %#x both acknowledged by %s and redelivered after recovery", id, prev)
			}
			seen[id] = "post-crash drain"
			drained++
		}
		c2.Ack(0)
	}
	lost := 0
	totalAcked := 0
	for p := range acked {
		totalAcked += len(acked[p])
		for _, id := range acked[p] {
			if _, ok := seen[id]; !ok {
				lost++
			}
		}
	}
	t.Logf("seed %d: published %d, processed pre-crash %d, drained post-crash %d, observer-gap %d",
		seed, totalAcked, len(seen)-drained, drained, lost)
	// The only permissible gap: a consumer whose Ack's fence completed
	// right before the system crash killed it between the fence and the
	// audit record — at most one poll window per consumer.
	if allowance := consumers * window; lost > allowance {
		t.Fatalf("%d acknowledged publishes never processed (allowance %d)", lost, allowance)
	}
}
