package broker

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/blobq"
	"repro/internal/pmem"
	"repro/internal/queues"
)

// legacyLayout replays the write-once builds' layout pass: every
// shard window dealt by the placement policy in creation order, then
// one anchor slot per lease region round-robin. The live-admin
// high-water allocator produces the same layout creation by creation;
// the legacy writers below need it up front.
func legacyLayout(hs *pmem.HeapSet, cfg Config) (locs [][]shardLoc, leaseLocs []shardLoc, err error) {
	policy := cfg.Placement
	if policy == nil {
		policy = RoundRobinPlacement
	}
	next := make([]int, hs.Len())
	for i := range next {
		next[i] = 1 // slot 0 is the anchor
	}
	locs = make([][]shardLoc, len(cfg.Topics))
	global := 0
	for ti, tc := range cfg.Topics {
		locs[ti] = make([]shardLoc, tc.Shards)
		for si := 0; si < tc.Shards; si++ {
			hi := policy(ti, si, global, tc.Shards, hs.Len())
			if hi < 0 || hi >= hs.Len() || next[hi]+slotsPerShard > hs.Heap(hi).RootSlots() {
				return nil, nil, fmt.Errorf("bad placement for topic %d shard %d", ti, si)
			}
			locs[ti][si] = shardLoc{heap: hi, base: next[hi]}
			next[hi] += slotsPerShard
			global++
		}
	}
	for g := 0; g < cfg.AckGroups; g++ {
		hi := g % hs.Len()
		leaseLocs = append(leaseLocs, shardLoc{heap: hi, base: next[hi]})
		next[hi]++
	}
	return locs, leaseLocs, nil
}

// writeCatalogV1 replays the legacy single-heap catalog writer
// verbatim (the "Broker1" layout documented in catalog.go): one header
// line, then one row per topic [slotBase, shards, maxPayload, nameLen,
// name 0..3]. Brokers written by pre-heap-set builds carry exactly
// this; the tests below pin that readCatalog still accepts it.
func writeCatalogV1(h *pmem.Heap, cfg Config) {
	const tid = 0
	bytes := int64((1 + len(cfg.Topics)) * pmem.CacheLineBytes)
	reg := h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, reg, bytes)

	h.Store(tid, reg, catMagic)
	h.Store(tid, reg+pmem.WordBytes, uint64(len(cfg.Topics)))
	h.Store(tid, reg+2*pmem.WordBytes, uint64(cfg.Threads))
	h.Flush(tid, reg)
	next := 1
	for i, tc := range cfg.Topics {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		h.Store(tid, row, uint64(next))
		h.Store(tid, row+8, uint64(tc.Shards))
		h.Store(tid, row+16, uint64(tc.MaxPayload))
		h.Store(tid, row+24, uint64(len(tc.Name)))
		name := make([]byte, catNameBytes)
		copy(name, tc.Name)
		for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
			var word uint64
			for b := 0; b < 8; b++ {
				word |= uint64(name[w*8+b]) << (8 * b)
			}
			h.Store(tid, row+pmem.Addr(32+w*8), word)
		}
		h.Flush(tid, row)
		next += tc.Shards * slotsPerShard
	}
	h.Fence(tid)

	h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
	h.Persist(tid, h.RootAddr(slotAnchor))
}

// seqBases assigns global shard ordinals sequentially in topic order,
// exactly as every pre-tombstone catalog version implies them.
func seqBases(topics []TopicConfig) (bases []int, next int) {
	for _, tc := range topics {
		bases = append(bases, next)
		next += tc.Shards
	}
	return bases, next
}

// newWithV1Catalog builds a broker exactly as a pre-heap-set binary
// did: shard queues at the deterministic sequential layout on one
// heap, then the v1 catalog.
func newWithV1Catalog(t *testing.T, h *pmem.Heap, cfg Config) *Broker {
	t.Helper()
	hs := pmem.NewSetOf(h)
	locs, _, err := legacyLayout(hs, cfg) // round-robin on 1 heap = v1 layout
	if err != nil {
		t.Fatal(err)
	}
	bases, next := seqBases(cfg.Topics)
	b := build(hs, cfg.Threads, cfg.Topics, locs, bases, next, func(view *pmem.Heap, tc TopicConfig) *shard {
		if tc.MaxPayload == 0 {
			return &shard{fixed: queues.NewOptUnlinkedQ(view, cfg.Threads)}
		}
		return &shard{blob: blobq.New(view, blobq.Config{Threads: cfg.Threads, MaxPayload: tc.MaxPayload})}
	})
	writeCatalogV1(h, cfg)
	return b
}

// writeCatalogV2 replays the pre-ack heap-set catalog writer verbatim
// (the "Broker2" layout documented in catalog.go): a v2 header without
// the ackGroups word, topic rows without the acked bit, shard
// placement words only. Brokers written by pre-lease builds carry
// exactly this.
func writeCatalogV2(hs *pmem.HeapSet, cfg Config, locs [][]shardLoc) {
	const tid = 0
	stamp := nextSetStamp()
	for i := 1; i < hs.Len(); i++ {
		h := hs.Heap(i)
		reg := h.AllocRaw(tid, pmem.CacheLineBytes, pmem.CacheLineBytes)
		h.InitRange(tid, reg, pmem.CacheLineBytes)
		h.Store(tid, reg, stampMagic)
		h.Store(tid, reg+8, stamp)
		h.Store(tid, reg+16, uint64(i))
		h.Store(tid, reg+24, uint64(hs.Len()))
		h.Persist(tid, reg)
		h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
		h.Persist(tid, h.RootAddr(slotAnchor))
	}
	h := hs.Heap(0)
	shardTotal := 0
	for _, tl := range locs {
		shardTotal += len(tl)
	}
	placeLines := (shardTotal + pmem.WordsPerLine - 1) / pmem.WordsPerLine
	bytes := int64(1+len(cfg.Topics)+placeLines) * pmem.CacheLineBytes
	reg := h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, reg, bytes)
	h.Store(tid, reg, catMagicV2)
	h.Store(tid, reg+8, uint64(len(cfg.Topics)))
	h.Store(tid, reg+16, uint64(cfg.Threads))
	h.Store(tid, reg+24, uint64(hs.Len()))
	h.Store(tid, reg+32, stamp)
	h.Store(tid, reg+40, uint64(shardTotal))
	h.Flush(tid, reg)
	place := 0
	for i, tc := range cfg.Topics {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		h.Store(tid, row, uint64(tc.Shards))
		h.Store(tid, row+8, uint64(tc.MaxPayload))
		h.Store(tid, row+16, uint64(len(tc.Name)))
		h.Store(tid, row+24, uint64(place))
		name := make([]byte, catNameBytes)
		copy(name, tc.Name)
		for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
			var word uint64
			for b := 0; b < 8; b++ {
				word |= uint64(name[w*8+b]) << (8 * b)
			}
			h.Store(tid, row+pmem.Addr(32+w*8), word)
		}
		h.Flush(tid, row)
		place += tc.Shards
	}
	placeBase := reg + pmem.Addr((1+len(cfg.Topics))*pmem.CacheLineBytes)
	j := 0
	for _, tl := range locs {
		for _, loc := range tl {
			h.Store(tid, placeBase+pmem.Addr(j*pmem.WordBytes), packLoc(loc))
			j++
		}
	}
	for l := 0; l < placeLines; l++ {
		h.Flush(tid, placeBase+pmem.Addr(l*pmem.CacheLineBytes))
	}
	h.Fence(tid)
	h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
	h.Persist(tid, h.RootAddr(slotAnchor))
}

// TestCatalogV2Recover: a broker persisted with the legacy (pre-ack)
// heap-set catalog must still recover on a matching set — lease-free:
// no topic acked, no lease regions — with payloads intact on every
// member heap.
func TestCatalogV2Recover(t *testing.T) {
	cfg := pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4}
	hs := pmem.NewSet(2, cfg)
	bcfg := Config{Topics: twoTopics(), Threads: 2}
	locs, leaseLocs, err := legacyLayout(hs, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaseLocs) != 0 {
		t.Fatalf("lease-free layout allocated %d lease regions", len(leaseLocs))
	}
	bases, next := seqBases(bcfg.Topics)
	b := build(hs, bcfg.Threads, bcfg.Topics, locs, bases, next, func(view *pmem.Heap, tc TopicConfig) *shard {
		if tc.MaxPayload == 0 {
			return &shard{fixed: queues.NewOptUnlinkedQ(view, bcfg.Threads)}
		}
		return &shard{blob: blobq.New(view, blobq.Config{Threads: bcfg.Threads, MaxPayload: tc.MaxPayload})}
	})
	writeCatalogV2(hs, bcfg, locs)
	b.Topic("events").Publish(0, U64(77))
	b.Topic("jobs").Publish(0, blobPayload(8))
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(12)))
	hs.Restart()

	r, err := RecoverSet(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.AckGroups() != 0 {
		t.Fatalf("v2 recovery produced %d lease regions, want 0", r.AckGroups())
	}
	for _, topic := range r.Topics() {
		if topic.Acked() {
			t.Fatalf("v2 recovery marked topic %q acked", topic.Name())
		}
	}
	if _, err := r.NewGroupAcked([]string{"events"}, 1, LeaseConfig{}); err == nil {
		t.Fatal("NewGroupAcked on a v2 (lease-free) broker should fail")
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 77 {
		t.Fatalf("recovered v2 event = %v,%v", p, ok)
	}
	found := false
	for s := 0; s < r.Topic("jobs").Shards(); s++ {
		if p, ok := r.Topic("jobs").DequeueShard(0, s); ok {
			if AsU64(p[:8]) != 8 {
				t.Fatal("recovered v2 job corrupted")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("v2 job lost across recovery")
	}
}

// writeCatalogV3 replays the pre-log (write-once) heap-set catalog
// writer verbatim: the "Broker3" layout documented in catalog.go —
// v2 plus the ackGroups header word, the acked bit in topic rows and
// the lease placements after the shard placements. Brokers written by
// pre-live-admin builds carry exactly this; with the v4 log those
// builds are legacy and TestCatalogV3Recover pins that they stay
// recoverable.
func writeCatalogV3(hs *pmem.HeapSet, cfg Config, locs [][]shardLoc, leaseLocs []shardLoc) {
	const tid = 0
	stamp := nextSetStamp()
	for i := 1; i < hs.Len(); i++ {
		h := hs.Heap(i)
		reg := h.AllocRaw(tid, pmem.CacheLineBytes, pmem.CacheLineBytes)
		h.InitRange(tid, reg, pmem.CacheLineBytes)
		h.Store(tid, reg, stampMagic)
		h.Store(tid, reg+8, stamp)
		h.Store(tid, reg+16, uint64(i))
		h.Store(tid, reg+24, uint64(hs.Len()))
		h.Persist(tid, reg)
		h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
		h.Persist(tid, h.RootAddr(slotAnchor))
	}
	h := hs.Heap(0)
	shardTotal := 0
	for _, tl := range locs {
		shardTotal += len(tl)
	}
	placeWords := shardTotal + len(leaseLocs)
	placeLines := (placeWords + pmem.WordsPerLine - 1) / pmem.WordsPerLine
	bytes := int64(1+len(cfg.Topics)+placeLines) * pmem.CacheLineBytes
	reg := h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, reg, bytes)

	h.Store(tid, reg, catMagicV3)
	h.Store(tid, reg+8, uint64(len(cfg.Topics)))
	h.Store(tid, reg+16, uint64(cfg.Threads))
	h.Store(tid, reg+24, uint64(hs.Len()))
	h.Store(tid, reg+32, stamp)
	h.Store(tid, reg+40, uint64(shardTotal))
	h.Store(tid, reg+48, uint64(len(leaseLocs)))
	h.Flush(tid, reg)
	place := 0
	for i, tc := range cfg.Topics {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		payloadWord := uint64(tc.MaxPayload)
		if tc.Acked {
			payloadWord |= catAckedBit
		}
		h.Store(tid, row, uint64(tc.Shards))
		h.Store(tid, row+8, payloadWord)
		h.Store(tid, row+16, uint64(len(tc.Name)))
		h.Store(tid, row+24, uint64(place))
		name := make([]byte, catNameBytes)
		copy(name, tc.Name)
		for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
			var word uint64
			for b := 0; b < 8; b++ {
				word |= uint64(name[w*8+b]) << (8 * b)
			}
			h.Store(tid, row+pmem.Addr(32+w*8), word)
		}
		h.Flush(tid, row)
		place += tc.Shards
	}
	placeBase := reg + pmem.Addr((1+len(cfg.Topics))*pmem.CacheLineBytes)
	j := 0
	for _, tl := range locs {
		for _, loc := range tl {
			h.Store(tid, placeBase+pmem.Addr(j*pmem.WordBytes), packLoc(loc))
			j++
		}
	}
	for _, loc := range leaseLocs {
		h.Store(tid, placeBase+pmem.Addr(j*pmem.WordBytes), packLoc(loc))
		j++
	}
	for l := 0; l < placeLines; l++ {
		h.Flush(tid, placeBase+pmem.Addr(l*pmem.CacheLineBytes))
	}
	h.Fence(tid) // catalog body durable before the anchor names it

	h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
	h.Persist(tid, h.RootAddr(slotAnchor))
}

// TestCatalogV3Recover: a broker persisted with the write-once v3
// catalog — acked topics, pre-allocated lease regions — must still
// recover on a matching set: acked bits intact, lease regions
// re-bound (sized to the v3 shard total), acked messages never
// redelivered, in-flight ones exactly once. Administration is
// refused: a v3 catalog has no log to append to.
func TestCatalogV3Recover(t *testing.T) {
	cfg := pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4}
	hs := pmem.NewSet(2, cfg)
	bcfg := Config{Topics: twoAckedTopics(), Threads: 2, AckGroups: 1}
	locs, leaseLocs, err := legacyLayout(hs, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaseLocs) != 1 {
		t.Fatalf("layout allocated %d lease regions, want 1", len(leaseLocs))
	}
	bases, next := seqBases(bcfg.Topics)
	b := build(hs, bcfg.Threads, bcfg.Topics, locs, bases, next, func(view *pmem.Heap, tc TopicConfig) *shard {
		if tc.MaxPayload == 0 {
			return &shard{fixed: queues.NewOptUnlinkedQAcked(view, bcfg.Threads)}
		}
		return &shard{blob: blobq.New(view, blobq.Config{Threads: bcfg.Threads, MaxPayload: tc.MaxPayload, Acked: true})}
	})
	shardTotal := b.ShardTotal()
	for g, loc := range leaseLocs {
		b.regions = append(b.regions,
			initLeaseRegion(hs.Heap(loc.heap), 0, loc.heap, loc.base, g, shardTotal))
	}
	b.bound = make([]bool, len(b.regions))
	writeCatalogV3(hs, bcfg, locs, leaseLocs)

	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	for i := uint64(1); i <= n; i++ {
		b.Topic("events").Publish(0, U64(i))
		b.Topic("jobs").Publish(0, blobPayload(n+i))
	}
	c := g.Consumer(0)
	ackedIDs := map[uint64]bool{}
	for _, m := range c.PollBatch(1, 20) {
		ackedIDs[AsU64(m.Payload[:8])] = true
	}
	c.Ack(1)
	inflight := map[uint64]bool{}
	for _, m := range c.PollBatch(1, 10) {
		inflight[AsU64(m.Payload[:8])] = true
	}
	// No ack for the second window: the crash hits with it in flight.
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(61)))
	hs.Restart()

	r, err := RecoverSet(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.AckGroups() != 1 {
		t.Fatalf("v3 recovery produced %d lease regions, want 1", r.AckGroups())
	}
	for _, topic := range r.Topics() {
		if !topic.Acked() {
			t.Fatalf("v3 recovery dropped the acked bit of topic %q", topic.Name())
		}
	}
	// A v3 catalog is write-once: live administration must refuse.
	if _, err := r.CreateTopic(0, TopicConfig{Name: "late", Shards: 1}); err == nil {
		t.Fatal("CreateTopic on a v3 (write-once) catalog should fail")
	}
	if _, err := r.CreateAckGroup(0, AckGroupConfig{}); err == nil {
		t.Fatal("CreateAckGroup on a v3 (write-once) catalog should fail")
	}
	clk2 := &logicalClock{}
	g2, err := r.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 10, Now: clk2.Now})
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.RecoveredLeases()) == 0 {
		t.Fatal("no lease records recovered despite an in-flight window at the crash")
	}
	seen := map[uint64]int{}
	c2 := g2.Consumer(0)
	for {
		ms := c2.PollBatch(1, 16)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			id := AsU64(m.Payload[:8])
			if m.Topic == "jobs" && !bytes.Equal(m.Payload, blobPayload(id)) {
				t.Fatalf("message %d corrupted across v3 recovery", id)
			}
			seen[id]++
		}
		c2.Ack(1)
	}
	for id := range ackedIDs {
		if seen[id] > 0 {
			t.Fatalf("acked message %d redelivered after v3 recovery", id)
		}
	}
	for id := range inflight {
		if seen[id] != 1 {
			t.Fatalf("in-flight message %d redelivered %d times, want exactly 1", id, seen[id])
		}
	}
	if total := len(ackedIDs) + len(seen); total != 2*n {
		t.Fatalf("processed %d distinct messages, want %d", total, 2*n)
	}
}

// TestCatalogV1Recover: a broker persisted with the legacy single-heap
// catalog must still recover on a 1-heap set, payloads intact — and
// must be rejected on a multi-heap set rather than guessed at.
func TestCatalogV1Recover(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b := newWithV1Catalog(t, h, Config{Topics: twoTopics(), Threads: 2})
	b.Topic("events").Publish(0, U64(41))
	b.Topic("jobs").Publish(0, blobPayload(9))
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(11)))
	h.Restart()

	other := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	if _, err := RecoverSet(pmem.NewSetOf(h, other), 2); err == nil {
		t.Fatal("v1 catalog on a 2-heap set should be rejected")
	}

	r, err := Recover(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range twoTopics() {
		got := r.Topics()[i]
		if got.Name() != tc.Name || got.Shards() != tc.Shards || got.HeapOf(0) != 0 {
			t.Fatalf("recovered topic %d = %s/%d on heap %d, want %s/%d on heap 0",
				i, got.Name(), got.Shards(), got.HeapOf(0), tc.Name, tc.Shards)
		}
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 41 {
		t.Fatalf("recovered v1 event = %v,%v", p, ok)
	}
	found := false
	for s := 0; s < r.Topic("jobs").Shards(); s++ {
		if p, ok := r.Topic("jobs").DequeueShard(0, s); ok {
			if AsU64(p[:8]) != 9 {
				t.Fatal("recovered v1 job corrupted")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("v1 job lost across recovery")
	}
}

// TestCatalogCorruptionErrors: a corrupted or truncated catalog log
// must surface as an error from Recover, never a panic deep in the
// simulator. The broker under test writes the v4 log; offsets target
// its layout (header line, commit line, allocator line, records).
func TestCatalogCorruptionErrors(t *testing.T) {
	newCrashed := func(t *testing.T) *pmem.Heap {
		h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
		b, err := New(h, Config{Topics: twoTopics(), Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		b.Topic("events").Publish(0, U64(1))
		h.CrashNow()
		h.FinalizeCrash(rand.New(rand.NewSource(3)))
		h.Restart()
		return h
	}
	expectErr := func(t *testing.T, h *pmem.Heap, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Recover panicked: %v", what, r)
			}
		}()
		if _, err := Recover(h, 2); err == nil {
			t.Fatalf("%s: Recover succeeded on a corrupted catalog", what)
		}
	}
	// On a 1-heap set the log is header (line 0), commit (line 1), one
	// allocator line (line 2), then the records from line 3.
	const recLine = logHeaderLines + 1

	t.Run("bad magic", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg, 0xdead)
		expectErr(t, h, "bad magic")
	})
	t.Run("header field corrupted", func(t *testing.T) {
		// Any flipped header word — here the thread bound — must fail
		// the header checksum.
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg+16, 1<<40)
		expectErr(t, h, "header field")
	})
	t.Run("absurd commit count", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg+pmem.CacheLineBytes, 1<<40)
		expectErr(t, h, "absurd commit count")
	})
	t.Run("commit count past the written tail", func(t *testing.T) {
		// A commit word claiming one more record than was ever appended
		// points replay at virgin lines, which fail record validation.
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg+pmem.CacheLineBytes, h.Load(0, reg+pmem.CacheLineBytes)+1)
		expectErr(t, h, "commit past tail")
	})
	t.Run("committed record corrupted", func(t *testing.T) {
		// Flipping any word of a committed record — here topic 0's shard
		// count — must fail the record checksum.
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg+recLine*pmem.CacheLineBytes+16, 1)
		expectErr(t, h, "committed record")
	})
	t.Run("placement out of range", func(t *testing.T) {
		// Rewrite topic 0's first placement word to heap 7 of a 1-heap
		// set WITH a recomputed checksum: the record validates, so the
		// layer that must catch it is placement validation.
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		hdrA := reg + recLine*pmem.CacheLineBytes
		placeA := hdrA + 2*pmem.CacheLineBytes // header, name line, placements
		h.Store(0, placeA, packLoc(shardLoc{heap: 7, base: 1}))
		var sum []uint64
		for w := 0; w < 7; w++ {
			sum = append(sum, h.Load(0, hdrA+pmem.Addr(w*8)))
		}
		for l := 1; l <= 2; l++ {
			for w := 0; w < 8; w++ {
				sum = append(sum, h.Load(0, hdrA+pmem.Addr(l*pmem.CacheLineBytes+w*8)))
			}
		}
		h.Store(0, hdrA+7*pmem.WordBytes, catChecksum(sum))
		expectErr(t, h, "placement heap")
	})
	t.Run("high-water mark lags committed windows", func(t *testing.T) {
		// An allocator mark below what the committed records claim means
		// the log and the allocator disagree: corruption, not debris.
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg+logHeaderLines*pmem.CacheLineBytes, 1)
		expectErr(t, h, "lagging mark")
	})
	t.Run("anchor near uint64 wraparound", func(t *testing.T) {
		// A corrupt anchor in [2^64-8, 2^64) must hit the truncation
		// error, not wrap past the bounds check into an index panic.
		h := newCrashed(t)
		h.Store(0, h.RootAddr(slotAnchor), ^uint64(0)-3)
		expectErr(t, h, "wraparound anchor")
	})
	t.Run("short legacy catalog near heap end", func(t *testing.T) {
		h := newCrashed(t)
		// Re-anchor to a v2 header on the last line of the heap: the
		// header reads but every row is out of bounds; the reader must
		// return a truncation error instead of indexing past the arena.
		tail := pmem.Addr(h.Bytes()) - pmem.CacheLineBytes
		h.Store(0, tail, catMagicV2)
		h.Store(0, tail+8, 2)  // topicCount
		h.Store(0, tail+16, 2) // threads
		h.Store(0, tail+24, 1) // heapCount
		h.Store(0, tail+32, 1) // stamp
		h.Store(0, tail+40, 8) // shardTotal
		h.Store(0, h.RootAddr(slotAnchor), uint64(tail))
		expectErr(t, h, "short catalog")
		_, err := readCatalog(pmem.NewSetOf(h))
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("want truncation error, got %v", err)
		}
	})
	t.Run("short v4 log near heap end", func(t *testing.T) {
		h := newCrashed(t)
		// A validly checksummed v4 header whose body runs off the heap:
		// the commit-line read must hit the truncation error.
		tail := pmem.Addr(h.Bytes()) - pmem.CacheLineBytes
		hdr := []uint64{catMagicV4, 2, 1, 1, 1024, 1, 0}
		for i, w := range hdr {
			h.Store(0, tail+pmem.Addr(i*8), w)
		}
		h.Store(0, tail+7*pmem.WordBytes, catChecksum(hdr))
		h.Store(0, h.RootAddr(slotAnchor), uint64(tail))
		expectErr(t, h, "short v4 log")
	})
}
