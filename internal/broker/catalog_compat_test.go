package broker

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/blobq"
	"repro/internal/pmem"
	"repro/internal/queues"
)

// writeCatalogV1 replays the legacy single-heap catalog writer
// verbatim (the "Broker1" layout documented in catalog.go): one header
// line, then one row per topic [slotBase, shards, maxPayload, nameLen,
// name 0..3]. Brokers written by pre-heap-set builds carry exactly
// this; the tests below pin that readCatalog still accepts it.
func writeCatalogV1(h *pmem.Heap, cfg Config) {
	const tid = 0
	bytes := int64((1 + len(cfg.Topics)) * pmem.CacheLineBytes)
	reg := h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, reg, bytes)

	h.Store(tid, reg, catMagic)
	h.Store(tid, reg+pmem.WordBytes, uint64(len(cfg.Topics)))
	h.Store(tid, reg+2*pmem.WordBytes, uint64(cfg.Threads))
	h.Flush(tid, reg)
	next := 1
	for i, tc := range cfg.Topics {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		h.Store(tid, row, uint64(next))
		h.Store(tid, row+8, uint64(tc.Shards))
		h.Store(tid, row+16, uint64(tc.MaxPayload))
		h.Store(tid, row+24, uint64(len(tc.Name)))
		name := make([]byte, catNameBytes)
		copy(name, tc.Name)
		for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
			var word uint64
			for b := 0; b < 8; b++ {
				word |= uint64(name[w*8+b]) << (8 * b)
			}
			h.Store(tid, row+pmem.Addr(32+w*8), word)
		}
		h.Flush(tid, row)
		next += tc.Shards * slotsPerShard
	}
	h.Fence(tid)

	h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
	h.Persist(tid, h.RootAddr(slotAnchor))
}

// newWithV1Catalog builds a broker exactly as a pre-heap-set binary
// did: shard queues at the deterministic sequential layout on one
// heap, then the v1 catalog.
func newWithV1Catalog(t *testing.T, h *pmem.Heap, cfg Config) *Broker {
	t.Helper()
	hs := pmem.NewSetOf(h)
	locs, _, err := computeLayout(hs, cfg) // round-robin on 1 heap = v1 layout
	if err != nil {
		t.Fatal(err)
	}
	b := build(hs, cfg, locs, func(view *pmem.Heap, tc TopicConfig) *shard {
		if tc.MaxPayload == 0 {
			return &shard{fixed: queues.NewOptUnlinkedQ(view, cfg.Threads)}
		}
		return &shard{blob: blobq.New(view, blobq.Config{Threads: cfg.Threads, MaxPayload: tc.MaxPayload})}
	})
	writeCatalogV1(h, cfg)
	return b
}

// writeCatalogV2 replays the pre-ack heap-set catalog writer verbatim
// (the "Broker2" layout documented in catalog.go): a v2 header without
// the ackGroups word, topic rows without the acked bit, shard
// placement words only. Brokers written by pre-lease builds carry
// exactly this.
func writeCatalogV2(hs *pmem.HeapSet, cfg Config, locs [][]shardLoc) {
	const tid = 0
	stamp := nextSetStamp()
	for i := 1; i < hs.Len(); i++ {
		h := hs.Heap(i)
		reg := h.AllocRaw(tid, pmem.CacheLineBytes, pmem.CacheLineBytes)
		h.InitRange(tid, reg, pmem.CacheLineBytes)
		h.Store(tid, reg, stampMagic)
		h.Store(tid, reg+8, stamp)
		h.Store(tid, reg+16, uint64(i))
		h.Store(tid, reg+24, uint64(hs.Len()))
		h.Persist(tid, reg)
		h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
		h.Persist(tid, h.RootAddr(slotAnchor))
	}
	h := hs.Heap(0)
	shardTotal := 0
	for _, tl := range locs {
		shardTotal += len(tl)
	}
	placeLines := (shardTotal + pmem.WordsPerLine - 1) / pmem.WordsPerLine
	bytes := int64(1+len(cfg.Topics)+placeLines) * pmem.CacheLineBytes
	reg := h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, reg, bytes)
	h.Store(tid, reg, catMagicV2)
	h.Store(tid, reg+8, uint64(len(cfg.Topics)))
	h.Store(tid, reg+16, uint64(cfg.Threads))
	h.Store(tid, reg+24, uint64(hs.Len()))
	h.Store(tid, reg+32, stamp)
	h.Store(tid, reg+40, uint64(shardTotal))
	h.Flush(tid, reg)
	place := 0
	for i, tc := range cfg.Topics {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		h.Store(tid, row, uint64(tc.Shards))
		h.Store(tid, row+8, uint64(tc.MaxPayload))
		h.Store(tid, row+16, uint64(len(tc.Name)))
		h.Store(tid, row+24, uint64(place))
		name := make([]byte, catNameBytes)
		copy(name, tc.Name)
		for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
			var word uint64
			for b := 0; b < 8; b++ {
				word |= uint64(name[w*8+b]) << (8 * b)
			}
			h.Store(tid, row+pmem.Addr(32+w*8), word)
		}
		h.Flush(tid, row)
		place += tc.Shards
	}
	placeBase := reg + pmem.Addr((1+len(cfg.Topics))*pmem.CacheLineBytes)
	j := 0
	for _, tl := range locs {
		for _, loc := range tl {
			h.Store(tid, placeBase+pmem.Addr(j*pmem.WordBytes), packLoc(loc))
			j++
		}
	}
	for l := 0; l < placeLines; l++ {
		h.Flush(tid, placeBase+pmem.Addr(l*pmem.CacheLineBytes))
	}
	h.Fence(tid)
	h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
	h.Persist(tid, h.RootAddr(slotAnchor))
}

// TestCatalogV2Recover: a broker persisted with the legacy (pre-ack)
// heap-set catalog must still recover on a matching set — lease-free:
// no topic acked, no lease regions — with payloads intact on every
// member heap.
func TestCatalogV2Recover(t *testing.T) {
	cfg := pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4}
	hs := pmem.NewSet(2, cfg)
	bcfg := Config{Topics: twoTopics(), Threads: 2}
	locs, leaseLocs, err := computeLayout(hs, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaseLocs) != 0 {
		t.Fatalf("lease-free layout allocated %d lease regions", len(leaseLocs))
	}
	b := build(hs, bcfg, locs, func(view *pmem.Heap, tc TopicConfig) *shard {
		if tc.MaxPayload == 0 {
			return &shard{fixed: queues.NewOptUnlinkedQ(view, bcfg.Threads)}
		}
		return &shard{blob: blobq.New(view, blobq.Config{Threads: bcfg.Threads, MaxPayload: tc.MaxPayload})}
	})
	writeCatalogV2(hs, bcfg, locs)
	b.Topic("events").Publish(0, U64(77))
	b.Topic("jobs").Publish(0, blobPayload(8))
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(12)))
	hs.Restart()

	r, err := RecoverSet(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.AckGroups() != 0 {
		t.Fatalf("v2 recovery produced %d lease regions, want 0", r.AckGroups())
	}
	for _, topic := range r.Topics() {
		if topic.Acked() {
			t.Fatalf("v2 recovery marked topic %q acked", topic.Name())
		}
	}
	if _, err := r.NewGroupAcked([]string{"events"}, 1, LeaseConfig{}); err == nil {
		t.Fatal("NewGroupAcked on a v2 (lease-free) broker should fail")
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 77 {
		t.Fatalf("recovered v2 event = %v,%v", p, ok)
	}
	found := false
	for s := 0; s < r.Topic("jobs").Shards(); s++ {
		if p, ok := r.Topic("jobs").DequeueShard(0, s); ok {
			if AsU64(p[:8]) != 8 {
				t.Fatal("recovered v2 job corrupted")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("v2 job lost across recovery")
	}
}

// TestCatalogV1Recover: a broker persisted with the legacy single-heap
// catalog must still recover on a 1-heap set, payloads intact — and
// must be rejected on a multi-heap set rather than guessed at.
func TestCatalogV1Recover(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b := newWithV1Catalog(t, h, Config{Topics: twoTopics(), Threads: 2})
	b.Topic("events").Publish(0, U64(41))
	b.Topic("jobs").Publish(0, blobPayload(9))
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(11)))
	h.Restart()

	other := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	if _, err := RecoverSet(pmem.NewSetOf(h, other), 2); err == nil {
		t.Fatal("v1 catalog on a 2-heap set should be rejected")
	}

	r, err := Recover(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range twoTopics() {
		got := r.Topics()[i]
		if got.Name() != tc.Name || got.Shards() != tc.Shards || got.HeapOf(0) != 0 {
			t.Fatalf("recovered topic %d = %s/%d on heap %d, want %s/%d on heap 0",
				i, got.Name(), got.Shards(), got.HeapOf(0), tc.Name, tc.Shards)
		}
	}
	if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 41 {
		t.Fatalf("recovered v1 event = %v,%v", p, ok)
	}
	found := false
	for s := 0; s < r.Topic("jobs").Shards(); s++ {
		if p, ok := r.Topic("jobs").DequeueShard(0, s); ok {
			if AsU64(p[:8]) != 9 {
				t.Fatal("recovered v1 job corrupted")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("v1 job lost across recovery")
	}
}

// TestCatalogCorruptionErrors: a corrupted or truncated catalog must
// surface as an error from Recover, never a panic deep in the
// simulator.
func TestCatalogCorruptionErrors(t *testing.T) {
	newCrashed := func(t *testing.T) *pmem.Heap {
		h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
		b, err := New(h, Config{Topics: twoTopics(), Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		b.Topic("events").Publish(0, U64(1))
		h.CrashNow()
		h.FinalizeCrash(rand.New(rand.NewSource(3)))
		h.Restart()
		return h
	}
	expectErr := func(t *testing.T, h *pmem.Heap, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Recover panicked: %v", what, r)
			}
		}()
		if _, err := Recover(h, 2); err == nil {
			t.Fatalf("%s: Recover succeeded on a corrupted catalog", what)
		}
	}

	t.Run("bad magic", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg, 0xdead)
		expectErr(t, h, "bad magic")
	})
	t.Run("absurd topic count", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg+8, 1<<40)
		expectErr(t, h, "absurd topic count")
	})
	t.Run("absurd shard total", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg+40, 1<<40)
		expectErr(t, h, "absurd shard total")
	})
	t.Run("name length out of range", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, reg+pmem.CacheLineBytes+16, catNameBytes+1)
		expectErr(t, h, "name length")
	})
	t.Run("placement out of range", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		// First placement word: point the shard at heap 7 of a 1-heap set.
		place := reg + pmem.Addr((1+len(twoTopics()))*pmem.CacheLineBytes)
		h.Store(0, place, packLoc(shardLoc{heap: 7, base: 1}))
		expectErr(t, h, "placement heap")
	})
	t.Run("overlapping placements", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		place := reg + pmem.Addr((1+len(twoTopics()))*pmem.CacheLineBytes)
		// Make shard 1 alias shard 0's window.
		h.Store(0, place+8, h.Load(0, place))
		expectErr(t, h, "overlap")
	})
	t.Run("anchor near uint64 wraparound", func(t *testing.T) {
		// A corrupt anchor in [2^64-8, 2^64) must hit the truncation
		// error, not wrap past the bounds check into an index panic.
		h := newCrashed(t)
		h.Store(0, h.RootAddr(slotAnchor), ^uint64(0)-3)
		expectErr(t, h, "wraparound anchor")
	})
	t.Run("short catalog near heap end", func(t *testing.T) {
		h := newCrashed(t)
		// Re-anchor the catalog to the last line of the heap: the header
		// reads but every row is out of bounds; the reader must return a
		// truncation error instead of indexing past the arena.
		tail := pmem.Addr(h.Bytes()) - pmem.CacheLineBytes
		h.Store(0, tail, catMagicV2)
		h.Store(0, tail+8, 2)  // topicCount
		h.Store(0, tail+16, 2) // threads
		h.Store(0, tail+24, 1) // heapCount
		h.Store(0, tail+32, 1) // stamp
		h.Store(0, tail+40, 8) // shardTotal
		h.Store(0, h.RootAddr(slotAnchor), uint64(tail))
		expectErr(t, h, "short catalog")
		_, err := readCatalog(pmem.NewSetOf(h))
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("want truncation error, got %v", err)
		}
	})
}
