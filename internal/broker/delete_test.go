package broker

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pmem"
)

// TestDeleteTopicRoundTrip is the retirement round trip: a deleted
// topic vanishes from the data plane (typed ErrTopicDeleted on stale
// handles), its name is immediately reusable with a different shape,
// and a crash after the delete recovers the new world — old messages
// gone with their topic, everything else intact.
func TestDeleteTopicRoundTrip(t *testing.T) {
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b, err := Open(hs, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "keep", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "gone", Shards: 2, MaxPayload: 64}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		if err := b.Topic("keep").Publish(0, U64(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Topic("gone").Publish(0, blobPayload(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	handle := b.Topic("gone")
	if err := b.DeleteTopic(0, "gone"); err != nil {
		t.Fatal(err)
	}
	if b.Topic("gone") != nil {
		t.Fatal("deleted topic still visible")
	}
	if !handle.Deleted() {
		t.Fatal("stale handle does not report Deleted")
	}
	if err := handle.Publish(0, blobPayload(1)); !errors.Is(err, ErrTopicDeleted) {
		t.Fatalf("Publish on a deleted topic = %v, want ErrTopicDeleted", err)
	}
	if err := handle.PublishKey(0, []byte("k"), blobPayload(1)); !errors.Is(err, ErrTopicDeleted) {
		t.Fatalf("PublishKey on a deleted topic = %v, want ErrTopicDeleted", err)
	}
	if err := handle.PublishBatch(0, [][]byte{blobPayload(1)}); !errors.Is(err, ErrTopicDeleted) {
		t.Fatalf("PublishBatch on a deleted topic = %v, want ErrTopicDeleted", err)
	}
	if _, ok := handle.DequeueShard(0, 0); ok {
		t.Fatal("DequeueShard on a deleted topic delivered a message")
	}
	if err := b.DeleteTopic(0, "gone"); err == nil {
		t.Fatal("double DeleteTopic should fail")
	}
	// The name is free again, with a different shape; the old windows
	// feed the free list.
	if _, err := b.CreateTopic(0, TopicConfig{Name: "gone", Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Topic("gone").Publish(0, U64(31)); err != nil {
		t.Fatal(err)
	}
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(91)))
	hs.Restart()

	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg := r.Topic("gone")
	if rg == nil || rg.Shards() != 1 || rg.MaxPayload() != 8 {
		t.Fatalf("recreated topic recovered wrong: %+v", rg)
	}
	got := map[uint64]bool{}
	for {
		p, ok := rg.DequeueShard(0, 0)
		if !ok {
			break
		}
		got[AsU64(p)] = true
	}
	if len(got) != 1 || !got[31] {
		t.Fatalf("recreated topic recovered %v, want {31} (pre-delete messages must not resurface)", got)
	}
	kept := map[uint64]bool{}
	for s := 0; s < 2; s++ {
		for {
			p, ok := r.Topic("keep").DequeueShard(0, s)
			if !ok {
				break
			}
			kept[AsU64(p)] = true
		}
	}
	if len(kept) != 4 {
		t.Fatalf("untouched topic recovered %d messages, want 4", len(kept))
	}
}

// TestDeleteTopicCrashBeforeAnchor pins the delete protocol's crash
// atomicity: a crash between the tombstone's append fence and its
// anchor stamp recovers as "the topic still exists", messages and all —
// and a committed delete never resurrects across further crashes.
func TestDeleteTopicCrashBeforeAnchor(t *testing.T) {
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b, err := Open(hs, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "victim", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	b.Topic("victim").Publish(0, U64(41))
	b.Topic("victim").Publish(0, U64(42))

	testHookAfterAppend = func() { hs.CrashNow() }
	crashed := pmem.Protect(func() { b.DeleteTopic(0, "victim") })
	testHookAfterAppend = nil
	if !crashed {
		t.Fatal("DeleteTopic survived a crash armed between append and anchor")
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(92)))
	hs.Restart()

	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Topic("victim") == nil {
		t.Fatal("a delete that crashed before its anchor stamp recovered as committed")
	}
	got := map[uint64]bool{}
	for s := 0; s < r.Topic("victim").Shards(); s++ {
		for {
			p, ok := r.Topic("victim").DequeueShard(0, s)
			if !ok {
				break
			}
			if got[AsU64(p)] {
				t.Fatalf("message %d recovered twice", AsU64(p))
			}
			got[AsU64(p)] = true
		}
	}
	if !got[41] || !got[42] || len(got) != 2 {
		t.Fatalf("surviving topic recovered %v, want {41, 42}", got)
	}
	// The retry appends over the torn tombstone and commits; the delete
	// then survives any further crash — no resurrected topic.
	if err := r.DeleteTopic(0, "victim"); err != nil {
		t.Fatal(err)
	}
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(93)))
	hs.Restart()
	r2, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Topic("victim") != nil {
		t.Fatal("a committed delete resurrected across a crash")
	}
}

// TestDeleteTopicWindowReuse pins the acceptance criterion: a
// create/delete storm over cycles of the same topic shape reaches a
// steady-state high-water mark — the retired windows are provably
// reused, the footprint stops growing after the first cycle, and the
// rebuilt free list after a crash matches the live one exactly (the
// free list is durable by derivation). The deliberately tiny log also
// forces the storm through repeated compactions.
func TestDeleteTopicWindowReuse(t *testing.T) {
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	b, err := Open(hs, Options{Threads: 1, CatalogLines: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "base", Shards: 1}); err != nil {
		t.Fatal(err)
	}
	b.Topic("base").Publish(0, U64(7))

	const cycles = 10
	// Two shards over two heaps: the same shape claims the same windows
	// every cycle once the free list is primed.
	shape := TopicConfig{Name: "churn", Shards: 2}
	var used0, free0 int
	for i := 0; i < cycles; i++ {
		if _, err := b.CreateTopic(0, shape); err != nil {
			t.Fatalf("cycle %d create: %v", i, err)
		}
		for m := uint64(0); m < 4; m++ {
			b.Topic("churn").Publish(0, U64(uint64(i)<<8|m))
		}
		if err := b.DeleteTopic(0, "churn"); err != nil {
			t.Fatalf("cycle %d delete: %v", i, err)
		}
		used, free := b.SlotFootprint()
		if i == 0 {
			used0, free0 = used, free
			if free != 2*slotsPerShard {
				t.Fatalf("cycle 0 freed %d slots, want %d (two shard windows)", free, 2*slotsPerShard)
			}
			continue
		}
		if used != used0 || free != free0 {
			t.Fatalf("cycle %d footprint (used %d, free %d) drifted from steady state (used %d, free %d): windows not reused",
				i, used, free, used0, free0)
		}
	}
	if gen := b.CatalogGeneration(); gen == 0 {
		t.Fatal("a 10-cycle storm on a 24-line log never compacted")
	}
	// A same-shape create consumes the free list completely: no fresh
	// windows, no mark movement.
	if _, err := b.CreateTopic(0, shape); err != nil {
		t.Fatal(err)
	}
	if used, free := b.SlotFootprint(); used != used0 || free != 0 {
		t.Fatalf("steady-state create left (used %d, free %d), want (used %d, free 0)", used, free, used0)
	}
	if err := b.DeleteTopic(0, "churn"); err != nil {
		t.Fatal(err)
	}

	// The free list is durable by derivation: recovery's allocator
	// simulation rebuilds the same footprint.
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(94)))
	hs.Restart()
	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if used, free := r.SlotFootprint(); used != used0 || free != free0 {
		t.Fatalf("recovered footprint (used %d, free %d), want (used %d, free %d)", used, free, used0, free0)
	}
	if p, ok := r.Topic("base").DequeueShard(0, 0); !ok || AsU64(p) != 7 {
		t.Fatalf("base message lost in the storm: %v,%v", p, ok)
	}
	// And the recovered free list actually serves allocations.
	if _, err := r.CreateTopic(0, shape); err != nil {
		t.Fatal(err)
	}
	if used, free := r.SlotFootprint(); used != used0 || free != 0 {
		t.Fatalf("post-recovery create left (used %d, free %d), want (used %d, free 0)", used, free, used0)
	}
}

// TestDeleteTopicFenceAccounting pins the retirement cost model: the
// common DeleteTopic path is exactly two blocking persists (tombstone
// append, commit stamp — under the documented bound of three), and the
// cost is independent of the broker's topic count and of the victim's
// shard count.
func TestDeleteTopicFenceAccounting(t *testing.T) {
	cfg := pmem.Config{Bytes: 256 << 20, MaxThreads: 2}
	h := pmem.New(cfg)
	b, err := Open(pmem.NewSetOf(h), Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, shards int) {
		if _, err := b.CreateTopic(0, TopicConfig{Name: name, Shards: shards}); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(name string) uint64 {
		before := h.TotalStats().Fences
		if err := b.DeleteTopic(0, name); err != nil {
			t.Fatal(err)
		}
		return h.TotalStats().Fences - before
	}
	mk("d-first", 1)
	mk("d-wide", 4)
	first := measure("d-first")
	if first > 3 {
		t.Fatalf("DeleteTopic = %d fences, documented bound is 3", first)
	}
	if first != 2 {
		t.Fatalf("DeleteTopic common path = %d fences, want exactly 2 (tombstone, commit stamp)", first)
	}
	if wide := measure("d-wide"); wide != first {
		t.Fatalf("DeleteTopic cost depends on shard count: %d fences for 4 shards, %d for 1", wide, first)
	}
	for i := 0; i < 20; i++ {
		mk(fmt.Sprintf("filler-%d", i), 1)
	}
	mk("d-late", 1)
	if late := measure("d-late"); late != first {
		t.Fatalf("DeleteTopic cost grew with the topic count: %d fences on a 21-topic broker, %d on a 2-topic one",
			late, first)
	}
}

// TestCompactCatalogFenceAccounting pins the compaction cost model:
// in steady state (the spare region already exists, so generations
// ping-pong) one fence covers the whole new generation plus one anchor
// persist — independent of how many dead records are dropped.
func TestCompactCatalogFenceAccounting(t *testing.T) {
	scenario := func(deleted int) uint64 {
		h := pmem.New(pmem.Config{Bytes: 256 << 20, MaxThreads: 2})
		b, err := Open(pmem.NewSetOf(h), Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := b.CreateTopic(0, TopicConfig{Name: fmt.Sprintf("live-%d", i), Shards: 1}); err != nil {
				t.Fatal(err)
			}
		}
		// Prime the spare region: the first compaction ever pays a
		// one-time allocation; every later one ping-pongs.
		if err := b.CompactCatalog(0, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < deleted; i++ {
			name := fmt.Sprintf("dead-%d", i)
			if _, err := b.CreateTopic(0, TopicConfig{Name: name, Shards: 1}); err != nil {
				t.Fatal(err)
			}
			if err := b.DeleteTopic(0, name); err != nil {
				t.Fatal(err)
			}
		}
		before := h.TotalStats().Fences
		if err := b.CompactCatalog(0, 0); err != nil {
			t.Fatal(err)
		}
		return h.TotalStats().Fences - before
	}
	few, many := scenario(2), scenario(8)
	if few != many {
		t.Fatalf("CompactCatalog cost depends on dead record count: %d fences dropping 2, %d dropping 8", few, many)
	}
	if few != 2 {
		t.Fatalf("CompactCatalog = %d fences, want exactly 2 (generation fence, anchor flip)", few)
	}
}

// TestCompactCatalogCrashBeforeFlip pins the generation flip's crash
// atomicity: a crash between the new generation's fence and the anchor
// flip recovers the old generation intact — same topics, same
// tombstones, same messages — and a completed flip survives crashes.
func TestCompactCatalogCrashBeforeFlip(t *testing.T) {
	hs := pmem.NewSetOf(pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 2}))
	b, err := Open(hs, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "a", Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "b", Shards: 1}); err != nil {
		t.Fatal(err)
	}
	b.Topic("a").Publish(0, U64(51))
	if err := b.DeleteTopic(0, "b"); err != nil {
		t.Fatal(err)
	}

	testHookBeforeFlip = func() { hs.CrashNow() }
	crashed := pmem.Protect(func() { b.CompactCatalog(0, 0) })
	testHookBeforeFlip = nil
	if !crashed {
		t.Fatal("CompactCatalog survived a crash armed before the anchor flip")
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(95)))
	hs.Restart()

	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := r.CatalogGeneration(); g != 0 {
		t.Fatalf("crash before the flip recovered generation %d, want 0 (the old one)", g)
	}
	if r.Topic("a") == nil || r.Topic("b") != nil {
		t.Fatal("old generation recovered with the wrong topic set")
	}
	if p, ok := r.Topic("a").DequeueShard(0, 0); !ok || AsU64(p) != 51 {
		t.Fatalf("message lost across the aborted compaction: %v,%v", p, ok)
	}
	r.Topic("a").Publish(0, U64(52))
	// The retried compaction commits; the new generation then survives
	// crashes and stays administrable.
	if err := r.CompactCatalog(0, 0); err != nil {
		t.Fatal(err)
	}
	if g := r.CatalogGeneration(); g != 1 {
		t.Fatalf("generation after compaction = %d, want 1", g)
	}
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(96)))
	hs.Restart()
	r2, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := r2.CatalogGeneration(); g != 1 {
		t.Fatalf("recovered generation = %d, want 1", g)
	}
	if p, ok := r2.Topic("a").DequeueShard(0, 0); !ok || AsU64(p) != 52 {
		t.Fatalf("message lost across the committed compaction: %v,%v", p, ok)
	}
	if _, err := r2.CreateTopic(0, TopicConfig{Name: "c", Shards: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactCatalogResize: compaction is the log-full escape hatch — a
// log that refused a create for want of space compacts into a larger
// generation and takes it, durably.
func TestCompactCatalogResize(t *testing.T) {
	hs := pmem.NewSetOf(pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 2}))
	// Room for exactly one 1-shard topic record (3 lines).
	b, err := Open(hs, Options{Threads: 2, CatalogLines: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "only", Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "more", Shards: 1}); err == nil {
		t.Fatal("CreateTopic on a full log should fail")
	}
	if err := b.CompactCatalog(0, 2); err == nil {
		t.Fatal("resizing below the live record space should fail")
	}
	if err := b.CompactCatalog(0, 12); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "more", Shards: 1}); err != nil {
		t.Fatalf("CreateTopic after resize: %v", err)
	}
	b.Topic("more").Publish(0, U64(61))
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(97)))
	hs.Restart()
	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Topic("only") == nil || r.Topic("more") == nil {
		t.Fatal("resized catalog lost a topic")
	}
	if p, ok := r.Topic("more").DequeueShard(0, 0); !ok || AsU64(p) != 61 {
		t.Fatalf("post-resize message = %v,%v", p, ok)
	}
	// The adopted capacity persists: more creates fit.
	if _, err := r.CreateTopic(0, TopicConfig{Name: "third", Shards: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestErrLeaseCapacity pins the capacity-exceeded refusal as a typed,
// consistently phrased error on both binding paths: NewGroupAcked at
// construction and Subscribe afterwards.
func TestErrLeaseCapacity(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 3})
	b, err := Open(pmem.NewSetOf(h), Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "a", Shards: 2, Acked: true}); err != nil {
		t.Fatal(err)
	}
	tight, err := b.CreateAckGroup(0, AckGroupConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "late", Shards: 1, Acked: true}); err != nil {
		t.Fatal(err)
	}
	clk := &logicalClock{}
	_, bindErr := b.NewGroupAcked([]string{"a", "late"}, 1, LeaseConfig{Region: tight, TTL: 10, Now: clk.Now})
	if !errors.Is(bindErr, ErrLeaseCapacity) {
		t.Fatalf("bind past capacity = %v, want ErrLeaseCapacity", bindErr)
	}
	g, err := b.NewGroupAcked([]string{"a"}, 1, LeaseConfig{Region: tight, TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	subErr := g.Subscribe(0, "late")
	if !errors.Is(subErr, ErrLeaseCapacity) {
		t.Fatalf("Subscribe past capacity = %v, want ErrLeaseCapacity", subErr)
	}
	// Both paths phrase the same condition identically, region index
	// included.
	want := fmt.Sprintf("exceeds lease region %d's capacity 2", tight)
	if !strings.Contains(bindErr.Error(), want) || !strings.Contains(subErr.Error(), want) {
		t.Fatalf("inconsistent capacity diagnostics:\n  bind:      %v\n  subscribe: %v", bindErr, subErr)
	}
}

// TestBrokerCrashFuzzTopicChurn is the topic-churn fuzz tier: while
// producers and a consumer group hammer the static topics, an
// administrator churns topics — create, publish, drain a little,
// delete — through a deliberately small catalog log (so the storm runs
// through compactions too), while another thread publishes into
// whatever churn topic is currently alive, racing every delete. The
// crash lands anywhere, including mid-delete and mid-compaction. The
// audit: recovery succeeds (replay's allocator simulation rejects any
// window overlap), no topic whose delete returned resurfaces, and
// every acknowledged publish to a surviving topic is delivered or
// recovered exactly once, in per-publisher order.
func TestBrokerCrashFuzzTopicChurn(t *testing.T) {
	seeds := []int64{51, 52, 53}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { topicChurnRound(t, seed) })
	}
}

func topicChurnRound(t *testing.T, seed int64) {
	const (
		producers   = 2
		consumers   = 2
		perProducer = 2000
		heaps       = 2
		churnTid    = producers + consumers     // tid 4: the administrator
		raceTid     = producers + consumers + 1 // tid 5: publishes into live churn topics
		threads     = producers + consumers + 2
		maxCycles   = 10
	)
	hs := pmem.NewSet(heaps, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	// Small log: ~4 churn cycles fill it, so the storm exercises the
	// auto-compaction path under fire.
	b, err := Open(hs, Options{Threads: threads, CatalogLines: 96})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range twoTopics() {
		if _, err := b.CreateTopic(0, tc); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, consumers)
	if err != nil {
		t.Fatal(err)
	}
	crashRng := rand.New(rand.NewSource(seed))
	hs.Heap(crashRng.Intn(heaps)).ScheduleCrashAtAccess((20_000 + int64(crashRng.Intn(120_000))) / int64(heaps))

	// Per churn cycle: lifecycle flags and the acknowledged ids, the
	// raced publisher's under raceMu (it appends concurrently).
	type churnCycle struct {
		created        bool
		deleteAttempt  bool
		deleteReturned bool
		acked          []uint64
		raceAcked      []uint64
	}
	cycles := make([]*churnCycle, maxCycles)
	for i := range cycles {
		cycles[i] = &churnCycle{}
	}
	var raceMu sync.Mutex
	var liveCycle atomic.Int64 // index of the currently alive churn topic, -1 when none
	liveCycle.Store(-1)

	acked := make([][]uint64, producers)
	delivered := make([]map[uint64]ShardRef, consumers)
	churnDelivered := map[uint64]bool{}
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			start.Wait()
			rng := rand.New(rand.NewSource(seed*733 + int64(p)))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			for m := uint64(1); m <= perProducer; {
				runtime.Gosched()
				id := uint64(p+1)<<32 | m
				switch rng.Intn(3) {
				case 0:
					if pmem.Protect(func() { events.Publish(p, U64(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					m++
				default:
					var batch [][]byte
					var ids []uint64
					for len(batch) < 6 && m <= perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, blobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return
					}
					acked[p] = append(acked[p], ids...)
				}
			}
		}(p)
	}

	// The administrator: one full lifecycle per cycle — create, publish,
	// drain a prefix, occasionally compact, then (usually) delete.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer liveCycle.Store(-1)
		start.Wait()
		rng := rand.New(rand.NewSource(seed * 919))
		for d := 0; d < maxCycles; d++ {
			runtime.Gosched()
			st := cycles[d]
			name := fmt.Sprintf("churn-%d", d)
			tc := TopicConfig{Name: name, Shards: 1 + rng.Intn(2)}
			if rng.Intn(2) == 0 {
				tc.MaxPayload = 100
			}
			var cerr error
			if pmem.Protect(func() { _, cerr = b.CreateTopic(churnTid, tc) }) {
				return
			}
			if cerr != nil {
				t.Errorf("CreateTopic(%s): %v", name, cerr)
				return
			}
			st.created = true
			liveCycle.Store(int64(d))
			topic := b.Topic(name)
			n := 15 + rng.Intn(30)
			for m := 1; m <= n; m++ {
				id := uint64(300+d)<<32 | uint64(m)
				payload := U64(id)
				if tc.MaxPayload != 0 {
					payload = blobPayload(id)
				}
				if pmem.Protect(func() { topic.Publish(churnTid, payload) }) {
					return
				}
				st.acked = append(st.acked, id)
			}
			// Drain a prefix so the audit sees delivered, dropped and
			// recovered populations.
			for s := 0; s < topic.Shards(); s++ {
				for k := 0; k < 4; k++ {
					var p []byte
					var ok bool
					if pmem.Protect(func() { p, ok = topic.DequeueShard(churnTid, s) }) {
						return
					}
					if !ok {
						break
					}
					churnDelivered[AsU64(p[:8])] = true
				}
			}
			if rng.Intn(3) == 0 {
				var kerr error
				if pmem.Protect(func() { kerr = b.CompactCatalog(churnTid, 0) }) {
					return
				}
				if kerr != nil {
					t.Errorf("CompactCatalog: %v", kerr)
					return
				}
			}
			if rng.Intn(4) == 0 {
				continue // let this one live
			}
			liveCycle.Store(-1)
			st.deleteAttempt = true
			var derr error
			if pmem.Protect(func() { derr = b.DeleteTopic(churnTid, name) }) {
				return // crash inside the delete protocol: existence is ambiguous
			}
			if derr != nil {
				t.Errorf("DeleteTopic(%s): %v", name, derr)
				return
			}
			st.deleteReturned = true
		}
	}()

	// The racer: publish into whatever churn topic is alive right now,
	// racing the administrator's deletes — a publish that loses the race
	// observes ErrTopicDeleted and is simply not acknowledged.
	wg.Add(1)
	raceDone := make(chan struct{})
	go func() {
		defer wg.Done()
		start.Wait()
		seq := uint64(0)
		for {
			select {
			case <-raceDone:
				return
			default:
			}
			runtime.Gosched()
			d := liveCycle.Load()
			if d < 0 {
				continue
			}
			topic := b.Topic(fmt.Sprintf("churn-%d", d))
			if topic == nil {
				continue
			}
			seq++
			id := uint64(500+d)<<32 | seq
			var perr error
			payload := U64(id)
			if topic.MaxPayload() != 8 {
				payload = blobPayload(id)
			}
			if pmem.Protect(func() { perr = topic.Publish(raceTid, payload) }) {
				return
			}
			if perr == nil {
				raceMu.Lock()
				cycles[d].raceAcked = append(cycles[d].raceAcked, id)
				raceMu.Unlock()
			} else if !errors.Is(perr, ErrTopicDeleted) {
				t.Errorf("racer Publish: %v", perr)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		delivered[c] = map[uint64]ShardRef{}
		go func(c int) {
			defer wg.Done()
			start.Wait()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				runtime.Gosched()
				var ms []Message
				if pmem.Protect(func() { ms = cons.PollBatch(tid, 8) }) {
					return
				}
				if len(ms) > 0 {
					for _, m := range ms {
						delivered[c][AsU64(m.Payload[:8])] = ShardRef{Topic: m.Topic, Shard: m.Shard}
					}
					idle = false
					continue
				}
				select {
				case <-done:
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	start.Done()
	producersDone.Wait()
	close(raceDone)
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow()
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(seed * 37)))
	hs.Restart()

	// Recovery replays the catalog across whatever generations and
	// tombstones the churn left; its allocator simulation is itself the
	// no-window-overlap audit.
	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ambiguous := 0
	for d, st := range cycles {
		name := fmt.Sprintf("churn-%d", d)
		exists := r.Topic(name) != nil
		switch {
		case st.deleteReturned && exists:
			t.Fatalf("topic %s resurrected: DeleteTopic returned, yet it recovered", name)
		case st.created && !st.deleteAttempt && !exists:
			t.Fatalf("topic %s lost: created and never deleted, yet it did not recover", name)
		case st.deleteAttempt && !st.deleteReturned:
			ambiguous++ // crash mid-delete: either outcome is legal
		}
	}

	seen := map[uint64]string{}
	for c := range delivered {
		for id := range delivered[c] {
			if prev, dup := seen[id]; dup {
				t.Fatalf("message %#x delivered twice (%s)", id, prev)
			}
			seen[id] = "delivered"
		}
	}
	for id := range churnDelivered {
		if prev, dup := seen[id]; dup {
			t.Fatalf("message %#x delivered twice (%s and churn drain)", id, prev)
		}
		seen[id] = "churn-delivered"
	}
	for _, topic := range r.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			lastPerProducer := map[uint64]uint64{}
			for {
				p, ok := topic.DequeueShard(0, s)
				if !ok {
					break
				}
				id := AsU64(p[:8])
				if len(p) > 8 && !bytes.Equal(p, blobPayload(id)) {
					t.Fatalf("recovered payload for %#x corrupted", id)
				}
				if prev, dup := seen[id]; dup {
					t.Fatalf("message %#x both %s and recovered", id, prev)
				}
				seen[id] = "recovered"
				prod, m := id>>32, id&0xffffffff
				if last := lastPerProducer[prod]; m <= last {
					t.Fatalf("shard %s/%d: publisher %d out of order (%d after %d)",
						topic.Name(), s, prod, m, last)
				}
				lastPerProducer[prod] = m
			}
		}
	}
	// Exactly-once is audited over the surviving topics: a deleted
	// topic's messages were deliberately dropped with it, so its acked
	// ids are exempt from the loss audit (their *deliveries* still went
	// through the duplicate check above).
	lost, totalAcked := 0, 0
	audit := func(ids []uint64) {
		totalAcked += len(ids)
		for _, id := range ids {
			if _, ok := seen[id]; !ok {
				lost++
			}
		}
	}
	for p := range acked {
		audit(acked[p])
	}
	churnAudited := 0
	for d, st := range cycles {
		if r.Topic(fmt.Sprintf("churn-%d", d)) == nil {
			continue
		}
		churnAudited++
		audit(st.acked)
		audit(st.raceAcked)
	}
	t.Logf("seed %d: acked %d (auditing %d surviving churn topics, %d ambiguous deletes), audited %d, in-flight losses %d",
		seed, totalAcked, churnAudited, ambiguous, len(seen), lost)
	// Allowance: one unacknowledged poll window per main consumer (8)
	// plus the churn drain's in-flight window.
	if allowance := consumers*8 + 8; lost > allowance {
		t.Fatalf("%d acknowledged messages lost (allowance %d)", lost, allowance)
	}
}
