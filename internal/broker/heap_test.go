package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dheap"
	"repro/internal/pmem"
)

// heapTestBroker opens a fresh one-heap broker with one topic of each
// kind: "fifo" (2 shards), "delay" and "prio" (1 shard each,
// 24-byte payloads so a dheap entry is a single cache line).
func heapTestBroker(t *testing.T, threads int) (*pmem.HeapSet, *Broker) {
	t.Helper()
	hs := pmem.NewSet(1, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := Open(hs, Options{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []TopicConfig{
		{Name: "fifo", Shards: 2, MaxPayload: 24},
		{Name: "delay", Shards: 1, MaxPayload: 24, Kind: KindDelay},
		{Name: "prio", Shards: 1, MaxPayload: 24, Kind: KindPriority},
	} {
		if _, err := b.CreateTopic(0, tc); err != nil {
			t.Fatalf("create %q: %v", tc.Name, err)
		}
	}
	return hs, b
}

// heapPayload is the 24-byte audit payload of the heap-topic tests:
// id, key, and an integrity word binding the two.
func heapPayload(id, key uint64) []byte {
	p := make([]byte, 24)
	copy(p, U64(id))
	copy(p[8:], U64(key))
	copy(p[16:], U64(id^key^0xd11a))
	return p
}

func decodeHeapPayload(t *testing.T, p []byte) (id, key uint64) {
	t.Helper()
	if len(p) != 24 {
		t.Fatalf("heap payload length %d, want 24", len(p))
	}
	id, key = AsU64(p[:8]), AsU64(p[8:16])
	if AsU64(p[16:]) != id^key^0xd11a {
		t.Fatalf("heap payload for %#x corrupted", id)
	}
	return id, key
}

// TestHeapTopicKindMismatch pins the typed-refusal contract in both
// directions: every FIFO verb refuses a heap topic and every heap verb
// refuses a FIFO topic with an error satisfying
// errors.Is(err, ErrWrongTopicKind), in the uniform diagnostic shape.
func TestHeapTopicKindMismatch(t *testing.T) {
	_, b := heapTestBroker(t, 2)
	fifo, delay, prio := b.Topic("fifo"), b.Topic("delay"), b.Topic("prio")
	p := heapPayload(1, 1)

	wantKindErr := func(what string, err error) {
		t.Helper()
		if !errors.Is(err, ErrWrongTopicKind) {
			t.Fatalf("%s: got %v, want ErrWrongTopicKind", what, err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "on topic") || !strings.Contains(msg, "want a") {
			t.Fatalf("%s: diagnostic %q misses the uniform shape", what, msg)
		}
	}

	// FIFO verbs on heap topics.
	wantKindErr("Publish/delay", delay.Publish(0, p))
	wantKindErr("PublishKey/delay", delay.PublishKey(0, U64(1), p))
	wantKindErr("PublishBatch/prio", prio.PublishBatch(0, [][]byte{p}))
	_, err := b.NewGroup([]string{"fifo", "delay"}, 1)
	wantKindErr("NewGroup/delay", err)
	if _, ok := delay.DequeueShard(0, 0); ok {
		t.Fatal("DequeueShard delivered from a delay topic")
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("NewPublisher on a delay topic did not panic")
			}
		}()
		delay.NewPublisher(0, PublisherConfig{})
	}()

	// Heap verbs on FIFO (and cross-heap-kind) topics.
	wantKindErr("PublishAt/fifo", fifo.PublishAt(0, p, 1))
	wantKindErr("PublishAt/prio", prio.PublishAt(0, p, 1))
	wantKindErr("PublishPriority/fifo", fifo.PublishPriority(0, p, 1))
	wantKindErr("PublishPriority/delay", delay.PublishPriority(0, p, 1))
	wantKindErr("NackDelayed/fifo", fifo.NackDelayed(0, p, 1, 1))
	wantKindErr("NackDelayed/prio", prio.NackDelayed(0, p, 1, 1))
	_, _, err = fifo.DequeueReady(0, 1)
	wantKindErr("DequeueReady/fifo", err)
	_, err = fifo.DequeueReadyBatch(0, 1, 8)
	wantKindErr("DequeueReadyBatch/fifo", err)
	// Both heap kinds accept this verb, so the refusal names both.
	if !strings.Contains(err.Error(), "want a delay or priority topic") {
		t.Fatalf("DequeueReadyBatch/fifo diagnostic %q does not name both heap kinds", err)
	}
	wantKindErr("Broker.PublishAt/fifo", b.PublishAt(0, "fifo", p, 1))
	wantKindErr("Broker.PublishPriority/fifo", b.PublishPriority(0, "fifo", p, 1))

	// Config validation: heap kinds are single-shard, never acked.
	if _, err := b.CreateTopic(0, TopicConfig{Name: "bad", Kind: KindDelay, Shards: 2}); err == nil {
		t.Fatal("multi-shard delay topic accepted")
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "bad", Kind: KindPriority, Shards: 1, Acked: true}); err == nil {
		t.Fatal("acked priority topic accepted")
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "bad", Kind: TopicKind(7), Shards: 1}); err == nil {
		t.Fatal("unknown topic kind accepted")
	}

	// Heap-topic deletion is a documented follow-on, refused typed-ly.
	if err := b.DeleteTopic(0, "delay"); err == nil ||
		!strings.Contains(err.Error(), "not supported") {
		t.Fatalf("DeleteTopic on a delay topic: %v", err)
	}

	// Arena exhaustion surfaces dheap.ErrFull through the wrap.
	full := delay
	var fullErr error
	for i := uint64(0); i < 2048; i++ {
		if fullErr = full.PublishAt(1, heapPayload(i, 1), 1); fullErr != nil {
			break
		}
	}
	if !errors.Is(fullErr, dheap.ErrFull) {
		t.Fatalf("arena exhaustion: got %v, want dheap.ErrFull", fullErr)
	}
}

// TestHeapTopicDelayPriority pins the delivery semantics: a delay
// topic gates on deadline <= now and delivers in deadline order
// (equal deadlines in publish order); a priority topic is always
// ready and delivers lowest rank first; NackDelayed reschedules.
func TestHeapTopicDelayPriority(t *testing.T) {
	_, b := heapTestBroker(t, 2)
	delay, prio := b.Topic("delay"), b.Topic("prio")

	// ids 1..4 at deadlines 50, 10, 30, 10: delivery 2, 4, 3, 1.
	deadlines := []uint64{50, 10, 30, 10}
	for i, d := range deadlines {
		if err := delay.PublishAt(0, heapPayload(uint64(i+1), d), d); err != nil {
			t.Fatal(err)
		}
	}
	if d := delay.HeapDepth(); d != 4 {
		t.Fatalf("HeapDepth %d, want 4", d)
	}
	if r := delay.ReadyDepth(9); r != 0 {
		t.Fatalf("ReadyDepth(9) %d, want 0", r)
	}
	if r := delay.ReadyDepth(30); r != 3 {
		t.Fatalf("ReadyDepth(30) %d, want 3", r)
	}
	if k, ok := delay.MinKey(); !ok || k != 10 {
		t.Fatalf("MinKey %d,%v, want 10,true", k, ok)
	}
	if _, ok, err := delay.DequeueReady(0, 9); err != nil || ok {
		t.Fatalf("DequeueReady(9) delivered early: %v %v", ok, err)
	}
	var order []uint64
	for _, now := range []uint64{10, 10, 30, 50} {
		p, ok, err := delay.DequeueReady(0, now)
		if err != nil || !ok {
			t.Fatalf("DequeueReady(%d): %v %v", now, ok, err)
		}
		id, key := decodeHeapPayload(t, p)
		if key > now {
			t.Fatalf("message %d with deadline %d delivered at now=%d", id, key, now)
		}
		order = append(order, id)
	}
	if fmt.Sprint(order) != "[2 4 3 1]" {
		t.Fatalf("delay delivery order %v, want [2 4 3 1]", order)
	}
	if _, ok, _ := delay.DequeueReady(0, ^uint64(0)); ok {
		t.Fatal("drained delay topic still delivers")
	}

	// NackDelayed re-enqueues at now+delay.
	if err := delay.PublishAt(0, heapPayload(9, 100), 100); err != nil {
		t.Fatal(err)
	}
	p, _, _ := delay.DequeueReady(0, 100)
	if err := delay.NackDelayed(0, p, 100, 40); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := delay.DequeueReady(0, 139); ok {
		t.Fatal("nacked message redelivered before its backoff deadline")
	}
	if p, ok, _ := delay.DequeueReady(0, 140); !ok {
		t.Fatal("nacked message never redelivered")
	} else if id, _ := decodeHeapPayload(t, p); id != 9 {
		t.Fatalf("nack redelivered id %d, want 9", id)
	}

	// A huge backoff saturates at the max deadline instead of wrapping
	// uint64 to "ready now".
	if err := delay.NackDelayed(0, heapPayload(11, 0), 100, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := delay.DequeueReady(0, ^uint64(0)-1); ok {
		t.Fatal("wrapped nack deadline delivered early")
	}
	if p, ok, _ := delay.DequeueReady(0, ^uint64(0)); !ok {
		t.Fatal("saturated nack never deliverable")
	} else if id, _ := decodeHeapPayload(t, p); id != 11 {
		t.Fatalf("saturated nack delivered id %d, want 11", id)
	}

	// Priority: shuffled ranks come out sorted, equal ranks FIFO.
	ranks := []uint64{7, 3, 9, 3, 1}
	var batch [][]byte
	var keys []uint64
	for i, r := range ranks {
		batch = append(batch, heapPayload(uint64(i+1), r))
		keys = append(keys, r)
	}
	if err := prio.PublishPriorityBatch(1, batch, keys); err != nil {
		t.Fatal(err)
	}
	got, err := prio.DequeueReadyBatch(1, 0, 16) // now is ignored on priority topics
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	lastKey := uint64(0)
	for _, p := range got {
		id, key := decodeHeapPayload(t, p)
		if key < lastKey {
			t.Fatalf("priority order violated: rank %d after %d", key, lastKey)
		}
		lastKey = key
		ids = append(ids, id)
	}
	if fmt.Sprint(ids) != "[5 2 4 1 3]" {
		t.Fatalf("priority delivery order %v, want [5 2 4 1 3]", ids)
	}
}

// TestHeapTopicFenceAccounting pins the heap-topic cost model at the
// broker API: a publish batch of any size is exactly one fence (and
// 7 NTStores per single-line entry), a non-empty dequeue batch is one
// fence plus one NTStore per message, and gauges and empty dequeues
// persist nothing.
func TestHeapTopicFenceAccounting(t *testing.T) {
	hs, b := heapTestBroker(t, 2)
	delay := b.Topic("delay")
	const n = 64

	var payloads [][]byte
	var deadlines []uint64
	for i := uint64(0); i < n; i++ {
		payloads = append(payloads, heapPayload(i, i+1))
		deadlines = append(deadlines, i+1)
	}
	d := hs.DeltaOf(0)
	if err := delay.PublishAtBatch(0, payloads, deadlines); err != nil {
		t.Fatal(err)
	}
	if s := d.Delta(); s.Fences != 1 || s.NTStores != 7*n || s.Flushes != 0 {
		t.Fatalf("publish batch of %d: %d fences, %d NTStores, %d flushes; want 1, %d, 0",
			n, s.Fences, s.NTStores, s.Flushes, 7*n)
	}

	d = hs.DeltaOf(0)
	if err := delay.PublishAt(0, heapPayload(99, 1), 1); err != nil {
		t.Fatal(err)
	}
	if s := d.Delta(); s.Fences != 1 || s.NTStores != 7 {
		t.Fatalf("single publish: %d fences, %d NTStores; want 1, 7", s.Fences, s.NTStores)
	}

	// Gauges and empty dequeues: zero persists.
	d = hs.DeltaOf(1)
	delay.HeapDepth()
	delay.ReadyDepth(10)
	delay.MinKey()
	if _, err := delay.DequeueReadyBatch(1, 0, 16); err != nil {
		t.Fatal(err)
	}
	if s := d.Delta(); s.Fences != 0 || s.NTStores != 0 || s.Flushes != 0 {
		t.Fatalf("gauges/empty dequeue persisted: %+v", s)
	}

	d = hs.DeltaOf(1)
	got, err := delay.DequeueReadyBatch(1, ^uint64(0), n)
	if err != nil || len(got) != n {
		t.Fatalf("dequeue batch: %d messages, err %v", len(got), err)
	}
	if s := d.Delta(); s.Fences != 1 || s.NTStores != n {
		t.Fatalf("dequeue batch of %d: %d fences, %d NTStores; want 1, %d",
			n, s.Fences, s.NTStores, n)
	}
}

// TestHeapTopicRecovery crashes a broker holding undelivered delay and
// priority backlogs and checks the recovered topics: kinds and gating
// intact, exactly the undelivered messages back, delivered ones gone,
// and the seq counter resumed (a new equal-key publish delivers after
// every recovered equal-key message, not before).
func TestHeapTopicRecovery(t *testing.T) {
	hs, b := heapTestBroker(t, 2)
	delay, prio := b.Topic("delay"), b.Topic("prio")

	live := map[uint64]uint64{} // id -> key
	for i := uint64(1); i <= 40; i++ {
		key := i % 7 // several messages per deadline: the seq tiebreak matters
		if err := delay.PublishAt(0, heapPayload(i, key), key); err != nil {
			t.Fatal(err)
		}
		live[i] = key
	}
	for i := uint64(100); i < 120; i++ {
		key := i % 5
		if err := prio.PublishPriority(1, heapPayload(i, key), key); err != nil {
			t.Fatal(err)
		}
		live[i] = key
	}
	// Deliver some of each before the crash; delivered must not return.
	for _, p := range func() [][]byte {
		ps, _ := delay.DequeueReadyBatch(1, 3, 10)
		return ps
	}() {
		id, _ := decodeHeapPayload(t, p)
		delete(live, id)
	}
	for _, p := range func() [][]byte {
		ps, _ := prio.DequeueReadyBatch(0, 0, 5)
		return ps
	}() {
		id, _ := decodeHeapPayload(t, p)
		delete(live, id)
	}

	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(41)))
	hs.Restart()
	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, rp := r.Topic("delay"), r.Topic("prio")
	if rd.Kind() != KindDelay || rp.Kind() != KindPriority {
		t.Fatalf("recovered kinds %s/%s", rd.Kind(), rp.Kind())
	}

	// Gating survives: nothing with deadline > 0 is ready at now=0.
	if ps, _ := rd.DequeueReadyBatch(0, 0, 100); len(ps) != len(func() []uint64 {
		var zero []uint64
		for id, k := range live {
			if id < 100 && k == 0 {
				zero = append(zero, id)
			}
		}
		return zero
	}()) {
		t.Fatalf("DequeueReady(0) after recovery delivered %d messages", len(ps))
	} else {
		for _, p := range ps {
			id, _ := decodeHeapPayload(t, p)
			delete(live, id)
		}
	}

	// Seq continuity: a fresh key-1 publish must deliver after every
	// recovered key-1 message.
	if err := rd.PublishAt(0, heapPayload(999, 1), 1); err != nil {
		t.Fatal(err)
	}
	live[999] = 1

	drain := func(tp *Topic, tid int) {
		lastKey := uint64(0)
		sawFresh := false
		for {
			p, ok, err := tp.DequeueReady(tid, ^uint64(0))
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			id, key := decodeHeapPayload(t, p)
			if key < lastKey {
				t.Fatalf("%s recovered out of order: key %d after %d", tp.Name(), key, lastKey)
			}
			lastKey = key
			if id == 999 {
				sawFresh = true
			} else if key == 1 && id < 100 && sawFresh {
				t.Fatalf("post-recovery publish delivered before recovered key-1 message %d", id)
			}
			if _, ok := live[id]; !ok {
				t.Fatalf("%s resurrected or duplicated message %#x", tp.Name(), id)
			}
			delete(live, id)
		}
	}
	drain(rd, 0)
	drain(rp, 1)
	if len(live) != 0 {
		t.Fatalf("%d undelivered messages lost in recovery: %v", len(live), live)
	}
}

// TestHeapWindowSplitReuse covers both free-list reuse paths of the
// slot allocator: an exact-fit hit (a retired width-8 FIFO window
// serving a new FIFO topic) and the split-bucket path (width-2 heap
// windows carved out of a retired width-8 window), plus the replay
// side — recovery re-simulates the same claims, including the nested
// sub-range splits, and rebuilds the identical footprint.
func TestHeapWindowSplitReuse(t *testing.T) {
	hs := pmem.NewSet(1, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	b, err := Open(hs, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if _, err := b.CreateTopic(0, TopicConfig{Name: name, Shards: 1}); err != nil {
			t.Fatal(err)
		}
	}
	used0, _ := b.SlotFootprint()
	for _, name := range []string{"a", "b"} {
		if err := b.DeleteTopic(0, name); err != nil {
			t.Fatal(err)
		}
	}
	if used, free := b.SlotFootprint(); used != used0 || free != 2*slotsPerShard {
		t.Fatalf("after retiring two FIFO topics: (used %d, free %d), want (used %d, free %d)",
			used, free, used0, 2*slotsPerShard)
	}

	// Exact fit: a same-width FIFO topic consumes one whole window; the
	// high-water mark never moves again in this test.
	if _, err := b.CreateTopic(0, TopicConfig{Name: "c", Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if used, free := b.SlotFootprint(); used != used0 || free != slotsPerShard {
		t.Fatalf("exact-fit create: (used %d, free %d), want (used %d, free %d)",
			used, free, used0, slotsPerShard)
	}
	b.Topic("c").Publish(0, U64(7))

	// Split bucket: four width-2 heap windows out of one width-8 window,
	// with no fresh slots claimed past the original high-water mark.
	kinds := []TopicKind{KindDelay, KindPriority, KindDelay, KindPriority}
	for i, k := range kinds {
		if _, err := b.CreateTopic(0, TopicConfig{
			Name: fmt.Sprintf("h%d", i), Shards: 1, MaxPayload: 24, Kind: k,
		}); err != nil {
			t.Fatalf("heap topic %d: %v", i, err)
		}
		wantFree := slotsPerShard - (i+1)*heapTopicSlots
		if used, free := b.SlotFootprint(); free != wantFree || used != used0 {
			t.Fatalf("after heap topic %d: (used %d, free %d), want (used %d, free %d) from splits",
				i, used, free, used0, wantFree)
		}
	}
	for i := range kinds {
		tp := b.Topic(fmt.Sprintf("h%d", i))
		if err := tp.PublishAt(0, heapPayload(uint64(i), 5), 5); err != nil {
			if !errors.Is(err, ErrWrongTopicKind) {
				t.Fatal(err)
			}
			if err := tp.PublishPriority(0, heapPayload(uint64(i), 5), 5); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Replay rebuilds the same footprint through the nested sub-range
	// claim splits, and every topic's content survives.
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(57)))
	hs.Restart()
	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if used, free := r.SlotFootprint(); used != used0 || free != 0 {
		t.Fatalf("recovered footprint (used %d, free %d), want (used %d, free 0)", used, free, used0)
	}
	if p, ok := r.Topic("c").DequeueShard(0, 0); !ok || AsU64(p) != 7 {
		t.Fatalf("FIFO message lost: %v,%v", p, ok)
	}
	for i := range kinds {
		tp := r.Topic(fmt.Sprintf("h%d", i))
		p, ok, err := tp.DequeueReady(0, ^uint64(0))
		if err != nil || !ok {
			t.Fatalf("heap topic %d lost its message: %v %v", i, ok, err)
		}
		if id, _ := decodeHeapPayload(t, p); id != uint64(i) {
			t.Fatalf("heap topic %d delivered id %d", i, id)
		}
	}
}

// TestBrokerCrashFuzzDelayTopics is the heap-topic arm of the crash
// audit: producers publish to a delay and a priority topic (singles
// and batches) while consumers drain with an advancing logical clock,
// a crash is scheduled on one member heap's access stream, and after
// recovery every acknowledged message must be delivered or recovered
// exactly once, never before its deadline, with losses bounded by the
// consumers' in-flight dequeue windows.
func TestBrokerCrashFuzzDelayTopics(t *testing.T) {
	seeds := []int64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { heapCrashRound(t, seed) })
	}
}

func heapCrashRound(t *testing.T, seed int64) {
	const (
		producers   = 2
		consumers   = 2
		perProducer = 1200
		popBatch    = 8
		heaps       = 2
		threads     = producers + consumers
	)
	hs := pmem.NewSet(heaps, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := Open(hs, Options{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	topics := []TopicConfig{
		{Name: "delay", Shards: 1, MaxPayload: 24, Kind: KindDelay},
		{Name: "prio", Shards: 1, MaxPayload: 24, Kind: KindPriority},
	}
	for _, tc := range topics {
		if _, err := b.CreateTopic(0, tc); err != nil {
			t.Fatal(err)
		}
	}
	crashRng := rand.New(rand.NewSource(seed))
	hs.Heap(crashRng.Intn(heaps)).ScheduleCrashAtAccess(int64(4_000 + crashRng.Intn(30_000)))

	var clock atomic.Uint64
	clock.Store(1)

	acked := make([][]uint64, producers) // ids whose publish returned
	var wg, producersDone sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			start.Wait()
			rng := rand.New(rand.NewSource(seed*613 + int64(p)))
			delay, prio := b.Topic("delay"), b.Topic("prio")
			for m := uint64(1); m <= perProducer; {
				runtime.Gosched()
				id := uint64(p+1)<<32 | m
				var err error
				var ids []uint64
				switch rng.Intn(4) {
				case 0: // single delayed publish
					key := clock.Load() + uint64(rng.Intn(64))
					if pmem.Protect(func() { err = delay.PublishAt(p, heapPayload(id, key), key) }) {
						return
					}
					ids = []uint64{id}
				case 1: // delayed batch, one fence
					var ps [][]byte
					var keys []uint64
					for len(ps) < 6 && m+uint64(len(ps)) <= perProducer {
						bid := uint64(p+1)<<32 | (m + uint64(len(ps)))
						key := clock.Load() + uint64(rng.Intn(64))
						ps = append(ps, heapPayload(bid, key))
						keys = append(keys, key)
						ids = append(ids, bid)
					}
					if pmem.Protect(func() { err = delay.PublishAtBatch(p, ps, keys) }) {
						return
					}
				case 2: // single priority publish
					key := uint64(rng.Intn(1000))
					if pmem.Protect(func() { err = prio.PublishPriority(p, heapPayload(id, key), key) }) {
						return
					}
					ids = []uint64{id}
				default: // priority batch
					var ps [][]byte
					var keys []uint64
					for len(ps) < 6 && m+uint64(len(ps)) <= perProducer {
						bid := uint64(p+1)<<32 | (m + uint64(len(ps)))
						key := uint64(rng.Intn(1000))
						ps = append(ps, heapPayload(bid, key))
						keys = append(keys, key)
						ids = append(ids, bid)
					}
					if pmem.Protect(func() { err = prio.PublishPriorityBatch(p, ps, keys) }) {
						return
					}
				}
				if err != nil {
					if errors.Is(err, dheap.ErrFull) {
						continue // backpressure: consumers are recycling slots
					}
					panic(err)
				}
				acked[p] = append(acked[p], ids...)
				m += uint64(len(ids))
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	delivered := make([]map[uint64]bool, consumers)
	early := make([]int, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		delivered[c] = map[uint64]bool{}
		go func(c int) {
			defer wg.Done()
			start.Wait()
			tid := producers + c
			delay, prio := b.Topic("delay"), b.Topic("prio")
			idle := false
			for turn := 0; ; turn++ {
				runtime.Gosched()
				now := clock.Add(1)
				tp := delay
				if turn%2 == 1 {
					tp = prio
				}
				var ps [][]byte
				var err error
				if pmem.Protect(func() { ps, err = tp.DequeueReadyBatch(tid, now, popBatch) }) {
					return // crash mid-dequeue: the window counts against the allowance
				}
				if err != nil {
					panic(err)
				}
				if len(ps) > 0 {
					for _, p := range ps {
						id, key := decodeHeapPayload(t, p)
						if tp.Name() == "delay" && key > now {
							early[c]++
						}
						if delivered[c][id] {
							early[c] += 1 << 20 // impossible: flag loudly via the early counter
						}
						delivered[c][id] = true
					}
					idle = false
					continue
				}
				select {
				case <-done:
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	start.Done()
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow()
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(seed * 37)))
	hs.Restart()

	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c, n := range early {
		if n > 0 {
			t.Fatalf("consumer %d: %d early or duplicate deliveries", c, n)
		}
	}
	seen := map[uint64]bool{}
	for c := range delivered {
		for id := range delivered[c] {
			if seen[id] {
				t.Fatalf("message %#x delivered twice across consumers", id)
			}
			seen[id] = true
		}
	}
	// The recovered delay backlog still gates: nothing was published
	// with a deadline below the clock's initial value.
	if ps, err := r.Topic("delay").DequeueReadyBatch(0, 0, 1000); err != nil || len(ps) != 0 {
		t.Fatalf("recovered delay topic delivered %d messages at now=0 (err %v)", len(ps), err)
	}
	recovered := 0
	for _, name := range []string{"delay", "prio"} {
		tp := r.Topic(name)
		lastKey := uint64(0)
		for {
			p, ok, err := tp.DequeueReady(0, ^uint64(0))
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			id, key := decodeHeapPayload(t, p)
			if key < lastKey {
				t.Fatalf("%s recovered out of key order: %d after %d", name, key, lastKey)
			}
			lastKey = key
			if seen[id] {
				t.Fatalf("message %#x both delivered and recovered", id)
			}
			seen[id] = true
			recovered++
		}
	}
	lost, totalAcked := 0, 0
	for p := range acked {
		totalAcked += len(acked[p])
		for _, id := range acked[p] {
			if !seen[id] {
				lost++
			}
		}
	}
	t.Logf("seed %d: acked %d, delivered %d, recovered %d, losses %d",
		seed, totalAcked, len(seen)-recovered, recovered, lost)
	// Each consumer may lose one unacknowledged in-flight dequeue batch
	// whose consume NTStores landed without their covering return.
	if allowance := consumers * popBatch; lost > allowance {
		t.Fatalf("%d acknowledged messages lost (allowance %d)", lost, allowance)
	}
}
