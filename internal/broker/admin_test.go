package broker

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/queues"
)

// TestOpenCreateRecoverRoundTrip is the live-administration round
// trip: Open brings up an empty broker, topics appear at runtime via
// CreateTopic, and after a power failure Open (not RecoverSet) brings
// the same broker back — topics, placements and payloads intact, no
// matter that they were created across separate administrative calls.
func TestOpenCreateRecoverRoundTrip(t *testing.T) {
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	if _, err := Open(hs, Options{}); err == nil {
		t.Fatal("Open creating a broker without a thread bound should fail")
	}
	b, err := Open(hs, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Topics()) != 0 || b.ShardTotal() != 0 {
		t.Fatalf("fresh broker has %d topics, %d shards; want 0, 0", len(b.Topics()), b.ShardTotal())
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "events", Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "events", Shards: 1}); err == nil {
		t.Fatal("duplicate CreateTopic should fail")
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "jobs", Shards: 2, MaxPayload: 64}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		b.Topic("events").Publish(0, U64(i))
		b.Topic("jobs").Publish(0, blobPayload(100+i))
	}
	// A second Open-create over the live set must refuse.
	if _, err := NewSet(hs, Config{Topics: twoTopics(), Threads: 2}); err == nil {
		t.Fatal("NewSet over a live broker's set should fail")
	}
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(81)))
	hs.Restart()

	if _, err := Open(hs, Options{Threads: 3}); err == nil {
		t.Fatal("Open with a mismatched thread bound should fail")
	}
	r, err := Open(hs, Options{}) // adopt the recorded bound
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads() != 2 {
		t.Fatalf("adopted thread bound = %d, want 2", r.Threads())
	}
	if got := len(r.Topics()); got != 2 {
		t.Fatalf("recovered %d topics, want 2", got)
	}
	for s := 0; s < 4; s++ {
		if got, want := r.Topic("events").HeapOf(s), b.Topic("events").HeapOf(s); got != want {
			t.Fatalf("events shard %d recovered on heap %d, want %d", s, got, want)
		}
	}
	gotEvents, gotJobs := map[uint64]bool{}, 0
	for _, topic := range r.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			for {
				p, ok := topic.DequeueShard(0, s)
				if !ok {
					break
				}
				id := AsU64(p[:8])
				if topic.Name() == "events" {
					gotEvents[id] = true
				} else {
					if !bytes.Equal(p, blobPayload(id)) {
						t.Fatalf("job %d corrupted across recovery", id)
					}
					gotJobs++
				}
			}
		}
	}
	if len(gotEvents) != 8 || gotJobs != 8 {
		t.Fatalf("recovered %d events, %d jobs; want 8 each", len(gotEvents), gotJobs)
	}
	// The recovered broker stays administrable: create, publish, read.
	if _, err := r.CreateTopic(0, TopicConfig{Name: "late", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	r.Topic("late").Publish(0, U64(7))
	if p, ok := r.Topic("late").DequeueShard(0, 0); !ok || AsU64(p) != 7 {
		t.Fatalf("post-recovery topic delivery = %v,%v", p, ok)
	}
}

// TestCreateTopicCrashBeforeAnchor pins the creation protocol's crash
// atomicity, deterministically: a crash in the window between the
// record's append fence and its anchor stamp recovers as "the topic
// never existed" — and the torn record at the log's tail is truncated
// by the next creation, which appends over it and commits.
func TestCreateTopicCrashBeforeAnchor(t *testing.T) {
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
	b, err := Open(hs, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "base", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	b.Topic("base").Publish(0, U64(11))

	testHookAfterAppend = func() { hs.CrashNow() }
	crashed := pmem.Protect(func() { b.CreateTopic(0, TopicConfig{Name: "late", Shards: 2}) })
	testHookAfterAppend = nil
	if !crashed {
		t.Fatal("CreateTopic survived a crash armed between append and anchor")
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(82)))
	hs.Restart()

	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Topic("late") != nil {
		t.Fatal("a create that crashed before its anchor stamp recovered as existing")
	}
	if p, ok := r.Topic("base").DequeueShard(0, 0); !ok || AsU64(p) != 11 {
		t.Fatalf("pre-existing topic lost its message: %v,%v", p, ok)
	}
	// Re-create over the torn tail, publish, power-fail, recover: the
	// debris never resurfaces and the committed topic round-trips.
	if _, err := r.CreateTopic(0, TopicConfig{Name: "late", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	r.Topic("late").Publish(0, U64(21))
	r.Topic("late").Publish(0, U64(22))
	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(83)))
	hs.Restart()
	r2, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for s := 0; s < r2.Topic("late").Shards(); s++ {
		for {
			p, ok := r2.Topic("late").DequeueShard(0, s)
			if !ok {
				break
			}
			if got[AsU64(p)] {
				t.Fatalf("message %d recovered twice", AsU64(p))
			}
			got[AsU64(p)] = true
		}
	}
	if !got[21] || !got[22] || len(got) != 2 {
		t.Fatalf("recovered %v, want {21, 22}", got)
	}
}

// TestCreateTopicFenceAccounting pins the administrative cost model:
// the catalog protocol of one CreateTopic is exactly three blocking
// persists (allocator marks, record append, anchor stamp) on top of
// the per-shard queue initialization, and the total is independent of
// how many topics the broker already has — the log appends, it never
// rewrites.
func TestCreateTopicFenceAccounting(t *testing.T) {
	cfg := pmem.Config{Bytes: 256 << 20, MaxThreads: 2}
	h := pmem.New(cfg)
	b, err := Open(pmem.NewSetOf(h), Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(tc TopicConfig) uint64 {
		before := h.TotalStats().Fences
		if _, err := b.CreateTopic(0, tc); err != nil {
			t.Fatal(err)
		}
		return h.TotalStats().Fences - before
	}
	oneShard := measure(TopicConfig{Name: "t-first", Shards: 1})
	twoShard := measure(TopicConfig{Name: "t-two", Shards: 2})
	blobFirst := measure(TopicConfig{Name: "b-first", Shards: 1, MaxPayload: 64})
	ackedFirst := measure(TopicConfig{Name: "a-first", Shards: 1, Acked: true})
	for i := 0; i < 20; i++ {
		measure(TopicConfig{Name: fmt.Sprintf("filler-%d", i), Shards: 1})
	}
	if again := measure(TopicConfig{Name: "t-late", Shards: 1}); again != oneShard {
		t.Fatalf("CreateTopic cost grew with the topic count: %d fences on a 24-topic broker, %d on an empty one",
			again, oneShard)
	}
	if again := measure(TopicConfig{Name: "b-late", Shards: 1, MaxPayload: 64}); again != blobFirst {
		t.Fatalf("blob CreateTopic cost grew with the topic count: %d vs %d", again, blobFirst)
	}
	if again := measure(TopicConfig{Name: "a-late", Shards: 1, Acked: true}); again != ackedFirst {
		t.Fatalf("acked CreateTopic cost grew with the topic count: %d vs %d", again, ackedFirst)
	}

	// Pin the admin overhead itself: a bare queue constructed on a
	// fresh heap costs queueInit fences, so CreateTopic(1 shard) must
	// cost exactly queueInit + 3 (marks, record, anchor), and each
	// extra shard exactly queueInit more.
	h2 := pmem.New(cfg)
	before := h2.TotalStats().Fences
	queues.NewOptUnlinkedQ(h2.View(1, slotsPerShard), 2)
	queueInit := h2.TotalStats().Fences - before
	if oneShard != queueInit+3 {
		t.Fatalf("CreateTopic(1 shard) = %d fences, want queue init (%d) + 3 admin persists", oneShard, queueInit)
	}
	if twoShard != queueInit+oneShard {
		t.Fatalf("CreateTopic(2 shards) = %d fences, want %d (+1 shard = +%d)", twoShard, queueInit+oneShard, queueInit)
	}
}

// TestCreateAckGroupDynamic: lease regions created at runtime bind
// groups over topics created before and after them, enforcing the
// recorded capacity — a region without headroom refuses topics beyond
// it instead of mis-indexing lease lines.
func TestCreateAckGroupDynamic(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 3})
	b, err := Open(pmem.NewSetOf(h), Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "a", Shards: 2, Acked: true}); err != nil {
		t.Fatal(err)
	}
	// An exactly-sized region and one with headroom.
	tight, err := b.CreateAckGroup(0, AckGroupConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := b.CreateAckGroup(0, AckGroupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateAckGroup(0, AckGroupConfig{Capacity: 1}); err == nil {
		t.Fatal("capacity below the current shard total should fail")
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "late", Shards: 2, Acked: true}); err != nil {
		t.Fatal(err)
	}
	clk := &logicalClock{}
	// The tight region cannot cover the late topic's ordinals [2, 4).
	if _, err := b.NewGroupAcked([]string{"a", "late"}, 1, LeaseConfig{Region: tight, TTL: 10, Now: clk.Now}); err == nil {
		t.Fatal("binding past the region capacity should fail")
	}
	g, err := b.NewGroupAcked([]string{"a", "late"}, 1, LeaseConfig{Region: roomy, TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		b.Topic("a").Publish(0, U64(i))
		b.Topic("late").Publish(0, U64(100+i))
	}
	got := map[uint64]int{}
	c := g.Consumer(0)
	for {
		ms := c.PollBatch(1, 8)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			got[AsU64(m.Payload)]++
		}
		c.Ack(1)
	}
	if len(got) != 16 {
		t.Fatalf("drained %d distinct messages across both topics, want 16", len(got))
	}
	for id, n := range got {
		if n != 1 {
			t.Fatalf("message %d delivered %d times", id, n)
		}
	}
}

// TestSubscribeLiveTopics: a group reaches topics created after it via
// Subscribe — plain groups while quiescent, acked groups with lease
// frontiers seeded and capacity enforced; duplicate or unknown
// subscriptions are errors.
func TestSubscribeLiveTopics(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 3})
	b, err := Open(pmem.NewSetOf(h), Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "first", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroup([]string{"first"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Subscribe(0, "first"); err == nil {
		t.Fatal("re-subscribing an owned topic should fail")
	}
	if err := g.Subscribe(0, "nope"); err == nil {
		t.Fatal("subscribing an unknown topic should fail")
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "second", Shards: 3}); err != nil {
		t.Fatal(err)
	}
	if err := g.Subscribe(0, "second"); err != nil {
		t.Fatal(err)
	}
	owned := map[ShardRef]bool{}
	total := 0
	for i := 0; i < g.Size(); i++ {
		for _, r := range g.Consumer(i).Assigned() {
			if owned[r] {
				t.Fatalf("shard %v assigned twice after Subscribe", r)
			}
			owned[r] = true
			total++
		}
	}
	if total != 5 {
		t.Fatalf("group owns %d shards after Subscribe, want 5", total)
	}
	// The dealt shards balance: 5 shards over 2 members = 3 and 2.
	if d := len(g.Consumer(0).Assigned()) - len(g.Consumer(1).Assigned()); d < -1 || d > 1 {
		t.Fatalf("Subscribe dealt unevenly: %d vs %d shards",
			len(g.Consumer(0).Assigned()), len(g.Consumer(1).Assigned()))
	}
	for i := uint64(0); i < 12; i++ {
		b.Topic("second").Publish(0, U64(i))
	}
	got := map[uint64]bool{}
	for i := 0; i < g.Size(); i++ {
		for {
			m, ok := g.Consumer(i).Poll(i + 1)
			if !ok {
				break
			}
			if m.Topic != "second" {
				t.Fatalf("unexpected topic %q", m.Topic)
			}
			if got[AsU64(m.Payload)] {
				t.Fatalf("message %d delivered twice", AsU64(m.Payload))
			}
			got[AsU64(m.Payload)] = true
		}
	}
	if len(got) != 12 {
		t.Fatalf("delivered %d of 12 post-subscribe messages", len(got))
	}
}

// TestCatalogLogFull: a log sized to exactly one topic record takes
// the first create and refuses the second with an error — no panic,
// no partial state — and the broker (and its recovery) still works.
func TestCatalogLogFull(t *testing.T) {
	hs := pmem.NewSetOf(pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 2}))
	// A 1-shard topic record spans 3 lines: header, name, placements.
	b, err := Open(hs, Options{Threads: 2, CatalogLines: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "only", Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "overflow", Shards: 1}); err == nil {
		t.Fatal("CreateTopic on a full catalog log should fail")
	}
	if _, err := b.CreateAckGroup(0, AckGroupConfig{}); err == nil {
		t.Fatal("CreateAckGroup on a full catalog log should fail")
	}
	b.Topic("only").Publish(0, U64(5))
	hs.Heap(0).CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(84)))
	hs.Restart()
	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Topics()) != 1 {
		t.Fatalf("recovered %d topics, want 1", len(r.Topics()))
	}
	if p, ok := r.Topic("only").DequeueShard(0, 0); !ok || AsU64(p) != 5 {
		t.Fatalf("recovered message = %v,%v", p, ok)
	}
}

// TestTopicsSnapshotCopy: Topics returns a copy the caller may mangle
// without aliasing broker state, and TopicNames reports sorted names.
func TestTopicsSnapshotCopy(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: []TopicConfig{
		{Name: "zebra", Shards: 1}, {Name: "apple", Shards: 1},
	}, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := b.Topics()
	ts[0] = nil
	ts[1] = nil
	if got := b.Topics(); got[0] == nil || got[0].Name() != "zebra" {
		t.Fatal("mutating the Topics result aliased broker state")
	}
	names := b.TopicNames()
	if len(names) != 2 || names[0] != "apple" || names[1] != "zebra" {
		t.Fatalf("TopicNames = %v, want sorted [apple zebra]", names)
	}
}

// TestBrokerCrashFuzzDynamicTopics is the live-administration fuzz
// tier: producers and a consumer group hammer the initial topics
// while an administrator concurrently creates topics, publishes to
// them and drains some of their messages — until a crash scheduled on
// one member's access stream downs the whole set (sometimes landing
// inside CreateTopic itself). The broker is recovered from the
// catalog log alone and audited: every topic whose creation returned
// exists; every acknowledged publish — to initial and dynamic topics
// alike — is delivered or recovered exactly once, in per-shard order.
func TestBrokerCrashFuzzDynamicTopics(t *testing.T) {
	seeds := []int64{71, 72, 73}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { dynamicTopicsRound(t, seed) })
	}
}

func dynamicTopicsRound(t *testing.T, seed int64) {
	const (
		producers   = 2
		consumers   = 2
		perProducer = 2500
		heaps       = 2
		adminTid    = producers + consumers // tid 4
		threads     = producers + consumers + 1
		maxDyn      = 6
	)
	hs := pmem.NewSet(heaps, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := Open(hs, Options{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range twoTopics() {
		if _, err := b.CreateTopic(0, tc); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, consumers)
	if err != nil {
		t.Fatal(err)
	}
	crashRng := rand.New(rand.NewSource(seed))
	hs.Heap(crashRng.Intn(heaps)).ScheduleCrashAtAccess((20_000 + int64(crashRng.Intn(120_000))) / int64(heaps))

	acked := make([][]uint64, producers)
	dynAcked := make(map[string][]uint64) // admin-published ids per dynamic topic
	var dynCreated []string               // creations that returned success
	delivered := make([]map[uint64]ShardRef, consumers)
	adminDelivered := map[uint64]bool{}
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			start.Wait()
			rng := rand.New(rand.NewSource(seed*733 + int64(p)))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			for m := uint64(1); m <= perProducer; {
				runtime.Gosched()
				id := uint64(p+1)<<32 | m
				switch rng.Intn(3) {
				case 0:
					if pmem.Protect(func() { events.Publish(p, U64(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					m++
				default:
					var batch [][]byte
					var ids []uint64
					for len(batch) < 6 && m <= perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, blobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return
					}
					acked[p] = append(acked[p], ids...)
				}
			}
		}(p)
	}

	// The administrator: create a topic, publish into it, consume a
	// little of it through a fresh single-member group — all while the
	// producers and the main group run full tilt on other tids.
	wg.Add(1)
	go func() {
		defer wg.Done()
		start.Wait()
		rng := rand.New(rand.NewSource(seed * 919))
		for d := 0; d < maxDyn; d++ {
			runtime.Gosched()
			name := fmt.Sprintf("dyn-%d", d)
			tc := TopicConfig{Name: name, Shards: 1 + rng.Intn(3)}
			if rng.Intn(2) == 0 {
				tc.MaxPayload = 100 // fits every blobPayload
			}
			var cerr error
			if pmem.Protect(func() { _, cerr = b.CreateTopic(adminTid, tc) }) {
				return // crash inside the creation protocol
			}
			if cerr != nil {
				t.Errorf("CreateTopic(%s): %v", name, cerr)
				return
			}
			dynCreated = append(dynCreated, name)
			topic := b.Topic(name)
			n := 20 + rng.Intn(40)
			for m := 1; m <= n; m++ {
				id := uint64(200+d)<<32 | uint64(m)
				var payload []byte
				if tc.MaxPayload == 0 {
					payload = U64(id)
				} else {
					payload = blobPayload(id)
				}
				if pmem.Protect(func() { topic.Publish(adminTid, payload) }) {
					return
				}
				dynAcked[name] = append(dynAcked[name], id)
			}
			// Drain a prefix through a fresh group on the admin tid, so
			// the audit sees both delivered and recovered populations.
			dg, gerr := b.NewGroup([]string{name}, 1)
			if gerr != nil {
				t.Errorf("NewGroup(%s): %v", name, gerr)
				return
			}
			var ms []Message
			if pmem.Protect(func() { ms = dg.Consumer(0).PollBatch(adminTid, n/2) }) {
				return
			}
			for _, m := range ms {
				adminDelivered[AsU64(m.Payload[:8])] = true
			}
		}
	}()

	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		delivered[c] = map[uint64]ShardRef{}
		go func(c int) {
			defer wg.Done()
			start.Wait()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				runtime.Gosched()
				var ms []Message
				if pmem.Protect(func() { ms = cons.PollBatch(tid, 8) }) {
					return
				}
				if len(ms) > 0 {
					for _, m := range ms {
						delivered[c][AsU64(m.Payload[:8])] = ShardRef{Topic: m.Topic, Shard: m.Shard}
					}
					idle = false
					continue
				}
				select {
				case <-done:
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	start.Done()
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow()
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(seed * 37)))
	hs.Restart()

	r, err := Open(hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every creation that returned must have committed; creations cut
	// off mid-call may or may not exist, but if they do they are empty.
	for _, name := range dynCreated {
		if r.Topic(name) == nil {
			t.Fatalf("topic %q was created (call returned) but did not recover", name)
		}
	}
	seen := map[uint64]string{}
	for c := range delivered {
		for id := range delivered[c] {
			if prev, dup := seen[id]; dup {
				t.Fatalf("message %#x delivered twice (%s)", id, prev)
			}
			seen[id] = "delivered"
		}
	}
	for id := range adminDelivered {
		if prev, dup := seen[id]; dup {
			t.Fatalf("message %#x delivered twice (%s and admin)", id, prev)
		}
		seen[id] = "admin-delivered"
	}
	for _, topic := range r.Topics() {
		for s := 0; s < topic.Shards(); s++ {
			lastPerProducer := map[uint64]uint64{}
			for {
				p, ok := topic.DequeueShard(0, s)
				if !ok {
					break
				}
				id := AsU64(p[:8])
				if len(p) > 8 && !bytes.Equal(p, blobPayload(id)) {
					t.Fatalf("recovered payload for %#x corrupted", id)
				}
				if prev, dup := seen[id]; dup {
					t.Fatalf("message %#x both %s and recovered", id, prev)
				}
				seen[id] = "recovered"
				prod, m := id>>32, id&0xffffffff
				if last := lastPerProducer[prod]; m <= last {
					t.Fatalf("shard %s/%d: publisher %d out of order (%d after %d)",
						topic.Name(), s, prod, m, last)
				}
				lastPerProducer[prod] = m
			}
		}
	}
	lost, totalAcked := 0, 0
	audit := func(ids []uint64) {
		totalAcked += len(ids)
		for _, id := range ids {
			if _, ok := seen[id]; !ok {
				lost++
			}
		}
	}
	for p := range acked {
		audit(acked[p])
	}
	for _, ids := range dynAcked {
		audit(ids)
	}
	t.Logf("seed %d: acked %d (over %d initial + %d dynamic topics), audited %d, in-flight losses %d",
		seed, totalAcked, 2, len(dynCreated), len(seen), lost)
	// Allowance: one unacknowledged poll window per main consumer (8)
	// plus the admin's one in-flight drain window (up to 30).
	if allowance := consumers*8 + 30; lost > allowance {
		t.Fatalf("%d acknowledged messages lost (allowance %d)", lost, allowance)
	}
}
