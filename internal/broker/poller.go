package broker

// This file implements event-loop consumption. A spinning consumer
// burns a core per member whether or not messages arrive; the Poller
// replaces the spin with a level-triggered service loop in the iomux
// idiom: drain everything ready, and only when a full sweep comes up
// empty go to sleep on an exponentially backed-off timer (or an
// explicit Wake nudge). Idle topics therefore cost ~0 CPU — and,
// because an empty PollBatch sweep issues no persist instructions, 0
// fences — while a hot wakeup coalesces a whole backlog window into
// one drain riding one fence per touched persistence domain.

import (
	"sync/atomic"
	"time"

	"repro/internal/batch"
)

// PollerConfig parameterizes a Poller.
type PollerConfig struct {
	// Consumer is the group member the loop services; the Poller
	// becomes its single driving goroutine. Required.
	Consumer *Consumer
	// Tid is the thread id the loop runs persists under. The usual
	// one-goroutine-per-tid rule applies: it belongs to Run.
	Tid int
	// Handler receives every non-empty drain, on the loop goroutine.
	// Required.
	Handler func([]Message)
	// Policy sizes each drain window (nil: Fixed{16}). Owned by the
	// Poller. An AIMD policy makes the loop adaptive: wakeups that find
	// deep backlog grow the window toward max batches, quiet ones
	// shrink it toward per-message drains.
	Policy batch.Policy
	// Ack acknowledges each drained window before the next poll
	// (requires an acked group). With Pipeline the acknowledgment is
	// AckAsync — its fence rides into the next wakeup, overlapping the
	// handler and the sleep — and is drained before the loop parks, so
	// a deferral never outlives the wakeup that created it.
	Ack bool
	// Pipeline selects AckAsync over Ack (see above).
	Pipeline bool
	// MinBackoff and MaxBackoff bound the idle sleep: the first empty
	// sweep sleeps MinBackoff, each further one doubles up to
	// MaxBackoff, and any delivery or Wake resets to MinBackoff.
	// Defaults: 50µs and 5ms.
	MinBackoff, MaxBackoff time.Duration
}

// PollerStats counts the loop's activity. Read with Stats at any time;
// the counters are updated atomically by the loop.
type PollerStats struct {
	Polls      uint64 // PollBatch calls issued
	EmptyPolls uint64 // polls that found every owned shard empty
	Delivered  uint64 // messages handed to the handler
	IdleSleeps uint64 // timer sleeps taken after an empty sweep
	Wakes      uint64 // Wake nudges that interrupted or skipped a sleep
	AckErrors  uint64 // ErrFenced refusals from the ack path
}

// Poller runs a consumer as an event loop. Construct with NewPoller,
// drive with Run (blocking; typically `go p.Run()`), nudge with Wake,
// end with Stop. Stop makes Run finish the backlog first: a final
// sweep drains until every owned shard is empty and all deferred acks
// are fenced, so stopping never strands delivered-but-unacked state.
type Poller struct {
	cfg  PollerConfig
	pol  batch.Policy
	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	polls, emptyPolls, delivered atomic.Uint64
	idleSleeps, wakes, ackErrs   atomic.Uint64
}

// NewPoller returns a poller over cfg.Consumer. It panics on a nil
// consumer or handler — a loop with nowhere to deliver is a
// construction bug, not a runtime condition.
func NewPoller(cfg PollerConfig) *Poller {
	if cfg.Consumer == nil {
		panic("broker: PollerConfig.Consumer is required")
	}
	if cfg.Handler == nil {
		panic("broker: PollerConfig.Handler is required")
	}
	if cfg.Ack && !cfg.Consumer.g.leased {
		panic("broker: PollerConfig.Ack on a group without acknowledgments")
	}
	if cfg.Policy == nil {
		cfg.Policy = batch.Fixed{N: 16}
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 50 * time.Microsecond
	}
	if cfg.MaxBackoff < cfg.MinBackoff {
		cfg.MaxBackoff = 5 * time.Millisecond
	}
	return &Poller{
		cfg:  cfg,
		pol:  cfg.Policy,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Wake nudges the loop out of (or past) its idle sleep: call it when
// you know messages just arrived and don't want to pay the backoff.
// Non-blocking; coalesces with an already-pending nudge.
func (p *Poller) Wake() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Stop ends the loop after a final drain and blocks until Run has
// returned. Safe to call once.
func (p *Poller) Stop() {
	close(p.stop)
	<-p.done
}

// Stats snapshots the loop counters.
func (p *Poller) Stats() PollerStats {
	return PollerStats{
		Polls:      p.polls.Load(),
		EmptyPolls: p.emptyPolls.Load(),
		Delivered:  p.delivered.Load(),
		IdleSleeps: p.idleSleeps.Load(),
		Wakes:      p.wakes.Load(),
		AckErrors:  p.ackErrs.Load(),
	}
}

// Run is the event loop; it blocks until Stop. It owns cfg.Tid and
// cfg.Consumer for its whole duration.
func (p *Poller) Run() {
	defer close(p.done)
	c, tid := p.cfg.Consumer, p.cfg.Tid
	backoff := p.cfg.MinBackoff
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		if p.serve(c, tid) {
			backoff = p.cfg.MinBackoff
			select {
			case <-p.stop:
				p.finish(c, tid)
				return
			default:
			}
			continue
		}
		// Empty sweep: everything ready is drained, so pay any deferred
		// ack fence now — its drain has been overlapping the handler
		// work — and park until the timer or a Wake.
		if p.cfg.Ack && p.cfg.Pipeline {
			c.DrainAcks(tid)
		}
		timer.Reset(backoff)
		select {
		case <-p.stop:
			if !timer.Stop() {
				<-timer.C
			}
			p.finish(c, tid)
			return
		case <-p.wake:
			if !timer.Stop() {
				<-timer.C
			}
			p.wakes.Add(1)
			backoff = p.cfg.MinBackoff
		case <-timer.C:
			p.idleSleeps.Add(1)
			if backoff *= 2; backoff > p.cfg.MaxBackoff {
				backoff = p.cfg.MaxBackoff
			}
		}
	}
}

// serve runs one poll window: drain, deliver, acknowledge. Reports
// whether anything was delivered.
func (p *Poller) serve(c *Consumer, tid int) bool {
	ms := c.PollBatch(tid, p.pol.Size())
	p.pol.Observe(len(ms))
	p.polls.Add(1)
	if len(ms) == 0 {
		p.emptyPolls.Add(1)
		return false
	}
	p.delivered.Add(uint64(len(ms)))
	p.cfg.Handler(ms)
	if p.cfg.Ack {
		var err error
		if p.cfg.Pipeline {
			_, err = c.AckAsync(tid)
		} else {
			_, err = c.Ack(tid)
		}
		if err != nil {
			p.ackErrs.Add(1)
		}
	}
	return true
}

// finish drains the backlog to empty so Stop never strands messages:
// delivered state is the loop's responsibility until the queues are
// dry and every deferred ack is fenced.
func (p *Poller) finish(c *Consumer, tid int) {
	for p.serve(c, tid) {
	}
	if p.cfg.Ack && p.cfg.Pipeline {
		c.DrainAcks(tid)
	}
}
