package broker

import (
	"fmt"

	"repro/internal/pmem"
)

// Delivery state is transactional state (Gray, "Queues Are
// Databases") and must be as durable as the payload. The lease region
// is where the broker keeps it: one durable region per consumer-group
// allocation (CreateAckGroup, or the legacy Config.AckGroups), placed
// like a shard — the catalog records its (heapID, anchorSlot) and its
// capacity — and holding one cache line per global shard ordinal up
// to that capacity. Capacity is fixed at region creation: groups may
// only subscribe topics whose shards' global ordinals fall below it,
// so a region minted before a dynamically created topic either has
// headroom for it or refuses the binding with an error.
// A consumer's PollBatch writes the shard's
// lease line (owner, unacked index range, deadline) and fences it
// BEFORE returning messages, so a crashed-then-recovered observer can
// always tell an in-flight message from a processed one; Consumer.Ack
// advances the per-thread acked-index lines inside each shard queue
// (see queues.OptUnlinkedQ ack mode), which are the source of truth
// for the processed frontier.
//
// Region layout (all single cache lines, so each write persists with
// one flush riding the operation's fence):
//
//	line 0 (header):      [leaseMagic, capacity, groupIndex, 0...]
//	line 1+g (shard g):   one packed lease line (see packLease)
//
// Lease line layout:
//
//	[w0 = active<<63 | owner, w1 = lo, w2 = hi, w3 = deadline,
//	 w4 = seq, w5 = epoch, w6 = 0, w7 = checksum(w0..w6)]
//
// [lo, hi] is the leased, unacknowledged index range of the shard's
// queue; deadline is in the group's clock units (LeaseConfig.Now); seq
// increments per rewrite; epoch is the shard's fencing token, bumped
// on every takeover (see membership.go). The checksum — which always
// covered the then-spare w5, so pre-epoch (v<=4) regions need no
// format change and decode as epoch 0 — makes a torn line (a crash
// mid-write landed only part of the stores) detectable: torn or
// corrupt lines decode as invalid and are treated as carrying no
// lease — safe, because the acked-index lines, not the leases, decide
// what recovery redelivers. An all-zero line is a virgin line (the
// region is allocated zeroed): valid, no lease, epoch 0.

// Lease is one decoded per-shard lease record.
type Lease struct {
	// Active reports whether the line carries a live lease; the zero
	// Lease means "no lease".
	Active bool
	// Owner is the group member index holding the lease.
	Owner int
	// Lo and Hi delimit the leased, unacknowledged queue-index range
	// [Lo, Hi] of the shard at the time the lease was written. Lo may
	// lag the true acked frontier (acknowledgments do not rewrite the
	// lease); takeover clamps it against the queue's durable frontier.
	Lo, Hi uint64
	// Deadline is the expiry instant in the owning group's clock units.
	Deadline uint64
	// Seq increments on every rewrite of the line.
	Seq uint64
	// Epoch is the shard's fencing token: bumped on every takeover
	// (Reassign, Scan, Steal), so a presumed-dead owner that resurfaces
	// holds a stale epoch and its acknowledgments are refused
	// (ErrFenced). Lines written before the epoch word existed (v<=4
	// regions) decode as epoch 0, which is valid.
	Epoch uint64
}

const (
	leaseMagic  = 0x4c7352656731 // "LsReg1"
	leaseActive = uint64(1) << 63

	// maxCatAckGroups caps the catalog's ack-group count, like the
	// other catalog sanity caps: a corrupted count is rejected before
	// it is used to compute addresses.
	maxCatAckGroups = 1 << 10
)

// leaseChecksum mixes words 0..6 of a lease line into the guard word.
// It only needs to catch torn lines and random corruption, not
// adversaries.
func leaseChecksum(w [8]uint64) uint64 {
	s := uint64(leaseMagic)
	for i := 0; i < 7; i++ {
		s ^= w[i] + 0x9e3779b97f4a7c15*uint64(i+1)
		s = s<<13 | s>>51
	}
	return s
}

// packLease lays a lease out as one cache line of words.
func packLease(l Lease) [8]uint64 {
	var w [8]uint64
	w[0] = uint64(l.Owner)
	if l.Active {
		w[0] |= leaseActive
	}
	w[1], w[2], w[3], w[4], w[5] = l.Lo, l.Hi, l.Deadline, l.Seq, l.Epoch
	w[7] = leaseChecksum(w)
	return w
}

// unpackLease decodes a lease line. ok is false for a torn or corrupt
// line (checksum mismatch); an all-zero line is a valid empty lease.
func unpackLease(w [8]uint64) (Lease, bool) {
	zero := true
	for _, x := range w {
		if x != 0 {
			zero = false
			break
		}
	}
	if zero {
		return Lease{}, true
	}
	if w[7] != leaseChecksum(w) {
		return Lease{}, false
	}
	return Lease{
		Active:   w[0]&leaseActive != 0,
		Owner:    int(w[0] &^ leaseActive),
		Lo:       w[1],
		Hi:       w[2],
		Deadline: w[3],
		Seq:      w[4],
		Epoch:    w[5],
	}, true
}

// leaseRegion is the volatile handle of one group's durable lease
// region.
type leaseRegion struct {
	h    *pmem.Heap // member heap hosting the region
	heap int        // its index in the set (the fence domain)
	slot int        // root slot anchoring the region (rewritten by compaction)
	base pmem.Addr  // region base (header line)
	cap  int        // global shard ordinals the region covers: [0, cap)
}

func (lr leaseRegion) lineAddr(global int) pmem.Addr {
	return lr.base + pmem.Addr(1+global)*pmem.CacheLineBytes
}

// writeLeaseLine stores a packed lease into shard global's line and
// issues the asynchronous flush; the caller's fence on the region's
// heap makes it durable.
func (lr leaseRegion) writeLeaseLine(tid, global int, l Lease) {
	a := lr.lineAddr(global)
	w := packLease(l)
	for i, x := range w {
		lr.h.Store(tid, a+pmem.Addr(i*pmem.WordBytes), x)
	}
	lr.h.Flush(tid, a)
}

// readLeaseLine loads and decodes shard global's line.
func (lr leaseRegion) readLeaseLine(global int) (Lease, bool) {
	a := lr.lineAddr(global)
	var w [8]uint64
	for i := range w {
		w[i] = lr.h.Load(0, a+pmem.Addr(i*pmem.WordBytes))
	}
	return unpackLease(w)
}

// initLeaseRegion allocates, zeroes and persists group's lease region
// on h and anchors it at the given root slot, charging the persists to
// tid (regions are created on live brokers; see CreateAckGroup).
func initLeaseRegion(h *pmem.Heap, tid, heapIdx, slot, group, capacity int) leaseRegion {
	bytes := int64(1+capacity) * pmem.CacheLineBytes
	base := h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, base, bytes)
	h.Store(tid, base, leaseMagic)
	h.Store(tid, base+8, uint64(capacity))
	h.Store(tid, base+16, uint64(group))
	h.Persist(tid, base)
	h.Store(tid, h.RootAddr(slot), uint64(base))
	h.Persist(tid, h.RootAddr(slot))
	return leaseRegion{h: h, heap: heapIdx, slot: slot, base: base, cap: capacity}
}

// readLeaseRegion re-discovers group's lease region at (heap, slot)
// and validates it against the catalog's expectation. Every read is
// bounds-checked (catReader), so a truncated or absurd region yields
// an error, never a panic; a missing or foreign region — blank anchor,
// wrong magic, wrong capacity, wrong group — errors instead of
// letting a consumer mis-scan another group's (or nobody's) leases.
func readLeaseRegion(h *pmem.Heap, heapIdx, slot, group, capacity int) (leaseRegion, error) {
	r := &catReader{h: h}
	base := pmem.Addr(r.word(h.RootAddr(slot)))
	if r.err != nil {
		return leaseRegion{}, r.err
	}
	if base == 0 {
		return leaseRegion{}, fmt.Errorf("broker: lease region %d missing (nothing anchored at heap %d slot %d)",
			group, heapIdx, slot)
	}
	magic := r.word(base)
	st := r.word(base + 8)
	gi := r.word(base + 16)
	// Touch the last line too, so a region whose body runs off the end
	// of the heap is rejected up front.
	r.word(base + pmem.Addr(capacity)*pmem.CacheLineBytes)
	if r.err != nil {
		return leaseRegion{}, r.err
	}
	if magic != leaseMagic {
		return leaseRegion{}, fmt.Errorf("broker: lease region %d magic %#x invalid (foreign or corrupt region)", group, magic)
	}
	if st != uint64(capacity) || gi != uint64(group) {
		return leaseRegion{}, fmt.Errorf("broker: lease region at heap %d slot %d covers %d shards as group %d, catalog expects %d shards as group %d",
			heapIdx, slot, st, gi, capacity, group)
	}
	return leaseRegion{h: h, heap: heapIdx, slot: slot, base: base, cap: capacity}, nil
}
