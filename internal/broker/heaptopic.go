package broker

import (
	"fmt"

	"repro/internal/obs"
)

// Heap-topic data plane: the verbs of KindDelay and KindPriority
// topics. A heap topic has exactly one shard, backed by a dheap.Q —
// a durable per-thread entry log plus a volatile min-heap on
// (key, seq) — instead of a FIFO queue. The key is the delivery
// deadline (delay topics) or the priority rank (priority topics,
// lower rank delivered first); equal keys are delivered in publish
// order via the heap's seq tiebreak.
//
// Fence budget (pinned by TestHeapTopicFenceAccounting and the dheap
// package's own tests): a publish batch of any size costs exactly one
// fence, a non-empty dequeue batch costs exactly one fence, and
// sift/gauge/empty-dequeue paths persist nothing — heap maintenance
// is volatile, so delivery order costs zero ordered persists.

// heapShard returns the single shard's durable heap, or a typed
// refusal when the topic is of the wrong kind.
func (t *Topic) heapShard(verb string, want TopicKind) (*shard, error) {
	if t.cfg.Kind != want {
		return nil, t.kindErr(verb, want)
	}
	return t.shards[0], nil
}

// PublishAt durably enqueues payload on a delay topic for delivery at
// deadline (any monotonic uint64 scale the caller also uses for
// DequeueReady's now). When PublishAt returns nil the message is
// durable: it survives any crash and is redelivered — never before
// its deadline — by the recovered topic. One blocking fence per call;
// use PublishAtBatch to amortize. Returns ErrWrongTopicKind on
// non-delay topics, ErrTopicDeleted once retired, and dheap.ErrFull
// (wrapped) when the publisher's entry arena is out of slots.
func (t *Topic) PublishAt(tid int, payload []byte, deadline uint64) error {
	return t.heapPublish(tid, "PublishAt", KindDelay, []uint64{deadline}, [][]byte{payload})
}

// PublishAtBatch enqueues the whole batch with a single blocking
// fence: element i is delivered no earlier than deadlines[i]. The
// batch is all-or-nothing against arena capacity — on dheap.ErrFull
// nothing is published.
func (t *Topic) PublishAtBatch(tid int, payloads [][]byte, deadlines []uint64) error {
	return t.heapPublish(tid, "PublishAtBatch", KindDelay, deadlines, payloads)
}

// PublishPriority durably enqueues payload on a priority topic at the
// given rank; DequeueReady delivers the lowest rank first, equal
// ranks in publish order. Durability and error contract match
// PublishAt.
func (t *Topic) PublishPriority(tid int, payload []byte, prio uint64) error {
	return t.heapPublish(tid, "PublishPriority", KindPriority, []uint64{prio}, [][]byte{payload})
}

// PublishPriorityBatch enqueues the whole batch with a single
// blocking fence; element i carries rank prios[i].
func (t *Topic) PublishPriorityBatch(tid int, payloads [][]byte, prios []uint64) error {
	return t.heapPublish(tid, "PublishPriorityBatch", KindPriority, prios, payloads)
}

func (t *Topic) heapPublish(tid int, verb string, want TopicKind, keys []uint64, payloads [][]byte) error {
	s, err := t.heapShard(verb, want)
	if err != nil {
		return err
	}
	if len(payloads) != len(keys) {
		panic(fmt.Sprintf("broker: %s on topic %q: %d payloads, %d keys",
			verb, t.cfg.Name, len(payloads), len(keys)))
	}
	if len(payloads) == 0 {
		return nil
	}
	for _, p := range payloads {
		t.checkPayload(p)
	}
	if !t.enter() {
		return ErrTopicDeleted
	}
	defer t.exit()
	o := t.b.obs
	if o == nil {
		if err := s.heapq.PushBatch(tid, keys, payloads); err != nil {
			return fmt.Errorf("broker: topic %q: %w", t.cfg.Name, err)
		}
		return nil
	}
	start := obs.Now()
	if err := s.heapq.PushBatch(tid, keys, payloads); err != nil {
		return fmt.Errorf("broker: topic %q: %w", t.cfg.Name, err)
	}
	o.Lat(tid, obs.OpPublish, start)
	t.ostats.Published(0, len(payloads))
	o.Event(tid, obs.OpPublish, t.ostats, 0)
	return nil
}

// DequeueReady removes and returns the minimum-key ready message: the
// earliest-deadline message with deadline <= now on a delay topic,
// the lowest-rank message on a priority topic (now is ignored). The
// returned message is durably consumed before the call returns — a
// crash after return cannot resurrect it — at a cost of one fence.
// ok is false when nothing is ready. Returns ErrWrongTopicKind on
// FIFO topics and ErrTopicDeleted once retired.
func (t *Topic) DequeueReady(tid int, now uint64) (payload []byte, ok bool, err error) {
	ps, err := t.DequeueReadyBatch(tid, now, 1)
	if err != nil || len(ps) == 0 {
		return nil, false, err
	}
	return ps[0], true, nil
}

// DequeueReadyBatch removes up to max ready messages in key order
// (equal keys in publish order), durably consuming the whole batch
// with a single fence. An empty result persists nothing.
func (t *Topic) DequeueReadyBatch(tid int, now uint64, max int) ([][]byte, error) {
	if t.cfg.Kind == KindFIFO {
		// Both heap kinds accept this verb, so the uniform kindErr
		// (which names a single wanted kind) would mislead here.
		return nil, fmt.Errorf("%w: DequeueReady on topic %q of kind %s (want a delay or priority topic)",
			ErrWrongTopicKind, t.cfg.Name, t.cfg.Kind)
	}
	if !t.enter() {
		return nil, ErrTopicDeleted
	}
	defer t.exit()
	maxKey := now
	if t.cfg.Kind == KindPriority {
		maxKey = ^uint64(0) // every rank is always ready
	}
	s := t.shards[0]
	o := t.b.obs
	if o == nil {
		ps, _ := s.heapq.PopReadyBatch(tid, maxKey, max)
		return ps, nil
	}
	start := obs.Now()
	ps, _ := s.heapq.PopReadyBatch(tid, maxKey, max)
	if len(ps) > 0 {
		o.Lat(tid, obs.OpPoll, start)
		t.ostats.Delivered(len(ps))
		o.Event(tid, obs.OpPoll, t.ostats, 0)
	}
	return ps, nil
}

// NackDelayed returns a consumed message to a delay topic with a new
// deadline of now+delay: the retry-with-backoff idiom. It is a plain
// durable publish (one fence) of the payload the consumer already
// holds — the broker does not track redelivery lineage, so the
// message's new incarnation is indistinguishable from a fresh
// publish. Delay topics only: on a priority topic the rank, not the
// clock, orders delivery, so a backoff nack has no meaning there.
func (t *Topic) NackDelayed(tid int, payload []byte, now, delay uint64) error {
	if t.cfg.Kind != KindDelay {
		return t.kindErr("NackDelayed", KindDelay)
	}
	deadline := now + delay
	if deadline < now { // saturate: a huge backoff must not wrap to "ready now"
		deadline = ^uint64(0)
	}
	return t.PublishAt(tid, payload, deadline)
}

// HeapDepth reports the heap topic's total undelivered messages
// (ready or not). Zero persists; FIFO topics report 0.
func (t *Topic) HeapDepth() int {
	if !t.cfg.Kind.heapKind() || !t.enter() {
		return 0
	}
	defer t.exit()
	return t.shards[0].heapq.Depth()
}

// ReadyDepth reports how many messages are deliverable at now: all of
// HeapDepth on a priority topic, the deadline<=now prefix on a delay
// topic. Zero persists; FIFO topics report 0.
func (t *Topic) ReadyDepth(now uint64) int {
	if !t.cfg.Kind.heapKind() || !t.enter() {
		return 0
	}
	defer t.exit()
	if t.cfg.Kind == KindPriority {
		now = ^uint64(0)
	}
	return t.shards[0].heapq.ReadyDepth(now)
}

// MinKey reports the smallest undelivered key — the next deadline on
// a delay topic, the best rank on a priority topic — and whether the
// heap is non-empty. Zero persists.
func (t *Topic) MinKey() (uint64, bool) {
	if !t.cfg.Kind.heapKind() || !t.enter() {
		return 0, false
	}
	defer t.exit()
	return t.shards[0].heapq.MinKey()
}

// PublishAt is the broker-level convenience: resolve the named delay
// topic and publish at deadline.
func (b *Broker) PublishAt(tid int, topic string, payload []byte, deadline uint64) error {
	t := b.Topic(topic)
	if t == nil {
		return fmt.Errorf("broker: unknown topic %q", topic)
	}
	return t.PublishAt(tid, payload, deadline)
}

// PublishPriority is the broker-level convenience: resolve the named
// priority topic and publish at rank prio.
func (b *Broker) PublishPriority(tid int, topic string, payload []byte, prio uint64) error {
	t := b.Topic(topic)
	if t == nil {
		return fmt.Errorf("broker: unknown topic %q", topic)
	}
	return t.PublishPriority(tid, payload, prio)
}
