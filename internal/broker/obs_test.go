package broker

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// obsWorkload drives a fixed deterministic mix — publishes, batch
// publishes, plain polls, acked polls with acks, a runtime topic
// creation — so persist counts can be compared across runs that differ
// only in observation.
func obsWorkload(t *testing.T, b *Broker) {
	t.Helper()
	events, jobs := b.Topic("events"), b.Topic("jobs")
	for i := uint64(0); i < 100; i++ {
		events.Publish(0, U64(i))
		jobs.PublishKey(0, U64(i%5), blobPayload(i))
	}
	var batch [][]byte
	for i := uint64(100); i < 140; i++ {
		batch = append(batch, U64(i))
	}
	events.PublishBatch(0, batch)
	if _, err := b.CreateTopic(0, TopicConfig{Name: "acked", Shards: 2, Acked: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateAckGroup(0, AckGroupConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 60; i++ {
		b.Topic("acked").Publish(0, U64(i))
	}

	g, err := b.NewGroup([]string{"events", "jobs"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)
	for {
		if ms := c.PollBatch(0, 16); len(ms) == 0 {
			break
		}
	}
	if _, ok := c.Poll(0); ok {
		t.Fatal("plain drain incomplete")
	}

	ag, err := b.NewGroupAcked([]string{"acked"}, 1, LeaseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ac := ag.Consumer(0)
	for {
		ms := ac.PollBatch(0, 8)
		if len(ms) == 0 {
			break
		}
		ac.Ack(0)
	}
}

// TestObserverZeroPersistCost pins the cost budget: the identical
// deterministic workload run with and without an observer issues
// exactly the same fences, NTStores and flushes. Observation lives
// entirely outside simulated NVRAM.
func TestObserverZeroPersistCost(t *testing.T) {
	run := func(o *obs.Observer) pmem.Stats {
		hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
		b, err := Open(hs, Options{Threads: 2, Observer: o})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range twoTopics() {
			if _, err := b.CreateTopic(0, tc); err != nil {
				t.Fatal(err)
			}
		}
		d := hs.TotalDelta()
		obsWorkload(t, b)
		return d.Delta()
	}
	plain := run(nil)
	observed := run(obs.New(obs.Config{Threads: 2, TraceEvents: 256}))
	if plain.Fences != observed.Fences || plain.NTStores != observed.NTStores || plain.Flushes != observed.Flushes {
		t.Fatalf("observer changed persist behavior:\n  plain:    fences=%d ntstores=%d flushes=%d\n  observed: fences=%d ntstores=%d flushes=%d",
			plain.Fences, plain.NTStores, plain.Flushes,
			observed.Fences, observed.NTStores, observed.Flushes)
	}
	if plain.Fences == 0 || plain.NTStores == 0 {
		t.Fatal("workload issued no persists; the comparison is vacuous")
	}
}

// TestObserverGauges checks the counters and lag the workload should
// produce: everything published is delivered and (on the acked topic)
// acked, frontiers catch published heads, and the snapshot agrees.
func TestObserverGauges(t *testing.T) {
	o := obs.New(obs.Config{Threads: 2})
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := Open(hs, Options{Threads: 2, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range twoTopics() {
		if _, err := b.CreateTopic(0, tc); err != nil {
			t.Fatal(err)
		}
	}
	obsWorkload(t, b)

	s := o.Snapshot()
	byName := map[string]obs.TopicSnapshot{}
	for _, ts := range s.Topics {
		byName[ts.Topic] = ts
	}
	if got := byName["events"]; got.Published != 140 || got.Delivered != 140 || got.Depth != 0 {
		t.Fatalf("events gauges: %+v", got)
	}
	if got := byName["jobs"]; got.Published != 100 || got.Delivered != 100 {
		t.Fatalf("jobs gauges: %+v", got)
	}
	if got := byName["acked"]; got.Published != 60 || got.Delivered != 60 || got.Acked != 60 || got.Redelivered != 0 {
		t.Fatalf("acked gauges: %+v", got)
	}
	for _, gs := range s.Groups {
		if gs.MaxLag != 0 {
			t.Fatalf("drained group %s reports lag: %+v", gs.Group, gs)
		}
	}
	for _, opName := range []string{"publish", "poll", "ack", "admin"} {
		op, ok := s.Op(opName)
		if !ok || op.Count == 0 {
			t.Fatalf("no %s latency samples recorded", opName)
		}
	}
	if len(s.Heaps) != 2 || s.Heaps[0].Fences == 0 {
		t.Fatalf("heap persist counters missing: %+v", s.Heaps)
	}

	// Lag rises with a fresh backlog and MaxLag sees the biggest one.
	b.Topic("events").Publish(0, U64(999))
	var lag uint64
	for _, gs := range o.Snapshot().Groups {
		if gs.MaxLag > lag {
			lag = gs.MaxLag
		}
	}
	if lag != 1 {
		t.Fatalf("one-message backlog reports max lag %d, want 1", lag)
	}
}

// TestObserverNackRedelivery checks redelivery accounting: nacked
// messages count as delivered+redelivered on re-serve and the
// frontier does not double-advance, so lag still drains to zero.
func TestObserverNackRedelivery(t *testing.T) {
	o := obs.New(obs.Config{Threads: 1})
	hs := pmem.NewSet(1, pmem.Config{Bytes: 32 << 20, MaxThreads: 1})
	b, err := Open(hs, Options{Threads: 1, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "t", Shards: 1, Acked: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateAckGroup(0, AckGroupConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		b.Topic("t").Publish(0, U64(i))
	}
	g, err := b.NewGroupAcked([]string{"t"}, 1, LeaseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)
	if ms := c.PollBatch(0, 10); len(ms) != 10 {
		t.Fatalf("delivered %d, want 10", len(ms))
	}
	if n, _ := c.Nack(0); n != 10 {
		t.Fatalf("nacked %d, want 10", n)
	}
	if ms := c.PollBatch(0, 10); len(ms) != 10 {
		t.Fatal("redelivery incomplete")
	}
	c.Ack(0)

	ts := b.Topic("t").Stats()
	pub, del, ack, redel := ts.Counts()
	if pub != 10 || del != 20 || ack != 10 || redel != 10 {
		t.Fatalf("counters pub=%d del=%d ack=%d redel=%d, want 10,20,10,10", pub, del, ack, redel)
	}
	if d := ts.Depth(); d != 0 {
		t.Fatalf("depth = %d, want 0", d)
	}
	if lag := g.Stats().MaxLag(); lag != 0 {
		t.Fatalf("lag = %d, want 0", lag)
	}
}

// TestObserverSurvivesRecovery: an observer handed to the recovered
// broker keeps counting into the same topic series.
func TestObserverSurvivesRecovery(t *testing.T) {
	o := obs.New(obs.Config{Threads: 2})
	hs := pmem.NewSet(2, pmem.Config{Bytes: 4 << 20, MaxThreads: 2, Mode: pmem.ModeCrash})
	b, err := Open(hs, Options{Threads: 2, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "t", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		b.Topic("t").Publish(0, U64(i))
	}
	hs.CrashNow()
	hs.FinalizeCrash(nil)
	hs.Restart()
	b2, err := Open(hs, Options{Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		b2.Topic("t").Publish(0, U64(i))
	}
	s := o.Snapshot()
	if len(s.Topics) != 1 {
		t.Fatalf("recovery duplicated the topic series: %+v", s.Topics)
	}
	if s.Topics[0].Published != 25 {
		t.Fatalf("published = %d, want 25 across the crash", s.Topics[0].Published)
	}
}

// TestAckedSubscribeWhilePolling exercises the hard half of the
// Subscribe contract with the gauges watching: an acked group is
// subscribed to a new topic while a member is actively polling and
// acking on its own tid, and the lag read through the new gauges must
// stay sane (bounded by what was actually published, draining to zero
// once consumption catches up).
func TestAckedSubscribeWhilePolling(t *testing.T) {
	o := obs.New(obs.Config{Threads: 3})
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, MaxThreads: 3})
	b, err := Open(hs, Options{Threads: 3, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "a", Shards: 2, Acked: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(0, TopicConfig{Name: "b", Shards: 2, Acked: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateAckGroup(0, AckGroupConfig{}); err != nil {
		t.Fatal(err)
	}
	const perTopic = 300
	for i := uint64(0); i < perTopic; i++ {
		b.Topic("a").Publish(0, U64(i))
		b.Topic("b").Publish(0, U64(i))
	}
	g, err := b.NewGroupAcked([]string{"a"}, 1, LeaseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)

	var wg sync.WaitGroup
	var delivered int
	wg.Add(1)
	go func() { // member polls and acks on tid 1 throughout
		defer wg.Done()
		idle := 0
		for idle < 100 {
			ms := c.PollBatch(1, 7)
			delivered += len(ms)
			if len(ms) == 0 {
				idle++
			} else {
				idle = 0
			}
			c.Ack(1)
		}
	}()
	if err := g.Subscribe(2, "b"); err != nil { // concurrent, own tid
		t.Fatal(err)
	}
	// Lag read mid-flight must never exceed what exists to consume.
	for i := 0; i < 50; i++ {
		if lag := g.Stats().MaxLag(); lag > perTopic {
			t.Errorf("lag %d exceeds per-topic backlog %d", lag, perTopic)
			break
		}
	}
	wg.Wait()

	if delivered != 2*perTopic {
		t.Fatalf("delivered %d, want %d", delivered, 2*perTopic)
	}
	if lag := g.Stats().MaxLag(); lag != 0 {
		t.Fatalf("drained lag = %d, want 0", lag)
	}
	s := o.Snapshot()
	for _, ts := range s.Topics {
		if ts.Acked != perTopic || ts.Depth != 0 {
			t.Fatalf("topic %s after drain: %+v", ts.Topic, ts)
		}
	}
}

// benchBroker builds a 1-heap, 2-topic broker for the ± observer
// benchmarks, returning the publish topic and a plain consumer.
func benchBroker(b *testing.B, o *obs.Observer) (*Topic, *Consumer) {
	b.Helper()
	hs := pmem.NewSet(1, pmem.Config{Bytes: 256 << 20, MaxThreads: 2})
	br, err := Open(hs, Options{Threads: 2, Observer: o})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := br.CreateTopic(0, TopicConfig{Name: "t", Shards: 4}); err != nil {
		b.Fatal(err)
	}
	g, err := br.NewGroup([]string{"t"}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return br.Topic("t"), g.Consumer(0)
}

// BenchmarkPublishPollDisabled vs BenchmarkPublishPollEnabled measure
// the instrumentation cost: Disabled pins the one-branch budget (no
// measurable regression vs the pre-observability baseline), Enabled
// the full record-path cost.
func BenchmarkPublishPollDisabled(b *testing.B) { benchPublishPoll(b, nil) }

func BenchmarkPublishPollEnabled(b *testing.B) {
	benchPublishPoll(b, obs.New(obs.Config{Threads: 2}))
}

func benchPublishPoll(b *testing.B, o *obs.Observer) {
	topic, c := benchBroker(b, o)
	p := U64(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topic.Publish(0, p)
		if i%16 == 15 {
			c.PollBatch(1, 16)
		}
	}
}

// TestPublishPathAllocFree pins that observation adds no allocations
// to the fixed-payload publish hot path.
func TestPublishPathAllocFree(t *testing.T) {
	topicOf := func(o *obs.Observer) *Topic {
		hs := pmem.NewSet(1, pmem.Config{Bytes: 64 << 20, MaxThreads: 1})
		b, err := Open(hs, Options{Threads: 1, Observer: o})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.CreateTopic(0, TopicConfig{Name: "t", Shards: 2}); err != nil {
			t.Fatal(err)
		}
		return b.Topic("t")
	}
	p := U64(1)
	disabled := topicOf(nil)
	observed := topicOf(obs.New(obs.Config{Threads: 1, TraceEvents: 64}))
	base := testing.AllocsPerRun(300, func() { disabled.Publish(0, p) })
	withObs := testing.AllocsPerRun(300, func() { observed.Publish(0, p) })
	if withObs > base {
		t.Fatalf("observer adds allocations to Publish: %.1f -> %.1f per op", base, withObs)
	}
}
