package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Membership protocol for acked consumer groups: fencing tokens,
// heartbeats, an expiry scanner, and partial adoption.
//
// The invariant everything hangs on: a shard's lease line carries an
// epoch (Lease.Epoch, word 5), and every takeover — Reassign, Scan,
// Steal — bumps the group's volatile epoch authority (Group.epochs)
// and writes the bumped value into the line under the same fence that
// installs the new owner. A member that was fenced off a shard holds
// the pre-bump epoch; its next acknowledgment-path op (Ack, Nack,
// Renew, Heartbeat) is refused with ErrFenced before any persist
// instruction executes. That refusal at the ack line is sufficient
// without any consensus round: the durable processed frontier only
// advances through Ack, so a stale owner that is refused there can
// never mark a message processed that the new owner will also
// process — the presumed-dead-resurfacing hole closes at the single
// point where delivery state becomes durable. Ownership changes are
// serialized under Group.mu plus the involved members' locks, so
// epoch reads and bumps never race; the epoch in NVRAM exists so a
// recovered broker re-seeds the authority (NewGroupAcked reads it at
// bind) instead of restarting at zero behind a pre-crash line.
// Pre-epoch (v<=4) regions never wrote word 5; their lines decode as
// epoch 0, which seeds the authority at 0 — valid, and bumped on the
// first takeover like any other value.

// Typed errors of the membership protocol. All returned wrapped
// (errors.Is) with context.
var (
	// ErrFenced reports that the calling member was fenced off one or
	// more of its shards by a takeover and held a stale epoch; the
	// refused op changed nothing durable.
	ErrFenced = errors.New("broker: member fenced (stale lease epoch)")
	// ErrBadMember reports an out-of-range, duplicate, or missing
	// member argument.
	ErrBadMember = errors.New("broker: bad member")
	// ErrSelfTransfer reports a reassignment naming the source member
	// as a target.
	ErrSelfTransfer = errors.New("broker: cannot reassign a member's shards to itself")
	// ErrUnexpiredLease reports a takeover refused because the source
	// member still holds a durably unexpired lease (and force was not
	// set): it may be alive and mid-window.
	ErrUnexpiredLease = errors.New("broker: lease unexpired")
)

// fencedShard records one shard taken from a member: the epoch it
// held and the epoch that superseded it. The member's next
// acknowledgment-path op consumes the records and returns ErrFenced.
type fencedShard struct {
	t     *Topic
	shard int
	stale uint64
	cur   uint64
}

// takeFenced consumes this member's fencing records, returning
// ErrFenced if there were any. Caller holds c.mu. Costs no persist
// instructions — refusing a stale owner must not itself touch NVRAM.
func (c *Consumer) takeFenced(tid int) error {
	if len(c.fenced) == 0 {
		return nil
	}
	f := c.fenced
	c.fenced = nil
	if o := c.g.b.obs; o != nil {
		c.g.ostats.Fenced(1)
		o.Event(tid, obs.OpScan, f[0].t.ostats, f[0].shard)
	}
	return fmt.Errorf("%w: member %d lost %d shard(s) to takeover (first %s/%d: held epoch %d, superseded by %d)",
		ErrFenced, c.id, len(f), f[0].t.Name(), f[0].shard, f[0].stale, f[0].cur)
}

// Heartbeat renews this member's leases one TTL past the group clock.
// It rides Renew's elision: while the durable deadlines already cover
// now+TTL — the common case for a healthy member heartbeating more
// often than the clock advances a TTL — it issues zero persist
// instructions, so heartbeats are free until a deadline actually
// needs moving. Returns ErrFenced (without renewing anything) when
// the member was fenced off shards since its last op.
func (c *Consumer) Heartbeat(tid int) error {
	return c.Renew(tid, c.g.now()+c.g.ttl)
}

// Reassign deals every shard of member `from` out across `targets`,
// least-loaded-first: each shard goes to the target currently owning
// the fewest shards (ties to the lowest index), so a dead member's
// load splits evenly instead of doubling one survivor. Per shard the
// unacknowledged suffix is queued on its new owner for redelivery in
// index order (per-shard FIFO preserved), the fencing epoch is
// bumped, and the lease line is rewritten to the new owner and epoch;
// all rewrites ride one fence per touched persistence domain, so the
// cost is O(shards moved) store+flush pairs plus the fences. `from`
// is marked fenced: its next acknowledgment-path op gets ErrFenced.
//
// Unless force is set, Reassign refuses (ErrUnexpiredLease) while any
// of from's leases is durably unexpired at the group clock — a live
// member may be mid-window. force takes the shards regardless: the
// fencing epoch makes that safe (the displaced member's acks are
// refused), at the price of redelivering its in-flight window.
//
// Returns the number of redeliveries queued. tid may be any thread id
// owned by the caller.
func (g *Group) Reassign(tid, from int, targets []int, force bool) (int, error) {
	if !g.leased {
		return 0, fmt.Errorf("broker: Reassign on a group without acknowledgments (use NewGroupAcked)")
	}
	if from < 0 || from >= len(g.consumers) {
		return 0, fmt.Errorf("%w: Reassign from member %d of %d", ErrBadMember, from, len(g.consumers))
	}
	if len(targets) == 0 {
		return 0, fmt.Errorf("%w: Reassign needs at least one target", ErrBadMember)
	}
	seen := make(map[int]bool, len(targets))
	for _, t := range targets {
		if t < 0 || t >= len(g.consumers) {
			return 0, fmt.Errorf("%w: Reassign target %d of %d", ErrBadMember, t, len(g.consumers))
		}
		if t == from {
			return 0, fmt.Errorf("%w: Reassign(%d -> %d)", ErrSelfTransfer, from, t)
		}
		if seen[t] {
			return 0, fmt.Errorf("%w: duplicate Reassign target %d", ErrBadMember, t)
		}
		seen[t] = true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := append([]int{from}, targets...)
	sort.Ints(ids)
	for _, id := range ids {
		g.consumers[id].mu.Lock()
		defer g.consumers[id].mu.Unlock()
	}
	if !force {
		now := g.now()
		for _, r := range g.consumers[from].refs {
			if d := g.cache[r.global].durable; d.Active && d.Owner == from && d.Deadline > now {
				return 0, fmt.Errorf("%w: member %d's lease on %s/%d (deadline %d > now %d)",
					ErrUnexpiredLease, from, r.t.Name(), r.shard, d.Deadline, now)
			}
		}
	}
	_, moved := g.reassignLocked(tid, from, targets)
	return moved, nil
}

// reassignLocked moves every shard of `from` to the least-loaded of
// `targets`, bumping epochs and rewriting lease lines under one
// leaseWriter commit. Caller holds g.mu and the locks of `from` and
// every target. Returns shards moved and redeliveries queued.
func (g *Group) reassignLocked(tid, from int, targets []int) (shards, moved int) {
	a := g.consumers[from]
	if len(a.refs) == 0 {
		return 0, 0
	}
	// The displaced member's own redelivery queue is rebuilt from the
	// queues' unacked snapshots below; drop it to avoid duplicates.
	a.pending = nil
	w := leaseWriter{g: g, tid: tid}
	deadline := g.now() + g.ttl
	for _, r := range a.refs {
		to := targets[0]
		for _, t := range targets[1:] {
			if len(g.consumers[t].refs) < len(g.consumers[to].refs) {
				to = t
			}
		}
		b := g.consumers[to]
		stale := g.epochs[r.global]
		g.epochs[r.global]++
		r.epoch = g.epochs[r.global]
		a.fenced = append(a.fenced, fencedShard{t: r.t, shard: r.shard, stale: stale, cur: r.epoch})
		if !r.t.enter() {
			// Retired topic: its messages were dropped with it, so there
			// is nothing to redeliver — retire any stale record at the
			// new epoch and move the inert ref.
			r.pendingN, r.unackedN = 0, 0
			if d := g.cache[r.global].durable; d.Active {
				w.write(r.global, Lease{Epoch: r.epoch})
			}
			b.refs = append(b.refs, r)
			shards++
			continue
		}
		s := r.t.shards[r.shard]
		floor := s.ackedTo()
		ps, idxs := s.unacked()
		r.t.exit()
		r.deliveredTo, r.pendingN, r.unackedN = floor, len(ps), 0
		for i := range ps {
			b.pending = append(b.pending, pendingMsg{r: r, idx: idxs[i], payload: ps[i]})
		}
		moved += len(ps)
		if len(ps) > 0 {
			r.leasedTo = idxs[len(idxs)-1]
			w.write(r.global, Lease{
				Active: true, Owner: to, Epoch: r.epoch,
				Lo: floor + 1, Hi: r.leasedTo,
				Deadline: deadline,
			})
		} else {
			r.leasedTo = floor
			if d := g.cache[r.global].durable; d.Active {
				// Fully acked: retire the stale record, at the new epoch.
				w.write(r.global, Lease{Epoch: r.epoch})
			}
		}
		b.refs = append(b.refs, r)
		shards++
	}
	a.refs = nil
	a.next = 0
	w.commit()
	if g.ostats != nil {
		g.ostats.Reassigned(shards)
	}
	return shards, moved
}

// ScanReport summarizes one expiry scan.
type ScanReport struct {
	// Now is the clock instant deadlines were evaluated against.
	Now uint64
	// Expired lists the members fenced out: each held at least one
	// durable lease and every one of its deadlines had passed.
	Expired []int
	// Shards counts shards reassigned off expired members.
	Shards int
	// Moved counts unacknowledged messages queued for redelivery on
	// survivors.
	Moved int
}

// Scan is the group's expiry scanner: it detects members whose every
// durable lease deadline has passed at `now` — they stopped
// heartbeating long enough ago that their windows are forfeit — and
// deals each one's shards across the surviving members
// (reassignLocked semantics: least-loaded-first, unacked suffix
// redelivered, epochs bumped, the member fenced). A member holding no
// lease is idle, not dead: it is never fenced, so a scan right after
// a quiet period expires nobody. When every lease-holding member has
// expired there is no survivor to adopt; the report lists them and
// nothing moves.
//
// A scan that expires nobody reads only volatile state and issues
// zero persist instructions, so a janitor may run it as often as it
// likes. tid may be any thread id owned by the caller; Scan takes the
// group and every member lock, so it is safe beside live traffic.
func (g *Group) Scan(tid int, now uint64) (ScanReport, error) {
	if !g.leased {
		return ScanReport{}, fmt.Errorf("broker: Scan on a group without acknowledgments (use NewGroupAcked)")
	}
	o := g.b.obs
	var start int64
	if o != nil {
		start = obs.Now()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, c := range g.consumers {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	rep := ScanReport{Now: now}
	dead := make([]bool, len(g.consumers))
	for i, c := range g.consumers {
		held, expired := 0, true
		for _, r := range c.refs {
			d := g.cache[r.global].durable
			if !d.Active || d.Owner != i {
				continue
			}
			// A retired topic's lease holds no obligation either way:
			// its messages were dropped with the topic.
			if !r.t.enter() {
				continue
			}
			// Ack never rewrites lease lines (that is what keeps an ack
			// batch at one NTStore per shard), so a fully acked window
			// leaves an Active line behind with a deadline nobody
			// maintains. Such a moot lease holds no obligation: the
			// member is idle, not dead.
			moot := r.t.shards[r.shard].ackedTo() >= r.leasedTo
			r.t.exit()
			if moot {
				continue
			}
			held++
			if d.Deadline > now {
				expired = false
				break
			}
		}
		if held > 0 && expired {
			dead[i] = true
			rep.Expired = append(rep.Expired, i)
		}
	}
	if len(rep.Expired) > 0 {
		var survivors []int
		for i := range g.consumers {
			if !dead[i] {
				survivors = append(survivors, i)
			}
		}
		if len(survivors) > 0 {
			for _, from := range rep.Expired {
				s, m := g.reassignLocked(tid, from, survivors)
				rep.Shards += s
				rep.Moved += m
			}
		}
	}
	if o != nil {
		g.ostats.Scanned(1)
		o.Lat(tid, obs.OpScan, start)
		o.Event(tid, obs.OpScan, nil, -1)
	}
	return rep, nil
}

// Steal is the work-stealing variant of takeover: an idle member
// claims ONE shard whose durable lease has expired at the group
// clock, from whichever member holds it, with the same epoch bump,
// fencing and unacked-suffix redelivery as Reassign — one shard's
// store+flush and one fence. It reports whether a shard was found
// (false with no error means nothing is expired) and the
// redeliveries queued. Unlike most Consumer methods it may be called
// from any goroutine (it takes the group and every member lock); tid
// must still be owned by the caller.
func (c *Consumer) Steal(tid int) (bool, int, error) {
	g := c.g
	if !g.leased {
		return false, 0, fmt.Errorf("broker: Steal on a group without acknowledgments (use NewGroupAcked)")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.consumers {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	now := g.now()
	for vi, v := range g.consumers {
		if v == c {
			continue
		}
		for ri, r := range v.refs {
			d := g.cache[r.global].durable
			if !d.Active || d.Owner != vi || d.Deadline > now {
				continue
			}
			// A retired topic holds no stealable work, and a fully
			// acked (moot) lease none either; see the matching checks
			// in Scan.
			if !r.t.enter() {
				continue
			}
			moot := r.t.shards[r.shard].ackedTo() >= r.leasedTo
			r.t.exit()
			if moot {
				continue
			}
			moved := g.stealShardLocked(tid, v, c, ri)
			return true, moved, nil
		}
	}
	return false, 0, nil
}

// stealShardLocked moves v.refs[ri] to member `to`. Caller holds g.mu
// and every member lock.
func (g *Group) stealShardLocked(tid int, v, to *Consumer, ri int) int {
	r := v.refs[ri]
	stale := g.epochs[r.global]
	g.epochs[r.global]++
	r.epoch = g.epochs[r.global]
	v.fenced = append(v.fenced, fencedShard{t: r.t, shard: r.shard, stale: stale, cur: r.epoch})
	// Unlike a whole-member reassign, the victim keeps its other
	// shards, so only this shard's queued redeliveries are dropped
	// (they are rebuilt from the queue's unacked snapshot below).
	if r.pendingN > 0 {
		kept := v.pending[:0]
		for _, p := range v.pending {
			if p.r != r {
				kept = append(kept, p)
			}
		}
		v.pending = kept
	}
	v.refs = append(v.refs[:ri], v.refs[ri+1:]...)
	if len(v.refs) == 0 {
		v.next = 0
	} else {
		v.next %= len(v.refs)
	}
	w := leaseWriter{g: g, tid: tid}
	deadline := g.now() + g.ttl
	if !r.t.enter() {
		// Retired between the caller's check and here: nothing to
		// redeliver (see reassignLocked).
		r.pendingN, r.unackedN = 0, 0
		if d := g.cache[r.global].durable; d.Active {
			w.write(r.global, Lease{Epoch: r.epoch})
		}
		to.refs = append(to.refs, r)
		w.commit()
		return 0
	}
	s := r.t.shards[r.shard]
	floor := s.ackedTo()
	ps, idxs := s.unacked()
	r.t.exit()
	r.deliveredTo, r.pendingN, r.unackedN = floor, len(ps), 0
	for i := range ps {
		to.pending = append(to.pending, pendingMsg{r: r, idx: idxs[i], payload: ps[i]})
	}
	if len(ps) > 0 {
		r.leasedTo = idxs[len(idxs)-1]
		w.write(r.global, Lease{
			Active: true, Owner: to.id, Epoch: r.epoch,
			Lo: floor + 1, Hi: r.leasedTo,
			Deadline: deadline,
		})
	} else {
		r.leasedTo = floor
		if d := g.cache[r.global].durable; d.Active {
			w.write(r.global, Lease{Epoch: r.epoch})
		}
	}
	to.refs = append(to.refs, r)
	w.commit()
	if g.ostats != nil {
		g.ostats.Stolen(1)
	}
	return len(ps)
}

// Janitor is a background expiry scanner started by StartJanitor.
type Janitor struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartJanitor runs Scan in a background goroutine with a jittered
// period (uniform in [period/2, 3*period/2), so a fleet of groups
// never scans in lockstep), at the group clock. tid must be a thread
// id reserved for the janitor — the one-goroutine-per-tid rule
// applies to the scans it issues. Stop it before crashing the heap
// set in tests: the janitor does not expect simulated crashes.
func (g *Group) StartJanitor(tid int, period time.Duration) (*Janitor, error) {
	if !g.leased {
		return nil, fmt.Errorf("broker: StartJanitor on a group without acknowledgments (use NewGroupAcked)")
	}
	if period <= 0 {
		return nil, fmt.Errorf("broker: StartJanitor period must be positive, got %v", period)
	}
	j := &Janitor{stop: make(chan struct{}), done: make(chan struct{})}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	go func() {
		defer close(j.done)
		for {
			d := period/2 + time.Duration(rng.Int63n(int64(period)))
			select {
			case <-j.stop:
				return
			case <-time.After(d):
			}
			g.Scan(tid, g.now())
		}
	}()
	return j, nil
}

// Stop halts the janitor and waits for its goroutine to exit. Stop is
// idempotent: teardown paths (defer stacks, signal handlers, tests)
// routinely race to stop the same janitor, and a second Stop must wait
// for the exit like the first instead of panicking on a double close.
func (j *Janitor) Stop() {
	j.once.Do(func() { close(j.stop) })
	<-j.done
}
