// Package broker is a durably linearizable, sharded, multi-topic
// message broker composed from the paper's second-amendment queues —
// the use case the paper's introduction motivates (IBM MQ, Oracle
// Tuxedo MQ, RabbitMQ keep FIFO queues at their core, today structured
// for block storage; NVRAM queues remove the marshaling and
// file-system layers), treated as a first-class recoverable system in
// the spirit of Gray's "Queues Are Databases".
//
// A Broker manages N topics, each split into M shards, spread over a
// pmem.HeapSet — an ordered set of independent NVRAM domains (NUMA
// sockets / DIMM sets). Every shard is an independent durable queue —
// an OptUnlinkedQ for fixed 8-byte payloads or a blobq.Queue for
// variable byte payloads — living in its own root-slot window of one
// member heap (see pmem.View). Shard placement is pluggable: the
// default round-robin policy spreads load evenly across domains, the
// block policy keeps contiguous shard ranges on one domain so that a
// consumer owning them fences a single domain per poll (heap-affine
// consumption; pair with NewGroupAffine). Producers route messages to
// shards round-robin or by key hash, and may amortize durability cost
// with a batch-publish path that rides one SFENCE per batch. Consumers
// form groups; each shard is owned by exactly one group member, so
// per-shard FIFO order is preserved end-to-end.
//
// The broker is administered live: Open brings up an empty (or
// recovered) broker and CreateTopic/CreateAckGroup append checksummed
// records to a durable catalog log at runtime, each creation made
// visible only by its anchor stamp's persist (see admin.go and
// cataloglog.go). The lifecycle is complete: DeleteTopic retires a
// topic with a tombstone record under the same ordered-persist
// discipline and returns its root-slot windows to a size-bucketed
// free list that CreateTopic reuses, so churning workloads reach a
// steady-state NVRAM footprint; CompactCatalog rewrites the live
// records into a fresh log generation when tombstone debris
// accumulates (and doubles as the log's resize path).
// New/NewSet/Recover/RecoverSet remain as thin compatibility
// wrappers.
//
// The broker is observable without being perturbed: Options.Observer
// accepts an obs.Observer that receives per-op latency samples
// (publish/poll/ack/admin), per-topic message counters, per-group
// per-shard lag, and trace events. Observation issues no persist
// instructions — enabling it adds zero fences, zero NTStores and zero
// flushes to every operation — and with no observer each
// instrumentation site costs one predictable branch. Group.Subscribe's
// concurrency rules are a hard contract: acked groups may be
// subscribed while members poll; plain groups must be quiescent (see
// Subscribe).
//
// Acked groups manage their own membership: lease lines carry fencing
// epochs bumped on every takeover, so a member displaced by the expiry
// scanner (Group.Scan, or the background Janitor), by a partial
// split (Group.Reassign) or by work-stealing (Consumer.Steal) has its
// stale acknowledgments refused with ErrFenced instead of corrupting
// the exactly-once frontier; Consumer.Heartbeat keeps a healthy
// member's leases alive at zero persist cost when its durable
// deadlines still cover the TTL (see membership.go).
//
// The tail-latency layer rides on the same paths without changing
// their contracts. Topic.NewPublisher buffers payloads into
// batch.Policy-sized windows (Fixed, or AIMD adapting between
// per-message and max-batch from arrival rate and fill), each window
// one batch publish — one fence — and under PublisherConfig.Pipeline
// the window's fence is deferred into the next flush so the
// write-pending queue drains while the producer keeps working
// (acknowledgment trails by one window; fence count is unchanged).
// Consumer.AckAsync defers an acknowledgment's covering fence the same
// way, traded against a documented at-least-once window on crash or
// takeover during the deferral. Poller services a consumer as a
// level-triggered event loop — drain everything ready, then park on an
// exponentially backed-off timer — so idle consumers cost ~0 CPU and
// ~0 persists instead of a spinning core (see poller.go).
//
// Durability contract: a publish is acknowledged when the call
// returns; from that point the message survives any crash of any
// subset of the heap set (the set shares one power supply, so a crash
// on one domain downs them all). With a pipelined Publisher the
// acknowledgment is the int returned by Publish/Flush — the same
// guarantee, reported one window later. The durable catalog, anchored at
// heap 0's root slot 0, records every topic's name, shard count,
// payload kind and every shard's (heapID, baseSlot) placement; every
// other member heap carries a membership stamp so recovery can tell a
// mis-assembled set from the real one. Recovery is two-phase: replay
// the catalog on heap 0, then replay the paper's per-queue recovery
// heap by heap (the per-heap phases run in parallel — domains are
// independent). A delivery is durable when Poll returns: the winning
// dequeue's persist covers it, so a delivered message is never
// re-delivered after a crash (delivered-or-recovered exactly once for
// acknowledged publishes).
package broker

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/blobq"
	"repro/internal/dheap"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/queues"
)

// slotsPerShard is the root-slot window width handed to each FIFO
// shard's queue. Eight covers the highest slot either queue kind uses
// (blobq uses slots 2,3,6,7 plus 4 in ack mode; OptUnlinkedQ uses 2,3
// plus 4 in ack mode).
const slotsPerShard = 8

// heapTopicSlots is the window width of a delay/priority shard: slot
// 0 anchors the dheap region, slot 1 is reserved for the per-group
// heap-cursor follow-on. Heap topics are the first window kind
// narrower than slotsPerShard, so re-creating one over a retired FIFO
// window exercises the free list's split-bucket path.
const heapTopicSlots = 2

// slotsForKind maps a topic kind to its shard-window width.
func slotsForKind(k TopicKind) int {
	if k == KindFIFO {
		return slotsPerShard
	}
	return heapTopicSlots
}

// TopicKind selects a topic's delivery order.
type TopicKind int

const (
	// KindFIFO is the default: per-shard FIFO order on the paper's
	// queues (OptUnlinkedQ / blobq).
	KindFIFO TopicKind = iota
	// KindDelay orders delivery by deadline: PublishAt(deadline)
	// publishes, DequeueReady(now) delivers pop-min among messages
	// whose deadline has passed. Backed by a dheap.Q.
	KindDelay
	// KindPriority orders delivery by ascending priority value;
	// every message is always ready. Backed by a dheap.Q.
	KindPriority
)

func (k TopicKind) String() string {
	switch k {
	case KindFIFO:
		return "fifo"
	case KindDelay:
		return "delay"
	case KindPriority:
		return "priority"
	default:
		return fmt.Sprintf("TopicKind(%d)", int(k))
	}
}

// heapKind reports whether k is one of the dheap-backed kinds.
func (k TopicKind) heapKind() bool { return k == KindDelay || k == KindPriority }

// slotAnchor is root slot 0 of every member heap: on heap 0 it anchors
// the durable catalog, on every other member the heap's membership
// stamp.
const slotAnchor = 0

// TopicConfig describes one topic.
type TopicConfig struct {
	// Name identifies the topic; at most 32 bytes, unique per broker.
	Name string
	// Shards is the number of independent durable queues the topic is
	// split over (>= 1). More shards mean more enqueue/dequeue
	// parallelism at the cost of ordering only per shard.
	Shards int
	// MaxPayload selects the shard queue kind: 0 means fixed 8-byte
	// payloads on OptUnlinkedQ (the cheapest path); > 0 means variable
	// payloads up to MaxPayload bytes on blobq.Queue.
	MaxPayload int
	// Acked makes the topic's shards ack-mode queues: delivery is a
	// durable lease (written before PollBatch returns) and a message is
	// consumed only when a Consumer.Ack covers it, so unacknowledged
	// messages are redelivered across both consumer crashes (lease
	// takeover, see Group.Adopt) and whole-broker crashes (recovery
	// resurrects everything beyond the acked frontier). Acked topics
	// are consumed through groups created with NewGroupAcked; plain
	// groups still work but acknowledge every delivery immediately.
	Acked bool
	// Kind selects the delivery order (default KindFIFO). Delay and
	// priority topics are heap-ordered (see heaptopic.go): they are
	// published with PublishAt/PublishPriority and consumed with
	// DequeueReady, require Shards == 1, and are incompatible with
	// Acked (heap delivery is its own durable consume protocol).
	Kind TopicKind
}

// PlacementPolicy chooses the member heap for one shard at topic
// creation time. topic and shard identify the shard, global is its
// ordinal in creation order across all topics, shards the topic's
// shard count and heaps the set size; the returned index must be in
// [0, heaps). The policy only runs inside CreateTopic — the catalog
// records the resulting (heapID, baseSlot) per shard, so recovery
// never needs the policy and custom policies are free to use any
// volatile state.
type PlacementPolicy func(topic, shard, global, shards, heaps int) int

// RoundRobinPlacement (the default) deals shards across the heap set
// in global creation order, balancing shard count per domain.
func RoundRobinPlacement(topic, shard, global, shards, heaps int) int {
	return global % heaps
}

// BlockPlacement keeps each topic's shards in contiguous runs per
// heap: shard s of a topic with n shards lands on heap s*heaps/n.
// Consumers that own contiguous shard ranges (see NewGroupAffine) then
// touch — and fence — a single persistence domain per poll.
func BlockPlacement(topic, shard, global, shards, heaps int) int {
	return shard * heaps / shards
}

// Config parameterizes the legacy whole-broker constructors New and
// NewSet, which remain as thin compatibility wrappers over the live
// administration API: Open brings up the broker, then every topic and
// ack group is created through CreateTopic/CreateAckGroup exactly as
// a runtime creation would be.
type Config struct {
	// Topics lists the topics to create. Order is preserved in the
	// durable catalog.
	Topics []TopicConfig
	// Threads bounds the thread ids that may call broker operations
	// (producers, consumers and the recovery thread all share this
	// space, as with the underlying queues).
	Threads int
	// Placement chooses each shard's member heap; nil means
	// RoundRobinPlacement. Ignored on a 1-heap set (everything lands
	// on heap 0) and by Recover (the catalog records placements).
	Placement PlacementPolicy
	// AckGroups allocates that many durable lease regions — one per
	// consumer group that will use acknowledgments (NewGroupAcked) —
	// each sized exactly to the config's shard total, mirroring the
	// write-once catalog's semantics. More regions (and regions with
	// growth headroom) can be created later with CreateAckGroup.
	AckGroups int
	// Observer, when non-nil, receives per-op latencies, topic/group
	// gauges and trace events (see Options.Observer for the contract).
	Observer *obs.Observer
}

// Broker is a sharded multi-topic durable message broker over a heap
// set. Methods taking a tid are safe for concurrent use as long as
// each tid is driven by at most one goroutine at a time.
//
// The broker has two planes. The data plane — Topic lookup, publish,
// poll — reads an immutable topic snapshot swapped atomically, so it
// is wait-free with respect to administration. The admin plane —
// CreateTopic, CreateAckGroup — appends records to the durable
// catalog log under an internal mutex and publishes a new snapshot;
// it may run concurrently with data-plane traffic as long as its tid
// is owned by the calling goroutine, like any other operation.
type Broker struct {
	hs        *pmem.HeapSet
	threads   int
	placement PlacementPolicy

	// obs is the optional observability sink (Options.Observer), fixed
	// for the broker's lifetime at Open. Invariant: when obs is non-nil,
	// every Topic carries its ostats and every group ref its cursor, so
	// the hot paths test only this one pointer. Observation never
	// touches pmem — an enabled observer adds zero fences, zero
	// NTStores and zero flushes (pinned by TestObserverZeroPersistCost).
	obs *obs.Observer

	// snap is the copy-on-write topic snapshot the data plane reads.
	snap atomic.Pointer[topicSet]

	// adminMu serializes administrative operations; cat is the v4
	// catalog log, nil on a broker recovered from a legacy write-once
	// catalog (v1/v2/v3) — such brokers refuse runtime creation.
	adminMu sync.Mutex
	cat     *catalogLog

	// Durable lease regions for acked consumer groups; regionMu guards
	// the slices (CreateAckGroup appends) and the bound flags, which
	// mark regions claimed by a live NewGroupAcked.
	regionMu sync.Mutex
	regions  []leaseRegion
	bound    []bool
}

// topicSet is one immutable data-plane snapshot: the live topics in
// catalog order, the name index, and the global shard-ordinal
// frontier (the next topic's first global shard ordinal). shardTotal
// is monotone — a deleted topic's ordinals are never reissued, so a
// stale lease line can never be adopted by a new topic's shard.
type topicSet struct {
	list       []*Topic
	byName     map[string]*Topic
	shardTotal int
}

// shard wraps one durable queue of either payload kind behind a
// byte-payload interface, together with its placement: heap is the
// member index (the fence domain), h the shard's root-slot view of it.
type shard struct {
	fixed *queues.OptUnlinkedQ // KindFIFO, MaxPayload == 0
	blob  *blobq.Queue         // KindFIFO, MaxPayload > 0
	heapq *dheap.Q             // KindDelay / KindPriority
	heap  int
	h     *pmem.Heap
	acked bool
}

func (s *shard) publish(tid int, p []byte) {
	if s.fixed != nil {
		s.fixed.Enqueue(tid, binary.LittleEndian.Uint64(p))
		return
	}
	s.blob.Enqueue(tid, p)
}

func (s *shard) publishBatch(tid int, ps [][]byte) {
	if s.fixed != nil {
		vs := make([]uint64, len(ps))
		for i, p := range ps {
			vs[i] = binary.LittleEndian.Uint64(p)
		}
		s.fixed.EnqueueBatch(tid, vs)
		return
	}
	s.blob.EnqueueBatch(tid, ps)
}

// publishBatchUnfenced issues the batch's stores and asynchronous
// flushes but leaves the blocking fence to the caller (the pipelined
// publish path — see Publisher). The batch must not be reported
// acknowledged until the caller fences tid on this shard's heap.
func (s *shard) publishBatchUnfenced(tid int, ps [][]byte) {
	if s.fixed != nil {
		vs := make([]uint64, len(ps))
		for i, p := range ps {
			vs[i] = binary.LittleEndian.Uint64(p)
		}
		s.fixed.EnqueueBatchUnfenced(tid, vs)
		return
	}
	s.blob.EnqueueBatchUnfenced(tid, ps)
}

func (s *shard) consume(tid int) ([]byte, bool) {
	if s.fixed != nil {
		v, ok := s.fixed.Dequeue(tid)
		if !ok {
			return nil, false
		}
		return U64(v), true
	}
	return s.blob.Dequeue(tid)
}

// consumeBatchUnfenced dequeues up to max messages, recording the
// shard's new head index with one NTStore but leaving the blocking
// fence (and the node retires) to the caller, so one fence per touched
// *heap* can cover several shards' dequeues in a single poll. dirty
// reports an outstanding NTStore; the caller must fence the tid on the
// shard's heap and then call completeBatch. On an acked shard the
// batch is instead leased and acknowledged immediately (self-fenced,
// one fence per shard): amortized acked consumption goes through
// leased groups, not this path.
func (s *shard) consumeBatchUnfenced(tid, max int) ([][]byte, bool) {
	if s.acked {
		if s.fixed != nil {
			vs := s.fixed.DequeueBatch(tid, max)
			if len(vs) == 0 {
				return nil, false
			}
			ps := make([][]byte, len(vs))
			for i, v := range vs {
				ps[i] = U64(v)
			}
			return ps, false
		}
		ps := s.blob.DequeueBatch(tid, max)
		if len(ps) == 0 {
			return nil, false
		}
		return ps, false
	}
	if s.fixed != nil {
		vs, dirty := s.fixed.DequeueBatchUnfenced(tid, max)
		if len(vs) == 0 {
			return nil, dirty
		}
		ps := make([][]byte, len(vs))
		for i, v := range vs {
			ps[i] = U64(v)
		}
		return ps, dirty
	}
	return s.blob.DequeueBatchUnfenced(tid, max)
}

func (s *shard) completeBatch(tid int) {
	if s.fixed != nil {
		s.fixed.CompleteBatch(tid)
		return
	}
	s.blob.CompleteBatch(tid)
}

// consumeLeased dequeues up to max messages from an acked shard
// without any persist instruction: the caller makes the delivery
// durable by fencing its lease record before exposing the messages,
// and the messages stay recoverable until ackTo covers them. idxs are
// the shard-queue indices (contiguous under shard ownership).
func (s *shard) consumeLeased(tid, max int) (ps [][]byte, idxs []uint64) {
	if s.fixed != nil {
		vs, idxs := s.fixed.DequeueLeased(tid, max)
		if len(vs) == 0 {
			return nil, nil
		}
		ps := make([][]byte, len(vs))
		for i, v := range vs {
			ps[i] = U64(v)
		}
		return ps, idxs
	}
	return s.blob.DequeueLeased(tid, max)
}

func (s *shard) ackToUnfenced(tid int, idx uint64) bool {
	if s.fixed != nil {
		return s.fixed.AckToUnfenced(tid, idx)
	}
	return s.blob.AckToUnfenced(tid, idx)
}

func (s *shard) completeAck(tid int) {
	if s.fixed != nil {
		s.fixed.CompleteAck(tid)
		return
	}
	s.blob.CompleteAck(tid)
}

func (s *shard) ackedTo() uint64 {
	if s.fixed != nil {
		return s.fixed.AckedTo()
	}
	return s.blob.AckedTo()
}

func (s *shard) unacked() (ps [][]byte, idxs []uint64) {
	if s.fixed != nil {
		vs, idxs := s.fixed.Unacked()
		ps := make([][]byte, len(vs))
		for i, v := range vs {
			ps[i] = U64(v)
		}
		return ps, idxs
	}
	return s.blob.Unacked()
}

// U64 encodes v as the 8-byte payload of a fixed topic.
func U64(v uint64) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, v)
	return p
}

// AsU64 decodes a fixed-topic payload.
func AsU64(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

// validateTopic checks one topic's configuration, shared by
// CreateTopic and the legacy Config validation.
func validateTopic(tc TopicConfig) error {
	if tc.Name == "" || len(tc.Name) > catNameBytes {
		return fmt.Errorf("broker: topic name %q must be 1..%d bytes", tc.Name, catNameBytes)
	}
	if tc.Shards <= 0 || tc.Shards > maxCatShards {
		return fmt.Errorf("broker: topic %q shard count %d out of range [1,%d]", tc.Name, tc.Shards, maxCatShards)
	}
	if tc.MaxPayload < 0 || uint64(tc.MaxPayload) >= uint64(1)<<catKindShift {
		return fmt.Errorf("broker: topic %q has invalid MaxPayload %d", tc.Name, tc.MaxPayload)
	}
	if tc.Kind < KindFIFO || tc.Kind > KindPriority {
		return fmt.Errorf("broker: topic %q has invalid kind %d", tc.Name, int(tc.Kind))
	}
	if tc.Kind.heapKind() {
		if tc.Shards != 1 {
			return fmt.Errorf("broker: %s topic %q must have exactly 1 shard (heap order is global), got %d",
				tc.Kind, tc.Name, tc.Shards)
		}
		if tc.Acked {
			return fmt.Errorf("broker: %s topic %q cannot be acked (heap delivery is its own durable consume protocol)",
				tc.Kind, tc.Name)
		}
	}
	return nil
}

func validate(cfg Config) error {
	if cfg.Threads <= 0 {
		return fmt.Errorf("broker: Threads must be positive")
	}
	if len(cfg.Topics) == 0 {
		return fmt.Errorf("broker: at least one topic required")
	}
	seen := map[string]bool{}
	for _, tc := range cfg.Topics {
		if err := validateTopic(tc); err != nil {
			return err
		}
		if seen[tc.Name] {
			return fmt.Errorf("broker: duplicate topic %q", tc.Name)
		}
		seen[tc.Name] = true
	}
	if cfg.AckGroups < 0 || cfg.AckGroups > maxCatAckGroups {
		return fmt.Errorf("broker: AckGroups %d out of range [0,%d]", cfg.AckGroups, maxCatAckGroups)
	}
	return nil
}

// checkSet verifies the heap set can host a broker with the given
// thread bound: every member must admit at least that many thread ids.
func checkSet(hs *pmem.HeapSet, threads int) error {
	for i := 0; i < hs.Len(); i++ {
		if mt := hs.Heap(i).MaxThreads(); mt < threads {
			return fmt.Errorf("broker: heap %d admits %d threads, broker needs %d", i, mt, threads)
		}
	}
	return nil
}

// build constructs the volatile broker skeleton and instantiates each
// shard's queue via mk, which receives the shard's root-slot view of
// its member heap. Shards are built heap by heap, the per-heap phases
// in parallel: member heaps are independent simulators with their own
// per-thread state, so tid 0 may run on each concurrently. This is the
// second phase of recovery.
func build(hs *pmem.HeapSet, threads int, topics []TopicConfig, locs [][]shardLoc, bases []int, nextGlobal int, mk func(view *pmem.Heap, tc TopicConfig) *shard) *Broker {
	b := &Broker{hs: hs, threads: threads, placement: RoundRobinPlacement}
	snap := &topicSet{byName: map[string]*Topic{}, shardTotal: nextGlobal}
	type job struct {
		t   *Topic
		si  int
		loc shardLoc
	}
	perHeap := make([][]job, hs.Len())
	for ti, tc := range topics {
		t := &Topic{b: b, cfg: tc, base: bases[ti], locs: locs[ti], shards: make([]*shard, tc.Shards)}
		for si := 0; si < tc.Shards; si++ {
			loc := locs[ti][si]
			perHeap[loc.heap] = append(perHeap[loc.heap], job{t: t, si: si, loc: loc})
		}
		snap.list = append(snap.list, t)
		snap.byName[tc.Name] = t
	}
	var wg sync.WaitGroup
	for hi, jobs := range perHeap {
		if len(jobs) == 0 {
			continue
		}
		wg.Add(1)
		go func(hi int, jobs []job) {
			defer wg.Done()
			h := hs.Heap(hi)
			for _, j := range jobs {
				view := h.View(j.loc.base, slotsForKind(j.t.cfg.Kind))
				s := mk(view, j.t.cfg)
				s.heap = hi
				s.h = view
				s.acked = j.t.cfg.Acked
				j.t.shards[j.si] = s
			}
		}(hi, jobs)
	}
	wg.Wait()
	b.snap.Store(snap)
	return b
}

// New creates a broker on a single empty heap (window) — the 1-heap
// convenience form of NewSet.
func New(h *pmem.Heap, cfg Config) (*Broker, error) {
	return NewSet(pmem.NewSetOf(h), cfg)
}

// NewSet creates a broker spanning an empty heap set. It is a thin
// compatibility wrapper over the live administration API: Open brings
// up an empty broker (stamping every member and anchoring the catalog
// log), then each topic and ack-group lease region is created through
// the same CreateTopic/CreateAckGroup path a runtime creation takes.
// Lease regions are sized exactly to the config's shard total,
// mirroring the legacy write-once semantics.
//
// Every member's anchor slot must be empty: a member carrying a
// catalog or membership stamp belongs to an existing broker (recover
// that set instead) or is left over from a creation that crashed
// before its anchor was written; either way NewSet refuses rather
// than overwrite durable state it did not allocate. A crash inside
// NewSet leaves the topics whose catalog records were committed and
// no trace of the rest.
func NewSet(hs *pmem.HeapSet, cfg Config) (*Broker, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	b, err := open(hs, Options{Threads: cfg.Threads, Placement: cfg.Placement, Observer: cfg.Observer}, openCreate)
	if err != nil {
		return nil, err
	}
	for _, tc := range cfg.Topics {
		if _, err := b.CreateTopic(0, tc); err != nil {
			return nil, err
		}
	}
	for g := 0; g < cfg.AckGroups; g++ {
		if _, err := b.CreateAckGroup(0, AckGroupConfig{Capacity: b.ShardTotal()}); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Recover re-discovers a broker living on a single heap (window) — the
// 1-heap convenience form of RecoverSet.
func Recover(h *pmem.Heap, threads int) (*Broker, error) {
	return RecoverSet(pmem.NewSetOf(h), threads)
}

// RecoverSet re-discovers a broker after a crash of the whole heap
// set — the compatibility wrapper over Open that requires a broker to
// exist. Phase one reads the durable catalog on heap 0 (replaying the
// v4 log record by record, or parsing a pinned legacy layout) and
// verifies every other member's stamp against it — a set missing a
// catalogued heap, containing a blank or foreign heap, or assembled
// in the wrong order is an error, never a silent mis-scan. Phase two
// replays the paper's per-queue recovery for every shard, heap by
// heap, the per-heap phases in parallel. Call while no other thread
// operates.
//
// threads must equal the bound the broker was created with (it sizes
// the per-thread head-index regions recovery scans); pass 0 to adopt
// the recorded bound. A mismatch is an error, never silent corruption.
func RecoverSet(hs *pmem.HeapSet, threads int) (*Broker, error) {
	return open(hs, Options{Threads: threads}, openRecover)
}

// set returns the current data-plane topic snapshot.
func (b *Broker) set() *topicSet { return b.snap.Load() }

// Topic returns the named topic, or nil if the broker has none.
func (b *Broker) Topic(name string) *Topic { return b.set().byName[name] }

// Topics lists the broker's topics in catalog order. The returned
// slice is the caller's to keep: it is a copy, never an alias of
// broker state.
func (b *Broker) Topics() []*Topic {
	s := b.set()
	return append([]*Topic(nil), s.list...)
}

// TopicNames lists the broker's topic names, sorted.
func (b *Broker) TopicNames() []string {
	s := b.set()
	names := make([]string, len(s.list))
	for i, t := range s.list {
		names[i] = t.Name()
	}
	sort.Strings(names)
	return names
}

// Threads reports the configured thread-id bound.
func (b *Broker) Threads() int { return b.threads }

// Heaps reports the size of the heap set the broker spans.
func (b *Broker) Heaps() int { return b.hs.Len() }

// AckGroups reports the number of consumer-group lease regions (each
// usable by one NewGroupAcked at a time).
func (b *Broker) AckGroups() int {
	b.regionMu.Lock()
	defer b.regionMu.Unlock()
	return len(b.regions)
}

// ShardTotal reports the global shard-ordinal frontier: one past the
// highest ordinal any topic — live or deleted — ever held. Global
// shard ordinals (catalog creation order) index the lease regions;
// the frontier is monotone so a retired topic's lease lines are never
// adopted by a new one.
func (b *Broker) ShardTotal() int { return b.set().shardTotal }

// CatalogGeneration reports the catalog log's generation — bumped by
// every CompactCatalog. Zero on a legacy (write-once) catalog.
func (b *Broker) CatalogGeneration() uint64 {
	b.adminMu.Lock()
	defer b.adminMu.Unlock()
	if b.cat == nil {
		return 0
	}
	return b.cat.gen
}

// SlotFootprint reports the broker's root-slot footprint: used is the
// total number of slots below the per-heap high-water marks (the
// anchor slots excluded) — the durable NVRAM the broker has ever
// claimed for shard windows and lease regions — and free how many of
// those currently sit on the free list awaiting reuse. A churning
// workload whose deletes balance its creates holds used steady while
// free oscillates. Zero on a legacy catalog (which cannot delete).
func (b *Broker) SlotFootprint() (used, free int) {
	b.adminMu.Lock()
	defer b.adminMu.Unlock()
	if b.cat == nil {
		return 0, 0
	}
	for _, m := range b.cat.marks {
		used += m - 1 // slot 0 is the anchor, never allocator-owned
	}
	return used, b.cat.freeSlots()
}

// HeapSet returns the heap set the broker spans.
func (b *Broker) HeapSet() *pmem.HeapSet { return b.hs }

// Observer returns the observability sink the broker was opened with,
// nil when observation is disabled.
func (b *Broker) Observer() *obs.Observer { return b.obs }
