// Package broker is a durably linearizable, sharded, multi-topic
// message broker composed from the paper's second-amendment queues —
// the use case the paper's introduction motivates (IBM MQ, Oracle
// Tuxedo MQ, RabbitMQ keep FIFO queues at their core, today structured
// for block storage; NVRAM queues remove the marshaling and
// file-system layers), treated as a first-class recoverable system in
// the spirit of Gray's "Queues Are Databases".
//
// A Broker manages N topics, each split into M shards. Every shard is
// an independent durable queue — an OptUnlinkedQ for fixed 8-byte
// payloads or a blobq.Queue for variable byte payloads — living in its
// own root-slot window of one shared pmem.Heap (see pmem.View).
// Producers route messages to shards round-robin or by key hash, and
// may amortize durability cost with a batch-publish path that rides
// one SFENCE per batch. Consumers form groups; each shard is owned by
// exactly one group member, so per-shard FIFO order is preserved
// end-to-end.
//
// Durability contract: a publish is acknowledged when the call
// returns; from that point the message survives any crash. A durable
// catalog (anchored at the broker's root slot 0) records every
// topic's name, shard count and payload kind, so Recover can
// re-discover the whole broker from the heap alone and replay the
// paper's per-queue recovery for every shard. A delivery is durable
// when Poll returns: the winning dequeue's persist covers it, so a
// delivered message is never re-delivered after a crash
// (delivered-or-recovered exactly once for acknowledged publishes).
package broker

import (
	"encoding/binary"
	"fmt"

	"repro/internal/blobq"
	"repro/internal/pmem"
	"repro/internal/queues"
)

// slotsPerShard is the root-slot window width handed to each shard's
// queue. Eight covers the highest slot either queue kind uses (blobq
// uses slots 2,3,6,7; OptUnlinkedQ uses 2,3).
const slotsPerShard = 8

// slotCatalog anchors the durable topic catalog within the broker's
// root-slot window.
const slotCatalog = 0

// TopicConfig describes one topic.
type TopicConfig struct {
	// Name identifies the topic; at most 32 bytes, unique per broker.
	Name string
	// Shards is the number of independent durable queues the topic is
	// split over (>= 1). More shards mean more enqueue/dequeue
	// parallelism at the cost of ordering only per shard.
	Shards int
	// MaxPayload selects the shard queue kind: 0 means fixed 8-byte
	// payloads on OptUnlinkedQ (the cheapest path); > 0 means variable
	// payloads up to MaxPayload bytes on blobq.Queue.
	MaxPayload int
}

// Config parameterizes a Broker.
type Config struct {
	// Topics lists the topics to create. Order is preserved in the
	// durable catalog.
	Topics []TopicConfig
	// Threads bounds the thread ids that may call broker operations
	// (producers, consumers and the recovery thread all share this
	// space, as with the underlying queues).
	Threads int
}

// Broker is a sharded multi-topic durable message broker. Methods
// taking a tid are safe for concurrent use as long as each tid is
// driven by at most one goroutine at a time.
type Broker struct {
	h       *pmem.Heap
	threads int
	topics  []*Topic
	byName  map[string]*Topic
}

// shard wraps one durable queue of either payload kind behind a
// byte-payload interface.
type shard struct {
	fixed *queues.OptUnlinkedQ // MaxPayload == 0
	blob  *blobq.Queue         // MaxPayload > 0
}

func (s *shard) publish(tid int, p []byte) {
	if s.fixed != nil {
		s.fixed.Enqueue(tid, binary.LittleEndian.Uint64(p))
		return
	}
	s.blob.Enqueue(tid, p)
}

func (s *shard) publishBatch(tid int, ps [][]byte) {
	if s.fixed != nil {
		vs := make([]uint64, len(ps))
		for i, p := range ps {
			vs[i] = binary.LittleEndian.Uint64(p)
		}
		s.fixed.EnqueueBatch(tid, vs)
		return
	}
	s.blob.EnqueueBatch(tid, ps)
}

func (s *shard) consume(tid int) ([]byte, bool) {
	if s.fixed != nil {
		v, ok := s.fixed.Dequeue(tid)
		if !ok {
			return nil, false
		}
		return U64(v), true
	}
	return s.blob.Dequeue(tid)
}

// consumeBatchUnfenced dequeues up to max messages, recording the
// shard's new head index with one NTStore but leaving the blocking
// fence (and the node retires) to the caller, so one fence can cover
// several shards' dequeues in a single poll. dirty reports an
// outstanding NTStore; the caller must fence the tid and then call
// completeBatch.
func (s *shard) consumeBatchUnfenced(tid, max int) ([][]byte, bool) {
	if s.fixed != nil {
		vs, dirty := s.fixed.DequeueBatchUnfenced(tid, max)
		if len(vs) == 0 {
			return nil, dirty
		}
		ps := make([][]byte, len(vs))
		for i, v := range vs {
			ps[i] = U64(v)
		}
		return ps, dirty
	}
	return s.blob.DequeueBatchUnfenced(tid, max)
}

func (s *shard) completeBatch(tid int) {
	if s.fixed != nil {
		s.fixed.CompleteBatch(tid)
		return
	}
	s.blob.CompleteBatch(tid)
}

// U64 encodes v as the 8-byte payload of a fixed topic.
func U64(v uint64) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, v)
	return p
}

// AsU64 decodes a fixed-topic payload.
func AsU64(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func validate(h *pmem.Heap, cfg Config) error {
	if cfg.Threads <= 0 {
		return fmt.Errorf("broker: Threads must be positive")
	}
	if len(cfg.Topics) == 0 {
		return fmt.Errorf("broker: at least one topic required")
	}
	seen := map[string]bool{}
	total := 0
	for _, tc := range cfg.Topics {
		if tc.Name == "" || len(tc.Name) > catNameBytes {
			return fmt.Errorf("broker: topic name %q must be 1..%d bytes", tc.Name, catNameBytes)
		}
		if seen[tc.Name] {
			return fmt.Errorf("broker: duplicate topic %q", tc.Name)
		}
		seen[tc.Name] = true
		if tc.Shards <= 0 {
			return fmt.Errorf("broker: topic %q needs at least one shard", tc.Name)
		}
		if tc.MaxPayload < 0 {
			return fmt.Errorf("broker: topic %q has negative MaxPayload", tc.Name)
		}
		total += tc.Shards
	}
	if need := 1 + total*slotsPerShard; need > h.RootSlots() {
		return fmt.Errorf("broker: %d total shards need %d root slots, heap window has %d",
			total, need, h.RootSlots())
	}
	return nil
}

// build constructs the volatile broker skeleton and instantiates each
// shard's queue via mk, which receives the shard's root-slot view.
func build(h *pmem.Heap, cfg Config, mk func(view *pmem.Heap, tc TopicConfig) *shard) *Broker {
	b := &Broker{h: h, threads: cfg.Threads, byName: map[string]*Topic{}}
	next := 1 // slot 0 is the catalog anchor
	for _, tc := range cfg.Topics {
		t := &Topic{b: b, cfg: tc, slotBase: next}
		for s := 0; s < tc.Shards; s++ {
			view := h.View(next, slotsPerShard)
			t.shards = append(t.shards, mk(view, tc))
			next += slotsPerShard
		}
		b.topics = append(b.topics, t)
		b.byName[tc.Name] = t
	}
	return b
}

// New creates a broker on an empty heap window: it instantiates every
// topic's shards, then writes and persists the durable catalog. The
// anchor is persisted last, so a crash inside New leaves no broker
// (Recover reports none) rather than a partial one.
func New(h *pmem.Heap, cfg Config) (*Broker, error) {
	if err := validate(h, cfg); err != nil {
		return nil, err
	}
	if h.Load(0, h.RootAddr(slotCatalog)) != 0 {
		return nil, fmt.Errorf("broker: heap window already hosts a broker (use Recover)")
	}
	b := build(h, cfg, func(view *pmem.Heap, tc TopicConfig) *shard {
		if tc.MaxPayload == 0 {
			return &shard{fixed: queues.NewOptUnlinkedQ(view, cfg.Threads)}
		}
		return &shard{blob: blobq.New(view, blobq.Config{Threads: cfg.Threads, MaxPayload: tc.MaxPayload})}
	})
	writeCatalog(h, cfg)
	return b, nil
}

// Recover re-discovers a broker after a crash: it reads the durable
// catalog and replays the paper's per-queue recovery for every shard
// of every topic. Call from a single thread (tid 0) before resuming
// traffic.
//
// threads must equal the bound the broker was created with (it sizes
// the per-thread head-index regions recovery scans); pass 0 to adopt
// the recorded bound. A mismatch is an error, never silent corruption.
func Recover(h *pmem.Heap, threads int) (*Broker, error) {
	topics, recorded, err := readCatalog(h)
	if err != nil {
		return nil, err
	}
	if threads == 0 {
		threads = recorded
	} else if threads != recorded {
		return nil, fmt.Errorf("broker: Recover with %d threads, but the broker was created with %d",
			threads, recorded)
	}
	cfg := Config{Topics: topics, Threads: threads}
	if err := validate(h, cfg); err != nil {
		return nil, err
	}
	return build(h, cfg, func(view *pmem.Heap, tc TopicConfig) *shard {
		if tc.MaxPayload == 0 {
			return &shard{fixed: queues.RecoverOptUnlinkedQ(view, threads)}
		}
		return &shard{blob: blobq.Recover(view, blobq.Config{Threads: threads, MaxPayload: tc.MaxPayload})}
	}), nil
}

// Topic returns the named topic, or nil if the broker has none.
func (b *Broker) Topic(name string) *Topic { return b.byName[name] }

// Topics lists the broker's topics in catalog order.
func (b *Broker) Topics() []*Topic { return b.topics }

// Threads reports the configured thread-id bound.
func (b *Broker) Threads() int { return b.threads }
