package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrNotQuiescent reports a plain-group Subscribe attempted while a
// member was inside Poll or PollBatch. The plain poll path reads
// member assignments without locks (that is what makes an idle plain
// poll free), so Subscribe-while-polling would be a data race;
// detection turns the race into this typed refusal. Detection is
// best-effort in the way that matters: a poll *observed* in flight is
// always refused, so a caller that retries until success and itself
// guarantees no *new* polls start (the documented quiescence contract)
// is safe.
var ErrNotQuiescent = errors.New("broker: plain group not quiescent (member inside Poll/PollBatch)")

// ErrLeaseCapacity reports a topic whose shards' global ordinals
// exceed the lease region's recorded capacity. Both binding paths —
// NewGroupAcked at construction and Subscribe afterwards — wrap this
// sentinel with the same diagnostic (topic, shard, ordinal, region,
// capacity), so callers test errors.Is(err, ErrLeaseCapacity) and
// react by minting a roomier region (CreateAckGroup) regardless of
// which path refused.
var ErrLeaseCapacity = errors.New("broker: lease region capacity exceeded")

// Message is one delivered payload with its provenance.
type Message struct {
	Topic   string
	Shard   int
	Payload []byte
}

// ShardRef names one shard of one topic.
type ShardRef struct {
	Topic string
	Shard int
}

// Group is a consumer group over a set of topics. Every shard of
// every subscribed topic is assigned to exactly one member, so the
// group collectively consumes each message once. Shard ownership means
// per-shard FIFO order is preserved end-to-end.
//
// Plain groups (NewGroup, NewGroupAffine) are at-least-once across
// crashes: a delivery is durable when the poll returns, and a member
// that crashed mid-poll leaves its window to be recovered. Acked
// groups (NewGroupAcked) separate delivery from processing: a poll
// writes a durable lease record before returning messages and the
// messages are consumed only when Consumer.Ack covers them, giving
// exactly-once *processing* across consumer crashes (lease takeover
// redelivers the unacked suffix, see Adopt) and broker crashes
// (recovery redelivers everything beyond the acked frontier).
type Group struct {
	consumers []*Consumer
	b         *Broker
	topics    map[string]bool // subscribed topic names

	// ostats is the group's gauge state (per-shard lag cursors),
	// non-nil exactly when the broker has an observer.
	ostats *obs.GroupStats

	// Acked-group state (zero for plain groups).
	leased    bool
	region    leaseRegion
	regionIdx int // the region's index (LeaseConfig.Region), for diagnostics
	ttl       uint64
	now       func() uint64
	cache     []leaseCache // one per global shard ordinal, owner-accessed
	recovered []RecoveredLease
	mu        sync.Mutex // serializes Adopt/Reassign/Scan and Subscribe against each other

	// epochs holds the current fencing token per global shard ordinal —
	// the volatile authority mirrored into every lease line's epoch
	// word. Seeded from the durable lines at bind (pre-epoch regions
	// seed 0), bumped under g.mu on every takeover. See membership.go.
	epochs []uint64
}

// leaseCache mirrors one durable lease line: durable is the content
// covered by the last completed fence (renewal elision compares
// against it), pending the content staged by an unfenced write.
type leaseCache struct {
	durable Lease
	pending Lease
	seq     uint64
}

// RecoveredLease is a lease found active (or torn) in the durable
// region when an acked group bound it — the in-flight delivery state
// of the group's previous incarnation, which Gray's argument says must
// be as durable as the payloads themselves. The referenced messages
// were never acknowledged, so they are back in their shards awaiting
// redelivery; the record tells an operator who held them and until
// when. Torn records (a crash mid-lease-write) decode as the zero
// Lease.
type RecoveredLease struct {
	Shard ShardRef
	Lease Lease
}

func (b *Broker) collectRefs(topicNames []string) ([]*consumerShard, error) {
	var refs []*consumerShard
	for _, name := range topicNames {
		t := b.Topic(name)
		if t == nil {
			return nil, fmt.Errorf("broker: unknown topic %q", name)
		}
		if t.cfg.Kind != KindFIFO {
			return nil, t.kindErr("group subscription", KindFIFO)
		}
		for s := 0; s < t.Shards(); s++ {
			refs = append(refs, &consumerShard{t: t, shard: s, global: t.base + s})
		}
	}
	return refs, nil
}

func (b *Broker) newGroup(topicNames []string, refs []*consumerShard, n int, deal func(g *Group, refs []*consumerShard)) (*Group, error) {
	if n <= 0 {
		return nil, fmt.Errorf("broker: group needs at least one consumer")
	}
	g := &Group{consumers: make([]*Consumer, n), b: b, topics: map[string]bool{}}
	for _, name := range topicNames {
		g.topics[name] = true
	}
	for i := range g.consumers {
		g.consumers[i] = &Consumer{g: g, id: i}
	}
	deal(g, refs)
	if o := b.obs; o != nil {
		g.ostats = o.RegisterGroup()
		for _, r := range refs {
			r.cur = g.ostats.AddShard(r.t.ostats, r.shard)
		}
	}
	return g, nil
}

// Stats returns the group's observability gauge state — the per-shard
// lag cursors the elastic-groups autoscaler reads — or nil when the
// broker has no observer.
func (g *Group) Stats() *obs.GroupStats { return g.ostats }

// NewGroup subscribes n consumers to the named topics, assigning
// shards to members round-robin across the combined shard list.
// Acked topics may be consumed through a plain group too: every
// delivery is then acknowledged immediately (auto-ack), which keeps
// the at-least-once contract but forfeits both ack amortization and
// crash redelivery of in-flight messages.
func (b *Broker) NewGroup(topicNames []string, n int) (*Group, error) {
	refs, err := b.collectRefs(topicNames)
	if err != nil {
		return nil, err
	}
	return b.newGroup(topicNames, refs, n, func(g *Group, refs []*consumerShard) {
		for i, r := range refs {
			c := g.consumers[i%n]
			c.refs = append(c.refs, r)
		}
	})
}

// NewGroupAffine subscribes n consumers to the named topics with
// heap-affine assignment: the combined shard list is ordered by member
// heap and dealt out in contiguous chunks, so each consumer's shards
// concentrate on as few persistence domains as possible. A PollBatch
// fences once per domain it dequeued from — with block placement
// (BlockPlacement) and consumers >= heaps, each member's fences stay
// on a single domain.
func (b *Broker) NewGroupAffine(topicNames []string, n int) (*Group, error) {
	refs, err := b.collectRefs(topicNames)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(refs, func(i, j int) bool {
		return refs[i].t.locs[refs[i].shard].heap < refs[j].t.locs[refs[j].shard].heap
	})
	return b.newGroup(topicNames, refs, n, func(g *Group, refs []*consumerShard) {
		for i := range g.consumers {
			lo, hi := i*len(refs)/n, (i+1)*len(refs)/n
			g.consumers[i].refs = append(g.consumers[i].refs, refs[lo:hi]...)
		}
	})
}

// LeaseConfig parameterizes an acked consumer group.
type LeaseConfig struct {
	// Region selects which lease region (CreateAckGroup, or the legacy
	// Config.AckGroups) backs the group; a region serves one live
	// group at a time, and covers only topics whose shards' global
	// ordinals fall below its recorded capacity.
	Region int
	// TTL is the lease duration in clock units; a member whose lease is
	// older than TTL may have its shards adopted (Adopt). Default:
	// one second of wall-clock nanoseconds.
	TTL uint64
	// Now is the group's clock. Default: wall-clock nanoseconds. Tests
	// inject logical clocks for deterministic expiry.
	Now func() uint64
}

// NewGroupAcked subscribes n consumers to the named topics — all of
// which must be Acked — with durable delivery state: every poll writes
// a lease record into the group's region before returning messages,
// Consumer.Ack durably marks them processed, and Adopt moves a
// crashed member's shards (redelivering its unacked suffix) to a
// survivor. Shards are dealt round-robin as in NewGroup.
//
// Binding inspects the region's durable lease lines: records left
// active by a previous incarnation are returned by RecoveredLeases and
// cleared (the messages they cover are unacknowledged and therefore
// already back in their shards). Call while no other thread operates
// on the broker; the bind writes with thread id 0.
func (b *Broker) NewGroupAcked(topicNames []string, n int, lc LeaseConfig) (*Group, error) {
	refs, err := b.collectRefs(topicNames)
	if err != nil {
		return nil, err
	}
	for _, r := range refs {
		if !r.t.Acked() {
			return nil, fmt.Errorf("broker: NewGroupAcked over topic %q, which is not Acked", r.t.Name())
		}
	}
	b.regionMu.Lock()
	if lc.Region < 0 || lc.Region >= len(b.regions) {
		n := len(b.regions)
		b.regionMu.Unlock()
		return nil, fmt.Errorf("broker: lease region %d out of range (broker has %d; use CreateAckGroup)",
			lc.Region, n)
	}
	region := b.regions[lc.Region]
	b.regionMu.Unlock()
	// The region covers global shard ordinals [0, cap): a topic created
	// after the region may exceed it, in which case this group needs a
	// region with more headroom (CreateAckGroup with a larger Capacity).
	for _, r := range refs {
		if r.global >= region.cap {
			return nil, fmt.Errorf("%w: topic %q shard %d (global ordinal %d) exceeds lease region %d's capacity %d",
				ErrLeaseCapacity, r.t.Name(), r.shard, r.global, lc.Region, region.cap)
		}
	}
	g, err := b.newGroup(topicNames, refs, n, func(g *Group, refs []*consumerShard) {
		for i, r := range refs {
			g.consumers[i%n].refs = append(g.consumers[i%n].refs, r)
		}
	})
	if err != nil {
		return nil, err
	}
	// Claim the region only once the group is sure to exist, so a
	// failed construction cannot leak the claim.
	b.regionMu.Lock()
	if b.bound[lc.Region] {
		b.regionMu.Unlock()
		return nil, fmt.Errorf("broker: lease region %d already serves a group", lc.Region)
	}
	b.bound[lc.Region] = true
	b.regionMu.Unlock()
	g.leased = true
	g.region = region
	g.regionIdx = lc.Region
	g.ttl = lc.TTL
	if g.ttl == 0 {
		g.ttl = uint64(time.Second)
	}
	g.now = lc.Now
	if g.now == nil {
		g.now = func() uint64 { return uint64(time.Now().UnixNano()) }
	}
	// Sized to the region's capacity, not the current shard total, so
	// topics subscribed later (Subscribe) index it without growing.
	g.cache = make([]leaseCache, region.cap)
	g.epochs = make([]uint64, region.cap)

	// Bind: seed each ref's frontier from the queue's durable acked
	// index and its fencing token from the durable line (pre-epoch v<=4
	// lines and virgin lines seed epoch 0), surface stale lease
	// records, and clear them — preserving the epoch, so a cleared line
	// still outranks any pre-crash owner. A fresh region (all lines
	// virgin) writes nothing.
	const tid = 0
	w := leaseWriter{g: g, tid: tid}
	for _, r := range refs {
		s := r.t.shards[r.shard]
		floor := s.ackedTo()
		r.deliveredTo, r.leasedTo = floor, floor
		l, ok := g.region.readLeaseLine(r.global)
		if ok {
			g.epochs[r.global] = l.Epoch
		}
		r.epoch = g.epochs[r.global]
		if !ok || l.Active {
			g.recovered = append(g.recovered,
				RecoveredLease{Shard: ShardRef{Topic: r.t.Name(), Shard: r.shard}, Lease: l})
			w.write(r.global, Lease{Epoch: l.Epoch})
		}
	}
	w.commit()
	return g, nil
}

// Subscribe adds the named topics' shards to the group — the way a
// group reaches topics created (CreateTopic) after the group was. New
// shards are dealt one by one to the member owning the fewest, so
// load stays balanced; existing assignments never move. On an acked
// group the new shards' frontiers are seeded from the queues' durable
// acked indices and any stale lease records in the region are
// surfaced (appended to RecoveredLeases) and cleared, exactly as at
// bind time; the region must have capacity for the topics' global
// ordinals. Subscribing a topic the group already consumes is an
// error, as is subscribing a non-Acked topic on an acked group.
//
// tid must be owned by the caller (it writes lease records on an
// acked group).
//
// Concurrency is a hard contract, not advice. Acked groups may
// Subscribe while members poll on their own tids: every member op
// takes the consumer's lock, which Subscribe holds for all members.
// Plain groups MUST be quiescent — no member may be inside Poll or
// PollBatch — because the plain poll path deliberately reads member
// assignments without locks (that is what makes an idle plain poll
// free); Subscribe on a polling plain group is a data race with
// undefined results, exactly like calling pmem stats readers on
// running threads. Subscribe enforces the contract as far as it can
// see: a plain-group Subscribe that observes any member inside
// Poll/PollBatch refuses with ErrNotQuiescent instead of racing. The
// detection is one-sided — it cannot stop a poll that *starts* after
// the check — so the caller must still guarantee members stay
// stopped, but a violation now fails loudly instead of corrupting
// assignments. Nothing can make the plain half fully safe short of
// locking the hot path.
func (g *Group) Subscribe(tid int, topicNames ...string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, c := range g.consumers {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	if !g.leased {
		for _, c := range g.consumers {
			if c.polling.Load() != 0 {
				return fmt.Errorf("%w: member %d", ErrNotQuiescent, c.id)
			}
		}
	}
	call := map[string]bool{}
	for _, name := range topicNames {
		if g.topics[name] {
			return fmt.Errorf("broker: group already subscribes topic %q", name)
		}
		if call[name] {
			return fmt.Errorf("broker: duplicate topic %q in Subscribe", name)
		}
		call[name] = true
	}
	refs, err := g.b.collectRefs(topicNames)
	if err != nil {
		return err
	}
	if g.leased {
		for _, r := range refs {
			if !r.t.Acked() {
				return fmt.Errorf("broker: Subscribe over topic %q, which is not Acked", r.t.Name())
			}
			if r.global >= g.region.cap {
				return fmt.Errorf("%w: topic %q shard %d (global ordinal %d) exceeds lease region %d's capacity %d",
					ErrLeaseCapacity, r.t.Name(), r.shard, r.global, g.regionIdx, g.region.cap)
			}
		}
	}
	var w leaseWriter
	if g.leased {
		w = leaseWriter{g: g, tid: tid}
		for _, r := range refs {
			s := r.t.shards[r.shard]
			floor := s.ackedTo()
			r.deliveredTo, r.leasedTo = floor, floor
			l, ok := g.region.readLeaseLine(r.global)
			if ok {
				g.epochs[r.global] = l.Epoch
			}
			r.epoch = g.epochs[r.global]
			if !ok || l.Active {
				g.recovered = append(g.recovered,
					RecoveredLease{Shard: ShardRef{Topic: r.t.Name(), Shard: r.shard}, Lease: l})
				w.write(r.global, Lease{Epoch: l.Epoch})
			}
		}
	}
	for _, r := range refs {
		if g.ostats != nil {
			r.cur = g.ostats.AddShard(r.t.ostats, r.shard)
		}
		min := 0
		for i := 1; i < len(g.consumers); i++ {
			if len(g.consumers[i].refs) < len(g.consumers[min].refs) {
				min = i
			}
		}
		g.consumers[min].refs = append(g.consumers[min].refs, r)
	}
	if g.leased {
		w.commit()
	}
	for _, name := range topicNames {
		g.topics[name] = true
	}
	return nil
}

// RecoveredLeases lists the lease records an acked group found active
// (or torn) at bind time — the previous incarnation's in-flight
// windows. Nil for plain groups and for a first binding.
func (g *Group) RecoveredLeases() []RecoveredLease { return g.recovered }

// Size returns the number of group members.
func (g *Group) Size() int { return len(g.consumers) }

// Consumer returns group member i.
func (g *Group) Consumer(i int) *Consumer { return g.consumers[i] }

type consumerShard struct {
	t      *Topic
	shard  int
	global int // ordinal across all topics, indexes the lease region

	// cur is the shard's lag cursor in the group's gauge state, non-nil
	// exactly when the broker has an observer. Advanced on fresh
	// deliveries only — redeliveries re-serve messages the frontier
	// already passed.
	cur *obs.ShardCursor

	// Acked-group bookkeeping, accessed only by the owning member (or
	// under the involved members' locks during Adopt/Reassign/Steal).
	deliveredTo uint64 // last queue index returned to the application
	leasedTo    uint64 // high end of the durable lease obligation
	pendingN    int    // queued redeliveries not yet re-served
	unackedN    int    // messages delivered but not yet acknowledged
	epoch       uint64 // fencing token the current owner writes into the lease line
}

// pendingMsg is one message awaiting redelivery: adopted from a
// crashed member or returned by a Nack.
type pendingMsg struct {
	r       *consumerShard
	idx     uint64
	payload []byte
}

// Consumer is one group member. A Consumer must be driven by a single
// goroutine; tid follows the usual one-goroutine-per-tid rule.
type Consumer struct {
	g       *Group
	id      int
	mu      sync.Mutex // serializes member ops against Adopt/Reassign/Scan (acked groups)
	refs    []*consumerShard
	next    int
	pending []pendingMsg

	// fenced records the shards taken from this member since its last
	// acknowledgment-path op: the member held a now-stale epoch on
	// them. The next Ack/Nack/Renew/Heartbeat is refused with ErrFenced
	// (consuming the record), so a presumed-dead member that resurfaces
	// learns it lost ownership before any of its state reaches the
	// durable frontier. See membership.go.
	fenced []fencedShard

	// polling counts in-flight plain Poll/PollBatch calls. It exists
	// only so a plain-group Subscribe can detect a concurrent poll and
	// refuse with ErrNotQuiescent; the cost on the hot path is one
	// uncontended atomic add/sub on a line this member owns.
	polling atomic.Int32

	// asyncAcks lists the shards holding this member's unfenced ack
	// NTStores (AckAsync): the covering fence is owed and will be paid
	// by the next acknowledgment-path op or DrainAcks.
	asyncAcks []*shard
}

// Assigned lists the shards this member owns.
func (c *Consumer) Assigned() []ShardRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardRef, len(c.refs))
	for i, r := range c.refs {
		out[i] = ShardRef{Topic: r.t.Name(), Shard: r.shard}
	}
	return out
}

// Domains lists the distinct member heaps this member's shards live
// on — the number of SFENCEs a full PollBatch sweep pays at most.
func (c *Consumer) Domains() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for _, r := range c.refs {
		h := r.t.locs[r.shard].heap
		seen := false
		for _, d := range out {
			if d == h {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, h)
		}
	}
	sort.Ints(out)
	return out
}

// Poll scans the member's shards round-robin and delivers the first
// available message. ok is false when every owned shard was observed
// empty. When Poll returns a message, the delivery is already durable
// (the dequeue's persist covers it on a plain group; the lease record
// on an acked one).
func (c *Consumer) Poll(tid int) (Message, bool) {
	if c.g.leased {
		ms := c.PollBatch(tid, 1)
		if len(ms) == 0 {
			return Message{}, false
		}
		return ms[0], true
	}
	c.polling.Add(1)
	defer c.polling.Add(-1)
	o := c.g.b.obs
	var start int64
	if o != nil {
		start = obs.Now()
	}
	for i := 0; i < len(c.refs); i++ {
		r := c.refs[(c.next+i)%len(c.refs)]
		if !r.t.enter() {
			continue // topic retired: its shards read as empty
		}
		p, ok := r.t.shards[r.shard].consume(tid)
		r.t.exit()
		if ok {
			c.next = (c.next + i + 1) % len(c.refs)
			if o != nil {
				r.t.ostats.Delivered(1)
				r.cur.Advance(1)
				o.Lat(tid, obs.OpPoll, start)
				o.Event(tid, obs.OpPoll, r.t.ostats, r.shard)
			}
			return Message{Topic: r.t.Name(), Shard: r.shard, Payload: p}, true
		}
	}
	// The cursor stays where it was: resetting it on an all-empty scan
	// would permanently bias delivery toward low-numbered shards after
	// any idle period. Empty scans also record no latency sample: an
	// idle poll is free by design, and a spin-polling consumer would
	// otherwise drown the delivery distribution in empty-scan samples.
	return Message{}, false
}

// PollBatch drains up to max messages from the member's shards
// round-robin, riding a single blocking persist per persistence
// domain it dequeued from: each shard's batch dequeue issues one
// NTStore of its new head index, and since a fence is per-thread
// *per-heap* and covers all of that thread's outstanding NTStores on
// that heap regardless of which shard's local line they target, one
// SFENCE per touched heap at the end makes every shard's progress
// durable together. With all of a member's shards on one domain (see
// NewGroupAffine and BlockPlacement) that is a single fence per poll;
// a poll that finds every owned shard empty at an already-persisted
// head index issues no persist instructions at all, so idle consumers
// poll for free.
//
// On a plain group the batch is acknowledged as a whole when PollBatch
// returns: at that point every delivery in it is durable and will
// never be re-delivered after a crash. A crash mid-poll leaves the
// whole window unacknowledged — its messages are redelivered (or, for
// a suffix whose NTStore happened to land without the fence, consumed)
// on recovery, exactly dual to PublishBatch.
//
// On an acked group the poll instead *leases*: the shard dequeues
// issue no persist instructions at all, and what the single fence
// makes durable — before any message is returned — is the lease
// record (owner, unacked range, deadline) in the group's region, so
// delivery state itself survives crashes. Messages queued for
// redelivery (Adopt, Nack) are served first, in index order per
// shard; the batch stays redeliverable until Consumer.Ack covers it.
// An empty result means every owned shard was observed empty.
func (c *Consumer) PollBatch(tid, max int) []Message {
	if c.g.leased {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.pollLeased(tid, max)
	}
	c.polling.Add(1)
	defer c.polling.Add(-1)
	if max <= 0 || len(c.refs) == 0 {
		return nil
	}
	o := c.g.b.obs
	var start int64
	if o != nil {
		start = obs.Now()
	}
	var out []Message
	var touched []*shard
	// Topics entered below stay entered until after the covering fence:
	// the dequeues' NTStores must land before DeleteTopic may reclaim
	// (and CreateTopic reuse) the windows they target.
	var entered []*Topic
	defer func() {
		for _, t := range entered {
			t.exit()
		}
	}()
	for scanned := 0; scanned < len(c.refs) && len(out) < max; scanned++ {
		r := c.refs[c.next]
		if !r.t.enter() {
			c.next = (c.next + 1) % len(c.refs)
			continue // topic retired: its shards read as empty
		}
		entered = append(entered, r.t)
		s := r.t.shards[r.shard]
		ps, dirty := s.consumeBatchUnfenced(tid, max-len(out))
		if dirty {
			touched = append(touched, s)
		}
		if o != nil && len(ps) > 0 {
			r.t.ostats.Delivered(len(ps))
			r.cur.Advance(len(ps))
			o.Event(tid, obs.OpPoll, r.t.ostats, r.shard)
		}
		for _, p := range ps {
			out = append(out, Message{Topic: r.t.Name(), Shard: r.shard, Payload: p})
		}
		// Advance past the shard even when it filled the batch: the
		// next poll then starts at the following shard, so one
		// continuously hot shard cannot starve the others.
		c.next = (c.next + 1) % len(c.refs)
	}
	if len(touched) > 0 {
		// One fence per distinct domain covers every touched shard's
		// NTStores there.
		var fenced []int
		for _, s := range touched {
			done := false
			for _, hi := range fenced {
				if hi == s.heap {
					done = true
					break
				}
			}
			if !done {
				s.h.Fence(tid)
				fenced = append(fenced, s.heap)
			}
		}
		for _, s := range touched {
			s.completeBatch(tid)
		}
	}
	if o != nil && len(out) > 0 {
		o.Lat(tid, obs.OpPoll, start)
	}
	return out
}

func (c *Consumer) pollLeased(tid, max int) []Message {
	if max <= 0 || len(c.refs) == 0 {
		return nil
	}
	c.drainAcks(tid)
	o := c.g.b.obs
	var start int64
	if o != nil {
		start = obs.Now()
	}
	var out []Message
	// Redeliveries first: adopted or nacked messages are already
	// covered by a durable lease, so serving them costs nothing.
	for len(out) < max && len(c.pending) > 0 {
		p := c.pending[0]
		c.pending = c.pending[1:]
		if p.r.t.Deleted() {
			// Retired with the topic: a deleted topic's messages are
			// dropped, redeliveries included (see DeleteTopic).
			p.r.pendingN--
			continue
		}
		out = append(out, Message{Topic: p.r.t.Name(), Shard: p.r.shard, Payload: p.payload})
		p.r.deliveredTo = p.idx
		p.r.pendingN--
		p.r.unackedN++
		if o != nil {
			// A re-serve counts as delivered and redelivered; the lag
			// frontier already passed this message, so it stays put.
			p.r.t.ostats.Delivered(1)
			p.r.t.ostats.Redelivered(1)
		}
	}
	w := leaseWriter{g: c.g, tid: tid}
	deadline := c.g.now() + c.g.ttl
	for scanned := 0; scanned < len(c.refs) && len(out) < max; scanned++ {
		r := c.refs[c.next]
		c.next = (c.next + 1) % len(c.refs)
		if r.pendingN > 0 {
			// Per-shard FIFO: no fresh dequeues ahead of queued
			// redeliveries of the same shard.
			continue
		}
		if !r.t.enter() {
			continue // topic retired: its shards read as empty
		}
		s := r.t.shards[r.shard]
		ps, idxs := s.consumeLeased(tid, max-len(out))
		r.t.exit()
		if len(ps) == 0 {
			continue
		}
		for _, p := range ps {
			out = append(out, Message{Topic: r.t.Name(), Shard: r.shard, Payload: p})
		}
		if o != nil {
			r.t.ostats.Delivered(len(ps))
			r.cur.Advance(len(ps))
			o.Event(tid, obs.OpPoll, r.t.ostats, r.shard)
		}
		r.deliveredTo = idxs[len(idxs)-1]
		r.leasedTo = r.deliveredTo
		r.unackedN += len(ps)
		w.write(r.global, Lease{
			Active: true, Owner: c.id, Epoch: r.epoch,
			Lo: s.ackedTo() + 1, Hi: r.leasedTo,
			Deadline: deadline,
		})
	}
	// The leases are durable before any message is exposed; a crash
	// before this fence redelivers the whole window on recovery.
	w.commit()
	if o != nil && len(out) > 0 {
		o.Lat(tid, obs.OpPoll, start)
	}
	return out
}

// Ack durably acknowledges every message this member has been handed
// so far: for each owned shard, one NTStore of the delivered index
// into the shard queue's per-thread ack line, then a single fence per
// touched persistence domain — the whole ack batch rides one blocking
// persist per domain, and an Ack with nothing new to acknowledge costs
// nothing. Acknowledged messages are never redelivered, by any path:
// recovery takes the maximum acked index per thread exactly as it does
// for head indices. Returns the number of newly acknowledged messages.
//
// If this member was fenced off any of its shards since its last
// acknowledgment-path op (Scan, Reassign or Steal took them — the
// member held a stale epoch), Ack refuses the whole call with
// ErrFenced and acknowledges nothing: the member must treat its
// outstanding window as lost (it will be redelivered elsewhere) and
// re-poll. The refusal consumes the fencing record, so subsequent
// calls proceed on the shards the member still owns.
func (c *Consumer) Ack(tid int) (int, error) {
	if !c.g.leased {
		panic("broker: Ack on a group without acknowledgments (use NewGroupAcked)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainAcks(tid)
	if err := c.takeFenced(tid); err != nil {
		return 0, err
	}
	o := c.g.b.obs
	var start int64
	if o != nil {
		start = obs.Now()
	}
	n := 0
	var touched []*shard
	// Entered topics are exited only after the covering fence lands the
	// ack NTStores, so DeleteTopic cannot reclaim a window under them.
	var entered []*Topic
	defer func() {
		for _, t := range entered {
			t.exit()
		}
	}()
	for _, r := range c.refs {
		if !r.t.enter() {
			// Retired with the topic: nothing durable left to advance,
			// and the outstanding window is dropped, not acknowledged.
			r.unackedN = 0
			continue
		}
		entered = append(entered, r.t)
		s := r.t.shards[r.shard]
		floor := s.ackedTo()
		if r.deliveredTo <= floor {
			continue
		}
		// Count delivered messages, not the index delta: the range may
		// contain gaps where recovery discarded torn enqueues.
		n += r.unackedN
		if o != nil && r.unackedN > 0 {
			r.t.ostats.Acked(r.unackedN)
		}
		r.unackedN = 0
		if s.ackToUnfenced(tid, r.deliveredTo) {
			touched = append(touched, s)
		}
	}
	var fenced []int
	for _, s := range touched {
		done := false
		for _, hi := range fenced {
			if hi == s.heap {
				done = true
				break
			}
		}
		if !done {
			s.h.Fence(tid)
			fenced = append(fenced, s.heap)
		}
	}
	for _, s := range touched {
		s.completeAck(tid)
	}
	// Like an empty poll, an Ack with nothing new to acknowledge costs
	// nothing and records no sample.
	if o != nil && n > 0 {
		o.Lat(tid, obs.OpAck, start)
		o.Event(tid, obs.OpAck, nil, -1)
	}
	return n, nil
}

// AckAsync is the pipelined half of Ack: it issues the same ack
// NTStores but defers the covering fence to this member's *next*
// acknowledgment-path op (Ack, AckAsync, PollBatch, Nack, Renew) or
// an explicit DrainAcks. The fence count per acknowledgment is
// unchanged — each deferred fence is paid exactly once, at the start
// of the next op — but the write-pending queue drains in the
// background during the handler work between the two calls, so the
// fence's blocking residual shrinks toward zero (see
// pmem.LatencyModel.DrainNsPerLine). Returns the number of messages
// newly counted acknowledged, or ErrFenced exactly as Ack does.
//
// The deferral trades the exactly-once guarantee down to at-least-once
// for its window: a crash — or a lease takeover that races the
// deferral — between AckAsync and the covering fence can leave the
// window both redelivered elsewhere and (if the stores land under a
// later fence) marked acked. Callers that need the strict guarantee
// use Ack; callers optimizing the tail call AckAsync from a single
// processing loop where the next op follows promptly.
func (c *Consumer) AckAsync(tid int) (int, error) {
	if !c.g.leased {
		panic("broker: AckAsync on a group without acknowledgments (use NewGroupAcked)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainAcks(tid)
	if err := c.takeFenced(tid); err != nil {
		return 0, err
	}
	o := c.g.b.obs
	var start int64
	if o != nil {
		start = obs.Now()
	}
	n := 0
	for _, r := range c.refs {
		if !r.t.enter() {
			r.unackedN = 0 // dropped with the topic, see Ack
			continue
		}
		s := r.t.shards[r.shard]
		floor := s.ackedTo()
		if r.deliveredTo <= floor {
			r.t.exit()
			continue
		}
		n += r.unackedN
		if o != nil && r.unackedN > 0 {
			r.t.ostats.Acked(r.unackedN)
		}
		r.unackedN = 0
		if s.ackToUnfenced(tid, r.deliveredTo) {
			c.asyncAcks = append(c.asyncAcks, s)
		}
		r.t.exit()
	}
	if o != nil && n > 0 {
		o.Lat(tid, obs.OpAck, start)
		o.Event(tid, obs.OpAck, nil, -1)
	}
	return n, nil
}

// DrainAcks pays any fence deferred by AckAsync, making the staged
// acknowledgments durable. Idempotent; costs nothing when no fence is
// owed. An event-loop consumer calls it before sleeping so the
// deferral window is bounded by the wakeup, not the next arrival.
func (c *Consumer) DrainAcks(tid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainAcks(tid)
}

// drainAcks fences the domains holding deferred ack NTStores (one
// fence per distinct heap) and promotes their durable ack frontiers.
// Caller holds c.mu.
func (c *Consumer) drainAcks(tid int) {
	if len(c.asyncAcks) == 0 {
		return
	}
	var fenced []int
	for _, s := range c.asyncAcks {
		done := false
		for _, hi := range fenced {
			if hi == s.heap {
				done = true
				break
			}
		}
		if !done {
			s.h.Fence(tid)
			fenced = append(fenced, s.heap)
		}
	}
	for _, s := range c.asyncAcks {
		s.completeAck(tid)
	}
	c.asyncAcks = c.asyncAcks[:0]
}

// Nack rescinds every delivered-but-unacknowledged message of this
// member: the messages go back onto the member's redelivery queue (a
// later PollBatch serves them again, in order, before any fresh
// dequeue of the same shard), and each affected shard's lease record
// is rewritten — one store+flush per shard, one fence for the whole
// nack — so the rescission itself is durable delivery state. Returns
// the number of messages queued for redelivery, or ErrFenced (and
// queues nothing) when the member was fenced off shards since its
// last acknowledgment-path op — see Ack.
func (c *Consumer) Nack(tid int) (int, error) {
	if !c.g.leased {
		panic("broker: Nack on a group without acknowledgments (use NewGroupAcked)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainAcks(tid)
	if err := c.takeFenced(tid); err != nil {
		return 0, err
	}
	w := leaseWriter{g: c.g, tid: tid}
	deadline := c.g.now() + c.g.ttl
	var nacked []pendingMsg
	for _, r := range c.refs {
		if !r.t.enter() {
			r.unackedN = 0 // dropped with the topic, see Ack
			continue
		}
		s := r.t.shards[r.shard]
		floor := s.ackedTo()
		if r.deliveredTo <= floor {
			r.t.exit()
			continue
		}
		ps, idxs := s.unacked()
		r.t.exit()
		for i := range ps {
			if idxs[i] > r.deliveredTo {
				break // not yet re-served redeliveries stay where they are
			}
			nacked = append(nacked, pendingMsg{r: r, idx: idxs[i], payload: ps[i]})
			r.pendingN++
		}
		r.deliveredTo = floor
		r.unackedN = 0
		w.write(r.global, Lease{
			Active: true, Owner: c.id, Epoch: r.epoch,
			Lo: floor + 1, Hi: r.leasedTo,
			Deadline: deadline,
		})
	}
	// Prepending keeps per-shard index order: everything nacked
	// precedes any still-queued redelivery of the same shard.
	c.pending = append(nacked, c.pending...)
	w.commit()
	return len(nacked), nil
}

// Renew extends this member's lease deadlines to the given instant on
// every shard it holds unacknowledged messages of. A renewal whose
// deadline the durable record already covers writes nothing and costs
// nothing — the heartbeat of a healthy consumer is free until the
// deadline actually needs moving; otherwise the rewritten lines ride
// a single fence. A member fenced off shards since its last
// acknowledgment-path op gets ErrFenced and renews nothing (0 fences):
// a stale owner must not refresh deadlines on leases it lost.
func (c *Consumer) Renew(tid int, deadline uint64) error {
	if !c.g.leased {
		panic("broker: Renew on a group without acknowledgments (use NewGroupAcked)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainAcks(tid)
	if err := c.takeFenced(tid); err != nil {
		return err
	}
	w := leaseWriter{g: c.g, tid: tid}
	for _, r := range c.refs {
		if !r.t.enter() {
			continue // retired with the topic: no lease to maintain
		}
		s := r.t.shards[r.shard]
		floor := s.ackedTo()
		r.t.exit()
		if r.leasedTo <= floor {
			continue // nothing unacknowledged: no lease to maintain
		}
		d := c.g.cache[r.global].durable
		if d.Active && d.Owner == c.id && d.Deadline >= deadline {
			continue // already durably covered
		}
		w.write(r.global, Lease{
			Active: true, Owner: c.id, Epoch: r.epoch,
			Lo: floor + 1, Hi: r.leasedTo,
			Deadline: deadline,
		})
	}
	w.commit()
	return nil
}

// Adopt transfers every shard of member `from` to member `to`,
// redelivering the unacknowledged suffix: `from` crashed (or went
// silent past its lease deadline), so everything it was handed but
// never acknowledged is queued on `to` for redelivery, and each
// affected lease record is rewritten to the new owner — with a
// bumped fencing epoch, so a resurfacing `from` gets ErrFenced —
// and a fresh deadline before Adopt returns (one fence). Messages
// `from` had acknowledged are durably consumed and never reappear —
// takeover preserves exactly-once processing.
//
// Adopt refuses while any of from's lease records is durably
// unexpired at the group clock (ErrUnexpiredLease): a live member may
// still be processing its window. Drive `from`'s goroutine to
// completion first, or use Reassign with force; tid may be the dead
// member's thread id. Returns the number of redeliveries moved.
// Adopt is the single-target form of Reassign.
func (g *Group) Adopt(tid, from, to int) (int, error) {
	return g.Reassign(tid, from, []int{to}, false)
}

// leaseWriter batches lease-line writes that ride one fence on the
// region's domain; commit promotes the write cache only after the
// fence, so renewal elision never trusts an unfenced deadline.
type leaseWriter struct {
	g      *Group
	tid    int
	staged []int
}

func (w *leaseWriter) write(global int, l Lease) {
	c := &w.g.cache[global]
	c.seq++
	l.Seq = c.seq
	w.g.region.writeLeaseLine(w.tid, global, l)
	c.pending = l
	w.staged = append(w.staged, global)
}

func (w *leaseWriter) commit() {
	if len(w.staged) == 0 {
		return
	}
	w.g.region.h.Fence(w.tid)
	for _, gl := range w.staged {
		c := &w.g.cache[gl]
		c.durable = c.pending
	}
	w.staged = w.staged[:0]
}
