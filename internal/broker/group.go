package broker

import (
	"fmt"
	"sort"
)

// Message is one delivered payload with its provenance.
type Message struct {
	Topic   string
	Shard   int
	Payload []byte
}

// ShardRef names one shard of one topic.
type ShardRef struct {
	Topic string
	Shard int
}

// Group is a consumer group over a set of topics. Every shard of
// every subscribed topic is assigned to exactly one member, so the
// group collectively consumes each message once (at-least-once across
// crashes: a member that crashed mid-delivery may leave its message
// to be recovered instead). Shard ownership means per-shard FIFO
// order is preserved end-to-end.
type Group struct {
	consumers []*Consumer
}

func (b *Broker) collectRefs(topicNames []string) ([]consumerShard, error) {
	var refs []consumerShard
	for _, name := range topicNames {
		t := b.Topic(name)
		if t == nil {
			return nil, fmt.Errorf("broker: unknown topic %q", name)
		}
		for s := 0; s < t.Shards(); s++ {
			refs = append(refs, consumerShard{t: t, shard: s})
		}
	}
	return refs, nil
}

func newGroup(refs []consumerShard, n int, deal func(g *Group, refs []consumerShard)) (*Group, error) {
	if n <= 0 {
		return nil, fmt.Errorf("broker: group needs at least one consumer")
	}
	g := &Group{consumers: make([]*Consumer, n)}
	for i := range g.consumers {
		g.consumers[i] = &Consumer{}
	}
	deal(g, refs)
	return g, nil
}

// NewGroup subscribes n consumers to the named topics, assigning
// shards to members round-robin across the combined shard list.
func (b *Broker) NewGroup(topicNames []string, n int) (*Group, error) {
	refs, err := b.collectRefs(topicNames)
	if err != nil {
		return nil, err
	}
	return newGroup(refs, n, func(g *Group, refs []consumerShard) {
		for i, r := range refs {
			c := g.consumers[i%n]
			c.refs = append(c.refs, r)
		}
	})
}

// NewGroupAffine subscribes n consumers to the named topics with
// heap-affine assignment: the combined shard list is ordered by member
// heap and dealt out in contiguous chunks, so each consumer's shards
// concentrate on as few persistence domains as possible. A PollBatch
// fences once per domain it dequeued from — with block placement
// (BlockPlacement) and consumers >= heaps, each member's fences stay
// on a single domain.
func (b *Broker) NewGroupAffine(topicNames []string, n int) (*Group, error) {
	refs, err := b.collectRefs(topicNames)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(refs, func(i, j int) bool {
		return refs[i].t.locs[refs[i].shard].heap < refs[j].t.locs[refs[j].shard].heap
	})
	return newGroup(refs, n, func(g *Group, refs []consumerShard) {
		for i := range g.consumers {
			lo, hi := i*len(refs)/n, (i+1)*len(refs)/n
			g.consumers[i].refs = append(g.consumers[i].refs, refs[lo:hi]...)
		}
	})
}

// Size returns the number of group members.
func (g *Group) Size() int { return len(g.consumers) }

// Consumer returns group member i.
func (g *Group) Consumer(i int) *Consumer { return g.consumers[i] }

type consumerShard struct {
	t     *Topic
	shard int
}

// Consumer is one group member. A Consumer must be driven by a single
// goroutine; tid follows the usual one-goroutine-per-tid rule.
type Consumer struct {
	refs []consumerShard
	next int
}

// Assigned lists the shards this member owns.
func (c *Consumer) Assigned() []ShardRef {
	out := make([]ShardRef, len(c.refs))
	for i, r := range c.refs {
		out[i] = ShardRef{Topic: r.t.Name(), Shard: r.shard}
	}
	return out
}

// Domains lists the distinct member heaps this member's shards live
// on — the number of SFENCEs a full PollBatch sweep pays at most.
func (c *Consumer) Domains() []int {
	var out []int
	for _, r := range c.refs {
		h := r.t.locs[r.shard].heap
		seen := false
		for _, d := range out {
			if d == h {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, h)
		}
	}
	sort.Ints(out)
	return out
}

// Poll scans the member's shards round-robin and delivers the first
// available message. ok is false when every owned shard was observed
// empty. When Poll returns a message, the delivery is already durable
// (the dequeue's persist covers it), so the message is never
// re-delivered after a crash.
func (c *Consumer) Poll(tid int) (Message, bool) {
	for i := 0; i < len(c.refs); i++ {
		r := c.refs[(c.next+i)%len(c.refs)]
		if p, ok := r.t.shards[r.shard].consume(tid); ok {
			c.next = (c.next + i + 1) % len(c.refs)
			return Message{Topic: r.t.Name(), Shard: r.shard, Payload: p}, true
		}
	}
	// The cursor stays where it was: resetting it on an all-empty scan
	// would permanently bias delivery toward low-numbered shards after
	// any idle period.
	return Message{}, false
}

// PollBatch drains up to max messages from the member's shards
// round-robin, riding a single blocking persist per persistence
// domain it dequeued from: each shard's batch dequeue issues one
// NTStore of its new head index, and since a fence is per-thread
// *per-heap* and covers all of that thread's outstanding NTStores on
// that heap regardless of which shard's local line they target, one
// SFENCE per touched heap at the end makes every shard's progress
// durable together. With all of a member's shards on one domain (see
// NewGroupAffine and BlockPlacement) that is a single fence per poll;
// a poll that finds every owned shard empty at an already-persisted
// head index issues no persist instructions at all, so idle consumers
// poll for free.
//
// The batch is acknowledged as a whole when PollBatch returns: at that
// point every delivery in it is durable and will never be re-delivered
// after a crash. A crash mid-poll leaves the whole window
// unacknowledged — its messages are redelivered (or, for a suffix
// whose NTStore happened to land without the fence, consumed) on
// recovery, exactly dual to PublishBatch. An empty result means every
// owned shard was observed empty.
func (c *Consumer) PollBatch(tid, max int) []Message {
	if max <= 0 || len(c.refs) == 0 {
		return nil
	}
	var out []Message
	var touched []*shard
	for scanned := 0; scanned < len(c.refs) && len(out) < max; scanned++ {
		r := c.refs[c.next]
		s := r.t.shards[r.shard]
		ps, dirty := s.consumeBatchUnfenced(tid, max-len(out))
		if dirty {
			touched = append(touched, s)
		}
		for _, p := range ps {
			out = append(out, Message{Topic: r.t.Name(), Shard: r.shard, Payload: p})
		}
		// Advance past the shard even when it filled the batch: the
		// next poll then starts at the following shard, so one
		// continuously hot shard cannot starve the others.
		c.next = (c.next + 1) % len(c.refs)
	}
	if len(touched) > 0 {
		// One fence per distinct domain covers every touched shard's
		// NTStores there.
		var fenced []int
		for _, s := range touched {
			done := false
			for _, hi := range fenced {
				if hi == s.heap {
					done = true
					break
				}
			}
			if !done {
				s.h.Fence(tid)
				fenced = append(fenced, s.heap)
			}
		}
		for _, s := range touched {
			s.completeBatch(tid)
		}
	}
	return out
}
