package broker

import (
	"fmt"
	"sync/atomic"

	"repro/internal/pmem"
)

// The durable catalog is what makes the broker recoverable as a
// whole. Live brokers write the v4 append-only catalog *log* (see
// cataloglog.go): an administrative record per creation, appended and
// fenced before an anchor stamp makes it visible, so topics can be
// created at runtime. This file keeps the shared plumbing — the
// bounds-checked reader, placement validation, membership stamps —
// and the pinned readers for the three legacy write-once layouts,
// which recover forever:
//
// v3 layout ("Broker3", one cache line per row, so each row persists
// with a single flush and rows never invalidate each other):
//
//	line 0 (header):  [magicV3, topicCount, threads, heapCount,
//	                   setStamp, shardTotal, ackGroups, 0]
//	line 1+i (topic): [shards, maxPayload | ackedBit, nameLen,
//	                   placeStart, name word 0..3]  (name <= 32 bytes)
//	placement lines:  one word per shard in creation order,
//	                   heapID<<32 | baseSlot, 8 words per line —
//	                   followed by one word per ack-group lease
//	                   region, heapID<<32 | anchorSlot
//
// ackedBit (bit 62 of the maxPayload word) marks a topic whose shards
// are ack-mode queues: consumption is leased and recovery redelivers
// everything beyond the acknowledged frontier (see lease.go). The
// ackGroups count and lease placements let recovery re-discover every
// pre-allocated consumer-group lease region — a v3 catalog whose
// lease region is missing or foreign errors instead of mis-scanning.
//
// The v2 layout ("Broker2") differs only in lacking the ackGroups
// word, the acked bit and the lease placements; readCatalog still
// accepts it (lease-free brokers recover as before).
//
// Every member heap other than heap 0 carries a membership stamp line
// anchored at its own root slot 0 (all versions since v2):
//
//	[stampMagic, setStamp, heapIndex, heapCount]
//
// setStamp is minted fresh per broker creation, so Recover on a heap
// set that is missing a catalogued heap, has a blank or foreign heap
// spliced in, or presents the heaps in the wrong order fails with an
// error instead of mis-scanning another broker's (or nobody's) root
// slots. threads is recorded because it sizes each shard's per-thread
// head-index region: recovery must scan exactly that many lines.
//
// The v1 layout ("Broker1", single-heap) is still read: topic rows
// were [slotBase, shards, maxPayload, nameLen, name 0..3] with the
// deterministic sequential placement on one heap. readCatalog accepts
// it only on a 1-heap set.
//
// Legacy catalogs are write-once, so a broker recovered from one
// refuses CreateTopic/CreateAckGroup: its layout has no log to append
// to. Everything else — data plane, groups, leases — works unchanged.

const (
	catMagic     = 0x42726f6b657231 // "Broker1": legacy single-heap layout
	catMagicV2   = 0x42726f6b657232 // "Broker2": legacy heap-set layout
	catMagicV3   = 0x42726f6b657233 // "Broker3": heap-set layout with acks + lease regions
	stampMagic   = 0x48705374616d70 // "HpStamp"
	catNameBytes = 32

	// catAckedBit marks an acked topic in the maxPayload word of a v3
	// topic row (payload capacities are far below 2^62).
	catAckedBit = uint64(1) << 62

	// catKindShift places the topic kind (2 bits) in the payload word
	// of a v4 topic record, below the acked bit; validateTopic bounds
	// MaxPayload under 2^60 so the fields never collide. Legacy v1–v3
	// catalogs predate topic kinds: their payload words carry kind 0
	// (KindFIFO), which is exactly what those brokers were.
	catKindShift = 60
	catKindMask  = uint64(3) << catKindShift

	// Sanity caps for catalog fields, so a corrupted or truncated
	// catalog is rejected with an error before its counts are used to
	// compute out-of-range addresses.
	maxCatTopics = 1 << 12
	maxCatShards = 1 << 20
	maxCatHeaps  = 1 << 10
)

// setStampSeq mints process-unique membership stamps; uniqueness per
// broker creation is all that is needed to tell one set's heaps from
// another's (heaps are in-memory simulations, not shared files).
var setStampSeq atomic.Uint64

func nextSetStamp() uint64 {
	return uint64(0x53)<<56 | setStampSeq.Add(1)
}

// shardLoc places one shard: which member heap it lives on and the
// base of its slotsPerShard-wide root-slot window there.
type shardLoc struct {
	heap, base int
}

// layoutInfo is everything readCatalog recovers about a broker's
// durable shape, whichever catalog version recorded it.
type layoutInfo struct {
	topics    []TopicConfig
	locs      [][]shardLoc // per topic, per shard
	bases     []int        // per topic: global shard-ordinal base (lease-line index of shard 0)
	leaseLocs []shardLoc   // per ack group: (heap, anchor slot) of its lease region
	leaseCaps []int        // per ack group: shard-ordinal capacity of the region
	threads   int
	// nextGlobal is where the broker continues issuing global shard
	// ordinals: past every ordinal any topic — live, deleted, or
	// compacted away — ever held, so a retired topic's lease lines are
	// never adopted by a new one.
	nextGlobal int
	cat        *catalogLog // non-nil for a v4 log: the broker stays administrable
}

func packLoc(l shardLoc) uint64   { return uint64(l.heap)<<32 | uint64(l.base) }
func unpackLoc(w uint64) shardLoc { return shardLoc{heap: int(w >> 32), base: int(w & 0xffffffff)} }

// catReader bounds-checks every word it reads against the heap size,
// so a corrupted count or truncated region yields an error instead of
// an out-of-range panic deep in the simulator.
type catReader struct {
	h   *pmem.Heap
	err error
}

func (r *catReader) word(a pmem.Addr) uint64 {
	if r.err != nil {
		return 0
	}
	// Phrased to survive corrupt addresses near 2^64: a+WordBytes could
	// wrap to a small value and dodge the check.
	if bytes := pmem.Addr(r.h.Bytes()); a >= bytes || bytes-a < pmem.WordBytes {
		r.err = fmt.Errorf("broker: catalog truncated: read at %d beyond heap of %d bytes", a, r.h.Bytes())
		return 0
	}
	return r.h.Load(0, a)
}

func readName(r *catReader, row pmem.Addr, nameLen uint64) string {
	name := make([]byte, catNameBytes)
	for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
		word := r.word(row + pmem.Addr(32+w*8))
		for b := 0; b < 8; b++ {
			name[w*8+b] = byte(word >> (8 * b))
		}
	}
	return string(name[:nameLen])
}

// readCatalog reads the durable catalog from heap 0 of the set,
// accepting both layouts, and verifies the membership stamp of every
// non-anchor heap. It returns an error — never panics — when the set
// does not match the catalog: fewer or more heaps than recorded, a
// blank heap where a stamped member should be, a stamp from another
// broker, or heaps presented in the wrong order.
func readCatalog(hs *pmem.HeapSet) (layoutInfo, error) {
	h := hs.Heap(0)
	r := &catReader{h: h}
	reg := pmem.Addr(r.word(h.RootAddr(slotAnchor)))
	if r.err != nil {
		return layoutInfo{}, r.err
	}
	if reg == 0 {
		return layoutInfo{}, fmt.Errorf("broker: no catalog anchored (heap 0 hosts no broker)")
	}
	magic := r.word(reg)
	var (
		lay       layoutInfo
		heapCount int
		stamp     uint64
		err       error
	)
	switch magic {
	case catMagic:
		heapCount = 1
		lay, err = readCatalogV1(r, reg)
	case catMagicV2:
		lay, heapCount, stamp, err = readCatalogV2(r, reg)
	case catMagicV3:
		lay, heapCount, stamp, err = readCatalogV3(r, reg)
	case catMagicV4:
		lay, lay.cat, heapCount, stamp, err = readCatalogV4(r, hs, reg)
	default:
		return layoutInfo{}, fmt.Errorf("broker: catalog magic %#x invalid", magic)
	}
	if err != nil {
		return layoutInfo{}, err
	}
	if magic != catMagicV4 {
		// Legacy write-once catalogs assigned global shard ordinals
		// sequentially in row order and never deleted a topic.
		for _, tc := range lay.topics {
			lay.bases = append(lay.bases, lay.nextGlobal)
			lay.nextGlobal += tc.Shards
		}
	}
	if heapCount != hs.Len() {
		return layoutInfo{}, fmt.Errorf("broker: catalog records %d heaps, the given set has %d",
			heapCount, hs.Len())
	}
	for i := 1; i < heapCount; i++ {
		if err := checkStamp(hs.Heap(i), i, heapCount, stamp); err != nil {
			return layoutInfo{}, err
		}
	}
	// Validate every placement against the actual set: in-range heap,
	// in-range window, and no two windows — shard or lease region —
	// sharing slots on one heap.
	type window struct{ base, width int }
	used := make([][]window, hs.Len())
	claim := func(what string, loc shardLoc, width int) error {
		if loc.heap < 0 || loc.heap >= hs.Len() {
			return fmt.Errorf("broker: catalog places %s on heap %d of %d", what, loc.heap, hs.Len())
		}
		if loc.base < 1 || loc.base+width > hs.Heap(loc.heap).RootSlots() {
			return fmt.Errorf("broker: catalog places %s at slots [%d,%d) outside heap %d's window [1,%d)",
				what, loc.base, loc.base+width, loc.heap, hs.Heap(loc.heap).RootSlots())
		}
		for _, w := range used[loc.heap] {
			if loc.base < w.base+w.width && w.base < loc.base+width {
				return fmt.Errorf("broker: catalog windows overlap on heap %d (bases %d and %d)",
					loc.heap, w.base, loc.base)
			}
		}
		used[loc.heap] = append(used[loc.heap], window{loc.base, width})
		return nil
	}
	for ti, tl := range lay.locs {
		for si, loc := range tl {
			if err := claim(fmt.Sprintf("topic %d shard %d", ti, si), loc, slotsForKind(lay.topics[ti].Kind)); err != nil {
				return layoutInfo{}, err
			}
		}
	}
	for g, loc := range lay.leaseLocs {
		if err := claim(fmt.Sprintf("lease region %d", g), loc, 1); err != nil {
			return layoutInfo{}, err
		}
	}
	return lay, nil
}

func readCatalogV1(r *catReader, reg pmem.Addr) (layoutInfo, error) {
	n := r.word(reg + pmem.WordBytes)
	threads := r.word(reg + 2*pmem.WordBytes)
	if n == 0 || n > maxCatTopics {
		return layoutInfo{}, fmt.Errorf("broker: v1 catalog topic count %d invalid", n)
	}
	lay := layoutInfo{threads: int(threads)}
	next := uint64(1)
	for i := uint64(0); i < n; i++ {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		nameLen := r.word(row + 24)
		if r.err != nil {
			return layoutInfo{}, r.err
		}
		if nameLen == 0 || nameLen > catNameBytes {
			return layoutInfo{}, fmt.Errorf("broker: catalog row %d has invalid name length %d", i, nameLen)
		}
		// The recorded slot base must match the deterministic v1
		// layout; a mismatch means the catalog does not describe this
		// heap.
		if base := r.word(row); base != next {
			return layoutInfo{}, fmt.Errorf("broker: catalog row %d records slot base %d, layout expects %d",
				i, base, next)
		}
		shards := r.word(row + 8)
		if shards == 0 || shards > maxCatShards {
			return layoutInfo{}, fmt.Errorf("broker: catalog row %d has invalid shard count %d", i, shards)
		}
		locs := make([]shardLoc, shards)
		for s := range locs {
			locs[s] = shardLoc{heap: 0, base: int(next) + s*slotsPerShard}
		}
		lay.topics = append(lay.topics, TopicConfig{
			Name:       readName(r, row, nameLen),
			Shards:     int(shards),
			MaxPayload: int(r.word(row + 16)),
		})
		lay.locs = append(lay.locs, locs)
		next += shards * slotsPerShard
	}
	return lay, r.err
}

func readCatalogV2(r *catReader, reg pmem.Addr) (layoutInfo, int, uint64, error) {
	return readCatalogV2V3(r, reg, false)
}

func readCatalogV3(r *catReader, reg pmem.Addr) (layoutInfo, int, uint64, error) {
	return readCatalogV2V3(r, reg, true)
}

// readCatalogV2V3 reads the heap-set layouts; v3 adds the ackGroups
// header word, the acked bit in each topic row's payload word, and the
// lease-region placement words after the shard placements.
func readCatalogV2V3(r *catReader, reg pmem.Addr, v3 bool) (layoutInfo, int, uint64, error) {
	n := r.word(reg + 8)
	threads := r.word(reg + 16)
	heapCount := r.word(reg + 24)
	stamp := r.word(reg + 32)
	shardTotal := r.word(reg + 40)
	ackGroups := uint64(0)
	if v3 {
		ackGroups = r.word(reg + 48)
	}
	if r.err != nil {
		return layoutInfo{}, 0, 0, r.err
	}
	if n == 0 || n > maxCatTopics {
		return layoutInfo{}, 0, 0, fmt.Errorf("broker: catalog topic count %d invalid", n)
	}
	if heapCount == 0 || heapCount > maxCatHeaps {
		return layoutInfo{}, 0, 0, fmt.Errorf("broker: catalog heap count %d invalid", heapCount)
	}
	if shardTotal == 0 || shardTotal > maxCatShards {
		return layoutInfo{}, 0, 0, fmt.Errorf("broker: catalog shard total %d invalid", shardTotal)
	}
	if ackGroups > maxCatAckGroups {
		return layoutInfo{}, 0, 0, fmt.Errorf("broker: catalog ack-group count %d invalid", ackGroups)
	}
	lay := layoutInfo{threads: int(threads)}
	placeBase := reg + pmem.Addr((1+n)*pmem.CacheLineBytes)
	place := uint64(0)
	for i := uint64(0); i < n; i++ {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		shards := r.word(row)
		payloadWord := r.word(row + 8)
		nameLen := r.word(row + 16)
		placeStart := r.word(row + 24)
		if r.err != nil {
			return layoutInfo{}, 0, 0, r.err
		}
		if nameLen == 0 || nameLen > catNameBytes {
			return layoutInfo{}, 0, 0, fmt.Errorf("broker: catalog row %d has invalid name length %d", i, nameLen)
		}
		if shards == 0 || placeStart != place || placeStart+shards > shardTotal {
			return layoutInfo{}, 0, 0, fmt.Errorf("broker: catalog row %d has inconsistent placement (%d shards at %d of %d)",
				i, shards, placeStart, shardTotal)
		}
		locs := make([]shardLoc, shards)
		for s := range locs {
			locs[s] = unpackLoc(r.word(placeBase + pmem.Addr((placeStart+uint64(s))*pmem.WordBytes)))
		}
		tc := TopicConfig{
			Name:       readName(r, row, nameLen),
			Shards:     int(shards),
			MaxPayload: int(payloadWord),
		}
		if v3 {
			tc.Acked = payloadWord&catAckedBit != 0
			tc.MaxPayload = int(payloadWord &^ catAckedBit)
		}
		lay.topics = append(lay.topics, tc)
		lay.locs = append(lay.locs, locs)
		place += shards
	}
	if place != shardTotal {
		return layoutInfo{}, 0, 0, fmt.Errorf("broker: catalog shard total %d does not match topic rows (%d)",
			shardTotal, place)
	}
	for g := uint64(0); g < ackGroups; g++ {
		lay.leaseLocs = append(lay.leaseLocs,
			unpackLoc(r.word(placeBase+pmem.Addr((shardTotal+g)*pmem.WordBytes))))
		// v3 regions were sized to the write-once catalog's shard total.
		lay.leaseCaps = append(lay.leaseCaps, int(shardTotal))
	}
	return lay, int(heapCount), stamp, r.err
}

// checkMemberEmpty rejects a heap whose anchor slot already names a
// durable region: creating a broker over it would destroy another
// broker's catalog, stamp or shard state. The error says what was
// found so an operator can tell a live set (recover it) from debris of
// a creation that crashed pre-anchor (clear the slot explicitly).
func checkMemberEmpty(h *pmem.Heap, i int) error {
	r := &catReader{h: h}
	reg := pmem.Addr(r.word(h.RootAddr(slotAnchor)))
	if r.err != nil || reg == 0 {
		return nil // nothing anchored (a dangling address is treated as debris below)
	}
	switch r.word(reg) {
	case catMagic, catMagicV2, catMagicV3, catMagicV4:
		return fmt.Errorf("broker: heap %d of the set already hosts a broker catalog (use Recover)", i)
	case stampMagic:
		return fmt.Errorf("broker: heap %d of the set carries a membership stamp (member of another broker, or leftover from an interrupted creation)", i)
	default:
		return fmt.Errorf("broker: heap %d of the set has a nonzero anchor slot (hosts unknown durable state)", i)
	}
}

// checkStamp verifies heap i's membership stamp against the catalog's
// expectation: present, from the same broker creation, and in the
// right position of the set.
func checkStamp(h *pmem.Heap, i, heapCount int, stamp uint64) error {
	r := &catReader{h: h}
	reg := pmem.Addr(r.word(h.RootAddr(slotAnchor)))
	if r.err != nil {
		return r.err
	}
	if reg == 0 {
		return fmt.Errorf("broker: heap %d of the set carries no membership stamp (missing or blank heap)", i)
	}
	magic := r.word(reg)
	gotStamp := r.word(reg + 8)
	gotIdx := r.word(reg + 16)
	gotCount := r.word(reg + 24)
	if r.err != nil {
		return r.err
	}
	if magic != stampMagic {
		return fmt.Errorf("broker: heap %d stamp magic %#x invalid", i, magic)
	}
	if gotStamp != stamp {
		return fmt.Errorf("broker: heap %d carries stamp %#x, catalog expects %#x (heap from another broker?)",
			i, gotStamp, stamp)
	}
	if gotIdx != uint64(i) || gotCount != uint64(heapCount) {
		return fmt.Errorf("broker: heap %d stamped as member %d of %d (set order mismatch)",
			i, gotIdx, gotCount)
	}
	return nil
}
