package broker

import (
	"fmt"

	"repro/internal/pmem"
)

// The durable catalog is what makes the broker recoverable as a
// whole: one persistent region recording every topic's name, shard
// count and payload kind, anchored at the broker's root slot 0.
//
// Layout (one cache line per row, so each row persists with a single
// flush and rows never invalidate each other):
//
//	line 0: [magic, topicCount, threads, 0...]
//	line 1+i (topic i): [slotBase, shards, maxPayload, nameLen,
//	                     name word 0..3]          (name <= 32 bytes)
//
// threads is recorded because it sizes each shard's per-thread
// head-index region: recovery must scan exactly that many lines, so a
// mismatched thread bound at Recover would silently corrupt the
// recovered head index (reading garbage, or missing persisted
// indices) rather than fail.
//
// The catalog is written once, before the anchor: topics are static
// for the life of a broker (dynamic topic creation is a ROADMAP open
// item). Creation order therefore is: shard queues first, then the
// catalog body, then — after a fence covering the body — the anchor.
// A crash at any point inside New either leaves the anchor empty (no
// broker; nothing was acknowledged) or a fully readable catalog.

const (
	catMagic     = 0x42726f6b657231 // "Broker1"
	catNameBytes = 32
)

func writeCatalog(h *pmem.Heap, cfg Config) {
	const tid = 0
	bytes := int64((1 + len(cfg.Topics)) * pmem.CacheLineBytes)
	reg := h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, reg, bytes)

	h.Store(tid, reg, catMagic)
	h.Store(tid, reg+pmem.WordBytes, uint64(len(cfg.Topics)))
	h.Store(tid, reg+2*pmem.WordBytes, uint64(cfg.Threads))
	h.Flush(tid, reg)
	next := 1
	for i, tc := range cfg.Topics {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		h.Store(tid, row, uint64(next))
		h.Store(tid, row+8, uint64(tc.Shards))
		h.Store(tid, row+16, uint64(tc.MaxPayload))
		h.Store(tid, row+24, uint64(len(tc.Name)))
		name := make([]byte, catNameBytes)
		copy(name, tc.Name)
		for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
			var word uint64
			for b := 0; b < 8; b++ {
				word |= uint64(name[w*8+b]) << (8 * b)
			}
			h.Store(tid, row+pmem.Addr(32+w*8), word)
		}
		h.Flush(tid, row)
		next += tc.Shards * slotsPerShard
	}
	h.Fence(tid) // catalog body durable before the anchor names it

	h.Store(tid, h.RootAddr(slotCatalog), uint64(reg))
	h.Persist(tid, h.RootAddr(slotCatalog))
}

func readCatalog(h *pmem.Heap) ([]TopicConfig, int, error) {
	const tid = 0
	reg := pmem.Addr(h.Load(tid, h.RootAddr(slotCatalog)))
	if reg == 0 {
		return nil, 0, fmt.Errorf("broker: no catalog anchored (heap window hosts no broker)")
	}
	if m := h.Load(tid, reg); m != catMagic {
		return nil, 0, fmt.Errorf("broker: catalog magic %#x invalid", m)
	}
	n := h.Load(tid, reg+pmem.WordBytes)
	threads := int(h.Load(tid, reg+2*pmem.WordBytes))
	topics := make([]TopicConfig, 0, n)
	next := uint64(1)
	for i := uint64(0); i < n; i++ {
		row := reg + pmem.Addr((1+i)*pmem.CacheLineBytes)
		nameLen := h.Load(tid, row+24)
		if nameLen == 0 || nameLen > catNameBytes {
			return nil, 0, fmt.Errorf("broker: catalog row %d has invalid name length %d", i, nameLen)
		}
		// The recorded slot base must match the deterministic layout;
		// a mismatch means the catalog does not describe this heap.
		if base := h.Load(tid, row); base != next {
			return nil, 0, fmt.Errorf("broker: catalog row %d records slot base %d, layout expects %d",
				i, base, next)
		}
		name := make([]byte, catNameBytes)
		for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
			word := h.Load(tid, row+pmem.Addr(32+w*8))
			for b := 0; b < 8; b++ {
				name[w*8+b] = byte(word >> (8 * b))
			}
		}
		topics = append(topics, TopicConfig{
			Name:       string(name[:nameLen]),
			Shards:     int(h.Load(tid, row+8)),
			MaxPayload: int(h.Load(tid, row+16)),
		})
		next += h.Load(tid, row+8) * slotsPerShard
	}
	return topics, threads, nil
}
