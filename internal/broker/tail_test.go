package broker

import (
	"errors"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/pmem"
)

// --- Adaptive batching: fence-accounting pins for both regimes ------

// TestPublisherAdaptiveFenceRegimes pins the producer half of the
// adaptive-batching cost model with a logical clock. Idle regime:
// every arrival gap exceeds the deadline, so the AIMD policy stays at
// per-message windows — one fence per message, minimal latency.
// Loaded regime: back-to-back arrivals, so the policy climbs to Max
// and the steady state is one fence per Max-sized window.
func TestPublisherAdaptiveFenceRegimes(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: []TopicConfig{{Name: "events", Shards: 2}}, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	clk := int64(0)
	newPub := func() *Publisher {
		return b.Topic("events").NewPublisher(0, PublisherConfig{
			Policy:     batch.NewAIMD(1, 8),
			MaxDelayNs: 100,
			Now:        func() int64 { return clk },
		})
	}

	// Idle: arrivals 1000 clock units apart (>> deadline 100).
	p := newPub()
	const idleN = 20
	before := h.TotalStats()
	acked := 0
	for i := uint64(0); i < idleN; i++ {
		clk += 1000
		acked += p.Publish(U64(i))
	}
	acked += p.Flush()
	d := h.TotalStats().Sub(before)
	if acked != idleN {
		t.Fatalf("idle regime acknowledged %d, want %d", acked, idleN)
	}
	if d.Fences != idleN {
		t.Fatalf("idle regime = %d fences for %d messages, want one per message", d.Fences, idleN)
	}

	// Loaded: arrivals with zero gap. The first window is still treated
	// as slow (assume idle at startup), so AIMD ramps 1,1,2,3,...,8 (37
	// messages over 9 windows), then flushes 8 at a time: 100 messages
	// = 9 ramp windows + 7 full windows + 1 final Flush of the 7-deep
	// remainder = 17 fences, against 100 for the idle regime.
	p = newPub()
	const loadN = 100
	before = h.TotalStats()
	acked = 0
	for i := uint64(0); i < loadN; i++ {
		acked += p.Publish(U64(i))
	}
	acked += p.Flush()
	d = h.TotalStats().Sub(before)
	if acked != loadN {
		t.Fatalf("loaded regime acknowledged %d, want %d", acked, loadN)
	}
	if want := uint64(17); d.Fences != want {
		t.Fatalf("loaded regime = %d fences for %d messages, want %d (ramp then max windows)",
			d.Fences, loadN, want)
	}
}

// TestConsumerAdaptiveFenceRegimes pins the consumer half: a drain of
// any adaptive size rides one fence, so under load the AIMD policy
// reaches Max-sized drains (fences/msg -> 1/Max), and an idle consumer
// whose policy has collapsed to Min pays zero persists per empty poll.
func TestConsumerAdaptiveFenceRegimes(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: []TopicConfig{{Name: "events", Shards: 1}}, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	g, err := b.NewGroup([]string{"events"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)
	pol := batch.NewAIMD(1, 16)

	before := h.TotalStats()
	drains, got := 0, 0
	for got < n {
		ms := c.PollBatch(1, pol.Size())
		pol.Observe(len(ms))
		if len(ms) == 0 {
			t.Fatalf("queue ran dry at %d/%d", got, n)
		}
		got += len(ms)
		drains++
	}
	d := h.TotalStats().Sub(before)
	if d.Fences != uint64(drains) {
		t.Fatalf("loaded drains = %d fences for %d drains, want one per drain", d.Fences, drains)
	}
	if pol.Size() != 16 {
		t.Fatalf("policy after sustained backlog = %d, want Max 16", pol.Size())
	}
	// drains must be far fewer than messages: the ramp 1,2,...,16 (136
	// >= 120) caps the count.
	if drains > 16 {
		t.Fatalf("%d messages took %d drains, want <= 16 (adaptive growth)", n, drains)
	}

	// Idle: policy collapses to Min and empty polls stay persist-free.
	before = h.TotalStats()
	for i := 0; i < 50; i++ {
		ms := c.PollBatch(1, pol.Size())
		pol.Observe(len(ms))
	}
	d = h.TotalStats().Sub(before)
	if d.Fences != 0 || d.Flushes != 0 || d.NTStores != 0 {
		t.Fatalf("idle adaptive polls = %d fences, %d flushes, %d NTStores; want 0/0/0",
			d.Fences, d.Flushes, d.NTStores)
	}
	if pol.Size() != 1 {
		t.Fatalf("policy after idling = %d, want Min 1", pol.Size())
	}
}

// --- Pipelined persists: fence-count parity pins -------------------

// TestPublisherPipelineFenceParity pins the pipelining contract:
// publishing the same window sequence pipelined and plain costs
// exactly the same number of fences — pipelining moves the overlap,
// never the count — and the pipelined acknowledgments trail by exactly
// one window.
func TestPublisherPipelineFenceParity(t *testing.T) {
	for _, payload := range []int{0, 32} { // fixed-width and blob topics
		mk := func(i uint64) []byte {
			if payload == 0 {
				return U64(i)
			}
			return blobPayload(i)[:9]
		}
		const windows, wsize = 12, 4

		// Each mode runs on a fresh heap so both pay identical
		// node-arena warmup; the comparison isolates the publish fences.
		run := func(pipeline bool) (fences uint64, ackTrail []int) {
			h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
			b, err := New(h, Config{Topics: []TopicConfig{
				{Name: "events", Shards: 2, MaxPayload: payload}}, Threads: 1})
			if err != nil {
				t.Fatal(err)
			}
			pub := b.Topic("events").NewPublisher(0, PublisherConfig{
				Policy: batch.Fixed{N: wsize}, Pipeline: pipeline,
			})
			before := h.TotalStats()
			for w := 0; w < windows; w++ {
				n := 0
				for i := 0; i < wsize; i++ {
					n += pub.Publish(mk(uint64(w*wsize + i)))
				}
				ackTrail = append(ackTrail, n)
			}
			ackTrail = append(ackTrail, pub.Flush())
			fences = h.TotalStats().Sub(before).Fences

			// Everything published is consumable exactly once.
			g, err := b.NewGroup([]string{"events"}, 1)
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			for {
				ms := g.Consumer(0).PollBatch(0, 64)
				if len(ms) == 0 {
					break
				}
				seen += len(ms)
			}
			if want := windows * wsize; seen != want {
				t.Fatalf("payload=%d pipeline=%v: consumed %d, want %d", payload, pipeline, seen, want)
			}
			return
		}

		plainFences, plainAcks := run(false)
		pipeFences, pipeAcks := run(true)
		if plainFences != pipeFences {
			t.Fatalf("payload=%d: pipelining changed the fence count: plain %d, pipelined %d",
				payload, plainFences, pipeFences)
		}
		if payload == 0 && plainFences != windows {
			t.Fatalf("payload=%d: %d windows cost %d fences, want one per window", payload, windows, plainFences)
		}
		// Plain: every window acks itself, Flush acks nothing more.
		for w := 0; w < windows; w++ {
			if plainAcks[w] != wsize {
				t.Fatalf("payload=%d: plain window %d acked %d, want %d", payload, w, plainAcks[w], wsize)
			}
		}
		if plainAcks[windows] != 0 {
			t.Fatalf("payload=%d: plain Flush acked %d, want 0", payload, plainAcks[windows])
		}
		// Pipelined: window 0's flush acks nothing, each later window's
		// flush acks its predecessor, Flush acks the last.
		if pipeAcks[0] != 0 {
			t.Fatalf("payload=%d: first pipelined window acked %d, want 0", payload, pipeAcks[0])
		}
		for w := 1; w < windows; w++ {
			if pipeAcks[w] != wsize {
				t.Fatalf("payload=%d: pipelined window %d acked %d, want %d (one-window lag)",
					payload, w, pipeAcks[w], wsize)
			}
		}
		if pipeAcks[windows] != wsize {
			t.Fatalf("payload=%d: pipelined Flush acked %d, want %d", payload, pipeAcks[windows], wsize)
		}
	}
}

// TestAckAsyncDeferredFence pins the ack half of the pipeline: an
// AckAsync issues the same NTStores as Ack but zero fences; the
// covering fence is paid exactly once by the next acknowledgment-path
// op (or DrainAcks), so poll+ack parity holds at two fences either
// way, and a drain with nothing owed costs nothing.
func TestAckAsyncDeferredFence(t *testing.T) {
	hs, b := newAckedBroker(t, 1, 2, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 1, LeaseConfig{TTL: 100, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(0)
	const n = 16
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}

	if ms := c.PollBatch(1, n); len(ms) != n {
		t.Fatalf("delivered %d, want %d", len(ms), n)
	}
	before := hs.TotalStats()
	got, err := c.AckAsync(1)
	if err != nil || got != n {
		t.Fatalf("AckAsync = %d, %v; want %d, nil", got, err, n)
	}
	d := hs.TotalStats().Sub(before)
	if d.Fences != 0 {
		t.Fatalf("AckAsync paid %d fences, want 0 (deferred)", d.Fences)
	}
	if d.NTStores != 4 {
		t.Fatalf("AckAsync issued %d NTStores, want 4 (one ack line per shard)", d.NTStores)
	}

	before = hs.TotalStats()
	c.DrainAcks(1)
	d = hs.TotalStats().Sub(before)
	if d.Fences != 1 {
		t.Fatalf("DrainAcks paid %d fences, want 1", d.Fences)
	}
	before = hs.TotalStats()
	c.DrainAcks(1)
	if d = hs.TotalStats().Sub(before); d.Fences != 0 {
		t.Fatalf("second DrainAcks paid %d fences, want 0", d.Fences)
	}
	// The acks are durable: nothing is redelivered after adoption-style
	// re-reads.
	if ms := c.PollBatch(1, n); len(ms) != 0 {
		t.Fatalf("acked messages reappeared: %d", len(ms))
	}

	// Parity including the implicit drain: a second window acked via
	// AckAsync whose fence rides into the next poll costs the same two
	// fences total as poll+Ack.
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	before = hs.TotalStats()
	if ms := c.PollBatch(1, n); len(ms) != n {
		t.Fatal("second window short")
	}
	if _, err := c.AckAsync(1); err != nil {
		t.Fatal(err)
	}
	ms := c.PollBatch(1, n) // pays the deferred fence, finds nothing
	d = hs.TotalStats().Sub(before)
	if len(ms) != 0 {
		t.Fatalf("unexpected redelivery: %d", len(ms))
	}
	if d.Fences != 2 {
		t.Fatalf("poll + AckAsync + draining poll = %d fences, want 2 (lease + deferred ack)", d.Fences)
	}
}

// --- Subscribe quiescence detection --------------------------------

// TestSubscribeNotQuiescent pins the typed refusal: a plain-group
// Subscribe that observes a member inside Poll/PollBatch returns
// ErrNotQuiescent instead of racing, and proceeds once the member
// quiesces. The in-flight poll is simulated directly through the
// counter the poll paths maintain, which makes the race window
// deterministic.
func TestSubscribeNotQuiescent(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: twoTopics(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGroup([]string{"events"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Consumer(1)
	c.polling.Add(1) // a PollBatch in flight on member 1
	if err := g.Subscribe(0, "jobs"); !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("Subscribe during poll = %v, want ErrNotQuiescent", err)
	}
	c.polling.Add(-1)
	if err := g.Subscribe(0, "jobs"); err != nil {
		t.Fatalf("Subscribe on quiescent group = %v", err)
	}
	// The subscription took effect: jobs' shards are dealt out.
	owned := 0
	for i := 0; i < g.Size(); i++ {
		owned += len(g.Consumer(i).Assigned())
	}
	if owned != 8 {
		t.Fatalf("group owns %d shards after Subscribe, want 8", owned)
	}
	// Acked groups are exempt: their Subscribe locks members.
	hs2, b2 := newAckedBroker(t, 1, 2, pmem.ModePerf)
	_ = hs2
	g2, err := b2.NewGroupAcked([]string{"events"}, 1, LeaseConfig{TTL: 100, Now: (&logicalClock{}).Now})
	if err != nil {
		t.Fatal(err)
	}
	g2.Consumer(0).polling.Add(1)
	if err := g2.Subscribe(0, "jobs"); err != nil {
		t.Fatalf("acked Subscribe = %v, want nil (quiescence not required)", err)
	}
}

// --- Event-loop poller ---------------------------------------------

// TestPollerDrainsBacklogAndIdlesFree drives a Poller over a plain
// group: a published backlog is delivered exactly once through the
// handler, Stop's final sweep strands nothing, and an idle loop parks
// on its backoff timer issuing zero persists.
func TestPollerDrainsBacklogAndIdlesFree(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	b, err := New(h, Config{Topics: []TopicConfig{{Name: "events", Shards: 4}}, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	g, err := b.NewGroup([]string{"events"}, 1)
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[uint64]int, n)
	var delivered int
	p := NewPoller(PollerConfig{
		Consumer: g.Consumer(0),
		Tid:      1,
		Policy:   batch.NewAIMD(1, 32),
		Handler: func(ms []Message) {
			for _, m := range ms {
				seen[AsU64(m.Payload)]++
				delivered++
			}
		},
		MinBackoff: 100 * time.Microsecond,
		MaxBackoff: time.Millisecond,
	})
	go p.Run()
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Delivered < n {
		if time.Now().After(deadline) {
			t.Fatalf("poller stuck at %d/%d", p.Stats().Delivered, n)
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if delivered != n || len(seen) != n {
		t.Fatalf("handler saw %d deliveries of %d ids, want %d of %d", delivered, len(seen), n, n)
	}
	for id, k := range seen {
		if k != 1 {
			t.Fatalf("message %d delivered %d times", id, k)
		}
	}

	// Idle loop: a fresh poller over the drained group sleeps with
	// exponential backoff and issues no persist instructions at all.
	before := h.TotalStats()
	p2 := NewPoller(PollerConfig{
		Consumer:   g.Consumer(0),
		Tid:        1,
		Handler:    func([]Message) {},
		MinBackoff: 50 * time.Microsecond,
		MaxBackoff: 500 * time.Microsecond,
	})
	go p2.Run()
	time.Sleep(20 * time.Millisecond)
	p2.Stop()
	d := h.TotalStats().Sub(before)
	if d.Fences != 0 || d.Flushes != 0 || d.NTStores != 0 {
		t.Fatalf("idle poller = %d fences, %d flushes, %d NTStores; want 0/0/0",
			d.Fences, d.Flushes, d.NTStores)
	}
	st := p2.Stats()
	if st.IdleSleeps == 0 {
		t.Fatalf("idle poller never parked: %+v", st)
	}
	// Backoff means the idle loop polls orders of magnitude less than a
	// spinning consumer would in 20ms.
	if st.Polls > 500 {
		t.Fatalf("idle poller issued %d polls in 20ms — backoff not engaging", st.Polls)
	}
}

// TestPollerAckedPipeline runs the full tail-latency stack on an acked
// group: Poller + AIMD drains + AckAsync. Everything published is
// delivered and durably acknowledged by Stop, with the deferred fences
// all paid (no ack state stranded).
func TestPollerAckedPipeline(t *testing.T) {
	hs, b := newAckedBroker(t, 2, 3, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 1, LeaseConfig{TTL: 1 << 40, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	p := NewPoller(PollerConfig{
		Consumer: g.Consumer(0),
		Tid:      1,
		Policy:   batch.NewAIMD(1, 16),
		Handler:  func(ms []Message) { delivered += len(ms) },
		Ack:      true,
		Pipeline: true,
	})
	go p.Run()
	const n = 300
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
		if i%32 == 0 {
			p.Wake()
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Delivered < n {
		if time.Now().After(deadline) {
			t.Fatalf("poller stuck at %d/%d", p.Stats().Delivered, n)
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if delivered != n {
		t.Fatalf("handler saw %d, want %d", delivered, n)
	}
	if st := p.Stats(); st.AckErrors != 0 {
		t.Fatalf("ack errors: %+v", st)
	}
	// All acks durable: the frontier covers everything; nothing is
	// redelivered.
	_ = hs
	if ms := g.Consumer(0).PollBatch(1, n); len(ms) != 0 {
		t.Fatalf("%d unacked messages after Stop, want 0", len(ms))
	}
}
