package broker

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

// TestLeasePackUnpackRoundTrip: packLease/unpackLease are inverse for
// every representable lease (property-based, mirroring the catalog's
// encoding discipline).
func TestLeasePackUnpackRoundTrip(t *testing.T) {
	prop := func(active bool, owner uint16, lo, hi, deadline, seq, epoch uint64) bool {
		in := Lease{
			Active: active, Owner: int(owner),
			Lo: lo, Hi: hi, Deadline: deadline, Seq: seq, Epoch: epoch,
		}
		out, ok := unpackLease(packLease(in))
		return ok && out == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseEpochCompat: lease lines written before the epoch word
// existed (v<=4 regions packed w5 as zero) must decode as epoch 0
// without any format bump — the checksum always covered the spare
// word, so a pre-epoch line is bit-identical to a current line with
// Epoch 0.
func TestLeaseEpochCompat(t *testing.T) {
	prop := func(active bool, owner uint16, lo, hi, deadline, seq uint64) bool {
		// A v<=4 writer packed exactly these words with w5 = 0.
		legacy := packLease(Lease{
			Active: active, Owner: int(owner),
			Lo: lo, Hi: hi, Deadline: deadline, Seq: seq,
		})
		if legacy[5] != 0 {
			return false
		}
		out, ok := unpackLease(legacy)
		return ok && out.Epoch == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// And the all-zero virgin line stays a valid empty epoch-0 lease.
	if l, ok := unpackLease([8]uint64{}); !ok || l.Epoch != 0 || l != (Lease{}) {
		t.Fatalf("virgin line decoded as (%+v, %v), want empty epoch-0 lease", l, ok)
	}
}

// TestLeaseLineTornWriteDetected: flipping any single word of a packed
// lease line — the shape of a torn or corrupted line — must fail the
// checksum, and an all-zero (virgin) line must decode as the valid
// empty lease.
func TestLeaseLineTornWriteDetected(t *testing.T) {
	if l, ok := unpackLease([8]uint64{}); !ok || l != (Lease{}) {
		t.Fatalf("virgin line decoded as (%+v, %v), want empty lease", l, ok)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		w := packLease(Lease{
			Active: true, Owner: rng.Intn(64),
			Lo: rng.Uint64() >> 1, Hi: rng.Uint64() >> 1,
			Deadline: rng.Uint64(), Seq: rng.Uint64(),
			// Nonzero epochs must not weaken torn-line detection: the
			// checksum covers w5 like every other payload word.
			Epoch: rng.Uint64(),
		})
		i := rng.Intn(8)
		delta := rng.Uint64() | 1
		w[i] ^= delta
		if _, ok := unpackLease(w); ok {
			// Make sure this is not the (astronomically unlikely, but
			// then deterministic) case of a genuine checksum collision.
			t.Fatalf("trial %d: corrupting word %d by %#x went undetected", trial, i, delta)
		}
	}
}

// TestLeaseRegionErrors: a catalog whose lease region is missing,
// foreign or truncated must fail RecoverSet with an error — never a
// panic, never a silent mis-scan of another group's leases.
func TestLeaseRegionErrors(t *testing.T) {
	newCrashed := func(t *testing.T) *pmem.Heap {
		t.Helper()
		h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 4})
		b, err := New(h, Config{Topics: twoAckedTopics(), Threads: 2, AckGroups: 2})
		if err != nil {
			t.Fatal(err)
		}
		b.Topic("events").Publish(0, U64(1))
		h.CrashNow()
		h.FinalizeCrash(rand.New(rand.NewSource(51)))
		h.Restart()
		return h
	}
	// The lease anchors sit in the slots after the 8 shard windows:
	// slots 1..64 hold the shards, 65 and 66 the two regions.
	leaseSlot := 1 + 8*slotsPerShard
	expectErr := func(t *testing.T, h *pmem.Heap, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Recover panicked: %v", what, r)
			}
		}()
		if _, err := Recover(h, 2); err == nil {
			t.Fatalf("%s: Recover succeeded", what)
		}
	}

	t.Run("intact baseline", func(t *testing.T) {
		h := newCrashed(t)
		r, err := Recover(h, 2)
		if err != nil {
			t.Fatal(err)
		}
		if r.AckGroups() != 2 {
			t.Fatalf("recovered %d lease regions, want 2", r.AckGroups())
		}
		if p, ok := r.Topic("events").DequeueShard(0, 0); !ok || AsU64(p) != 1 {
			t.Fatalf("recovered event = %v,%v", p, ok)
		}
	})
	t.Run("missing region", func(t *testing.T) {
		h := newCrashed(t)
		h.Store(0, h.RootAddr(leaseSlot), 0) // blank anchor
		expectErr(t, h, "missing region")
	})
	t.Run("foreign magic", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(leaseSlot)))
		h.Store(0, reg, 0xfeedface)
		expectErr(t, h, "foreign magic")
	})
	t.Run("wrong group index", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(leaseSlot)))
		h.Store(0, reg+16, 9) // region claims to belong to group 9
		expectErr(t, h, "wrong group index")
	})
	t.Run("wrong shard total", func(t *testing.T) {
		h := newCrashed(t)
		reg := pmem.Addr(h.Load(0, h.RootAddr(leaseSlot)))
		h.Store(0, reg+8, 3)
		expectErr(t, h, "wrong shard total")
	})
	t.Run("region truncated at heap end", func(t *testing.T) {
		h := newCrashed(t)
		// Re-anchor the region to the last line: the body would run off
		// the end of the heap; the bounds-checked reader must error.
		tail := pmem.Addr(h.Bytes()) - pmem.CacheLineBytes
		h.Store(0, tail, leaseMagic)
		h.Store(0, tail+8, 8) // shardTotal
		h.Store(0, tail+16, 0)
		h.Store(0, h.RootAddr(leaseSlot), uint64(tail))
		expectErr(t, h, "truncated region")
	})
	t.Run("anchor near uint64 wraparound", func(t *testing.T) {
		h := newCrashed(t)
		h.Store(0, h.RootAddr(leaseSlot), ^uint64(0)-7)
		expectErr(t, h, "wraparound anchor")
	})
	t.Run("absurd ack-group count", func(t *testing.T) {
		h := newCrashed(t)
		cat := pmem.Addr(h.Load(0, h.RootAddr(slotAnchor)))
		h.Store(0, cat+48, 1<<40)
		expectErr(t, h, "absurd ack-group count")
	})
}

// TestTornLeaseLineToleratedAtBind: a lease line torn by a crash
// mid-write must not poison the group binding — it is surfaced as a
// recovered (zero) lease and cleared, because the acked-index lines,
// not the leases, decide what recovery redelivers.
func TestTornLeaseLineToleratedAtBind(t *testing.T) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 2})
	b, err := New(h, Config{Topics: twoAckedTopics(), Threads: 2, AckGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 16; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	g.Consumer(0).PollBatch(1, 8) // in-flight window with live leases
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(52)))
	h.Restart()

	r, err := Recover(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the first shard's lease line by hand: corrupt one word.
	leaseSlot := 1 + 8*slotsPerShard
	reg := pmem.Addr(h.Load(0, h.RootAddr(leaseSlot)))
	h.Store(0, reg+pmem.CacheLineBytes+24, 0xdeadbeef)
	g2, err := r.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	// The torn line surfaces as a recovered zero lease, and the full
	// backlog (nothing was ever acked) drains exactly once.
	if len(g2.RecoveredLeases()) == 0 {
		t.Fatal("torn lease line not surfaced at bind")
	}
	got := map[uint64]int{}
	c := g2.Consumer(0)
	for {
		ms := c.PollBatch(1, 8)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			got[AsU64(m.Payload[:8])]++
		}
		c.Ack(1)
	}
	if len(got) != 16 {
		t.Fatalf("drained %d distinct messages, want 16", len(got))
	}
	for id, n := range got {
		if n != 1 {
			t.Fatalf("message %d delivered %d times", id, n)
		}
	}
}
