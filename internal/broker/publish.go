package broker

import (
	"repro/internal/batch"
	"repro/internal/obs"
)

// PublisherConfig parameterizes a Publisher.
type PublisherConfig struct {
	// Policy sizes the flush windows (nil: Fixed{1}, i.e. unbatched).
	// The policy instance becomes owned by the Publisher.
	Policy batch.Policy
	// Pipeline defers each window's blocking fence into the next flush:
	// window N's SFENCE is issued at the start of the flush that writes
	// window N+1 (or by Flush), so the write-pending queue drains in the
	// background while the producer keeps working. Fence *count* is
	// unchanged — one per window — only the overlap moves.
	Pipeline bool
	// MaxDelayNs bounds how long the oldest buffered message may wait
	// for its window to fill: a Publish arriving later than this after
	// the buffer's first message forces a flush regardless of size.
	// This is the arrival-rate half of adaptivity — at low rates the
	// deadline fires before the window fills, the policy observes the
	// short window and shrinks, and latency converges to per-message
	// publishes. Zero disables the deadline (size-triggered only).
	MaxDelayNs int64
	// Now is the clock for MaxDelayNs, in nanoseconds on any monotonic
	// scale. Nil: the package monotonic clock. Tests inject logical
	// clocks to pin the regimes deterministically.
	Now func() int64
}

// Publisher is the adaptive, optionally pipelined publish path of one
// topic: it buffers payloads into policy-sized windows and publishes
// each window as one batch (one fence). A Publisher is owned by a
// single producer goroutine with a fixed tid, like a Consumer.
//
// Durability contract: the int returned by Publish/Flush is the number
// of buffered messages that became *durably acknowledged* during that
// call, in publish order. Without pipelining a window is acknowledged
// by the flush that writes it; with Pipeline the acknowledgment trails
// by one window (issue window N, fence — and thereby acknowledge —
// window N-1). Buffered payload slices must not be mutated until
// acknowledged. A crash acknowledges nothing beyond the last fence:
// issued-but-unfenced windows are dropped or partially recovered as
// unacked messages, exactly as for a crash inside PublishBatch.
//
// A Publisher cannot surface ErrTopicDeleted through its count
// returns, so retiring the topic under a live Publisher is a caller
// bug: quiesce (Flush and stop) publishers before DeleteTopic, or a
// flush whose window lands after the delete panics instead of racing
// the reclaimed shard windows.
type Publisher struct {
	t        *Topic
	tid      int
	pol      batch.Policy
	pipeline bool
	maxDelay int64
	now      func() int64

	buf     [][]byte
	bufAt   int64 // clock reading when buf went from empty to non-empty
	lastPub int64 // clock reading of the previous Publish (0 before the first)
	slow    bool  // an arrival gap in the current window exceeded MaxDelayNs

	// Pipeline state: the window issued but not yet fenced.
	pending  *shard
	npending int
}

// NewPublisher returns a publisher for the topic, bound to the
// producer's tid. Panics on a delay/priority topic: the Publisher's
// count-based acknowledgment contract has no error slot, so binding
// one to a heap topic is a construction-time programmer error (heap
// topics publish through PublishAt/PublishPriority).
func (t *Topic) NewPublisher(tid int, cfg PublisherConfig) *Publisher {
	if t.cfg.Kind != KindFIFO {
		panic(t.kindErr("NewPublisher", KindFIFO).Error())
	}
	pol := cfg.Policy
	if pol == nil {
		pol = batch.Fixed{N: 1}
	}
	now := cfg.Now
	if now == nil {
		now = obs.Now
	}
	return &Publisher{
		t: t, tid: tid, pol: pol,
		pipeline: cfg.Pipeline, maxDelay: cfg.MaxDelayNs, now: now,
	}
}

// Buffered reports the messages waiting for their window to fill.
func (p *Publisher) Buffered() int { return len(p.buf) }

// Pending reports the messages issued but awaiting their covering
// fence (always 0 without Pipeline).
func (p *Publisher) Pending() int { return p.npending }

// Publish buffers payload and flushes the window when the policy size
// is reached or the oldest buffered message has waited past
// MaxDelayNs. Returns the number of messages durably acknowledged by
// this call (see the type comment for the pipelined lag).
//
// The policy's grow signal is gated on arrival rate, not just fill: a
// window only counts as "full" evidence of load when every arrival gap
// in it (including the gap before its first message) stayed under
// MaxDelayNs. Without the gate a size-1 window would always look full
// and an idle producer would ratchet its own batch size up — the exact
// inversion of what the tail needs.
func (p *Publisher) Publish(payload []byte) int {
	p.t.checkPayload(payload)
	now := p.now()
	// The very first publish counts as slow too: assume idle until the
	// arrival rate proves otherwise, matching AIMD's start at Min.
	if p.maxDelay > 0 && (p.lastPub == 0 || now-p.lastPub > p.maxDelay) {
		p.slow = true
	}
	p.lastPub = now
	if len(p.buf) == 0 {
		p.bufAt = now
	}
	p.buf = append(p.buf, payload)
	if len(p.buf) >= p.pol.Size() ||
		(p.maxDelay > 0 && now-p.bufAt >= p.maxDelay) {
		return p.flush()
	}
	return 0
}

// Flush forces the buffered window out and drains the pipeline: when
// it returns, every message ever passed to Publish is durably
// acknowledged. Returns the number acknowledged by this call.
func (p *Publisher) Flush() int {
	acked := 0
	if len(p.buf) > 0 {
		acked = p.flush()
	}
	acked += p.drain()
	return acked
}

// flush publishes the buffered window to the next shard round-robin.
// One fence: the pending window's deferred one when pipelining (the
// new window then becomes pending), the new window's own otherwise.
func (p *Publisher) flush() int {
	t := p.t
	if !t.enter() {
		panic("broker: Publisher flush on deleted topic " + t.cfg.Name +
			" (quiesce publishers before DeleteTopic)")
	}
	defer t.exit()
	if p.slow {
		p.pol.Observe(0) // slow arrivals: shrink toward per-message windows
	} else {
		p.pol.Observe(len(p.buf))
	}
	p.slow = false
	si := int(t.rr.Add(1)-1) % len(t.shards)
	s := t.shards[si]
	o := t.b.obs
	var start int64
	if o != nil {
		start = obs.Now()
	}
	acked := 0
	if p.pipeline {
		acked = p.drain()
		s.publishBatchUnfenced(p.tid, p.buf)
		p.pending, p.npending = s, len(p.buf)
	} else {
		s.publishBatch(p.tid, p.buf)
		acked = len(p.buf)
	}
	if o != nil {
		o.Lat(p.tid, obs.OpPublish, start)
		t.ostats.Published(si, len(p.buf))
		o.Event(p.tid, obs.OpPublish, t.ostats, si)
	}
	p.buf = p.buf[:0]
	return acked
}

// drain pays the pending window's deferred fence, acknowledging it.
func (p *Publisher) drain() int {
	if p.pending == nil {
		return 0
	}
	p.pending.h.Fence(p.tid)
	n := p.npending
	p.pending, p.npending = nil, 0
	return n
}
