package broker

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pmem"
)

// TestReassignValidation pins the typed argument errors: out-of-range
// or duplicate members, self-transfer, and takeover from a member
// with live leases without force.
func TestReassignValidation(t *testing.T) {
	_, b := newAckedBroker(t, 1, 3, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 3, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := func(what string, want error, got error) {
		t.Helper()
		if !errors.Is(got, want) {
			t.Errorf("%s: got %v, want %v", what, got, want)
		}
	}
	_, err = g.Reassign(0, 7, []int{0}, false)
	wantErr("from out of range", ErrBadMember, err)
	_, err = g.Reassign(0, -1, []int{0}, false)
	wantErr("negative from", ErrBadMember, err)
	_, err = g.Reassign(0, 1, nil, false)
	wantErr("no targets", ErrBadMember, err)
	_, err = g.Reassign(0, 1, []int{3}, false)
	wantErr("target out of range", ErrBadMember, err)
	_, err = g.Reassign(0, 1, []int{0, 1}, false)
	wantErr("from among targets", ErrSelfTransfer, err)
	_, err = g.Reassign(0, 1, []int{0, 2, 0}, false)
	wantErr("duplicate target", ErrBadMember, err)
	_, err = g.Adopt(0, 1, 1)
	wantErr("Adopt onto itself", ErrSelfTransfer, err)

	// A live (unexpired) lease refuses takeover without force.
	for i := uint64(0); i < 16; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	victim := g.Consumer(1)
	if ms := victim.PollBatch(2, 4); len(ms) == 0 {
		t.Fatal("victim polled nothing")
	}
	_, err = g.Reassign(0, 1, []int{0, 2}, false)
	wantErr("unexpired lease without force", ErrUnexpiredLease, err)
	_, err = g.Adopt(0, 1, 0)
	wantErr("Adopt with unexpired lease", ErrUnexpiredLease, err)
	// force takes the shards regardless; the victim's next ack is
	// refused with the typed fencing error.
	moved, err := g.Reassign(0, 1, []int{0, 2}, true)
	if err != nil {
		t.Fatalf("forced Reassign: %v", err)
	}
	if moved == 0 {
		t.Fatal("forced Reassign moved no redeliveries despite an in-flight window")
	}
	if len(victim.Assigned()) != 0 {
		t.Fatalf("victim still owns %d shards after forced Reassign", len(victim.Assigned()))
	}
	if _, err := victim.Ack(2); !errors.Is(err, ErrFenced) {
		t.Fatalf("displaced member's Ack returned %v, want ErrFenced", err)
	}
	if _, err := victim.Ack(2); err != nil {
		t.Fatalf("Ack after the fencing record was consumed: %v", err)
	}

	// Membership ops require an acked group.
	pg, err := b.NewGroup([]string{"jobs"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Reassign(0, 0, []int{1}, false); err == nil {
		t.Error("Reassign on a plain group succeeded")
	}
	if _, err := pg.Scan(0, 0); err == nil {
		t.Error("Scan on a plain group succeeded")
	}
	if _, _, err := pg.Consumer(0).Steal(0); err == nil {
		t.Error("Steal on a plain group succeeded")
	}
	if _, err := pg.StartJanitor(0, time.Millisecond); err == nil {
		t.Error("StartJanitor on a plain group succeeded")
	}
}

// TestScanFencesAndSplits: the expiry scanner detects the one member
// whose deadlines all passed, deals its shards across both survivors
// least-loaded-first, redelivers exactly the unacked suffix, and the
// resurfacing member's stale ack is refused. Members idle behind
// fully acked (moot) leases are never expired.
func TestScanFencesAndSplits(t *testing.T) {
	_, b := newAckedBroker(t, 1, 4, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, 3, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin deal over 8 shards: member 0 owns 3, member 1 owns 3,
	// member 2 owns 2.
	const n = 32
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
		b.Topic("jobs").Publish(0, blobPayload(1000+i))
	}
	c0, victim, c2 := g.Consumer(0), g.Consumer(1), g.Consumer(2)
	healthyAcked := map[uint64]bool{}
	for _, m := range c0.PollBatch(1, 8) {
		healthyAcked[AsU64(m.Payload[:8])] = true
	}
	c0.Ack(1)
	for _, m := range c2.PollBatch(3, 8) {
		healthyAcked[AsU64(m.Payload[:8])] = true
	}
	c2.Ack(3)
	inflight := map[uint64]bool{}
	for _, m := range victim.PollBatch(2, 8) {
		inflight[AsU64(m.Payload[:8])] = true
	}
	if len(inflight) == 0 {
		t.Fatal("victim holds no window")
	}

	// Nothing expired yet: the scan is a no-op.
	rep, err := g.Scan(0, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expired) != 0 || rep.Shards != 0 {
		t.Fatalf("scan before expiry fenced %v (%d shards)", rep.Expired, rep.Shards)
	}

	// Past every deadline, only the member with unacked work is dead:
	// members 0 and 2 sit behind moot (fully acked) leases.
	clk.Advance(100)
	rep, err = g.Scan(0, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expired) != 1 || rep.Expired[0] != 1 {
		t.Fatalf("scan expired %v, want [1]", rep.Expired)
	}
	if rep.Shards != 3 {
		t.Fatalf("scan reassigned %d shards, want the victim's 3", rep.Shards)
	}
	if rep.Moved != len(inflight) {
		t.Fatalf("scan queued %d redeliveries, want the unacked %d", rep.Moved, len(inflight))
	}
	// Least-loaded split: 3 and 2 owned shards plus 3 dealt = 4 and 4.
	if a, b := len(c0.Assigned()), len(c2.Assigned()); a != 4 || b != 4 {
		t.Fatalf("survivors own %d and %d shards, want a 4/4 split", a, b)
	}
	if len(victim.Assigned()) != 0 {
		t.Fatalf("fenced member still owns %d shards", len(victim.Assigned()))
	}
	if _, err := victim.Ack(2); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale ack returned %v, want ErrFenced", err)
	}

	// Exactly-once: the in-flight window reappears exactly once across
	// the survivors, acked messages never do, and the backlog drains.
	seen := map[uint64]int{}
	for {
		drained := 0
		for i, c := range []*Consumer{c0, c2} {
			tid := []int{1, 3}[i]
			ms := c.PollBatch(tid, 8)
			for _, m := range ms {
				seen[AsU64(m.Payload[:8])]++
			}
			c.Ack(tid)
			drained += len(ms)
		}
		if drained == 0 {
			break
		}
	}
	for id := range inflight {
		if seen[id] != 1 {
			t.Fatalf("in-flight message %d redelivered %d times, want 1", id, seen[id])
		}
	}
	for id := range healthyAcked {
		if seen[id] != 0 {
			t.Fatalf("acked message %d reappeared after the scan", id)
		}
	}
	if got := len(seen) + len(healthyAcked); got != 2*n {
		t.Fatalf("processed %d distinct messages, want %d", got, 2*n)
	}
}

// TestMembershipFenceAccounting pins the protocol's persist costs on
// one domain: a scan with no expiries and a heartbeat at a durable
// deadline are free; fencing a dead member costs one fence plus one
// store+flush per moved shard holding work; a stale Renew is refused
// without touching NVRAM; a steal is one line and one fence.
func TestMembershipFenceAccounting(t *testing.T) {
	hs, b := newAckedBroker(t, 1, 3, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 2, LeaseConfig{TTL: 100, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := g.Consumer(0), g.Consumer(1)
	const n = 16 // 4 per shard; members own 2 shards each
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	if ms := c1.PollBatch(2, 8); len(ms) != 8 {
		t.Fatalf("member 1 polled %d, want its 2 shards' 8", len(ms))
	}
	c0.PollBatch(1, 8)
	c0.Ack(1) // member 0 idles behind moot leases

	// Scan with no expiries: zero persist instructions.
	before := hs.TotalStats()
	rep, err := g.Scan(0, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	d := hs.TotalStats().Sub(before)
	if len(rep.Expired) != 0 {
		t.Fatalf("scan expired %v, want none", rep.Expired)
	}
	if d.Fences != 0 || d.NTStores != 0 || d.Flushes != 0 {
		t.Fatalf("no-expiry scan = %d fences, %d NTStores, %d flushes; want 0/0/0", d.Fences, d.NTStores, d.Flushes)
	}

	// Heartbeat at the durable deadline rides the renewal elision.
	before = hs.TotalStats()
	if err := c1.Heartbeat(2); err != nil {
		t.Fatal(err)
	}
	d = hs.TotalStats().Sub(before)
	if d.Fences != 0 || d.Flushes != 0 {
		t.Fatalf("heartbeat at a durable deadline = %d fences, %d flushes; want 0/0", d.Fences, d.Flushes)
	}
	// Once the clock moved, the heartbeat rewrites its lines under one
	// fence — the fresh-epoch renewal keeps its pinned cost.
	clk.Advance(50)
	before = hs.TotalStats()
	if err := c1.Heartbeat(2); err != nil {
		t.Fatal(err)
	}
	d = hs.TotalStats().Sub(before)
	if d.Fences != 1 || d.Flushes != 2 {
		t.Fatalf("deadline-moving heartbeat = %d fences, %d flushes; want 1 fence, 2 lease lines", d.Fences, d.Flushes)
	}

	// Member 1 goes silent; fencing it moves 2 shards with work: one
	// store+flush per moved shard, zero NTStores, one fence.
	clk.Advance(500)
	before = hs.TotalStats()
	rep, err = g.Scan(0, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	d = hs.TotalStats().Sub(before)
	if len(rep.Expired) != 1 || rep.Expired[0] != 1 || rep.Shards != 2 {
		t.Fatalf("scan = expired %v, %d shards; want member 1's 2 shards", rep.Expired, rep.Shards)
	}
	if d.Fences != 1 || d.NTStores != 0 || d.Flushes != 2 {
		t.Fatalf("fencing takeover = %d fences, %d NTStores, %d flushes; want 1/0/2", d.Fences, d.NTStores, d.Flushes)
	}

	// The stale member's Renew is refused before any persist executes.
	before = hs.TotalStats()
	if err := c1.Renew(2, clk.Now()+100); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale Renew returned %v, want ErrFenced", err)
	}
	d = hs.TotalStats().Sub(before)
	if d.Fences != 0 || d.NTStores != 0 || d.Flushes != 0 {
		t.Fatalf("refused stale Renew = %d fences, %d NTStores, %d flushes; want 0/0/0", d.Fences, d.NTStores, d.Flushes)
	}

	// Work-stealing one expired shard: one lease line, one fence.
	c0.PollBatch(1, 4) // member 0 takes a window on one shard...
	clk.Advance(500)   // ...and goes silent past its deadline
	before = hs.TotalStats()
	stole, moved, err := c1.Steal(2)
	if err != nil {
		t.Fatal(err)
	}
	if !stole || moved == 0 {
		t.Fatalf("Steal = (%v, %d), want one expired shard with work", stole, moved)
	}
	d = hs.TotalStats().Sub(before)
	if d.Fences != 1 || d.NTStores != 0 || d.Flushes != 1 {
		t.Fatalf("steal = %d fences, %d NTStores, %d flushes; want 1/0/1", d.Fences, d.NTStores, d.Flushes)
	}
	if _, err := c0.Ack(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("stolen-from member's Ack returned %v, want ErrFenced", err)
	}
}

// TestStealDrainsExpiredShards: an idle member steals a silent
// member's expired shards one per call until none carry work, and the
// stolen windows drain exactly once.
func TestStealDrainsExpiredShards(t *testing.T) {
	_, b := newAckedBroker(t, 1, 3, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 2, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	c0, c1 := g.Consumer(0), g.Consumer(1)
	inflight := map[uint64]bool{}
	for _, m := range c0.PollBatch(1, 8) {
		inflight[AsU64(m.Payload[:8])] = true
	}
	c1.PollBatch(2, 8)
	c1.Ack(2)

	if stole, _, err := c1.Steal(2); err != nil || stole {
		t.Fatalf("Steal with nothing expired = (%v, %v), want (false, nil)", stole, err)
	}
	clk.Advance(100)
	steals, stolenMoved := 0, 0
	for {
		stole, moved, err := c1.Steal(2)
		if err != nil {
			t.Fatal(err)
		}
		if !stole {
			break
		}
		steals++
		stolenMoved += moved
	}
	if steals != 2 {
		t.Fatalf("stole %d shards, want the silent member's 2 with work", steals)
	}
	if stolenMoved != len(inflight) {
		t.Fatalf("steals moved %d redeliveries, want %d", stolenMoved, len(inflight))
	}
	if _, err := c0.Ack(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("stolen-from member's Ack returned %v, want ErrFenced", err)
	}

	seen := map[uint64]int{}
	for {
		ms := c1.PollBatch(2, 8)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			seen[AsU64(m.Payload[:8])]++
		}
		c1.Ack(2)
	}
	for id := range inflight {
		if seen[id] != 1 {
			t.Fatalf("stolen message %d delivered %d times, want 1", id, seen[id])
		}
	}
}

// TestJanitorFencesSilentMember: the background janitor notices an
// expired member without any explicit Scan call and hands its shards
// to the survivor.
func TestJanitorFencesSilentMember(t *testing.T) {
	_, b := newAckedBroker(t, 1, 4, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 2, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.StartJanitor(0, 0); err == nil {
		t.Fatal("StartJanitor accepted a non-positive period")
	}
	const n = 16
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	victim := g.Consumer(1)
	if ms := victim.PollBatch(2, 8); len(ms) == 0 {
		t.Fatal("victim polled nothing")
	}
	j, err := g.StartJanitor(3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	clk.Advance(100)
	deadline := time.Now().Add(5 * time.Second)
	for len(victim.Assigned()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("janitor never fenced the silent member")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := victim.Ack(2); !errors.Is(err, ErrFenced) {
		t.Fatalf("janitor-fenced member's Ack returned %v, want ErrFenced", err)
	}
}

// TestEpochDurability: takeovers bump the epoch in the durable lease
// line, a recovered binding re-seeds its authority from it (so
// post-crash epochs never fall behind a pre-crash owner), and the
// next takeover keeps counting from there.
func TestEpochDurability(t *testing.T) {
	hs, b := newAckedBroker(t, 1, 3, pmem.ModeCrash)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 2, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := uint64(0); i < n; i++ {
		b.Topic("events").Publish(0, U64(i))
	}
	victim := g.Consumer(1)
	if ms := victim.PollBatch(2, 8); len(ms) != 8 {
		t.Fatal("victim holds no window")
	}
	clk.Advance(100)
	if _, err := g.Adopt(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	// The takeover bumped the victim's shards to epoch 1, durably.
	bumped := 0
	for global := 0; global < g.region.cap; global++ {
		if l, ok := g.region.readLeaseLine(global); ok && l.Epoch == 1 {
			bumped++
		}
	}
	if bumped != 2 {
		t.Fatalf("%d lease lines at epoch 1 after the takeover, want the victim's 2", bumped)
	}

	hs.CrashNow()
	hs.FinalizeCrash(rand.New(rand.NewSource(61)))
	hs.Restart()
	r, err := RecoverSet(hs, 3)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := r.NewGroupAcked([]string{"events"}, 2, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	// The recovered in-flight leases carry their epochs, and the new
	// binding's authority picks up where the crashed one stopped.
	maxEpoch := uint64(0)
	for _, rl := range g2.RecoveredLeases() {
		if rl.Lease.Epoch > maxEpoch {
			maxEpoch = rl.Lease.Epoch
		}
	}
	if maxEpoch != 1 {
		t.Fatalf("recovered leases carry max epoch %d, want 1", maxEpoch)
	}
	seeded := 0
	for _, e := range g2.epochs {
		if e == 1 {
			seeded++
		}
	}
	if seeded != 2 {
		t.Fatalf("%d shards re-seeded at epoch 1, want 2", seeded)
	}
	// The next takeover continues the count: epoch 2 lands durably.
	victim2 := g2.Consumer(1)
	if ms := victim2.PollBatch(1, 8); len(ms) == 0 {
		t.Fatal("post-crash victim polled nothing")
	}
	clk.Advance(100)
	if _, err := g2.Adopt(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	past := 0
	for global := 0; global < g2.region.cap; global++ {
		if l, ok := g2.region.readLeaseLine(global); ok && l.Epoch == 2 {
			past++
		}
	}
	if past == 0 {
		t.Fatal("no lease line reached epoch 2 after the post-crash takeover")
	}
}

// TestBrokerCrashFuzzMembershipChurn is the membership-churn fuzz
// tier: beside concurrent producers, members stall (keep running but
// stop acking and heartbeating), get fenced and split by mid-traffic
// scans or robbed shard-by-shard by work-stealing, resurface and have
// their stale acks refused; one member is killed outright and scanned
// away; then the whole heap set loses power mid-traffic. The audit
// demands exactly-once processing over every path and at least one
// provably refused stale-epoch ack per run.
func TestBrokerCrashFuzzMembershipChurn(t *testing.T) {
	seeds := []int64{71, 72, 73}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { membershipChurnRound(t, seed) })
	}
}

// stallCtl coordinates one stall cycle: the consumer closes stalled
// when it parks holding a delivered-but-unacked window, and unparks
// on resume.
type stallCtl struct {
	stalled chan struct{}
	resume  chan struct{}
}

func membershipChurnRound(t *testing.T, seed int64) {
	const (
		producers   = 2
		consumers   = 3
		perProducer = 2500
		window      = 8
		heaps       = 2
		threads     = producers + consumers + 1 // +1: the churn controller
		ctlTid      = producers + consumers
	)
	hs := pmem.NewSet(heaps, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := NewSet(hs, Config{Topics: twoAckedTopics(), Threads: threads, AckGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, consumers, LeaseConfig{TTL: 5, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}

	acked := make([][]uint64, producers)
	processed := make([]map[uint64]bool, consumers)
	var staleRefused atomic.Uint64

	// Deterministic prologue, before any goroutine starts: member 1
	// stalls on a window, the scanner fences it, and its resurfacing
	// ack is provably refused — the churn invariant holds whatever the
	// concurrent phase's timing does. The seed window is redelivered
	// to the survivors and audited like everything else.
	for m := uint64(1); m <= 16; m++ {
		id := uint64(1)<<32 | m
		b.Topic("events").Publish(0, U64(id))
		acked[0] = append(acked[0], id)
	}
	if ms := g.Consumer(1).PollBatch(producers+1, window); len(ms) == 0 {
		t.Fatal("prologue: member 1 polled nothing")
	}
	clk.Advance(1000)
	rep, err := g.Scan(ctlTid, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expired) != 1 || rep.Expired[0] != 1 {
		t.Fatalf("prologue scan expired %v, want [1]", rep.Expired)
	}
	if _, err := g.Consumer(1).Ack(producers + 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("prologue stale ack returned %v, want ErrFenced", err)
	}
	staleRefused.Add(1)

	// Now arm the mid-traffic power loss and let the storm loose.
	crashRng := rand.New(rand.NewSource(seed))
	hs.Heap(crashRng.Intn(heaps)).ScheduleCrashAtAccess((20_000 + int64(crashRng.Intn(80_000))) / int64(heaps))

	var killFlag [consumers]atomic.Bool
	var consumerDone [consumers]chan struct{}
	var ctlOf [consumers]atomic.Pointer[stallCtl]
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			start.Wait()
			rng := rand.New(rand.NewSource(seed*887 + int64(p)))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			for m := uint64(100); m < 100+perProducer; {
				runtime.Gosched()
				id := uint64(p+1)<<32 | m
				switch rng.Intn(3) {
				case 0:
					if pmem.Protect(func() { events.Publish(p, U64(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					m++
				default:
					var batch [][]byte
					var ids []uint64
					for len(batch) < 6 && m < 100+perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, blobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return
					}
					acked[p] = append(acked[p], ids...)
				}
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		processed[c] = map[uint64]bool{}
		consumerDone[c] = make(chan struct{})
		go func(c int) {
			defer wg.Done()
			defer close(consumerDone[c])
			start.Wait()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				runtime.Gosched()
				var ms []Message
				if pmem.Protect(func() { ms = cons.PollBatch(tid, window) }) {
					return
				}
				if len(ms) > 0 {
					idle = false
					for _, m := range ms {
						id := AsU64(m.Payload[:8])
						if m.Topic == "jobs" && !bytes.Equal(m.Payload, blobPayload(id)) {
							t.Errorf("consumer %d: payload of %#x corrupted", c, id)
						}
					}
					if ctl := ctlOf[c].Swap(nil); ctl != nil {
						// Stall: stop acking and heartbeating without
						// dying, window in flight, until resumed.
						close(ctl.stalled)
						<-ctl.resume
					}
					if killFlag[c].Load() {
						return
					}
					var aerr error
					if pmem.Protect(func() { _, aerr = cons.Ack(tid) }) {
						return
					}
					if errors.Is(aerr, ErrFenced) {
						// The window was taken while we were silent; it is
						// someone else's now. Record nothing.
						staleRefused.Add(1)
						continue
					}
					for _, m := range ms {
						processed[c][AsU64(m.Payload[:8])] = true
					}
					continue
				}
				// Idle members work-steal expired shards one at a time.
				var stole bool
				if pmem.Protect(func() { stole, _, _ = cons.Steal(tid) }) {
					return
				}
				if stole {
					continue
				}
				select {
				case <-done:
					if killFlag[c].Load() {
						return
					}
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}

	// The churn controller: stall-and-scan member 1, stall-and-steal
	// member 2, then kill member 1 outright and scan its corpse away.
	wg.Add(1)
	go func() {
		defer wg.Done()
		start.Wait()
		stallCycle := func(victim int, steal bool) {
			ctl := &stallCtl{stalled: make(chan struct{}), resume: make(chan struct{})}
			ctlOf[victim].Store(ctl)
			select {
			case <-ctl.stalled:
			case <-consumerDone[victim]:
				ctlOf[victim].Swap(nil)
				return
			case <-time.After(2 * time.Second):
				if ctlOf[victim].Swap(nil) != nil {
					return // traffic ended before the victim saw a window
				}
				<-ctl.stalled // picked up at the last moment
			}
			defer close(ctl.resume)
			clk.Advance(1000)
			if steal {
				for {
					var stole bool
					if pmem.Protect(func() { stole, _, _ = g.Consumer(0).Steal(ctlTid) }) {
						return
					}
					if !stole {
						return
					}
				}
			}
			pmem.Protect(func() { g.Scan(ctlTid, clk.Now()) })
		}
		stallCycle(1, false)
		stallCycle(2, true)
		killFlag[1].Store(true)
		select {
		case <-consumerDone[1]:
		case <-time.After(5 * time.Second):
			return
		}
		clk.Advance(1000)
		pmem.Protect(func() { g.Scan(ctlTid, clk.Now()) })
	}()

	start.Done()
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow()
	}
	hs.FinalizeCrash(rand.New(rand.NewSource(seed * 17)))
	hs.Restart()

	r, err := RecoverSet(hs, threads)
	if err != nil {
		t.Fatal(err)
	}
	clk2 := &logicalClock{}
	g2, err := r.NewGroupAcked([]string{"events", "jobs"}, 1, LeaseConfig{TTL: 5, Now: clk2.Now})
	if err != nil {
		t.Fatal(err)
	}

	seen := map[uint64]string{}
	for c := range processed {
		for id := range processed[c] {
			if prev, dup := seen[id]; dup {
				t.Fatalf("message %#x acknowledged twice (%s and consumer %d)", id, prev, c)
			}
			seen[id] = fmt.Sprintf("consumer %d", c)
		}
	}
	c2 := g2.Consumer(0)
	drained := 0
	for {
		ms := c2.PollBatch(0, 16)
		if len(ms) == 0 {
			break
		}
		for _, m := range ms {
			id := AsU64(m.Payload[:8])
			if m.Topic == "jobs" && !bytes.Equal(m.Payload, blobPayload(id)) {
				t.Fatalf("recovered payload of %#x corrupted", id)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("message %#x both acknowledged by %s and redelivered after recovery", id, prev)
			}
			seen[id] = "post-crash drain"
			drained++
		}
		c2.Ack(0)
	}
	lost := 0
	totalAcked := 0
	for p := range acked {
		totalAcked += len(acked[p])
		for _, id := range acked[p] {
			if _, ok := seen[id]; !ok {
				lost++
			}
		}
	}
	t.Logf("seed %d: published %d, processed pre-crash %d, drained post-crash %d, stale acks refused %d, observer-gap %d",
		seed, totalAcked, len(seen)-drained, drained, staleRefused.Load(), lost)
	if staleRefused.Load() == 0 {
		t.Fatal("no stale-epoch ack was exercised and refused")
	}
	// Same allowance as the consumer-crash tier: acks whose fence
	// completed right before the power loss cut off the audit record.
	if allowance := consumers * window; lost > allowance {
		t.Fatalf("%d acknowledged publishes never processed (allowance %d)", lost, allowance)
	}
}

// TestJanitorDoubleStop: Stop is idempotent — calling it twice (even
// concurrently) must neither panic on a double close nor hang, and
// every call returns only after the janitor goroutine has exited.
func TestJanitorDoubleStop(t *testing.T) {
	_, b := newAckedBroker(t, 1, 4, pmem.ModePerf)
	clk := &logicalClock{}
	g, err := b.NewGroupAcked([]string{"events"}, 2, LeaseConfig{TTL: 10, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	j, err := g.StartJanitor(3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	j.Stop()
	j.Stop() // regression: this used to panic on a double close

	// And under contention: every racer must return, none may panic.
	j2, err := g.StartJanitor(3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j2.Stop()
		}()
	}
	wg.Wait()
}
