package broker

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/blobq"
	"repro/internal/dheap"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/queues"
)

// Live broker administration. Open brings up a broker — empty on a
// fresh heap set, fully recovered on a set carrying a catalog — and
// CreateTopic/CreateAckGroup append to the durable catalog log at
// runtime, so a production deployment never has to declare its whole
// topic universe up front. DeleteTopic and CompactCatalog complete
// the lifecycle: topics retire behind tombstone records, their shard
// windows return through a free list, and the log itself is rewritten
// into a fresh generation when debris accumulates. Every operation is
// crash-atomic through the second amendment's ordered-persist
// discipline (allocate → fence, initialize, append → fence, anchor;
// see cataloglog.go): a crash at any point either recovers the
// operation completely or as if it was never attempted.

// Options parameterizes Open.
type Options struct {
	// Threads bounds the thread ids that may call broker operations.
	// Required (positive) when Open creates a fresh broker; on
	// recovery, 0 adopts the recorded bound and any other value must
	// match it.
	Threads int
	// Placement chooses each shard's member heap at CreateTopic time;
	// nil means RoundRobinPlacement. Never consulted for recovered
	// topics (the catalog records their placements).
	Placement PlacementPolicy
	// CatalogLines is the record capacity of the catalog log in cache
	// lines when Open creates a fresh broker (default 1024 — a few
	// hundred typical topics; a topic record spans 2 + shards/8 lines).
	// Ignored on recovery: the log's recorded capacity is adopted.
	CatalogLines int
	// Observer, when non-nil, receives per-op latency samples, topic
	// and group gauges, and trace events for the broker's lifetime. Its
	// thread bound must cover the broker's. Observation costs no
	// persist instructions; with Observer nil each instrumentation site
	// costs one predictable branch. The same observer may be handed to
	// a recovered broker: topic gauge state is re-registered by name,
	// so counters span crashes of the observed process's broker.
	Observer *obs.Observer
}

type openMode int

const (
	openAny     openMode = iota // create if empty, recover otherwise
	openCreate                  // must be empty (legacy NewSet semantics)
	openRecover                 // must host a broker (legacy RecoverSet semantics)
)

// Open brings up a broker on the heap set: a set whose anchor heap
// hosts a catalog is recovered (exactly like RecoverSet, including
// legacy v1/v2/v3 catalogs), an empty set gets a fresh broker with no
// topics — create them at runtime with CreateTopic. The anchor stamp
// is the last persist of creation, so a crash inside Open leaves no
// broker. Call while no other thread operates; Open itself uses
// thread id 0.
func Open(hs *pmem.HeapSet, opts Options) (*Broker, error) {
	return open(hs, opts, openAny)
}

func open(hs *pmem.HeapSet, opts Options, mode openMode) (*Broker, error) {
	h := hs.Heap(0)
	r := &catReader{h: h}
	reg := pmem.Addr(r.word(h.RootAddr(slotAnchor)))
	if r.err != nil {
		return nil, r.err
	}
	if reg == 0 {
		if mode == openRecover {
			return nil, fmt.Errorf("broker: no catalog anchored (heap 0 hosts no broker)")
		}
		return openFresh(hs, opts)
	}
	if mode == openCreate {
		return nil, checkMemberEmpty(h, 0)
	}
	return openExisting(hs, opts)
}

// openFresh creates an empty broker: membership stamps on heaps 1..,
// then the catalog log header, zero commit line and virgin high-water
// marks on heap 0, fenced before the anchor names them.
func openFresh(hs *pmem.HeapSet, opts Options) (*Broker, error) {
	if opts.Threads <= 0 {
		return nil, fmt.Errorf("broker: Threads must be positive to create a broker")
	}
	if opts.CatalogLines == 0 {
		opts.CatalogLines = defaultCatalogLines
	}
	maxCap := maxCatalogLines - logHeaderLines - allocLinesFor(hs.Len())
	if opts.CatalogLines < 1 || opts.CatalogLines > maxCap {
		return nil, fmt.Errorf("broker: CatalogLines %d out of range [1,%d]", opts.CatalogLines, maxCap)
	}
	if err := checkSet(hs, opts.Threads); err != nil {
		return nil, err
	}
	for i := 0; i < hs.Len(); i++ {
		if err := checkMemberEmpty(hs.Heap(i), i); err != nil {
			return nil, err
		}
	}
	b := &Broker{hs: hs, threads: opts.Threads, placement: opts.Placement}
	if b.placement == nil {
		b.placement = RoundRobinPlacement
	}
	b.cat = createCatalogLog(hs, 0, opts.Threads, opts.CatalogLines)
	b.snap.Store(&topicSet{byName: map[string]*Topic{}})
	if err := b.observe(opts.Observer); err != nil {
		return nil, err
	}
	return b, nil
}

// observe installs the observer on a newly opened broker: the
// heap-stat provider, plus gauge state for every topic the broker
// already has (recovery re-registers by name, so an observer that
// outlives the broker keeps its counters). Establishes the invariant
// the hot paths rely on: b.obs != nil ⇒ every topic has ostats.
func (b *Broker) observe(o *obs.Observer) error {
	if o == nil {
		return nil
	}
	if o.Threads() < b.threads {
		return fmt.Errorf("broker: observer admits %d thread ids, broker needs %d", o.Threads(), b.threads)
	}
	b.obs = o
	hs := b.hs
	o.SetHeapStats(func() []pmem.Stats {
		out := make([]pmem.Stats, hs.Len())
		for i := range out {
			out[i] = hs.Heap(i).TotalStats()
		}
		return out
	})
	for _, t := range b.set().list {
		t.ostats = o.RegisterTopic(t.Name(), t.Shards())
	}
	return nil
}

// openExisting recovers the broker anchored on the set: catalog read
// (or v4 log replay), stamp verification, then the paper's per-queue
// recovery heap by heap in parallel, then lease-region re-binding.
func openExisting(hs *pmem.HeapSet, opts Options) (*Broker, error) {
	lay, err := readCatalog(hs)
	if err != nil {
		return nil, err
	}
	threads := opts.Threads
	if threads == 0 {
		threads = lay.threads
	} else if threads != lay.threads {
		return nil, fmt.Errorf("broker: Recover with %d threads, but the broker was created with %d",
			threads, lay.threads)
	}
	if threads <= 0 {
		return nil, fmt.Errorf("broker: catalog records non-positive thread bound %d", lay.threads)
	}
	if err := checkSet(hs, threads); err != nil {
		return nil, err
	}
	// Replay validates v4 records as it reads them; re-validate the
	// legacy layouts' topic rows to the same standard (duplicate names
	// included) so no version can smuggle an inconsistent config in.
	seen := map[string]bool{}
	for _, tc := range lay.topics {
		if err := validateTopic(tc); err != nil {
			return nil, err
		}
		if seen[tc.Name] {
			return nil, fmt.Errorf("broker: catalog records topic %q twice", tc.Name)
		}
		seen[tc.Name] = true
	}
	var mkMu sync.Mutex
	var mkErr error
	b := build(hs, threads, lay.topics, lay.locs, lay.bases, lay.nextGlobal, func(view *pmem.Heap, tc TopicConfig) *shard {
		if tc.Kind.heapKind() {
			q, err := dheap.Recover(view, threads)
			if err != nil {
				mkMu.Lock()
				if mkErr == nil {
					mkErr = fmt.Errorf("broker: topic %q: %w", tc.Name, err)
				}
				mkMu.Unlock()
				return &shard{}
			}
			return &shard{heapq: q}
		}
		if tc.MaxPayload == 0 {
			if tc.Acked {
				return &shard{fixed: queues.RecoverOptUnlinkedQAcked(view, threads)}
			}
			return &shard{fixed: queues.RecoverOptUnlinkedQ(view, threads)}
		}
		return &shard{blob: blobq.Recover(view, blobq.Config{
			Threads: threads, MaxPayload: tc.MaxPayload, Acked: tc.Acked,
		})}
	})
	if mkErr != nil {
		return nil, mkErr
	}
	for g, loc := range lay.leaseLocs {
		lr, err := readLeaseRegion(hs.Heap(loc.heap), loc.heap, loc.base, g, lay.leaseCaps[g])
		if err != nil {
			return nil, err
		}
		b.regions = append(b.regions, lr)
	}
	b.bound = make([]bool, len(b.regions))
	b.cat = lay.cat
	if opts.Placement != nil {
		b.placement = opts.Placement
	}
	if err := b.observe(opts.Observer); err != nil {
		return nil, err
	}
	return b, nil
}

// errLegacyCatalog reports why admin operations are refused on a
// broker recovered from a write-once catalog.
func errLegacyCatalog(op string) error {
	return fmt.Errorf("broker: %s on a legacy (v1/v2/v3) write-once catalog — migrate by draining into a broker created with Open", op)
}

// CreateTopic creates a topic on a live broker, durably: the shard
// windows are claimed in the catalog's high-water slot allocator and
// the marks fenced (a window handed out before a crash is never
// reused), the shard queues are initialized on the member heaps the
// placement policy chose, a checksummed record is appended to the
// catalog log and fenced, and only then does the commit stamp's
// persist make the topic visible. A crash anywhere before that last
// persist recovers as if CreateTopic was never called; after it, the
// topic recovers fully, empty or with whatever was published.
//
// The catalog-protocol cost is a pinned three blocking persists
// (allocator marks, record, commit stamp) plus the per-shard queue
// initialization — independent of how many topics the broker already
// has. When every shard window is reused from the free list the marks
// never move and their persist is skipped: two blocking persists.
//
// tid follows the usual rule: it must be owned by the calling
// goroutine for the duration, and may be any id in [0, Threads).
// CreateTopic may run concurrently with data-plane traffic on other
// tids; concurrent CreateTopic calls serialize internally. Groups do
// not subscribe new topics automatically — subscribe an existing
// group with Group.Subscribe, or create a new group.
func (b *Broker) CreateTopic(tid int, tc TopicConfig) (*Topic, error) {
	b.adminMu.Lock()
	defer b.adminMu.Unlock()
	o := b.obs
	var startNs int64
	if o != nil {
		startNs = obs.Now()
	}
	if b.cat == nil {
		return nil, errLegacyCatalog("CreateTopic")
	}
	if err := validateTopic(tc); err != nil {
		return nil, err
	}
	snap := b.set()
	if snap.byName[tc.Name] != nil {
		return nil, fmt.Errorf("broker: duplicate topic %q", tc.Name)
	}
	if len(snap.list)+1 > maxCatTopics {
		return nil, fmt.Errorf("broker: broker already has %d topics (max %d)", len(snap.list), maxCatTopics)
	}
	// Reserve log space up front so a full log cannot leak windows.
	recLines := topicRecLines(tc.Shards)
	if b.cat.next+recLines > b.cat.totalLines {
		return nil, fmt.Errorf("broker: catalog log full (%d of %d lines used; CompactCatalog reclaims tombstone debris and can resize)",
			b.cat.next, b.cat.totalLines)
	}
	if snap.shardTotal+tc.Shards > maxCatShards {
		return nil, fmt.Errorf("broker: global shard ordinal space exhausted (%d of %d; ordinals of deleted topics are never reissued)",
			snap.shardTotal, maxCatShards)
	}

	// 1. Allocate: run the placement policy against a scratch copy of
	// the high-water marks, taking free-list windows (retired by
	// earlier deletes) before bumping a mark, then claim the fresh
	// windows and fence the marks. On error the popped free windows go
	// back — nothing durable has happened yet.
	width := slotsForKind(tc.Kind)
	tmp := append([]int(nil), b.cat.marks...)
	locs := make([]shardLoc, tc.Shards)
	reused := make([]bool, tc.Shards)
	var popped []shardLoc
	unpop := func() {
		for _, loc := range popped {
			b.cat.releaseSlots(loc.heap, loc.base, width)
		}
	}
	for si := range locs {
		hi := b.placement(len(snap.list), si, snap.shardTotal+si, tc.Shards, b.hs.Len())
		if hi < 0 || hi >= b.hs.Len() {
			unpop()
			return nil, fmt.Errorf("broker: placement policy put topic %q shard %d on heap %d of %d",
				tc.Name, si, hi, b.hs.Len())
		}
		if base, ok := b.cat.takeFree(hi, width); ok {
			locs[si] = shardLoc{heap: hi, base: base}
			reused[si] = true
			popped = append(popped, locs[si])
			continue
		}
		if tmp[hi]+width > b.hs.Heap(hi).RootSlots() {
			unpop()
			return nil, fmt.Errorf("broker: heap %d out of root slots (topic %q shard %d needs %d, %d left)",
				hi, tc.Name, si, width, b.hs.Heap(hi).RootSlots()-tmp[hi])
		}
		locs[si] = shardLoc{heap: hi, base: tmp[hi]}
		tmp[hi] += width
	}
	marksDirty := false
	for hi := range tmp {
		if tmp[hi] != b.cat.marks[hi] {
			b.cat.marks[hi] = tmp[hi]
			b.cat.h.Store(tid, b.cat.markAddr(hi), uint64(tmp[hi]))
			marksDirty = true
		}
	}
	if marksDirty {
		b.cat.persistMarks(tid)
	}

	// 2. Initialize the shard queues, heap by heap in parallel (the
	// same tid may run on every member concurrently: per-thread
	// simulator state is per heap).
	t := &Topic{b: b, cfg: tc, base: snap.shardTotal, locs: locs, shards: make([]*shard, tc.Shards)}
	perHeap := make([][]int, b.hs.Len())
	for si, loc := range locs {
		perHeap[loc.heap] = append(perHeap[loc.heap], si)
	}
	var wg sync.WaitGroup
	for hi, shards := range perHeap {
		if len(shards) == 0 {
			continue
		}
		wg.Add(1)
		go func(hi int, shards []int) {
			defer wg.Done()
			h := b.hs.Heap(hi)
			for _, si := range shards {
				view := h.View(locs[si].base, width)
				if reused[si] {
					// Scrub a free-list window's root slots before building
					// on it: the retired queue's slots (acked frontier,
					// epoch...) would otherwise survive wherever the new
					// queue kind does not overwrite them and mislead the
					// recovery dispatch. The constructor's own persist on
					// this heap orders the scrub durably before the
					// record's anchor, so a crash never sees a committed
					// topic on an unscrubbed window.
					for slot := 0; slot < width; slot++ {
						view.Store(tid, view.RootAddr(slot), 0)
						view.Flush(tid, view.RootAddr(slot))
					}
				}
				var s *shard
				switch {
				case tc.Kind.heapKind():
					s = &shard{heapq: dheap.New(view, dheap.Config{
						Threads: b.threads, MaxPayload: tc.MaxPayload, InitTid: tid,
					})}
				case tc.MaxPayload == 0:
					if tc.Acked {
						s = &shard{fixed: queues.NewOptUnlinkedQAckedAs(view, b.threads, tid)}
					} else {
						s = &shard{fixed: queues.NewOptUnlinkedQAs(view, b.threads, tid)}
					}
				default:
					s = &shard{blob: blobq.New(view, blobq.Config{
						Threads: b.threads, MaxPayload: tc.MaxPayload, Acked: tc.Acked, InitTid: tid,
					})}
				}
				s.heap = hi
				s.h = view
				s.acked = tc.Acked
				t.shards[si] = s
			}
		}(hi, shards)
	}
	wg.Wait()

	// 3 + 4. Append the record, fence, anchor. Visible only after the
	// commit persist; a crash in between recovers as "never existed"
	// (the popped free windows then come back through replay's
	// allocator simulation, just as they come back here on error).
	hdr, body := topicRecord(b.cat.records+1, tc, locs, snap.shardTotal)
	if err := b.cat.appendRecord(tid, hdr, body); err != nil {
		unpop()
		return nil, err
	}
	if o != nil {
		// Registered before the snapshot swap publishes the topic, so
		// the hot-path invariant (visible topic ⇒ ostats set) holds.
		t.ostats = o.RegisterTopic(tc.Name, tc.Shards)
	}

	ns := &topicSet{
		list:       append(append([]*Topic(nil), snap.list...), t),
		byName:     make(map[string]*Topic, len(snap.byName)+1),
		shardTotal: snap.shardTotal + tc.Shards,
	}
	for n, tp := range snap.byName {
		ns.byName[n] = tp
	}
	ns.byName[tc.Name] = t
	b.snap.Store(ns)
	if o != nil {
		o.Lat(tid, obs.OpAdmin, startNs)
		o.Event(tid, obs.OpAdmin, t.ostats, -1)
	}
	return t, nil
}

// AckGroupConfig parameterizes CreateAckGroup.
type AckGroupConfig struct {
	// Capacity is the number of global shard ordinals the region's
	// lease lines cover: consumer groups bound to the region may only
	// subscribe topics whose shards fall below it. It must be at least
	// the broker's current shard total; 0 selects the current shard
	// total plus 256 ordinals of headroom for topics created later.
	Capacity int
}

// defaultLeaseHeadroom is the growth headroom (in global shard
// ordinals) CreateAckGroup adds over the current shard total when
// AckGroupConfig.Capacity is zero: room for topics created after the
// region.
const defaultLeaseHeadroom = 256

// CreateAckGroup allocates a durable consumer-group lease region on a
// live broker and records it in the catalog log, following the same
// allocate → initialize → append → anchor discipline as CreateTopic
// (the same crash atomicity holds). Regions are dealt round-robin
// across the heap set. Returns the region index to pass as
// LeaseConfig.Region to NewGroupAcked.
func (b *Broker) CreateAckGroup(tid int, cfg AckGroupConfig) (int, error) {
	b.adminMu.Lock()
	defer b.adminMu.Unlock()
	o := b.obs
	var startNs int64
	if o != nil {
		startNs = obs.Now()
	}
	if b.cat == nil {
		return 0, errLegacyCatalog("CreateAckGroup")
	}
	snap := b.set()
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = snap.shardTotal + defaultLeaseHeadroom
	}
	if capacity < snap.shardTotal {
		return 0, fmt.Errorf("broker: lease capacity %d below the current shard total %d", capacity, snap.shardTotal)
	}
	if capacity > maxCatShards {
		return 0, fmt.Errorf("broker: lease capacity %d out of range [1,%d]", capacity, maxCatShards)
	}
	b.regionMu.Lock()
	group := len(b.regions)
	b.regionMu.Unlock()
	if group+1 > maxCatAckGroups {
		return 0, fmt.Errorf("broker: broker already has %d ack groups (max %d)", group, maxCatAckGroups)
	}
	if b.cat.next+1 > b.cat.totalLines {
		return 0, fmt.Errorf("broker: catalog log full (%d of %d lines used; reopen with a larger CatalogLines)",
			b.cat.next, b.cat.totalLines)
	}

	hi := group % b.hs.Len()
	loc, err := b.cat.allocSlots(tid, hi, 1, b.hs, fmt.Sprintf("lease region %d", group))
	if err != nil {
		return 0, err
	}
	b.cat.persistMarks(tid)
	lr := initLeaseRegion(b.hs.Heap(hi), tid, hi, loc.base, group, capacity)
	if err := b.cat.appendRecord(tid, ackGroupRecord(b.cat.records+1, capacity, loc), nil); err != nil {
		return 0, err
	}
	b.regionMu.Lock()
	b.regions = append(b.regions, lr)
	b.bound = append(b.bound, false)
	b.regionMu.Unlock()
	if o != nil {
		o.Lat(tid, obs.OpAdmin, startNs)
		o.Event(tid, obs.OpAdmin, nil, -1)
	}
	return group, nil
}

// DeleteTopic retires the named topic durably and reclaims its NVRAM:
// the topic is unpublished from the data plane (every *Topic handle
// turns into ErrTopicDeleted, in-flight operations are drained), a
// checksummed tombstone record is appended to the catalog log and
// anchored exactly like a creation, and only after that anchor persist
// do the topic's shard windows return to the free-list allocator for
// CreateTopic to reuse. A crash anywhere before the anchor recovers as
// "the topic still exists" — with every message it held — and a crash
// after it recovers the delete completely, so a window is never
// reusable in any execution where the topic could come back.
//
// Messages still in the topic are dropped with it: drain first (group
// consumption or DequeueShard) if they matter. Consumer groups that
// subscribed the topic keep working on their other topics — polls skip
// the deleted refs — and the topic's global shard ordinals are never
// reissued, so its stale lease lines can never be adopted by a new
// topic.
//
// The catalog-protocol cost is at most three blocking persists; the
// common path is two (tombstone record, commit stamp — the high-water
// marks never move backward). When tombstone debris has accumulated
// past half the log's record space, DeleteTopic compacts the log in
// the same call (see CompactCatalog) — amortized, the cost bound
// still holds.
func (b *Broker) DeleteTopic(tid int, name string) error {
	b.adminMu.Lock()
	defer b.adminMu.Unlock()
	o := b.obs
	var startNs int64
	if o != nil {
		startNs = obs.Now()
	}
	if b.cat == nil {
		return errLegacyCatalog("DeleteTopic")
	}
	snap := b.set()
	t := snap.byName[name]
	if t == nil {
		return fmt.Errorf("broker: no topic %q", name)
	}
	if t.cfg.Kind.heapKind() {
		// The dheap's entry region is AllocRaw'd from the member heap,
		// which has no free path, so retiring the window would strand the
		// region and a re-created heap topic would leak one arena per
		// churn cycle. Refused until dheap regions are recyclable (see
		// the ROADMAP follow-on).
		return fmt.Errorf("broker: DeleteTopic on %s topic %q not supported (heap-topic deletion is a ROADMAP follow-on)",
			t.cfg.Kind, name)
	}
	// Reserve log space up front. A log too full for a tombstone but
	// holding debris is compacted instead — the new generation simply
	// omits the topic, which is the same atomic flip.
	full := b.cat.next+tombstoneLines > b.cat.totalLines
	if full && b.cat.deadLines == 0 {
		return fmt.Errorf("broker: catalog log full (%d of %d lines used; CompactCatalog can resize it)",
			b.cat.next, b.cat.totalLines)
	}

	// 1. Unpublish: swap a snapshot without the topic, flip its deleted
	// flag, and drain the data plane — after this loop no operation is
	// inside a shard and none can get in.
	ns := &topicSet{
		byName:     make(map[string]*Topic, len(snap.byName)-1),
		shardTotal: snap.shardTotal,
	}
	for _, tp := range snap.list {
		if tp != t {
			ns.list = append(ns.list, tp)
			ns.byName[tp.Name()] = tp
		}
	}
	b.snap.Store(ns)
	t.deleted.Store(true)
	for t.inflight.Load() != 0 {
		runtime.Gosched()
	}

	// 2 + 3. Tombstone: append, fence, anchor. Visible (the topic gone)
	// only after the commit persist; a crash in between recovers the
	// topic.
	if full {
		if err := b.compactLocked(tid, 0); err != nil {
			// Nothing durable changed; resurrect the volatile state.
			t.deleted.Store(false)
			b.snap.Store(snap)
			return err
		}
	} else {
		hdr, body := tombstoneRecord(b.cat.records+1, name)
		if err := b.cat.appendRecord(tid, hdr, body); err != nil {
			t.deleted.Store(false)
			b.snap.Store(snap)
			return err
		}
		b.cat.deadLines += topicRecLines(len(t.locs)) + tombstoneLines
	}

	// 4. Reclaim: only now — the tombstone (or the generation that
	// omits the topic) is anchored — do the windows return. The view
	// claims go back to the member heaps so CreateTopic can re-view the
	// same slots, and the windows join the free list.
	for si, loc := range t.locs {
		b.hs.Heap(loc.heap).ReleaseView(t.shards[si].h)
		b.cat.releaseSlots(loc.heap, loc.base, slotsForKind(t.cfg.Kind))
	}

	// Debris past half the record space triggers reclamation of the log
	// itself.
	if b.cat.deadLines*2 > b.cat.totalLines-b.cat.recStart() {
		if err := b.compactLocked(tid, 0); err != nil {
			return fmt.Errorf("broker: topic %q deleted, but compaction failed: %w", name, err)
		}
	}
	if o != nil {
		o.Lat(tid, obs.OpAdmin, startNs)
		o.Event(tid, obs.OpAdmin, nil, -1)
	}
	return nil
}

// CompactCatalog rewrites the catalog log's live records into a fresh
// next-generation region, dropping tombstone debris, and flips the
// root-slot anchor to it — one single-word persist, so recovery on
// either side of the flip reads exactly one complete generation.
// capacityLines resizes the log's record space (0 keeps the current
// capacity), which makes compaction the log-full escape hatch: a
// broker that outgrew Options.CatalogLines compacts into a larger
// generation without restarting.
//
// Cost: one fence covering the whole new generation plus the anchor
// persist — independent of how many dead records are dropped.
// DeleteTopic calls this automatically when debris exceeds half the
// record space; explicit calls are for resizing or for reclaiming
// eagerly.
func (b *Broker) CompactCatalog(tid, capacityLines int) error {
	b.adminMu.Lock()
	defer b.adminMu.Unlock()
	o := b.obs
	var startNs int64
	if o != nil {
		startNs = obs.Now()
	}
	if b.cat == nil {
		return errLegacyCatalog("CompactCatalog")
	}
	maxCap := maxCatalogLines - logHeaderLines - b.cat.allocLines
	if capacityLines < 0 || capacityLines > maxCap {
		return fmt.Errorf("broker: CatalogLines %d out of range [0,%d]", capacityLines, maxCap)
	}
	if err := b.compactLocked(tid, capacityLines); err != nil {
		return err
	}
	if o != nil {
		o.Lat(tid, obs.OpAdmin, startNs)
		o.Event(tid, obs.OpAdmin, nil, -1)
	}
	return nil
}

// compactLocked gathers the live catalog contents — the current
// snapshot's topics with their ordinal bases, every lease region —
// and hands them to the log's generation writer. Caller holds adminMu.
func (b *Broker) compactLocked(tid, capacityLines int) error {
	snap := b.set()
	topics := make([]liveTopic, len(snap.list))
	for i, t := range snap.list {
		topics[i] = liveTopic{tc: t.cfg, locs: t.locs, base: t.base}
	}
	b.regionMu.Lock()
	leaseLocs := make([]shardLoc, len(b.regions))
	leaseCaps := make([]int, len(b.regions))
	for g, lr := range b.regions {
		leaseLocs[g] = shardLoc{heap: lr.heap, base: lr.slot}
		leaseCaps[g] = lr.cap
	}
	b.regionMu.Unlock()
	return b.cat.compact(tid, b.threads, capacityLines, topics, leaseLocs, leaseCaps, snap.shardTotal)
}
