package broker

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrTopicDeleted is returned by the data plane — publish paths and
// drain helpers — when the topic has been retired by DeleteTopic. A
// caller holding a *Topic across a delete observes this typed error
// instead of racing a reclaimed shard window; nothing it published
// before the delete is lost (the delete drained nothing — retired
// messages are dropped with the topic, as documented on DeleteTopic).
var ErrTopicDeleted = errors.New("broker: topic deleted")

// ErrWrongTopicKind reports a verb applied to a topic of the wrong
// kind: a FIFO verb (Publish/PublishKey/PublishBatch/NewPublisher,
// group subscription) on a delay/priority topic, or a heap verb
// (PublishAt/PublishPriority/DequeueReady/NackDelayed) on a FIFO
// topic. Every refusing path wraps this sentinel with the same
// diagnostic shape (verb, topic, actual kind, wanted kind) — the
// ErrLeaseCapacity convention — so callers test
// errors.Is(err, ErrWrongTopicKind) regardless of which path refused.
var ErrWrongTopicKind = errors.New("broker: operation does not match topic kind")

// kindErr builds the uniform ErrWrongTopicKind diagnostic.
func (t *Topic) kindErr(verb string, want TopicKind) error {
	return fmt.Errorf("%w: %s on topic %q of kind %s (want a %s topic)",
		ErrWrongTopicKind, verb, t.cfg.Name, t.cfg.Kind, want)
}

// Topic is one named, sharded durable message stream. Publishing is
// safe from any number of producers (each with its own tid); ordering
// is FIFO per shard, so two messages routed to the same shard are
// delivered in publish order. A topic's shards may be spread over
// several member heaps of the broker's set (see PlacementPolicy);
// HeapOf reports each shard's domain.
type Topic struct {
	b      *Broker
	cfg    TopicConfig
	base   int // global ordinal of shard 0 (catalog creation order)
	locs   []shardLoc
	shards []*shard
	rr     atomic.Uint64 // round-robin routing cursor

	// deleted flips exactly once, before the topic's tombstone is
	// appended: the data plane refuses the topic (ErrTopicDeleted) from
	// that point on. inflight counts data-plane operations currently
	// inside a shard; DeleteTopic drains it to zero after flipping
	// deleted and before reclaiming the windows, so no straggler that
	// passed the flag check can race a window's reuse.
	deleted  atomic.Bool
	inflight atomic.Int64

	// ostats is the topic's gauge state, non-nil exactly when the
	// broker has an observer (set before the topic becomes visible).
	ostats *obs.TopicStats
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.cfg.Name }

// Acked reports whether the topic's shards require acknowledgment
// (TopicConfig.Acked).
func (t *Topic) Acked() bool { return t.cfg.Acked }

// Shards returns the topic's shard count.
func (t *Topic) Shards() int { return len(t.shards) }

// Deleted reports whether the topic has been retired by DeleteTopic.
func (t *Topic) Deleted() bool { return t.deleted.Load() }

// enter registers one data-plane operation on the topic, refusing it
// once the topic is retired; every true return must be paired with
// exit. The double flag check brackets the increment, so either the
// operation is visible to DeleteTopic's drain before it touches a
// shard, or it observes the flag and touches nothing.
func (t *Topic) enter() bool {
	if t.deleted.Load() {
		return false
	}
	t.inflight.Add(1)
	if t.deleted.Load() {
		t.inflight.Add(-1)
		return false
	}
	return true
}

func (t *Topic) exit() { t.inflight.Add(-1) }

// HeapOf reports the member heap (persistence domain) shard s lives
// on.
func (t *Topic) HeapOf(s int) int { return t.locs[s].heap }

// MaxPayload reports the payload capacity in bytes (8 for fixed
// topics).
func (t *Topic) MaxPayload() int {
	if t.cfg.MaxPayload == 0 {
		return 8
	}
	return t.cfg.MaxPayload
}

func (t *Topic) checkPayload(p []byte) {
	if t.cfg.MaxPayload == 0 {
		if len(p) != 8 {
			panic(fmt.Sprintf("broker: topic %q is fixed-width; payload must be exactly 8 bytes, got %d",
				t.cfg.Name, len(p)))
		}
		return
	}
	if len(p) > t.cfg.MaxPayload {
		panic(fmt.Sprintf("broker: topic %q payload %d exceeds capacity %d",
			t.cfg.Name, len(p), t.cfg.MaxPayload))
	}
}

// Publish routes payload to the next shard round-robin and enqueues
// it durably. When Publish returns nil the message is acknowledged:
// it survives any subsequent crash. One blocking persist per message,
// on the shard's own heap. Returns ErrTopicDeleted (and publishes
// nothing) once the topic is retired.
func (t *Topic) Publish(tid int, payload []byte) error {
	if t.cfg.Kind != KindFIFO {
		return t.kindErr("Publish", KindFIFO)
	}
	t.checkPayload(payload)
	if !t.enter() {
		return ErrTopicDeleted
	}
	defer t.exit()
	s := int(t.rr.Add(1)-1) % len(t.shards)
	// The disabled-observer cost is exactly this one predictable branch:
	// the fast path below is the whole unobserved operation.
	o := t.b.obs
	if o == nil {
		t.shards[s].publish(tid, payload)
		return nil
	}
	start := obs.Now()
	t.shards[s].publish(tid, payload)
	o.Lat(tid, obs.OpPublish, start)
	t.ostats.Published(s, 1)
	o.Event(tid, obs.OpPublish, t.ostats, s)
	return nil
}

// PublishKey routes payload by FNV-1a hash of key, so all messages
// with equal keys share a shard and are delivered in publish order.
// Returns ErrTopicDeleted once the topic is retired.
func (t *Topic) PublishKey(tid int, key, payload []byte) error {
	if t.cfg.Kind != KindFIFO {
		return t.kindErr("PublishKey", KindFIFO)
	}
	t.checkPayload(payload)
	if !t.enter() {
		return ErrTopicDeleted
	}
	defer t.exit()
	// FNV-1a inlined: hash.Hash would heap-allocate per publish.
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	s := int(h % uint64(len(t.shards)))
	o := t.b.obs
	if o == nil {
		t.shards[s].publish(tid, payload)
		return nil
	}
	start := obs.Now()
	t.shards[s].publish(tid, payload)
	o.Lat(tid, obs.OpPublish, start)
	t.ostats.Published(s, 1)
	o.Event(tid, obs.OpPublish, t.ostats, s)
	return nil
}

// PublishBatch routes the whole batch to the next shard round-robin
// and enqueues it with a single blocking persist (see
// queues.OptUnlinkedQ.EnqueueBatch): the amortized publish path. The
// batch is acknowledged as a whole when PublishBatch returns nil; a
// crash before that acknowledges none of it (messages that happened to
// become durable are recovered, which is allowed — they were simply
// never acked). Batch elements stay FIFO relative to each other.
// Returns ErrTopicDeleted (and publishes nothing) once the topic is
// retired.
func (t *Topic) PublishBatch(tid int, payloads [][]byte) error {
	if t.cfg.Kind != KindFIFO {
		return t.kindErr("PublishBatch", KindFIFO)
	}
	if len(payloads) == 0 {
		return nil
	}
	for _, p := range payloads {
		t.checkPayload(p)
	}
	if !t.enter() {
		return ErrTopicDeleted
	}
	defer t.exit()
	s := int(t.rr.Add(1)-1) % len(t.shards)
	o := t.b.obs
	if o == nil {
		t.shards[s].publishBatch(tid, payloads)
		return nil
	}
	start := obs.Now()
	t.shards[s].publishBatch(tid, payloads)
	o.Lat(tid, obs.OpPublish, start)
	t.ostats.Published(s, len(payloads))
	o.Event(tid, obs.OpPublish, t.ostats, s)
	return nil
}

// Stats returns the topic's observability gauge state — message
// counters and per-shard published heads — or nil when the broker has
// no observer.
func (t *Topic) Stats() *obs.TopicStats { return t.ostats }

// DequeueShard removes the oldest message of one shard. Intended for
// recovery audits and drain tools; normal consumption goes through
// consumer groups, which own shards exclusively. On an acked topic the
// message is acknowledged immediately (lease + ack in one step).
// Reports empty once the topic is retired, and on delay/priority
// topics, whose heap order has no "oldest" (the signature has no error
// slot; use DequeueReady, which returns the typed ErrWrongTopicKind
// from the FIFO side).
func (t *Topic) DequeueShard(tid, shard int) ([]byte, bool) {
	if t.cfg.Kind != KindFIFO {
		return nil, false
	}
	if !t.enter() {
		return nil, false
	}
	defer t.exit()
	return t.shards[shard].consume(tid)
}

// Kind reports the topic's delivery-order kind.
func (t *Topic) Kind() TopicKind { return t.cfg.Kind }
