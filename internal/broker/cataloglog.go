package broker

import (
	"fmt"

	"repro/internal/pmem"
)

// The v4 catalog is no longer a write-once snapshot but an append-only
// durable *log* of administrative records — the redesign that makes
// topics and ack-group lease regions creatable on a live broker.
// Every creation follows the second amendment's own ordered-persist
// discipline, the same append → fence → anchor pattern the queues use
// for nodes:
//
//  1. allocate — the shard windows are claimed in the durable per-heap
//     high-water slot allocator and the marks fenced, so a window
//     handed out before a crash is never handed out again;
//  2. initialize — the shard queues (or the lease region) are built on
//     their member heaps, each persisting its own state;
//  3. append — a checksummed record describing the creation is written
//     into the log's free tail and fenced;
//  4. anchor — a single commit word (the count of committed records)
//     is stamped and persisted, making the creation visible.
//
// A crash before step 4 recovers as "the create never happened": the
// commit word still counts the old records, so replay never looks at
// the torn tail, and the next append simply overwrites it — detected,
// truncated, never mis-scanned. A crash after step 4 recovers the
// topic fully, because everything the record references was durable
// before the anchor moved. Replay is record-by-record, so a broker
// whose topics were created across many sessions recovers identically
// to one that made them all at once.
//
// Log region layout (heap 0, anchored at root slot 0):
//
//	line 0 (header):  [magicV4, threads, heapCount, setStamp,
//	                   totalLines, allocLines, 0, checksum(w0..w6)]
//	line 1 (commit):  [committedRecords, 0...]   — the anchor stamp,
//	                   rewritten once per creation (single-word store,
//	                   so it is old or new after a crash, never torn)
//	lines 2..:        allocLines lines of per-heap high-water slot
//	                   marks, one word per member heap
//	records:          appended from line 2+allocLines
//
// Topic record (header line + name line + placement lines):
//
//	line 0: [recTopicMagic, seq, shards, maxPayload | ackedBit,
//	         nameLen, bodyLines, 0, checksum]
//	line 1: name words 0..3, 0...
//	line 2+: one placement word per shard, heapID<<32 | baseSlot
//
// Ack-group record (header line only):
//
//	line 0: [recAckMagic, seq, capacity, heapID<<32 | anchorSlot,
//	         0, bodyLines=0, 0, checksum]
//
// The checksum of a record covers its header words 0..6 and every
// body word, so a torn record — some lines landed, others not — fails
// validation. A *committed* record that fails validation is a hard
// recovery error (the catalog is corrupt); an uncommitted one is
// expected debris. Membership stamps on heaps 1.. are unchanged from
// v2/v3.

const (
	catMagicV4    = 0x42726f6b657234 // "Broker4": append-only catalog log
	recTopicMagic = 0x546f7043726531 // "TopCre1": topic-creation record
	recAckMagic   = 0x416b4743726531 // "AkGCre1": ack-group-creation record

	logHeaderLines = 2 // header line + commit line

	// defaultCatalogLines is the record-space capacity (in cache lines)
	// of a fresh catalog log when Options.CatalogLines is zero: room
	// for a few hundred typical topic records.
	defaultCatalogLines = 1024
	// maxCatalogLines caps the recorded capacity, like the other
	// catalog sanity caps: a corrupted count is rejected before it is
	// used to compute addresses.
	maxCatalogLines = 1 << 20
)

// catChecksum mixes an arbitrary word sequence into a guard word; it
// only needs to catch torn records and random corruption, not
// adversaries (the same contract as leaseChecksum).
func catChecksum(ws []uint64) uint64 {
	s := uint64(catMagicV4)
	for i, x := range ws {
		s ^= x + 0x9e3779b97f4a7c15*uint64(i+1)
		s = s<<13 | s>>51
	}
	return s
}

// testHookAfterAppend, when non-nil, runs between a catalog record's
// append fence and its commit stamp — the window in which a crash must
// recover as "the create never happened". Tests only.
var testHookAfterAppend func()

// catalogLog is the volatile handle of the durable v4 catalog log.
// All mutation happens under the broker's admin mutex.
type catalogLog struct {
	h          *pmem.Heap // anchor heap (member 0 of the set)
	heaps      int        // set size
	base       pmem.Addr  // log region base (header line)
	totalLines int        // region capacity in cache lines
	allocLines int        // high-water mark lines after the commit line

	records int   // committed records
	next    int   // next free line (replayed cursor / append position)
	marks   []int // per-heap high-water root-slot marks (volatile mirror)
}

func (cl *catalogLog) lineAddr(i int) pmem.Addr {
	return cl.base + pmem.Addr(i)*pmem.CacheLineBytes
}

func (cl *catalogLog) recStart() int { return logHeaderLines + cl.allocLines }

func allocLinesFor(heaps int) int {
	return (heaps + pmem.WordsPerLine - 1) / pmem.WordsPerLine
}

// createCatalogLog stamps every non-anchor member, then writes and
// anchors an empty catalog log on heap 0: header, commit line at zero
// records, and every heap's high-water mark at slot 1 (slot 0 is the
// anchor). The anchor is persisted last, so a crash inside leaves no
// broker. capacityLines is the record space to reserve.
func createCatalogLog(hs *pmem.HeapSet, tid, threads, capacityLines int) *catalogLog {
	stamp := nextSetStamp()
	for i := 1; i < hs.Len(); i++ {
		h := hs.Heap(i)
		reg := h.AllocRaw(tid, pmem.CacheLineBytes, pmem.CacheLineBytes)
		h.InitRange(tid, reg, pmem.CacheLineBytes)
		h.Store(tid, reg, stampMagic)
		h.Store(tid, reg+8, stamp)
		h.Store(tid, reg+16, uint64(i))
		h.Store(tid, reg+24, uint64(hs.Len()))
		h.Persist(tid, reg)
		h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
		h.Persist(tid, h.RootAddr(slotAnchor))
	}

	h := hs.Heap(0)
	cl := &catalogLog{
		h:          h,
		heaps:      hs.Len(),
		allocLines: allocLinesFor(hs.Len()),
		marks:      make([]int, hs.Len()),
	}
	cl.totalLines = logHeaderLines + cl.allocLines + capacityLines
	cl.next = cl.recStart()
	bytes := int64(cl.totalLines) * pmem.CacheLineBytes
	cl.base = h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, cl.base, bytes)

	hdr := []uint64{catMagicV4, uint64(threads), uint64(hs.Len()), stamp,
		uint64(cl.totalLines), uint64(cl.allocLines), 0}
	for i, w := range hdr {
		h.Store(tid, cl.base+pmem.Addr(i*pmem.WordBytes), w)
	}
	h.Store(tid, cl.base+7*pmem.WordBytes, catChecksum(hdr))
	h.Flush(tid, cl.base)
	for i := range cl.marks {
		cl.marks[i] = 1 // slot 0 is the anchor
		h.Store(tid, cl.markAddr(i), 1)
	}
	for l := 0; l < cl.allocLines; l++ {
		h.Flush(tid, cl.lineAddr(logHeaderLines+l))
	}
	h.Fence(tid) // header, marks and the zero commit line durable first

	h.Store(tid, h.RootAddr(slotAnchor), uint64(cl.base))
	h.Persist(tid, h.RootAddr(slotAnchor))
	return cl
}

func (cl *catalogLog) markAddr(heap int) pmem.Addr {
	return cl.lineAddr(logHeaderLines+heap/pmem.WordsPerLine) +
		pmem.Addr((heap%pmem.WordsPerLine)*pmem.WordBytes)
}

// allocSlots claims a width-slot root-slot window on the given member
// heap in the durable high-water allocator: the new mark is stored,
// flushed and fenced before the caller initializes anything inside the
// window, so a window handed out before a crash is never handed out
// again — exactly AllocRaw's contract, lifted to root slots.
func (cl *catalogLog) allocSlots(tid, heap, width int, hs *pmem.HeapSet, what string) (shardLoc, error) {
	base := cl.marks[heap]
	if base+width > hs.Heap(heap).RootSlots() {
		return shardLoc{}, fmt.Errorf("broker: heap %d out of root slots (%s needs %d, %d left)",
			heap, what, width, hs.Heap(heap).RootSlots()-base)
	}
	cl.marks[heap] = base + width
	cl.h.Store(tid, cl.markAddr(heap), uint64(cl.marks[heap]))
	return shardLoc{heap: heap, base: base}, nil
}

// persistMarks flushes every high-water line and fences: one blocking
// persist covers all the windows one creation claimed.
func (cl *catalogLog) persistMarks(tid int) {
	for l := 0; l < cl.allocLines; l++ {
		cl.h.Flush(tid, cl.lineAddr(logHeaderLines+l))
	}
	cl.h.Fence(tid)
}

// appendRecord writes a record — header words 0..6 plus body lines —
// at the log's free tail, fences it, then stamps and persists the
// commit word. The record is visible (replayed by recovery) only after
// the commit persist completes; a crash in between leaves debris that
// the next append overwrites.
func (cl *catalogLog) appendRecord(tid int, hdr [7]uint64, body [][8]uint64) error {
	recLines := 1 + len(body)
	if cl.next+recLines > cl.totalLines {
		return fmt.Errorf("broker: catalog log full (%d of %d lines used; reopen with a larger CatalogLines)",
			cl.next, cl.totalLines)
	}
	h := cl.h
	sum := make([]uint64, 0, 7+len(body)*8)
	sum = append(sum, hdr[:]...)
	for _, line := range body {
		sum = append(sum, line[:]...)
	}
	hdrAddr := cl.lineAddr(cl.next)
	for bi, line := range body {
		a := cl.lineAddr(cl.next + 1 + bi)
		for w, x := range line {
			h.Store(tid, a+pmem.Addr(w*pmem.WordBytes), x)
		}
		h.Flush(tid, a)
	}
	for w, x := range hdr {
		h.Store(tid, hdrAddr+pmem.Addr(w*pmem.WordBytes), x)
	}
	h.Store(tid, hdrAddr+7*pmem.WordBytes, catChecksum(sum))
	h.Flush(tid, hdrAddr)
	h.Fence(tid) // the record is durable, but not yet visible

	if testHookAfterAppend != nil {
		testHookAfterAppend()
	}

	cl.records++
	cl.next += recLines
	h.Store(tid, cl.lineAddr(1), uint64(cl.records))
	h.Persist(tid, cl.lineAddr(1)) // the anchor stamp: now it exists
	return nil
}

func topicRecord(seq int, tc TopicConfig, locs []shardLoc) ([7]uint64, [][8]uint64) {
	placeLines := (len(locs) + pmem.WordsPerLine - 1) / pmem.WordsPerLine
	payloadWord := uint64(tc.MaxPayload)
	if tc.Acked {
		payloadWord |= catAckedBit
	}
	hdr := [7]uint64{recTopicMagic, uint64(seq), uint64(tc.Shards), payloadWord,
		uint64(len(tc.Name)), uint64(1 + placeLines), 0}
	body := make([][8]uint64, 1+placeLines)
	name := make([]byte, catNameBytes)
	copy(name, tc.Name)
	for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
		var word uint64
		for b := 0; b < 8; b++ {
			word |= uint64(name[w*8+b]) << (8 * b)
		}
		body[0][w] = word
	}
	for i, loc := range locs {
		body[1+i/pmem.WordsPerLine][i%pmem.WordsPerLine] = packLoc(loc)
	}
	return hdr, body
}

func ackGroupRecord(seq, capacity int, loc shardLoc) [7]uint64 {
	return [7]uint64{recAckMagic, uint64(seq), uint64(capacity), packLoc(loc), 0, 0, 0}
}

// readCatalogV4 replays the catalog log record by record: exactly the
// committed prefix is applied, every committed record is re-validated
// (checksum, bounds, field sanity) and anything beyond the commit
// point — the torn tail of a creation that crashed before its anchor
// stamp — is ignored and will be overwritten by the next append. The
// returned catalogLog is positioned to continue appending.
func readCatalogV4(r *catReader, hs *pmem.HeapSet, reg pmem.Addr) (layoutInfo, *catalogLog, int, uint64, error) {
	var hdr [7]uint64
	for i := range hdr {
		hdr[i] = r.word(reg + pmem.Addr(i*pmem.WordBytes))
	}
	gotSum := r.word(reg + 7*pmem.WordBytes)
	if r.err != nil {
		return layoutInfo{}, nil, 0, 0, r.err
	}
	if gotSum != catChecksum(hdr[:]) {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log header corrupt (checksum mismatch)")
	}
	threads := hdr[1]
	heapCount := hdr[2]
	stamp := hdr[3]
	totalLines := hdr[4]
	allocLines := hdr[5]
	if heapCount == 0 || heapCount > maxCatHeaps {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog heap count %d invalid", heapCount)
	}
	if totalLines == 0 || totalLines > maxCatalogLines {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log capacity %d lines invalid", totalLines)
	}
	if allocLines != uint64(allocLinesFor(int(heapCount))) {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log records %d allocator lines for %d heaps, want %d",
			allocLines, heapCount, allocLinesFor(int(heapCount)))
	}
	cl := &catalogLog{
		h:          r.h,
		heaps:      int(heapCount),
		base:       reg,
		totalLines: int(totalLines),
		allocLines: int(allocLines),
		marks:      make([]int, heapCount),
	}
	records := r.word(cl.lineAddr(1))
	if records > uint64(cl.totalLines) { // each record spans >= 1 line
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log commit count %d absurd (capacity %d lines)",
			records, cl.totalLines)
	}

	lay := layoutInfo{threads: int(threads)}
	replayMarks := make([]int, heapCount)
	for i := range replayMarks {
		replayMarks[i] = 1
	}
	seen := map[string]bool{}
	cursor := cl.recStart()
	topics, ackGroups := 0, 0
	for rec := 0; rec < int(records); rec++ {
		if cursor >= cl.totalLines {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d starts beyond capacity", rec)
		}
		hdrAddr := cl.lineAddr(cursor)
		var rh [7]uint64
		for i := range rh {
			rh[i] = r.word(hdrAddr + pmem.Addr(i*pmem.WordBytes))
		}
		recSum := r.word(hdrAddr + 7*pmem.WordBytes)
		bodyLines := rh[5]
		if r.err != nil {
			return layoutInfo{}, nil, 0, 0, r.err
		}
		if bodyLines > uint64(cl.totalLines) || cursor+1+int(bodyLines) > cl.totalLines {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d overruns capacity", rec)
		}
		sum := make([]uint64, 0, 7+int(bodyLines)*8)
		sum = append(sum, rh[:]...)
		body := make([][8]uint64, bodyLines)
		for bi := range body {
			a := cl.lineAddr(cursor + 1 + bi)
			for w := range body[bi] {
				body[bi][w] = r.word(a + pmem.Addr(w*pmem.WordBytes))
			}
			sum = append(sum, body[bi][:]...)
		}
		if r.err != nil {
			return layoutInfo{}, nil, 0, 0, r.err
		}
		if recSum != catChecksum(sum) {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d corrupt (checksum mismatch)", rec)
		}
		if rh[1] != uint64(rec+1) {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d carries sequence %d", rec, rh[1])
		}
		switch rh[0] {
		case recTopicMagic:
			shards := rh[2]
			payloadWord := rh[3]
			nameLen := rh[4]
			if shards == 0 || shards > maxCatShards {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid shard count %d", rec, shards)
			}
			if nameLen == 0 || nameLen > catNameBytes {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid name length %d", rec, nameLen)
			}
			if want := 1 + (int(shards)+pmem.WordsPerLine-1)/pmem.WordsPerLine; int(bodyLines) != want {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has %d body lines for %d shards, want %d",
					rec, bodyLines, shards, want)
			}
			if topics++; topics > maxCatTopics {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log exceeds %d topics", maxCatTopics)
			}
			nameBytes := make([]byte, catNameBytes)
			for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
				for b := 0; b < 8; b++ {
					nameBytes[w*8+b] = byte(body[0][w] >> (8 * b))
				}
			}
			name := string(nameBytes[:nameLen])
			if seen[name] {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log records topic %q twice", name)
			}
			seen[name] = true
			locs := make([]shardLoc, shards)
			for s := range locs {
				locs[s] = unpackLoc(body[1+s/pmem.WordsPerLine][s%pmem.WordsPerLine])
				if locs[s].heap >= 0 && locs[s].heap < int(heapCount) {
					if end := locs[s].base + slotsPerShard; end > replayMarks[locs[s].heap] {
						replayMarks[locs[s].heap] = end
					}
				}
			}
			lay.topics = append(lay.topics, TopicConfig{
				Name:       name,
				Shards:     int(shards),
				MaxPayload: int(payloadWord &^ catAckedBit),
				Acked:      payloadWord&catAckedBit != 0,
			})
			lay.locs = append(lay.locs, locs)
		case recAckMagic:
			capacity := rh[2]
			loc := unpackLoc(rh[3])
			if capacity == 0 || capacity > maxCatShards {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid lease capacity %d", rec, capacity)
			}
			if ackGroups++; ackGroups > maxCatAckGroups {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log exceeds %d ack groups", maxCatAckGroups)
			}
			if loc.heap >= 0 && loc.heap < int(heapCount) {
				if end := loc.base + 1; end > replayMarks[loc.heap] {
					replayMarks[loc.heap] = end
				}
			}
			lay.leaseLocs = append(lay.leaseLocs, loc)
			lay.leaseCaps = append(lay.leaseCaps, int(capacity))
		default:
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d magic %#x invalid", rec, rh[0])
		}
		cursor += 1 + int(bodyLines)
	}
	cl.records = int(records)
	cl.next = cursor

	// High-water marks: the durable line is authoritative (it may run
	// ahead of the replayed maxima — windows claimed by a creation that
	// crashed before its anchor stay retired forever), but it can never
	// durably lag a committed record, whose claim was fenced first.
	for i := 0; i < int(heapCount); i++ {
		m := int(r.word(cl.markAddr(i)))
		if r.err != nil {
			return layoutInfo{}, nil, 0, 0, r.err
		}
		if m < replayMarks[i] {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: heap %d high-water mark %d lags committed windows (%d)",
				i, m, replayMarks[i])
		}
		if i < hs.Len() && m > hs.Heap(i).RootSlots() {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: heap %d high-water mark %d exceeds %d root slots",
				i, m, hs.Heap(i).RootSlots())
		}
		cl.marks[i] = m
	}
	return lay, cl, int(heapCount), stamp, nil
}
