package broker

import (
	"fmt"

	"repro/internal/pmem"
)

// The v4 catalog is no longer a write-once snapshot but an append-only
// durable *log* of administrative records — the redesign that makes
// topics and ack-group lease regions creatable on a live broker.
// Every creation follows the second amendment's own ordered-persist
// discipline, the same append → fence → anchor pattern the queues use
// for nodes:
//
//  1. allocate — the shard windows are claimed in the durable per-heap
//     high-water slot allocator and the marks fenced, so a window
//     handed out before a crash is never handed out again;
//  2. initialize — the shard queues (or the lease region) are built on
//     their member heaps, each persisting its own state;
//  3. append — a checksummed record describing the creation is written
//     into the log's free tail and fenced;
//  4. anchor — a single commit word (the count of committed records)
//     is stamped and persisted, making the creation visible.
//
// A crash before step 4 recovers as "the create never happened": the
// commit word still counts the old records, so replay never looks at
// the torn tail, and the next append simply overwrites it — detected,
// truncated, never mis-scanned. A crash after step 4 recovers the
// topic fully, because everything the record references was durable
// before the anchor moved. Replay is record-by-record, so a broker
// whose topics were created across many sessions recovers identically
// to one that made them all at once.
//
// Retirement rides the same discipline in reverse. DeleteTopic
// appends a checksummed *tombstone* record naming the topic and
// anchors it exactly like a creation; only after the anchor persist
// completes are the topic's shard windows handed to the volatile
// free-list allocator (and their pmem view claims released), so a
// crash anywhere mid-delete recovers as "the topic still exists" and
// a window is never reusable before its tombstone is durable. The
// free list is durable *by derivation*: replay simulates the
// allocator record by record — a creation claims its windows, a
// tombstone frees them — so recovery rebuilds the identical free list
// from the log alone, and a committed creation whose windows overlap
// a still-live structure is a hard recovery error instead of silent
// aliasing. The high-water marks never move backward; freed windows
// live below them and are handed out again by exact width.
//
// Tombstone debris is reclaimed by compaction (CompactCatalog): the
// live records are rewritten, re-sequenced, into a freshly allocated
// next-generation region — same magic, same set stamp, generation
// word bumped — whose records carry explicit global shard bases so
// dropping dead records never renumbers the survivors. The whole new
// generation is fenced first and then the root-slot anchor is flipped
// to it with a single-word store + persist, so a crash on either side
// of the flip recovers exactly one complete generation. Compaction is
// also the log's resize path: the new generation's record capacity is
// chosen independently of the old.
//
// Log region layout (heap 0, anchored at root slot 0):
//
//	line 0 (header):  [magicV4, threads, heapCount, setStamp,
//	                   totalLines, allocLines, generation,
//	                   checksum(w0..w6)]
//	line 1 (commit):  [committedRecords, ordinalFloor, 0...] — the
//	                   anchor stamp, rewritten once per creation
//	                   (single-word store, so it is old or new after a
//	                   crash, never torn); ordinalFloor is the global
//	                   shard ordinal the generation starts issuing at
//	                   (written once at generation creation), so
//	                   ordinals of compacted-away topics are never
//	                   reissued
//	lines 2..:        allocLines lines of per-heap high-water slot
//	                   marks, one word per member heap
//	records:          appended from line 2+allocLines
//
// Topic record (header line + name line + placement lines):
//
//	line 0: [recTopicMagic, seq, shards, maxPayload | ackedBit,
//	         nameLen, bodyLines, 1+globalBase, checksum]
//	line 1: name words 0..3, 0...
//	line 2+: one placement word per shard, heapID<<32 | baseSlot
//
// (word 6 = 0 in records written before topic retirement existed:
// replay then assigns the global base sequentially, which is exactly
// what those brokers did.)
//
// Ack-group record (header line only):
//
//	line 0: [recAckMagic, seq, capacity, heapID<<32 | anchorSlot,
//	         0, bodyLines=0, 0, checksum]
//
// Tombstone record (header line + name line):
//
//	line 0: [recTombMagic, seq, nameLen, 0, 0, bodyLines=1, 0,
//	         checksum]
//	line 1: name words 0..3, 0...
//
// The checksum of a record covers its header words 0..6 and every
// body word, so a torn record — some lines landed, others not — fails
// validation. A *committed* record that fails validation is a hard
// recovery error (the catalog is corrupt); an uncommitted one is
// expected debris. Membership stamps on heaps 1.. are unchanged from
// v2/v3.

const (
	catMagicV4    = 0x42726f6b657234 // "Broker4": append-only catalog log
	recTopicMagic = 0x546f7043726531 // "TopCre1": topic-creation record
	recAckMagic   = 0x416b4743726531 // "AkGCre1": ack-group-creation record
	recTombMagic  = 0x546f7044656c31 // "TopDel1": topic tombstone record

	logHeaderLines = 2 // header line + commit line
	tombstoneLines = 2 // tombstone header line + name line

	// maxCatGenerations caps the header's generation word, like the
	// other catalog sanity caps.
	maxCatGenerations = 1 << 32

	// defaultCatalogLines is the record-space capacity (in cache lines)
	// of a fresh catalog log when Options.CatalogLines is zero: room
	// for a few hundred typical topic records.
	defaultCatalogLines = 1024
	// maxCatalogLines caps the recorded capacity, like the other
	// catalog sanity caps: a corrupted count is rejected before it is
	// used to compute addresses.
	maxCatalogLines = 1 << 20
)

// catChecksum mixes an arbitrary word sequence into a guard word; it
// only needs to catch torn records and random corruption, not
// adversaries (the same contract as leaseChecksum).
func catChecksum(ws []uint64) uint64 {
	s := uint64(catMagicV4)
	for i, x := range ws {
		s ^= x + 0x9e3779b97f4a7c15*uint64(i+1)
		s = s<<13 | s>>51
	}
	return s
}

// testHookAfterAppend, when non-nil, runs between a catalog record's
// append fence and its commit stamp — the window in which a crash must
// recover as "the create never happened". Tests only.
var testHookAfterAppend func()

// testHookBeforeFlip, when non-nil, runs between a compaction's
// generation fence and its anchor flip — the window in which a crash
// must recover the *old* generation intact. Tests only.
var testHookBeforeFlip func()

// catalogLog is the volatile handle of the durable v4 catalog log.
// All mutation happens under the broker's admin mutex.
type catalogLog struct {
	h          *pmem.Heap // anchor heap (member 0 of the set)
	heaps      int        // set size
	base       pmem.Addr  // log region base (header line)
	totalLines int        // region capacity in cache lines
	allocLines int        // high-water mark lines after the commit line
	stamp      uint64     // membership set stamp (carried across generations)
	gen        uint64     // log generation (bumped by compaction)

	records int   // committed records
	next    int   // next free line (replayed cursor / append position)
	marks   []int // per-heap high-water root-slot marks (volatile mirror)

	// free is the size-bucketed free-list allocator layered under the
	// high-water marks: per heap, window width -> LIFO of window base
	// slots retired by committed tombstones. It is volatile but durable
	// by derivation — replay rebuilds it from the record sequence — so
	// it is only ever fed *after* a tombstone's anchor persist.
	free []map[int][]int

	// deadLines counts record lines that replay would skip over:
	// tombstoned topic records plus the tombstones themselves. It is
	// the debris measure that triggers compaction.
	deadLines int

	// spareBase/spareLines remember the previous generation's region
	// after a compaction so the next compaction can ping-pong into it
	// instead of allocating; a resize strands the smaller region
	// (AllocRaw has no free), and a crash forgets the spare — both are
	// bounded leaks, not correctness issues.
	spareBase  pmem.Addr
	spareLines int
}

func (cl *catalogLog) lineAddr(i int) pmem.Addr {
	return cl.base + pmem.Addr(i)*pmem.CacheLineBytes
}

func (cl *catalogLog) recStart() int { return logHeaderLines + cl.allocLines }

func allocLinesFor(heaps int) int {
	return (heaps + pmem.WordsPerLine - 1) / pmem.WordsPerLine
}

// createCatalogLog stamps every non-anchor member, then writes and
// anchors an empty catalog log on heap 0: header, commit line at zero
// records, and every heap's high-water mark at slot 1 (slot 0 is the
// anchor). The anchor is persisted last, so a crash inside leaves no
// broker. capacityLines is the record space to reserve.
func createCatalogLog(hs *pmem.HeapSet, tid, threads, capacityLines int) *catalogLog {
	stamp := nextSetStamp()
	for i := 1; i < hs.Len(); i++ {
		h := hs.Heap(i)
		reg := h.AllocRaw(tid, pmem.CacheLineBytes, pmem.CacheLineBytes)
		h.InitRange(tid, reg, pmem.CacheLineBytes)
		h.Store(tid, reg, stampMagic)
		h.Store(tid, reg+8, stamp)
		h.Store(tid, reg+16, uint64(i))
		h.Store(tid, reg+24, uint64(hs.Len()))
		h.Persist(tid, reg)
		h.Store(tid, h.RootAddr(slotAnchor), uint64(reg))
		h.Persist(tid, h.RootAddr(slotAnchor))
	}

	h := hs.Heap(0)
	cl := &catalogLog{
		h:          h,
		heaps:      hs.Len(),
		allocLines: allocLinesFor(hs.Len()),
		stamp:      stamp,
		marks:      make([]int, hs.Len()),
		free:       make([]map[int][]int, hs.Len()),
	}
	cl.totalLines = logHeaderLines + cl.allocLines + capacityLines
	cl.next = cl.recStart()
	bytes := int64(cl.totalLines) * pmem.CacheLineBytes
	cl.base = h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
	h.InitRange(tid, cl.base, bytes)

	hdr := []uint64{catMagicV4, uint64(threads), uint64(hs.Len()), stamp,
		uint64(cl.totalLines), uint64(cl.allocLines), cl.gen}
	for i, w := range hdr {
		h.Store(tid, cl.base+pmem.Addr(i*pmem.WordBytes), w)
	}
	h.Store(tid, cl.base+7*pmem.WordBytes, catChecksum(hdr))
	h.Flush(tid, cl.base)
	for i := range cl.marks {
		cl.marks[i] = 1 // slot 0 is the anchor
		h.Store(tid, cl.markAddr(i), 1)
	}
	for l := 0; l < cl.allocLines; l++ {
		h.Flush(tid, cl.lineAddr(logHeaderLines+l))
	}
	h.Fence(tid) // header, marks and the zero commit line durable first

	h.Store(tid, h.RootAddr(slotAnchor), uint64(cl.base))
	h.Persist(tid, h.RootAddr(slotAnchor))
	return cl
}

func (cl *catalogLog) markAddr(heap int) pmem.Addr {
	return cl.lineAddr(logHeaderLines+heap/pmem.WordsPerLine) +
		pmem.Addr((heap%pmem.WordsPerLine)*pmem.WordBytes)
}

// takeFree pops a width-wide window from the heap's free list, if one
// is there. Exact-fit buckets are preferred; otherwise the smallest
// wider bucket with stock is split — the request takes the window's
// head and the remainder goes back as a smaller free window (heap
// topics, whose windows are narrower than FIFO shards', are the first
// to split retired FIFO windows this way). No durable write happens:
// the high-water mark already covers every freed window, and the
// tombstone that freed it is already anchored, so reuse is purely a
// volatile pop (replay reaches the same window by simulating the same
// records, splits included).
func (cl *catalogLog) takeFree(heap, width int) (int, bool) {
	fl := cl.free[heap]
	if bases := fl[width]; len(bases) > 0 {
		base := bases[len(bases)-1]
		fl[width] = bases[:len(bases)-1]
		return base, true
	}
	best := 0
	for w, bases := range fl {
		if w > width && len(bases) > 0 && (best == 0 || w < best) {
			best = w
		}
	}
	if best == 0 {
		return 0, false
	}
	bases := fl[best]
	base := bases[len(bases)-1]
	fl[best] = bases[:len(bases)-1]
	cl.releaseSlots(heap, base+width, best-width)
	return base, true
}

// releaseSlots returns a window to the free list. Callers must have
// persisted the tombstone that retires the window first — a window on
// the free list is reusable immediately.
func (cl *catalogLog) releaseSlots(heap, base, width int) {
	if cl.free[heap] == nil {
		cl.free[heap] = make(map[int][]int)
	}
	cl.free[heap][width] = append(cl.free[heap][width], base)
}

// freeSlots reports the total number of root slots sitting on free
// lists across the set — the reclaimed-but-unreused footprint.
func (cl *catalogLog) freeSlots() int {
	total := 0
	for _, fl := range cl.free {
		for width, bases := range fl {
			total += width * len(bases)
		}
	}
	return total
}

// allocSlots claims a width-slot root-slot window on the given member
// heap: first from the free list (windows retired by tombstones, no
// durable write needed — the mark already covers them), else from the
// durable high-water allocator, where the new mark is stored, flushed
// and fenced before the caller initializes anything inside the window,
// so a window handed out before a crash is never handed out again —
// exactly AllocRaw's contract, lifted to root slots.
func (cl *catalogLog) allocSlots(tid, heap, width int, hs *pmem.HeapSet, what string) (shardLoc, error) {
	if base, ok := cl.takeFree(heap, width); ok {
		return shardLoc{heap: heap, base: base}, nil
	}
	base := cl.marks[heap]
	if base+width > hs.Heap(heap).RootSlots() {
		return shardLoc{}, fmt.Errorf("broker: heap %d out of root slots (%s needs %d, %d left)",
			heap, what, width, hs.Heap(heap).RootSlots()-base)
	}
	cl.marks[heap] = base + width
	cl.h.Store(tid, cl.markAddr(heap), uint64(cl.marks[heap]))
	return shardLoc{heap: heap, base: base}, nil
}

// persistMarks flushes every high-water line and fences: one blocking
// persist covers all the windows one creation claimed.
func (cl *catalogLog) persistMarks(tid int) {
	for l := 0; l < cl.allocLines; l++ {
		cl.h.Flush(tid, cl.lineAddr(logHeaderLines+l))
	}
	cl.h.Fence(tid)
}

// writeRecordAt stores one record — header words 0..6, the checksum,
// and the body lines — at line `at` of the region based at `base`, and
// flushes every line it wrote. No fence: callers order their own (one
// fence per append, one per whole compaction). Returns the record's
// line count.
func (cl *catalogLog) writeRecordAt(tid int, base pmem.Addr, at int, hdr [7]uint64, body [][8]uint64) int {
	h := cl.h
	sum := make([]uint64, 0, 7+len(body)*8)
	sum = append(sum, hdr[:]...)
	for _, line := range body {
		sum = append(sum, line[:]...)
	}
	hdrAddr := base + pmem.Addr(at)*pmem.CacheLineBytes
	for bi, line := range body {
		a := base + pmem.Addr(at+1+bi)*pmem.CacheLineBytes
		for w, x := range line {
			h.Store(tid, a+pmem.Addr(w*pmem.WordBytes), x)
		}
		h.Flush(tid, a)
	}
	for w, x := range hdr {
		h.Store(tid, hdrAddr+pmem.Addr(w*pmem.WordBytes), x)
	}
	h.Store(tid, hdrAddr+7*pmem.WordBytes, catChecksum(sum))
	h.Flush(tid, hdrAddr)
	return 1 + len(body)
}

// appendRecord writes a record — header words 0..6 plus body lines —
// at the log's free tail, fences it, then stamps and persists the
// commit word. The record is visible (replayed by recovery) only after
// the commit persist completes; a crash in between leaves debris that
// the next append overwrites.
func (cl *catalogLog) appendRecord(tid int, hdr [7]uint64, body [][8]uint64) error {
	recLines := 1 + len(body)
	if cl.next+recLines > cl.totalLines {
		return fmt.Errorf("broker: catalog log full (%d of %d lines used; reopen with a larger CatalogLines)",
			cl.next, cl.totalLines)
	}
	h := cl.h
	cl.writeRecordAt(tid, cl.base, cl.next, hdr, body)
	h.Fence(tid) // the record is durable, but not yet visible

	if testHookAfterAppend != nil {
		testHookAfterAppend()
	}

	cl.records++
	cl.next += recLines
	h.Store(tid, cl.lineAddr(1), uint64(cl.records))
	h.Persist(tid, cl.lineAddr(1)) // the anchor stamp: now it exists
	return nil
}

// packName packs a topic name into one body line, catNameBytes packed
// little-endian, zero-padded.
func packName(s string) [8]uint64 {
	var line [8]uint64
	name := make([]byte, catNameBytes)
	copy(name, s)
	for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
		var word uint64
		for b := 0; b < 8; b++ {
			word |= uint64(name[w*8+b]) << (8 * b)
		}
		line[w] = word
	}
	return line
}

func topicRecord(seq int, tc TopicConfig, locs []shardLoc, base int) ([7]uint64, [][8]uint64) {
	placeLines := (len(locs) + pmem.WordsPerLine - 1) / pmem.WordsPerLine
	payloadWord := uint64(tc.MaxPayload) | uint64(tc.Kind)<<catKindShift
	if tc.Acked {
		payloadWord |= catAckedBit
	}
	hdr := [7]uint64{recTopicMagic, uint64(seq), uint64(tc.Shards), payloadWord,
		uint64(len(tc.Name)), uint64(1 + placeLines), uint64(1 + base)}
	body := make([][8]uint64, 1+placeLines)
	body[0] = packName(tc.Name)
	for i, loc := range locs {
		body[1+i/pmem.WordsPerLine][i%pmem.WordsPerLine] = packLoc(loc)
	}
	return hdr, body
}

func ackGroupRecord(seq, capacity int, loc shardLoc) [7]uint64 {
	return [7]uint64{recAckMagic, uint64(seq), uint64(capacity), packLoc(loc), 0, 0, 0}
}

func tombstoneRecord(seq int, name string) ([7]uint64, [][8]uint64) {
	hdr := [7]uint64{recTombMagic, uint64(seq), uint64(len(name)), 0, 0, 1, 0}
	return hdr, [][8]uint64{packName(name)}
}

// topicRecLines is the log footprint of a topic-creation record:
// header line, name line, placement lines.
func topicRecLines(shards int) int {
	return 2 + (shards+pmem.WordsPerLine-1)/pmem.WordsPerLine
}

// liveTopic is one surviving topic handed to compact: its config, its
// shard placements, and the global shard-ordinal base its lease lines
// live at (which compaction must preserve verbatim — re-basing would
// repoint every durable lease at the wrong topic).
type liveTopic struct {
	tc   TopicConfig
	locs []shardLoc
	base int
}

// compact rewrites the live records into a next-generation log region
// and flips the root-slot anchor to it: the debris-reclamation and
// resize path. capacityLines is the new record capacity (0 keeps the
// current capacity); floor is the global shard ordinal the new
// generation starts issuing at, recorded in its commit line so the
// ordinals of compacted-away topics are never reissued.
//
// The whole new generation — header, commit line at the live record
// count, high-water marks, records — is written and fenced before the
// anchor flips, so recovery on either side of the flip reads exactly
// one complete generation. Cost: one fence plus one anchor persist,
// regardless of how many dead records are dropped.
func (cl *catalogLog) compact(tid, threads, capacityLines int,
	topics []liveTopic, leaseLocs []shardLoc, leaseCaps []int, floor int) error {
	if capacityLines == 0 {
		capacityLines = cl.totalLines - cl.recStart()
	}
	need := 0
	for _, t := range topics {
		need += topicRecLines(len(t.locs))
	}
	need += len(leaseLocs)
	if need > capacityLines {
		return fmt.Errorf("broker: catalog capacity %d lines cannot hold %d live record lines",
			capacityLines, need)
	}
	if cl.gen+1 >= maxCatGenerations {
		return fmt.Errorf("broker: catalog generation limit reached")
	}

	h := cl.h
	newTotal := logHeaderLines + cl.allocLines + capacityLines
	var newBase pmem.Addr
	if cl.spareBase != 0 && cl.spareLines >= newTotal {
		// Ping-pong into the previous generation's region; it is already
		// initialized and nothing reads past the commit prefix we are
		// about to write.
		newBase, cl.spareBase, cl.spareLines = cl.spareBase, 0, 0
	} else {
		bytes := int64(newTotal) * pmem.CacheLineBytes
		newBase = h.AllocRaw(tid, bytes, pmem.CacheLineBytes)
		h.InitRange(tid, newBase, bytes)
	}
	la := func(i int) pmem.Addr { return newBase + pmem.Addr(i)*pmem.CacheLineBytes }

	hdr := []uint64{catMagicV4, uint64(threads), uint64(cl.heaps), cl.stamp,
		uint64(newTotal), uint64(cl.allocLines), cl.gen + 1}
	for i, w := range hdr {
		h.Store(tid, la(0)+pmem.Addr(i*pmem.WordBytes), w)
	}
	h.Store(tid, la(0)+7*pmem.WordBytes, catChecksum(hdr))
	h.Flush(tid, la(0))
	h.Store(tid, la(1), uint64(len(topics)+len(leaseLocs)))
	h.Store(tid, la(1)+pmem.WordBytes, uint64(floor))
	h.Flush(tid, la(1))
	for i, m := range cl.marks {
		h.Store(tid, la(logHeaderLines+i/pmem.WordsPerLine)+
			pmem.Addr((i%pmem.WordsPerLine)*pmem.WordBytes), uint64(m))
	}
	for l := 0; l < cl.allocLines; l++ {
		h.Flush(tid, la(logHeaderLines+l))
	}
	next := logHeaderLines + cl.allocLines
	seq := 0
	for _, t := range topics {
		seq++
		rh, body := topicRecord(seq, t.tc, t.locs, t.base)
		next += cl.writeRecordAt(tid, newBase, next, rh, body)
	}
	for g, loc := range leaseLocs {
		seq++
		rh := ackGroupRecord(seq, leaseCaps[g], loc)
		next += cl.writeRecordAt(tid, newBase, next, rh, nil)
	}
	h.Fence(tid) // the whole generation is durable, but not yet visible

	if testHookBeforeFlip != nil {
		testHookBeforeFlip()
	}

	h.Store(tid, h.RootAddr(slotAnchor), uint64(newBase))
	h.Persist(tid, h.RootAddr(slotAnchor)) // the flip: now this is the catalog

	cl.spareBase, cl.spareLines = cl.base, cl.totalLines
	cl.base = newBase
	cl.totalLines = newTotal
	cl.records = seq
	cl.next = next
	cl.gen++
	cl.deadLines = 0
	return nil
}

// readCatalogV4 replays the catalog log record by record: exactly the
// committed prefix is applied, every committed record is re-validated
// (checksum, bounds, field sanity) and anything beyond the commit
// point — the torn tail of a creation that crashed before its anchor
// stamp — is ignored and will be overwritten by the next append. The
// returned catalogLog is positioned to continue appending.
//
// Replay is also an allocator simulation: each creation record claims
// its root-slot windows, each tombstone retires its topic's windows,
// and a committed creation whose windows overlap a still-live
// structure — or partially overlap a retired window instead of reusing
// it exactly — is a hard recovery error. What is retired and never
// reclaimed at the end of the log becomes the rebuilt free list.
func readCatalogV4(r *catReader, hs *pmem.HeapSet, reg pmem.Addr) (layoutInfo, *catalogLog, int, uint64, error) {
	var hdr [7]uint64
	for i := range hdr {
		hdr[i] = r.word(reg + pmem.Addr(i*pmem.WordBytes))
	}
	gotSum := r.word(reg + 7*pmem.WordBytes)
	if r.err != nil {
		return layoutInfo{}, nil, 0, 0, r.err
	}
	if gotSum != catChecksum(hdr[:]) {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log header corrupt (checksum mismatch)")
	}
	threads := hdr[1]
	heapCount := hdr[2]
	stamp := hdr[3]
	totalLines := hdr[4]
	allocLines := hdr[5]
	gen := hdr[6]
	if heapCount == 0 || heapCount > maxCatHeaps {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog heap count %d invalid", heapCount)
	}
	if totalLines == 0 || totalLines > maxCatalogLines {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log capacity %d lines invalid", totalLines)
	}
	if allocLines != uint64(allocLinesFor(int(heapCount))) {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log records %d allocator lines for %d heaps, want %d",
			allocLines, heapCount, allocLinesFor(int(heapCount)))
	}
	if gen >= maxCatGenerations {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log generation %d invalid", gen)
	}
	cl := &catalogLog{
		h:          r.h,
		heaps:      int(heapCount),
		base:       reg,
		totalLines: int(totalLines),
		allocLines: int(allocLines),
		stamp:      stamp,
		gen:        gen,
		marks:      make([]int, heapCount),
		free:       make([]map[int][]int, heapCount),
	}
	records := r.word(cl.lineAddr(1))
	floor := r.word(cl.lineAddr(1) + pmem.WordBytes)
	if records > uint64(cl.totalLines) { // each record spans >= 1 line
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log commit count %d absurd (capacity %d lines)",
			records, cl.totalLines)
	}
	if floor > maxCatShards {
		return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log ordinal floor %d invalid", floor)
	}

	lay := layoutInfo{threads: int(threads), nextGlobal: int(floor)}
	replayMarks := make([]int, heapCount)
	for i := range replayMarks {
		replayMarks[i] = 1
	}

	// The allocator simulation: per heap, windows claimed by live
	// structures and windows retired by tombstones.
	type repWin struct{ base, width int }
	liveWins := make([][]repWin, heapCount)
	freedWins := make([][]repWin, heapCount)
	claimWin := func(rec int, what string, loc shardLoc, width int) error {
		if loc.heap < 0 || loc.heap >= int(heapCount) {
			return fmt.Errorf("broker: catalog log record %d places %s on heap %d of %d",
				rec, what, loc.heap, heapCount)
		}
		if loc.base < 1 || (loc.heap < hs.Len() && loc.base+width > hs.Heap(loc.heap).RootSlots()) {
			return fmt.Errorf("broker: catalog log record %d places %s at slots [%d,%d) outside heap %d",
				rec, what, loc.base, loc.base+width, loc.heap)
		}
		for _, w := range liveWins[loc.heap] {
			if loc.base < w.base+w.width && w.base < loc.base+width {
				return fmt.Errorf("broker: catalog log record %d claims slots [%d,%d) on heap %d overlapping live window [%d,%d)",
					rec, loc.base, loc.base+width, loc.heap, w.base, w.base+w.width)
			}
		}
		for i, w := range freedWins[loc.heap] {
			if loc.base < w.base+w.width && w.base < loc.base+width {
				if loc.base < w.base || loc.base+width > w.base+w.width {
					return fmt.Errorf("broker: catalog log record %d claims slots [%d,%d) on heap %d straddling retired window [%d,%d)",
						rec, loc.base, loc.base+width, loc.heap, w.base, w.base+w.width)
				}
				// Reuse of a retired window: exact, or a sub-range when a
				// narrower creation split a wider window (takeFree's
				// split-bucket path takes the head, so a committed claim
				// always nests). The remainder fragments stay retired.
				freedWins[loc.heap] = append(freedWins[loc.heap][:i], freedWins[loc.heap][i+1:]...)
				if loc.base > w.base {
					freedWins[loc.heap] = append(freedWins[loc.heap], repWin{w.base, loc.base - w.base})
				}
				if end, wend := loc.base+width, w.base+w.width; end < wend {
					freedWins[loc.heap] = append(freedWins[loc.heap], repWin{end, wend - end})
				}
				break
			}
		}
		liveWins[loc.heap] = append(liveWins[loc.heap], repWin{loc.base, width})
		if end := loc.base + width; end > replayMarks[loc.heap] {
			replayMarks[loc.heap] = end
		}
		return nil
	}

	// Topics accumulate with a liveness flag so tombstones can retire
	// them; the surviving ones compact into lay at the end.
	type repTopic struct {
		tc   TopicConfig
		locs []shardLoc
		base int
		dead bool
	}
	var reps []*repTopic
	byName := map[string]*repTopic{}
	cursor := cl.recStart()
	topics, ackGroups := 0, 0
	for rec := 0; rec < int(records); rec++ {
		if cursor >= cl.totalLines {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d starts beyond capacity", rec)
		}
		hdrAddr := cl.lineAddr(cursor)
		var rh [7]uint64
		for i := range rh {
			rh[i] = r.word(hdrAddr + pmem.Addr(i*pmem.WordBytes))
		}
		recSum := r.word(hdrAddr + 7*pmem.WordBytes)
		bodyLines := rh[5]
		if r.err != nil {
			return layoutInfo{}, nil, 0, 0, r.err
		}
		if bodyLines > uint64(cl.totalLines) || cursor+1+int(bodyLines) > cl.totalLines {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d overruns capacity", rec)
		}
		sum := make([]uint64, 0, 7+int(bodyLines)*8)
		sum = append(sum, rh[:]...)
		body := make([][8]uint64, bodyLines)
		for bi := range body {
			a := cl.lineAddr(cursor + 1 + bi)
			for w := range body[bi] {
				body[bi][w] = r.word(a + pmem.Addr(w*pmem.WordBytes))
			}
			sum = append(sum, body[bi][:]...)
		}
		if r.err != nil {
			return layoutInfo{}, nil, 0, 0, r.err
		}
		if recSum != catChecksum(sum) {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d corrupt (checksum mismatch)", rec)
		}
		if rh[1] != uint64(rec+1) {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d carries sequence %d", rec, rh[1])
		}
		switch rh[0] {
		case recTopicMagic:
			shards := rh[2]
			payloadWord := rh[3]
			nameLen := rh[4]
			baseWord := rh[6]
			if shards == 0 || shards > maxCatShards {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid shard count %d", rec, shards)
			}
			if nameLen == 0 || nameLen > catNameBytes {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid name length %d", rec, nameLen)
			}
			if want := 1 + (int(shards)+pmem.WordsPerLine-1)/pmem.WordsPerLine; int(bodyLines) != want {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has %d body lines for %d shards, want %d",
					rec, bodyLines, shards, want)
			}
			if baseWord > maxCatShards {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid ordinal base %d", rec, baseWord)
			}
			if topics++; topics > maxCatTopics {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log exceeds %d topics", maxCatTopics)
			}
			nameBytes := make([]byte, catNameBytes)
			for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
				for b := 0; b < 8; b++ {
					nameBytes[w*8+b] = byte(body[0][w] >> (8 * b))
				}
			}
			name := string(nameBytes[:nameLen])
			if byName[name] != nil {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log records topic %q twice", name)
			}
			// Word 6 is 1+base for records written since topic retirement
			// existed; 0 means sequential assignment, exactly what the
			// broker that wrote the record did.
			base := lay.nextGlobal
			if baseWord > 0 {
				base = int(baseWord) - 1
			}
			if end := base + int(shards); end > lay.nextGlobal {
				lay.nextGlobal = end
			}
			kind := TopicKind((payloadWord & catKindMask) >> catKindShift)
			if kind > KindPriority {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid topic kind %d", rec, int(kind))
			}
			locs := make([]shardLoc, shards)
			for s := range locs {
				locs[s] = unpackLoc(body[1+s/pmem.WordsPerLine][s%pmem.WordsPerLine])
				if err := claimWin(rec, fmt.Sprintf("topic %q shard %d", name, s), locs[s], slotsForKind(kind)); err != nil {
					return layoutInfo{}, nil, 0, 0, err
				}
			}
			rt := &repTopic{
				tc: TopicConfig{
					Name:       name,
					Shards:     int(shards),
					MaxPayload: int(payloadWord &^ (catAckedBit | catKindMask)),
					Acked:      payloadWord&catAckedBit != 0,
					Kind:       kind,
				},
				locs: locs,
				base: base,
			}
			reps = append(reps, rt)
			byName[name] = rt
		case recAckMagic:
			capacity := rh[2]
			loc := unpackLoc(rh[3])
			if capacity == 0 || capacity > maxCatShards {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid lease capacity %d", rec, capacity)
			}
			if ackGroups++; ackGroups > maxCatAckGroups {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log exceeds %d ack groups", maxCatAckGroups)
			}
			if err := claimWin(rec, fmt.Sprintf("lease region %d", ackGroups-1), loc, 1); err != nil {
				return layoutInfo{}, nil, 0, 0, err
			}
			lay.leaseLocs = append(lay.leaseLocs, loc)
			lay.leaseCaps = append(lay.leaseCaps, int(capacity))
		case recTombMagic:
			nameLen := rh[2]
			if nameLen == 0 || nameLen > catNameBytes {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d has invalid name length %d", rec, nameLen)
			}
			if bodyLines != 1 {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log tombstone %d has %d body lines, want 1", rec, bodyLines)
			}
			nameBytes := make([]byte, catNameBytes)
			for w := 0; w < catNameBytes/pmem.WordBytes; w++ {
				for b := 0; b < 8; b++ {
					nameBytes[w*8+b] = byte(body[0][w] >> (8 * b))
				}
			}
			name := string(nameBytes[:nameLen])
			rt := byName[name]
			if rt == nil {
				return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log tombstone %d names no live topic %q", rec, name)
			}
			rt.dead = true
			delete(byName, name)
			// Retire the topic's windows: out of the live set, onto the
			// freed set, in shard order (matching the live broker's
			// release order, so the rebuilt free list is identical).
			width := slotsForKind(rt.tc.Kind)
			for _, loc := range rt.locs {
				for i, w := range liveWins[loc.heap] {
					if w.base == loc.base && w.width == width {
						liveWins[loc.heap] = append(liveWins[loc.heap][:i], liveWins[loc.heap][i+1:]...)
						break
					}
				}
				freedWins[loc.heap] = append(freedWins[loc.heap], repWin{loc.base, width})
			}
			cl.deadLines += topicRecLines(len(rt.locs)) + tombstoneLines
		default:
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: catalog log record %d magic %#x invalid", rec, rh[0])
		}
		cursor += 1 + int(bodyLines)
	}
	for _, rt := range reps {
		if rt.dead {
			continue
		}
		lay.topics = append(lay.topics, rt.tc)
		lay.locs = append(lay.locs, rt.locs)
		lay.bases = append(lay.bases, rt.base)
	}
	for heap, wins := range freedWins {
		for _, w := range wins {
			cl.releaseSlots(heap, w.base, w.width)
		}
	}
	cl.records = int(records)
	cl.next = cursor

	// High-water marks: the durable line is authoritative (it may run
	// ahead of the replayed maxima — windows claimed by a creation that
	// crashed before its anchor stay retired forever), but it can never
	// durably lag a committed record, whose claim was fenced first.
	for i := 0; i < int(heapCount); i++ {
		m := int(r.word(cl.markAddr(i)))
		if r.err != nil {
			return layoutInfo{}, nil, 0, 0, r.err
		}
		if m < replayMarks[i] {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: heap %d high-water mark %d lags committed windows (%d)",
				i, m, replayMarks[i])
		}
		if i < hs.Len() && m > hs.Heap(i).RootSlots() {
			return layoutInfo{}, nil, 0, 0, fmt.Errorf("broker: heap %d high-water mark %d exceeds %d root slots",
				i, m, hs.Heap(i).RootSlots())
		}
		cl.marks[i] = m
	}
	return lay, cl, int(heapCount), stamp, nil
}
