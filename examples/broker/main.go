// Broker: live administration of a durable message broker — dynamic
// topics on an append-with-fence catalog log (internal/broker), with
// exactly-once processing kept across a power failure.
//
// The broker is not configured up front: it comes up EMPTY with
// broker.Open on a 2-heap NVRAM set, and everything else is runtime
// administration. First an operator creates the "orders" topic (acked,
// variable payloads) and a durable consumer-group lease region with
// growth headroom; producers and an acked consumer group go to work.
// Mid-traffic — the data plane never pauses — the operator creates a
// second topic, "audit", on the live broker and subscribes the running
// group to it (Group.Subscribe): the catalog grows by one checksummed
// record, appended and fenced before an anchor stamp makes the topic
// visible, for a pinned three blocking persists of administrative cost
// plus the per-shard queue initialization.
//
// Then the power fails: a crash injected through one member heap downs
// the whole set mid-traffic. Recovery is broker.Open again — the same
// call that created the broker — which replays the catalog log record
// by record: the topic created at birth and the topic created
// mid-flight recover identically. A fresh acked group binds the lease
// region, surfaces the previous incarnation's in-flight windows as
// stale lease records, and drains the backlog.
//
// The audit demands exactly-once processing across both topics:
// every acknowledged publish is processed exactly once — acknowledged
// messages are never redelivered, unacknowledged ones always are. The
// only slack is the observer gap: an Ack whose fence completed right
// before the crash, cut off between the fence and the audit's record.
//
// Finally the lifecycle closes: the operator retires the drained
// "audit" topic with DeleteTopic (a checksummed tombstone, two
// blocking persists, windows reclaimed only after the anchor stamp),
// a stale handle is refused with ErrTopicDeleted, CompactCatalog
// folds the tombstone debris into a next-generation log, and a
// replacement topic reuses the retired shard windows off the free
// list — the steady-footprint churn story.
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/obs"
	"repro/internal/pmem"
)

const (
	heaps       = 2
	producers   = 2
	consumers   = 2
	adminTid    = producers + consumers // the operator's thread id
	threads     = producers + consumers + 1
	perProducer = 3000
	auditMsgs   = 400
	pollBatch   = 8
	leaseTTL    = 50
)

func orderPayload(id uint64) []byte {
	p := make([]byte, 16+int(id%48))
	copy(p, broker.U64(id))
	for i := 8; i < len(p); i++ {
		p[i] = byte(id) ^ byte(i)
	}
	return p
}

func main() {
	if runtime.GOMAXPROCS(0) < threads+2 {
		runtime.GOMAXPROCS(threads + 2)
	}
	hs := pmem.NewSet(heaps, pmem.Config{
		Bytes:      128 << 20,
		Mode:       pmem.ModeCrash,
		MaxThreads: threads,
	})
	// One observer spans the broker's whole life — both incarnations:
	// RegisterTopic dedupes by name, so the counters and latency
	// histograms below cover traffic before AND after the power failure.
	o := obs.New(obs.Config{Threads: threads})
	// An EMPTY broker: no Config, no topic list. Everything below is
	// live administration.
	b, err := broker.Open(hs, broker.Options{Threads: threads, Observer: o})
	if err != nil {
		panic(err)
	}
	if _, err := b.CreateTopic(0, broker.TopicConfig{
		Name: "orders", Shards: 4, MaxPayload: 64, Acked: true,
	}); err != nil {
		panic(err)
	}
	// One durable lease region, with default headroom so topics created
	// later can join the same acked group.
	region, err := b.CreateAckGroup(0, broker.AckGroupConfig{})
	if err != nil {
		panic(err)
	}
	var clock atomic.Uint64 // logical lease clock
	g, err := b.NewGroupAcked([]string{"orders"}, consumers, broker.LeaseConfig{
		Region: region, TTL: leaseTTL, Now: clock.Load,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("opened empty; created %q at runtime: %d heaps, %d shards, lease region %d\n",
		"orders", b.Heaps(), b.ShardTotal(), region)

	acked := make([][]uint64, producers) // acknowledged publishes per producer
	var auditAcked []uint64              // acknowledged publishes to the mid-flight topic
	processed := make([]map[uint64]bool, consumers)
	var ackedTotal atomic.Uint64
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup

	// The operator: once a quarter of the orders are acknowledged,
	// create the "audit" topic on the LIVE broker, subscribe the
	// running group to it and start publishing audit entries; once half
	// are through, pull the plug via heap 1 — the shared power supply
	// downs the whole set.
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		target := uint64(producers * perProducer)
		for ackedTotal.Load() < target/4 && !hs.Crashed() {
			time.Sleep(50 * time.Microsecond)
		}
		before := hs.StatsOf(adminTid).Fences
		crashed := pmem.Protect(func() {
			if _, err := b.CreateTopic(adminTid, broker.TopicConfig{
				Name: "audit", Shards: 2, Acked: true,
			}); err != nil {
				panic(err)
			}
		})
		if crashed {
			return
		}
		fmt.Printf("-- created %q mid-traffic: %d blocking persists, data plane never paused --\n",
			"audit", hs.StatsOf(adminTid).Fences-before)
		if err := g.Subscribe(adminTid, "audit"); err != nil {
			fmt.Println("subscribe failed:", err)
			return
		}
		topic := b.Topic("audit")
		for m := uint64(1); m <= auditMsgs; m++ {
			id := uint64(9)<<32 | m
			if pmem.Protect(func() { topic.Publish(adminTid, broker.U64(id)) }) {
				return
			}
			auditAcked = append(auditAcked, id)
			ackedTotal.Add(1)
		}
		for ackedTotal.Load() < target/2 && !hs.Crashed() {
			time.Sleep(50 * time.Microsecond)
		}
		hs.Heap(1).CrashNow() // one domain fails; the set follows
	}()

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			rng := rand.New(rand.NewSource(int64(p) + 100))
			orders := b.Topic("orders")
			// Publish until the power fails (the monitor pulls the plug
			// once half the nominal volume is acknowledged), so the crash
			// always lands mid-traffic and leaves a recovery backlog; the
			// bound is only a safety stop.
			for m := uint64(1); m <= 50*perProducer; {
				id := uint64(p+1)<<32 | m
				switch rng.Intn(3) {
				case 0: // one order, one fence
					if pmem.Protect(func() { orders.Publish(p, orderPayload(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					ackedTotal.Add(1)
					m++
				default: // batch of 8 riding a single fence
					var batch [][]byte
					var ids []uint64
					for len(batch) < 8 && m <= 50*perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, orderPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { orders.PublishBatch(p, batch) }) {
						return // crash: the whole batch is unacknowledged
					}
					acked[p] = append(acked[p], ids...)
					ackedTotal.Add(uint64(len(ids)))
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		processed[c] = map[uint64]bool{}
		go func(c int) {
			defer wg.Done()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				var msgs []broker.Message
				if pmem.Protect(func() { msgs = cons.PollBatch(tid, pollBatch) }) {
					return // power failure mid-poll: window unacknowledged
				}
				if len(msgs) > 0 {
					idle = false
					if pmem.Protect(func() { cons.Ack(tid) }) {
						return // crash mid-ack: the observer gap
					}
					for _, m := range msgs { // processed = delivered AND acked
						processed[c][broker.AsU64(m.Payload[:8])] = true
					}
					continue
				}
				select {
				case <-done:
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow()
	}
	<-monitorDone
	fmt.Println("-- heap 1 failed mid-traffic; the whole set lost power --")
	hs.FinalizeCrash(rand.New(rand.NewSource(42)))
	hs.Restart()

	// Recovery is the same call that created the broker: Open replays
	// the catalog log record by record — the birth topic and the
	// mid-flight topic recover identically.
	r, err := broker.Open(hs, broker.Options{Observer: o})
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered %d topics (%v) across %d heaps by replaying the catalog log\n",
		len(r.Topics()), r.TopicNames(), r.Heaps())
	var clock2 atomic.Uint64
	g2, err := r.NewGroupAcked(r.TopicNames(), 1, broker.LeaseConfig{
		TTL: leaseTTL, Now: clock2.Load,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d stale lease record(s) from the crash:\n", len(g2.RecoveredLeases()))
	for i, rl := range g2.RecoveredLeases() {
		if i == 3 {
			fmt.Printf("  ...\n")
			break
		}
		fmt.Printf("  %s/%d: owner %d held [%d,%d], deadline %d\n",
			rl.Shard.Topic, rl.Shard.Shard, rl.Lease.Owner, rl.Lease.Lo, rl.Lease.Hi, rl.Lease.Deadline)
	}

	// Drain and process the backlog: everything unacknowledged at the
	// crash — in flight or never delivered — exactly once.
	dup := 0
	seen := map[uint64]bool{}
	for c := range processed {
		for id := range processed[c] {
			if seen[id] {
				dup++
			}
			seen[id] = true
		}
	}
	preCrash := len(seen)
	drained := 0
	c2 := g2.Consumer(0)
	for {
		msgs := c2.PollBatch(0, 16)
		if len(msgs) == 0 {
			break
		}
		c2.Ack(0)
		for _, m := range msgs {
			id := broker.AsU64(m.Payload[:8])
			if seen[id] {
				dup++ // an acked message was redelivered: forbidden
			}
			seen[id] = true
			drained++
		}
	}
	lost, totalAcked := 0, 0
	audit := func(ids []uint64) {
		totalAcked += len(ids)
		for _, id := range ids {
			if !seen[id] {
				lost++
			}
		}
	}
	for p := range acked {
		audit(acked[p])
	}
	audit(auditAcked)
	allowance := consumers * pollBatch // acks cut off between fence and record
	fmt.Printf("acknowledged publishes    : %d (%d to the mid-flight topic)\n", totalAcked, len(auditAcked))
	fmt.Printf("processed before the crash: %d\n", preCrash)
	fmt.Printf("processed from the backlog: %d\n", drained)
	fmt.Printf("processed twice           : %d\n", dup)
	fmt.Printf("observer gap              : %d (acks durable but unrecorded; at most %d)\n", lost, allowance)

	// The observability layer watched both incarnations: per-op latency
	// percentiles across the whole run, and per-topic depth plus group
	// lag, which a full drain must have taken to zero.
	snap := o.Snapshot()
	fmt.Println("-- observability: latency across both incarnations --")
	for _, op := range snap.Ops {
		if op.Count == 0 {
			continue
		}
		fmt.Printf("  %-7s n=%-7d p50=%.1fµs p99=%.1fµs p999=%.1fµs\n",
			op.Op, op.Count, op.P50Ns/1e3, op.P99Ns/1e3, op.P999Ns/1e3)
	}
	for _, t := range snap.Topics {
		fmt.Printf("  topic %-6s published=%-6d delivered=%-6d acked=%-6d redelivered=%-4d depth=%d\n",
			t.Topic, t.Published, t.Delivered, t.Acked, t.Redelivered, t.Depth)
	}
	for _, gs := range snap.Groups {
		fmt.Printf("  group %s max shard lag=%d\n", gs.Group, gs.MaxLag)
	}
	if dup > 0 || lost > allowance {
		fmt.Println("EXACTLY-ONCE AUDIT FAILED")
		return
	}
	fmt.Println("audit passed: every acknowledged publish processed exactly once")

	// Epilogue: the lifecycle closes. The audit trail is drained, so the
	// operator retires the topic — a checksummed tombstone appended under
	// the same ordered-persist discipline as creation (two blocking
	// persists; the shard windows join the free list only after the
	// anchor stamp, so a torn delete recovers as "still exists"). A stale
	// handle held across the delete refuses further traffic with a typed
	// error rather than writing into recycled windows.
	stale := r.Topic("audit")
	before := hs.StatsOf(0).Fences
	if err := r.DeleteTopic(0, "audit"); err != nil {
		panic(err)
	}
	used, free := r.SlotFootprint()
	fmt.Printf("-- retired %q: %d blocking persists; slot footprint %d used / %d free --\n",
		"audit", hs.StatsOf(0).Fences-before, used, free)
	if err := stale.Publish(0, broker.U64(1)); !errors.Is(err, broker.ErrTopicDeleted) {
		fmt.Println("stale handle not refused:", err)
		return
	}
	fmt.Println("stale handle refused: " + broker.ErrTopicDeleted.Error())

	// Compact the tombstone debris into a next-generation log region
	// (one anchor flip, two fences regardless of how much debris there
	// is), then recreate: the new topic's windows come off the free
	// list, so the NVRAM footprint is steady under churn.
	if err := r.CompactCatalog(0, 0); err != nil {
		panic(err)
	}
	if _, err := r.CreateTopic(0, broker.TopicConfig{
		Name: "audit-v2", Shards: 2, Acked: true,
	}); err != nil {
		panic(err)
	}
	used2, free2 := r.SlotFootprint()
	fmt.Printf("compacted to catalog generation %d; %q reuses the retired windows: %d used / %d free\n",
		r.CatalogGeneration(), "audit-v2", used2, free2)
}
