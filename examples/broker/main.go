// Broker: a persistent message broker built on a durable queue — the
// use case the paper's introduction motivates (IBM MQ, Oracle Tuxedo
// MQ, RabbitMQ keep FIFO queues at their core, today structured for
// block storage; NVRAM queues remove the marshaling and file-system
// layers).
//
// Producers publish messages; a publish is "acknowledged" once the
// queue operation returns, at which point durable linearizability
// guarantees it survives any crash. The broker is crashed at a random
// moment mid-traffic, recovered, and audited: every acknowledged
// message is either already delivered or still in the recovered
// queue; nothing is duplicated.
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/pmem"
	"repro/internal/queues"
)

const (
	producers   = 3
	consumers   = 1
	perProducer = 5000
)

func main() {
	h := pmem.New(pmem.Config{
		Bytes:      128 << 20,
		Mode:       pmem.ModeCrash,
		MaxThreads: producers + consumers + 1,
	})
	broker := queues.NewOptLinkedQ(h, producers+consumers)

	// Crash somewhere inside the expected traffic volume.
	h.ScheduleCrashAtAccess(int64(rand.New(rand.NewSource(7)).Intn(100_000)) + 10_000)

	acked := make([][]uint64, producers) // per-producer acknowledged publishes
	delivered := make([][]uint64, consumers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for m := uint64(1); m <= perProducer; m++ {
				msg := uint64(p+1)<<32 | m
				if pmem.Protect(func() { broker.Enqueue(p, msg) }) {
					return // crash: this publish was never acknowledged
				}
				acked[p] = append(acked[p], msg)
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tid := producers + c
			for {
				var msg uint64
				var ok bool
				if pmem.Protect(func() { msg, ok = broker.Dequeue(tid) }) {
					return // crash mid-dequeue
				}
				if ok {
					delivered[c] = append(delivered[c], msg)
				}
			}
		}(c)
	}
	wg.Wait()
	if !h.Crashed() {
		h.CrashNow()
	}
	fmt.Println("-- broker crashed mid-traffic --")
	h.FinalizeCrash(rand.New(rand.NewSource(42)))
	h.Restart()

	recovered := queues.RecoverOptLinkedQ(h, producers+consumers)

	// Audit: acked ⊆ delivered ∪ recovered-queue, no duplicates.
	seen := map[uint64]string{}
	dup := 0
	for c := range delivered {
		for _, m := range delivered[c] {
			seen[m] = "delivered"
		}
	}
	var backlog int
	for {
		m, ok := recovered.Dequeue(0)
		if !ok {
			break
		}
		if _, already := seen[m]; already {
			dup++
		}
		seen[m] = "recovered"
		backlog++
	}
	lost := 0
	for p := range acked {
		for _, m := range acked[p] {
			if _, ok := seen[m]; !ok {
				lost++
			}
		}
	}
	totalAcked := 0
	for p := range acked {
		totalAcked += len(acked[p])
	}
	totalDelivered := 0
	for c := range delivered {
		totalDelivered += len(delivered[c])
	}
	fmt.Printf("acknowledged publishes : %d\n", totalAcked)
	fmt.Printf("delivered before crash : %d\n", totalDelivered)
	fmt.Printf("recovered backlog      : %d\n", backlog)
	fmt.Printf("acknowledged-and-lost  : %d (pending consumer dequeues may account for at most 1 each)\n", lost)
	fmt.Printf("duplicated messages    : %d\n", dup)
	if lost > consumers || dup > 0 {
		fmt.Println("BROKER AUDIT FAILED")
		return
	}
	fmt.Println("audit passed: no acknowledged message lost, none duplicated")
}
