// Broker: a sharded, multi-topic persistent message broker with
// durable acknowledgments and redelivery leases, built on
// internal/broker — delivery state treated as transactional state in
// the spirit of Gray's "Queues Are Databases".
//
// Two acked topics live side by side on a 2-heap set: "events"
// carries fixed 8-byte messages on ack-mode OptUnlinkedQ shards,
// "jobs" variable byte payloads on ack-mode blobq shards. Consumers
// form an acked group: a PollBatch writes a durable lease record
// (owner, unacked range, deadline) and fences it BEFORE returning
// messages — the shard dequeues themselves persist nothing — and a
// message is consumed only when Consumer.Ack covers it (one fence per
// ack batch, riding the same per-thread fence amortization as batch
// publish). Everything delivered but not acked is redeliverable.
//
// Mid-run, two failures hit in sequence:
//
//  1. Consumer 1 crashes mid-batch — messages delivered, never
//     acknowledged. Its lease expires and consumer 0 adopts its
//     shards (Group.Adopt), redelivering exactly the unacked suffix.
//  2. The power fails: a crash injected through one member heap downs
//     the whole set. Recovery rebuilds the broker from the catalog
//     (v3: topics, placements, lease regions), a fresh group binds
//     the lease region — surfacing the stale lease records of the
//     previous incarnation — and drains the backlog.
//
// The audit then demands exactly-once processing: every acknowledged
// publish is processed exactly once — acknowledged messages are never
// redelivered (not by takeover, not by recovery), unacknowledged ones
// always are. The only slack is the observer gap: an Ack whose fence
// completed right before the crash, cut off between the fence and the
// audit's own record.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/pmem"
)

const (
	heaps       = 2
	producers   = 3
	consumers   = 2
	perProducer = 4000
	threads     = producers + consumers
	pollBatch   = 8
	leaseTTL    = 50
)

func jobPayload(id uint64) []byte {
	p := make([]byte, 16+int(id%48))
	copy(p, broker.U64(id))
	for i := 8; i < len(p); i++ {
		p[i] = byte(id) ^ byte(i)
	}
	return p
}

func main() {
	if runtime.GOMAXPROCS(0) < threads+2 {
		runtime.GOMAXPROCS(threads + 2)
	}
	hs := pmem.NewSet(heaps, pmem.Config{
		Bytes:      128 << 20,
		Mode:       pmem.ModeCrash,
		MaxThreads: threads,
	})
	b, err := broker.NewSet(hs, broker.Config{
		Topics: []broker.TopicConfig{
			{Name: "events", Shards: 4, Acked: true},
			{Name: "jobs", Shards: 4, MaxPayload: 64, Acked: true},
		},
		Threads:   threads,
		AckGroups: 1, // one durable lease region, recorded in the catalog
	})
	if err != nil {
		panic(err)
	}
	var clock atomic.Uint64 // logical lease clock, advanced by the killer
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, consumers, broker.LeaseConfig{
		TTL: leaseTTL, Now: clock.Load,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("broker spans %d heaps, %d shards, %d lease region(s)\n", b.Heaps(), b.ShardTotal(), b.AckGroups())
	for c := 0; c < consumers; c++ {
		fmt.Printf("  consumer %d owns %d shards\n", c, len(g.Consumer(c).Assigned()))
	}

	acked := make([][]uint64, producers) // acknowledged publishes per producer
	processed := make([]map[uint64]bool, consumers)
	var ackedTotal atomic.Uint64
	var killFlag [consumers]atomic.Bool
	consumerDone := make([]chan struct{}, consumers)
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup

	// Failure 1: once a sixth of the publishes are acknowledged, kill
	// consumer 1 mid-batch, wait out its lease, adopt into consumer 0.
	// Failure 2: at a third, pull the plug through heap 1 alone — the
	// shared power supply downs the whole set.
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		target := uint64(producers * perProducer)
		for ackedTotal.Load() < target/6 && !hs.Crashed() {
			time.Sleep(50 * time.Microsecond)
		}
		killFlag[1].Store(true)
		<-consumerDone[1]
		clock.Add(10 * leaseTTL) // the victim goes silent; its lease expires
		var moved int
		var aerr error
		if !pmem.Protect(func() { moved, aerr = g.Adopt(producers+1, 1, 0) }) && aerr == nil {
			fmt.Printf("-- consumer 1 crashed mid-batch; consumer 0 adopted its shards, %d redeliveries --\n", moved)
		}
		for ackedTotal.Load() < target/3 && !hs.Crashed() {
			time.Sleep(50 * time.Microsecond)
		}
		hs.Heap(1).CrashNow() // one domain fails; the set follows
	}()

	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			rng := rand.New(rand.NewSource(int64(p) + 100))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			for m := uint64(1); m <= perProducer; {
				id := uint64(p+1)<<32 | m
				switch rng.Intn(3) {
				case 0: // one event, one fence
					if pmem.Protect(func() { events.Publish(p, broker.U64(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					ackedTotal.Add(1)
					m++
				default: // batch of 8 jobs riding a single fence
					var batch [][]byte
					var ids []uint64
					for len(batch) < 8 && m <= perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, jobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return // crash: the whole batch is unacknowledged
					}
					acked[p] = append(acked[p], ids...)
					ackedTotal.Add(uint64(len(ids)))
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		processed[c] = map[uint64]bool{}
		consumerDone[c] = make(chan struct{})
		go func(c int) {
			defer wg.Done()
			defer close(consumerDone[c])
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				var msgs []broker.Message
				if pmem.Protect(func() { msgs = cons.PollBatch(tid, pollBatch) }) {
					return // power failure mid-poll: window unacknowledged
				}
				if len(msgs) > 0 {
					idle = false
					// "Crash" between delivery and acknowledgment: the
					// window must be redelivered via lease takeover.
					if killFlag[c].Load() {
						return
					}
					if pmem.Protect(func() { cons.Ack(tid) }) {
						return // crash mid-ack: the observer gap
					}
					for _, m := range msgs { // processed = delivered AND acked
						processed[c][broker.AsU64(m.Payload[:8])] = true
					}
					continue
				}
				if killFlag[c].Load() {
					return
				}
				select {
				case <-done:
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow()
	}
	<-monitorDone
	fmt.Println("-- heap 1 failed mid-traffic; the whole set lost power --")
	hs.FinalizeCrash(rand.New(rand.NewSource(42)))
	hs.Restart()

	// Recover the whole broker from the durable catalog, then bind a
	// fresh acked group to the same lease region: the previous
	// incarnation's in-flight windows surface as recovered leases.
	r, err := broker.RecoverSet(hs, threads)
	if err != nil {
		panic(err)
	}
	var clock2 atomic.Uint64
	g2, err := r.NewGroupAcked([]string{"events", "jobs"}, 1, broker.LeaseConfig{
		TTL: leaseTTL, Now: clock2.Load,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered %d topics across %d heaps; %d stale lease record(s) from the crash:\n",
		len(r.Topics()), r.Heaps(), len(g2.RecoveredLeases()))
	for i, rl := range g2.RecoveredLeases() {
		if i == 3 {
			fmt.Printf("  ...\n")
			break
		}
		fmt.Printf("  %s/%d: owner %d held [%d,%d], deadline %d\n",
			rl.Shard.Topic, rl.Shard.Shard, rl.Lease.Owner, rl.Lease.Lo, rl.Lease.Hi, rl.Lease.Deadline)
	}

	// Drain and process the backlog: everything unacknowledged at the
	// crash — in flight or never delivered — exactly once.
	dup := 0
	seen := map[uint64]bool{}
	for c := range processed {
		for id := range processed[c] {
			if seen[id] {
				dup++
			}
			seen[id] = true
		}
	}
	preCrash := len(seen)
	drained := 0
	c2 := g2.Consumer(0)
	for {
		msgs := c2.PollBatch(0, 16)
		if len(msgs) == 0 {
			break
		}
		c2.Ack(0)
		for _, m := range msgs {
			id := broker.AsU64(m.Payload[:8])
			if seen[id] {
				dup++ // an acked message was redelivered: forbidden
			}
			seen[id] = true
			drained++
		}
	}
	lost, totalAcked := 0, 0
	for p := range acked {
		totalAcked += len(acked[p])
		for _, id := range acked[p] {
			if !seen[id] {
				lost++
			}
		}
	}
	allowance := consumers * pollBatch // acks cut off between fence and record
	fmt.Printf("acknowledged publishes    : %d\n", totalAcked)
	fmt.Printf("processed before the crash: %d\n", preCrash)
	fmt.Printf("processed from the backlog: %d\n", drained)
	fmt.Printf("processed twice           : %d\n", dup)
	fmt.Printf("observer gap              : %d (acks durable but unrecorded; at most %d)\n", lost, allowance)
	if dup > 0 || lost > allowance {
		fmt.Println("EXACTLY-ONCE AUDIT FAILED")
		return
	}
	fmt.Println("audit passed: every acknowledged publish processed exactly once")
}
