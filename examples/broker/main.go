// Broker: a sharded, multi-topic persistent message broker built on
// internal/broker — the use case the paper's introduction motivates
// (IBM MQ, Oracle Tuxedo MQ, RabbitMQ keep FIFO queues at their core,
// today structured for block storage; NVRAM queues remove the
// marshaling and file-system layers).
//
// Two topics, four shards each, live side by side on one persistent
// heap: "events" carries fixed 8-byte messages on OptUnlinkedQ shards,
// "jobs" carries variable byte payloads on blobq shards. Producers mix
// the per-message publish path (one SFENCE per message), the keyed
// path (per-key FIFO) and the amortized batch path (one SFENCE per
// batch); a consumer group partitions the shards, one member draining
// per-message (Poll) and one in batches (PollBatch, a single SFENCE
// covering deliveries from several shards). A publish is
// "acknowledged" once the call returns, at which point durable
// linearizability guarantees it survives any crash; a delivery (or a
// whole poll batch) is acknowledged the same way when the poll
// returns.
//
// The broker is crashed at a random moment mid-traffic, re-discovered
// from its durable catalog alone, recovered shard by shard, and
// audited: every acknowledged message is either already delivered or
// still in the recovered backlog; nothing is duplicated.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/pmem"
)

const (
	producers   = 3
	consumers   = 2
	perProducer = 4000
	threads     = producers + consumers
	// pollBatch is consumer 0's PollBatch window; consumer 1 polls
	// per-message. A crash may cost each consumer its unacknowledged
	// in-flight window (1 for Poll, pollBatch for PollBatch).
	pollBatch = 8
)

func jobPayload(id uint64) []byte {
	p := make([]byte, 16+int(id%48))
	copy(p, broker.U64(id))
	for i := 8; i < len(p); i++ {
		p[i] = byte(id) ^ byte(i)
	}
	return p
}

func main() {
	// Producers, consumers and the crash monitor must interleave for
	// the mid-traffic crash to be meaningful on small machines.
	if runtime.GOMAXPROCS(0) < threads+1 {
		runtime.GOMAXPROCS(threads + 1)
	}
	h := pmem.New(pmem.Config{
		Bytes:      128 << 20,
		Mode:       pmem.ModeCrash,
		MaxThreads: threads,
	})
	b, err := broker.New(h, broker.Config{
		Topics: []broker.TopicConfig{
			{Name: "events", Shards: 4},
			{Name: "jobs", Shards: 4, MaxPayload: 64},
		},
		Threads: threads,
	})
	if err != nil {
		panic(err)
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, consumers)
	if err != nil {
		panic(err)
	}

	// Crash mid-traffic: once a third of the publishes have been
	// acknowledged, a monitor pulls the plug on the whole system
	// (every thread observes the crash at its next memory access).
	// Main joins the monitor before recovering so a late-scheduled
	// CrashNow can never land after Restart.
	var ackedTotal atomic.Uint64
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		target := uint64(producers*perProducer) / 3
		for ackedTotal.Load() < target && !h.Crashed() {
			time.Sleep(100 * time.Microsecond)
		}
		h.CrashNow()
	}()

	acked := make([][]uint64, producers) // per-producer acknowledged publishes
	delivered := make([]map[uint64]bool, consumers)
	redelivered := make([]int, consumers) // same message polled twice by one consumer
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			rng := rand.New(rand.NewSource(int64(p) + 100))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			for m := uint64(1); m <= perProducer; {
				id := uint64(p+1)<<32 | m
				switch rng.Intn(3) {
				case 0: // one event, one fence
					if pmem.Protect(func() { events.Publish(p, broker.U64(id)) }) {
						return // crash: this publish was never acknowledged
					}
					acked[p] = append(acked[p], id)
					ackedTotal.Add(1)
					m++
				case 1: // keyed job: all messages of a key share a shard
					if pmem.Protect(func() { jobs.PublishKey(p, broker.U64(id%3), jobPayload(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					ackedTotal.Add(1)
					m++
				default: // batch of 8 jobs riding a single fence
					var batch [][]byte
					var ids []uint64
					for len(batch) < 8 && m <= perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, jobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return // crash: the whole batch is unacknowledged
					}
					acked[p] = append(acked[p], ids...)
					ackedTotal.Add(uint64(len(ids)))
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		delivered[c] = map[uint64]bool{}
		go func(c int) {
			defer wg.Done()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				var msgs []broker.Message
				if pmem.Protect(func() {
					if c == 0 { // batched consumer: one SFENCE per poll window
						msgs = cons.PollBatch(tid, pollBatch)
					} else if m, ok := cons.Poll(tid); ok {
						msgs = []broker.Message{m}
					}
				}) {
					return // crash mid-poll: the whole window is unacknowledged
				}
				if len(msgs) > 0 {
					for _, msg := range msgs {
						id := broker.AsU64(msg.Payload[:8])
						if delivered[c][id] {
							redelivered[c]++
						}
						delivered[c][id] = true
					}
					idle = false
					continue
				}
				select {
				case <-done:
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	if !h.Crashed() {
		h.CrashNow()
	}
	<-monitorDone
	fmt.Println("-- broker crashed mid-traffic --")
	h.FinalizeCrash(rand.New(rand.NewSource(42)))
	h.Restart()

	// Recover the whole broker from the durable catalog alone.
	r, err := broker.Recover(h, threads)
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered %d topics from the durable catalog:", len(r.Topics()))
	for _, t := range r.Topics() {
		fmt.Printf(" %s(%d shards)", t.Name(), t.Shards())
	}
	fmt.Println()

	// Audit: acked ⊆ delivered ∪ recovered-backlog, no duplicates.
	seen := map[uint64]bool{}
	dup := 0
	for c := range delivered {
		dup += redelivered[c]
		for id := range delivered[c] {
			if seen[id] {
				dup++ // delivered to more than one consumer
			}
			seen[id] = true
		}
	}
	backlog := 0
	for _, t := range r.Topics() {
		for s := 0; s < t.Shards(); s++ {
			for {
				p, ok := t.DequeueShard(0, s)
				if !ok {
					break
				}
				id := broker.AsU64(p[:8])
				if seen[id] {
					dup++
				}
				seen[id] = true
				backlog++
			}
		}
	}
	lost, totalAcked, totalDelivered := 0, 0, 0
	for p := range acked {
		totalAcked += len(acked[p])
		for _, id := range acked[p] {
			if !seen[id] {
				lost++
			}
		}
	}
	for c := range delivered {
		totalDelivered += len(delivered[c])
	}
	allowance := pollBatch + (consumers - 1) // one in-flight window per consumer
	fmt.Printf("acknowledged publishes : %d\n", totalAcked)
	fmt.Printf("delivered before crash : %d\n", totalDelivered)
	fmt.Printf("recovered backlog      : %d\n", backlog)
	fmt.Printf("acknowledged-and-lost  : %d (in-flight poll windows may account for at most %d)\n", lost, allowance)
	fmt.Printf("duplicated messages    : %d\n", dup)
	if lost > allowance || dup > 0 {
		fmt.Println("BROKER AUDIT FAILED")
		return
	}
	fmt.Println("audit passed: no acknowledged message outside the in-flight windows lost, none duplicated")
}
