// Broker: a sharded, multi-topic persistent message broker spanning a
// set of NVRAM domains, built on internal/broker — the use case the
// paper's introduction motivates (IBM MQ, Oracle Tuxedo MQ, RabbitMQ
// keep FIFO queues at their core, today structured for block storage;
// NVRAM queues remove the marshaling and file-system layers).
//
// The broker here spans a 2-heap set (two simulated NUMA domains /
// DIMM sets sharing one power supply). Two topics live side by side:
// "events" carries fixed 8-byte messages on OptUnlinkedQ shards,
// "jobs" carries variable byte payloads on blobq shards; block
// placement lays each topic's shards out in contiguous per-heap runs,
// and the heap-affine consumer group assigns each member shards from a
// single domain, so a member's PollBatch rides one SFENCE on one
// domain per poll window. Producers mix the per-message publish path
// (one SFENCE per message), the keyed path (per-key FIFO) and the
// amortized batch path (one SFENCE per batch). A publish is
// "acknowledged" once the call returns, at which point durable
// linearizability guarantees it survives any crash; a delivery (or a
// whole poll batch) is acknowledged the same way when the poll
// returns.
//
// Mid-traffic, a monitor pulls the plug: the crash is injected through
// ONE member heap, and because the set shares a power supply every
// domain goes down with it. The whole broker is then re-discovered
// two-phase — the durable catalog on heap 0 names every topic, shard
// placement and the other member's stamp; per-queue recovery then
// replays heap by heap — and audited: every acknowledged message is
// either already delivered or still in the recovered backlog; nothing
// is duplicated.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/pmem"
)

const (
	heaps       = 2
	producers   = 3
	consumers   = 2
	perProducer = 4000
	threads     = producers + consumers
	// pollBatch is consumer 0's PollBatch window; consumer 1 polls
	// per-message. A crash may cost each consumer its unacknowledged
	// in-flight window (1 for Poll, pollBatch for PollBatch).
	pollBatch = 8
)

func jobPayload(id uint64) []byte {
	p := make([]byte, 16+int(id%48))
	copy(p, broker.U64(id))
	for i := 8; i < len(p); i++ {
		p[i] = byte(id) ^ byte(i)
	}
	return p
}

func main() {
	// Producers, consumers and the crash monitor must interleave for
	// the mid-traffic crash to be meaningful on small machines.
	if runtime.GOMAXPROCS(0) < threads+1 {
		runtime.GOMAXPROCS(threads + 1)
	}
	hs := pmem.NewSet(heaps, pmem.Config{
		Bytes:      128 << 20,
		Mode:       pmem.ModeCrash,
		MaxThreads: threads,
	})
	b, err := broker.NewSet(hs, broker.Config{
		Topics: []broker.TopicConfig{
			{Name: "events", Shards: 4},
			{Name: "jobs", Shards: 4, MaxPayload: 64},
		},
		Threads:   threads,
		Placement: broker.BlockPlacement, // contiguous per-heap shard runs
	})
	if err != nil {
		panic(err)
	}
	// Heap-affine group: with block placement and consumers == heaps,
	// each member owns shards on exactly one domain and fences only it.
	g, err := b.NewGroupAffine([]string{"events", "jobs"}, consumers)
	if err != nil {
		panic(err)
	}
	fmt.Printf("broker spans %d heaps\n", b.Heaps())
	for _, t := range b.Topics() {
		fmt.Printf("  topic %-7s shards on heaps:", t.Name())
		for s := 0; s < t.Shards(); s++ {
			fmt.Printf(" %d", t.HeapOf(s))
		}
		fmt.Println()
	}
	for c := 0; c < consumers; c++ {
		fmt.Printf("  consumer %d fences domain(s) %v\n", c, g.Consumer(c).Domains())
	}

	// Crash mid-traffic: once a third of the publishes have been
	// acknowledged, a monitor pulls the plug — injected through heap 1
	// alone; the shared power supply downs the whole set (every thread
	// observes the crash at its next access on any member). Main joins
	// the monitor before recovering so a late-scheduled CrashNow can
	// never land after Restart.
	var ackedTotal atomic.Uint64
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		target := uint64(producers*perProducer) / 3
		for ackedTotal.Load() < target && !hs.Crashed() {
			time.Sleep(100 * time.Microsecond)
		}
		hs.Heap(1).CrashNow() // one domain fails; the set follows
	}()

	acked := make([][]uint64, producers) // per-producer acknowledged publishes
	delivered := make([]map[uint64]bool, consumers)
	redelivered := make([]int, consumers) // same message polled twice by one consumer
	var producersDone sync.WaitGroup
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		producersDone.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producersDone.Done()
			rng := rand.New(rand.NewSource(int64(p) + 100))
			events, jobs := b.Topic("events"), b.Topic("jobs")
			for m := uint64(1); m <= perProducer; {
				id := uint64(p+1)<<32 | m
				switch rng.Intn(3) {
				case 0: // one event, one fence
					if pmem.Protect(func() { events.Publish(p, broker.U64(id)) }) {
						return // crash: this publish was never acknowledged
					}
					acked[p] = append(acked[p], id)
					ackedTotal.Add(1)
					m++
				case 1: // keyed job: all messages of a key share a shard
					if pmem.Protect(func() { jobs.PublishKey(p, broker.U64(id%3), jobPayload(id)) }) {
						return
					}
					acked[p] = append(acked[p], id)
					ackedTotal.Add(1)
					m++
				default: // batch of 8 jobs riding a single fence
					var batch [][]byte
					var ids []uint64
					for len(batch) < 8 && m <= perProducer {
						ids = append(ids, uint64(p+1)<<32|m)
						batch = append(batch, jobPayload(ids[len(ids)-1]))
						m++
					}
					if pmem.Protect(func() { jobs.PublishBatch(p, batch) }) {
						return // crash: the whole batch is unacknowledged
					}
					acked[p] = append(acked[p], ids...)
					ackedTotal.Add(uint64(len(ids)))
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { producersDone.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		delivered[c] = map[uint64]bool{}
		go func(c int) {
			defer wg.Done()
			tid := producers + c
			cons := g.Consumer(c)
			idle := false
			for {
				var msgs []broker.Message
				if pmem.Protect(func() {
					if c == 0 { // batched consumer: one SFENCE (one domain) per poll window
						msgs = cons.PollBatch(tid, pollBatch)
					} else if m, ok := cons.Poll(tid); ok {
						msgs = []broker.Message{m}
					}
				}) {
					return // crash mid-poll: the whole window is unacknowledged
				}
				if len(msgs) > 0 {
					for _, msg := range msgs {
						id := broker.AsU64(msg.Payload[:8])
						if delivered[c][id] {
							redelivered[c]++
						}
						delivered[c][id] = true
					}
					idle = false
					continue
				}
				select {
				case <-done:
					if idle {
						return
					}
					idle = true
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	if !hs.Crashed() {
		hs.CrashNow()
	}
	<-monitorDone
	fmt.Println("-- heap 1 failed mid-traffic; the whole set lost power --")
	hs.FinalizeCrash(rand.New(rand.NewSource(42)))
	hs.Restart()

	// Recover the whole broker: phase 1 reads the catalog on heap 0 and
	// checks heap 1's membership stamp, phase 2 replays per-queue
	// recovery heap by heap (in parallel).
	r, err := broker.RecoverSet(hs, threads)
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered %d topics across %d heaps from the durable catalog:", len(r.Topics()), r.Heaps())
	for _, t := range r.Topics() {
		fmt.Printf(" %s(%d shards)", t.Name(), t.Shards())
	}
	fmt.Println()

	// Audit: acked ⊆ delivered ∪ recovered-backlog, no duplicates.
	seen := map[uint64]bool{}
	dup := 0
	for c := range delivered {
		dup += redelivered[c]
		for id := range delivered[c] {
			if seen[id] {
				dup++ // delivered to more than one consumer
			}
			seen[id] = true
		}
	}
	backlog := 0
	for _, t := range r.Topics() {
		for s := 0; s < t.Shards(); s++ {
			for {
				p, ok := t.DequeueShard(0, s)
				if !ok {
					break
				}
				id := broker.AsU64(p[:8])
				if seen[id] {
					dup++
				}
				seen[id] = true
				backlog++
			}
		}
	}
	lost, totalAcked, totalDelivered := 0, 0, 0
	for p := range acked {
		totalAcked += len(acked[p])
		for _, id := range acked[p] {
			if !seen[id] {
				lost++
			}
		}
	}
	for c := range delivered {
		totalDelivered += len(delivered[c])
	}
	allowance := pollBatch + (consumers - 1) // one in-flight window per consumer
	fmt.Printf("acknowledged publishes : %d\n", totalAcked)
	fmt.Printf("delivered before crash : %d\n", totalDelivered)
	fmt.Printf("recovered backlog      : %d\n", backlog)
	fmt.Printf("acknowledged-and-lost  : %d (in-flight poll windows may account for at most %d)\n", lost, allowance)
	fmt.Printf("duplicated messages    : %d\n", dup)
	if lost > allowance || dup > 0 {
		fmt.Println("BROKER AUDIT FAILED")
		return
	}
	fmt.Println("audit passed: no acknowledged message outside the in-flight windows lost, none duplicated")
}
