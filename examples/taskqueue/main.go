// Taskqueue: a durable work queue that survives repeated crashes.
//
// A dispatcher enqueues jobs; workers dequeue and "process" them. The
// system is crashed and restarted several times mid-processing. After
// every restart the queue is recovered and work continues. Because a
// dequeue that was pending at a crash may or may not have removed its
// job (durable linearizability linearizes pending operations at the
// recovery's discretion), the worker records a job as processed only
// after the dequeue returns — giving exactly-once *accounting* on top
// of the queue's guarantees, demonstrated by the final audit.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/pmem"
	"repro/internal/queues"
)

const (
	jobs    = 4000
	crashes = 4
)

func main() {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: 3})
	q := queues.NewUnlinkedQ(h, 2)

	// Dispatch all jobs up front (persisted one by one).
	for j := uint64(1); j <= jobs; j++ {
		q.Enqueue(0, j)
	}
	fmt.Printf("dispatched %d jobs\n", jobs)

	processed := map[uint64]int{}
	rng := rand.New(rand.NewSource(9))
	queueRef := queues.Queue(q)

	for round := 0; round <= crashes; round++ {
		if round > 0 {
			fmt.Printf("-- crash %d: recovering and resuming --\n", round)
		}
		// Work until the crash fires (or the queue drains).
		if round < crashes {
			h.ScheduleCrashAtAccess(int64(rng.Intn(40_000)) + 1_000)
		}
		for {
			var j uint64
			var ok bool
			if pmem.Protect(func() { j, ok = queueRef.Dequeue(1) }) {
				break // crashed
			}
			if !ok {
				break // drained
			}
			processed[j]++ // the job's side effect
		}
		if !h.Crashed() {
			break // all jobs done before this round's crash fired
		}
		h.FinalizeCrash(rng)
		h.Restart()
		queueRef = queues.RecoverUnlinkedQ(h, 2)
	}

	// Audit.
	var missing, dups int
	for j := uint64(1); j <= jobs; j++ {
		switch processed[j] {
		case 0:
			missing++
		case 1:
		default:
			dups++
		}
	}
	fmt.Printf("jobs processed exactly once: %d\n", jobs-missing-dups)
	fmt.Printf("jobs lost: %d (each crash may consume at most one pending dequeue)\n", missing)
	fmt.Printf("jobs duplicated: %d\n", dups)
	if missing <= crashes && dups == 0 {
		fmt.Println("audit passed")
	} else {
		fmt.Println("AUDIT FAILED")
	}
}
