// Quickstart: create a durable queue on simulated NVRAM, use it,
// crash the whole system, recover, and observe that every completed
// operation survived — while the queue paid exactly one blocking
// persist per operation and never touched a flushed cache line.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/pmem"
	"repro/internal/queues"
)

func main() {
	// A 64 MiB simulated persistent heap. ModeCrash journals stores
	// per cache line so a crash can be materialized with the paper's
	// Assumption-1 semantics (each line retains a prefix of its
	// stores).
	h := pmem.New(pmem.Config{
		Bytes:      64 << 20,
		Mode:       pmem.ModeCrash,
		MaxThreads: 4,
	})

	// OptUnlinkedQ: the paper's fastest queue (second amendment).
	q := queues.NewOptUnlinkedQ(h, 2)
	h.ResetStats() // count persists of the operations only, not setup

	fmt.Println("enqueue 1..5 on thread 0")
	for v := uint64(1); v <= 5; v++ {
		q.Enqueue(0, v)
	}
	a, _ := q.Dequeue(1)
	b, _ := q.Dequeue(1)
	fmt.Printf("thread 1 dequeued: %d, %d\n", a, b)

	s := h.TotalStats()
	fmt.Printf("persist profile: %d fences for 7 operations, %d accesses to flushed lines\n",
		s.Fences, s.PostFlushAccesses)

	// Power failure: all volatile state (caches, the Volatile halves
	// of the nodes, the Go objects) is gone; each NVRAM cache line
	// keeps a random prefix of its unfenced stores.
	fmt.Println("\n-- simulated full-system crash --")
	h.CrashNow()
	h.FinalizeCrash(rand.New(rand.NewSource(1)))
	h.Restart()

	// Recovery scans the allocator's designated areas, resurrects
	// linked nodes beyond the persisted head index, and rebuilds the
	// volatile structure.
	rq := queues.RecoverOptUnlinkedQ(h, 2)
	fmt.Print("recovered queue contents: ")
	for {
		v, ok := rq.Dequeue(0)
		if !ok {
			break
		}
		fmt.Printf("%d ", v)
	}
	fmt.Println("\n(3, 4, 5 — every completed operation survived)")

	// The recovered queue is immediately usable.
	rq.Enqueue(0, 99)
	v, _ := rq.Dequeue(1)
	fmt.Printf("post-recovery roundtrip: %d\n", v)
}
