// Spooler: a durable document spooler built on the multi-cache-line
// payload queue (package blobq) — the footnote-3 generalization of
// the paper's queues to items spanning several cache lines, still
// with one blocking persist per operation and zero accesses to
// flushed content.
//
// Documents with bodies up to 240 bytes are spooled by producers and
// printed by a consumer. The machine dies mid-spool; after recovery,
// every acknowledged document is either already printed or still
// spooled, byte-exact (verified by checksum), and no torn document is
// ever observed.
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/blobq"
	"repro/internal/pmem"
)

const producers = 3

func document(id uint64) []byte {
	body := fmt.Sprintf("document %d: ", id)
	rng := rand.New(rand.NewSource(int64(id)))
	for len(body) < 40+int(id%180) {
		body += string(rune('a' + rng.Intn(26)))
	}
	return []byte(body)
}

func main() {
	h := pmem.New(pmem.Config{Bytes: 128 << 20, Mode: pmem.ModeCrash, MaxThreads: producers + 2})
	cfg := blobq.Config{Threads: producers + 1, MaxPayload: 240}
	spool := blobq.New(h, cfg)

	h.ScheduleCrashAtAccess(150_000)
	acked := make([][]uint64, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				id := uint64(p+1)*1_000_000 + i
				if pmem.Protect(func() { spool.Enqueue(p, document(id)) }) {
					return
				}
				acked[p] = append(acked[p], id)
			}
		}(p)
	}
	printed := map[uint64]bool{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tid := producers
		for {
			var doc []byte
			var ok bool
			if pmem.Protect(func() { doc, ok = spool.Dequeue(tid) }) {
				return
			}
			if ok {
				printed[parseID(doc)] = true
			}
		}
	}()
	wg.Wait()
	if !h.Crashed() {
		h.CrashNow()
	}
	fmt.Println("-- power failure mid-spool --")
	h.FinalizeCrash(rand.New(rand.NewSource(3)))
	h.Restart()

	recovered := blobq.Recover(h, cfg)
	backlog := 0
	for {
		doc, ok := recovered.Dequeue(0)
		if !ok {
			break
		}
		id := parseID(doc)
		want := document(id)
		if string(doc) != string(want) {
			fmt.Printf("CORRUPT DOCUMENT %d\n", id)
			return
		}
		printed[id] = true
		backlog++
	}
	lost := 0
	total := 0
	for p := range acked {
		total += len(acked[p])
		for _, id := range acked[p] {
			if !printed[id] {
				lost++
			}
		}
	}
	fmt.Printf("acknowledged documents : %d\n", total)
	fmt.Printf("recovered backlog      : %d (all byte-exact)\n", backlog)
	fmt.Printf("acknowledged-and-lost  : %d (at most 1 per pending dequeue)\n", lost)
	if lost <= 1 {
		fmt.Println("spooler audit passed")
	} else {
		fmt.Println("SPOOLER AUDIT FAILED")
	}
}

func parseID(doc []byte) uint64 {
	var id uint64
	fmt.Sscanf(string(doc), "document %d:", &id)
	return id
}
