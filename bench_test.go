package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/pmem"
	"repro/internal/queues"
)

// The queue set benchmarked for every Figure 2 panel, ordered as in
// the paper's legend.
var benchQueues = []string{
	"opt-unlinked", "opt-linked", "unlinked", "linked",
	"durable-msq", "izraelevitz", "nvtraverse", "onefile", "redoopt",
}

const benchHeap = 192 << 20

func newBenchQueue(b *testing.B, name string, threads int, retain bool) (*pmem.Heap, queues.Queue) {
	b.Helper()
	in, ok := harness.LookupQueue(name)
	if !ok {
		b.Fatalf("unknown queue %s", name)
	}
	h := pmem.New(pmem.Config{
		Bytes:            benchHeap,
		Mode:             pmem.ModePerf,
		MaxThreads:       threads + 1,
		Latency:          pmem.DefaultLatency(),
		FlushRetainsLine: retain,
	})
	return h, in.New(h, threads)
}

// runSplit executes b.N iterations split across threads; fn performs
// iteration i for the given tid.
func runSplit(b *testing.B, threads int, fn func(tid, i int, rng *rand.Rand)) {
	var wg sync.WaitGroup
	per := b.N / threads
	for tid := 0; tid < threads; tid++ {
		n := per
		if tid == threads-1 {
			n = b.N - per*(threads-1)
		}
		wg.Add(1)
		go func(tid, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid) + 42))
			for i := 0; i < n; i++ {
				fn(tid, i, rng)
			}
		}(tid, n)
	}
	wg.Wait()
}

func reportPersists(b *testing.B, h *pmem.Heap) {
	reportTimedPersists(b, h.TotalStats())
}

func reportTimedPersists(b *testing.B, s pmem.Stats) {
	b.ReportMetric(float64(s.Fences)/float64(b.N), "fences/op")
	b.ReportMetric(float64(s.PostFlushAccesses)/float64(b.N), "pflush/op")
}

// benchBounded measures workloads whose queue size stays bounded
// (random, pairs, prodcons): one benchmark iteration is one queue
// operation.
func benchBounded(b *testing.B, name string, threads int, retain bool, op func(q queues.Queue, tid, i int, rng *rand.Rand)) {
	h, q := newBenchQueue(b, name, threads, retain)
	for i := 0; i < 10; i++ {
		q.Enqueue(0, uint64(i)+1)
	}
	h.ResetStats()
	b.ResetTimer()
	runSplit(b, threads, func(tid, i int, rng *rand.Rand) { op(q, tid, i, rng) })
	b.StopTimer()
	reportPersists(b, h)
}

// BenchmarkFig2aRandom reproduces panel 1: uniformly random
// enqueue/dequeue on an initial queue of size 10.
func BenchmarkFig2aRandom(b *testing.B) {
	for _, name := range benchQueues {
		for _, threads := range []int{1, 2} {
			b.Run(name+"/T"+itoa(threads), func(b *testing.B) {
				benchBounded(b, name, threads, false, func(q queues.Queue, tid, i int, rng *rand.Rand) {
					if rng.Intn(2) == 0 {
						q.Enqueue(tid, uint64(i)|1<<40)
					} else {
						q.Dequeue(tid)
					}
				})
			})
		}
	}
}

// BenchmarkFig2bPairs reproduces panel 2: enqueue-dequeue pairs on an
// initial queue of size 10.
func BenchmarkFig2bPairs(b *testing.B) {
	for _, name := range benchQueues {
		for _, threads := range []int{1, 2} {
			b.Run(name+"/T"+itoa(threads), func(b *testing.B) {
				benchBounded(b, name, threads, false, func(q queues.Queue, tid, i int, rng *rand.Rand) {
					if i%2 == 0 {
						q.Enqueue(tid, uint64(i)|1<<40)
					} else {
						q.Dequeue(tid)
					}
				})
			})
		}
	}
}

// BenchmarkFig2eProdCons reproduces panel 5: a quarter of the threads
// dequeue then enqueue; the rest enqueue then dequeue.
func BenchmarkFig2eProdCons(b *testing.B) {
	const threads = 2
	for _, name := range benchQueues {
		b.Run(name+"/T"+itoa(threads), func(b *testing.B) {
			benchBounded(b, name, threads, false, func(q queues.Queue, tid, i int, rng *rand.Rand) {
				deqFirst := tid < threads/4 || tid == 0 && threads < 4
				firstPhase := i%2 == 0 // interleave phases across b.N
				enq := deqFirst != firstPhase
				if enq {
					q.Enqueue(tid, uint64(i)|1<<40)
				} else {
					q.Dequeue(tid)
				}
			})
		})
	}
}

// BenchmarkFig2cEnqOnly reproduces panel 3: producers only on an
// initially empty queue. Enqueue batches are timed; the draining that
// keeps the heap bounded is not.
func BenchmarkFig2cEnqOnly(b *testing.B) {
	const threads = 2
	const batch = 1 << 20
	for _, name := range benchQueues {
		b.Run(name+"/T"+itoa(threads), func(b *testing.B) {
			h, q := newBenchQueue(b, name, threads, false)
			var timed pmem.Stats // persists of the timed phases only
			remaining := b.N
			b.ResetTimer()
			for remaining > 0 {
				n := min(batch, remaining)
				s0 := h.TotalStats()
				var wg sync.WaitGroup
				per := n / threads
				for tid := 0; tid < threads; tid++ {
					cnt := per
					if tid == threads-1 {
						cnt = n - per*(threads-1)
					}
					wg.Add(1)
					go func(tid, cnt int) {
						defer wg.Done()
						for i := 0; i < cnt; i++ {
							q.Enqueue(tid, uint64(i)|1<<40)
						}
					}(tid, cnt)
				}
				wg.Wait()
				timed.Add(h.TotalStats().Sub(s0))
				remaining -= n
				if remaining > 0 {
					b.StopTimer()
					h.SetLatency(pmem.ZeroLatency())
					// Drain with alternating tids so retired nodes
					// land on every thread's free list (the timed
					// phase allocates from all of them).
					for i := 0; ; i++ {
						if _, ok := q.Dequeue(i % threads); !ok {
							break
						}
					}
					h.SetLatency(pmem.DefaultLatency())
					b.StartTimer()
				}
			}
			b.StopTimer()
			reportTimedPersists(b, timed)
		})
	}
}

// BenchmarkFig2dDeqOnly reproduces panel 4: consumers only on a
// prefilled queue. Refills are untimed.
func BenchmarkFig2dDeqOnly(b *testing.B) {
	const threads = 2
	const batch = 1 << 20
	for _, name := range benchQueues {
		b.Run(name+"/T"+itoa(threads), func(b *testing.B) {
			h, q := newBenchQueue(b, name, threads, false)
			var timed pmem.Stats
			remaining := b.N
			b.ResetTimer()
			for remaining > 0 {
				n := min(batch, remaining)
				b.StopTimer()
				h.SetLatency(pmem.ZeroLatency())
				// Refill with alternating tids: the dequeue phase
				// retires nodes onto every thread's free list, and a
				// single-tid refill would exhaust the heap bumping
				// fresh areas instead of recycling them.
				for i := 0; i < n+threads; i++ {
					q.Enqueue(i%threads, uint64(i)|1<<40)
				}
				h.SetLatency(pmem.DefaultLatency())
				s0 := h.TotalStats()
				b.StartTimer()
				var wg sync.WaitGroup
				per := n / threads
				for tid := 0; tid < threads; tid++ {
					cnt := per
					if tid == threads-1 {
						cnt = n - per*(threads-1)
					}
					wg.Add(1)
					go func(tid, cnt int) {
						defer wg.Done()
						for i := 0; i < cnt; i++ {
							q.Dequeue(tid)
						}
					}(tid, cnt)
				}
				wg.Wait()
				remaining -= n
				b.StopTimer()
				timed.Add(h.TotalStats().Sub(s0))
				h.SetLatency(pmem.ZeroLatency())
				for i := 0; ; i++ {
					if _, ok := q.Dequeue(i % threads); !ok {
						break
					}
				}
				h.SetLatency(pmem.DefaultLatency())
				b.StartTimer()
			}
			b.StopTimer()
			reportTimedPersists(b, timed)
		})
	}
}

// BenchmarkAblationNoInvalidate re-runs the pairs workload on a
// platform whose flushes retain cache lines (the Ice Lake-like future
// hardware of Section 6's closing discussion). On such hardware the
// first-amendment queues close most of the gap to the optimized ones.
func BenchmarkAblationNoInvalidate(b *testing.B) {
	for _, name := range []string{"opt-unlinked", "opt-linked", "unlinked", "linked", "durable-msq"} {
		b.Run(name+"/T2", func(b *testing.B) {
			benchBounded(b, name, 2, true, func(q queues.Queue, tid, i int, rng *rand.Rand) {
				if i%2 == 0 {
					q.Enqueue(tid, uint64(i)|1<<40)
				} else {
					q.Dequeue(tid)
				}
			})
		})
	}
}

// BenchmarkAblationNoNTStore isolates Section 6.3: OptUnlinkedQ with
// plain stores + flushes for the per-thread head indices instead of
// movnti, reintroducing writes to flushed lines.
func BenchmarkAblationNoNTStore(b *testing.B) {
	for _, name := range []string{"opt-unlinked", "opt-unlinked-plainstore"} {
		b.Run(name+"/T2", func(b *testing.B) {
			benchBounded(b, name, 2, false, func(q queues.Queue, tid, i int, rng *rand.Rand) {
				if i%2 == 0 {
					q.Enqueue(tid, uint64(i)|1<<40)
				} else {
					q.Dequeue(tid)
				}
			})
		})
	}
}

// BenchmarkAblationLinkedNaive isolates Appendix A's backward-link
// optimisation: LinkedQ that flushes the whole list prefix on every
// enqueue versus the suffix walk.
func BenchmarkAblationLinkedNaive(b *testing.B) {
	for _, name := range []string{"linked", "linked-naive"} {
		b.Run(name+"/T2", func(b *testing.B) {
			benchBounded(b, name, 2, false, func(q queues.Queue, tid, i int, rng *rand.Rand) {
				if i%2 == 0 {
					q.Enqueue(tid, uint64(i)|1<<40)
				} else {
					q.Dequeue(tid)
				}
			})
		})
	}
}

// BenchmarkRecovery measures post-crash recovery of a queue holding
// 50k items (after 100k enqueues and 50k dequeues).
func BenchmarkRecovery(b *testing.B) {
	for _, name := range benchQueues {
		in, _ := harness.LookupQueue(name)
		if in.Recover == nil {
			continue
		}
		b.Run(name, func(b *testing.B) {
			h := pmem.New(pmem.Config{Bytes: benchHeap, Mode: pmem.ModePerf, MaxThreads: 3})
			q := in.New(h, 2)
			for i := 0; i < 100_000; i++ {
				q.Enqueue(0, uint64(i)+1)
			}
			for i := 0; i < 50_000; i++ {
				q.Dequeue(1)
			}
			// Everything durable is in the working view; recovering
			// from it is equivalent to a crash in which every line
			// was evicted.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.Recover(h, 2)
			}
		})
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
