// Package repro is a Go reproduction of "Durable Queues: The Second
// Amendment" (Gal Sela and Erez Petrank, SPAA 2021): durably
// linearizable lock-free FIFO queues for non-volatile main memory
// that execute one blocking persist operation per operation and — in
// their optimized ("second amendment") form — zero accesses to
// explicitly flushed cache lines.
//
// The persistence substrate is a simulated NVRAM (internal/pmem) that
// models CLWB/SFENCE/movnti semantics, Cascade Lake's
// flush-invalidates-line behaviour, per-cache-line crash-prefix
// semantics, and Optane-like latencies. On top of the queues,
// internal/broker composes a sharded, multi-topic durable message
// broker — the application the paper's introduction motivates. Both
// directions amortize durability cost below the paper's
// one-fence-per-operation bound: EnqueueBatch/PublishBatch ride one
// SFENCE per publish batch, DequeueBatch/PollBatch one SFENCE per poll
// window (even across shards), and failing dequeues elide
// already-durable persists entirely. See DESIGN.md for the full system
// inventory, layering and soundness arguments.
//
// The benchmark suite in bench_test.go regenerates every panel of the
// paper's Figure 2; the cmd/durbench tool runs the full sweeps and
// cmd/brokerbench sweeps the broker over shard counts and publish and
// dequeue batch sizes.
package repro
